package asv

import (
	"testing"
)

// TestQueryOptFacade exercises the options-based entry point: option
// combinations, the unified answer shape, and agreement with the wrapper
// quartet on the same column.
func TestQueryOptFacade(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	col, err := db.CreateColumn("qo", 64, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Fill(Sine(3, 0, 1_000_000, 8)); err != nil {
		t.Fatal(err)
	}

	lo, hi := uint64(100_000), uint64(250_000)
	ans, err := col.QueryOpt(lo, hi, Rows(), Aggregate(), Workers(2))
	if err != nil {
		t.Fatal(err)
	}
	if ans.Rows == nil || ans.Agg == nil {
		t.Fatalf("requested materializations missing: %+v", ans)
	}
	if ans.Rows.Len() != ans.Count || ans.Agg.Count != ans.Count {
		t.Fatalf("materializations disagree with the answer: rows %d, agg %d, count %d",
			ans.Rows.Len(), ans.Agg.Count, ans.Count)
	}
	if ans.Agg.Min < lo || ans.Agg.Max > hi {
		t.Fatalf("aggregate out of range: min %d max %d", ans.Agg.Min, ans.Agg.Max)
	}

	// No options: a plain answer with nil materializations, identical to
	// the Query wrapper.
	plain, err := col.QueryOpt(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Rows != nil || plain.Agg != nil {
		t.Fatal("unrequested materializations present")
	}
	viaWrapper, err := col.Query(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Count != viaWrapper.Count || plain.Sum != viaWrapper.Sum {
		t.Fatalf("QueryOpt %d/%d != Query %d/%d", plain.Count, plain.Sum, viaWrapper.Count, viaWrapper.Sum)
	}
}

// TestSnapshotFacade pins the snapshot handle semantics through the
// public API: repeatable reads across a writer flush, pure reads (no
// adaptation), and idempotent Close.
func TestSnapshotFacade(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	col, err := db.CreateColumn("snap", 64, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Fill(Uniform(7, 0, 1_000_000)); err != nil {
		t.Fatal(err)
	}

	lo, hi := uint64(0), uint64(200_000)
	snap, err := col.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	first, err := snap.Query(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if first.CandidateBuilt {
		t.Fatal("snapshot read built a candidate view")
	}

	// Overwrite matching rows and flush; the pinned handle must not move.
	moved := 0
	for row := 0; row < col.Rows() && moved < 500; row++ {
		v, err := col.Value(row)
		if err != nil {
			t.Fatal(err)
		}
		if v >= lo && v <= hi {
			if err := col.Update(row, hi+1); err != nil {
				t.Fatal(err)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("setup: no rows to move")
	}
	if _, err := col.FlushUpdates(); err != nil {
		t.Fatal(err)
	}

	again, err := snap.QueryOpt(lo, hi, Aggregate())
	if err != nil {
		t.Fatal(err)
	}
	if again.Count != first.Count || again.Sum != first.Sum {
		t.Fatalf("pinned read moved: %d/%d then %d/%d", first.Count, first.Sum, again.Count, again.Sum)
	}
	live, err := col.Query(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if live.Count != first.Count-moved {
		t.Fatalf("live query count %d, want %d", live.Count, first.Count-moved)
	}

	if err := snap.Close(); err != nil {
		t.Fatal(err)
	}
	if err := snap.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := snap.Query(lo, hi); err == nil {
		t.Fatal("query on closed snapshot succeeded")
	}
}

// TestColumnCloseDeregisters is the regression test for the catalog
// bugfix: Column.Close must deregister the column (so the name is
// reusable, like Table.Close) and be idempotent, and DB.Close must not
// double-close a column that was closed directly.
func TestColumnCloseDeregisters(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	col, err := db.CreateColumn("c", 8, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Column("c"); ok {
		t.Fatal("closed column still registered")
	}
	// Double-close is a no-op.
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	// The name is reusable.
	col2, err := db.CreateColumn("c", 8, DefaultConfig())
	if err != nil {
		t.Fatalf("name not reusable after close: %v", err)
	}
	if err := col2.Fill(Uniform(1, 0, 1000)); err != nil {
		t.Fatal(err)
	}
	if _, err := col2.Query(0, 500); err != nil {
		t.Fatal(err)
	}
	// DB.Close after a direct close of col2 must not double-close.
	if err := col2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}
