package asv_test

import (
	"path/filepath"
	"testing"

	asv "github.com/asv-db/asv"
)

func TestQueryRowsAndAggregateFacade(t *testing.T) {
	db, _ := asv.Open(asv.Options{})
	defer db.Close()
	col, err := db.CreateColumn("c", 64, asv.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Fill(asv.Uniform(5, 0, 10_000)); err != nil {
		t.Fatal(err)
	}

	rows, res, err := col.QueryRows(1000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != res.Count || rows.Len() == 0 {
		t.Fatalf("rows=%d count=%d", rows.Len(), res.Count)
	}
	// Every materialized row really is in range.
	rows.ForEach(func(r int) bool {
		v, err := col.Value(r)
		if err != nil || v < 1000 || v > 2000 {
			t.Fatalf("row %d = %d, %v", r, v, err)
		}
		return true
	})

	agg, _, err := col.QueryAggregate(1000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count != res.Count || agg.Min < 1000 || agg.Max > 2000 {
		t.Fatalf("aggregate %+v", agg)
	}
}

func TestSaveLoadFacade(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "col.asv")

	db, _ := asv.Open(asv.Options{})
	defer db.Close()
	col, _ := db.CreateColumn("orig", 32, asv.DefaultConfig())
	_ = col.Fill(asv.Sine(9, 0, 1_000_000, 8))
	wantRes, err := col.Query(100_000, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Save(path); err != nil {
		t.Fatal(err)
	}

	loaded, err := db.LoadColumn("copy", path, asv.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	gotRes, err := loaded.Query(100_000, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	if gotRes.Count != wantRes.Count || gotRes.Sum != wantRes.Sum {
		t.Fatalf("loaded column answers (%d,%d), want (%d,%d)",
			gotRes.Count, gotRes.Sum, wantRes.Count, wantRes.Sum)
	}
	// Loaded views start empty and regrow.
	if len(loaded.Views()) == 0 {
		t.Fatal("loaded column did not adapt")
	}
	// Duplicate name rejected.
	if _, err := db.LoadColumn("copy", path, asv.DefaultConfig()); err == nil {
		t.Fatal("duplicate load accepted")
	}
	// Missing file surfaces an error.
	if _, err := db.LoadColumn("x", filepath.Join(dir, "nope"), asv.DefaultConfig()); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestTableFacade(t *testing.T) {
	db, _ := asv.Open(asv.Options{})
	defer db.Close()

	tbl, err := db.CreateTable("trips", 32, []string{"distance_m", "fare_cents"}, asv.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("trips", 32, []string{"x"}, asv.DefaultConfig()); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if got, ok := db.Table("trips"); !ok || got != tbl {
		t.Fatal("table lookup failed")
	}
	if err := tbl.FillColumn("distance_m", asv.Uniform(1, 0, 50_000)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.FillColumn("fare_cents", asv.Uniform(2, 100, 10_000)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.FillColumn("nope", asv.Uniform(1, 0, 1)); err == nil {
		t.Fatal("fill of phantom column accepted")
	}

	res, err := tbl.Select(
		asv.Predicate{Column: "distance_m", Lo: 10_000, Hi: 20_000},
		asv.Predicate{Column: "fare_cents", Lo: 1_000, Hi: 5_000},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Verify the conjunction row by row.
	res.Rows.ForEach(func(r int) bool {
		vals, err := tbl.Get(r, "distance_m", "fare_cents")
		if err != nil {
			t.Fatal(err)
		}
		if vals[0] < 10_000 || vals[0] > 20_000 || vals[1] < 1_000 || vals[1] > 5_000 {
			t.Fatalf("row %d violates predicates: %v", r, vals)
		}
		return true
	})
	n, err := tbl.Count(asv.Predicate{Column: "distance_m", Lo: 0, Hi: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if n != tbl.Rows() {
		t.Fatalf("Count over full domain = %d, want %d", n, tbl.Rows())
	}

	// Update flows through and views report per column.
	if err := tbl.Update("fare_cents", 7, 4_242); err != nil {
		t.Fatal(err)
	}
	if err := tbl.FlushUpdates(); err != nil {
		t.Fatal(err)
	}
	vals, _ := tbl.Get(7, "fare_cents")
	if vals[0] != 4_242 {
		t.Fatalf("updated fare = %d", vals[0])
	}
	if _, err := tbl.ColumnViews("fare_cents"); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.ColumnViews("nope"); err == nil {
		t.Fatal("views of phantom column accepted")
	}

	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Table("trips"); ok {
		t.Fatal("table still registered after Close")
	}
}

func TestPolicyFacadeRoundTrip(t *testing.T) {
	db, _ := asv.Open(asv.Options{})
	defer db.Close()
	cfg := asv.DefaultConfig()
	cfg.Mode = asv.MultiView
	cfg.MultiViewPolicy = asv.CostBased
	cfg.Limit = asv.EvictLRU
	cfg.MaxViews = 4
	col, err := db.CreateColumn("p", 64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = col.Fill(asv.Sine(3, 0, 1_000_000, 8))
	for i := 0; i < 12; i++ {
		lo := uint64(i) * 80_000
		if _, err := col.Query(lo, lo+50_000); err != nil {
			t.Fatal(err)
		}
	}
	if len(col.Views()) > 4 {
		t.Fatalf("views %d exceed limit", len(col.Views()))
	}
	if col.Stats().ViewsEvicted == 0 {
		t.Fatal("no evictions under EvictLRU")
	}
}
