package asv

import (
	"github.com/asv-db/asv/internal/core"
)

// This file is the options-based view-creation surface: one CreateViewOpt
// entry point the historical CreateView/CreateViews/CreateViewsBatch
// trio now wraps, mirroring the QueryOpt redesign of the read surface.

// ViewOption configures a CreateViewOpt call; see Lazy, Eager, Pinned
// and Batch.
type ViewOption func(*viewCreateOptions)

// viewCreateOptions is the accumulated option state of one CreateViewOpt
// call: per-view overrides plus the extra ranges a Batch option adds to
// the same single-scan creation.
type viewCreateOptions struct {
	lazy    bool
	hasLazy bool
	pinned  bool
	extra   []ViewRange
}

// Lazy defers the views' materialization to first access regardless of
// the column's Config.LazyViews: creation records which physical page
// backs each slot and returns without mapping anything; demand mmap and
// soft-TLB resolution happen on the first query touching a slot.
func Lazy() ViewOption {
	return func(o *viewCreateOptions) { o.lazy, o.hasLazy = true, true }
}

// Eager materializes the views in full at creation regardless of the
// column's Config.LazyViews — the inverse of Lazy.
func Eager() ViewOption {
	return func(o *viewCreateOptions) { o.lazy, o.hasLazy = false, true }
}

// Pinned exempts the views' pages from tier demotion: the autopilot's
// hot-tier pressure duty never moves a pinned view's pages to the
// capacity tier (the temperature-driven whole-view eviction of cold
// views still applies). The legacy creation surface pins every view, so
// enabling tiering never slows an explicitly requested hot range; views
// created adaptively by queries — and CreateViewOpt views without this
// option — are demotable.
func Pinned() ViewOption {
	return func(o *viewCreateOptions) { o.pinned = true }
}

// Batch adds more ranges to the same creation call: the primary
// [lo, hi] of CreateViewOpt plus every Batch range are built in one
// qualification scan of the column and published in one state swap,
// each view inheriting the call's Lazy/Eager/Pinned settings.
// Semantically identical to one CreateViewOpt call per range, at the
// cost of a single scan and publication — the many-views experiments
// stand up thousands of views this way.
func Batch(specs ...ViewRange) ViewOption {
	return func(o *viewCreateOptions) { o.extra = append(o.extra, specs...) }
}

// CreateViewOpt eagerly builds one partial view over [lo, hi] — plus one
// per Batch range — according to the options, bypassing adaptivity:
//
//	err := col.CreateViewOpt(lo, hi, asv.Lazy(), asv.Pinned())
//	err = col.CreateViewOpt(lo, hi, asv.Batch(more...))
//
// Without options the views follow the column's Config (LazyViews) and
// are demotable by the tier lifecycle, exactly like adaptively created
// views. All views of one call are built in a single column pass and
// published atomically; on any error nothing is inserted.
func (c *Column) CreateViewOpt(lo, hi uint64, opts ...ViewOption) error {
	var o viewCreateOptions
	for _, opt := range opts {
		opt(&o)
	}
	specs := make([]core.ViewSpec, 0, 1+len(o.extra))
	add := func(lo, hi uint64) {
		specs = append(specs, core.ViewSpec{
			Lo: lo, Hi: hi,
			Lazy: o.lazy, HasLazy: o.hasLazy,
			Pinned: o.pinned,
		})
	}
	add(lo, hi)
	for _, r := range o.extra {
		add(r.Lo, r.Hi)
	}
	_, err := c.eng.CreateViewsOpt(specs)
	return err
}
