package asv

import (
	"github.com/asv-db/asv/internal/core"
	"github.com/asv-db/asv/internal/obs"
)

// This file is the column's observability surface: the unified telemetry
// snapshot (metrics registry), the per-query trace types behind the
// Trace query option, and the engine event journal. All three are
// zero-dependency (internal/obs) and cheap enough to leave on in
// production: instruments are lock-free atomics, tracing is opt-in per
// query, and the journal is disabled unless Config.JournalEvents is set.

// Telemetry is a point-in-time snapshot of a column's instruments:
// counters, gauges and log₂-bucket histograms, keyed by stable names
// (engine_*, autopilot_*, tier_*, map_*, room_*, ...). Snapshots merge
// (Merge) and encode to stable JSON (JSON), so they diff cleanly across
// runs and embed in benchmark artifacts.
type Telemetry = obs.Snapshot

// HistogramSnapshot is one histogram's frozen state inside a Telemetry
// snapshot; Quantile and Mean summarize it.
type HistogramSnapshot = obs.HistogramSnapshot

// QueryTrace is one traced query's span tree (see Trace).
type QueryTrace = obs.Trace

// TraceSpan is one timed region of a traced query.
type TraceSpan = obs.Span

// EngineEvent is one entry drained from the column's event journal.
type EngineEvent = obs.Event

// Telemetry snapshots every instrument of the column: the engine's own
// histograms and counters, the autopilot's (when one runs), the tier's
// (when tiering is enabled) and the simulated address space's. Reading
// the snapshot never blocks queries — every instrument is a lock-free
// atomic the hot paths bump unconditionally.
func (c *Column) Telemetry() Telemetry { return c.eng.Telemetry() }

// Events drains the column's event journal: the newest JournalEvents
// engine events (epoch publications/retirements, autopilot duties, tier
// migration batches, view lifecycle transitions, room handovers) in
// sequence order. Returns nil when Config.JournalEvents left the
// journal disabled.
func (c *Column) Events() []EngineEvent { return c.eng.Journal().Events() }

// Trace attaches a span tree to one QueryOpt call; the finished tree
// comes back on QueryAnswer.Trace:
//
//	ans, _ := col.QueryOpt(lo, hi, asv.Trace())
//	fmt.Print(ans.Trace)   // pin/route/scan/materialize/merge spans
//
// The tree attributes the query's wall time across epoch pinning,
// routing, per-view scans (with pages scanned, TLB-resolved pages and
// lazy-slot faults), tier cold-touch stalls, and candidate
// materialization/merge. Queries without this option pay nothing: the
// untraced path is allocation-identical to a build without tracing.
func Trace() QueryOption {
	return func(o *core.QueryOptions) { o.Trace = obs.NewTrace("query") }
}
