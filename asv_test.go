package asv_test

import (
	"testing"

	asv "github.com/asv-db/asv"
)

func TestOpenCreateQueryClose(t *testing.T) {
	db, err := asv.Open(asv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}()

	col, err := db.CreateColumn("c", 256, asv.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if col.NumPages() != 256 || col.Rows() != 256*asv.ValuesPerPage {
		t.Fatalf("NumPages=%d Rows=%d", col.NumPages(), col.Rows())
	}
	if err := col.Fill(asv.Sine(1, 0, 100_000_000, 20)); err != nil {
		t.Fatal(err)
	}

	var first, last asv.Result
	for i := 0; i < 25; i++ {
		lo := uint64(i) * 1_000_000
		res, err := col.Query(lo, lo+2_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res
		}
		last = res
	}
	if first.PagesScanned == 0 {
		t.Fatal("first query scanned nothing")
	}
	if len(col.Views()) == 0 {
		t.Fatal("no views were created adaptively")
	}
	_ = last
}

func TestDuplicateColumnRejected(t *testing.T) {
	db, _ := asv.Open(asv.Options{})
	defer db.Close()
	if _, err := db.CreateColumn("x", 16, asv.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateColumn("x", 16, asv.DefaultConfig()); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if _, ok := db.Column("x"); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := db.Column("y"); ok {
		t.Fatal("phantom column")
	}
}

func TestUpdateFlow(t *testing.T) {
	db, _ := asv.Open(asv.Options{})
	defer db.Close()
	col, err := db.CreateColumn("u", 128, asv.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Fill(asv.Uniform(3, 1000, 2000)); err != nil {
		t.Fatal(err)
	}
	if err := col.CreateView(0, 500); err != nil {
		t.Fatal(err)
	}
	if err := col.Update(10, 42); err != nil {
		t.Fatal(err)
	}
	rep, err := col.FlushUpdates()
	if err != nil {
		t.Fatal(err)
	}
	if rep.BatchSize != 1 {
		t.Fatalf("report: %+v", rep)
	}
	v, err := col.Value(10)
	if err != nil || v != 42 {
		t.Fatalf("Value = %d, %v", v, err)
	}
	// The updated value must now be findable via the view layer.
	res, err := col.Query(42, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count < 1 {
		t.Fatal("updated value not found")
	}
}

func TestBaselineConfigNeverCreatesViews(t *testing.T) {
	db, _ := asv.Open(asv.Options{})
	defer db.Close()
	col, _ := db.CreateColumn("b", 64, asv.BaselineConfig())
	_ = col.Fill(asv.Uniform(1, 0, 1000))
	for i := 0; i < 5; i++ {
		if _, err := col.Query(0, 500); err != nil {
			t.Fatal(err)
		}
	}
	if len(col.Views()) != 0 {
		t.Fatal("baseline created views")
	}
}

func TestMemoryAccounting(t *testing.T) {
	db, _ := asv.Open(asv.Options{})
	defer db.Close()
	if db.MemoryInUse() != 0 {
		t.Fatal("fresh DB uses memory")
	}
	_, err := db.CreateColumn("m", 64, asv.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := db.MemoryInUse(); got != 64*asv.PageSize {
		t.Fatalf("MemoryInUse = %d, want %d", got, 64*asv.PageSize)
	}
}

func TestCloseReleasesEverything(t *testing.T) {
	db, _ := asv.Open(asv.Options{})
	col, _ := db.CreateColumn("c", 64, asv.DefaultConfig())
	_ = col.Fill(asv.Uniform(9, 0, 1_000_000))
	for i := 0; i < 10; i++ {
		if _, err := col.Query(uint64(i*10_000), uint64(i*10_000+5_000)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if db.MemoryInUse() != 0 {
		t.Fatalf("MemoryInUse = %d after Close", db.MemoryInUse())
	}
}

func TestRebuildViewsPublic(t *testing.T) {
	db, _ := asv.Open(asv.Options{})
	defer db.Close()
	col, _ := db.CreateColumn("r", 64, asv.DefaultConfig())
	_ = col.Fill(asv.Linear(5, 0, 1_000_000, 64))
	if err := col.CreateView(0, 100_000); err != nil {
		t.Fatal(err)
	}
	if err := col.RebuildViews(); err != nil {
		t.Fatal(err)
	}
	if len(col.Views()) != 1 {
		t.Fatalf("views after rebuild: %v", col.Views())
	}
}
