package asv

import (
	"testing"
	"time"
)

// TestAutopilotFacade drives the autopilot through the public surface:
// fire-and-forget updates, the Sync barrier, metrics and flush-latency
// percentiles.
func TestAutopilotFacade(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	plain, err := db.CreateColumn("plain", 64, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plain.AutopilotMetrics(); ok {
		t.Fatal("plain column reports an autopilot")
	}
	if plain.AutopilotFlushLatencies() != nil || plain.QueuedUpdates() != 0 {
		t.Fatal("plain column leaks autopilot state")
	}

	col, err := db.CreateColumn("auto", 64, WithAutopilot(DefaultConfig(), AutopilotConfig{
		CoalesceCount:    1 << 30,
		MaxFlushLatency:  time.Hour,
		MaintainInterval: -1,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := col.FillParallel(Sine(1, 0, 1_000_000, 8)); err != nil {
		t.Fatal(err)
	}
	for _, c := range []*Column{plain, col} {
		if err := c.CreateView(0, 250_000); err != nil {
			t.Fatal(err)
		}
	}
	if err := plain.Fill(Sine(1, 0, 1_000_000, 8)); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 100; i++ {
		if err := col.Update(i*17, uint64(i)); err != nil {
			t.Fatal(err)
		}
		if err := plain.Update(i*17, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := col.QueuedUpdates(); got != 100 {
		t.Fatalf("queued %d, want 100", got)
	}
	if err := col.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := plain.Sync(); err != nil {
		t.Fatal(err)
	}
	ra, err := col.Query(0, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := plain.Query(0, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Count != rp.Count || ra.Sum != rp.Sum {
		t.Fatalf("autopilot answers (%d,%d) != plain (%d,%d)", ra.Count, ra.Sum, rp.Count, rp.Sum)
	}

	m, ok := col.AutopilotMetrics()
	if !ok || m.Enqueued != 100 || m.Applied != 100 || m.Flushes == 0 {
		t.Fatalf("metrics %+v ok=%v", m, ok)
	}
	lats := col.AutopilotFlushLatencies()
	if len(lats) == 0 {
		t.Fatal("no flush latency samples")
	}
	if p99 := AutopilotPercentile(lats, 0.99); p99 < 0 {
		t.Fatalf("p99 %s", p99)
	}
}
