// Updates: batched view maintenance (§2.4/§2.5). An order table keeps hot
// views over "open" status codes while a write stream mutates rows; the
// views are realigned per batch — parse the (simulated) maps file once,
// then add/remove exactly the affected pages — and the example compares
// that against rebuilding the views from scratch. A final section drives
// the same volume through concurrent writers: the write path is sharded
// by physical page, so parallel Update/UpdateBatch callers only
// serialize per page group.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	asv "github.com/asv-db/asv"
)

func main() {
	db, err := asv.Open(asv.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	const pages = 4096
	const domain = 1_000_000_000
	// Order keys 0..1B; the "hot" orders live in [0, 300_000] — a narrow
	// slice, so only a small fraction of pages carries one.
	const hotLo, hotHi = 0, 300_000
	col, err := db.CreateColumn("order_status", pages, asv.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := col.Fill(asv.Uniform(11, 0, domain)); err != nil {
		log.Fatal(err)
	}

	// Pre-warm a view over the hot range, as an operator might.
	if err := col.CreateView(hotLo, hotHi); err != nil {
		log.Fatal(err)
	}
	v := col.Views()[0]
	fmt.Printf("hot view over [%d, %d]: %d pages\n", v.Lo, v.Hi, v.Pages)

	// A write stream closes and opens orders. Values are chosen so some
	// rows enter the hot range and some leave it.
	rng := uint64(0xdeadbeef)
	next := func(n uint64) uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng % n
	}
	const batches, perBatch = 5, 20_000
	for b := 0; b < batches; b++ {
		for i := 0; i < perBatch; i++ {
			row := int(next(uint64(col.Rows())))
			if err := col.Update(row, next(domain)); err != nil {
				log.Fatal(err)
			}
		}
		rep, err := col.FlushUpdates()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("batch %d: %5d updates -> %4d net pages touched | parse %7s + align %7s | +%d/-%d view pages\n",
			b, rep.BatchSize, rep.DirtyPages,
			rep.ParseDuration.Round(10*time.Microsecond),
			rep.AlignDuration.Round(10*time.Microsecond),
			rep.PagesAdded, rep.PagesRemoved)
	}

	// The alternative: rebuild the views from scratch (the "New" bar in
	// the paper's Figure 7).
	t0 := time.Now()
	if err := col.RebuildViews(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrebuilding all views from scratch instead: %s\n",
		time.Since(t0).Round(10*time.Microsecond))

	// Correctness spot check: the view layer answers like a fresh scan.
	res, err := col.Query(hotLo, hotHi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hot orders after all batches: %d (scanned %d pages via views)\n",
		res.Count, res.PagesScanned)

	// Concurrent write stream: four writers push deterministic update
	// streams (group commits of 64 rows) in parallel. Buffers are
	// sharded by physical page, so the writers only serialize where
	// their rows share a page group; one flush realigns everything.
	const writers, perWriter = 4, 10_000
	streams := asv.ConcurrentUpdateStreams(99, writers, perWriter, col.Rows(), 0, domain)
	t1 := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]asv.RowWrite, 0, 64)
			for _, u := range streams[w] {
				buf = append(buf, asv.RowWrite{Row: u.Row, Value: u.Value})
				if len(buf) == cap(buf) {
					if err := col.UpdateBatch(buf); err != nil {
						errs[w] = err
						return
					}
					buf = buf[:0]
				}
			}
			errs[w] = col.UpdateBatch(buf)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			log.Fatal(err)
		}
	}
	wrote := time.Since(t1)
	rep, err := col.FlushUpdates()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d concurrent writers: %d updates in %s (%.0f upd/s), one flush realigned +%d/-%d pages\n",
		writers, writers*perWriter, wrote.Round(10*time.Microsecond),
		float64(writers*perWriter)/wrote.Seconds(), rep.PagesAdded, rep.PagesRemoved)

	check, err := col.Query(hotLo, hotHi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hot orders after the concurrent storm: %d (scanned %d pages via views)\n",
		check.Count, check.PagesScanned)
}
