// Scenarios: the generator family beyond the paper's four distributions.
// Builds one column per registered distribution with the parallel fill
// path, fires the same query at each, and shows how the adaptive layer
// reacts to value skew (zipf), a hot region (hotspot), per-page locality
// (clustered) and a sliding window (shifted).
package main

import (
	"fmt"
	"log"
	"time"

	asv "github.com/asv-db/asv"
)

func main() {
	db, err := asv.Open(asv.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	const (
		pages  = 4096
		domain = 100_000_000
	)

	fmt.Printf("%-10s %10s %8s %14s %12s\n", "dist", "fill", "rows", "pages scanned", "views after")
	for _, name := range asv.GeneratorNames() {
		g, err := asv.GeneratorByName(name, 42, 0, domain, pages)
		if err != nil {
			log.Fatal(err)
		}
		col, err := db.CreateColumn(name, pages, asv.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		if err := col.FillParallel(g); err != nil {
			log.Fatal(err)
		}
		fill := time.Since(t0)

		// The same mid-domain range twice: the first query adapts, the
		// second harvests the view.
		if _, err := col.Query(40_000_000, 42_000_000); err != nil {
			log.Fatal(err)
		}
		res, err := col.Query(40_000_000, 42_000_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %10s %8d %14d %12d\n",
			name, fill.Round(time.Microsecond), res.Count, res.PagesScanned, len(col.Views()))
	}
}
