// Quickstart: open a DB, create and fill a column, run range queries, and
// watch partial views appear as a side product of query processing.
package main

import (
	"fmt"
	"log"

	asv "github.com/asv-db/asv"
)

func main() {
	db, err := asv.Open(asv.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// A 4096-page column holds ~2M 8-byte values (16 MiB). Clustered data
	// (here: a sine wave over the page sequence, like cyclic sensor
	// readings) is where storage views shine — value ranges map to small
	// page subsets.
	col, err := db.CreateColumn("numbers", 4096, asv.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := col.Fill(asv.Sine(1, 0, 100_000_000, 100)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("column %q: %d rows in %d pages\n", col.Name(), col.Rows(), col.NumPages())

	// The first query has no views to use: it full-scans, and builds a
	// partial view covering its range as a side product.
	res, err := col.Query(10_000_000, 12_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query 1: %d rows, scanned %d pages (full view: %v)\n",
		res.Count, res.PagesScanned, res.UsedFullView)

	// A second query inside the same range is answered from the new view.
	res, err = col.Query(10_500_000, 11_500_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query 2: %d rows, scanned %d pages (full view: %v)\n",
		res.Count, res.PagesScanned, res.UsedFullView)

	// Updates go through the full view and are folded into the partial
	// views in batches.
	if err := col.Update(0, 10_999_999); err != nil {
		log.Fatal(err)
	}
	report, err := col.FlushUpdates()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("update flush: %d update(s), %d page(s) added to views\n",
		report.BatchSize, report.PagesAdded)

	for i, v := range col.Views() {
		fmt.Printf("view %d: [%d, %d] over %d pages\n", i, v.Lo, v.Hi, v.Pages)
	}

	// One options-based entry point unifies the read API: request row IDs
	// and aggregates alongside the usual telemetry in a single scan.
	ans, err := col.QueryOpt(10_000_000, 12_000_000, asv.Rows(), asv.Aggregate())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("queryopt: %d rows materialized, min %d, max %d, mean %.0f\n",
		ans.Rows.Len(), ans.Agg.Min, ans.Agg.Max, ans.Agg.Mean())
	fmt.Printf("memory in use: %d MiB\n", db.MemoryInUse()/(1<<20))
}
