// Snapshot: pin an engine epoch and keep reading a stable, repeatable
// view of a column while writers update, flush, and realign the views
// underneath. Epoch-routed reads never enter the engine's room lock, so
// the pinned reader is immune to — and never stalls behind — alignment.
package main

import (
	"fmt"
	"log"

	asv "github.com/asv-db/asv"
)

func main() {
	db, err := asv.Open(asv.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	col, err := db.CreateColumn("readings", 2048, asv.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := col.FillParallel(asv.Sine(7, 0, 100_000_000, 100)); err != nil {
		log.Fatal(err)
	}

	// Warm up the adaptive layer: a couple of queries grow views.
	const lo, hi = 20_000_000, 24_000_000
	if _, err := col.Query(lo, hi); err != nil {
		log.Fatal(err)
	}

	// Pin the current epoch. Everything the snapshot can reach — the view
	// set as routed right now and every page frame behind it — is frozen
	// for this handle; writers copy-on-write around it.
	snap, err := col.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	defer snap.Close()

	before, err := snap.QueryOpt(lo, hi, asv.Aggregate())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pinned:   %d rows in [%d, %d], sum %d\n", before.Count, lo, hi, before.Sum)

	// A writer overwrites rows and flushes — alignment rewires view pages
	// and publishes a new epoch. The pinned handle does not move.
	for row := 0; row < 50_000; row += 7 {
		if err := col.Update(row, 99_000_000); err != nil {
			log.Fatal(err)
		}
	}
	report, err := col.FlushUpdates()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mutated:  %d updates flushed, %d dirty pages, +%d/-%d view pages\n",
		report.BatchSize, report.DirtyPages, report.PagesAdded, report.PagesRemoved)

	again, err := snap.QueryOpt(lo, hi, asv.Aggregate())
	if err != nil {
		log.Fatal(err)
	}
	live, err := col.Query(lo, hi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pinned:   %d rows, sum %d (repeatable: %v)\n",
		again.Count, again.Sum, again.Count == before.Count && again.Sum == before.Sum)
	fmt.Printf("live:     %d rows, sum %d (moved with the writes)\n", live.Count, live.Sum)
}
