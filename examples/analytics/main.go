// Analytics: multi-column tables (the paper's Figure 1). Every column of a
// trip table carries its own adaptive view layer; conjunctive predicates
// are answered per column via the best views and intersected as row sets.
// Repeating a dashboard's filter combinations trains the views of all
// involved columns at once.
package main

import (
	"fmt"
	"log"

	asv "github.com/asv-db/asv"
)

func main() {
	db, err := asv.Open(asv.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	const pages = 4096 // ~2M trips
	tbl, err := db.CreateTable("trips", pages,
		[]string{"distance_m", "fare_cents", "hour"}, asv.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	// Trip distances cluster by time of day (sine), fares follow distance
	// ordering loosely (linear), and the hour column cycles.
	if err := tbl.FillColumn("distance_m", asv.Sine(1, 0, 50_000, 256)); err != nil {
		log.Fatal(err)
	}
	if err := tbl.FillColumn("fare_cents", asv.Linear(2, 100, 20_000, pages)); err != nil {
		log.Fatal(err)
	}
	if err := tbl.FillColumn("hour", asv.Sine(3, 0, 23, 512)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("table %q: %d rows x %d columns\n", tbl.Name(), tbl.Rows(), len(tbl.Columns()))

	// A dashboard keeps asking variations of the same filter combination.
	filters := []struct {
		name  string
		preds []asv.Predicate
	}{
		{"short cheap trips", []asv.Predicate{
			{Column: "distance_m", Lo: 0, Hi: 2_000},
			{Column: "fare_cents", Lo: 100, Hi: 2_000},
		}},
		{"long rush-hour trips", []asv.Predicate{
			{Column: "distance_m", Lo: 30_000, Hi: 50_000},
			{Column: "hour", Lo: 7, Hi: 9},
		}},
		{"mid-range evening", []asv.Predicate{
			{Column: "distance_m", Lo: 10_000, Hi: 20_000},
			{Column: "fare_cents", Lo: 5_000, Hi: 9_000},
			{Column: "hour", Lo: 18, Hi: 21},
		}},
	}

	for round := 0; round < 3; round++ {
		fmt.Printf("\nround %d:\n", round)
		for _, f := range filters {
			res, err := tbl.Select(f.preds...)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-22s %7d rows  (%5d pages scanned across %d view routings)\n",
				f.name, res.Rows.Len(), res.PagesScanned, res.ViewsUsed)
		}
	}

	fmt.Println("\nper-column view sets after training:")
	for _, cn := range tbl.Columns() {
		views, err := tbl.ColumnViews(cn)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %d views\n", cn, len(views))
		for _, v := range views {
			fmt.Printf("    [%10d, %10d] %5d pages\n", v.Lo, v.Hi, v.Pages)
		}
	}
}
