// Sensor: the paper's motivating scenario — clustered time-series data
// (daily temperature cycles) queried repeatedly over operational value
// ranges. The adaptive layer turns the recurring ranges into partial
// views; this example shows the per-query cost collapsing over the
// sequence, the effect Figure 4 plots.
package main

import (
	"fmt"
	"log"
	"time"

	asv "github.com/asv-db/asv"
)

func main() {
	db, err := asv.Open(asv.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// One month of sensor readings: values cycle like a daily temperature
	// curve (sine over the page sequence, one "day" = 128 pages), in
	// milli-degrees from -20000 (encoded 0) to 45000 (encoded 65000000).
	const pages = 8192
	col, err := db.CreateColumn("temperature_mC", pages, asv.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := col.Fill(asv.Sine(7, 0, 65_000_000, 128)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d readings (%d pages)\n", col.Rows(), col.NumPages())

	// Operational dashboards ask the same kinds of questions again and
	// again: frost alerts, comfort band, overheating.
	bands := []struct {
		name   string
		lo, hi uint64
	}{
		{"frost     (< 0 deg)", 0, 20_000_000},
		{"comfort   (18-26 deg)", 38_000_000, 46_000_000},
		{"overheat  (> 35 deg)", 55_000_000, 65_000_000},
	}

	fmt.Println("\nround  band                     rows      pages   time")
	var firstRound, lastRound time.Duration
	const rounds = 8
	for round := 0; round < rounds; round++ {
		var roundTime time.Duration
		for _, b := range bands {
			t0 := time.Now()
			res, err := col.Query(b.lo, b.hi)
			if err != nil {
				log.Fatal(err)
			}
			d := time.Since(t0)
			roundTime += d
			if round == 0 || round == rounds-1 {
				fmt.Printf("%5d  %-22s %8d   %6d   %8s\n",
					round, b.name, res.Count, res.PagesScanned, d.Round(10*time.Microsecond))
			}
		}
		if round == 0 {
			firstRound = roundTime
		}
		lastRound = roundTime
	}

	fmt.Printf("\nfirst dashboard refresh: %s\n", firstRound.Round(10*time.Microsecond))
	fmt.Printf("last dashboard refresh:  %s (%.1fx faster)\n",
		lastRound.Round(10*time.Microsecond), float64(firstRound)/float64(lastRound))

	stats := col.Stats()
	fmt.Printf("\nviews created: %d, queries: %d, pages scanned in total: %d\n",
		stats.ViewsCreated, stats.Queries, stats.PagesScanned)
	for i, v := range col.Views() {
		fmt.Printf("  view %d: values [%d, %d] -> %d pages\n", i, v.Lo, v.Hi, v.Pages)
	}
}
