// Multiview: fixed-selectivity analytics in multi-view mode (§2.1). A
// fleet-monitoring dashboard slices a metric into fixed-width windows at
// arbitrary positions; no single view covers every window, but once the
// adaptive layer has accumulated overlapping partial views, queries are
// answered by stitching several of them — the behaviour Figure 5 plots.
package main

import (
	"fmt"
	"log"

	asv "github.com/asv-db/asv"
)

func main() {
	db, err := asv.Open(asv.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	cfg := asv.DefaultConfig()
	cfg.Mode = asv.MultiView
	cfg.MaxViews = 200

	const pages = 8192
	const domain = 100_000_000
	col, err := db.CreateColumn("latency_us", pages, cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Periodically clustered latencies (load cycles).
	if err := col.Fill(asv.Sine(3, 0, domain, 100)); err != nil {
		log.Fatal(err)
	}

	// 1%-wide windows at pseudo-random positions.
	const windows = 300
	width := uint64(domain / 100)
	stitched, fullScans := 0, 0
	maxViews := 0
	pos := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < windows; i++ {
		pos = pos*6364136223846793005 + 1442695040888963407 // LCG positions
		lo := pos % (domain - width)
		res, err := col.Query(lo, lo+width)
		if err != nil {
			log.Fatal(err)
		}
		if res.UsedFullView {
			fullScans++
		}
		if res.ViewsUsed > 1 {
			stitched++
		}
		if res.ViewsUsed > maxViews {
			maxViews = res.ViewsUsed
		}
		if i < 3 || i >= windows-3 {
			fmt.Printf("window %3d [%8d, %8d]: %6d rows via %d view(s), %4d pages\n",
				i, lo, lo+width, res.Count, res.ViewsUsed, res.PagesScanned)
		}
		if i == 3 {
			fmt.Println("...")
		}
	}

	fmt.Printf("\n%d/%d windows answered by stitching multiple views (max %d views per query)\n",
		stitched, windows, maxViews)
	fmt.Printf("%d/%d windows still needed a full scan\n", fullScans, windows)
	fmt.Printf("partial views held: %d\n", len(col.Views()))
}
