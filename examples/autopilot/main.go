// Autopilot: the background maintenance subsystem. A sensor column keeps
// serving concurrent readers while writers fire lone, fire-and-forget
// Updates at it — no caller-side batching, no explicit flushes. The
// autopilot coalesces the writes into group commits under a 5ms latency
// bound, picks scan/alignment fan-out from its learned cost model, and
// runs a temperature-driven view lifecycle (cold views evicted,
// fragmented ones rebuilt, hot soft-TLBs pre-warmed). The example
// contrasts the same write volume pushed through a plain column with
// synchronous lone Updates.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	asv "github.com/asv-db/asv"
)

// The volume is deliberately small: the synchronous baseline pays one
// room turn — and hands the next query a one-update batch to flush and
// align — per lone write, which is exactly the degradation the autopilot
// exists to remove.
const (
	pages   = 2048
	domain  = 100_000_000
	writers = 2
	readers = 2
	perW    = 2_500
)

func main() {
	db, err := asv.Open(asv.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// One column with an autopilot (5ms flush bound, defaults otherwise),
	// one plain column as the synchronous baseline.
	auto, err := db.CreateColumn("readings-auto", pages, asv.WithAutopilot(asv.DefaultConfig(),
		asv.AutopilotConfig{MaxFlushLatency: 5 * time.Millisecond}))
	if err != nil {
		log.Fatal(err)
	}
	plain, err := db.CreateColumn("readings-plain", pages, asv.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	for _, col := range []*asv.Column{auto, plain} {
		if err := col.FillParallel(asv.Sine(7, 0, domain, 100)); err != nil {
			log.Fatal(err)
		}
		// A hot view an operator pre-warmed; queries grow more adaptively.
		if err := col.CreateView(0, domain/64); err != nil {
			log.Fatal(err)
		}
	}

	streams := asv.ConcurrentUpdateStreams(42, writers, perW, auto.Rows(), 0, domain)
	// Disjoint rows per writer (row ≡ writer mod writers): the final
	// column state is then independent of scheduling, so the two columns
	// must converge to identical answers.
	for w := range streams {
		for i := range streams[w] {
			r := streams[w][i].Row
			streams[w][i].Row = r - r%writers + w
		}
	}
	queries := asv.ConcurrentStreams(42, readers, 400, domain, 0.01)

	run := func(col *asv.Column, name string) {
		var (
			wg, rwg sync.WaitGroup
			done    atomic.Bool
			qCount  atomic.Int64
		)
		start := time.Now()
		for r := 0; r < readers; r++ {
			rwg.Add(1)
			go func(qs []asv.RangeQuery) {
				defer rwg.Done()
				for !done.Load() {
					for _, q := range qs {
						if _, err := col.Query(q.Lo, q.Hi); err != nil {
							log.Fatal(err)
						}
						qCount.Add(1)
						if done.Load() {
							return
						}
					}
				}
			}(queries[r])
		}
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(us []asv.PointUpdate) {
				defer wg.Done()
				for _, u := range us {
					// Lone updates on both paths: the difference is who
					// turns them into group commits.
					if err := col.Update(u.Row, u.Value); err != nil {
						log.Fatal(err)
					}
				}
			}(streams[w])
		}
		wg.Wait()
		if err := col.Sync(); err != nil { // read-your-writes barrier
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		done.Store(true)
		rwg.Wait()
		upds := float64(writers*perW) / elapsed.Seconds()
		qps := float64(qCount.Load()) / elapsed.Seconds()
		fmt.Printf("%-28s %10.0f upd/s  %8.0f reader qps\n", name, upds, qps)
	}

	fmt.Printf("lone fire-and-forget updates under %d readers (%d writers × %d updates):\n\n",
		readers, writers, perW)
	run(plain, "synchronous lone updates")
	run(auto, "autopilot-coalesced updates")

	m, _ := auto.AutopilotMetrics()
	lats := auto.AutopilotFlushLatencies()
	fmt.Printf("\nautopilot telemetry:\n")
	fmt.Printf("  %d writes coalesced into %d group commits (avg %.0f writes/flush)\n",
		m.Applied, m.Flushes, m.AvgCoalesce())
	fmt.Printf("  flush triggers: %d count-threshold, %d deadline, %d backpressure, %d sync\n",
		m.CountFlushes, m.DeadlineFlushes, m.BackpressureFlushes, m.SyncFlushes)
	fmt.Printf("  flush latency: p50 %s, p99 %s (bound 5ms + alignment)\n",
		asv.AutopilotPercentile(lats, 0.50).Round(time.Microsecond),
		asv.AutopilotPercentile(lats, 0.99).Round(time.Microsecond))
	fmt.Printf("  lifecycle: %d maintenance ticks, %d cold views evicted, %d rebuilt, %d TLB pages warmed\n",
		m.MaintenanceTicks, m.ViewsEvicted, m.ViewsRebuilt, m.TLBPagesWarmed)

	// The two columns converged to the same data: same answers everywhere.
	ra, err := auto.Query(0, domain/2)
	if err != nil {
		log.Fatal(err)
	}
	rp, err := plain.Query(0, domain/2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nequivalence: auto (%d, %d) vs plain (%d, %d) over half the domain\n",
		ra.Count, ra.Sum, rp.Count, rp.Sum)
}
