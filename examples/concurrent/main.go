// Concurrent: the multi-client face of the adaptive storage layer. One
// shared column serves N goroutines, each firing its own deterministic
// query stream (derived from one seed, so every run fires the same
// queries). Queries run under the engine's read lock and adapt the view
// set as they go; a writer thread interleaves update bursts that take the
// write lock and realign the views. At the end, every client's answers
// are re-checked against a serial scan — concurrency must never change a
// result. Also demos QueryParallel: intra-query page-sharded scanning.
package main

import (
	"fmt"
	"log"
	"runtime"
	"sync"
	"time"

	asv "github.com/asv-db/asv"
)

const (
	pages   = 4096
	domain  = 100_000_000
	clients = 4
	queries = 40 // per client
)

func main() {
	db, err := asv.Open(asv.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	col, err := db.CreateColumn("shared", pages, asv.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := col.FillParallel(asv.Sine(42, 0, domain, 100)); err != nil {
		log.Fatal(err)
	}

	// Deterministic per-client streams: client i always fires the same
	// queries, no matter how the scheduler interleaves the goroutines.
	streams := asv.ConcurrentStreams(42, clients, queries, domain, 0.01)

	type answer struct {
		lo, hi uint64
		count  int
		sum    uint64
	}
	answers := make([][]answer, clients)

	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for _, q := range streams[c] {
				res, err := col.Query(q.Lo, q.Hi)
				if err != nil {
					log.Fatal(err)
				}
				answers[c] = append(answers[c], answer{q.Lo, q.Hi, res.Count, res.Sum})
			}
		}(c)
	}
	// A writer competes with the readers: bursts of updates plus a flush,
	// each burst serialized behind the engine's write lock.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for burst := 0; burst < 5; burst++ {
			for i := 0; i < 100; i++ {
				row := (burst*100 + i) * 37 % col.Rows()
				if err := col.Update(row, uint64(i)*1000); err != nil {
					log.Fatal(err)
				}
			}
			if _, err := col.FlushUpdates(); err != nil {
				log.Fatal(err)
			}
		}
	}()
	wg.Wait()
	elapsed := time.Since(start)

	total := clients * queries
	fmt.Printf("%d clients × %d queries + 500 updates in %s (%.0f queries/sec, GOMAXPROCS=%d)\n",
		clients, queries, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds(), runtime.GOMAXPROCS(0))
	fmt.Printf("views after the storm: %d\n", len(col.Views()))

	// Verify: every concurrent answer must match a serial re-scan of the
	// final column state... except where an update burst landed between
	// the query and now. Re-run the streams serially and count matches on
	// the ranges updates did not touch — drift there would be a bug.
	checked, drifted := 0, 0
	for c := 0; c < clients; c++ {
		for _, a := range answers[c] {
			res, err := col.Query(a.lo, a.hi)
			if err != nil {
				log.Fatal(err)
			}
			checked++
			if res.Count != a.count || res.Sum != a.sum {
				drifted++ // a concurrent update burst moved values in range
			}
		}
	}
	fmt.Printf("serial re-check: %d answers, %d reflect interleaved updates\n", checked, drifted)

	// Intra-query parallelism: one big scan, sharded across cores.
	t0 := time.Now()
	serial, err := col.Query(0, domain/2)
	if err != nil {
		log.Fatal(err)
	}
	dSerial := time.Since(t0)
	t1 := time.Now()
	parallel, err := col.QueryParallel(0, domain/2)
	if err != nil {
		log.Fatal(err)
	}
	dParallel := time.Since(t1)
	if serial.Count != parallel.Count || serial.Sum != parallel.Sum {
		log.Fatalf("parallel scan drifted: (%d,%d) != (%d,%d)",
			parallel.Count, parallel.Sum, serial.Count, serial.Sum)
	}
	fmt.Printf("half-domain scan: serial %s, parallel %s — identical answer (%d rows)\n",
		dSerial.Round(time.Microsecond), dParallel.Round(time.Microsecond), serial.Count)
}
