// Benchmarks regenerating the cost core of every table and figure in the
// paper's evaluation (§3). Each benchmark measures the operation the
// corresponding plot reports — per-query latency (Fig. 3/4/5), view
// creation time (Fig. 6), batch alignment time (Fig. 7), accumulated
// sequence time (Table 1) — at a bench-friendly scale. The full-scale
// series with the paper's exact workloads come from cmd/asvbench; see
// EXPERIMENTS.md for the paper-vs-measured comparison.
//
// Ablation benchmarks at the bottom quantify the design decisions called
// out in DESIGN.md §4.
package asv_test

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"github.com/asv-db/asv/internal/autopilot"
	"github.com/asv-db/asv/internal/core"
	"github.com/asv-db/asv/internal/dist"
	"github.com/asv-db/asv/internal/explicit"
	"github.com/asv-db/asv/internal/obs"
	"github.com/asv-db/asv/internal/storage"
	"github.com/asv-db/asv/internal/view"
	"github.com/asv-db/asv/internal/vmsim"
	"github.com/asv-db/asv/internal/workload"
)

const (
	benchPages  = 4096 // 16 MiB columns keep -bench minutes, not hours
	benchDomain = 100_000_000
)

// benchColumn builds a filled column, outside the timer.
func benchColumn(b *testing.B, pages int, g dist.Generator) *storage.Column {
	b.Helper()
	k := vmsim.NewKernel(0)
	as := k.NewAddressSpace()
	as.SetMaxMapCount(1<<32 - 1)
	c, err := storage.NewColumn(k, as, "bench", pages)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.Fill(g); err != nil {
		b.Fatal(err)
	}
	return c
}

// ---------------------------------------------------------------------------
// Figure 2: distribution generators.

func BenchmarkFig2_Generators(b *testing.B) {
	for _, name := range []string{"uniform", "linear", "sine", "sparse"} {
		b.Run(name, func(b *testing.B) {
			g, err := dist.ByName(name, 1, 0, benchDomain, benchPages)
			if err != nil {
				b.Fatal(err)
			}
			out := make([]uint64, storage.ValuesPerPage)
			b.SetBytes(int64(len(out) * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.FillPage(i%benchPages, out)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Figure 3: explicit vs virtual partial views. One sub-benchmark per
// variant, measuring the query [0, k/2] against an index over [0, k] after
// the update stream — the exact quantity on the Figure 3 y-axis.

func fig3Index(b *testing.B, col *storage.Column, variant string, k uint64) explicit.Index {
	b.Helper()
	var (
		idx explicit.Index
		err error
	)
	switch variant {
	case "zonemap":
		idx = explicit.NewZoneMap(col, 0, k)
	case "bitmap":
		idx, err = explicit.NewBitmap(col, 0, k)
	case "pagevector":
		idx, err = explicit.NewPageVector(col, 0, k)
	case "physical":
		idx, err = explicit.NewPhysicalScan(col, 0, k)
	case "virtual":
		idx, err = explicit.NewVirtualView(col, 0, k, view.CreateOptions{Consecutive: true}, nil)
	}
	if err != nil {
		b.Fatal(err)
	}
	return idx
}

func BenchmarkFig3_ExplicitVsVirtual(b *testing.B) {
	// k=20000 is the paper's mid selectivity (~9.7% of pages indexed).
	const k = 20000
	for _, variant := range []string{"zonemap", "bitmap", "pagevector", "physical", "virtual"} {
		b.Run(variant, func(b *testing.B) {
			col := benchColumn(b, benchPages, dist.NewUniform(1, 0, benchDomain))
			idx := fig3Index(b, col, variant, k)
			// The Figure 3 update stream, scaled with the column.
			ups := workload.UniformUpdates(2, 1000, col.Rows(), 0, benchDomain)
			for _, u := range ups {
				old, err := col.SetValue(u.Row, u.Value)
				if err != nil {
					b.Fatal(err)
				}
				if err := idx.ApplyUpdate(u.Row, old, u.Value); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := idx.Lookup(0, k/2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Figure 4: adaptive query processing, single-view mode. One iteration =
// the full shuffled selectivity sweep; the custom metrics report the
// accumulated adaptive time against the full-scan baseline.

func benchFig4(b *testing.B, distName string) {
	g, err := dist.ByName(distName, 42, 0, benchDomain, benchPages)
	if err != nil {
		b.Fatal(err)
	}
	queries := workload.SelectivitySweep(42, 100, benchDomain, benchDomain/2, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		col := benchColumn(b, benchPages, g)
		cfg := core.DefaultConfig()
		cfg.MaxViews = 100
		eng, err := core.NewEngine(col, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		pages := 0
		for _, q := range queries {
			res, err := eng.Query(q.Lo, q.Hi)
			if err != nil {
				b.Fatal(err)
			}
			pages += res.PagesScanned
		}
		b.StopTimer()
		b.ReportMetric(float64(pages)/float64(len(queries)), "pages/query")
		_ = eng.Close()
		_ = col.Close()
		b.StartTimer()
	}
}

func BenchmarkFig4a_AdaptiveSine(b *testing.B)   { benchFig4(b, "sine") }
func BenchmarkFig4b_AdaptiveLinear(b *testing.B) { benchFig4(b, "linear") }
func BenchmarkFig4c_AdaptiveSparse(b *testing.B) { benchFig4(b, "sparse") }

// BenchmarkFig4_FullscanBaseline is the flat baseline line of Figure 4.
func BenchmarkFig4_FullscanBaseline(b *testing.B) {
	col := benchColumn(b, benchPages, dist.NewSine(42, 0, benchDomain, 100))
	eng, err := core.NewEngine(col, core.BaselineConfig())
	if err != nil {
		b.Fatal(err)
	}
	queries := workload.SelectivitySweep(42, 100, benchDomain, benchDomain/2, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		if _, err := eng.Query(q.Lo, q.Hi); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 5: adaptive query processing, multi-view mode, fixed selectivity.

func benchFig5(b *testing.B, sel float64, maxViews int) {
	queries := workload.FixedSelectivity(42, 150, benchDomain, sel)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		col := benchColumn(b, benchPages, dist.NewSine(42, 0, benchDomain, 100))
		cfg := core.DefaultConfig()
		cfg.Mode = core.MultiView
		cfg.MaxViews = maxViews
		eng, err := core.NewEngine(col, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		views := 0
		for _, q := range queries {
			res, err := eng.Query(q.Lo, q.Hi)
			if err != nil {
				b.Fatal(err)
			}
			views += res.ViewsUsed
		}
		b.StopTimer()
		b.ReportMetric(float64(views)/float64(len(queries)), "views/query")
		_ = eng.Close()
		_ = col.Close()
		b.StartTimer()
	}
}

func BenchmarkFig5a_MultiViewSel1(b *testing.B)  { benchFig5(b, 0.01, 200) }
func BenchmarkFig5b_MultiViewSel10(b *testing.B) { benchFig5(b, 0.10, 20) }

// ---------------------------------------------------------------------------
// Table 1: accumulated response time, adaptive vs full scans. The custom
// metric is the speedup factor (paper: up to 1.88x).

func BenchmarkTable1_AccumulatedSpeedup(b *testing.B) {
	queries := workload.SelectivitySweep(42, 100, benchDomain, benchDomain/2, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		col := benchColumn(b, benchPages, dist.NewSine(42, 0, benchDomain, 100))
		adaptive, err := core.NewEngine(col, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		baseline, err := core.NewEngine(col, core.BaselineConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()

		var aTot, bTot time.Duration
		for _, q := range queries {
			t0 := time.Now()
			if _, err := adaptive.Query(q.Lo, q.Hi); err != nil {
				b.Fatal(err)
			}
			aTot += time.Since(t0)
			t1 := time.Now()
			if _, err := baseline.Query(q.Lo, q.Hi); err != nil {
				b.Fatal(err)
			}
			bTot += time.Since(t1)
		}
		b.StopTimer()
		b.ReportMetric(bTot.Seconds()/aTot.Seconds(), "speedup")
		_ = adaptive.Close()
		_ = baseline.Close()
		_ = col.Close()
		b.StartTimer()
	}
}

// ---------------------------------------------------------------------------
// Figure 6: view-creation optimizations. One iteration = creating (and
// releasing, untimed) one partial view.

func benchFig6(b *testing.B, distName string, opts view.CreateOptions) {
	var g dist.Generator
	var lo, hi uint64
	switch distName {
	case "uniform":
		g = dist.NewUniform(1, 0, benchDomain)
		lo, hi = 0, 100_000 // ~40% of pages, short runs
	case "sine":
		g = dist.NewSine(1, 0, math.MaxUint64, 100)
		lo, hi = 0, 1<<63 // ~52% of pages, long runs
	}
	col := benchColumn(b, benchPages, g)
	var mapper *view.Mapper
	if opts.Concurrent {
		mapper = view.NewMapper(0)
		defer mapper.Stop()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := view.Create(col, lo, hi, opts, mapper)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := v.Release(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

func BenchmarkFig6a_CreateUniform(b *testing.B) {
	for _, v := range []struct {
		name string
		opts view.CreateOptions
	}{
		{"no_optimizations", view.CreateOptions{}},
		{"consecutive", view.CreateOptions{Consecutive: true}},
		{"concurrent", view.CreateOptions{Concurrent: true}},
		{"both", view.AllOptimizations},
	} {
		b.Run(v.name, func(b *testing.B) { benchFig6(b, "uniform", v.opts) })
	}
}

func BenchmarkFig6b_CreateSine(b *testing.B) {
	for _, v := range []struct {
		name string
		opts view.CreateOptions
	}{
		{"no_optimizations", view.CreateOptions{}},
		{"consecutive", view.CreateOptions{Consecutive: true}},
		{"concurrent", view.CreateOptions{Concurrent: true}},
		{"both", view.AllOptimizations},
	} {
		b.Run(v.name, func(b *testing.B) { benchFig6(b, "sine", v.opts) })
	}
}

// ---------------------------------------------------------------------------
// Figure 7: update performance vs batch size. One iteration = aligning
// five 1/1024-wide views with a batch (setup untimed), plus a sub-bench
// for the rebuild alternative.

func benchFig7(b *testing.B, distName string, batch int, rebuild bool) {
	var mkGen func() dist.Generator
	switch distName {
	case "uniform":
		mkGen = func() dist.Generator { return dist.NewUniform(1, 0, math.MaxUint64) }
	case "sine":
		mkGen = func() dist.Generator { return dist.NewSine(1, 0, math.MaxUint64, 100) }
	}
	ranges := workload.RandomSubranges(7, 5, math.MaxUint64, 1.0/1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		col := benchColumn(b, benchPages, mkGen())
		cfg := core.DefaultConfig()
		cfg.MaxViews = 5
		eng, err := core.NewEngine(col, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range ranges {
			v, err := eng.CreateView(r.Lo, r.Hi)
			if err != nil {
				b.Fatal(err)
			}
			v.SetRange(r.Lo, r.Hi)
		}
		ups := workload.UniformUpdates(uint64(batch), batch, col.Rows(), 0, math.MaxUint64)
		batchUpdates := make([]core.Update, 0, len(ups))
		for _, u := range ups {
			old, err := col.SetValue(u.Row, u.Value)
			if err != nil {
				b.Fatal(err)
			}
			batchUpdates = append(batchUpdates, core.Update{Row: u.Row, Old: old, New: u.Value})
		}
		b.StartTimer()

		if rebuild {
			if err := eng.RebuildViews(); err != nil {
				b.Fatal(err)
			}
		} else {
			if _, err := eng.AlignViews(batchUpdates); err != nil {
				b.Fatal(err)
			}
		}

		b.StopTimer()
		_ = eng.Close()
		_ = col.Close()
		b.StartTimer()
	}
}

func BenchmarkFig7a_UpdateUniform(b *testing.B) {
	for _, batch := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) { benchFig7(b, "uniform", batch, false) })
	}
	b.Run("rebuild", func(b *testing.B) { benchFig7(b, "uniform", 1000, true) })
}

func BenchmarkFig7b_UpdateSine(b *testing.B) {
	for _, batch := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) { benchFig7(b, "sine", batch, false) })
	}
	b.Run("rebuild", func(b *testing.B) { benchFig7(b, "sine", 1000, true) })
}

// ---------------------------------------------------------------------------
// Concurrency (beyond the paper): intra-query parallel scan kernels and
// multi-client throughput. On a single-core runner the parallel variants
// fall back to (and must not regress against) the serial path; on
// multi-core CI the serial-vs-parallel delta is the speedup the
// Parallelism knob buys.

// BenchmarkQueryParallel measures one full-column range scan through the
// engine, serial vs page-sharded workers. The query range is chosen so no
// partial view can cover it (every iteration pays a full scan), isolating
// the kernel cost.
func BenchmarkQueryParallel(b *testing.B) {
	for _, v := range []struct {
		name    string
		workers int
	}{
		{"serial", 0},
		{"workers2", 2},
		{"gomaxprocs", -1},
	} {
		b.Run(v.name, func(b *testing.B) {
			col := benchColumn(b, benchPages, dist.NewUniform(42, 0, benchDomain))
			// Thread the worker count through Config.Parallelism: its zero
			// value is the true serial loop (QueryParallel would remap
			// workers<=0 to GOMAXPROCS and erase the baseline).
			cfg := core.BaselineConfig()
			cfg.Parallelism = v.workers
			eng, err := core.NewEngine(col, cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			b.SetBytes(int64(benchPages) * storage.PageSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.Query(0, benchDomain/2)
				if err != nil {
					b.Fatal(err)
				}
				if res.PagesScanned != benchPages {
					b.Fatalf("scanned %d pages", res.PagesScanned)
				}
			}
		})
	}
}

// BenchmarkConcurrentClients measures adaptive-engine throughput under N
// concurrent clients firing deterministic per-client streams at one
// shared column — the harness `concurrent` panel at bench scale. One
// iteration = every client completes one query.
func BenchmarkConcurrentClients(b *testing.B) {
	for _, clients := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("clients%d", clients), func(b *testing.B) {
			col := benchColumn(b, benchPages, dist.NewSine(42, 0, benchDomain, 100))
			eng, err := core.NewEngine(col, core.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			streams := workload.ConcurrentClients(42, clients, 64, benchDomain, 0.01)
			var wg sync.WaitGroup
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func(stream []workload.Query, i int) {
						defer wg.Done()
						q := stream[i%len(stream)]
						if _, err := eng.Query(q.Lo, q.Hi); err != nil {
							b.Error(err)
						}
					}(streams[c], i)
				}
				wg.Wait()
			}
			b.ReportMetric(float64(clients), "queries/op")
		})
	}
}

// BenchmarkConcurrentUpdaters measures multi-writer update throughput on
// the sharded write path against the single-buffer baseline — the
// harness `updates` panel's write side at bench scale. One iteration =
// every writer lands one group commit of 64 rows.
func BenchmarkConcurrentUpdaters(b *testing.B) {
	const group = 64
	for _, v := range []struct {
		name   string
		shards int
	}{
		{"singlebuffer", 1},
		{"sharded", 0}, // GOMAXPROCS shards
	} {
		for _, writers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/writers%d", v.name, writers), func(b *testing.B) {
				col := benchColumn(b, benchPages, dist.NewSine(42, 0, benchDomain, 100))
				cfg := core.DefaultConfig()
				cfg.UpdateShards = v.shards
				eng, err := core.NewEngine(col, cfg)
				if err != nil {
					b.Fatal(err)
				}
				defer eng.Close()
				streams := workload.ConcurrentUpdaters(42, writers, 4096, col.Rows(), 0, benchDomain)
				var wg sync.WaitGroup
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for w := 0; w < writers; w++ {
						wg.Add(1)
						go func(stream []workload.PointUpdate, i int) {
							defer wg.Done()
							ws := make([]core.RowWrite, group)
							for j := 0; j < group; j++ {
								u := stream[(i*group+j)%len(stream)]
								ws[j] = core.RowWrite{Row: u.Row, Value: u.Value}
							}
							if err := eng.UpdateBatch(ws); err != nil {
								b.Error(err)
							}
						}(streams[w], i)
					}
					wg.Wait()
				}
				b.StopTimer()
				if _, err := eng.FlushUpdates(); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(writers*group), "updates/op")
			})
		}
	}
}

// BenchmarkAutopilotEnqueue: the fire-and-forget write path — validate,
// hash to an intake shard, append — which is everything a caller pays
// with an autopilot; apply + alignment happen on the pilot. The final
// Sync keeps the work honest (all writes applied and aligned before the
// benchmark reports).
func BenchmarkAutopilotEnqueue(b *testing.B) {
	for _, writers := range []int{1, 4} {
		b.Run(fmt.Sprintf("writers%d", writers), func(b *testing.B) {
			col := benchColumn(b, benchPages, dist.NewSine(42, 0, benchDomain, 100))
			cfg := core.DefaultConfig()
			cfg.Autopilot = &autopilot.Config{}
			eng, err := core.NewEngine(col, cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			streams := workload.ConcurrentUpdaters(42, writers, 4096, col.Rows(), 0, benchDomain)
			var wg sync.WaitGroup
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func(stream []workload.PointUpdate, i int) {
						defer wg.Done()
						u := stream[i%len(stream)]
						if err := eng.Update(u.Row, u.Value); err != nil {
							b.Error(err)
						}
					}(streams[w], i)
				}
				wg.Wait()
			}
			b.StopTimer()
			if _, err := eng.Sync(); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(writers), "updates/op")
		})
	}
}

// ---------------------------------------------------------------------------
// Telemetry: the zero-cost-when-off contract of the obs layer.

// benchQueryOptEngine builds the fixed-work query engine the tracing
// benchmarks share: a baseline (non-adaptive) engine, so every iteration
// scans the same full capture and the only variable is the telemetry
// option under test.
func benchQueryOptEngine(b *testing.B) *core.Engine {
	col := benchColumn(b, benchPages/4, dist.NewSine(42, 0, benchDomain, 100))
	eng, err := core.NewEngine(col, core.BaselineConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = eng.Close() })
	return eng
}

// BenchmarkQueryOptTracingOff measures the untraced query path with
// telemetry compiled in — the acceptance bar: allocations and throughput
// identical to the pre-telemetry engine (every obs site on this path is
// a nil test or an always-on atomic add).
func BenchmarkQueryOptTracingOff(b *testing.B) {
	eng := benchQueryOptEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.QueryOpt(0, benchDomain/2, core.QueryOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryOptTracingOn is the same query with a span tree
// recorded: the per-query tracing overhead (a handful of small
// allocations for the spans) paid only by callers who asked for it.
func BenchmarkQueryOptTracingOn(b *testing.B) {
	eng := benchQueryOptEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := obs.NewTrace("query")
		if _, err := eng.QueryOpt(0, benchDomain/2, core.QueryOptions{Trace: tr}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §4): quantify the design decisions.

// BenchmarkAblation_MmapGranularity: the cost of mapping N pages one call
// at a time vs one ranged call — the first-order effect behind Fig. 6's
// consecutive-run optimization, isolated at the vmsim layer.
func BenchmarkAblation_MmapGranularity(b *testing.B) {
	const n = 2048
	for _, mode := range []string{"page_at_a_time", "single_ranged_call"} {
		b.Run(mode, func(b *testing.B) {
			k := vmsim.NewKernel(0)
			f, err := k.CreateFile("f", n)
			if err != nil {
				b.Fatal(err)
			}
			as := k.NewAddressSpace()
			as.SetMaxMapCount(1 << 30)
			addr, err := as.MmapAnon(n)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if mode == "page_at_a_time" {
					for p := 0; p < n; p++ {
						if err := as.MmapFileFixed(addr+vmsim.Addr(p*vmsim.PageSize), f, p, 1); err != nil {
							b.Fatal(err)
						}
					}
				} else {
					if err := as.MmapFileFixed(addr, f, 0, n); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(n), "pages/op")
		})
	}
}

// BenchmarkAblation_PageHeader: scan cost of the 24-byte header layout
// (pageID + zones, 509 values) vs a headerless 512-value page — what the
// embedded metadata costs every scan.
func BenchmarkAblation_PageHeader(b *testing.B) {
	page := make([]byte, storage.PageSize)
	for i := 0; i < storage.ValuesPerPage; i++ {
		storage.SetValueAt(page, i, uint64(i*2654435761)%benchDomain)
	}
	b.Run("with_header_509", func(b *testing.B) {
		b.SetBytes(storage.PageSize)
		for i := 0; i < b.N; i++ {
			_ = storage.ScanFilter(page, 1000, 50_000_000)
		}
	})
	b.Run("headerless_512", func(b *testing.B) {
		raw := make([]uint64, 512)
		for i := range raw {
			raw[i] = uint64(i*2654435761) % benchDomain
		}
		b.SetBytes(storage.PageSize)
		for i := 0; i < b.N; i++ {
			count, sum := 0, uint64(0)
			for _, v := range raw {
				if v >= 1000 && v <= 50_000_000 {
					count++
					sum += v
				}
			}
			_ = count
			_ = sum
		}
	})
}

// BenchmarkAblation_RemoveCompaction: removing a view page from the middle
// (compaction rewires the last page into the hole: one mmap + one munmap)
// vs removing the last page (one munmap). The delta is what keeping scans
// dense costs per removal.
func BenchmarkAblation_RemoveCompaction(b *testing.B) {
	for _, mode := range []string{"remove_middle_compacts", "remove_last"} {
		b.Run(mode, func(b *testing.B) {
			col := benchColumn(b, 512, dist.NewUniform(1, 0, 1000))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				v, err := view.Create(col, 0, ^uint64(0), view.CreateOptions{Consecutive: true}, nil)
				if err != nil {
					b.Fatal(err)
				}
				slot := 0
				if mode == "remove_last" {
					slot = v.NumPages() - 1
				}
				b.StartTimer()
				if _, err := v.RemovePageAt(slot); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				_ = v.Release()
				b.StartTimer()
			}
		})
	}
}
