package asv

import (
	"github.com/asv-db/asv/internal/vmsim"
)

// This file is the tiered-memory surface: WithTiering attaches a second,
// slower frame tier (simulated NVMe/CXL capacity tier) to a column
// configuration, and MemoryStats reads the per-tier occupancy and
// migration counters back out.

// TierConfig parameterizes a column's two-tier frame budget; see
// WithTiering. The zero value disables tiering: no tier words are
// tracked, no latency is charged, and behaviour is byte-for-byte the
// single-tier column.
type TierConfig = vmsim.TierConfig

// WithTiering enables the second frame tier on a column configuration:
// the column's pages carry a vmcache-style tier+version word, cold-tier
// page accesses are charged tc.ColdMultiplier × the hot per-page scan
// cost (and promote the page back under budget), writes land pages hot,
// and — when an autopilot runs — hot-tier occupancy above its high
// watermark demotes the coldest unpinned views' pages tier-down:
//
//	cfg := asv.WithTiering(asv.WithAutopilot(asv.DefaultConfig()),
//	    asv.TierConfig{HotFrames: pages / 2})
//
// Scans validate each page through its version word (optimistic read,
// retried on a concurrent migration), so readers never block on tier
// migration and answers are byte-identical to the single-tier column.
func WithTiering(cfg Config, tc TierConfig) Config {
	cfg.Tiering = &tc
	return cfg
}

// MemoryStats is a column's tiered-memory readout: per-tier frame
// counts, migration counters and the cumulative simulated cold-access
// stall. On a single-tier column Tiered is false and every page counts
// as hot.
type MemoryStats struct {
	Tiered      bool    // whether a second tier is attached
	Pages       int     // tracked file pages
	HotFrames   int     // pages currently in the hot (DRAM) tier
	ColdFrames  int     // pages currently in the capacity tier
	HotBudget   int     // configured hot-tier frame budget (0 untiered)
	HotFraction float64 // HotFrames / Pages (1 untiered)
	Demotions   uint64  // hot → cold page migrations
	Promotions  uint64  // cold → hot page migrations
	ColdTouches uint64  // page accesses that found the page cold
	StallNanos  uint64  // cumulative simulated cold-access latency, ns
}

// MemoryStats snapshots the column's tier occupancy and migration
// counters. Counters are monotonic; occupancy is advisory under
// concurrent migration (each field is exact at its own read).
func (c *Column) MemoryStats() MemoryStats {
	s, ok := c.eng.TierStats()
	if !ok {
		n := c.NumPages()
		return MemoryStats{Pages: n, HotFrames: n, HotFraction: 1}
	}
	return MemoryStats{
		Tiered:      true,
		Pages:       s.Pages,
		HotFrames:   s.HotFrames,
		ColdFrames:  s.ColdFrames,
		HotBudget:   s.HotBudget,
		HotFraction: s.HotFraction(),
		Demotions:   s.Demotions,
		Promotions:  s.Promotions,
		ColdTouches: s.ColdTouches,
		StallNanos:  s.StallNanos,
	}
}
