package asv

import (
	"fmt"
	"io"
	"os"

	"github.com/asv-db/asv/internal/core"
	"github.com/asv-db/asv/internal/storage"
	"github.com/asv-db/asv/internal/table"
	"github.com/asv-db/asv/internal/workload"
)

// MultiViewPolicy selects how multi-view covers compete with single views
// in MultiView mode.
type MultiViewPolicy = core.MultiViewPolicy

// Multi-view policies.
const (
	// PreferMulti uses a multi-view cover whenever one exists — the
	// paper's published behaviour.
	PreferMulti = core.PreferMulti
	// CostBased picks the plan with the fewer indexed pages — the paper's
	// stated future work, implemented here.
	CostBased = core.CostBased
)

// LimitPolicy selects the behaviour once MaxViews is reached.
type LimitPolicy = core.LimitPolicy

// Limit policies.
const (
	// Freeze stops creating views for good (the paper's behaviour).
	Freeze = core.Freeze
	// EvictLRU keeps adapting by evicting the least-recently-routed view.
	EvictLRU = core.EvictLRU
)

// AggregateResult summarizes the qualifying values of a range query.
// (The former name Aggregate now constructs the QueryOpt option.)
type AggregateResult = core.Aggregate

// RowSet is a materialized set of qualifying row IDs.
type RowSet = core.RowSet

// QueryRows answers [lo, hi] and materializes the qualifying row IDs,
// with the same adaptive side effects as Query. It is a documented thin
// wrapper over QueryOpt(lo, hi, asv.Rows()) — answers, telemetry and
// side effects are byte-identical to that call.
func (c *Column) QueryRows(lo, hi uint64) (*RowSet, Result, error) {
	ans, err := c.QueryOpt(lo, hi, Rows())
	return ans.Rows, ans.QueryResult, err
}

// QueryAggregate answers [lo, hi] with count, sum, min and max over the
// qualifying values. It is a documented thin wrapper over
// QueryOpt(lo, hi, asv.Aggregate()) — answers, telemetry and side
// effects are byte-identical to that call.
func (c *Column) QueryAggregate(lo, hi uint64) (AggregateResult, Result, error) {
	ans, err := c.QueryOpt(lo, hi, Aggregate())
	if ans.Agg == nil {
		return AggregateResult{}, ans.QueryResult, err
	}
	return *ans.Agg, ans.QueryResult, err
}

// ViewRange is one requested [Lo, Hi] of a CreateViews call.
type ViewRange = core.ViewRange

// CreateViews builds one partial view per requested range in a single
// column pass and publishes them in one state swap — semantically the
// same views as calling CreateView per range, at the cost of one
// qualification scan and one publication. Use it to stand up large view
// sets (the many-views experiments create thousands this way). On error
// nothing is inserted.
//
// It is a documented thin wrapper over CreateViewOpt with a Batch of the
// remaining ranges and Pinned() — views, telemetry and side effects are
// identical to that call; like CreateView, the legacy surface pins.
func (c *Column) CreateViews(ranges []ViewRange) error {
	if len(ranges) == 0 {
		return nil
	}
	return c.CreateViewOpt(ranges[0].Lo, ranges[0].Hi, Batch(ranges[1:]...), Pinned())
}

// CreateViewsBatch is CreateViews under its original engine-side name —
// the same documented thin pinned wrapper over CreateViewOpt.
func (c *Column) CreateViewsBatch(ranges []ViewRange) error {
	return c.CreateViews(ranges)
}

// WriteTo serializes the column's data pages (views are an adaptive cache
// and are not persisted).
func (c *Column) WriteTo(w io.Writer) (int64, error) { return c.col.WriteTo(w) }

// Save writes the column to a file.
func (c *Column) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := c.col.WriteTo(f); err != nil {
		_ = f.Close() //asv:ignore-err the write error is returned; closing the ruined file is best-effort
		return err
	}
	return f.Close()
}

// LoadColumn materializes a column previously written with Save/WriteTo
// and wraps it in an adaptive layer. The view set starts empty and regrows
// from the workload.
func (db *DB) LoadColumn(name, path string, cfg Config) (*Column, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return db.ReadColumn(name, f, cfg)
}

// ReadColumn is LoadColumn over an arbitrary reader. Safe for concurrent
// callers, like the rest of the catalog.
func (db *DB) ReadColumn(name string, r io.Reader, cfg Config) (*Column, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.columns[name]; dup {
		return nil, fmt.Errorf("asv: column %q already exists", name)
	}
	sc, err := storage.ReadColumn(db.kernel, db.space, name, r)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(sc, cfg)
	if err != nil {
		_ = sc.Close() //asv:ignore-err unwinding failed engine construction; the construction error is returned
		return nil, err
	}
	c := &Column{db: db, col: sc, eng: eng, name: name}
	db.columns[name] = c
	return c, nil
}

// RangeQuery is one inclusive range predicate of a generated workload.
type RangeQuery = workload.Query

// ConcurrentStreams derives one deterministic query stream per client
// from a single seed (n queries each, fixed selectivity sel over
// [0, domainHi]). Client i's stream never depends on scheduling, so a
// concurrent run fires exactly the same queries as its serial re-check —
// the workload behind the `concurrent` asvbench panel.
func ConcurrentStreams(seed uint64, clients, n int, domainHi uint64, sel float64) [][]RangeQuery {
	return workload.ConcurrentClients(seed, clients, n, domainHi, sel)
}

// PointUpdate is one row overwrite of a generated update workload.
type PointUpdate = workload.PointUpdate

// ConcurrentUpdateStreams derives one deterministic update stream per
// writer from a single seed (n uniform row overwrites each, values in
// [valLo, valHi]). Writer i's stream never depends on scheduling or on
// the writer count — the workload behind the `updates` asvbench panel.
func ConcurrentUpdateStreams(seed uint64, writers, n, rows int, valLo, valHi uint64) [][]PointUpdate {
	return workload.ConcurrentUpdaters(seed, writers, n, rows, valLo, valHi)
}

// Predicate is an inclusive range condition on one table column.
type Predicate = table.Predicate

// SelectResult is the outcome of a conjunctive table selection.
type SelectResult = table.SelectResult

// Table is a multi-column table; every column carries its own adaptive
// view layer (the paper's Figure 1).
type Table struct {
	db  *DB
	tbl *table.Table
}

// CreateTable creates a table whose columns each span numPages pages.
// Safe for concurrent callers, like the rest of the catalog.
func (db *DB) CreateTable(name string, numPages int, columns []string, cfg Config) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("asv: table %q already exists", name)
	}
	t, err := table.New(db.kernel, db.space, name, numPages, columns, cfg)
	if err != nil {
		return nil, err
	}
	wrapped := &Table{db: db, tbl: t}
	db.tables[name] = wrapped
	return wrapped, nil
}

// Table returns a previously created table.
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[name]
	return t, ok
}

// Name returns the table name.
func (t *Table) Name() string { return t.tbl.Name() }

// Columns returns the column names.
func (t *Table) Columns() []string { return t.tbl.Columns() }

// Rows returns the row count.
func (t *Table) Rows() int { return t.tbl.Rows() }

// FillColumn populates one column from a generator.
func (t *Table) FillColumn(column string, g Generator) error {
	eng, err := t.tbl.Engine(column)
	if err != nil {
		return err
	}
	return eng.Column().Fill(g)
}

// Select answers the conjunction (AND) of the predicates, adapting each
// involved column's views as a side product.
func (t *Table) Select(preds ...Predicate) (*SelectResult, error) {
	return t.tbl.Select(preds)
}

// Count returns the number of rows matching the conjunction.
func (t *Table) Count(preds ...Predicate) (int, error) { return t.tbl.Count(preds) }

// Get materializes the named column values of one row.
func (t *Table) Get(row int, columns ...string) ([]uint64, error) {
	return t.tbl.Get(row, columns)
}

// Update overwrites one value (buffered; queries auto-flush).
func (t *Table) Update(column string, row int, value uint64) error {
	return t.tbl.Update(column, row, value)
}

// FlushUpdates realigns the views of every column.
func (t *Table) FlushUpdates() error { return t.tbl.FlushUpdates() }

// ColumnViews lists the partial views of one column.
func (t *Table) ColumnViews(column string) ([]ViewInfo, error) {
	eng, err := t.tbl.Engine(column)
	if err != nil {
		return nil, err
	}
	vs := eng.Views()
	out := make([]ViewInfo, len(vs))
	for i, v := range vs {
		out[i] = ViewInfo{Lo: v.Lo(), Hi: v.Hi(), Pages: v.NumPages()}
	}
	return out, nil
}

// Close releases the table's columns and views.
func (t *Table) Close() error {
	t.db.mu.Lock()
	delete(t.db.tables, t.tbl.Name())
	t.db.mu.Unlock()
	return t.tbl.Close()
}
