package asv_test

import (
	"testing"

	asv "github.com/asv-db/asv"
)

// TestGeneratorFacade: the public constructors and the name registry
// cover the same generator family, and FillParallel produces the same
// column as Fill through the facade.
func TestGeneratorFacade(t *testing.T) {
	names := asv.GeneratorNames()
	if len(names) < 7 {
		t.Fatalf("GeneratorNames: %d names, want >= 7: %v", len(names), names)
	}
	if _, err := asv.GeneratorByName("no-such-dist", 1, 0, 100, 8); err == nil {
		t.Fatal("unknown generator name accepted")
	}

	gens := map[string]asv.Generator{
		"uniform":   asv.Uniform(1, 0, 1_000_000),
		"linear":    asv.Linear(1, 0, 1_000_000, 64),
		"sine":      asv.Sine(1, 0, 1_000_000, 10),
		"sparse":    asv.Sparse(1, 0, 1_000_000, 0.5),
		"zipf":      asv.Zipf(1, 0, 1_000_000, 1.1),
		"hotspot":   asv.Hotspot(1, 0, 1_000_000, 0.1, 0.9),
		"clustered": asv.Clustered(1, 0, 1_000_000, 1.0/64),
		"shifted":   asv.Shifted(1, 0, 1_000_000, 10),
	}
	for name, g := range gens {
		buf := make([]uint64, asv.ValuesPerPage)
		g.FillPage(0, buf)
		for _, v := range buf {
			if v > 1_000_000 {
				t.Fatalf("%s: value %d out of bounds", name, v)
			}
		}
		if _, err := asv.GeneratorByName(name, 1, 0, 1_000_000, 64); err != nil {
			t.Fatalf("constructor %s has no ByName entry: %v", name, err)
		}
	}
}

func TestFillParallelThroughFacade(t *testing.T) {
	db, err := asv.Open(asv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	serial, err := db.CreateColumn("serial", 128, asv.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := serial.Fill(asv.Zipf(9, 0, 1_000_000, 1.1)); err != nil {
		t.Fatal(err)
	}
	par, err := db.CreateColumn("par", 128, asv.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := par.FillParallel(asv.Zipf(9, 0, 1_000_000, 1.1)); err != nil {
		t.Fatal(err)
	}
	for row := 0; row < serial.Rows(); row += 97 {
		a, err := serial.Value(row)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.Value(row)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("row %d: serial %d != parallel %d", row, a, b)
		}
	}

	// Scenario columns answer adaptive queries like paper columns do.
	res, err := par.Query(0, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count == 0 {
		t.Fatal("zipf column: low range returned no rows despite skew")
	}
}
