package asv

import (
	"errors"
	"testing"
)

// TestDBCloseAllColumnsOnError pins the DB.Close error contract: the
// first column close error is returned, but every remaining column is
// still closed and deregistered — a failing column must never leak its
// siblings' views, frames or catalog names.
func TestDBCloseAllColumnsOnError(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"a", "b", "c"}
	cols := make([]*Column, len(names))
	for i, name := range names {
		cols[i], err = db.CreateColumn(name, 8, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("injected close failure")
	hooked := 0
	for _, c := range cols {
		c.closeHook = func() error { hooked++; return boom }
	}

	if err := db.Close(); !errors.Is(err, boom) {
		t.Fatalf("DB.Close = %v, want the injected error", err)
	}
	if hooked != len(cols) {
		t.Fatalf("only %d of %d columns were closed past the first failure", hooked, len(cols))
	}
	for i, c := range cols {
		if !c.closed.Load() {
			t.Fatalf("column %q not marked closed after erroring DB.Close", names[i])
		}
	}
	db.mu.Lock()
	left := len(db.columns)
	db.mu.Unlock()
	if left != 0 {
		t.Fatalf("%d columns still registered after DB.Close", left)
	}
	if got := db.MemoryInUse(); got != 0 {
		t.Fatalf("%d bytes of simulated memory still in use after DB.Close", got)
	}
}

// TestColumnCloseContinuesPastEngineError pins the same contract one
// layer down: Column.Close surfaces the first error but still releases
// the storage column and deregisters the name, so the name is reusable.
func TestColumnCloseContinuesPastEngineError(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	col, err := db.CreateColumn("x", 8, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected close failure")
	col.closeHook = func() error { return boom }
	if err := col.Close(); !errors.Is(err, boom) {
		t.Fatalf("Column.Close = %v, want the injected error", err)
	}
	if _, ok := db.Column("x"); ok {
		t.Fatal("column still registered after erroring Close")
	}
	if _, err := db.CreateColumn("x", 8, DefaultConfig()); err != nil {
		t.Fatalf("name not reusable after erroring Close: %v", err)
	}
}
