package asv

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTieredScanEquivalence: a tiered column answers every query
// byte-identically to an untiered twin over all generators, lazy and
// eager — before demotion, with every page demoted to the capacity
// tier, and after the scans' touches promoted pages back under budget.
func TestTieredScanEquivalence(t *testing.T) {
	const pages = 64
	for _, mode := range []struct {
		name string
		lazy bool
	}{{"lazy", true}, {"eager", false}} {
		for _, gname := range GeneratorNames() {
			t.Run(mode.name+"/"+gname, func(t *testing.T) {
				db, err := Open(Options{})
				if err != nil {
					t.Fatal(err)
				}
				defer db.Close()
				cfg := DefaultConfig()
				cfg.LazyViews = mode.lazy
				tiered, err := db.CreateColumn("tiered", pages,
					WithTiering(cfg, TierConfig{HotFrames: pages / 4, NoStall: true}))
				if err != nil {
					t.Fatal(err)
				}
				plain, err := db.CreateColumn("plain", pages, cfg)
				if err != nil {
					t.Fatal(err)
				}
				for _, col := range []*Column{tiered, plain} {
					g, err := GeneratorByName(gname, 42, 0, 1_000_000, pages)
					if err != nil {
						t.Fatal(err)
					}
					if err := col.Fill(g); err != nil {
						t.Fatal(err)
					}
				}
				check := func(stage string) {
					t.Helper()
					for i := 0; i < 20; i++ {
						lo := uint64(i*83651) % 900_000
						hi := lo + 100_000
						rt, err := tiered.Query(lo, hi)
						if err != nil {
							t.Fatal(err)
						}
						rp, err := plain.Query(lo, hi)
						if err != nil {
							t.Fatal(err)
						}
						if rt.Count != rp.Count || rt.Sum != rp.Sum {
							t.Fatalf("%s query %d: tiered (%d,%d) != plain (%d,%d)",
								stage, i, rt.Count, rt.Sum, rp.Count, rp.Sum)
						}
					}
				}
				check("hot")
				tier := tiered.eng.Tier()
				for p := 0; p < pages; p++ {
					tier.Demote(p)
				}
				check("cold")

				ms := tiered.MemoryStats()
				if !ms.Tiered || ms.Demotions < pages || ms.ColdTouches == 0 || ms.StallNanos == 0 {
					t.Fatalf("tiered MemoryStats left no trace: %+v", ms)
				}
				if ms.HotFrames+ms.ColdFrames != ms.Pages {
					t.Fatalf("occupancy does not cover pages: %+v", ms)
				}
				mp := plain.MemoryStats()
				if mp.Tiered || mp.HotFraction != 1 || mp.HotFrames != pages {
					t.Fatalf("untiered MemoryStats: %+v", mp)
				}
			})
		}
	}
}

// TestCreateViewWrapperEquivalence: the legacy creation trio
// (CreateView/CreateViews/CreateViewsBatch) must be byte-equivalent to
// the CreateViewOpt calls it documents wrapping — same view set, same
// telemetry, same pin flags — and CreateViewOpt without Pinned builds
// demotable views.
func TestCreateViewWrapperEquivalence(t *testing.T) {
	const pages = 64
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ranges := []ViewRange{
		{Lo: 100_000, Hi: 200_000},
		{Lo: 400_000, Hi: 500_000},
		{Lo: 700_000, Hi: 800_000},
	}
	newCol := func(name string) *Column {
		col, err := db.CreateColumn(name, pages, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := col.Fill(Sine(11, 0, 1_000_000, 8)); err != nil {
			t.Fatal(err)
		}
		return col
	}

	legacy := newCol("legacy")
	if err := legacy.CreateView(ranges[0].Lo, ranges[0].Hi); err != nil {
		t.Fatal(err)
	}
	if err := legacy.CreateViews(ranges[1:]); err != nil {
		t.Fatal(err)
	}
	direct := newCol("direct")
	if err := direct.CreateViewOpt(ranges[0].Lo, ranges[0].Hi, Pinned()); err != nil {
		t.Fatal(err)
	}
	if err := direct.CreateViewOpt(ranges[1].Lo, ranges[1].Hi, Batch(ranges[2]), Pinned()); err != nil {
		t.Fatal(err)
	}
	alias := newCol("alias")
	if err := alias.CreateView(ranges[0].Lo, ranges[0].Hi); err != nil {
		t.Fatal(err)
	}
	if err := alias.CreateViewsBatch(ranges[1:]); err != nil {
		t.Fatal(err)
	}

	want := legacy.Views()
	if len(want) != len(ranges) {
		t.Fatalf("legacy views: %d, want %d", len(want), len(ranges))
	}
	for name, col := range map[string]*Column{"direct": direct, "alias": alias} {
		if got := col.Views(); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s views %+v != legacy %+v", name, got, want)
		}
		got, wantStats := col.Stats(), legacy.Stats()
		// Publication wall time is allowed to differ.
		got.PublishNanos, wantStats.PublishNanos = 0, 0
		got.PublishAttemptNanos, wantStats.PublishAttemptNanos = 0, 0
		if got != wantStats {
			t.Fatalf("%s telemetry %+v != legacy %+v", name, got, wantStats)
		}
		for i, v := range col.eng.Views() {
			if !v.Pinned() {
				t.Fatalf("%s view %d not pinned", name, i)
			}
		}
	}

	// Without Pinned, CreateViewOpt builds demotable views — the one
	// behaviour the wrappers deliberately exclude.
	loose := newCol("loose")
	if err := loose.CreateViewOpt(ranges[0].Lo, ranges[0].Hi); err != nil {
		t.Fatal(err)
	}
	if loose.eng.Views()[0].Pinned() {
		t.Fatal("optionless CreateViewOpt pinned its view")
	}

	// Lazy/Eager override the column default per call.
	if err := loose.CreateViewOpt(ranges[1].Lo, ranges[1].Hi, Eager()); err != nil {
		t.Fatal(err)
	}
	vs := loose.eng.Views()
	if !vs[0].Lazy() {
		t.Fatal("default view not lazy under Config.LazyViews")
	}
	if vs[1].Lazy() {
		t.Fatal("Eager() view is lazy")
	}
}

// TestTieredSnapshotRace races tier demotion/promotion, pinned Snapshot
// readers, live queries, fire-and-forget updates and the autopilot's
// lifecycle against each other. Snapshot reads must stay repeatable and
// live answers must match an untiered twin column throughout. Runs under
// -race in CI's stress step (matched by both 'Snapshot' and 'Tiered').
func TestTieredSnapshotRace(t *testing.T) {
	const pages = 96
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	cfg := WithTiering(
		WithAutopilot(DefaultConfig(), AutopilotConfig{
			MaintainInterval: time.Millisecond,
			MaxFlushLatency:  time.Millisecond,
			TierHighWater:    0.5,
			TierLowWater:     0.25,
		}),
		TierConfig{HotFrames: pages / 2, NoStall: true},
	)
	col, err := db.CreateColumn("hot", pages, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Fill(Uniform(21, 0, 1_000_000)); err != nil {
		t.Fatal(err)
	}
	tier := col.eng.Tier()

	var stop atomic.Bool
	errs := make(chan error, 16)
	var wg sync.WaitGroup

	// Tier churn: demote and promote pages as fast as possible.
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			tier.Demote(i % pages)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			tier.Promote((i * 7) % pages)
		}
	}()

	// Pinned snapshot readers: answers within one snapshot must repeat
	// exactly, no matter what migrates underneath.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				snap, err := col.Snapshot()
				if err != nil {
					errs <- err
					return
				}
				lo := (seed + uint64(i)*131) % 800_000
				hi := lo + 150_000
				first, err := snap.Query(lo, hi)
				if err == nil {
					var again Result
					again, err = snap.Query(lo, hi)
					if err == nil && (again.Count != first.Count || again.Sum != first.Sum) {
						err = fmt.Errorf("snapshot read moved: (%d,%d) then (%d,%d)",
							first.Count, first.Sum, again.Count, again.Sum)
					}
				}
				snap.Close()
				if err != nil {
					errs <- err
					return
				}
			}
		}(uint64(r) * 977)
	}

	// Live readers and writers.
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			lo := uint64(i*211) % 800_000
			if _, err := col.Query(lo, lo+100_000); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			if err := col.Update((i*37)%col.Rows(), uint64(i)); err != nil {
				errs <- err
				return
			}
		}
	}()

	time.Sleep(150 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := col.Sync(); err != nil {
		t.Fatal(err)
	}
	ms := col.MemoryStats()
	if !ms.Tiered || ms.HotFrames+ms.ColdFrames != ms.Pages {
		t.Fatalf("inconsistent tier occupancy after the race: %+v", ms)
	}
}
