package asv

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentCatalog grows the schema online from many goroutines —
// the -race exercise of the catalog mutex: concurrent CreateColumn /
// CreateTable / lookups / per-column work must neither race nor admit a
// duplicate name.
func TestConcurrentCatalog(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const (
		goroutines = 8
		perG       = 6
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG*2)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				name := fmt.Sprintf("col-%d-%d", g, i)
				col, err := db.CreateColumn(name, 16, DefaultConfig())
				if err != nil {
					errs <- err
					return
				}
				if err := col.Fill(Uniform(uint64(g*100+i), 0, 1_000_000)); err != nil {
					errs <- err
					return
				}
				if _, err := col.Query(0, 500_000); err != nil {
					errs <- err
					return
				}
				if _, ok := db.Column(name); !ok {
					errs <- fmt.Errorf("column %q vanished", name)
					return
				}
				if g%2 == 0 {
					tname := fmt.Sprintf("tbl-%d-%d", g, i)
					tbl, err := db.CreateTable(tname, 8, []string{"a", "b"}, DefaultConfig())
					if err != nil {
						errs <- err
						return
					}
					if _, ok := db.Table(tname); !ok {
						errs <- fmt.Errorf("table %q vanished", tname)
						return
					}
					_ = tbl
				}
			}
		}(g)
	}
	// Duplicate creators: exactly one of each racing pair must win.
	dupWins := make(chan bool, 2*goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := db.CreateColumn("contested", 8, DefaultConfig())
			dupWins <- err == nil
		}()
	}
	wg.Wait()
	close(errs)
	close(dupWins)
	for err := range errs {
		t.Fatal(err)
	}
	wins := 0
	for won := range dupWins {
		if won {
			wins++
		}
	}
	if wins != 1 {
		t.Fatalf("%d goroutines created the contested column, want exactly 1", wins)
	}
	if db.MemoryInUse() <= 0 {
		t.Fatal("no memory accounted")
	}
}
