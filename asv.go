// Package asv is the public API of the adaptive-storage-views library, a
// Go reproduction of "Towards Adaptive Storage Views in Virtual Memory"
// (Schuhknecht & Henneberg, CIDR 2023).
//
// The library fuses coarse-granular indexing into the storage layer of an
// in-memory column store: each column is materialized once as physical
// memory (on a simulated main-memory file), and virtual storage views —
// virtual-memory areas mapping page-wise onto subsets of the column — act
// as the index. Partial views are created adaptively as a side product of
// query processing; queries are routed automatically to the most fitting
// view(s); batched updates realign the views.
//
// Quick start:
//
//	db, _ := asv.Open(asv.Options{})
//	defer db.Close()
//	col, _ := db.CreateColumn("readings", 4096, asv.DefaultConfig())
//	col.Fill(asv.Uniform(1, 0, 100_000_000))
//	res, _ := col.Query(1_000_000, 2_000_000)   // views appear as you query
//	fmt.Println(res.Count, res.PagesScanned)
//
// The heavy lifting lives in the internal packages (vmsim, storage, view,
// viewset, core); this package wires them together behind a stable
// surface.
package asv

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/asv-db/asv/internal/core"
	"github.com/asv-db/asv/internal/dist"
	"github.com/asv-db/asv/internal/storage"
	"github.com/asv-db/asv/internal/view"
	"github.com/asv-db/asv/internal/vmsim"
)

// PageSize is the page granularity of the storage layer (4 KiB).
const PageSize = storage.PageSize

// ValuesPerPage is the number of 8-byte values a column page holds.
const ValuesPerPage = storage.ValuesPerPage

// Mode selects how queries are routed to views (§2.1 of the paper).
type Mode = core.Mode

// Routing modes.
const (
	// SingleView answers each query from exactly one fully-covering view.
	SingleView = core.SingleView
	// MultiView stitches multiple partial views when they jointly cover
	// the query range.
	MultiView = core.MultiView
)

// Config tunes a column's adaptive layer; see DefaultConfig.
type Config = core.Config

// DefaultConfig returns the paper's configuration: single-view routing, up
// to 100 partial views, zero discard/replacement tolerance, and both
// view-creation optimizations (consecutive-run mapping, background mapping
// thread) enabled.
func DefaultConfig() Config { return core.DefaultConfig() }

// BaselineConfig returns a configuration that answers every query with a
// full column scan and never creates views — useful for comparisons.
func BaselineConfig() Config { return core.BaselineConfig() }

// Result is the answer to a range query plus routing telemetry.
type Result = core.QueryResult

// UpdateReport is the cost breakdown of one view-alignment run.
type UpdateReport = core.UpdateStats

// EngineStats are cumulative per-column counters.
type EngineStats = core.Stats

// Options configures a DB instance.
type Options struct {
	// MaxMemoryPages caps simulated physical memory in 4 KiB pages
	// (<= 0 selects 4 Mi pages = 16 GiB).
	MaxMemoryPages int
	// MaxMappings caps the number of virtual memory areas per DB, the
	// analogue of vm.max_map_count. The paper raises the kernel default to
	// 2^32-1; Open does the same when this is 0.
	MaxMappings int
}

// DB owns a simulated kernel and one address space in which all columns,
// tables and their views live.
//
// A DB is safe for concurrent use, including its catalog: CreateColumn,
// CreateTable, LoadColumn, Column, Table and Close serialize on an
// internal mutex, so schemas may grow online from any number of
// goroutines. Each created Column is itself fully safe for concurrent
// use, including across columns sharing this DB's kernel.
type DB struct {
	kernel *vmsim.Kernel
	space  *vmsim.AddressSpace

	// mu guards the catalog maps; column/table data paths never take it.
	mu      sync.Mutex
	columns map[string]*Column
	tables  map[string]*Table
}

// Open creates an empty DB.
func Open(opts Options) (*DB, error) {
	k := vmsim.NewKernel(opts.MaxMemoryPages)
	as := k.NewAddressSpace()
	maxMaps := opts.MaxMappings
	if maxMaps <= 0 {
		maxMaps = 1<<32 - 1
	}
	as.SetMaxMapCount(maxMaps)
	return &DB{
		kernel:  k,
		space:   as,
		columns: make(map[string]*Column),
		tables:  make(map[string]*Table),
	}, nil
}

// CreateColumn materializes a column of numPages pages (numPages ×
// ValuesPerPage rows, zero-initialized) and wraps it in an adaptive
// storage layer. Safe for concurrent callers; the catalog mutex is held
// across the materialization so a duplicate name can never slip in
// between check and insert.
func (db *DB) CreateColumn(name string, numPages int, cfg Config) (*Column, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.columns[name]; dup {
		return nil, fmt.Errorf("asv: column %q already exists", name)
	}
	sc, err := storage.NewColumn(db.kernel, db.space, name, numPages)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(sc, cfg)
	if err != nil {
		_ = sc.Close() //asv:ignore-err unwinding failed engine construction; the construction error is returned
		return nil, err
	}
	c := &Column{db: db, col: sc, eng: eng, name: name}
	db.columns[name] = c
	return c, nil
}

// Column returns a previously created column.
func (db *DB) Column(name string) (*Column, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	c, ok := db.columns[name]
	return c, ok
}

// MemoryInUse returns the simulated physical memory currently allocated,
// in bytes.
func (db *DB) MemoryInUse() int {
	return db.kernel.FramesInUse() * PageSize
}

// removeColumn deregisters a column from the catalog (Column.Close calls
// it; a name deleted twice is harmless).
func (db *DB) removeColumn(name string) {
	db.mu.Lock()
	delete(db.columns, name)
	db.mu.Unlock()
}

// Close releases every column and table. Columns already closed directly
// have deregistered themselves and are not double-closed.
func (db *DB) Close() error {
	// Snapshot and clear the catalog under the lock, close outside it:
	// Column.Close deregisters itself through the same mutex.
	db.mu.Lock()
	columns := make([]*Column, 0, len(db.columns))
	for name, c := range db.columns {
		columns = append(columns, c)
		delete(db.columns, name)
	}
	tables := make([]*Table, 0, len(db.tables))
	for name, t := range db.tables {
		tables = append(tables, t)
		delete(db.tables, name)
	}
	db.mu.Unlock()

	var firstErr error
	for _, c := range columns {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, t := range tables {
		if err := t.tbl.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Generator produces column values one page at a time; see Uniform,
// Linear, Sine and Sparse for the distributions used in the paper's
// evaluation.
type Generator = dist.Generator

// Uniform returns a generator drawing each value uniformly from [lo, hi].
func Uniform(seed, lo, hi uint64) Generator { return dist.NewUniform(seed, lo, hi) }

// Linear returns a generator whose values grow linearly with the row
// position across numPages pages — perfectly clustered data.
func Linear(seed, lo, hi uint64, numPages int) Generator {
	return dist.NewLinear(seed, lo, hi, numPages)
}

// Sine returns a generator following a sine wave over the page sequence
// with the given period in pages — periodically clustered data such as
// daily sensor cycles.
func Sine(seed, lo, hi uint64, periodPages int) Generator {
	return dist.NewSine(seed, lo, hi, periodPages)
}

// Sparse returns a generator where zeroFrac of all pages contain only
// zeros and the rest hold uniform values in [lo, hi].
func Sparse(seed, lo, hi uint64, zeroFrac float64) Generator {
	return dist.NewSparse(seed, lo, hi, zeroFrac)
}

// Zipf returns a generator with zipf-skewed value popularity over
// [lo, hi]: low values are drawn far more often than high ones, with the
// given skew exponent — web-style key popularity.
func Zipf(seed, lo, hi uint64, skew float64) Generator {
	return dist.NewZipf(seed, lo, hi, skew)
}

// Hotspot returns a generator where a contiguous hot region covering
// hotFrac of the domain receives hotProb of all values and the rest is
// uniform background.
func Hotspot(seed, lo, hi uint64, hotFrac, hotProb float64) Generator {
	return dist.NewHotspot(seed, lo, hi, hotFrac, hotProb)
}

// Clustered returns a generator where each page's values cluster in a
// window of clusterFrac × the domain around a per-page random center —
// locality without global order.
func Clustered(seed, lo, hi uint64, clusterFrac float64) Generator {
	return dist.NewClustered(seed, lo, hi, clusterFrac)
}

// Shifted returns a generator whose value window slides across the
// domain and wraps every periodPages pages — a sawtooth counterpart to
// Sine.
func Shifted(seed, lo, hi uint64, periodPages int) Generator {
	return dist.NewShifted(seed, lo, hi, periodPages)
}

// GeneratorByName resolves a distribution by name (see GeneratorNames)
// over [lo, hi] for a column of `pages` pages, with scenario knobs at
// their defaults.
func GeneratorByName(name string, seed, lo, hi uint64, pages int) (Generator, error) {
	return dist.ByName(name, seed, lo, hi, pages)
}

// GeneratorNames lists the distributions GeneratorByName resolves.
func GeneratorNames() []string { return dist.Names() }

// ViewInfo describes one partial view of a column.
type ViewInfo struct {
	Lo, Hi uint64 // covered value range (inclusive)
	Pages  int    // physical pages indexed
}

// Column is a physical column with its adaptive view layer.
//
// A Column is safe for concurrent use: any number of goroutines may call
// Query/QueryRows/QueryAggregate simultaneously, and any number may call
// Update/UpdateBatch simultaneously (writers append to page-sharded
// buffers and only serialize per page group). The two groups exclude
// each other — queries must observe fully aligned views — and
// FlushUpdates, CreateView and RebuildViews are exclusive. Columns of
// one DB are independent — concurrent work on different columns only
// meets at the simulated kernel, which has its own locks.
type Column struct {
	db     *DB
	col    *storage.Column
	eng    *core.Engine
	name   string
	closed atomic.Bool

	// closeHook, when set (tests only), injects an extra error source
	// into Close after the engine and storage have released — the seam
	// behind TestDBCloseAllColumnsOnError, which pins that DB.Close
	// keeps closing every remaining column past the first failure.
	closeHook func() error
}

// Name returns the column name.
func (c *Column) Name() string { return c.name }

// NumPages returns the column length in pages.
func (c *Column) NumPages() int { return c.col.NumPages() }

// Rows returns the number of value slots.
func (c *Column) Rows() int { return c.col.Rows() }

// Fill populates the column from a generator.
func (c *Column) Fill(g Generator) error { return c.col.Fill(g) }

// FillParallel populates the column from a generator with page-sharded
// workers (one per CPU). Generators are pure functions of (seed, page),
// so the result is byte-identical to Fill — just faster on large columns.
func (c *Column) FillParallel(g Generator) error { return c.col.FillParallel(g, 0) }

// Value reads one row.
func (c *Column) Value(row int) (uint64, error) { return c.col.Value(row) }

// Query answers the inclusive range query [lo, hi], adapting the view set
// as a side product. It is a documented thin wrapper over QueryOpt with
// no options — answers, telemetry and side effects are byte-identical to
// that call. Query is safe for any number of concurrent callers: routed
// reads are epoch-based and lock-free, scanning an immutable published
// state, so update alignment and background maintenance never stall them
// (see Config.Parallelism for intra-query parallelism).
func (c *Column) Query(lo, hi uint64) (Result, error) {
	ans, err := c.QueryOpt(lo, hi)
	return ans.QueryResult, err
}

// QueryParallel answers [lo, hi] like Query but scans with GOMAXPROCS
// page-sharded workers regardless of Config.Parallelism. It is a
// documented thin wrapper over QueryOpt(lo, hi, asv.Workers(-1)). The
// answer and every adaptive side effect are identical to Query — shards
// reduce in page order with commutative aggregates — just faster on
// large columns when cores are idle.
func (c *Column) QueryParallel(lo, hi uint64) (Result, error) {
	ans, err := c.QueryOpt(lo, hi, Workers(-1))
	return ans.QueryResult, err
}

// Update overwrites one row through the full view and buffers the change
// for the next FlushUpdates. Concurrent Update callers proceed in
// parallel: the write path is sharded by physical page (see
// Config.UpdateShards), so writers only serialize against queries — and
// against each other when they touch the same page group.
//
// On a column opened with WithAutopilot, Update is fire-and-forget: it
// queues the write and returns immediately; the autopilot applies and
// aligns it within the configured MaxFlushLatency. Use Sync when you
// need a read-your-writes barrier.
func (c *Column) Update(row int, value uint64) error { return c.eng.Update(row, value) }

// RowWrite is one row overwrite of an UpdateBatch call.
type RowWrite = core.RowWrite

// UpdateBatch applies a group of writes as one unit — group commit for
// the write path. Semantically identical to calling Update per element
// in order, but the group is admitted past concurrent readers once,
// which is substantially faster under mixed read/write load.
func (c *Column) UpdateBatch(writes []RowWrite) error { return c.eng.UpdateBatch(writes) }

// FlushUpdates realigns all partial views with the buffered updates.
func (c *Column) FlushUpdates() (UpdateReport, error) { return c.eng.FlushUpdates() }

// CreateView eagerly builds a partial view over [lo, hi], bypassing
// adaptivity — occasionally useful to pre-warm a known hot range. It is
// a documented thin wrapper over CreateViewOpt(lo, hi, asv.Pinned()):
// the view set, telemetry and every side effect are identical to that
// call. The view is pinned — an explicitly requested range stays exempt
// from tier demotion; use CreateViewOpt directly for a demotable view.
func (c *Column) CreateView(lo, hi uint64) error {
	return c.CreateViewOpt(lo, hi, Pinned())
}

// RebuildViews drops and recreates every partial view from scratch.
func (c *Column) RebuildViews() error { return c.eng.RebuildViews() }

// Views lists the current partial views.
func (c *Column) Views() []ViewInfo {
	vs := c.eng.Views()
	out := make([]ViewInfo, len(vs))
	for i, v := range vs {
		out[i] = ViewInfo{Lo: v.Lo(), Hi: v.Hi(), Pages: v.NumPages()}
	}
	return out
}

// Stats returns the column's cumulative engine counters.
func (c *Column) Stats() EngineStats { return c.eng.Stats() }

// Close releases the views and the column storage and deregisters the
// column from the DB catalog, so the name becomes reusable — exactly
// like Table.Close. Close blocks until every Snapshot taken from the
// column has been closed. Double-close is a no-op, and a column closed
// directly is skipped (not double-closed) by a later DB.Close.
func (c *Column) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	c.db.removeColumn(c.name)
	firstErr := c.eng.Close()
	if err := c.col.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	if c.closeHook != nil {
		if err := c.closeHook(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// CreateOptions re-exports the view-creation optimization switches for
// Config.Create.
type CreateOptions = view.CreateOptions
