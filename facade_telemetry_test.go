package asv

import "testing"

// TestFacadeTelemetry wires the observability surface through the
// facade: a traced QueryOpt returns a finished span tree, Telemetry
// reflects the queries, and an armed journal yields events.
func TestFacadeTelemetry(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	cfg := DefaultConfig()
	cfg.JournalEvents = 128
	col, err := db.CreateColumn("tel", 64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Fill(Sine(3, 0, 1_000_000, 8)); err != nil {
		t.Fatal(err)
	}

	ans, err := col.QueryOpt(100_000, 600_000, Trace())
	if err != nil {
		t.Fatal(err)
	}
	if ans.Trace == nil || ans.Trace.Root == nil {
		t.Fatal("Trace() option returned no span tree")
	}
	if ans.Trace.Root.End == 0 {
		t.Fatal("trace root unfinished")
	}
	if len(ans.Trace.Root.Children) == 0 {
		t.Fatalf("trace root has no children:\n%s", ans.Trace)
	}

	// Untraced queries stay trace-free.
	plain, err := col.QueryOpt(100_000, 600_000)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Fatal("untraced query carried a trace")
	}

	tel := col.Telemetry()
	if tel.Counters["engine_queries"] < 2 {
		t.Fatalf("engine_queries = %d, want >= 2", tel.Counters["engine_queries"])
	}
	if _, err := tel.JSON(); err != nil {
		t.Fatal(err)
	}

	evs := col.Events()
	if len(evs) == 0 {
		t.Fatal("armed journal drained no events after adaptive queries")
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("event seqs not monotone: #%d after #%d", evs[i].Seq, evs[i-1].Seq)
		}
	}
}
