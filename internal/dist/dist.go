// Package dist generates the deterministic value distributions that drive
// every experiment in this repository. The paper's evaluation (§3) lays
// columns out page-wise in virtual memory and fills them with clustered
// data — a linear ramp, a sine wave over the page sequence, sparse
// all-zero pages (Figure 2) — plus uniform data for the worst-case
// panels. On top of the paper's four distributions this package grows a
// scenario family (zipf, hotspot, clustered, shifted) so new workloads
// can be opened without touching the storage layer.
//
// Two properties are contractual for every Generator here:
//
//   - Determinism: FillPage is a pure function of (constructor arguments,
//     page). The same seed produces byte-identical columns regardless of
//     the order pages are filled in, which is what makes
//     storage.Column.FillParallel both correct and reproducible.
//   - Bounds: every generated value lies in [lo, hi] (inclusive). If a
//     caller passes lo > hi the bounds are swapped rather than rejected,
//     so no constructor can panic on hostile input.
//
// Because FillPage derives a fresh RNG from (seed, page) on every call
// and keeps no mutable state, all generators in this package are safe for
// concurrent FillPage calls on the same instance.
package dist

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"github.com/asv-db/asv/internal/xrand"
)

// Generator produces column values one 509-value page at a time.
// FillPage writes exactly len(out) values for page index `page` into out.
// Implementations must be deterministic in (page, constructor args) and
// safe for concurrent calls; see the package comment.
type Generator interface {
	FillPage(page int, out []uint64)
}

// Default parameters used when a distribution is resolved by name rather
// than through its constructor (which exposes the knob).
const (
	// DefaultSinePeriod is the paper's sine cycle length: 100 pages
	// (Figure 2b, "daily sensor cycles").
	DefaultSinePeriod = 100
	// DefaultSparseZeroFrac is the paper's sparse-page fraction: 90% of
	// all pages hold only the domain floor (Figure 2c).
	DefaultSparseZeroFrac = 0.9
	// DefaultZipfSkew is the zipf exponent used by ByName.
	DefaultZipfSkew = 1.1
	// DefaultHotspotFrac is the fraction of the value domain that forms
	// the hot region.
	DefaultHotspotFrac = 0.1
	// DefaultHotspotProb is the probability that a value lands in the hot
	// region.
	DefaultHotspotProb = 0.9
	// DefaultClusterFrac is the width of a page's value cluster as a
	// fraction of the domain.
	DefaultClusterFrac = 1.0 / 64
	// DefaultShiftPeriod is the page period after which the shifted
	// window wraps around the domain.
	DefaultShiftPeriod = 100
)

// factory builds a generator from the uniform ByName parameter set. pages
// is the column length in pages, used by page-position-aware generators.
type factory func(seed, lo, hi uint64, pages int) Generator

// registry maps distribution names to their ByName constructors. New
// scenario generators register here; the fig6/fig7 harness whitelists stay
// intentionally narrower (they reproduce specific paper panels).
var registry = map[string]factory{
	"uniform": func(seed, lo, hi uint64, pages int) Generator {
		return NewUniform(seed, lo, hi)
	},
	"linear": func(seed, lo, hi uint64, pages int) Generator {
		return NewLinear(seed, lo, hi, pages)
	},
	"sine": func(seed, lo, hi uint64, pages int) Generator {
		return NewSine(seed, lo, hi, DefaultSinePeriod)
	},
	"sparse": func(seed, lo, hi uint64, pages int) Generator {
		return NewSparse(seed, lo, hi, DefaultSparseZeroFrac)
	},
	"zipf": func(seed, lo, hi uint64, pages int) Generator {
		return NewZipf(seed, lo, hi, DefaultZipfSkew)
	},
	"hotspot": func(seed, lo, hi uint64, pages int) Generator {
		return NewHotspot(seed, lo, hi, DefaultHotspotFrac, DefaultHotspotProb)
	},
	"clustered": func(seed, lo, hi uint64, pages int) Generator {
		return NewClustered(seed, lo, hi, DefaultClusterFrac)
	},
	"shifted": func(seed, lo, hi uint64, pages int) Generator {
		return NewShifted(seed, lo, hi, DefaultShiftPeriod)
	},
}

// Names returns the sorted list of distributions ByName resolves.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ByName resolves a distribution by name over the value domain [lo, hi]
// for a column of `pages` pages, with scenario knobs at their defaults.
// Unknown names are an error; see Names for the registered set.
func ByName(name string, seed, lo, hi uint64, pages int) (Generator, error) {
	mk, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("dist: unknown distribution %q (known: %s)",
			name, strings.Join(Names(), ", "))
	}
	if pages <= 0 {
		pages = 1
	}
	return mk(seed, lo, hi, pages), nil
}

// ---------------------------------------------------------------------------
// Shared deterministic plumbing.

// normBounds orders a (lo, hi) pair, swapping instead of rejecting so no
// constructor can be driven into a panic.
func normBounds(lo, hi uint64) (uint64, uint64) {
	if lo > hi {
		return hi, lo
	}
	return lo, hi
}

// normPage clamps a page index to be non-negative; generators are defined
// on pages [0, ∞) and treat hostile negative indices as page 0.
func normPage(page int) int {
	if page < 0 {
		return 0
	}
	return page
}

// pageRand derives the independent per-page RNG stream that makes
// FillPage order-free: the stream depends only on (seed, page).
func pageRand(seed uint64, page int) *xrand.Rand {
	s := seed
	h := xrand.Splitmix64(&s)
	h ^= (uint64(normPage(page)) + 1) * 0x9e3779b97f4a7c15
	return xrand.New(h)
}

// seedRand derives the per-generator RNG used for construction-time
// choices (hot-region placement, phase offsets), domain-separated from
// the page streams.
func seedRand(seed uint64) *xrand.Rand {
	s := seed ^ 0xd6e8feb86659fd93
	return xrand.New(xrand.Splitmix64(&s))
}

// mulDiv returns floor(width * num / den) without overflow for
// num <= den, den > 0 — the exact page-boundary arithmetic the ramp
// generators need over the full uint64 domain.
func mulDiv(width, num, den uint64) uint64 {
	hi, lo := bits.Mul64(width, num)
	q, _ := bits.Div64(hi, lo, den)
	return q
}

// sliceBounds returns the inclusive value range of the i-th of n equal
// consecutive slices of [lo, hi] (i < n). Empty slices collapse to a
// single point so the bounds always stay ordered and in-domain.
func sliceBounds(lo, hi, i, n uint64) (sliceLo, sliceHi uint64) {
	width := hi - lo
	sliceLo = lo + mulDiv(width, i, n)
	sliceHi = hi
	if i+1 < n {
		next := lo + mulDiv(width, i+1, n)
		if next > sliceLo {
			sliceHi = next - 1
		} else {
			sliceHi = sliceLo
		}
	}
	return sliceLo, sliceHi
}

// scaleFrac returns round-down frac*width clamped to [0, width], safe for
// width up to MaxUint64 and arbitrary (even NaN) frac.
func scaleFrac(frac float64, width uint64) uint64 {
	if !(frac > 0) { // also catches NaN
		return 0
	}
	if frac >= 1 {
		return width
	}
	v := frac * float64(width)
	if v >= float64(^uint64(0)) {
		return width
	}
	return uint64(v)
}

// windowAround intersects [center-amp, center+amp] with [lo, hi] with
// saturating arithmetic and returns a non-empty window.
func windowAround(center, amp, lo, hi uint64) (wlo, whi uint64) {
	wlo, whi = lo, hi
	if center >= lo && center <= hi {
		if center-lo > amp {
			wlo = center - amp
		}
		if hi-center > amp {
			whi = center + amp
		}
	}
	return wlo, whi
}
