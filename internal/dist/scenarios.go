// Scenario generators beyond the paper's four distributions. They open
// the workload space the ROADMAP asks for — skewed key popularity
// (zipf), a hot value region (hotspot), per-page value locality
// (clustered), and a sliding value window (shifted) — while honouring the
// same determinism and bounds contract as the paper generators, so every
// harness and the adaptive layer can consume them unchanged.
package dist

import (
	"math"
	"sort"
)

// zipfBuckets discretizes the zipf rank distribution; 1024 ranks keep the
// inverse-CDF table small while giving sub-0.1% domain resolution.
const zipfBuckets = 1024

// ---------------------------------------------------------------------------
// Zipf — skewed value popularity.

type zipf struct {
	seed   uint64
	lo, hi uint64
	cdf    []float64   // cumulative rank probabilities, len zipfBuckets
	bounds [][2]uint64 // inclusive value slice per rank, len zipfBuckets
}

// NewZipf returns a generator with zipf-skewed value popularity: the
// domain [lo, hi] is split into zipfBuckets equal rank slices and rank k
// is drawn with probability proportional to 1/(k+1)^skew, low values
// being the most popular. skew is clamped to [0.05, 20]; values within
// the chosen rank slice are uniform.
func NewZipf(seed, lo, hi uint64, skew float64) Generator {
	lo, hi = normBounds(lo, hi)
	if math.IsNaN(skew) || skew < 0.05 {
		skew = 0.05
	}
	if skew > 20 {
		skew = 20
	}
	cdf := make([]float64, zipfBuckets)
	sum := 0.0
	for k := 0; k < zipfBuckets; k++ {
		sum += math.Pow(float64(k+1), -skew)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	bounds := make([][2]uint64, zipfBuckets)
	for b := range bounds {
		bounds[b][0], bounds[b][1] = sliceBounds(lo, hi, uint64(b), zipfBuckets)
	}
	return &zipf{seed: seed, lo: lo, hi: hi, cdf: cdf, bounds: bounds}
}

func (g *zipf) FillPage(page int, out []uint64) {
	r := pageRand(g.seed, page)
	for i := range out {
		u := r.Float64()
		b := sort.SearchFloat64s(g.cdf, u)
		if b >= zipfBuckets {
			b = zipfBuckets - 1
		}
		out[i] = r.Uint64Range(g.bounds[b][0], g.bounds[b][1])
	}
}

// ---------------------------------------------------------------------------
// Hotspot — a hot value region absorbing most of the data.

type hotspot struct {
	seed         uint64
	lo, hi       uint64
	hotLo, hotHi uint64
	hotProb      float64
}

// NewHotspot returns a generator where a contiguous region covering
// hotFrac of the domain (placed pseudo-randomly from the seed) receives
// hotProb of all values; the rest is uniform background over [lo, hi].
// Both fractions are clamped to [0, 1].
func NewHotspot(seed, lo, hi uint64, hotFrac, hotProb float64) Generator {
	lo, hi = normBounds(lo, hi)
	if !(hotFrac > 0) {
		hotFrac = 0
	}
	if hotFrac > 1 {
		hotFrac = 1
	}
	if !(hotProb > 0) {
		hotProb = 0
	}
	if hotProb > 1 {
		hotProb = 1
	}
	width := hi - lo
	span := scaleFrac(hotFrac, width)
	start := seedRand(seed).Uint64Range(0, width-span)
	return &hotspot{
		seed: seed, lo: lo, hi: hi,
		hotLo: lo + start, hotHi: lo + start + span,
		hotProb: hotProb,
	}
}

func (g *hotspot) FillPage(page int, out []uint64) {
	r := pageRand(g.seed, page)
	for i := range out {
		if r.Float64() < g.hotProb {
			out[i] = r.Uint64Range(g.hotLo, g.hotHi)
		} else {
			out[i] = r.Uint64Range(g.lo, g.hi)
		}
	}
}

// ---------------------------------------------------------------------------
// Clustered — per-page value locality at random positions.

type clustered struct {
	seed   uint64
	lo, hi uint64
	amp    uint64
}

// NewClustered returns a generator where each page's values cluster in a
// window of clusterFrac × the domain around a per-page pseudo-random
// center — locality like sine's, but with no global order across pages,
// which stresses view creation with scattered qualifying pages.
// clusterFrac is clamped to [0, 1].
func NewClustered(seed, lo, hi uint64, clusterFrac float64) Generator {
	lo, hi = normBounds(lo, hi)
	return &clustered{seed: seed, lo: lo, hi: hi, amp: scaleFrac(clusterFrac, hi-lo) / 2}
}

func (g *clustered) FillPage(page int, out []uint64) {
	r := pageRand(g.seed, page)
	center := r.Uint64Range(g.lo, g.hi)
	wlo, whi := windowAround(center, g.amp, g.lo, g.hi)
	for i := range out {
		out[i] = r.Uint64Range(wlo, whi)
	}
}

// ---------------------------------------------------------------------------
// Shifted — a sliding value window that wraps around the domain.

type shifted struct {
	seed   uint64
	lo, hi uint64
	period int
	phase  uint64
	amp    uint64
}

// NewShifted returns a generator whose value window slides linearly
// across the domain as the page index grows, wrapping around after
// periodPages pages — a sawtooth counterpart to sine's smooth cycle, with
// a seed-derived phase so different seeds shift the wrap point. Window
// half-width is 1/64 of the domain.
func NewShifted(seed, lo, hi uint64, periodPages int) Generator {
	lo, hi = normBounds(lo, hi)
	if periodPages <= 0 {
		periodPages = 1
	}
	width := hi - lo
	return &shifted{
		seed: seed, lo: lo, hi: hi, period: periodPages,
		phase: seedRand(seed^0xa24baed4963ee407).Uint64Range(0, width),
		amp:   width / 64,
	}
}

func (g *shifted) FillPage(page int, out []uint64) {
	page = normPage(page)
	r := pageRand(g.seed, page)
	width := g.hi - g.lo
	off := mulDiv(width, uint64(page%g.period), uint64(g.period))
	var pos uint64
	if width == ^uint64(0) {
		// The offset domain is the full uint64 range: natural wraparound
		// is exactly addition mod 2^64.
		pos = g.phase + off
	} else {
		span := width + 1
		if off >= span-g.phase {
			pos = off - (span - g.phase)
		} else {
			pos = g.phase + off
		}
	}
	wlo, whi := windowAround(g.lo+pos, g.amp, g.lo, g.hi)
	for i := range out {
		out[i] = r.Uint64Range(wlo, whi)
	}
}
