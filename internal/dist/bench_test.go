package dist

import "testing"

// BenchmarkDist_FillPage measures the per-page generation cost of every
// registered distribution — the serial lower bound that
// storage.Column.FillParallel divides across cores.
func BenchmarkDist_FillPage(b *testing.B) {
	const pages = 4096
	for _, name := range Names() {
		b.Run(name, func(b *testing.B) {
			g, err := ByName(name, 1, 0, 100_000_000, pages)
			if err != nil {
				b.Fatal(err)
			}
			out := make([]uint64, 509)
			b.SetBytes(int64(len(out) * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.FillPage(i%pages, out)
			}
		})
	}
}
