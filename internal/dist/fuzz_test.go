package dist

import "testing"

// FuzzByName drives the whole registry through arbitrary (name, seed, lo,
// hi, pages, page) tuples and asserts the package contract: resolution
// either errors cleanly or yields a generator that never panics and never
// emits a value outside the normalized [lo, hi].
func FuzzByName(f *testing.F) {
	for _, name := range Names() {
		f.Add(name, uint64(1), uint64(0), uint64(100_000_000), 64, 0)
		f.Add(name, uint64(42), uint64(500), uint64(100), -3, -1)
		f.Add(name, uint64(0), uint64(7), uint64(7), 1, 1<<20)
		f.Add(name, uint64(99), uint64(0), ^uint64(0), 4096, 4095)
	}
	f.Add("no-such-dist", uint64(1), uint64(0), uint64(10), 8, 0)

	f.Fuzz(func(t *testing.T, name string, seed, lo, hi uint64, pages, page int) {
		g, err := ByName(name, seed, lo, hi, pages)
		if err != nil {
			if g != nil {
				t.Fatal("error with non-nil generator")
			}
			return
		}
		out := make([]uint64, 509)
		g.FillPage(page, out)
		wantLo, wantHi := lo, hi
		if wantLo > wantHi {
			wantLo, wantHi = wantHi, wantLo
		}
		for i, v := range out {
			if v < wantLo || v > wantHi {
				t.Fatalf("%s(seed=%d, lo=%d, hi=%d, pages=%d).FillPage(%d)[%d] = %d outside [%d, %d]",
					name, seed, lo, hi, pages, page, i, v, wantLo, wantHi)
			}
		}
		// Determinism: the identical call must reproduce the page.
		again := make([]uint64, 509)
		g.FillPage(page, again)
		for i := range out {
			if out[i] != again[i] {
				t.Fatalf("FillPage(%d) not deterministic at slot %d", page, i)
			}
		}
	})
}
