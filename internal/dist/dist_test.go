package dist

import (
	"math"
	"testing"
)

const testDomain = 100_000_000

// fillMany fills pages [0, pages) with one FillPage call each and returns
// the concatenated values.
func fillMany(g Generator, pages, perPage int) []uint64 {
	out := make([]uint64, 0, pages*perPage)
	buf := make([]uint64, perPage)
	for p := 0; p < pages; p++ {
		g.FillPage(p, buf)
		out = append(out, buf...)
	}
	return out
}

func TestByNameResolvesAllRegistered(t *testing.T) {
	names := Names()
	if len(names) < 7 {
		t.Fatalf("registry has %d names, want >= 7: %v", len(names), names)
	}
	for _, name := range names {
		g, err := ByName(name, 1, 0, testDomain, 256)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if g == nil {
			t.Fatalf("ByName(%q) returned nil generator", name)
		}
	}
}

func TestByNameTable(t *testing.T) {
	for _, tc := range []struct {
		name    string
		dist    string
		pages   int
		wantErr bool
	}{
		{"uniform ok", "uniform", 16, false},
		{"linear ok", "linear", 16, false},
		{"sine ok", "sine", 16, false},
		{"sparse ok", "sparse", 16, false},
		{"zipf ok", "zipf", 16, false},
		{"hotspot ok", "hotspot", 16, false},
		{"clustered ok", "clustered", 16, false},
		{"shifted ok", "shifted", 16, false},
		{"zero pages tolerated", "linear", 0, false},
		{"negative pages tolerated", "linear", -5, false},
		{"unknown name", "pareto", 16, true},
		{"empty name", "", 16, true},
		{"case sensitive", "Uniform", 16, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g, err := ByName(tc.dist, 7, 0, testDomain, tc.pages)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("ByName(%q) accepted", tc.dist)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]uint64, 64)
			g.FillPage(0, buf) // must not panic
		})
	}
}

// TestDeterminism: same seed => byte-identical pages, independent of the
// order pages are generated in — the property FillParallel relies on.
func TestDeterminism(t *testing.T) {
	const pages, perPage = 32, 509
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			g1, err := ByName(name, 42, 0, testDomain, pages)
			if err != nil {
				t.Fatal(err)
			}
			g2, err := ByName(name, 42, 0, testDomain, pages)
			if err != nil {
				t.Fatal(err)
			}
			forward := fillMany(g1, pages, perPage)
			// Generate in reverse page order on the second instance.
			reverse := make([]uint64, pages*perPage)
			buf := make([]uint64, perPage)
			for p := pages - 1; p >= 0; p-- {
				g2.FillPage(p, buf)
				copy(reverse[p*perPage:], buf)
			}
			for i := range forward {
				if forward[i] != reverse[i] {
					t.Fatalf("value %d differs across fill orders: %d vs %d",
						i, forward[i], reverse[i])
				}
			}
			// Refilling a page after others must reproduce it exactly.
			g1.FillPage(5, buf)
			for i, v := range buf {
				if v != forward[5*perPage+i] {
					t.Fatalf("page 5 not reproducible at slot %d", i)
				}
			}
		})
	}
}

func TestSeedsProduceDifferentData(t *testing.T) {
	const pages, perPage = 8, 509
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			g1, _ := ByName(name, 1, 0, testDomain, pages)
			g2, _ := ByName(name, 2, 0, testDomain, pages)
			a := fillMany(g1, pages, perPage)
			b := fillMany(g2, pages, perPage)
			for i := range a {
				if a[i] != b[i] {
					return
				}
			}
			t.Fatal("seeds 1 and 2 produced identical data")
		})
	}
}

// TestBounds: every value of every generator lies in [lo, hi], across
// ordinary, degenerate, reversed, and full-uint64 domains.
func TestBounds(t *testing.T) {
	bounds := []struct {
		label  string
		lo, hi uint64
	}{
		{"ordinary", 0, testDomain},
		{"offset", 1_000, 2_000},
		{"single point", 77, 77},
		{"reversed (swapped)", 5_000, 10},
		{"full domain", 0, math.MaxUint64},
		{"top of domain", math.MaxUint64 - 1000, math.MaxUint64},
	}
	for _, name := range Names() {
		for _, b := range bounds {
			t.Run(name+"/"+b.label, func(t *testing.T) {
				lo, hi := b.lo, b.hi
				if lo > hi {
					lo, hi = hi, lo
				}
				g, err := ByName(name, 9, b.lo, b.hi, 64)
				if err != nil {
					t.Fatal(err)
				}
				for _, v := range fillMany(g, 64, 509) {
					if v < lo || v > hi {
						t.Fatalf("value %d outside [%d, %d]", v, lo, hi)
					}
				}
			})
		}
	}
}

// TestLinearPageMeansIncrease: linear is perfectly clustered — page means
// increase strictly with the page index (the Figure 2a ramp).
func TestLinearPageMeansIncrease(t *testing.T) {
	const pages = 100
	g := NewLinear(3, 0, testDomain, pages)
	buf := make([]uint64, 509)
	prev := -1.0
	for p := 0; p < pages; p++ {
		g.FillPage(p, buf)
		sum := 0.0
		for _, v := range buf {
			sum += float64(v)
		}
		mean := sum / float64(len(buf))
		if mean <= prev {
			t.Fatalf("page %d mean %.0f <= previous %.0f", p, mean, prev)
		}
		prev = mean
	}
}

// TestLinearSaturatesBeyondNumPages: pages past numPages stay in-domain
// at the top slice instead of running off the ramp.
func TestLinearSaturatesBeyondNumPages(t *testing.T) {
	g := NewLinear(3, 0, 1000, 10)
	buf := make([]uint64, 509)
	g.FillPage(500, buf)
	for _, v := range buf {
		if v < 900 || v > 1000 {
			t.Fatalf("saturated page value %d outside top slice", v)
		}
	}
}

// TestSinePeriodicity: pages one full period apart cluster around the
// same wave position.
func TestSinePeriodicity(t *testing.T) {
	const period = 100
	g := NewSine(11, 0, testDomain, period)
	buf := make([]uint64, 509)
	mean := func(p int) float64 {
		g.FillPage(p, buf)
		sum := 0.0
		for _, v := range buf {
			sum += float64(v)
		}
		return sum / float64(len(buf))
	}
	for _, p := range []int{3, 42, 77} {
		m0, m1 := mean(p), mean(p+period)
		// Window half-width is domain/64; the centers are identical, so the
		// means may differ only by jitter inside the window.
		if math.Abs(m0-m1) > testDomain/32 {
			t.Fatalf("pages %d and %d one period apart have means %.0f vs %.0f", p, p+period, m0, m1)
		}
	}
}

// TestSparseZeroPages: the configured fraction of pages holds only the
// domain floor, the rest spreads over the domain.
func TestSparseZeroPages(t *testing.T) {
	const pages = 2000
	g := NewSparse(5, 0, testDomain, 0.9)
	buf := make([]uint64, 509)
	floorPages := 0
	for p := 0; p < pages; p++ {
		g.FillPage(p, buf)
		allFloor := true
		for _, v := range buf {
			if v != 0 {
				allFloor = false
				break
			}
		}
		if allFloor {
			floorPages++
		}
	}
	frac := float64(floorPages) / pages
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("zero-page fraction %.3f, want ~0.9", frac)
	}
}

// TestZipfSkew: low ranks dominate — at skew 1.1 well over half the mass
// falls in the lowest decile of the domain.
func TestZipfSkew(t *testing.T) {
	g := NewZipf(13, 0, testDomain, DefaultZipfSkew)
	vals := fillMany(g, 64, 509)
	lowDecile := 0
	for _, v := range vals {
		if v < testDomain/10 {
			lowDecile++
		}
	}
	if frac := float64(lowDecile) / float64(len(vals)); frac < 0.5 {
		t.Fatalf("lowest decile holds %.3f of the mass, want > 0.5", frac)
	}
}

// TestHotspotConcentration: ~hotProb of the values land inside a region
// of ~hotFrac of the domain.
func TestHotspotConcentration(t *testing.T) {
	g := NewHotspot(17, 0, testDomain, 0.1, 0.9)
	vals := fillMany(g, 64, 509)
	// Find the densest window of width domain/10 via a 100-bin histogram.
	const bins = 100
	var hist [bins]int
	for _, v := range vals {
		b := int(v / (testDomain / bins))
		if b >= bins {
			b = bins - 1
		}
		hist[b]++
	}
	best := 0
	for start := 0; start+10 <= bins; start++ {
		in := 0
		for i := start; i < start+10; i++ {
			in += hist[i]
		}
		if in > best {
			best = in
		}
	}
	if frac := float64(best) / float64(len(vals)); frac < 0.8 {
		t.Fatalf("densest 10%% window holds %.3f of the mass, want > 0.8", frac)
	}
}

// TestClusteredPageSpread: each page's values span at most the cluster
// window, far below the whole domain.
func TestClusteredPageSpread(t *testing.T) {
	g := NewClustered(19, 0, testDomain, DefaultClusterFrac)
	buf := make([]uint64, 509)
	maxSpread := uint64(DefaultClusterFrac * testDomain)
	for p := 0; p < 128; p++ {
		g.FillPage(p, buf)
		min, max := buf[0], buf[0]
		for _, v := range buf {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if max-min > maxSpread {
			t.Fatalf("page %d spread %d exceeds cluster window %d", p, max-min, maxSpread)
		}
	}
}

// TestShiftedSlides: within one period the window position advances, and
// pages a full period apart coincide.
func TestShiftedSlides(t *testing.T) {
	const period = 100
	g := NewShifted(23, 0, testDomain, period)
	buf := make([]uint64, 509)
	mean := func(p int) float64 {
		g.FillPage(p, buf)
		sum := 0.0
		for _, v := range buf {
			sum += float64(v)
		}
		return sum / float64(len(buf))
	}
	m0, mHalf := mean(0), mean(period/2)
	if math.Abs(m0-mHalf) < testDomain/16 {
		t.Fatalf("window did not slide: mean(0)=%.0f mean(%d)=%.0f", m0, period/2, mHalf)
	}
	if d := math.Abs(mean(7) - mean(7+period)); d > testDomain/32 {
		t.Fatalf("pages one period apart differ by %.0f", d)
	}
}

// TestFillPageHostileInputs: negative pages, empty and odd-length output
// slices must not panic and must stay in bounds.
func TestFillPageHostileInputs(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			g, err := ByName(name, 3, 10, 99, 8)
			if err != nil {
				t.Fatal(err)
			}
			g.FillPage(0, nil)
			g.FillPage(-1, make([]uint64, 3))
			buf := make([]uint64, 1)
			g.FillPage(1<<30, buf)
			if buf[0] < 10 || buf[0] > 99 {
				t.Fatalf("huge page index escaped bounds: %d", buf[0])
			}
		})
	}
}
