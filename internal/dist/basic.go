package dist

import "math"

// ---------------------------------------------------------------------------
// Uniform (Figures 3, 6a, 7a — the unclustered worst case).

type uniform struct {
	seed   uint64
	lo, hi uint64
}

// NewUniform returns a generator drawing each value independently and
// uniformly from [lo, hi].
func NewUniform(seed, lo, hi uint64) Generator {
	lo, hi = normBounds(lo, hi)
	return &uniform{seed: seed, lo: lo, hi: hi}
}

func (g *uniform) FillPage(page int, out []uint64) {
	r := pageRand(g.seed, page)
	for i := range out {
		out[i] = r.Uint64Range(g.lo, g.hi)
	}
}

// ---------------------------------------------------------------------------
// Linear (Figure 2a — perfectly clustered ramp).

type linear struct {
	seed     uint64
	lo, hi   uint64
	numPages int
}

// NewLinear returns a generator whose values grow linearly with the page
// position: page p of numPages draws uniformly from the p-th of numPages
// consecutive, disjoint slices of [lo, hi]. Page means therefore increase
// strictly with p (perfect clustering), pages beyond numPages saturate at
// the top slice.
func NewLinear(seed, lo, hi uint64, numPages int) Generator {
	lo, hi = normBounds(lo, hi)
	if numPages <= 0 {
		numPages = 1
	}
	return &linear{seed: seed, lo: lo, hi: hi, numPages: numPages}
}

// pageBounds returns the inclusive value slice of page p.
func (g *linear) pageBounds(p int) (uint64, uint64) {
	if p >= g.numPages {
		p = g.numPages - 1
	}
	return sliceBounds(g.lo, g.hi, uint64(p), uint64(g.numPages))
}

func (g *linear) FillPage(page int, out []uint64) {
	page = normPage(page)
	r := pageRand(g.seed, page)
	sliceLo, sliceHi := g.pageBounds(page)
	for i := range out {
		out[i] = r.Uint64Range(sliceLo, sliceHi)
	}
}

// ---------------------------------------------------------------------------
// Sine (Figure 2b — periodically clustered, e.g. daily sensor cycles).

type sine struct {
	seed   uint64
	lo, hi uint64
	period int
	amp    uint64
}

// NewSine returns a generator following a sine wave over the page
// sequence with the given period in pages: page p's values cluster in a
// narrow window (1/64 of the domain to each side) around the wave
// position, so equal value ranges recur every periodPages pages.
func NewSine(seed, lo, hi uint64, periodPages int) Generator {
	lo, hi = normBounds(lo, hi)
	if periodPages <= 0 {
		periodPages = 1
	}
	return &sine{seed: seed, lo: lo, hi: hi, period: periodPages, amp: (hi - lo) / 64}
}

func (g *sine) FillPage(page int, out []uint64) {
	page = normPage(page)
	r := pageRand(g.seed, page)
	phase := 2 * math.Pi * float64(page%g.period) / float64(g.period)
	frac := 0.5 + 0.5*math.Sin(phase)
	center := g.lo + scaleFrac(frac, g.hi-g.lo)
	wlo, whi := windowAround(center, g.amp, g.lo, g.hi)
	for i := range out {
		out[i] = r.Uint64Range(wlo, whi)
	}
}

// ---------------------------------------------------------------------------
// Sparse (Figure 2c — mostly-empty pages with uniform spikes).

type sparse struct {
	seed     uint64
	lo, hi   uint64
	zeroFrac float64
}

// NewSparse returns a generator where zeroFrac of all pages hold only the
// domain floor lo (the paper's all-zero pages, since its domain starts at
// 0) and the remaining pages hold values drawn uniformly from [lo, hi].
// zeroFrac is clamped to [0, 1].
func NewSparse(seed, lo, hi uint64, zeroFrac float64) Generator {
	lo, hi = normBounds(lo, hi)
	if !(zeroFrac > 0) { // also catches NaN
		zeroFrac = 0
	}
	if zeroFrac > 1 {
		zeroFrac = 1
	}
	return &sparse{seed: seed, lo: lo, hi: hi, zeroFrac: zeroFrac}
}

func (g *sparse) FillPage(page int, out []uint64) {
	r := pageRand(g.seed, page)
	if r.Float64() < g.zeroFrac {
		for i := range out {
			out[i] = g.lo
		}
		return
	}
	for i := range out {
		out[i] = r.Uint64Range(g.lo, g.hi)
	}
}
