package vmsim

import (
	"fmt"
	"sync/atomic"
	"time"
)

// This file adds a second, slower frame tier to the simulated kernel —
// the NVMe/CXL capacity tier of tiered-memory buffer managers. Frames
// never move physically (epoch'd captures alias frame memory, so moving
// bytes under pinned readers would be a use-after-free); instead the
// tier of each *file page* is tracked in a packed tier+version word and
// cold accesses are charged a simulated latency, following Virtuoso's
// simulated-cost methodology (PAPERS.md). Demotion and promotion are
// single CAS transitions that bump the version, which gives readers the
// vmcache-style versioned/optimistic access protocol of "Virtual-Memory
// Assisted Buffer Management In Tiered Memory": bracket the page read
// with Word/Stable and retry on a concurrent migration — readers never
// block on tier migration.
//
// Tier-word layout (uint32): bit 0 is the tier (0 = hot/DRAM,
// 1 = cold/capacity tier); bits 1..31 are a version counter bumped by
// every demote and promote.

const (
	// tierColdBit marks a page as resident in the cold tier.
	tierColdBit = 1
	// tierBaseNanos approximates the hot-tier cost of filtering one 4 KiB
	// page — the unit TierConfig.ColdMultiplier scales.
	tierBaseNanos = 250
	// defaultColdMultiplier is the simulated cold-tier slowdown when the
	// config leaves it zero (NVMe-class: ~8× DRAM for a 4 KiB access).
	defaultColdMultiplier = 8
)

// TierConfig parameterizes a file's two-tier frame budget. The zero
// value disables tiering entirely: no words are tracked, no latency is
// charged, and behaviour is byte-for-byte the single-tier kernel.
type TierConfig struct {
	// HotFrames is the hot-tier (DRAM) frame budget in file pages; pages
	// beyond it are candidates for demotion to the capacity tier.
	// <= 0 disables tiering.
	HotFrames int
	// ColdMultiplier is the simulated slowdown of a cold-tier page access
	// relative to the hot tier's per-page scan cost (0 selects 8; the
	// charged stall is ColdMultiplier × 250ns per cold page touch).
	ColdMultiplier float64
	// NoPromoteOnAccess leaves touched cold pages in the cold tier even
	// when the hot budget has room; by default a touch promotes.
	NoPromoteOnAccess bool
	// NoStall charges cold touches to the stall counters without the
	// busy-wait — deterministic tests keep the accounting, not the time.
	NoStall bool
}

// Enabled reports whether the config describes an active second tier.
func (c TierConfig) Enabled() bool { return c.HotFrames > 0 }

// TierStats is a snapshot of one file tier's occupancy and migration
// counters.
type TierStats struct {
	Pages       int    // total tracked file pages
	HotFrames   int    // pages currently hot
	ColdFrames  int    // pages currently cold
	HotBudget   int    // configured hot-tier budget
	Demotions   uint64 // hot → cold transitions
	Promotions  uint64 // cold → hot transitions
	ColdTouches uint64 // page accesses that found the page cold
	StallNanos  uint64 // cumulative simulated cold-access latency, ns
}

// HotFraction returns the fraction of tracked pages currently hot.
func (s TierStats) HotFraction() float64 {
	if s.Pages == 0 {
		return 1
	}
	return float64(s.HotFrames) / float64(s.Pages)
}

// FileTier tracks the tier+version word of every page of one file. All
// methods are safe for concurrent use; migrations are lock-free CAS
// transitions and touches are wait-free reads (plus the simulated
// stall).
type FileTier struct {
	cfg     TierConfig
	stallNs int64
	words   []atomic.Uint32

	cold        atomic.Int64
	demotions   atomic.Uint64
	promotions  atomic.Uint64
	coldTouches atomic.Uint64
	stallTotal  atomic.Uint64
}

// NewFileTier creates the tier map for a file of the given page count
// and registers it with the kernel's aggregate tier accounting. Every
// page starts hot with version 0.
func (k *Kernel) NewFileTier(pages int, cfg TierConfig) (*FileTier, error) {
	if !cfg.Enabled() {
		return nil, fmt.Errorf("%w: tier config with HotFrames %d", ErrInvalid, cfg.HotFrames)
	}
	if pages <= 0 {
		return nil, fmt.Errorf("%w: tier map over %d pages", ErrInvalid, pages)
	}
	if cfg.ColdMultiplier <= 0 {
		cfg.ColdMultiplier = defaultColdMultiplier
	}
	t := &FileTier{
		cfg:     cfg,
		stallNs: int64(cfg.ColdMultiplier * tierBaseNanos),
		words:   make([]atomic.Uint32, pages),
	}
	k.mu.Lock()
	k.tiers = append(k.tiers, t)
	k.mu.Unlock()
	return t, nil
}

// Config returns the (default-resolved) tier configuration.
func (t *FileTier) Config() TierConfig { return t.cfg }

// Pages returns the number of tracked file pages.
func (t *FileTier) Pages() int { return len(t.words) }

// Word returns page i's current tier+version word — the version token of
// the optimistic read protocol.
func (t *FileTier) Word(i int) uint32 {
	if i < 0 || i >= len(t.words) {
		return 0
	}
	return t.words[i].Load()
}

// Stable reports whether page i's word still matches the token, i.e. no
// demotion or promotion intervened since the token was read.
func (t *FileTier) Stable(i int, token uint32) bool {
	if i < 0 || i >= len(t.words) {
		return true
	}
	return t.words[i].Load() == token
}

// IsCold reports whether page i currently resides in the cold tier.
func (t *FileTier) IsCold(i int) bool { return t.Word(i)&tierColdBit != 0 }

// Touch records one read access to page i and returns the word the read
// should validate against. A hot page costs nothing. A cold page is
// charged the simulated capacity-tier latency and — unless disabled or
// over budget — promoted back to the hot tier (the promote bumps the
// version, and the returned word is the promoted one, so the toucher's
// own migration never forces a retry).
func (t *FileTier) Touch(i int) uint32 {
	if i < 0 || i >= len(t.words) {
		return 0
	}
	w := t.words[i].Load()
	if w&tierColdBit == 0 {
		return w
	}
	t.coldTouches.Add(1)
	t.stallTotal.Add(uint64(t.stallNs))
	if !t.cfg.NoStall {
		spinWait(time.Duration(t.stallNs))
	}
	if !t.cfg.NoPromoteOnAccess && t.hotFrames() < t.cfg.HotFrames {
		if nw, ok := t.promote(i, w); ok {
			return nw
		}
	}
	return t.words[i].Load()
}

// Demote moves page i to the cold tier; false when it already was cold
// (or out of range). The version bump invalidates concurrent optimistic
// readers of the page, which retry through their pinned capture.
func (t *FileTier) Demote(i int) bool {
	if i < 0 || i >= len(t.words) {
		return false
	}
	for {
		w := t.words[i].Load()
		if w&tierColdBit != 0 {
			return false
		}
		if t.words[i].CompareAndSwap(w, (w|tierColdBit)+2) {
			t.cold.Add(1)
			t.demotions.Add(1)
			return true
		}
	}
}

// Promote moves page i back to the hot tier regardless of the budget —
// the write path lands written pages hot unconditionally (a COW shadow
// allocates a fresh DRAM frame). Budget-respecting promotion happens in
// Touch. Returns false when the page already was hot.
func (t *FileTier) Promote(i int) bool {
	if i < 0 || i >= len(t.words) {
		return false
	}
	for {
		w := t.words[i].Load()
		if w&tierColdBit == 0 {
			return false
		}
		if _, ok := t.promote(i, w); ok {
			return true
		}
	}
}

// promote attempts the cold → hot CAS from the observed word.
func (t *FileTier) promote(i int, w uint32) (uint32, bool) {
	if w&tierColdBit == 0 {
		return w, false
	}
	nw := (w &^ uint32(tierColdBit)) + 2
	if !t.words[i].CompareAndSwap(w, nw) {
		return w, false
	}
	t.cold.Add(-1)
	t.promotions.Add(1)
	return nw, true
}

// hotFrames returns the current hot-tier occupancy in pages.
func (t *FileTier) hotFrames() int { return len(t.words) - int(t.cold.Load()) }

// Stats snapshots occupancy and migration counters. Counters are read
// individually, so a snapshot taken under concurrent migration is
// advisory (each field is exact at its own read).
func (t *FileTier) Stats() TierStats {
	cold := int(t.cold.Load())
	return TierStats{
		Pages:       len(t.words),
		HotFrames:   len(t.words) - cold,
		ColdFrames:  cold,
		HotBudget:   t.cfg.HotFrames,
		Demotions:   t.demotions.Load(),
		Promotions:  t.promotions.Load(),
		ColdTouches: t.coldTouches.Load(),
		StallNanos:  t.stallTotal.Load(),
	}
}

// TierStats aggregates every file tier registered with the kernel — the
// machine-wide capacity-tier accounting next to MemStats.
func (k *Kernel) TierStats() TierStats {
	k.mu.Lock()
	tiers := make([]*FileTier, len(k.tiers))
	copy(tiers, k.tiers)
	k.mu.Unlock()
	var agg TierStats
	for _, t := range tiers {
		s := t.Stats()
		agg.Pages += s.Pages
		agg.HotFrames += s.HotFrames
		agg.ColdFrames += s.ColdFrames
		agg.HotBudget += s.HotBudget
		agg.Demotions += s.Demotions
		agg.Promotions += s.Promotions
		agg.ColdTouches += s.ColdTouches
		agg.StallNanos += s.StallNanos
	}
	return agg
}

// spinWait busy-waits for d — the charged latencies are microsecond
// scale, far below what a parked goroutine could model faithfully.
func spinWait(d time.Duration) {
	if d <= 0 {
		return
	}
	t0 := time.Now()
	for time.Since(t0) < d { //nolint:revive // intentional busy-wait
	}
}
