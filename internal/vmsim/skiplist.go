package vmsim

import "github.com/asv-db/asv/internal/xrand"

// vmaList is an ordered index of non-overlapping VMAs keyed by start page,
// implemented as a skiplist. The real kernel keeps its VMAs in a balanced
// structure (an rbtree, later a maple tree) precisely because address
// spaces with hundreds of thousands of mappings are common once rewiring
// is in play — the paper raises vm.max_map_count to 2^32-1 (§3). A sorted
// slice would make each of the hundreds of thousands of single-page mmap
// calls in the unoptimized Figure 6 configuration an O(n) memmove;
// the skiplist keeps insert/delete/seek at O(log n), preserving the
// kernel's cost profile.
type vmaList struct {
	head  *vmaNode
	level int
	size  int
	rng   *xrand.Rand
}

const maxSkipLevel = 24

type vmaNode struct {
	vma  *VMA
	next [maxSkipLevel]*vmaNode
}

func newVMAList(seed uint64) *vmaList {
	return &vmaList{
		head:  &vmaNode{},
		level: 1,
		rng:   xrand.New(seed),
	}
}

// randLevel draws a node height with P(level >= k+1 | level >= k) = 1/4.
func (l *vmaList) randLevel() int {
	lvl := 1
	for lvl < maxSkipLevel && l.rng.Uint64()&3 == 0 {
		lvl++
	}
	return lvl
}

// findPredecessors fills pred[i] with the rightmost node at level i whose
// start is < key, and returns the node following pred[0] (the candidate
// match, i.e. the first node with start >= key).
func (l *vmaList) findPredecessors(key VPN, pred *[maxSkipLevel]*vmaNode) *vmaNode {
	x := l.head
	for i := l.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].vma.start < key {
			x = x.next[i]
		}
		pred[i] = x
	}
	return x.next[0]
}

// insert adds v to the list. The caller guarantees no existing VMA has the
// same start (enforced at the address-space layer by overlap resolution).
func (l *vmaList) insert(v *VMA) {
	var pred [maxSkipLevel]*vmaNode
	l.findPredecessors(v.start, &pred)
	lvl := l.randLevel()
	for l.level < lvl {
		pred[l.level] = l.head
		l.level++
	}
	n := &vmaNode{vma: v}
	for i := 0; i < lvl; i++ {
		n.next[i] = pred[i].next[i]
		pred[i].next[i] = n
	}
	l.size++
}

// remove deletes the VMA starting at key and reports whether it existed.
func (l *vmaList) remove(key VPN) bool {
	var pred [maxSkipLevel]*vmaNode
	n := l.findPredecessors(key, &pred)
	if n == nil || n.vma.start != key {
		return false
	}
	for i := 0; i < l.level; i++ {
		if pred[i].next[i] == n {
			pred[i].next[i] = n.next[i]
		}
	}
	for l.level > 1 && l.head.next[l.level-1] == nil {
		l.level--
	}
	l.size--
	return true
}

// seekGE returns the first node whose VMA start is >= key, or nil.
func (l *vmaList) seekGE(key VPN) *vmaNode {
	var pred [maxSkipLevel]*vmaNode
	return l.findPredecessors(key, &pred)
}

// floor returns the last VMA with start <= key, or nil.
func (l *vmaList) floor(key VPN) *VMA {
	x := l.head
	for i := l.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].vma.start <= key {
			x = x.next[i]
		}
	}
	if x == l.head {
		return nil
	}
	return x.vma
}

// containing returns the VMA whose page range contains vpn, or nil.
func (l *vmaList) containing(vpn VPN) *VMA {
	v := l.floor(vpn)
	if v != nil && vpn < v.end {
		return v
	}
	return nil
}

// first returns the node with the smallest start, or nil.
func (l *vmaList) first() *vmaNode { return l.head.next[0] }

// len returns the number of VMAs.
func (l *vmaList) len() int { return l.size }

// each calls fn for every VMA in start order; fn returning false stops.
func (l *vmaList) each(fn func(*VMA) bool) {
	for n := l.head.next[0]; n != nil; n = n.next[0] {
		if !fn(n.vma) {
			return
		}
	}
}
