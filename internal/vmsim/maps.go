package vmsim

import (
	"bytes"
	"fmt"
)

// RenderMaps renders the address space in the text format of
// /proc/PID/maps, one line per VMA:
//
//	address           perms offset  dev   inode      pathname
//	7f1234561000-7f1234567000 rw-s 00002000 00:01 64593 /dev/shm/db
//
// The paper's update path (§2.5) obtains the current virtual→physical
// mapping by parsing exactly this file; internal/procmaps implements the
// parser. The rendering cost — like the kernel's — is proportional to the
// number of VMAs, so clustered mappings (fewer, longer VMAs after merging)
// yield a smaller file and a cheaper parse, the effect measured in §3.4.
//
// The device column is fixed at 00:01, the conventional tmpfs anonymous
// device; anonymous areas render with inode 0 and no pathname.
func (as *AddressSpace) RenderMaps() []byte {
	var buf bytes.Buffer
	as.mu.RLock()
	defer as.mu.RUnlock()
	as.vmas.each(func(v *VMA) bool {
		renderVMALine(&buf, v)
		return true
	})
	return buf.Bytes()
}

func renderVMALine(buf *bytes.Buffer, v *VMA) {
	inode := uint64(0)
	name := ""
	if v.file != nil {
		inode = v.file.inode
		name = "/dev/shm/" + v.file.name
	}
	fmt.Fprintf(buf, "%012x-%012x %s %08x 00:01 %d",
		uint64(v.Start()), uint64(v.End()), v.perm.String(),
		uint64(v.filePage)*PageSize, inode)
	if name != "" {
		buf.WriteByte(' ')
		buf.WriteString(name)
	}
	buf.WriteByte('\n')
}
