package vmsim

import (
	"fmt"
	"sync"
)

// File is a main-memory file: a named, growable sequence of physical
// frames, playing the role of the tmpfs files under /dev/shm that memory
// rewiring uses as user-space handles on physical memory (§1.2). Mapping a
// virtual area onto a File with Shared semantics makes writes through any
// mapping visible through every other mapping of the same pages — which is
// what lets multiple partial views share physical pages.
type File struct {
	kernel *Kernel
	name   string
	inode  uint64

	mu      sync.RWMutex
	frames  []FrameID
	mapRefs int // file pages currently present in some page table
}

// addRefs adjusts the mapped-page refcount (called by address spaces under
// population and teardown).
func (f *File) addRefs(n int) {
	f.mu.Lock()
	f.mapRefs += n
	if f.mapRefs < 0 {
		f.mu.Unlock()
		panic("vmsim: file map refcount underflow")
	}
	f.mu.Unlock()
}

// MappedPages returns how many page-table entries currently reference this
// file across all address spaces.
func (f *File) MappedPages() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.mapRefs
}

// CreateFile creates a main-memory file with the given number of zeroed
// pages. The name must be unique within the kernel (think of it as the
// path under /dev/shm).
func (k *Kernel) CreateFile(name string, pages int) (*File, error) {
	if pages < 0 {
		return nil, fmt.Errorf("%w: negative size %d", ErrInvalid, pages)
	}
	k.mu.Lock()
	if _, dup := k.files[name]; dup {
		k.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	f := &File{kernel: k, name: name, inode: k.nextInode}
	k.nextInode++
	k.files[name] = f
	k.mu.Unlock()

	if err := f.Truncate(pages); err != nil {
		k.mu.Lock()
		delete(k.files, name)
		k.mu.Unlock()
		return nil, err
	}
	return f, nil
}

// OpenFile returns the existing file with the given name.
func (k *Kernel) OpenFile(name string) (*File, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	f, ok := k.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return f, nil
}

// RemoveFile unlinks the file and returns its frames to the allocator.
// Existing mappings keep working in Linux after an unlink; our simulator
// instead requires that callers unmap first — the adaptive layer always
// owns its files for the lifetime of a column, so this stricter rule only
// catches bugs (a removed-but-mapped file would be a use-after-free of
// its frames).
func (k *Kernel) RemoveFile(name string) error {
	k.mu.Lock()
	f, ok := k.files[name]
	if !ok {
		k.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if f.MappedPages() > 0 {
		k.mu.Unlock()
		return fmt.Errorf("vmsim: removing %q while %d of its pages are still mapped", name, f.MappedPages())
	}
	delete(k.files, name)
	k.mu.Unlock()

	f.mu.Lock()
	frames := f.frames
	f.frames = nil
	f.mu.Unlock()
	for _, fr := range frames {
		k.freeFrame(fr)
	}
	return nil
}

// Name returns the file's name.
func (f *File) Name() string { return f.name }

// Inode returns the file's inode number (rendered in the maps file).
func (f *File) Inode() uint64 { return f.inode }

// NumPages returns the current length of the file in pages.
func (f *File) NumPages() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.frames)
}

// Truncate grows or shrinks the file to the given number of pages. Grown
// pages are zeroed; shrunk pages return their frames to the allocator.
// Shrinking a file that still has mapped pages is rejected (the kernel
// would deliver SIGBUS on later access; we catch the bug at the source).
func (f *File) Truncate(pages int) error {
	if pages < 0 {
		return fmt.Errorf("%w: negative size %d", ErrInvalid, pages)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if pages < len(f.frames) && f.mapRefs > 0 {
		return fmt.Errorf("vmsim: shrinking %q while %d of its pages are mapped", f.name, f.mapRefs)
	}
	for len(f.frames) > pages {
		fr := f.frames[len(f.frames)-1]
		f.frames = f.frames[:len(f.frames)-1]
		f.kernel.freeFrame(fr)
	}
	for len(f.frames) < pages {
		fr, err := f.kernel.allocFrame()
		if err != nil {
			return err
		}
		f.frames = append(f.frames, fr)
	}
	return nil
}

// frame returns the frame backing file page i.
func (f *File) frame(i int) (FrameID, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if i < 0 || i >= len(f.frames) {
		return 0, fmt.Errorf("%w: page %d of %d-page file %q", ErrBadFileRange, i, len(f.frames), f.name)
	}
	return f.frames[i], nil
}

// frameRange validates pages [first, first+n) and returns a copy of
// their frames. The copy matters: ReplacePageFrame rewrites frame slots
// in place (copy-on-write shadows), and callers walk the returned slice
// outside the file lock.
func (f *File) frameRange(first, n int) ([]FrameID, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if first < 0 || n < 0 || first+n > len(f.frames) {
		return nil, fmt.Errorf("%w: pages [%d,%d) of %d-page file %q",
			ErrBadFileRange, first, first+n, len(f.frames), f.name)
	}
	return append([]FrameID(nil), f.frames[first:first+n]...), nil
}

// PageData returns the 4 KiB contents of file page i, bypassing any
// virtual mapping — the equivalent of writing to the main-memory file
// through a second full mapping. The returned slice aliases physical
// memory: writes are immediately visible through every mapping.
func (f *File) PageData(i int) ([]byte, error) {
	fr, err := f.frame(i)
	if err != nil {
		return nil, err
	}
	return f.kernel.frameData(fr), nil
}

// ReplacePageFrame installs a fresh physical frame behind file page i,
// initialized with a copy of the page's current contents, and returns the
// displaced frame — the copy-on-write primitive of the snapshot write
// path. The old frame is NOT returned to the allocator: readers holding
// translations resolved before the replacement keep reading its (now
// frozen) contents, and the caller frees it via Kernel.FreeFrame once no
// such reader can remain. Existing page-table entries still point at the
// old frame; callers repoint the translations they own (see
// AddressSpace.RepointPage) — future mmaps of the page resolve to the new
// frame automatically.
func (f *File) ReplacePageFrame(i int) (old FrameID, data []byte, err error) {
	nf, err := f.kernel.allocFrame()
	if err != nil {
		return 0, nil, err
	}
	f.mu.Lock()
	if i < 0 || i >= len(f.frames) {
		f.mu.Unlock()
		f.kernel.freeFrame(nf)
		return 0, nil, fmt.Errorf("%w: page %d of %d-page file %q", ErrBadFileRange, i, len(f.frames), f.name)
	}
	old = f.frames[i]
	data = f.kernel.frameData(nf)
	copy(data, f.kernel.frameData(old))
	f.frames[i] = nf
	f.mu.Unlock()
	return old, data, nil
}
