package vmsim

import (
	"sync"
	"testing"
)

func TestFileMapRefcount(t *testing.T) {
	k := NewKernel(0)
	f, _ := k.CreateFile("f", 16)
	as := k.NewAddressSpace()

	if f.MappedPages() != 0 {
		t.Fatalf("fresh file has %d mapped pages", f.MappedPages())
	}
	addr, err := as.MmapFile(f, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if f.MappedPages() != 8 {
		t.Fatalf("MappedPages = %d, want 8", f.MappedPages())
	}
	// A second mapping of overlapping file pages counts again.
	addr2, err := as.MmapFile(f, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if f.MappedPages() != 12 {
		t.Fatalf("MappedPages = %d, want 12", f.MappedPages())
	}
	// MAP_FIXED replacing part of a file mapping adjusts both sides.
	if err := as.MmapFileFixed(addr, f, 10, 2); err != nil {
		t.Fatal(err)
	}
	if f.MappedPages() != 12 { // -2 cleared, +2 mapped
		t.Fatalf("MappedPages = %d after rewire, want 12", f.MappedPages())
	}
	if err := as.MunmapPages(addr, 8); err != nil {
		t.Fatal(err)
	}
	if err := as.MunmapPages(addr2, 4); err != nil {
		t.Fatal(err)
	}
	if f.MappedPages() != 0 {
		t.Fatalf("MappedPages = %d after unmap, want 0", f.MappedPages())
	}
}

func TestRemoveFileWhileMappedRejected(t *testing.T) {
	k := NewKernel(0)
	f, _ := k.CreateFile("f", 4)
	as := k.NewAddressSpace()
	addr, _ := as.MmapFile(f, 0, 4)
	if err := k.RemoveFile("f"); err == nil {
		t.Fatal("RemoveFile succeeded with live mappings")
	}
	if err := as.MunmapPages(addr, 4); err != nil {
		t.Fatal(err)
	}
	if err := k.RemoveFile("f"); err != nil {
		t.Fatalf("RemoveFile after unmap: %v", err)
	}
}

func TestTruncateShrinkWhileMappedRejected(t *testing.T) {
	k := NewKernel(0)
	f, _ := k.CreateFile("f", 8)
	as := k.NewAddressSpace()
	addr, _ := as.MmapFile(f, 0, 8)
	if err := f.Truncate(4); err == nil {
		t.Fatal("shrink succeeded with live mappings")
	}
	// Growing is always fine.
	if err := f.Truncate(16); err != nil {
		t.Fatal(err)
	}
	_ = as.MunmapPages(addr, 8)
	if err := f.Truncate(4); err != nil {
		t.Fatalf("shrink after unmap: %v", err)
	}
}

func TestFindGapFallbackAfterHintExhaustion(t *testing.T) {
	k := NewKernel(0)
	as := k.NewAddressSpace()
	as.SetMaxMapCount(1 << 20)

	// The hint window between mmapBase and the address-space top holds
	// exactly addrSpaceTop-mmapBase pages. Exhaust it with two large
	// anonymous reservations (reservations are free — no frames).
	total := int(addrSpaceTop - mmapBase)
	a1, err := as.MmapAnon(total / 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := as.MmapAnon(total - total/2); err != nil {
		t.Fatal(err)
	}
	// Everything is taken: any further mapping must fail.
	if _, err := as.MmapAnon(1); err == nil {
		t.Fatal("mapping succeeded in a full address space")
	}
	// Free the first half; the hint is far past it, so only the first-fit
	// fallback can find the hole.
	if err := as.MunmapPages(a1, total/2); err != nil {
		t.Fatal(err)
	}
	got, err := as.MmapAnon(128)
	if err != nil {
		t.Fatalf("fallback gap search failed: %v", err)
	}
	if got != a1 {
		t.Fatalf("fallback mapped at %#x, want reuse of %#x", got, a1)
	}
}

func TestConcurrentDemandZeroFaultSingleFrame(t *testing.T) {
	k := NewKernel(0)
	as := k.NewAddressSpace()
	addr, err := as.MmapAnon(1)
	if err != nil {
		t.Fatal(err)
	}
	vpn := VPN(addr >> PageShift)

	const goroutines = 16
	var wg sync.WaitGroup
	ptrs := make([][]byte, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, err := as.PageData(vpn)
			if err != nil {
				t.Errorf("fault: %v", err)
				return
			}
			ptrs[i] = d
		}(i)
	}
	wg.Wait()
	if k.FramesInUse() != 1 {
		t.Fatalf("FramesInUse = %d, want 1 (double demand-zero allocation)", k.FramesInUse())
	}
	for i := 1; i < goroutines; i++ {
		if &ptrs[i][0] != &ptrs[0][0] {
			t.Fatal("goroutines observed different frames for the same page")
		}
	}
}

func TestEachVMAEarlyStop(t *testing.T) {
	k := NewKernel(0)
	f, _ := k.CreateFile("f", 8)
	as := k.NewAddressSpace()
	addr, _ := as.MmapAnon(8)
	_ = as.MmapFileFixed(addr, f, 0, 1)
	_ = as.MmapFileFixed(addr+4*PageSize, f, 4, 1)

	seen := 0
	as.EachVMA(func(VMA) bool {
		seen++
		return false
	})
	if seen != 1 {
		t.Fatalf("EachVMA visited %d VMAs after stop, want 1", seen)
	}
}

func TestPermString(t *testing.T) {
	cases := []struct {
		p    Perm
		want string
	}{
		{PermRWShared, "rw-s"},
		{PermRWPrivate, "rw-p"},
		{Perm{Read: true}, "r--p"},
		{Perm{Exec: true, Shared: true}, "--xs"},
		{Perm{}, "---p"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("Perm%+v.String() = %q, want %q", c.p, got, c.want)
		}
	}
}

func TestVMAAccessors(t *testing.T) {
	k := NewKernel(0)
	f, _ := k.CreateFile("f", 4)
	as := k.NewAddressSpace()
	addr, _ := as.MmapFile(f, 1, 3)
	var got VMA
	as.EachVMA(func(v VMA) bool { got = v; return false })
	if got.Start() != addr || got.End() != addr+3*PageSize {
		t.Fatalf("Start/End = %#x/%#x", got.Start(), got.End())
	}
	if got.Pages() != 3 || got.Anonymous() {
		t.Fatalf("Pages=%d Anonymous=%v", got.Pages(), got.Anonymous())
	}
}
