package vmsim

import (
	"sync"
	"testing"
)

func newTestTier(t *testing.T, pages int, cfg TierConfig) *FileTier {
	t.Helper()
	k := NewKernel(0)
	ft, err := k.NewFileTier(pages, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ft
}

// TestTierConfigValidation: disabled configs and nonsense page counts are
// rejected; the multiplier default resolves.
func TestTierConfigValidation(t *testing.T) {
	k := NewKernel(0)
	if _, err := k.NewFileTier(8, TierConfig{}); err == nil {
		t.Fatal("disabled config accepted")
	}
	if _, err := k.NewFileTier(0, TierConfig{HotFrames: 4}); err == nil {
		t.Fatal("zero pages accepted")
	}
	ft, err := k.NewFileTier(8, TierConfig{HotFrames: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := ft.Config().ColdMultiplier; got != defaultColdMultiplier {
		t.Fatalf("ColdMultiplier default = %g, want %d", got, defaultColdMultiplier)
	}
}

// TestTierWordTransitions walks one page through demote/promote and
// checks the packed tier+version word at every step: the cold bit flips,
// the version strictly advances, and redundant transitions are rejected.
func TestTierWordTransitions(t *testing.T) {
	ft := newTestTier(t, 4, TierConfig{HotFrames: 4, NoStall: true})
	if ft.IsCold(1) {
		t.Fatal("pages must start hot")
	}
	w0 := ft.Word(1)
	if !ft.Demote(1) {
		t.Fatal("demote of a hot page failed")
	}
	if ft.Demote(1) {
		t.Fatal("double demote succeeded")
	}
	w1 := ft.Word(1)
	if !ft.IsCold(1) || w1 == w0 {
		t.Fatalf("demote left word %#x (was %#x), cold=%v", w1, w0, ft.IsCold(1))
	}
	if ft.Stable(1, w0) {
		t.Fatal("stale token validated after demote")
	}
	if !ft.Promote(1) {
		t.Fatal("promote of a cold page failed")
	}
	if ft.Promote(1) {
		t.Fatal("double promote succeeded")
	}
	w2 := ft.Word(1)
	if ft.IsCold(1) || w2 == w1 || w2 == w0 {
		t.Fatalf("promote left word %#x (was %#x, %#x)", w2, w1, w0)
	}
	s := ft.Stats()
	if s.Demotions != 1 || s.Promotions != 1 || s.HotFrames != 4 || s.ColdFrames != 0 {
		t.Fatalf("stats after one round trip: %+v", s)
	}
}

// TestTierTouch: hot touches are free, cold touches charge the stall and
// promote under budget, and the returned word is the post-promote one so
// the toucher's own migration never invalidates its read.
func TestTierTouch(t *testing.T) {
	ft := newTestTier(t, 4, TierConfig{HotFrames: 4, ColdMultiplier: 2, NoStall: true})
	if w := ft.Touch(0); !ft.Stable(0, w) {
		t.Fatal("hot touch returned an unstable word")
	}
	ft.Demote(0)
	w := ft.Touch(0)
	if !ft.Stable(0, w) {
		t.Fatal("cold touch returned a pre-promote word")
	}
	if ft.IsCold(0) {
		t.Fatal("touch under budget did not promote")
	}
	s := ft.Stats()
	if s.ColdTouches != 1 || s.Promotions != 1 {
		t.Fatalf("cold-touch counters: %+v", s)
	}
	wantStall := uint64(2 * tierBaseNanos)
	if s.StallNanos != wantStall {
		t.Fatalf("StallNanos = %d, want %d", s.StallNanos, wantStall)
	}
}

// TestTierTouchOverBudget: with the hot tier at budget, a cold touch
// charges the stall but leaves the page cold — and NoPromoteOnAccess
// pins pages cold even under budget.
func TestTierTouchOverBudget(t *testing.T) {
	// Budget 2 of 4 pages: demote two, hot tier is exactly at budget.
	ft := newTestTier(t, 4, TierConfig{HotFrames: 2, NoStall: true})
	ft.Demote(0)
	ft.Demote(1)
	ft.Touch(0)
	if !ft.IsCold(0) {
		t.Fatal("touch promoted past the hot budget")
	}
	// Freeing budget (demote another) lets the next touch promote.
	ft.Demote(2)
	ft.Touch(0)
	if ft.IsCold(0) {
		t.Fatal("touch under freed budget did not promote")
	}

	np := newTestTier(t, 4, TierConfig{HotFrames: 4, NoStall: true, NoPromoteOnAccess: true})
	np.Demote(0)
	np.Touch(0)
	if !np.IsCold(0) {
		t.Fatal("NoPromoteOnAccess promoted on touch")
	}
	if s := np.Stats(); s.ColdTouches != 1 {
		t.Fatalf("cold touch not counted: %+v", s)
	}
}

// TestTierOutOfRange: accesses beyond the tracked pages are benign
// no-ops (Word 0, Stable true, no migrations).
func TestTierOutOfRange(t *testing.T) {
	ft := newTestTier(t, 2, TierConfig{HotFrames: 2, NoStall: true})
	if ft.Demote(-1) || ft.Demote(2) || ft.Promote(5) {
		t.Fatal("out-of-range migration succeeded")
	}
	if w := ft.Touch(7); w != 0 || !ft.Stable(7, w) {
		t.Fatal("out-of-range touch not benign")
	}
	if s := ft.Stats(); s.Demotions != 0 || s.ColdTouches != 0 {
		t.Fatalf("out-of-range access counted: %+v", s)
	}
}

// TestKernelTierStats: the kernel aggregates every registered tier.
func TestKernelTierStats(t *testing.T) {
	k := NewKernel(0)
	a, err := k.NewFileTier(4, TierConfig{HotFrames: 4, NoStall: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := k.NewFileTier(8, TierConfig{HotFrames: 6, NoStall: true})
	if err != nil {
		t.Fatal(err)
	}
	a.Demote(0)
	b.Demote(1)
	b.Demote(2)
	s := k.TierStats()
	if s.Pages != 12 || s.HotBudget != 10 || s.ColdFrames != 3 || s.Demotions != 3 {
		t.Fatalf("aggregate stats: %+v", s)
	}
	if got := s.HotFraction(); got != float64(9)/12 {
		t.Fatalf("HotFraction = %g", got)
	}
}

// TestTierConcurrentMigration races demoters, promoters and touchers on
// a small page set: counters must balance (cold occupancy equals
// demotions minus promotions) and every word must end with a consistent
// cold bit. Run under -race in CI's stress step.
func TestTierConcurrentMigration(t *testing.T) {
	const pages = 64
	ft := newTestTier(t, pages, TierConfig{HotFrames: pages / 2, NoStall: true})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(3)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				ft.Demote((seed + i) % pages)
			}
		}(g)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				ft.Promote((seed*7 + i) % pages)
			}
		}(g)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				p := (seed*13 + i) % pages
				tok := ft.Touch(p)
				_ = ft.Stable(p, tok)
			}
		}(g)
	}
	wg.Wait()
	s := ft.Stats()
	if s.HotFrames+s.ColdFrames != pages {
		t.Fatalf("occupancy does not cover pages: %+v", s)
	}
	if int(s.Demotions)-int(s.Promotions) != s.ColdFrames {
		t.Fatalf("migration counters unbalanced: %+v", s)
	}
	coldWords := 0
	for i := 0; i < pages; i++ {
		if ft.IsCold(i) {
			coldWords++
		}
	}
	if coldWords != s.ColdFrames {
		t.Fatalf("cold words %d != ColdFrames %d", coldWords, s.ColdFrames)
	}
}
