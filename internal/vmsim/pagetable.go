package vmsim

// pageTable maps virtual page numbers to physical frames. It is organized
// as a directory of 512-entry leaves, mirroring the bottom level of an
// x86-64 page table: the directory key is vpn >> 9, the leaf index is the
// low 9 bits. Entries store FrameID+1 so that zero means "not present",
// keeping a leaf at 2 KiB.
type pageTable struct {
	leaves map[VPN]*ptLeaf
}

const (
	ptLeafBits = 9
	ptLeafSize = 1 << ptLeafBits
	ptLeafMask = ptLeafSize - 1
)

type ptLeaf struct {
	entries [ptLeafSize]uint32 // FrameID+1; 0 = not present
	count   int                // live entries, for leaf reclamation
}

func newPageTable() pageTable {
	return pageTable{leaves: make(map[VPN]*ptLeaf)}
}

// get returns the frame mapped at vpn.
func (pt *pageTable) get(vpn VPN) (FrameID, bool) {
	leaf := pt.leaves[vpn>>ptLeafBits]
	if leaf == nil {
		return 0, false
	}
	e := leaf.entries[vpn&ptLeafMask]
	if e == 0 {
		return 0, false
	}
	return FrameID(e - 1), true
}

// set installs a mapping, replacing any previous one.
func (pt *pageTable) set(vpn VPN, f FrameID) {
	key := vpn >> ptLeafBits
	leaf := pt.leaves[key]
	if leaf == nil {
		leaf = &ptLeaf{}
		pt.leaves[key] = leaf
	}
	idx := vpn & ptLeafMask
	if leaf.entries[idx] == 0 {
		leaf.count++
	}
	leaf.entries[idx] = uint32(f) + 1
}

// clear removes the mapping at vpn, reclaiming empty leaves.
func (pt *pageTable) clear(vpn VPN) {
	key := vpn >> ptLeafBits
	leaf := pt.leaves[key]
	if leaf == nil {
		return
	}
	idx := vpn & ptLeafMask
	if leaf.entries[idx] != 0 {
		leaf.entries[idx] = 0
		leaf.count--
		if leaf.count == 0 {
			delete(pt.leaves, key)
		}
	}
}
