package vmsim

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestFrameAllocZeroed(t *testing.T) {
	k := NewKernel(16)
	f, err := k.allocFrame()
	if err != nil {
		t.Fatal(err)
	}
	d := k.frameData(f)
	if len(d) != PageSize {
		t.Fatalf("frame size %d, want %d", len(d), PageSize)
	}
	d[0], d[PageSize-1] = 0xAA, 0xBB
	k.freeFrame(f)
	f2, err := k.allocFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f2 != f {
		t.Fatalf("free list not reused: got frame %d, want %d", f2, f)
	}
	d2 := k.frameData(f2)
	if d2[0] != 0 || d2[PageSize-1] != 0 {
		t.Fatal("recycled frame not zeroed")
	}
}

func TestFrameLimit(t *testing.T) {
	k := NewKernel(2)
	if _, err := k.allocFrame(); err != nil {
		t.Fatal(err)
	}
	if _, err := k.allocFrame(); err != nil {
		t.Fatal(err)
	}
	if _, err := k.allocFrame(); err == nil {
		t.Fatal("expected ENOMEM past frame limit")
	}
	if got := k.FramesInUse(); got != 2 {
		t.Fatalf("FramesInUse = %d, want 2", got)
	}
}

func TestMemStats(t *testing.T) {
	k := NewKernel(0)
	f, _ := k.allocFrame()
	k.freeFrame(f)
	_, _ = k.allocFrame()
	s := k.MemStats()
	if s.FramesAllocated != 2 || s.FramesFreed != 1 || s.FramesInUse != 1 {
		t.Fatalf("MemStats = %+v", s)
	}
}

func TestFileCreateOpenRemove(t *testing.T) {
	k := NewKernel(0)
	f, err := k.CreateFile("col", 4)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumPages() != 4 {
		t.Fatalf("NumPages = %d, want 4", f.NumPages())
	}
	if f.Name() != "col" || f.Inode() == 0 {
		t.Fatalf("Name=%q Inode=%d", f.Name(), f.Inode())
	}
	if _, err := k.CreateFile("col", 1); err == nil {
		t.Fatal("duplicate create succeeded")
	}
	g, err := k.OpenFile("col")
	if err != nil || g != f {
		t.Fatalf("OpenFile: %v, same=%v", err, g == f)
	}
	if err := k.RemoveFile("col"); err != nil {
		t.Fatal(err)
	}
	if _, err := k.OpenFile("col"); err == nil {
		t.Fatal("open after remove succeeded")
	}
	if err := k.RemoveFile("col"); err == nil {
		t.Fatal("double remove succeeded")
	}
	if k.FramesInUse() != 0 {
		t.Fatalf("FramesInUse = %d after remove, want 0", k.FramesInUse())
	}
}

func TestFileTruncate(t *testing.T) {
	k := NewKernel(0)
	f, _ := k.CreateFile("f", 2)
	d, err := f.PageData(1)
	if err != nil {
		t.Fatal(err)
	}
	d[0] = 7
	if err := f.Truncate(8); err != nil {
		t.Fatal(err)
	}
	if f.NumPages() != 8 {
		t.Fatalf("NumPages = %d", f.NumPages())
	}
	d1, _ := f.PageData(1)
	if d1[0] != 7 {
		t.Fatal("grow lost existing data")
	}
	d7, _ := f.PageData(7)
	if d7[0] != 0 {
		t.Fatal("grown page not zeroed")
	}
	if err := f.Truncate(1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.PageData(1); err == nil {
		t.Fatal("read past EOF succeeded")
	}
	if err := f.Truncate(-1); err == nil {
		t.Fatal("negative truncate succeeded")
	}
}

func TestFileDataSharedAcrossMappings(t *testing.T) {
	k := NewKernel(0)
	f, _ := k.CreateFile("f", 2)
	as := k.NewAddressSpace()

	a1, err := as.MmapFile(f, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := as.MmapFile(f, 1, 1) // second mapping of page 1
	if err != nil {
		t.Fatal(err)
	}

	p1, err := as.PageData(VPN(a1>>PageShift) + 1)
	if err != nil {
		t.Fatal(err)
	}
	p1[10] = 42

	p2, err := as.PageData(VPN(a2 >> PageShift))
	if err != nil {
		t.Fatal(err)
	}
	if p2[10] != 42 {
		t.Fatal("write not visible through second mapping")
	}
	direct, _ := f.PageData(1)
	if direct[10] != 42 {
		t.Fatal("write not visible through file handle")
	}
}

func TestMmapAnonReservationIsLazy(t *testing.T) {
	k := NewKernel(0)
	as := k.NewAddressSpace()
	addr, err := as.MmapAnon(1000)
	if err != nil {
		t.Fatal(err)
	}
	if k.FramesInUse() != 0 {
		t.Fatalf("reservation allocated %d frames", k.FramesInUse())
	}
	// Touch one page: exactly one demand-zero fault.
	d, err := as.PageData(VPN(addr>>PageShift) + 500)
	if err != nil {
		t.Fatal(err)
	}
	if d[0] != 0 {
		t.Fatal("anon page not zeroed")
	}
	if k.FramesInUse() != 1 {
		t.Fatalf("FramesInUse = %d after one touch, want 1", k.FramesInUse())
	}
	if s := as.Stats(); s.MinorFaults != 1 {
		t.Fatalf("MinorFaults = %d, want 1", s.MinorFaults)
	}
}

func TestPageDataFaultsOutsideMappings(t *testing.T) {
	k := NewKernel(0)
	as := k.NewAddressSpace()
	if _, err := as.PageData(12345); err == nil {
		t.Fatal("expected fault on unmapped page")
	}
}

func TestMmapFileFixedRewire(t *testing.T) {
	k := NewKernel(0)
	f, _ := k.CreateFile("col", 8)
	for i := 0; i < 8; i++ {
		d, _ := f.PageData(i)
		d[0] = byte(i + 1)
	}
	as := k.NewAddressSpace()
	addr, err := as.MmapAnon(4)
	if err != nil {
		t.Fatal(err)
	}
	// Rewire virtual pages 0..3 of the view to file pages 7,5,3,1.
	for i, fp := range []int{7, 5, 3, 1} {
		if err := as.MmapFileFixed(addr+Addr(i*PageSize), f, fp, 1); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range []byte{8, 6, 4, 2} {
		d, err := as.PageData(VPN(addr>>PageShift) + VPN(i))
		if err != nil {
			t.Fatal(err)
		}
		if d[0] != want {
			t.Fatalf("view page %d reads %d, want %d", i, d[0], want)
		}
	}
	// Re-rewire page 0 to file page 0 — the "update mapping freely at
	// runtime" property.
	if err := as.MmapFileFixed(addr, f, 0, 1); err != nil {
		t.Fatal(err)
	}
	d, _ := as.PageData(VPN(addr >> PageShift))
	if d[0] != 1 {
		t.Fatalf("after re-rewire, page reads %d, want 1", d[0])
	}
}

func TestMmapFixedOverlapSplitsVMA(t *testing.T) {
	k := NewKernel(0)
	f, _ := k.CreateFile("f", 1)
	as := k.NewAddressSpace()
	addr, _ := as.MmapAnon(10)
	base := VPN(addr >> PageShift)

	if as.VMACount() != 1 {
		t.Fatalf("VMACount = %d, want 1", as.VMACount())
	}
	// Punch a file mapping into the middle: anon VMA must split in two.
	if err := as.MmapFileFixed(addr+5*PageSize, f, 0, 1); err != nil {
		t.Fatal(err)
	}
	if as.VMACount() != 3 {
		t.Fatalf("VMACount = %d after split, want 3", as.VMACount())
	}
	var got []string
	as.EachVMA(func(v VMA) bool {
		got = append(got, fmt.Sprintf("%d-%d anon=%v", v.start-base, v.end-base, v.Anonymous()))
		return true
	})
	want := []string{"0-5 anon=true", "5-6 anon=false", "6-10 anon=true"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("VMA layout %v, want %v", got, want)
		}
	}
	if s := as.Stats(); s.VMASplits != 1 {
		t.Fatalf("VMASplits = %d, want 1", s.VMASplits)
	}
}

func TestMmapFixedMergesConsecutive(t *testing.T) {
	k := NewKernel(0)
	f, _ := k.CreateFile("f", 16)
	as := k.NewAddressSpace()
	addr, _ := as.MmapAnon(16)

	// Map file pages 0..7 one call each at consecutive virtual pages: the
	// file-backed VMAs must merge into a single one.
	for i := 0; i < 8; i++ {
		if err := as.MmapFileFixed(addr+Addr(i*PageSize), f, i, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Expect: one merged file VMA (pages 0-8) + anon tail (8-16).
	if as.VMACount() != 2 {
		t.Fatalf("VMACount = %d, want 2 (merged)", as.VMACount())
	}
	if s := as.Stats(); s.VMAMerges != 7 {
		t.Fatalf("VMAMerges = %d, want 7", s.VMAMerges)
	}

	// Non-contiguous file pages must NOT merge.
	as2 := k.NewAddressSpace()
	addr2, _ := as2.MmapAnon(16)
	for i := 0; i < 8; i++ {
		if err := as2.MmapFileFixed(addr2+Addr(i*PageSize), f, 15-i, 1); err != nil {
			t.Fatal(err)
		}
	}
	if as2.VMACount() != 9 { // 8 file VMAs + anon tail
		t.Fatalf("VMACount = %d, want 9 (no merge)", as2.VMACount())
	}
}

func TestMunmap(t *testing.T) {
	k := NewKernel(0)
	as := k.NewAddressSpace()
	addr, _ := as.MmapAnon(10)
	base := VPN(addr >> PageShift)

	// Touch pages so frames exist, then unmap the middle.
	for i := 0; i < 10; i++ {
		if _, err := as.PageData(base + VPN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if k.FramesInUse() != 10 {
		t.Fatalf("FramesInUse = %d", k.FramesInUse())
	}
	if err := as.MunmapPages(addr+2*PageSize, 6); err != nil {
		t.Fatal(err)
	}
	if as.VMACount() != 2 {
		t.Fatalf("VMACount = %d, want 2", as.VMACount())
	}
	if k.FramesInUse() != 4 {
		t.Fatalf("FramesInUse = %d after unmap, want 4", k.FramesInUse())
	}
	if _, err := as.PageData(base + 5); err == nil {
		t.Fatal("read of unmapped page succeeded")
	}
	// Unmapping a hole is a no-op like Linux.
	if err := as.MunmapPages(addr+2*PageSize, 6); err != nil {
		t.Fatal(err)
	}
	// Unmap everything.
	if err := as.MunmapPages(addr, 10); err != nil {
		t.Fatal(err)
	}
	if as.VMACount() != 0 || k.FramesInUse() != 0 {
		t.Fatalf("VMACount=%d FramesInUse=%d, want 0/0", as.VMACount(), k.FramesInUse())
	}
}

func TestMaxMapCount(t *testing.T) {
	k := NewKernel(0)
	f, _ := k.CreateFile("f", 64)
	as := k.NewAddressSpace()
	as.SetMaxMapCount(6)
	addr, err := as.MmapAnon(64)
	if err != nil {
		t.Fatal(err)
	}
	// Scattered single-page mappings blow through a small limit.
	var lastErr error
	for i := 0; i < 32; i++ {
		lastErr = as.MmapFileFixed(addr+Addr(2*i*PageSize), f, 2*i, 1)
		if lastErr != nil {
			break
		}
	}
	if lastErr == nil {
		t.Fatal("expected ENOMEM from max_map_count")
	}
	// Raising the limit unblocks, as the paper does via sysctl.
	as.SetMaxMapCount(1 << 20)
	if err := as.MmapFileFixed(addr+62*PageSize, f, 62, 1); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidArgs(t *testing.T) {
	k := NewKernel(0)
	f, _ := k.CreateFile("f", 4)
	as := k.NewAddressSpace()
	if _, err := as.MmapAnon(0); err == nil {
		t.Error("MmapAnon(0) succeeded")
	}
	if _, err := as.MmapFile(nil, 0, 1); err == nil {
		t.Error("MmapFile(nil) succeeded")
	}
	if _, err := as.MmapFile(f, 2, 3); err == nil {
		t.Error("MmapFile beyond EOF succeeded")
	}
	if err := as.MmapFileFixed(123, f, 0, 1); err == nil {
		t.Error("unaligned MmapFileFixed succeeded")
	}
	addr, _ := as.MmapAnon(4)
	if err := as.MmapFileFixed(addr, f, 3, 2); err == nil {
		t.Error("MmapFileFixed beyond EOF succeeded")
	}
	if err := as.MunmapPages(addr+1, 1); err == nil {
		t.Error("unaligned Munmap succeeded")
	}
	if _, err := k.CreateFile("g", -1); err == nil {
		t.Error("negative-size CreateFile succeeded")
	}
}

func TestRenderMapsFormat(t *testing.T) {
	k := NewKernel(0)
	f, _ := k.CreateFile("db", 8)
	as := k.NewAddressSpace()
	addr, _ := as.MmapAnon(4)
	if err := as.MmapFileFixed(addr, f, 2, 2); err != nil {
		t.Fatal(err)
	}
	out := string(as.RenderMaps())
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), out)
	}
	// First line: the file-backed area at offset 2 pages.
	if !strings.Contains(lines[0], "rw-s") ||
		!strings.Contains(lines[0], "/dev/shm/db") ||
		!strings.Contains(lines[0], fmt.Sprintf("%08x", 2*PageSize)) {
		t.Errorf("file line malformed: %q", lines[0])
	}
	// Second line: the anonymous remainder.
	if !strings.Contains(lines[1], "rw-p") || strings.Contains(lines[1], "/dev/shm") {
		t.Errorf("anon line malformed: %q", lines[1])
	}
	for _, ln := range lines {
		var lo, hi uint64
		if _, err := fmt.Sscanf(ln, "%x-%x", &lo, &hi); err != nil || lo >= hi {
			t.Errorf("bad address range in %q", ln)
		}
	}
}

func TestRenderMapsLineCountTracksVMAs(t *testing.T) {
	k := NewKernel(0)
	f, _ := k.CreateFile("db", 64)
	as := k.NewAddressSpace()
	addr, _ := as.MmapAnon(64)
	// Scattered: every second file page → no merges.
	for i := 0; i < 16; i++ {
		if err := as.MmapFileFixed(addr+Addr(i*PageSize), f, 2*i, 1); err != nil {
			t.Fatal(err)
		}
	}
	scattered := strings.Count(string(as.RenderMaps()), "\n")

	as2 := k.NewAddressSpace()
	addr2, _ := as2.MmapAnon(64)
	for i := 0; i < 16; i++ {
		if err := as2.MmapFileFixed(addr2+Addr(i*PageSize), f, i, 1); err != nil {
			t.Fatal(err)
		}
	}
	clustered := strings.Count(string(as2.RenderMaps()), "\n")
	if clustered >= scattered {
		t.Fatalf("clustered maps file (%d lines) not shorter than scattered (%d)", clustered, scattered)
	}
	if clustered != 2 { // merged file VMA + anon tail
		t.Fatalf("clustered lines = %d, want 2", clustered)
	}
}

func TestStatsCounting(t *testing.T) {
	k := NewKernel(0)
	f, _ := k.CreateFile("f", 8)
	as := k.NewAddressSpace()
	addr, _ := as.MmapAnon(8)
	_ = as.MmapFileFixed(addr, f, 0, 4)
	_ = as.MunmapPages(addr, 2)
	s := as.Stats()
	if s.MmapCalls != 2 {
		t.Errorf("MmapCalls = %d, want 2", s.MmapCalls)
	}
	if s.MunmapCalls != 1 {
		t.Errorf("MunmapCalls = %d, want 1", s.MunmapCalls)
	}
	if s.PagesMapped != 12 {
		t.Errorf("PagesMapped = %d, want 12", s.PagesMapped)
	}
	if s.PagesUnmapped < 6 { // 4 anon by FIXED overlap + 2 by munmap
		t.Errorf("PagesUnmapped = %d, want >= 6", s.PagesUnmapped)
	}
	as.ResetStats()
	if s := as.Stats(); s.MmapCalls != 0 || s.VMACount == 0 {
		t.Errorf("after reset: %+v", s)
	}
}

// checkInvariants verifies the structural invariants the whole layer rests
// on: VMAs sorted, non-overlapping, non-empty, within the address space;
// every file-backed page present in the page table with the right frame;
// no page-table entry outside any VMA.
func checkInvariants(t *testing.T, as *AddressSpace) {
	t.Helper()
	var prevEnd VPN
	var vmas []VMA
	as.EachVMA(func(v VMA) bool { vmas = append(vmas, v); return true })
	for i, v := range vmas {
		if v.start >= v.end {
			t.Fatalf("VMA %d empty: [%d,%d)", i, v.start, v.end)
		}
		if v.start < prevEnd {
			t.Fatalf("VMA %d overlaps predecessor (start %d < prev end %d)", i, v.start, prevEnd)
		}
		if v.end > addrSpaceTop {
			t.Fatalf("VMA %d beyond address space", i)
		}
		prevEnd = v.end
		if v.file != nil {
			for p := v.start; p < v.end; p++ {
				fr, ok := as.Translate(p)
				if !ok {
					t.Fatalf("file-backed page %#x missing from page table", p)
				}
				want, err := v.file.frame(v.filePage + int(p-v.start))
				if err != nil || fr != want {
					t.Fatalf("page %#x maps frame %d, want %d (err %v)", p, fr, want, err)
				}
			}
		}
	}
	// Adjacent VMAs must not be mergeable (canonical form).
	for i := 1; i < len(vmas); i++ {
		a, b := vmas[i-1], vmas[i]
		if a.end == b.start && mergeable(&a, &b) {
			t.Fatalf("adjacent VMAs %d,%d are mergeable but unmerged", i-1, i)
		}
	}
}

// TestRandomizedOps drives a random mix of mmap/munmap/rewire operations
// and checks full invariants after each step — the workhorse test for
// overlap resolution.
func TestRandomizedOps(t *testing.T) {
	k := NewKernel(0)
	f, _ := k.CreateFile("f", 256)
	as := k.NewAddressSpace()
	addr, err := as.MmapAnon(256)
	if err != nil {
		t.Fatal(err)
	}
	rng := newTestRand(12345)
	for step := 0; step < 2000; step++ {
		off := rng.Intn(256)
		n := 1 + rng.Intn(256-off)
		va := addr + Addr(rng.Intn(256-n))*PageSize
		switch rng.Intn(3) {
		case 0, 1:
			fp := rng.Intn(256 - n + 1)
			if err := as.MmapFileFixed(va, f, fp, n); err != nil {
				t.Fatalf("step %d: MmapFileFixed: %v", step, err)
			}
		case 2:
			if err := as.MunmapPages(va, n); err != nil {
				t.Fatalf("step %d: Munmap: %v", step, err)
			}
		}
		if step%100 == 0 {
			checkInvariants(t, as)
		}
	}
	checkInvariants(t, as)
}

func TestConcurrentMapAndRead(t *testing.T) {
	k := NewKernel(0)
	f, _ := k.CreateFile("f", 512)
	for i := 0; i < 512; i++ {
		d, _ := f.PageData(i)
		d[0] = byte(i)
	}
	as := k.NewAddressSpace()
	viewAddr, _ := as.MmapAnon(512)
	fullAddr, err := as.MmapFile(f, 0, 512)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	// Mapper goroutine: rewires view pages while the reader scans the full
	// view — the §2.3 concurrent-mapping pattern.
	go func() {
		defer wg.Done()
		for i := 0; i < 512; i++ {
			if err := as.MmapFileFixed(viewAddr+Addr(i*PageSize), f, i, 1); err != nil {
				t.Errorf("map: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for round := 0; round < 20; round++ {
			for i := 0; i < 512; i++ {
				d, err := as.PageData(VPN(fullAddr>>PageShift) + VPN(i))
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				if d[0] != byte(i) {
					t.Errorf("page %d reads %d", i, d[0])
					return
				}
			}
		}
	}()
	wg.Wait()
	checkInvariants(t, as)
}

// newTestRand avoids importing math/rand in package tests that also need
// determinism across Go versions.
type testRand struct{ s uint64 }

func newTestRand(seed uint64) *testRand { return &testRand{s: seed} }
func (r *testRand) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
func (r *testRand) Intn(n int) int { return int(r.next() % uint64(n)) }

func BenchmarkMmapFixedSinglePages(b *testing.B) {
	k := NewKernel(0)
	f, _ := k.CreateFile("f", 4096)
	as := k.NewAddressSpace()
	as.SetMaxMapCount(1 << 30)
	addr, _ := as.MmapAnon(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := i % 2048
		_ = as.MmapFileFixed(addr+Addr(2*p*PageSize), f, 2*p, 1)
	}
}

func BenchmarkMmapFixedRuns(b *testing.B) {
	k := NewKernel(0)
	f, _ := k.CreateFile("f", 4096)
	as := k.NewAddressSpace()
	addr, _ := as.MmapAnon(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = as.MmapFileFixed(addr, f, 0, 4096)
	}
}

func BenchmarkPageData(b *testing.B) {
	k := NewKernel(0)
	f, _ := k.CreateFile("f", 1024)
	as := k.NewAddressSpace()
	addr, _ := as.MmapFile(f, 0, 1024)
	base := VPN(addr >> PageShift)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := as.PageData(base + VPN(i&1023)); err != nil {
			b.Fatal(err)
		}
	}
}
