// Package vmsim is a user-space simulation of the virtual-memory machinery
// that the paper builds on: physical main memory organized in 4 KiB frames,
// tmpfs-style main-memory files as user-space handles to physical memory,
// and per-process address spaces whose virtual pages can be re-pointed at
// arbitrary file pages at runtime via mmap with MAP_FIXED semantics
// ("memory rewiring", RUMA [15]).
//
// Why a simulator: the reproduction target is Go, whose runtime assumes it
// owns the process address space. Remapping pages under live Go pointers
// with real mmap(MAP_FIXED) races with the garbage collector and the
// allocator. vmsim therefore models the kernel objects explicitly:
//
//   - Kernel: owns the physical frame arena and the main-memory files.
//   - File: a growable sequence of frames (the /dev/shm file of §1.2).
//   - AddressSpace: a sorted set of VMAs (virtual memory areas) indexed by
//     a skiplist, plus a two-level page table. Mmap and Munmap perform the
//     same first-order work as the kernel: overlap resolution with VMA
//     split/shrink, adjacent-VMA merging, page-table population, and
//     map-count accounting against vm.max_map_count.
//
// Because the cost of a simulated mmap is dominated by VMA bookkeeping —
// exactly as in the kernel — the paper's optimization of mapping runs of
// consecutive qualifying pages in a single call (§2.3) has the same effect
// here: one VMA operation instead of k. Likewise, RenderMaps emits one line
// per VMA in the /proc/PID/maps text format, so clustered mappings yield a
// shorter maps file and cheaper parsing, reproducing the §3.4/§2.5 effect.
package vmsim

import (
	"errors"
	"fmt"
	"sync"
)

const (
	// PageSize is the size of a virtual or physical page in bytes. The
	// paper's layer "purely operates with 4KB small pages" (§3).
	PageSize = 4096
	// PageShift is log2(PageSize).
	PageShift = 12

	// framesPerChunk is how many frames each physical arena chunk holds
	// (16 MiB chunks). Chunked growth keeps previously handed-out frame
	// slices stable.
	framesPerChunk = 4096

	// DefaultMaxMapCount mirrors the Linux default for vm.max_map_count
	// (sysctl default 65530). The paper raises the limit from 2^16-1 to
	// 2^32-1 for its experiments (§3); the harness does the same via
	// SetMaxMapCount.
	DefaultMaxMapCount = 65530
)

// Addr is a virtual byte address.
type Addr uint64

// VPN is a virtual page number (Addr >> PageShift).
type VPN uint64

// FrameID identifies a physical frame.
type FrameID uint32

// Errors returned by kernel operations, named after their errno analogues.
var (
	// ErrInvalid corresponds to EINVAL: malformed arguments.
	ErrInvalid = errors.New("vmsim: invalid argument")
	// ErrNoMemory corresponds to ENOMEM: out of frames, address space, or
	// VMA slots (vm.max_map_count exceeded).
	ErrNoMemory = errors.New("vmsim: out of memory")
	// ErrFault corresponds to SIGSEGV: access to an unmapped address.
	ErrFault = errors.New("vmsim: page fault on unmapped address")
	// ErrExists is returned when creating a file whose name is taken.
	ErrExists = errors.New("vmsim: file exists")
	// ErrNotFound is returned when a named file does not exist.
	ErrNotFound = errors.New("vmsim: file not found")
	// ErrBadFileRange is returned when a mapping references pages beyond
	// the end of the backing file.
	ErrBadFileRange = errors.New("vmsim: mapping beyond end of file")
)

// Kernel owns the simulated physical memory and main-memory files. All
// methods are safe for concurrent use.
type Kernel struct {
	mu        sync.Mutex
	chunks    [][]byte // physical arena, framesPerChunk frames per chunk
	freeList  []FrameID
	nextFrame FrameID
	maxFrames FrameID
	files     map[string]*File
	nextInode uint64
	nextPID   int

	framesAllocated uint64 // cumulative
	framesFreed     uint64 // cumulative

	// tiers are the per-file second-tier maps created via NewFileTier;
	// TierStats aggregates them (see tier.go).
	tiers []*FileTier
}

// NewKernel creates a kernel that can hand out at most maxFrames physical
// frames (maxFrames <= 0 selects a generous default of 4 Mi frames, i.e.
// 16 GiB of simulated physical memory).
func NewKernel(maxFrames int) *Kernel {
	if maxFrames <= 0 {
		maxFrames = 4 << 20
	}
	return &Kernel{
		maxFrames: FrameID(maxFrames),
		files:     make(map[string]*File),
		nextInode: 2, // inode 1 is conventionally reserved
		nextPID:   1,
	}
}

// allocFrame hands out a zeroed frame. Caller must not hold k.mu.
func (k *Kernel) allocFrame() (FrameID, error) {
	k.mu.Lock()
	var f FrameID
	switch {
	case len(k.freeList) > 0:
		f = k.freeList[len(k.freeList)-1]
		k.freeList = k.freeList[:len(k.freeList)-1]
	case k.nextFrame < k.maxFrames:
		f = k.nextFrame
		k.nextFrame++
		if int(f)>>12 >= len(k.chunks) { // f / framesPerChunk
			k.chunks = append(k.chunks, make([]byte, framesPerChunk*PageSize))
		}
	default:
		k.mu.Unlock()
		return 0, fmt.Errorf("%w: physical frame limit %d reached", ErrNoMemory, k.maxFrames)
	}
	k.framesAllocated++
	k.mu.Unlock()

	// Demand-zero semantics: the kernel hands out zeroed pages. Do the
	// memset outside the lock; the frame is not yet visible to anyone else.
	d := k.frameData(f)
	for i := range d {
		d[i] = 0
	}
	return f, nil
}

// freeFrame returns a frame to the allocator.
func (k *Kernel) freeFrame(f FrameID) {
	k.mu.Lock()
	k.freeList = append(k.freeList, f)
	k.framesFreed++
	k.mu.Unlock()
}

// FreeFrame returns a frame displaced by File.ReplacePageFrame to the
// allocator. The caller asserts that no reader can still hold a
// translation or page slice resolved to the frame — the storage layer's
// epoch machinery frees retired frames only after every state that could
// reference them has drained.
func (k *Kernel) FreeFrame(f FrameID) { k.freeFrame(f) }

// frameData returns the 4 KiB backing slice of frame f. The slice stays
// valid for the lifetime of the kernel (chunks are never moved).
func (k *Kernel) frameData(f FrameID) []byte {
	chunk := int(f) / framesPerChunk
	off := (int(f) % framesPerChunk) * PageSize
	// chunks only ever grows and existing chunk headers are immutable, but
	// reading len(k.chunks) concurrently with append is racy; take the lock
	// for the slice header lookup only.
	k.mu.Lock()
	c := k.chunks[chunk]
	k.mu.Unlock()
	return c[off : off+PageSize : off+PageSize]
}

// FramesInUse returns the number of currently allocated frames.
func (k *Kernel) FramesInUse() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return int(k.nextFrame) - len(k.freeList)
}

// MemStats reports cumulative allocator activity.
type MemStats struct {
	FramesAllocated uint64 // cumulative allocations
	FramesFreed     uint64 // cumulative frees
	FramesInUse     int    // current
	FramesHighWater int    // arena size ever reached
}

// MemStats returns a snapshot of physical-memory accounting.
func (k *Kernel) MemStats() MemStats {
	k.mu.Lock()
	defer k.mu.Unlock()
	return MemStats{
		FramesAllocated: k.framesAllocated,
		FramesFreed:     k.framesFreed,
		FramesInUse:     int(k.nextFrame) - len(k.freeList),
		FramesHighWater: int(k.nextFrame),
	}
}
