package vmsim

import (
	"sort"
	"testing"
	"testing/quick"
)

func mkVMA(start, end VPN) *VMA {
	return &VMA{start: start, end: end, perm: PermRWPrivate}
}

func listKeys(l *vmaList) []VPN {
	var out []VPN
	l.each(func(v *VMA) bool {
		out = append(out, v.start)
		return true
	})
	return out
}

func TestSkiplistInsertOrdered(t *testing.T) {
	l := newVMAList(1)
	for _, k := range []VPN{50, 10, 90, 30, 70, 20, 80, 40, 60, 100} {
		l.insert(mkVMA(k, k+1))
	}
	keys := listKeys(l)
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatalf("iteration not sorted: %v", keys)
	}
	if l.len() != 10 {
		t.Fatalf("len = %d, want 10", l.len())
	}
}

func TestSkiplistRemove(t *testing.T) {
	l := newVMAList(2)
	for k := VPN(0); k < 100; k += 10 {
		l.insert(mkVMA(k, k+5))
	}
	if !l.remove(50) {
		t.Fatal("remove(50) failed")
	}
	if l.remove(50) {
		t.Fatal("double remove succeeded")
	}
	if l.remove(55) {
		t.Fatal("remove of absent key succeeded")
	}
	if l.len() != 9 {
		t.Fatalf("len = %d, want 9", l.len())
	}
	for _, k := range listKeys(l) {
		if k == 50 {
			t.Fatal("removed key still present")
		}
	}
}

func TestSkiplistFloor(t *testing.T) {
	l := newVMAList(3)
	for _, k := range []VPN{10, 20, 30} {
		l.insert(mkVMA(k, k+5))
	}
	cases := []struct {
		q    VPN
		want VPN
		ok   bool
	}{
		{5, 0, false}, {10, 10, true}, {15, 10, true},
		{20, 20, true}, {29, 20, true}, {30, 30, true}, {1000, 30, true},
	}
	for _, c := range cases {
		v := l.floor(c.q)
		if (v != nil) != c.ok {
			t.Errorf("floor(%d) presence = %v, want %v", c.q, v != nil, c.ok)
			continue
		}
		if v != nil && v.start != c.want {
			t.Errorf("floor(%d) = %d, want %d", c.q, v.start, c.want)
		}
	}
}

func TestSkiplistSeekGE(t *testing.T) {
	l := newVMAList(4)
	for _, k := range []VPN{10, 20, 30} {
		l.insert(mkVMA(k, k+5))
	}
	cases := []struct {
		q    VPN
		want VPN
		ok   bool
	}{
		{0, 10, true}, {10, 10, true}, {11, 20, true},
		{30, 30, true}, {31, 0, false},
	}
	for _, c := range cases {
		n := l.seekGE(c.q)
		if (n != nil) != c.ok {
			t.Errorf("seekGE(%d) presence = %v, want %v", c.q, n != nil, c.ok)
			continue
		}
		if n != nil && n.vma.start != c.want {
			t.Errorf("seekGE(%d) = %d, want %d", c.q, n.vma.start, c.want)
		}
	}
}

func TestSkiplistContaining(t *testing.T) {
	l := newVMAList(5)
	l.insert(mkVMA(10, 20))
	l.insert(mkVMA(30, 35))
	if v := l.containing(15); v == nil || v.start != 10 {
		t.Error("containing(15) wrong")
	}
	if v := l.containing(20); v != nil {
		t.Error("containing(20) matched past-the-end page")
	}
	if v := l.containing(5); v != nil {
		t.Error("containing(5) matched before first")
	}
	if v := l.containing(34); v == nil || v.start != 30 {
		t.Error("containing(34) wrong")
	}
}

func TestSkiplistFirstEmpty(t *testing.T) {
	l := newVMAList(6)
	if l.first() != nil {
		t.Fatal("first() on empty list non-nil")
	}
	if l.floor(100) != nil {
		t.Fatal("floor on empty list non-nil")
	}
	if l.seekGE(0) != nil {
		t.Fatal("seekGE on empty list non-nil")
	}
}

// Property: the skiplist behaves like a sorted map under arbitrary
// insert/remove sequences.
func TestQuickSkiplistVsMap(t *testing.T) {
	f := func(ops []uint16, seed uint64) bool {
		l := newVMAList(seed)
		ref := map[VPN]bool{}
		for _, op := range ops {
			k := VPN(op % 1024)
			if op&0x8000 != 0 && ref[k] {
				l.remove(k)
				delete(ref, k)
			} else if !ref[k] {
				l.insert(mkVMA(k, k+1))
				ref[k] = true
			}
		}
		if l.len() != len(ref) {
			return false
		}
		keys := listKeys(l)
		want := make([]VPN, 0, len(ref))
		for k := range ref {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(keys) != len(want) {
			return false
		}
		for i := range keys {
			if keys[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSkiplistInsertRemove(b *testing.B) {
	l := newVMAList(7)
	rng := newTestRand(1)
	for i := 0; i < 10000; i++ {
		l.insert(mkVMA(VPN(rng.Intn(1<<30)), VPN(rng.Intn(1<<30))+1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := VPN(rng.Intn(1 << 30))
		l.insert(mkVMA(k, k+1))
		l.remove(k)
	}
}
