package vmsim

import (
	"fmt"
	"sync"
)

// Perm describes VMA permissions as rendered in the maps file.
type Perm struct {
	Read, Write, Exec bool
	// Shared selects MAP_SHARED semantics (writes reach the backing file);
	// false renders as private ("p").
	Shared bool
}

// String renders the permission column of /proc/PID/maps, e.g. "rw-s".
func (p Perm) String() string {
	b := [4]byte{'-', '-', '-', 'p'}
	if p.Read {
		b[0] = 'r'
	}
	if p.Write {
		b[1] = 'w'
	}
	if p.Exec {
		b[2] = 'x'
	}
	if p.Shared {
		b[3] = 's'
	}
	return string(b[:])
}

// PermRWShared is the permission set used by all storage-view mappings.
var PermRWShared = Perm{Read: true, Write: true, Shared: true}

// PermRWPrivate is the permission set used for anonymous reservations.
var PermRWPrivate = Perm{Read: true, Write: true}

// VMA is a virtual memory area: a maximal run of pages with identical
// backing (same file, contiguous file offsets) and permissions. One line
// of the maps file corresponds to one VMA.
type VMA struct {
	start, end VPN // page range [start, end)
	perm       Perm
	file       *File // nil for anonymous areas
	filePage   int   // file page backing 'start' (0 for anonymous)
}

// Start returns the first byte address of the area.
func (v *VMA) Start() Addr { return Addr(v.start) << PageShift }

// End returns the first byte address past the area.
func (v *VMA) End() Addr { return Addr(v.end) << PageShift }

// Pages returns the length of the area in pages.
func (v *VMA) Pages() int { return int(v.end - v.start) }

// Anonymous reports whether the area has no backing file.
func (v *VMA) Anonymous() bool { return v.file == nil }

// MapStats counts address-space operations. The view-creation experiments
// (Fig. 6) and the maps-parsing experiment (Fig. 7) are explained by these
// counters: fewer calls per mapped page and fewer live VMAs are exactly
// what the paper's two optimizations and clustered data buy.
type MapStats struct {
	MmapCalls     uint64 // Mmap invocations (any variant)
	MunmapCalls   uint64 // Munmap invocations
	PagesMapped   uint64 // pages covered by Mmap calls (cumulative)
	PagesUnmapped uint64 // pages removed by Munmap or MAP_FIXED overlap
	VMASplits     uint64 // existing VMAs split by overlap resolution
	VMAMerges     uint64 // adjacent compatible VMAs merged
	MinorFaults   uint64 // demand-zero faults on anonymous pages
	DemandMaps    uint64 // MmapFileFixedDemand calls (fault-driven view materialization)
	VMACount      int    // current number of VMAs
}

// AddressSpace is a simulated process address space. Mmap, Munmap and the
// page-table accessors are safe for concurrent use; this is what allows
// the background mapping thread of §2.3 to install pages while the scan
// thread keeps reading through other views.
type AddressSpace struct {
	kernel *Kernel
	pid    int

	mu          sync.RWMutex
	vmas        *vmaList
	pt          pageTable
	nextMapHint VPN
	maxMapCount int
	stats       MapStats
}

// mmapBase is where kernel-chosen mappings start (mimics the x86-64
// mmap_base ballpark so rendered addresses look familiar).
const mmapBase VPN = 0x7f00_0000_0000 >> PageShift

// addrSpaceTop bounds the simulated virtual address space (47-bit
// user-space, as on x86-64 with 4-level paging).
const addrSpaceTop VPN = 1 << (47 - PageShift)

// NewAddressSpace creates an empty address space with the default
// vm.max_map_count limit.
func (k *Kernel) NewAddressSpace() *AddressSpace {
	k.mu.Lock()
	pid := k.nextPID
	k.nextPID++
	k.mu.Unlock()
	return &AddressSpace{
		kernel:      k,
		pid:         pid,
		vmas:        newVMAList(uint64(pid) * 0x9e3779b97f4a7c15),
		pt:          newPageTable(),
		nextMapHint: mmapBase,
		maxMapCount: DefaultMaxMapCount,
	}
}

// PID returns the simulated process ID.
func (as *AddressSpace) PID() int { return as.pid }

// SetMaxMapCount adjusts the maximum number of VMAs, the analogue of
// writing to /proc/sys/vm/max_map_count. The paper raises the limit from
// 2^16-1 to 2^32-1 for all experiments (§3).
func (as *AddressSpace) SetMaxMapCount(n int) {
	as.mu.Lock()
	defer as.mu.Unlock()
	as.maxMapCount = n
}

// Stats returns a snapshot of the operation counters.
func (as *AddressSpace) Stats() MapStats {
	as.mu.RLock()
	defer as.mu.RUnlock()
	s := as.stats
	s.VMACount = as.vmas.len()
	return s
}

// ResetStats zeroes the cumulative counters (VMACount is recomputed).
func (as *AddressSpace) ResetStats() {
	as.mu.Lock()
	defer as.mu.Unlock()
	as.stats = MapStats{}
}

// MmapAnon reserves a region of n pages of anonymous memory at a
// kernel-chosen address. This is the cheap over-allocation step of view
// creation: "This first call to mmap() acts as a mere reservation of
// virtual memory for our view and is almost for free" (§2). No physical
// frames are allocated until a page is touched.
func (as *AddressSpace) MmapAnon(n int) (Addr, error) {
	return as.mmapChooseAddr(nil, 0, n, PermRWPrivate)
}

// MmapFile maps n pages of file f starting at file page off, at a
// kernel-chosen address with shared semantics. The full view over a
// physical column is created this way.
func (as *AddressSpace) MmapFile(f *File, off, n int) (Addr, error) {
	if f == nil {
		return 0, fmt.Errorf("%w: nil file", ErrInvalid)
	}
	return as.mmapChooseAddr(f, off, n, PermRWShared)
}

// MmapFileFixed re-points the n virtual pages starting at addr to file
// pages [off, off+n) with shared semantics — the rewiring step. Any
// previous mapping of those pages (anonymous reservation or an earlier
// rewiring) is implicitly unmapped first, exactly like MAP_FIXED. The
// page-table entries are populated eagerly, so there are no later soft
// faults (the paper measures the post-remap fault overhead as negligible).
func (as *AddressSpace) MmapFileFixed(addr Addr, f *File, off, n int) error {
	if f == nil {
		return fmt.Errorf("%w: nil file", ErrInvalid)
	}
	if addr%PageSize != 0 {
		return fmt.Errorf("%w: address %#x not page-aligned", ErrInvalid, addr)
	}
	if n <= 0 {
		return fmt.Errorf("%w: non-positive length %d", ErrInvalid, n)
	}
	frames, err := f.frameRange(off, n)
	if err != nil {
		return err
	}
	start := VPN(addr >> PageShift)
	if start+VPN(n) > addrSpaceTop {
		return fmt.Errorf("%w: mapping past end of address space", ErrNoMemory)
	}

	as.mu.Lock()
	defer as.mu.Unlock()
	as.stats.MmapCalls++
	as.stats.PagesMapped += uint64(n)

	// Room check before mutating: overlap resolution can add up to two
	// VMAs (a split) plus the new area.
	if as.vmas.len()+2 > as.maxMapCount {
		return fmt.Errorf("%w: vm.max_map_count (%d) exceeded", ErrNoMemory, as.maxMapCount)
	}

	as.unmapRangeLocked(start, start+VPN(n))
	as.insertMergedLocked(&VMA{
		start: start, end: start + VPN(n),
		perm: PermRWShared, file: f, filePage: off,
	})
	// Eager population (MAP_POPULATE behaviour).
	for i, fr := range frames {
		as.pt.set(start+VPN(i), fr)
	}
	f.addRefs(n)
	return nil
}

// MmapFileFixedDemand is MmapFileFixed invoked from a fault path:
// identical semantics, counted separately (MapStats.DemandMaps), so
// experiments can tell first-touch materialization of lazily created
// views apart from eager creation-time mapping — the simulator's
// analogue of a userfaultfd-style demand-paging handler installing the
// mapping from the fault.
func (as *AddressSpace) MmapFileFixedDemand(addr Addr, f *File, off, n int) error {
	if err := as.MmapFileFixed(addr, f, off, n); err != nil {
		return err
	}
	as.mu.Lock()
	as.stats.DemandMaps++
	as.mu.Unlock()
	return nil
}

// MunmapPages removes any mappings covering pages [addr, addr+n*PageSize).
// Unmapped gaps inside the range are ignored, like Linux munmap.
func (as *AddressSpace) MunmapPages(addr Addr, n int) error {
	if addr%PageSize != 0 {
		return fmt.Errorf("%w: address %#x not page-aligned", ErrInvalid, addr)
	}
	if n < 0 {
		return fmt.Errorf("%w: negative length", ErrInvalid)
	}
	start := VPN(addr >> PageShift)
	as.mu.Lock()
	defer as.mu.Unlock()
	as.stats.MunmapCalls++
	as.unmapRangeLocked(start, start+VPN(n))
	return nil
}

// mmapChooseAddr implements the non-FIXED variants: find a gap, insert.
func (as *AddressSpace) mmapChooseAddr(f *File, off, n int, perm Perm) (Addr, error) {
	if n <= 0 {
		return 0, fmt.Errorf("%w: non-positive length %d", ErrInvalid, n)
	}
	var frames []FrameID
	if f != nil {
		var err error
		frames, err = f.frameRange(off, n)
		if err != nil {
			return 0, err
		}
	}

	as.mu.Lock()
	defer as.mu.Unlock()
	as.stats.MmapCalls++
	as.stats.PagesMapped += uint64(n)
	if as.vmas.len()+1 > as.maxMapCount {
		return 0, fmt.Errorf("%w: vm.max_map_count (%d) exceeded", ErrNoMemory, as.maxMapCount)
	}

	start, err := as.findGapLocked(VPN(n))
	if err != nil {
		return 0, err
	}
	as.insertMergedLocked(&VMA{
		start: start, end: start + VPN(n),
		perm: perm, file: f, filePage: off,
	})
	for i, fr := range frames {
		as.pt.set(start+VPN(i), fr)
	}
	if f != nil {
		f.addRefs(n)
	}
	return Addr(start) << PageShift, nil
}

// findGapLocked returns the start of a free range of n pages. It bumps a
// hint pointer upward and falls back to a full first-fit search from
// mmapBase when the hint runs past the top — enough realism for the
// simulator, where address-space exhaustion is not under study.
//
//asv:locked=mu
func (as *AddressSpace) findGapLocked(n VPN) (VPN, error) {
	if as.nextMapHint+n <= addrSpaceTop && as.freeRangeLocked(as.nextMapHint, as.nextMapHint+n) {
		s := as.nextMapHint
		as.nextMapHint += n
		return s, nil
	}
	// First-fit scan across gaps between VMAs.
	prevEnd := mmapBase
	found := VPN(0)
	ok := false
	as.vmas.each(func(v *VMA) bool {
		if v.end <= prevEnd {
			return true
		}
		if v.start >= prevEnd && v.start-prevEnd >= n {
			found, ok = prevEnd, true
			return false
		}
		if v.end > prevEnd {
			prevEnd = v.end
		}
		return true
	})
	if !ok && addrSpaceTop-prevEnd >= n {
		found, ok = prevEnd, true
	}
	if !ok {
		return 0, fmt.Errorf("%w: no free virtual range of %d pages", ErrNoMemory, n)
	}
	as.nextMapHint = found + n
	return found, nil
}

// freeRangeLocked reports whether [start, end) overlaps no VMA.
//
//asv:locked=mu
func (as *AddressSpace) freeRangeLocked(start, end VPN) bool {
	if v := as.vmas.floor(start); v != nil && v.end > start {
		return false
	}
	if n := as.vmas.seekGE(start); n != nil && n.vma.start < end {
		return false
	}
	return true
}

// unmapRangeLocked removes all mappings inside [start, end), splitting or
// shrinking VMAs that straddle the boundary and clearing page-table
// entries. Anonymous frames that were demand-allocated are freed.
//
//asv:locked=mu
func (as *AddressSpace) unmapRangeLocked(start, end VPN) {
	if end <= start {
		return
	}
	// Collect overlapping VMAs first: mutating the skiplist while walking
	// it would invalidate the iteration.
	var overlaps []*VMA
	if v := as.vmas.floor(start); v != nil && v.end > start {
		overlaps = append(overlaps, v)
	}
	for n := as.vmas.seekGE(start + 1); n != nil && n.vma.start < end; n = n.next[0] {
		overlaps = append(overlaps, n.vma)
	}

	for _, v := range overlaps {
		lo, hi := v.start, v.end
		if lo < start {
			lo = start
		}
		if hi > end {
			hi = end
		}
		as.clearPagesLocked(v, lo, hi)
		as.stats.PagesUnmapped += uint64(hi - lo)

		switch {
		case v.start >= start && v.end <= end:
			// Fully covered: drop.
			as.vmas.remove(v.start)
		case v.start < start && v.end > end:
			// Strictly inside: split into head and tail.
			tail := &VMA{
				start: end, end: v.end, perm: v.perm, file: v.file,
				filePage: v.filePage + int(end-v.start),
			}
			v.end = start
			as.vmas.insert(tail)
			as.stats.VMASplits++
		case v.start < start:
			// Overlaps the head boundary: shrink from the right.
			v.end = start
		default:
			// Overlaps the tail boundary: shrink from the left. The key
			// (start) changes, so reinsert.
			as.vmas.remove(v.start)
			v.filePage += int(end - v.start)
			v.start = end
			as.vmas.insert(v)
		}
	}
}

// clearPagesLocked drops page-table entries in [lo, hi) of VMA v, freeing
// demand-allocated anonymous frames and releasing file page references.
//
//asv:locked=mu
func (as *AddressSpace) clearPagesLocked(v *VMA, lo, hi VPN) {
	cleared := 0
	for p := lo; p < hi; p++ {
		if fr, ok := as.pt.get(p); ok {
			as.pt.clear(p)
			if v.file == nil {
				as.kernel.freeFrame(fr)
			} else {
				cleared++
			}
		}
	}
	if v.file != nil && cleared > 0 {
		v.file.addRefs(-cleared)
	}
}

// insertMergedLocked inserts v, merging it with adjacent compatible VMAs.
// Two areas merge when their page ranges touch, permissions match, and the
// backing is contiguous (same file with consecutive file pages, or both
// anonymous). This is why mapping consecutive qualifying pages — the §2.3
// optimization — also keeps the maps file short: the merged area renders
// as a single line.
//
//asv:locked=mu
func (as *AddressSpace) insertMergedLocked(v *VMA) {
	// Merge with predecessor.
	if p := as.vmas.floor(v.start); p != nil && p.end == v.start && mergeable(p, v) {
		as.vmas.remove(p.start)
		v.start = p.start
		v.filePage = p.filePage
		as.stats.VMAMerges++
	}
	// Merge with successor.
	if n := as.vmas.seekGE(v.start + 1); n != nil && n.vma.start == v.end && mergeable(v, n.vma) {
		as.vmas.remove(n.vma.start)
		v.end = n.vma.end
		as.stats.VMAMerges++
	}
	as.vmas.insert(v)
}

// mergeable reports whether b can be appended to a (a.end == b.start is
// checked by the caller).
func mergeable(a, b *VMA) bool {
	if a.perm != b.perm || a.file != b.file {
		return false
	}
	if a.file == nil {
		return true
	}
	return a.filePage+a.Pages() == b.filePage
}

// RepointPage refreshes the page-table entry of vpn to the backing
// file's current frame. After File.ReplacePageFrame swapped a frame
// behind a file page (copy-on-write), translations resolved before the
// swap still reference the displaced frame; owners of such mappings call
// RepointPage for the virtual pages they know map the replaced file
// page. It is a no-op when vpn lies outside any VMA, the VMA is
// anonymous, or the entry already points at the current frame. Unlike
// MmapFileFixed it touches no VMA state, so it is cheap and never splits
// or merges areas.
func (as *AddressSpace) RepointPage(vpn VPN) error {
	as.mu.Lock()
	defer as.mu.Unlock()
	v := as.vmas.containing(vpn)
	if v == nil || v.file == nil {
		return nil
	}
	fr, err := v.file.frame(v.filePage + int(vpn-v.start))
	if err != nil {
		return err
	}
	// Only refresh a present entry: file pages are populated eagerly at
	// map time, so an absent entry means the file shrank under the
	// mapping — installing one here would skew the file's mapped-page
	// refcount.
	if cur, ok := as.pt.get(vpn); ok && cur != fr {
		as.pt.set(vpn, fr)
	}
	return nil
}

// Translate returns the physical frame backing vpn, if present in the page
// table. Anonymous pages that were never touched are absent.
func (as *AddressSpace) Translate(vpn VPN) (FrameID, bool) {
	as.mu.RLock()
	defer as.mu.RUnlock()
	return as.pt.get(vpn)
}

// PageData returns the 4 KiB page backing the virtual page vpn. For
// anonymous areas this demand-allocates a zeroed frame on first access (a
// minor fault). Accessing an unmapped page returns ErrFault. The returned
// slice aliases physical memory directly — reads and writes behave exactly
// like dereferencing the virtual address.
func (as *AddressSpace) PageData(vpn VPN) ([]byte, error) {
	as.mu.RLock()
	if fr, ok := as.pt.get(vpn); ok {
		k := as.kernel
		as.mu.RUnlock()
		return k.frameData(fr), nil
	}
	as.mu.RUnlock()

	// Slow path: possible demand-zero fault. Re-check under the write lock.
	as.mu.Lock()
	defer as.mu.Unlock()
	if fr, ok := as.pt.get(vpn); ok {
		return as.kernel.frameData(fr), nil
	}
	v := as.vmas.containing(vpn)
	if v == nil {
		return nil, fmt.Errorf("%w: vpn %#x", ErrFault, vpn)
	}
	if v.file != nil {
		// File pages are populated eagerly at map time; reaching here
		// means the file shrank under the mapping (SIGBUS territory).
		return nil, fmt.Errorf("%w: file page gone under vpn %#x", ErrFault, vpn)
	}
	fr, err := as.kernel.allocFrame() //asv:handoff the frame is installed in the page table; unmap frees it
	if err != nil {
		return nil, err
	}
	as.pt.set(vpn, fr)
	as.stats.MinorFaults++
	return as.kernel.frameData(fr), nil
}

// VMACount returns the current number of VMAs.
func (as *AddressSpace) VMACount() int {
	as.mu.RLock()
	defer as.mu.RUnlock()
	return as.vmas.len()
}

// EachVMA calls fn for every VMA in address order with a copy of the VMA
// descriptor; fn returning false stops the walk.
func (as *AddressSpace) EachVMA(fn func(VMA) bool) {
	as.mu.RLock()
	defer as.mu.RUnlock()
	as.vmas.each(func(v *VMA) bool { return fn(*v) })
}
