package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	v := New(0)
	if v.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", v.Len())
	}
	if v.Count() != 0 {
		t.Fatalf("Count() = %d, want 0", v.Count())
	}
	if got := v.NextSet(0); got != -1 {
		t.Fatalf("NextSet(0) = %d, want -1", got)
	}
}

func TestSetGetClear(t *testing.T) {
	v := New(130) // spans three words
	idx := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range idx {
		if v.Get(i) {
			t.Fatalf("bit %d set in fresh vector", i)
		}
		v.Set(i)
		if !v.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if v.Count() != len(idx) {
		t.Fatalf("Count() = %d, want %d", v.Count(), len(idx))
	}
	for _, i := range idx {
		v.Clear(i)
		if v.Get(i) {
			t.Fatalf("bit %d still set after Clear", i)
		}
	}
	if v.Count() != 0 {
		t.Fatalf("Count() = %d after clearing all, want 0", v.Count())
	}
}

func TestTestAndSet(t *testing.T) {
	v := New(10)
	if v.TestAndSet(3) {
		t.Fatal("TestAndSet on clear bit returned true")
	}
	if !v.TestAndSet(3) {
		t.Fatal("TestAndSet on set bit returned false")
	}
	if !v.Get(3) {
		t.Fatal("bit 3 not set after TestAndSet")
	}
}

func TestNextSet(t *testing.T) {
	v := New(200)
	for _, i := range []int{5, 64, 130, 199} {
		v.Set(i)
	}
	cases := []struct{ from, want int }{
		{0, 5}, {5, 5}, {6, 64}, {64, 64}, {65, 130},
		{131, 199}, {199, 199}, {-3, 5},
	}
	for _, c := range cases {
		if got := v.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if got := v.NextSet(200); got != -1 {
		t.Errorf("NextSet(200) = %d, want -1", got)
	}
	v2 := New(100)
	if got := v2.NextSet(0); got != -1 {
		t.Errorf("NextSet on empty = %d, want -1", got)
	}
}

func TestNextClear(t *testing.T) {
	v := New(130)
	for i := 0; i < 130; i++ {
		v.Set(i)
	}
	if got := v.NextClear(0); got != -1 {
		t.Fatalf("NextClear on full vector = %d, want -1", got)
	}
	v.Clear(64)
	if got := v.NextClear(0); got != 64 {
		t.Fatalf("NextClear(0) = %d, want 64", got)
	}
	if got := v.NextClear(65); got != -1 {
		t.Fatalf("NextClear(65) = %d, want -1", got)
	}
}

func TestOrAnd(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(1)
	a.Set(50)
	b.Set(50)
	b.Set(99)

	or := a.Clone()
	or.Or(b)
	for _, i := range []int{1, 50, 99} {
		if !or.Get(i) {
			t.Errorf("or: bit %d not set", i)
		}
	}
	if or.Count() != 3 {
		t.Errorf("or.Count() = %d, want 3", or.Count())
	}

	and := a.Clone()
	and.And(b)
	if !and.Get(50) || and.Count() != 1 {
		t.Errorf("and: got count %d, want only bit 50", and.Count())
	}
}

func TestReset(t *testing.T) {
	v := New(500)
	for i := 0; i < 500; i += 7 {
		v.Set(i)
	}
	v.Reset()
	if v.Count() != 0 {
		t.Fatalf("Count() = %d after Reset, want 0", v.Count())
	}
	if v.Len() != 500 {
		t.Fatalf("Len() = %d after Reset, want 500", v.Len())
	}
}

func TestCloneIndependence(t *testing.T) {
	v := New(64)
	v.Set(10)
	c := v.Clone()
	c.Set(20)
	if v.Get(20) {
		t.Fatal("mutation of clone visible in original")
	}
	if !c.Get(10) {
		t.Fatal("clone lost original bit")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	v := New(8)
	for _, f := range []func(){
		func() { v.Set(8) },
		func() { v.Get(-1) },
		func() { v.Clear(100) },
		func() { v.TestAndSet(8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range access")
				}
			}()
			f()
		}()
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	a, b := New(10), New(11)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for Or on mismatched lengths")
		}
	}()
	a.Or(b)
}

func TestNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative size")
		}
	}()
	New(-1)
}

// Property: Count equals the number of distinct indices set.
func TestQuickCountMatchesSet(t *testing.T) {
	f := func(raw []uint16) bool {
		v := New(1 << 16)
		seen := map[int]bool{}
		for _, r := range raw {
			i := int(r)
			v.Set(i)
			seen[i] = true
		}
		return v.Count() == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: iterating NextSet visits exactly the set indices, in order.
func TestQuickNextSetIteration(t *testing.T) {
	f := func(raw []uint16, seed int64) bool {
		const n = 1 << 16
		v := New(n)
		want := map[int]bool{}
		for _, r := range raw {
			v.Set(int(r))
			want[int(r)] = true
		}
		got := []int{}
		for i := v.NextSet(0); i != -1; i = v.NextSet(i + 1) {
			got = append(got, i)
		}
		if len(got) != len(want) {
			return false
		}
		prev := -1
		for _, i := range got {
			if !want[i] || i <= prev {
				return false
			}
			prev = i
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: TestAndSet returns false exactly once per index.
func TestQuickTestAndSetOnce(t *testing.T) {
	f := func(raw []uint8) bool {
		v := New(256)
		first := map[int]bool{}
		for _, r := range raw {
			i := int(r)
			prev := v.TestAndSet(i)
			if !prev && first[i] {
				return false // claimed "first" twice
			}
			if prev && !first[i] {
				return false // claimed "seen" before first set
			}
			first[i] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSet(b *testing.B) {
	v := New(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Set(i & (1<<20 - 1))
	}
}

func BenchmarkNextSetSparse(b *testing.B) {
	v := New(1 << 20)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		v.Set(rng.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := v.NextSet(0); j != -1; j = v.NextSet(j + 1) {
		}
	}
}
