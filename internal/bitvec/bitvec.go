// Package bitvec provides a fixed-size bitvector.
//
// The adaptive storage layer uses bitvectors in two places that the paper
// calls out explicitly: (1) tracking already-processed physical pages during
// multi-view query answering, so that pages shared by overlapping views are
// not scanned twice (§2.1), and (2) as the "Bitmap" explicit-index baseline
// of the micro-benchmark in §3.1.
package bitvec

import (
	"fmt"
	"math/bits"
)

const wordBits = 64

// Vector is a fixed-size bitvector. The zero value is an empty vector of
// length 0; use New to create one with a given size.
//
// Vector is not safe for concurrent use.
type Vector struct {
	words []uint64
	n     int
}

// New returns a vector of n bits, all zero.
func New(n int) *Vector {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative size %d", n))
	}
	return &Vector{
		words: make([]uint64, (n+wordBits-1)/wordBits),
		n:     n,
	}
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Set sets bit i to one.
func (v *Vector) Set(i int) {
	v.check(i)
	v.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear sets bit i to zero.
func (v *Vector) Clear(i int) {
	v.check(i)
	v.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Get reports whether bit i is one.
func (v *Vector) Get(i int) bool {
	v.check(i)
	return v.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// TestAndSet sets bit i and reports its previous value. It is the primitive
// used for processed-page tracking: the first scanner of a shared page wins.
func (v *Vector) TestAndSet(i int) bool {
	v.check(i)
	w, m := i/wordBits, uint64(1)<<(uint(i)%wordBits)
	old := v.words[w]&m != 0
	v.words[w] |= m
	return old
}

// Count returns the number of one bits.
func (v *Vector) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reset sets every bit to zero without reallocating.
func (v *Vector) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// NextSet returns the index of the first one bit at or after i, or -1 if
// there is none. It lets callers iterate set bits in O(words) rather than
// O(bits), which matters for the Bitmap index baseline whose lookup is
// "basically a scan of the bitvector" (§3.1).
func (v *Vector) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= v.n {
		return -1
	}
	w := i / wordBits
	// Mask off bits below i in the first word.
	cur := v.words[w] &^ ((1 << (uint(i) % wordBits)) - 1)
	for {
		if cur != 0 {
			j := w*wordBits + bits.TrailingZeros64(cur)
			if j >= v.n {
				return -1
			}
			return j
		}
		w++
		if w >= len(v.words) {
			return -1
		}
		cur = v.words[w]
	}
}

// NextClear returns the index of the first zero bit at or after i, or -1 if
// there is none.
func (v *Vector) NextClear(i int) int {
	if i < 0 {
		i = 0
	}
	for ; i < v.n; i++ {
		w := v.words[i/wordBits]
		if w == ^uint64(0) {
			// Whole word set: skip to its end.
			i = (i/wordBits)*wordBits + wordBits - 1
			continue
		}
		if w&(1<<(uint(i)%wordBits)) == 0 {
			return i
		}
	}
	return -1
}

// Or sets v to the bitwise OR of v and o. Both vectors must have equal length.
func (v *Vector) Or(o *Vector) {
	if v.n != o.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d != %d", v.n, o.n))
	}
	for i := range v.words {
		v.words[i] |= o.words[i]
	}
}

// And sets v to the bitwise AND of v and o. Both vectors must have equal length.
func (v *Vector) And(o *Vector) {
	if v.n != o.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d != %d", v.n, o.n))
	}
	for i := range v.words {
		v.words[i] &= o.words[i]
	}
}

// Clone returns a deep copy of v.
func (v *Vector) Clone() *Vector {
	w := make([]uint64, len(v.words))
	copy(w, v.words)
	return &Vector{words: w, n: v.n}
}

// String renders the vector as a compact summary, e.g. "bitvec(12/64 set)".
func (v *Vector) String() string {
	return fmt.Sprintf("bitvec(%d/%d set)", v.Count(), v.n)
}

func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}
