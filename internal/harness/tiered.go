package harness

import (
	"fmt"
	"time"

	"github.com/asv-db/asv/internal/core"
	"github.com/asv-db/asv/internal/obs"
	"github.com/asv-db/asv/internal/vmsim"
	"github.com/asv-db/asv/internal/workload"
)

// tieredPageFactor scales the tiered panel's column past the rest of the
// suite: tier migration has to earn its keep at 10x the page count the
// other panels run, so the hot budget is a real constraint rather than a
// rounding error.
const tieredPageFactor = 10

// tieredHotFractions sweeps the hot-tier budget from everything-fits
// down to one frame in eight. The <= 0.5 rows are the interesting ones:
// more than half the column lives on the simulated capacity tier and
// every scan over it pays the configured latency multiplier.
var tieredHotFractions = []float64{1.0, 0.5, 0.25, 0.125}

// RunTiered charts adaptive query throughput against the hot-tier
// fraction (beyond the paper): the fig4 selectivity sweep, answered by
// an adaptive engine whose column starts fully demoted to the simulated
// capacity tier (NVMe/CXL: cold frame accesses charge a latency
// multiplier). Scans promote what they touch back up to the hot budget
// — HotFrames = frac * pages per row — so each cell shows the steady
// state the promote-on-access policy converges to under that budget.
// Every answer is checked byte-identical against an untiered reference
// engine over the same data: tiering only ever costs time, never
// correctness. Cells keep the best of s.Runs repetitions.
func RunTiered(s Scale) (*Table, error) {
	sc := s
	sc.Pages = s.Pages * tieredPageFactor

	queries := workload.SelectivitySweep(sc.Seed, sc.Queries, fig4Domain, fig4Domain/2, 5000)
	sc.logf("tiered: reference run, untiered column (%d pages)", sc.Pages)
	expected, err := tieredReference(sc, queries)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID: "tiered",
		Title: fmt.Sprintf("Adaptive qps vs hot-tier fraction, sine distribution, %d pages (%dx suite scale), column fully demoted at start",
			sc.Pages, tieredPageFactor),
		Header: []string{"hot_frac", "tiered_qps", "stall_ns", "coldtouch_avg", "promote_avg"},
	}
	for _, frac := range tieredHotFractions {
		var (
			bestQPS float64
			best    vmsim.TierStats
		)
		for run := 0; run < s.Runs; run++ {
			qps, stats, tel, err := runTieredCell(sc, frac, queries, expected)
			if err != nil {
				return nil, fmt.Errorf("harness: tiered frac %g: %w", frac, err)
			}
			if qps > bestQPS {
				bestQPS, best = qps, stats
				t.Telemetry = &tel
			}
		}
		nq := float64(len(queries))
		t.AddRow(
			fmt.Sprintf("%.3f", frac),
			f2(bestQPS),
			fmt.Sprintf("%d", best.StallNanos),
			f2(float64(best.ColdTouches)/nq),
			f2(float64(best.Promotions)/nq),
		)
		sc.logf("tiered: hot fraction %.3f done (%.2f qps)", frac, bestQPS)
	}
	return t, nil
}

// tieredReference answers the query sequence on an untiered engine over
// the same column data and adaptive configuration as the tiered cells,
// returning the per-query answers the cells must reproduce exactly.
func tieredReference(sc Scale, queries []workload.Query) ([]core.QueryResult, error) {
	col, err := newFig4Column(sc, "sine")
	if err != nil {
		return nil, err
	}
	defer func() { _ = col.Close() }() //asv:ignore-err benchmark teardown; measurement errors are returned separately
	eng, err := core.NewEngine(col, tieredPanelConfig())
	if err != nil {
		return nil, err
	}
	defer func() { _ = eng.Close() }() //asv:ignore-err benchmark teardown; measurement errors are returned separately
	out := make([]core.QueryResult, len(queries))
	for i, q := range queries {
		r, err := eng.Query(q.Lo, q.Hi)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// runTieredCell measures one hot-fraction cell on a fresh column: attach
// a tier with HotFrames = frac * pages, demote every page, then answer
// the sweep and report throughput plus the tier counters and the
// engine's telemetry snapshot. The cell runs with the event journal
// enabled; if a query's answer diverges from the untiered reference,
// the journal is dumped through the Scale's progress writer so the
// engine-event timeline leading up to the divergence survives the
// failure.
func runTieredCell(sc Scale, frac float64, queries []workload.Query, expected []core.QueryResult) (float64, vmsim.TierStats, obs.Snapshot, error) {
	fail := func(err error) (float64, vmsim.TierStats, obs.Snapshot, error) {
		return 0, vmsim.TierStats{}, obs.Snapshot{}, err
	}
	col, err := newFig4Column(sc, "sine")
	if err != nil {
		return fail(err)
	}
	defer func() { _ = col.Close() }() //asv:ignore-err benchmark teardown; measurement errors are returned separately

	hot := int(float64(sc.Pages) * frac)
	if hot < 1 {
		hot = 1
	}
	cfg := tieredPanelConfig()
	cfg.Tiering = &vmsim.TierConfig{HotFrames: hot}
	cfg.JournalEvents = 512
	eng, err := core.NewEngine(col, cfg)
	if err != nil {
		return fail(err)
	}
	defer func() { _ = eng.Close() }() //asv:ignore-err benchmark teardown; measurement errors are returned separately

	tier := eng.Tier()
	for p := 0; p < sc.Pages; p++ {
		tier.Demote(p)
	}

	start := time.Now()
	for i, q := range queries {
		r, err := eng.Query(q.Lo, q.Hi)
		if err != nil {
			return fail(err)
		}
		if r.Count != expected[i].Count || r.Sum != expected[i].Sum {
			evs := eng.Journal().Events()
			sc.logf("tiered: equivalence failure at query %d — dumping %d journal events", i, len(evs))
			for _, ev := range evs {
				sc.logf("tiered:   %s", ev)
			}
			return fail(fmt.Errorf(
				"query %d [%d,%d]: tiered (%d,%d) != untiered reference (%d,%d); %d journal events dumped",
				i, q.Lo, q.Hi, r.Count, r.Sum, expected[i].Count, expected[i].Sum, len(evs)))
		}
	}
	elapsed := time.Since(start)
	stats, ok := eng.TierStats()
	if !ok {
		return fail(fmt.Errorf("tiered engine reports no tier stats"))
	}
	return float64(len(queries)) / elapsed.Seconds(), stats, eng.Telemetry(), nil
}

// tieredPanelConfig is the shared adaptive configuration of the
// reference engine and every tiered cell — identical up to Tiering, so
// any answer drift is the tier's fault alone.
func tieredPanelConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.MaxViews = 100
	return cfg
}
