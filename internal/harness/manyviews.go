package harness

import (
	"fmt"
	"time"

	"github.com/asv-db/asv/internal/core"
	"github.com/asv-db/asv/internal/xrand"
)

// manyViewsCounts is the view-count sweep of the many-views panel.
// Counts larger than the column's page count are skipped (views would
// be mostly empty and the cell would measure nothing interesting).
var manyViewsCounts = []int{64, 256, 1024, 4096}

// manyViewsPubRounds is how many single-update flush/publish cycles one
// cell averages publication latency over (after one warmup flush that
// pays the one-time materialization of every lazy view).
const manyViewsPubRounds = 8

// RunManyViews measures the two costs this layer's scaling work targets
// (beyond the paper): what standing up and maintaining thousands of
// views costs. Per view count N, the column's value domain is cut into N
// disjoint equal ranges and one view is created per range in a single
// batched pass. Columns:
//
//   - create_ms: wall time of the batched creation (one qualification
//     scan, one publication; lazy views map nothing up front).
//   - state_pub_ms: mean state-publication latency while single-row update
//     batches flush — each batch touches a handful of views, so with
//     delta captures the latency stays flat as N grows instead of
//     scaling with the view count.
//   - firsttouch_qps: pinned-snapshot queries, one per view, fired
//     right after creation — the first read of each never-touched lazy
//     view.
func RunManyViews(s Scale) (*Table, error) {
	t := &Table{
		ID: "manyviews",
		Title: fmt.Sprintf(
			"Many-views scaling, linear distribution, %d pages: batched creation, delta publication, first-touch reads",
			s.Pages),
		Header: []string{"views", "create_ms", "state_pub_ms", "firsttouch_qps"},
	}
	for _, n := range manyViewsCounts {
		if n > s.Pages {
			s.logf("manyviews: skipping %d views (> %d pages)", n, s.Pages)
			continue
		}
		var bestCreate, bestPub time.Duration
		var bestQPS float64
		for run := 0; run < s.Runs; run++ {
			create, pub, qps, err := runManyViewsCell(s, n)
			if err != nil {
				return nil, fmt.Errorf("harness: manyviews %d views: %w", n, err)
			}
			if run == 0 || create < bestCreate {
				bestCreate = create
			}
			if run == 0 || pub < bestPub {
				bestPub = pub
			}
			if qps > bestQPS {
				bestQPS = qps
			}
		}
		t.AddRow(itoa(n), ms(bestCreate), ms(bestPub), f2(bestQPS))
		s.logf("manyviews: %d views done", n)
	}
	return t, nil
}

// runManyViewsCell measures one view-count cell on a fresh engine.
func runManyViewsCell(s Scale, n int) (create, pub time.Duration, qps float64, err error) {
	col, err := newFig4Column(s, "linear")
	if err != nil {
		return 0, 0, 0, err
	}
	defer func() { _ = col.Close() }() //asv:ignore-err benchmark teardown; measurement errors are returned separately

	cfg := core.DefaultConfig()
	cfg.MaxViews = n
	eng, err := core.NewEngine(col, cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	defer func() { _ = eng.Close() }() //asv:ignore-err benchmark teardown; measurement errors are returned separately

	width := uint64(fig4Domain) / uint64(n)
	ranges := make([]core.ViewRange, n)
	for i := range ranges {
		lo := uint64(i) * width
		hi := lo + width - 1
		if i == n-1 {
			hi = fig4Domain
		}
		ranges[i] = core.ViewRange{Lo: lo, Hi: hi}
	}
	t0 := time.Now()
	if _, err := eng.CreateViewsBatch(ranges); err != nil {
		return 0, 0, 0, err
	}
	create = time.Since(t0)

	// First-touch reads: one pinned-snapshot query per freshly created
	// (never yet read) view.
	snap, err := eng.Snapshot()
	if err != nil {
		return 0, 0, 0, err
	}
	t1 := time.Now()
	for _, r := range ranges {
		if _, err := snap.Query(r.Lo+width/4, r.Hi-width/4); err != nil {
			_ = snap.Close() //asv:ignore-err Snapshot.Close never returns an error
			return 0, 0, 0, err
		}
	}
	qps = float64(n) / time.Since(t1).Seconds()
	if err := snap.Close(); err != nil {
		return 0, 0, 0, err
	}

	// Publication latency under small touch sets: single-row updates,
	// each flushed (aligned + published) on its own. The warmup round
	// pays the one-time full materialization alignment needs; the
	// measured rounds re-capture only the touched views.
	rng := xrand.New(s.Seed + 77)
	writeFlush := func() error {
		row := int(rng.Uint64() % uint64(col.Rows()))
		if err := eng.Update(row, rng.Uint64()%fig4Domain); err != nil {
			return err
		}
		_, err := eng.FlushUpdates()
		return err
	}
	if err := writeFlush(); err != nil {
		return 0, 0, 0, err
	}
	s0 := eng.Stats()
	for i := 0; i < manyViewsPubRounds; i++ {
		if err := writeFlush(); err != nil {
			return 0, 0, 0, err
		}
	}
	s1 := eng.Stats()
	pubs := s1.StatePublishes - s0.StatePublishes
	if pubs == 0 {
		return 0, 0, 0, fmt.Errorf("no publications measured")
	}
	pub = time.Duration((s1.PublishNanos - s0.PublishNanos) / pubs)
	return create, pub, qps, nil
}
