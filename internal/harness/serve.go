package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/asv-db/asv/internal/obs"
	"github.com/asv-db/asv/internal/serve"
	"github.com/asv-db/asv/internal/workload"
)

const (
	// serveSel is the per-query selectivity — the concurrent panel's 1%.
	serveSel = 0.01
	// serveClients is the closed-loop client count of every cell: each
	// client fires its next request only after the previous response, so
	// offered load tracks service rate instead of overrunning it.
	serveClients = 8
	// serveSkew names the client→tenant assignment skew: zipf concentrates
	// clients on a few hot tenants, the realistic multi-tenant shape.
	serveSkew = "zipf"
)

// RunServe measures the network front end end to end (beyond the paper):
// a live asvd server on a loopback listener, a grid of tenants × shards,
// and eight closed-loop HTTP clients assigned to tenants by zipf skew
// firing deterministic fixed-selectivity query streams. Each cell
// reports accumulated queries per second plus client-observed p50/p99
// latency, and finishes with a verified graceful shutdown — a straggler
// client keeps requests in flight while Shutdown drains, and any dropped
// response fails the cell. Rows sweep tenants and shards: flat qps down
// the tenant column means the catalog isolates tenants, rising qps
// across the shard column means scatter-gather buys parallelism at this
// scale (each tenant's column splits into that many engine instances).
func RunServe(s Scale) (*Table, error) {
	grid := []int{1, 4}
	t := &Table{
		ID: "serve",
		Title: fmt.Sprintf("HTTP scatter-gather throughput, zipf tenant skew, sel %.0f%%, %d closed-loop clients, %d queries/cell",
			serveSel*100, serveClients, s.Queries),
		Header: []string{"tenants", "shards", "serve_qps", "p50_ms", "lat_ms_p99"},
	}
	for _, tenants := range grid {
		for _, shards := range grid {
			cell, err := runServeCell(s, tenants, shards)
			if err != nil {
				return nil, fmt.Errorf("harness: serve %dx%d: %w", tenants, shards, err)
			}
			t.AddRow(itoa(tenants), itoa(shards), f2(cell.qps), ms(cell.p50), ms(cell.p99))
			t.Telemetry = cell.telemetry
			s.logf("serve: %d tenant(s) x %d shard(s) done", tenants, shards)
		}
	}
	return t, nil
}

type serveCell struct {
	qps       float64
	p50, p99  time.Duration
	telemetry *obs.Snapshot
}

// runServeCell runs one (tenants, shards) cell over s.Runs repetitions
// on fresh servers, returning the best-throughput run's numbers.
func runServeCell(s Scale, tenants, shards int) (serveCell, error) {
	// Split s.Queries across clients exactly, like the concurrent panel:
	// streams are generated one query longer and truncated, so every cell
	// fires the stated volume regardless of the client count.
	base := s.Queries / serveClients
	rem := s.Queries % serveClients
	streams, assignments, err := workload.MultiTenantClients(
		s.Seed, tenants, serveClients, base+1, fig4Domain, serveSel, serveSkew)
	if err != nil {
		return serveCell{}, err
	}
	for i := rem; i < serveClients; i++ {
		streams[i] = streams[i][:base]
	}

	var best serveCell
	for run := 0; run < s.Runs; run++ {
		cell, err := runServeOnce(s, tenants, shards, streams, assignments)
		if err != nil {
			return serveCell{}, err
		}
		if cell.qps > best.qps {
			best = cell
		}
	}
	return best, nil
}

func runServeOnce(s Scale, tenants, shards int, streams [][]workload.Query, assignments []int) (serveCell, error) {
	srv := serve.NewServer(serve.ServerConfig{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return serveCell{}, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	baseURL := "http://" + l.Addr().String()

	// One sharded column per tenant, created and filled over the API
	// itself — setup exercises the same surface the measurement does.
	for ti := 0; ti < tenants; ti++ {
		body, _ := json.Marshal(map[string]any{ //asv:ignore-err marshaling a literal map of scalars cannot fail
			"name": "col", "pages": s.Pages, "shards": shards, "partitioning": "range",
			"fill": map[string]any{"dist": "sine", "seed": s.Seed, "lo": 0, "hi": fig4Domain},
		})
		status, _, err := servePost(fmt.Sprintf("%s/t/tenant%d/columns", baseURL, ti), body)
		if err != nil {
			return serveCell{}, err
		}
		if status != http.StatusCreated {
			return serveCell{}, fmt.Errorf("column create for tenant %d: status %d", ti, status)
		}
	}

	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
		samples  = make([][]time.Duration, serveClients)
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	start := time.Now()
	for c := 0; c < serveClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			url := fmt.Sprintf("%s/t/tenant%d/columns/col/query", baseURL, assignments[c])
			lat := make([]time.Duration, 0, len(streams[c]))
			for _, q := range streams[c] {
				body, _ := json.Marshal(map[string]any{"lo": q.Lo, "hi": q.Hi, "aggregate": true}) //asv:ignore-err marshaling a literal map of scalars cannot fail
				t0 := time.Now()
				status, _, err := servePost(url, body)
				if err != nil {
					fail(err)
					return
				}
				if status != http.StatusOK {
					fail(fmt.Errorf("query status %d", status))
					return
				}
				lat = append(lat, time.Since(t0))
			}
			samples[c] = lat
		}(c)
	}

	// The straggler keeps requests in flight across the shutdown below:
	// graceful drain is part of every cell, not a separate experiment.
	var (
		draining      atomic.Bool
		dropped       atomic.Int64
		stragglerDone = make(chan struct{})
	)
	go func() {
		defer close(stragglerDone)
		url := baseURL + "/t/tenant0/columns/col/query"
		body, _ := json.Marshal(map[string]any{"lo": 0, "hi": fig4Domain / 100, "aggregate": true}) //asv:ignore-err marshaling a literal map of scalars cannot fail
		for {
			status, _, err := servePost(url, body)
			if err != nil {
				if !draining.Load() {
					dropped.Add(1)
				}
				return
			}
			if status != http.StatusOK {
				// A request the server accepted must complete, drain or not.
				dropped.Add(1)
				return
			}
		}
	}()

	wg.Wait()
	elapsed := time.Since(start)

	draining.Store(true)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	shutdownErr := srv.Shutdown(ctx)
	cancel()
	<-stragglerDone
	if err := <-serveErr; err != http.ErrServerClosed {
		return serveCell{}, fmt.Errorf("serve loop: %w", err)
	}
	if shutdownErr != nil {
		return serveCell{}, fmt.Errorf("graceful shutdown: %w", shutdownErr)
	}
	if n := dropped.Load(); n != 0 {
		return serveCell{}, fmt.Errorf("%d in-flight request(s) dropped across shutdown", n)
	}
	if firstErr != nil {
		return serveCell{}, firstErr
	}

	var all []time.Duration
	total := 0
	for _, lat := range samples {
		all = append(all, lat...)
		total += len(lat)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	tel := srv.Registry().Snapshot()
	return serveCell{
		qps:       float64(total) / elapsed.Seconds(),
		p50:       quantileDuration(all, 0.50),
		p99:       quantileDuration(all, 0.99),
		telemetry: &tel,
	}, nil
}

// servePost issues one JSON POST and returns (status, body, error),
// always draining the connection for reuse.
func servePost(url string, body []byte) (int, []byte, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, raw, nil
}

// quantileDuration reads the q-quantile from sorted samples (nearest
// rank, exact — no histogram buckets between the client and the number).
func quantileDuration(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}
