package harness

import (
	"fmt"
	"time"

	"github.com/asv-db/asv/internal/core"
	"github.com/asv-db/asv/internal/dist"
	"github.com/asv-db/asv/internal/storage"
	"github.com/asv-db/asv/internal/vmsim"
	"github.com/asv-db/asv/internal/workload"
)

// fig4Domain is the value domain of the §3.2 experiments ([0, 100M], the
// Figure 2 distributions).
const fig4Domain = 100_000_000

// SequenceResult carries a per-query series plus the accumulated response
// times that feed Table 1.
type SequenceResult struct {
	Table         *Table
	AdaptiveTotal time.Duration
	BaselineTotal time.Duration
}

// newFig4Column builds the §3.2 single-column table over any registered
// distribution (dist.Names). The paper's panels use sine (cycles every
// 100 pages), linear and sparse (90% zero pages — the Figure 2
// parameters); the scenario generators drive the asvbench fig4d-f
// panels beyond the paper.
func newFig4Column(sc Scale, distName string) (*storage.Column, error) {
	kern := vmsim.NewKernel(0)
	as := kern.NewAddressSpace()
	as.SetMaxMapCount(1<<32 - 1)
	col, err := storage.NewColumn(kern, as, "fig4-"+distName, sc.Pages)
	if err != nil {
		return nil, err
	}
	g, err := dist.ByName(distName, sc.Seed, 0, fig4Domain, sc.Pages)
	if err != nil {
		return nil, err
	}
	// Page-sharded fill: byte-identical to a serial Fill (generators are
	// pure in (seed, page)) but paper-scale columns build at memory speed.
	if err := col.FillParallel(g, 0); err != nil {
		return nil, err
	}
	return col, nil
}

// RunFig4 reproduces one panel of Figure 4 (adaptive query processing in
// single-view mode; distName is any dist.Names entry — the paper's
// panels are sine, linear and sparse): a shuffled
// sequence of queries whose selected range shrinks from half the domain
// down to 5,000, answered by an adaptive engine allowed up to 100 views,
// against a full-scan baseline. Per query it reports the adaptive
// response time, the number of scanned physical pages, and the baseline
// full-scan time.
func RunFig4(sc Scale, distName string) (*SequenceResult, error) {
	sc.logf("fig4(%s): building column (%d pages)", distName, sc.Pages)
	col, err := newFig4Column(sc, distName)
	if err != nil {
		return nil, err
	}
	defer func() { _ = col.Close() }() //asv:ignore-err benchmark teardown; measurement errors are returned separately

	queries := workload.SelectivitySweep(sc.Seed, sc.Queries, fig4Domain, fig4Domain/2, 5000)

	cfg := core.DefaultConfig()
	cfg.MaxViews = 100
	res, err := runSequence(sc, col, cfg, queries, false)
	if err != nil {
		return nil, err
	}
	res.Table.ID = "fig4-" + distName
	res.Table.Title = fmt.Sprintf("Adaptive query processing, single-view mode, %s distribution", distName)
	return res, nil
}

// runSequence fires the query sequence at an adaptive engine and at a
// full-scan baseline over the same column and reports the per-query
// series. reportViews selects the Figure 5 layout (views used per query)
// over the Figure 4 layout (scanned pages per query).
func runSequence(sc Scale, col *storage.Column, cfg core.Config,
	queries []workload.Query, reportViews bool) (*SequenceResult, error) {

	adaptive, err := core.NewEngine(col, cfg)
	if err != nil {
		return nil, err
	}
	defer func() { _ = adaptive.Close() }() //asv:ignore-err benchmark teardown; measurement errors are returned separately
	baseline, err := core.NewEngine(col, core.BaselineConfig())
	if err != nil {
		return nil, err
	}
	defer func() { _ = baseline.Close() }() //asv:ignore-err benchmark teardown; measurement errors are returned separately

	header := []string{"query", "range_width", "adaptive_ms", "scanned_pages", "baseline_ms"}
	if reportViews {
		header = []string{"query", "range_width", "adaptive_ms", "views_used", "baseline_ms"}
	}
	t := &Table{Header: header}

	out := &SequenceResult{Table: t}
	for i, q := range queries {
		t0 := time.Now()
		ra, err := adaptive.Query(q.Lo, q.Hi)
		if err != nil {
			return nil, err
		}
		da := time.Since(t0)

		t1 := time.Now()
		rb, err := baseline.Query(q.Lo, q.Hi)
		if err != nil {
			return nil, err
		}
		db := time.Since(t1)

		if ra.Count != rb.Count || ra.Sum != rb.Sum {
			return nil, fmt.Errorf("harness: query %d [%d,%d]: adaptive (%d,%d) != baseline (%d,%d)",
				i, q.Lo, q.Hi, ra.Count, ra.Sum, rb.Count, rb.Sum)
		}

		out.AdaptiveTotal += da
		out.BaselineTotal += db
		metric := itoa(ra.PagesScanned)
		if reportViews {
			metric = itoa(ra.ViewsUsed)
		}
		t.AddRow(itoa(i), itoa(int(q.Width())), ms(da), metric, ms(db))

		if sc.Progress != nil && (i+1)%50 == 0 {
			sc.logf("  %d/%d queries (%d views)", i+1, len(queries), adaptive.ViewSet().Len())
		}
	}
	return out, nil
}
