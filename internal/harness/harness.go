// Package harness regenerates every table and figure of the paper's
// evaluation (§3). Each Run* function sets up the experiment's column,
// views, and workload, measures what the paper measures, and returns the
// series as a Table that renders to TSV (for plotting) or aligned text.
//
// Absolute numbers are not expected to match the paper — the substrate is
// a simulated kernel on different hardware at a scaled-down column size —
// but the shapes are: who wins, by what factor, and where the crossovers
// fall. EXPERIMENTS.md records paper-vs-measured for every experiment.
package harness

import (
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/asv-db/asv/internal/obs"
)

// Scale parameterizes experiment sizes. The paper runs on 1M-page (4 GB)
// columns; DefaultScale uses 1/16 of that so the full suite finishes in
// minutes on a laptop. All workload shapes (selectivity fractions, view
// range fractions, query counts) are preserved exactly.
type Scale struct {
	// Seed drives every generator and workload deterministically.
	Seed uint64
	// Pages is the column size in 4 KiB pages (paper: 1,000,000).
	Pages int
	// Queries is the length of the §3.2 query sequences (paper: 250).
	Queries int
	// Runs is how many repetitions are averaged (paper: 3).
	Runs int
	// Fig3Updates is the §3.1 update-stream length (paper: 10,000).
	Fig3Updates int
	// Fig7Views is the number of partial views in §3.4 (paper: 5).
	Fig7Views int
	// Fig7Batches are the §3.4 batch sizes (paper: 100 … 1,000,000 in
	// logarithmic steps).
	Fig7Batches []int
	// MixedUpdates is the total update volume of each cell of the mixed
	// read/write throughput panel (beyond the paper), split across the
	// cell's writers.
	MixedUpdates int
	// Progress receives human-readable progress lines (nil = silent).
	Progress io.Writer
}

// DefaultScale returns the 1/16-scale configuration.
func DefaultScale() Scale {
	return Scale{
		Seed:         42,
		Pages:        65536,
		Queries:      250,
		Runs:         3,
		Fig3Updates:  10000,
		Fig7Views:    5,
		Fig7Batches:  []int{100, 1000, 10000, 100000, 1000000},
		MixedUpdates: 10000,
	}
}

// PaperScale returns the paper's full experiment size (1M pages = 4 GB per
// column; expect long runtimes and high memory use).
func PaperScale() Scale {
	s := DefaultScale()
	s.Pages = 1 << 20
	return s
}

func (s Scale) logf(format string, args ...any) {
	if s.Progress != nil {
		fmt.Fprintf(s.Progress, format+"\n", args...)
	}
}

// Table is a rendered experiment result: a titled grid of cells.
type Table struct {
	ID     string // experiment identifier, e.g. "fig3"
	Title  string
	Header []string
	Rows   [][]string

	// Telemetry, when set, is the unified instrument snapshot of the
	// panel's last engine — embedded in asvbench's JSON artifacts so
	// nightly runs can diff histogram quantiles alongside the rows.
	Telemetry *obs.Snapshot
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// WriteTSV renders the table as tab-separated values with a header line.
func (t *Table) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Join(t.Header, "\t")); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(r, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// WriteText renders the table with aligned columns for terminals.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	line := func(cells []string) error {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					sb.WriteByte(' ')
				}
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
		return err
	}
	if err := line(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := line(r); err != nil {
			return err
		}
	}
	return nil
}

// ms formats a duration as fractional milliseconds.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Nanoseconds())/1e6)
}

// secs formats a duration as fractional seconds.
func secs(d time.Duration) string {
	return fmt.Sprintf("%.2f", d.Seconds())
}

// itoa formats an int.
func itoa(v int) string { return fmt.Sprintf("%d", v) }

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// pct formats a fraction as a percentage with two decimals.
func pct(v float64) string { return fmt.Sprintf("%.2f", v*100) }

// avg returns the mean of the measured durations.
func avg(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}
