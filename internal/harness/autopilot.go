package harness

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/asv-db/asv/internal/autopilot"
	"github.com/asv-db/asv/internal/core"
	"github.com/asv-db/asv/internal/obs"
	"github.com/asv-db/asv/internal/workload"
)

// autopilotFlushEvery is how many of their own updates the caller-side
// write paths (lone, batch) flush after — the group-commit cadence the
// autopilot has to match without any caller cooperation.
const autopilotFlushEvery = 256

// autopilotCoalesce is the autopilot's CoalesceCount in every cell, equal
// to the caller-side flush cadence so the three write paths align the
// same batch volume and differ only in who coalesces.
const autopilotCoalesce = 256

// autopilotCell is one row of the autopilot panel.
type autopilotCell struct {
	latency          time.Duration
	writers, readers int
}

func autopilotCells() []autopilotCell {
	var cells []autopilotCell
	for _, lat := range []time.Duration{time.Millisecond, 5 * time.Millisecond} {
		for _, w := range []int{1, 4} {
			for _, r := range []int{0, 2} {
				cells = append(cells, autopilotCell{latency: lat, writers: w, readers: r})
			}
		}
	}
	return cells
}

// RunAutopilot measures the autopilot's bounded-latency write coalescing
// (beyond the paper): writer goroutines stream deterministic lone Update
// calls at one shared engine while reader goroutines fire query streams,
// sweeping the MaxFlushLatency bound × writer count × reader count. Per
// row it reports three write paths over identical streams — `lone_upds`
// (lone synchronous Updates, the one-room-turn-per-write degradation the
// PR 3 mixed panel exposed), `auto_upds` (lone fire-and-forget Updates
// coalesced by the autopilot under the row's latency bound) and
// `batch_upds` (caller-side UpdateBatch group commits, the cooperative
// reference) — plus the autopilot's mean coalesced batch size, its
// p50/p99 flush latency (enqueue → applied + aligned), and the reader
// throughput observed during the autopilot run. The acceptance shape:
// under concurrent readers, auto_upds sits within 2× of batch_upds while
// lone_upds collapses, and flush_p99_ms stays near the latency bound.
func RunAutopilot(s Scale) (*Table, error) {
	t := &Table{
		ID: "autopilot",
		Title: fmt.Sprintf("Autopilot write coalescing, sine distribution, %d-update streams cycled >= %s, sel %.0f%% reads (GOMAXPROCS=%d)",
			s.MixedUpdates, updatesMinWindow, concurrentSel*100, runtime.GOMAXPROCS(0)),
		Header: []string{"lat_budget_us", "writers", "readers",
			"lone_upds", "auto_upds", "batch_upds",
			"coalesce_avg", "flush_p50_ms", "flush_p99_ms", "reader_qps"},
	}
	for _, c := range autopilotCells() {
		lone, err := runAutopilotCell(s, c, pathLone)
		if err != nil {
			return nil, fmt.Errorf("harness: autopilot %+v lone: %w", c, err)
		}
		batch, err := runAutopilotCell(s, c, pathBatch)
		if err != nil {
			return nil, fmt.Errorf("harness: autopilot %+v batch: %w", c, err)
		}
		auto, err := runAutopilotCell(s, c, pathAuto)
		if err != nil {
			return nil, fmt.Errorf("harness: autopilot %+v auto: %w", c, err)
		}
		t.AddRow(itoa(int(c.latency/time.Microsecond)), itoa(c.writers), itoa(c.readers),
			f2(lone.upds), f2(auto.upds), f2(batch.upds),
			f2(auto.coalesce), ms(auto.p50), ms(auto.p99), f2(auto.qps))
		tel := auto.tel
		t.Telemetry = &tel
		s.logf("autopilot: lat=%s writers=%d readers=%d done", c.latency, c.writers, c.readers)
	}
	return t, nil
}

// writePath selects how a cell's writers push their stream.
type writePath int

const (
	pathLone  writePath = iota // lone synchronous Update + periodic flush
	pathAuto                   // lone fire-and-forget Update, autopilot coalesces
	pathBatch                  // caller-side UpdateBatch + periodic flush
)

// autopilotResult is one (cell, path) measurement.
type autopilotResult struct {
	upds     float64
	qps      float64
	coalesce float64
	p50, p99 time.Duration
	tel      obs.Snapshot
}

// runAutopilotCell runs one (latency, writers, readers) cell through one
// write path over s.Runs repetitions on fresh engines, returning the
// best observed update throughput with its reader throughput and (for
// the autopilot path) coalescing/latency telemetry. Throughput counts a
// stream as done only when its writes are applied AND aligned (the
// autopilot path ends with Sync), so the three paths pay the same work.
func runAutopilotCell(s Scale, c autopilotCell, path writePath) (autopilotResult, error) {
	base := s.MixedUpdates / c.writers
	rem := s.MixedUpdates % c.writers
	var best autopilotResult
	for run := 0; run < s.Runs; run++ {
		eng, cleanup, err := mixedEngine(s, func(cfg *core.Config) {
			if path == pathAuto {
				cfg.Autopilot = &autopilot.Config{
					CoalesceCount:   autopilotCoalesce,
					MaxFlushLatency: c.latency,
					// Keep the pinned views: the panel measures
					// coalescing, not lifecycle churn.
					ColdTicks: -1,
				}
			}
		})
		if err != nil {
			return best, err
		}
		streams := workload.ConcurrentUpdaters(s.Seed+9, c.writers, base+1, eng.Column().Rows(), 0, fig4Domain)
		for i := rem; i < c.writers; i++ {
			streams[i] = streams[i][:base]
		}
		readStreams := workload.ConcurrentClients(s.Seed+13, c.readers+1, updatesReaderStream, fig4Domain, concurrentSel)

		var (
			errMu    sync.Mutex
			firstErr error
			fail     = func(err error) {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
			writerWg, readerWg sync.WaitGroup
			stop               = make(chan struct{})
			queriesDone        int64
			queriesMu          sync.Mutex
			updatesApplied     int64
			appliedMu          sync.Mutex
		)
		start := time.Now()
		for r := 0; r < c.readers; r++ {
			readerWg.Add(1)
			go func(stream []workload.Query) {
				defer readerWg.Done()
				done := 0
				defer func() {
					queriesMu.Lock()
					queriesDone += int64(done)
					queriesMu.Unlock()
				}()
				for {
					for _, q := range stream {
						select {
						case <-stop:
							return
						default:
						}
						if _, err := eng.Query(q.Lo, q.Hi); err != nil {
							fail(err)
							return
						}
						done++
					}
				}
			}(readStreams[r])
		}
		for w := 0; w < c.writers; w++ {
			writerWg.Add(1)
			go func(stream []workload.PointUpdate) {
				defer writerWg.Done()
				applied := 0
				defer func() {
					appliedMu.Lock()
					updatesApplied += int64(applied)
					appliedMu.Unlock()
				}()
				if err := runWriterStream(eng, stream, path, start, &applied); err != nil {
					fail(err)
				}
			}(streams[w])
		}
		writerWg.Wait()
		// The autopilot path is fire-and-forget: the stream only counts
		// once Sync has applied and aligned everything queued.
		if path == pathAuto && firstErr == nil {
			if _, err := eng.Sync(); err != nil {
				fail(err)
			}
		}
		writeElapsed := time.Since(start)
		close(stop)
		readerWg.Wait()
		readElapsed := time.Since(start)

		res := autopilotResult{
			upds: float64(updatesApplied) / writeElapsed.Seconds(),
			qps:  float64(queriesDone) / readElapsed.Seconds(),
		}
		if p := eng.Autopilot(); p != nil {
			m := p.Metrics()
			res.coalesce = m.AvgCoalesce()
			// p50/p99 via the deprecated sample wrappers on purpose: the
			// panel doubles as a regression check that the quantile-derived
			// samples track the underlying histogram.
			lats := p.FlushLatencies()
			res.p50 = autopilot.Percentile(lats, 0.50)
			res.p99 = autopilot.Percentile(lats, 0.99)
			res.tel = eng.Telemetry()
		}
		cleanup()
		if firstErr != nil {
			return best, firstErr
		}
		if res.upds > best.upds {
			best = res
		}
	}
	return best, nil
}

// runWriterStream cycles one writer's deterministic stream through the
// selected write path until the minimum measurement window elapses,
// counting applied updates. Unlike the `updates` panel (whose group
// commits always finish a pass quickly), the window is checked inside
// the stream too: the lone path under readers degrades to a handful of
// updates per second, and a mandatory full pass would take minutes per
// cell — the throughput ratio is the measurement, not the volume.
func runWriterStream(eng *core.Engine, stream []workload.PointUpdate, path writePath,
	start time.Time, applied *int) error {

	windowOver := func() bool { return time.Since(start) >= updatesMinWindow }
	sinceFlush := 0
	flushMaybe := func(n int) error {
		sinceFlush += n
		if sinceFlush >= autopilotFlushEvery {
			if _, err := eng.FlushUpdates(); err != nil {
				return err
			}
			sinceFlush = 0
		}
		return nil
	}
	var buf []core.RowWrite
loop:
	for {
		switch path {
		case pathLone, pathAuto:
			for i, u := range stream {
				if err := eng.Update(u.Row, u.Value); err != nil {
					return err
				}
				*applied++
				if path == pathLone {
					if err := flushMaybe(1); err != nil {
						return err
					}
				}
				if i%16 == 15 && windowOver() {
					break loop
				}
			}
		case pathBatch:
			for i := 0; i < len(stream); {
				end := i + updatesWriteGroup
				if end > len(stream) {
					end = len(stream)
				}
				buf = buf[:0]
				for _, u := range stream[i:end] {
					buf = append(buf, core.RowWrite{Row: u.Row, Value: u.Value})
				}
				if err := eng.UpdateBatch(buf); err != nil {
					return err
				}
				*applied += len(buf)
				if err := flushMaybe(len(buf)); err != nil {
					return err
				}
				i = end
				if windowOver() {
					break loop
				}
			}
		}
		if windowOver() {
			break
		}
	}
	// Final flush for the synchronous paths; the autopilot path syncs
	// once all writers joined.
	if path != pathAuto {
		if _, err := eng.FlushUpdates(); err != nil {
			return err
		}
	}
	return nil
}
