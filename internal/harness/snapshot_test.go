package harness

import (
	"strconv"
	"testing"
)

func TestRunSnapshot(t *testing.T) {
	s := tinyScale()
	if raceEnabled {
		// Race-slowed alignment makes each storm pass expensive; shorter
		// update streams keep the sweep cheap without changing what is
		// exercised.
		s.MixedUpdates = 200
	}
	tbl, err := RunSnapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ID != "snapshot" {
		t.Fatalf("id = %q", tbl.ID)
	}
	wantHeader := []string{"readers", "roomlock_qps", "epoch_qps", "pinned_qps", "epoch_speedup"}
	if len(tbl.Header) != len(wantHeader) {
		t.Fatalf("header %v", tbl.Header)
	}
	for i, h := range wantHeader {
		if tbl.Header[i] != h {
			t.Fatalf("header[%d] = %q, want %q", i, tbl.Header[i], h)
		}
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want one per reader count", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row) != len(wantHeader) {
			t.Fatalf("row %v: %d cells", row, len(row))
		}
		// Every read path must have made progress under the storm.
		for _, cell := range row[1:4] {
			qps, err := strconv.ParseFloat(cell, 64)
			if err != nil || qps <= 0 {
				t.Fatalf("row %v: bad throughput cell %q", row, cell)
			}
		}
	}
}
