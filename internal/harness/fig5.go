package harness

import (
	"fmt"

	"github.com/asv-db/asv/internal/core"
	"github.com/asv-db/asv/internal/workload"
)

// RunFig5 reproduces one panel of Figure 5 (adaptive query processing in
// multi-view mode on the sine distribution): a sequence of queries with
// fixed selectivity, answered by stitching multiple partial views. The
// paper pairs 1% selectivity with up to 200 views and 10% with up to 20.
// Per query it reports the adaptive response time, the number of views
// used, and the full-scan baseline.
func RunFig5(sc Scale, selectivity float64, maxViews int) (*SequenceResult, error) {
	sc.logf("fig5(sel=%.0f%%): building sine column (%d pages)", selectivity*100, sc.Pages)
	col, err := newFig4Column(sc, "sine")
	if err != nil {
		return nil, err
	}
	defer func() { _ = col.Close() }() //asv:ignore-err benchmark teardown; measurement errors are returned separately

	queries := workload.FixedSelectivity(sc.Seed, sc.Queries, fig4Domain, selectivity)

	cfg := core.DefaultConfig()
	cfg.Mode = core.MultiView
	cfg.MaxViews = maxViews
	res, err := runSequence(sc, col, cfg, queries, true)
	if err != nil {
		return nil, err
	}
	res.Table.ID = fmt.Sprintf("fig5-sel%g", selectivity*100)
	res.Table.Title = fmt.Sprintf(
		"Adaptive query processing, multi-view mode, sine distribution (sel. %g%%, <=%d views)",
		selectivity*100, maxViews)
	return res, nil
}
