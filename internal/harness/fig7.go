package harness

import (
	"fmt"
	"math"
	"time"

	"github.com/asv-db/asv/internal/core"
	"github.com/asv-db/asv/internal/dist"
	"github.com/asv-db/asv/internal/storage"
	"github.com/asv-db/asv/internal/vmsim"
	"github.com/asv-db/asv/internal/workload"
)

// RunFig7 reproduces one panel of Figure 7 (update performance as a
// function of batch size). Per the paper's setup: a column over the full
// uint64 domain (uniform for 7a, sine for 7b), five partial views each
// covering a random 1/1024 of the value range, and update batches of
// growing size applied to all views. For each batch size it reports the
// maps-parsing time, the view-update time, pages added/removed, and — as
// the "New" comparison point — the time to rebuild all five views from
// scratch instead.
func RunFig7(sc Scale, distName string) (*Table, error) {
	var mkGen func() dist.Generator
	switch distName {
	case "uniform":
		mkGen = func() dist.Generator { return dist.NewUniform(sc.Seed, 0, math.MaxUint64) }
	case "sine":
		mkGen = func() dist.Generator { return dist.NewSine(sc.Seed, 0, math.MaxUint64, 100) }
	default:
		return nil, fmt.Errorf("fig7: unknown distribution %q (want uniform or sine)", distName)
	}

	viewRanges := workload.RandomSubranges(sc.Seed+7, sc.Fig7Views, math.MaxUint64, 1.0/1024)

	t := &Table{
		ID:    "fig7-" + distName,
		Title: fmt.Sprintf("Update performance vs batch size, %s distribution (%d views)", distName, sc.Fig7Views),
		Header: []string{"batch", "parse_ms", "update_ms", "total_ms",
			"rebuild_ms", "pages_added", "pages_removed", "maps_lines"},
	}

	for _, batch := range sc.Fig7Batches {
		sc.logf("fig7(%s): batch=%d", distName, batch)
		// Fresh column and views per batch size so every point sees the
		// identical starting state.
		kern := vmsim.NewKernel(0)
		as := kern.NewAddressSpace()
		as.SetMaxMapCount(1<<32 - 1)
		col, err := storage.NewColumn(kern, as, "fig7", sc.Pages)
		if err != nil {
			return nil, err
		}
		if err := col.Fill(mkGen()); err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig()
		cfg.MaxViews = sc.Fig7Views
		eng, err := core.NewEngine(col, cfg)
		if err != nil {
			return nil, err
		}
		for _, r := range viewRanges {
			v, err := eng.CreateView(r.Lo, r.Hi)
			if err != nil {
				return nil, err
			}
			v.SetRange(r.Lo, r.Hi)
		}

		// Apply the batch through the engine (writes + buffering).
		ups := workload.UniformUpdates(sc.Seed+uint64(batch), batch, col.Rows(), 0, math.MaxUint64)
		for _, u := range ups {
			if err := eng.Update(u.Row, u.Value); err != nil {
				return nil, err
			}
		}
		st, err := eng.FlushUpdates()
		if err != nil {
			return nil, err
		}

		// The rebuild alternative, timed on the post-update state.
		t0 := time.Now()
		if err := eng.RebuildViews(); err != nil {
			return nil, err
		}
		rebuild := time.Since(t0)

		t.AddRow(itoa(batch), ms(st.ParseDuration), ms(st.AlignDuration),
			ms(st.ParseDuration+st.AlignDuration), ms(rebuild),
			itoa(st.PagesAdded), itoa(st.PagesRemoved), itoa(st.MapsLines))

		if err := eng.Close(); err != nil {
			return nil, err
		}
		if err := col.Close(); err != nil {
			return nil, err
		}
	}
	return t, nil
}
