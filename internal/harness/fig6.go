package harness

import (
	"fmt"
	"math"
	"time"

	"github.com/asv-db/asv/internal/dist"
	"github.com/asv-db/asv/internal/storage"
	"github.com/asv-db/asv/internal/view"
	"github.com/asv-db/asv/internal/vmsim"
)

// fig6Variants are the four creation configurations of Figure 6.
var fig6Variants = []struct {
	name string
	opts view.CreateOptions
}{
	{"no_optimizations", view.CreateOptions{}},
	{"consecutively_mapped", view.CreateOptions{Consecutive: true}},
	{"concurrently_mapped", view.CreateOptions{Concurrent: true}},
	{"both_optimizations", view.CreateOptions{Consecutive: true, Concurrent: true}},
}

// RunFig6 reproduces one panel of Figure 6 (impact of the §2.3
// optimizations on view creation). distName selects the panel:
//
//   - "uniform": uniform values in [0, 100M], view v[0, 100k] — the paper's
//     Figure 6a, indexing ~40% of all pages with short qualifying runs.
//   - "sine": sine over the full uint64 domain, view v[0, 2^63] — Figure
//     6b, indexing ~52% of the pages in long consecutive runs, which is
//     where consecutive-run mapping shines.
//
// It reports the mean creation time per variant plus the number of mmap
// calls issued, which explains the effect.
func RunFig6(sc Scale, distName string) (*Table, error) {
	var g dist.Generator
	var vLo, vHi uint64
	switch distName {
	case "uniform":
		g = dist.NewUniform(sc.Seed, 0, 100_000_000)
		vLo, vHi = 0, 100_000
	case "sine":
		g = dist.NewSine(sc.Seed, 0, math.MaxUint64, 100)
		vLo, vHi = 0, 1<<63
	default:
		return nil, fmt.Errorf("fig6: unknown distribution %q (want uniform or sine)", distName)
	}

	sc.logf("fig6(%s): building column (%d pages)", distName, sc.Pages)
	kern := vmsim.NewKernel(0)
	as := kern.NewAddressSpace()
	as.SetMaxMapCount(1<<32 - 1)
	col, err := storage.NewColumn(kern, as, "fig6-"+distName, sc.Pages)
	if err != nil {
		return nil, err
	}
	defer func() { _ = col.Close() }() //asv:ignore-err benchmark teardown; measurement errors are returned separately
	if err := col.Fill(g); err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "fig6-" + distName,
		Title:  fmt.Sprintf("Impact of optimizations on view creation, %s distribution", distName),
		Header: []string{"variant", "create_ms", "indexed_pages", "mmap_calls"},
	}

	for _, variant := range fig6Variants {
		var mapper *view.Mapper
		if variant.opts.Concurrent {
			mapper = view.NewMapper(0)
		}
		var times []time.Duration
		var pages int
		var calls uint64
		for r := 0; r < sc.Runs; r++ {
			before := as.Stats().MmapCalls
			t0 := time.Now()
			v, err := view.Create(col, vLo, vHi, variant.opts, mapper)
			if err != nil {
				if mapper != nil {
					mapper.Stop()
				}
				return nil, fmt.Errorf("fig6 %s: %w", variant.name, err)
			}
			times = append(times, time.Since(t0))
			pages = v.NumPages()
			calls = as.Stats().MmapCalls - before
			if err := v.Release(); err != nil {
				if mapper != nil {
					mapper.Stop()
				}
				return nil, err
			}
		}
		if mapper != nil {
			mapper.Stop()
		}
		sc.logf("fig6(%s): %-22s %s ms (%d pages, %d mmap calls)",
			distName, variant.name, ms(avg(times)), pages, calls)
		t.AddRow(variant.name, ms(avg(times)), itoa(pages), itoa(int(calls)))
	}
	return t, nil
}
