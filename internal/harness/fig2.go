package harness

import (
	"github.com/asv-db/asv/internal/dist"
	"github.com/asv-db/asv/internal/storage"
)

// RunFig2 renders the clustered data distributions of Figure 2: for the
// first 300 pages of each distribution it reports the per-page mean, min
// and max value — enough to reproduce the plots (linear ramp, 100-page
// sine cycle, sparse spikes).
func RunFig2(sc Scale) (*Table, error) {
	const previewPages = 300
	const domainHi = 100_000_000

	gens := []dist.Generator{
		dist.NewLinear(sc.Seed, 0, domainHi, previewPages),
		dist.NewSine(sc.Seed, 0, domainHi, 100),
		dist.NewSparse(sc.Seed, 0, domainHi, 0.9),
	}
	t := &Table{
		ID:    "fig2",
		Title: "Clustered data distributions (per-page value summary)",
		Header: []string{"pageID",
			"linear_mean", "linear_min", "linear_max",
			"sine_mean", "sine_min", "sine_max",
			"sparse_mean", "sparse_min", "sparse_max"},
	}
	buf := make([]uint64, storage.ValuesPerPage)
	for p := 0; p < previewPages; p++ {
		row := []string{itoa(p)}
		for _, g := range gens {
			g.FillPage(p, buf)
			var sum float64
			min, max := buf[0], buf[0]
			for _, v := range buf {
				sum += float64(v)
				if v < min {
					min = v
				}
				if v > max {
					max = v
				}
			}
			row = append(row,
				f2(sum/float64(len(buf))),
				itoa(int(min)),
				itoa(int(max)))
		}
		t.AddRow(row...)
	}
	return t, nil
}
