package harness

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/asv-db/asv/internal/core"
	"github.com/asv-db/asv/internal/workload"
)

// concurrentSel is the fixed selectivity of each client's queries (1% of
// the domain — the Figure 5a shape, small enough that partial views pay
// off and large enough that routing matters).
const concurrentSel = 0.01

// concurrentMode is one column of the throughput panel: a routing
// configuration plus the per-query scan parallelism it runs with.
type concurrentMode struct {
	name    string
	cfg     func() core.Config
	workers int // per-query scan workers (0 = serial kernels)
}

func concurrentModes() []concurrentMode {
	return []concurrentMode{
		{"fullscan", core.BaselineConfig, 0},
		{"single", core.DefaultConfig, 0},
		{"multi", func() core.Config {
			c := core.DefaultConfig()
			c.Mode = core.MultiView
			return c
		}, 0},
		// Intra-query parallelism on top of routing: every query scans
		// with GOMAXPROCS page-sharded workers. With many clients this
		// oversubscribes the cores on purpose — the panel shows where
		// inter-query concurrency stops leaving room for intra-query
		// sharding.
		{"single-par", core.DefaultConfig, -1},
	}
}

// RunConcurrent measures multi-client query throughput (beyond the paper):
// N client goroutines fire deterministic per-client query streams
// (workload.ConcurrentClients) at one shared engine, and the cell reports
// accumulated queries per second. Rows sweep the client count; columns
// sweep the routing mode — full-scan baseline, adaptive single-view,
// adaptive multi-view, and single-view with page-sharded parallel scan
// kernels. The total query volume per cell is fixed (s.Queries split
// across clients), so cells are comparable: a flat column means the
// engine's read-lock discipline scales, a falling one means contention.
func RunConcurrent(s Scale) (*Table, error) {
	modes := concurrentModes()
	clientCounts := []int{1, 2, 4, 8}

	header := []string{"clients"}
	for _, m := range modes {
		header = append(header, m.name+"_qps")
	}
	t := &Table{
		ID: "concurrent",
		Title: fmt.Sprintf("Multi-client throughput, sine distribution, sel %.0f%%, %d queries/cell (GOMAXPROCS=%d)",
			concurrentSel*100, s.Queries, runtime.GOMAXPROCS(0)),
		Header: header,
	}

	for _, clients := range clientCounts {
		row := []string{itoa(clients)}
		for _, m := range modes {
			qps, err := runConcurrentCell(s, m, clients)
			if err != nil {
				return nil, fmt.Errorf("harness: concurrent %s/%d clients: %w", m.name, clients, err)
			}
			row = append(row, f2(qps))
		}
		t.AddRow(row...)
		s.logf("concurrent: %d client(s) done", clients)
	}
	return t, nil
}

// runConcurrentCell runs one (mode, client count) cell over s.Runs
// repetitions on fresh engines and returns the best observed throughput
// (best-of-n damps scheduler noise, the usual throughput convention).
func runConcurrentCell(s Scale, m concurrentMode, clients int) (float64, error) {
	// Split s.Queries across clients exactly: the first rem clients run one
	// extra query so every cell executes the volume the table title states.
	// Streams are generated one query longer and truncated — FixedSelectivity
	// draws queries sequentially, so a truncated stream is the same prefix a
	// shorter generation would produce.
	base := s.Queries / clients
	rem := s.Queries % clients
	streams := workload.ConcurrentClients(s.Seed, clients, base+1, fig4Domain, concurrentSel)
	for i := rem; i < clients; i++ {
		streams[i] = streams[i][:base]
	}

	var best float64
	for run := 0; run < s.Runs; run++ {
		col, err := newFig4Column(s, "sine")
		if err != nil {
			return 0, err
		}
		eng, err := core.NewEngine(col, m.cfg())
		if err != nil {
			_ = col.Close() //asv:ignore-err unwinding failed engine construction; the construction error is returned
			return 0, err
		}

		var (
			wg       sync.WaitGroup
			errMu    sync.Mutex
			firstErr error
		)
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(stream []workload.Query) {
				defer wg.Done()
				for _, q := range stream {
					var err error
					if m.workers != 0 {
						_, err = eng.QueryParallel(q.Lo, q.Hi, m.workers)
					} else {
						_, err = eng.Query(q.Lo, q.Hi)
					}
					if err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
				}
			}(streams[c])
		}
		wg.Wait()
		elapsed := time.Since(start)

		closeErr := eng.Close()
		colErr := col.Close()
		if firstErr != nil {
			return 0, firstErr
		}
		if closeErr != nil {
			return 0, closeErr
		}
		if colErr != nil {
			return 0, colErr
		}
		if qps := float64(s.Queries) / elapsed.Seconds(); qps > best {
			best = qps
		}
	}
	return best, nil
}
