//go:build race

package harness

// raceEnabled reports that this test binary runs under the race
// detector; heavyweight panel sweeps shrink their volume accordingly.
const raceEnabled = true
