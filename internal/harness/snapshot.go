package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/asv-db/asv/internal/core"
	"github.com/asv-db/asv/internal/workload"
)

// snapshotMinWindow is the per-cell measurement window: the alignment
// storm and the readers overlap for at least this long.
const snapshotMinWindow = 150 * time.Millisecond

// snapshotWriteGroup is the storm writer's group-commit size; every
// group is flushed immediately, so each group costs one exclusive-room
// alignment — the "forced alignment storm".
const snapshotWriteGroup = 64

// snapshotPinBatch is how many queries a pinned-snapshot reader answers
// per pin before re-pinning the current epoch.
const snapshotPinBatch = 32

// RunSnapshot measures what epoch-routed reads buy under a forced
// alignment storm (beyond the paper): a writer loops group-committed
// updates and flushes every group, so the exclusive room is held by
// §2.4 alignment almost continuously, while N reader goroutines fire
// query streams at the same engine. Rows sweep the reader count; columns
// compare the legacy room-lock read path (Config.RoomLockReads — readers
// stall behind every alignment slice), the epoch path (the redesign:
// readers pin published immutable states and never enter the scan
// room), and pinned-snapshot readers (Snapshot handles re-pinned every
// few queries — the never-blocking extreme). The speedup column is
// epoch vs room-lock; the acceptance bar for the redesign is >= 2x.
func RunSnapshot(s Scale) (*Table, error) {
	readerCounts := []int{1, 2, 4, 8}
	t := &Table{
		ID: "snapshot",
		Title: fmt.Sprintf("Reader qps under forced alignment storm, sine distribution, sel %.0f%%, window >= %s (GOMAXPROCS=%d)",
			concurrentSel*100, snapshotMinWindow, runtime.GOMAXPROCS(0)),
		Header: []string{"readers", "roomlock_qps", "epoch_qps", "pinned_qps", "epoch_speedup"},
	}
	for _, readers := range readerCounts {
		room, err := runSnapshotCell(s, readers, true, false)
		if err != nil {
			return nil, fmt.Errorf("harness: snapshot %d readers room-lock: %w", readers, err)
		}
		epoch, err := runSnapshotCell(s, readers, false, false)
		if err != nil {
			return nil, fmt.Errorf("harness: snapshot %d readers epoch: %w", readers, err)
		}
		pinned, err := runSnapshotCell(s, readers, false, true)
		if err != nil {
			return nil, fmt.Errorf("harness: snapshot %d readers pinned: %w", readers, err)
		}
		speedup := 0.0
		if room > 0 {
			speedup = epoch / room
		}
		t.AddRow(itoa(readers), f2(room), f2(epoch), f2(pinned), f2(speedup))
		s.logf("snapshot: %d reader(s) done", readers)
	}
	return t, nil
}

// runSnapshotCell measures one (readers, read path) cell over s.Runs
// repetitions on fresh engines, returning the best observed reader
// throughput while the alignment storm runs.
func runSnapshotCell(s Scale, readers int, roomLock, pinned bool) (float64, error) {
	var best float64
	for run := 0; run < s.Runs; run++ {
		eng, cleanup, err := mixedEngine(s, func(cfg *core.Config) {
			cfg.RoomLockReads = roomLock
		})
		if err != nil {
			return 0, err
		}
		qps, err := snapshotStorm(s, eng, readers, pinned)
		cleanup()
		if err != nil {
			return 0, err
		}
		if qps > best {
			best = qps
		}
	}
	return best, nil
}

// snapshotStorm runs the storm writer and the readers against eng for at
// least snapshotMinWindow and returns the observed reader throughput.
func snapshotStorm(s Scale, eng *core.Engine, readers int, pinned bool) (float64, error) {
	writes := workload.ConcurrentUpdaters(s.Seed+21, 1, s.MixedUpdates, eng.Column().Rows(), 0, fig4Domain)[0]
	readStreams := workload.ConcurrentClients(s.Seed+23, readers, updatesReaderStream, fig4Domain, concurrentSel)

	var (
		errMu    sync.Mutex
		firstErr error
		fail     = func(err error) {
			errMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			errMu.Unlock()
		}
		wg          sync.WaitGroup
		stop        = make(chan struct{})
		queriesDone atomic.Int64
	)
	start := time.Now()

	// The storm: group-commit then flush, every iteration — one
	// exclusive-room alignment slice per snapshotWriteGroup writes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]core.RowWrite, 0, snapshotWriteGroup)
		for {
			for i := 0; i < len(writes); i += snapshotWriteGroup {
				select {
				case <-stop:
					return
				default:
				}
				end := i + snapshotWriteGroup
				if end > len(writes) {
					end = len(writes)
				}
				buf = buf[:0]
				for _, u := range writes[i:end] {
					buf = append(buf, core.RowWrite{Row: u.Row, Value: u.Value})
				}
				if err := eng.UpdateBatch(buf); err != nil {
					fail(err)
					return
				}
				if _, err := eng.FlushUpdates(); err != nil {
					fail(err)
					return
				}
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(stream []workload.Query) {
			defer wg.Done()
			done := 0
			defer func() { queriesDone.Add(int64(done)) }()
			if !pinned {
				for {
					for _, q := range stream {
						select {
						case <-stop:
							return
						default:
						}
						if _, err := eng.Query(q.Lo, q.Hi); err != nil {
							fail(err)
							return
						}
						done++
					}
				}
			}
			// Pinned mode: answer batches from one epoch, then re-pin.
			i := 0
			for {
				snap, err := eng.Snapshot()
				if err != nil {
					fail(err)
					return
				}
				for b := 0; b < snapshotPinBatch; b++ {
					select {
					case <-stop:
						_ = snap.Close() //asv:ignore-err Snapshot.Close never returns an error
						return
					default:
					}
					q := stream[i%len(stream)]
					i++
					if _, err := snap.Query(q.Lo, q.Hi); err != nil {
						fail(err)
						_ = snap.Close() //asv:ignore-err Snapshot.Close never returns an error; the query error was already recorded
						return
					}
					done++
				}
				if err := snap.Close(); err != nil {
					fail(err)
					return
				}
			}
		}(readStreams[r])
	}

	time.Sleep(snapshotMinWindow)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return 0, firstErr
	}
	return float64(queriesDone.Load()) / elapsed.Seconds(), nil
}
