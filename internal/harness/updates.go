package harness

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/asv-db/asv/internal/core"
	"github.com/asv-db/asv/internal/workload"
)

// updatesViewCount and updatesViewFrac shape the pre-created hot views of
// the mixed read/write panel: a handful of narrow views (the Figure 7
// setup, slightly wider) so update alignment genuinely adds and removes
// view pages instead of finding every page already qualifying.
const (
	updatesViewCount = 4
	updatesViewFrac  = 1.0 / 64
)

// updatesReaderStream is the per-reader query stream length; readers
// cycle their stream until the writers finish, so the length only bounds
// the variety of ranges, not the volume.
const updatesReaderStream = 64

// updatesWriteGroup is the writers' group-commit size: rows pushed per
// UpdateBatch call (capped by the cell's flush batch).
const updatesWriteGroup = 64

// updatesMinWindow is the minimum measurement window of a cell: writers
// cycle their deterministic streams until it elapses, so reader
// throughput is sampled over a real overlap window even at tiny scales
// where one stream pass finishes in microseconds.
const updatesMinWindow = 150 * time.Millisecond

// updatesCell is one row of the mixed read/write panel.
type updatesCell struct {
	writers, readers, batch int
}

func updatesCells() []updatesCell {
	var cells []updatesCell
	for _, w := range []int{1, 2, 4} {
		for _, r := range []int{0, 2} {
			for _, b := range []int{256, 2048} {
				cells = append(cells, updatesCell{writers: w, readers: r, batch: b})
			}
		}
	}
	return cells
}

// RunUpdates measures mixed read/write throughput (beyond the paper):
// writer goroutines stream deterministic per-writer updates
// (workload.ConcurrentUpdaters) at one shared engine, flushing every
// `batch` of their own updates, while reader goroutines fire query
// streams at the same engine until the writers finish. Rows sweep writer
// count × reader count × flush batch size. Each row reports the update
// throughput of the single-buffer write path (UpdateShards=1) against
// the sharded write path (UpdateShards=GOMAXPROCS), the rate of view
// pages realigned by update alignment, the reader throughput observed
// while writing, and its degradation against a writer-less run with the
// same reader count. Scan and alignment parallelism are GOMAXPROCS in
// every cell, so the two write-path columns differ only in the pending
// buffers — the serialization point this panel exists to expose.
func RunUpdates(s Scale) (*Table, error) {
	cells := updatesCells()
	t := &Table{
		ID: "updates",
		Title: fmt.Sprintf("Mixed read/write throughput, sine distribution, %d-update streams cycled >= %s, sel %.0f%% reads (GOMAXPROCS=%d)",
			s.MixedUpdates, updatesMinWindow, concurrentSel*100, runtime.GOMAXPROCS(0)),
		Header: []string{"writers", "readers", "batch",
			"single_upds", "sharded_upds", "aligned_pps", "reader_qps", "reader_drop_pct"},
	}

	baselines := map[int]float64{} // readers count -> writer-less qps
	for _, c := range cells {
		base := 0.0
		if c.readers > 0 {
			b, ok := baselines[c.readers]
			if !ok {
				var err error
				b, err = runReaderBaseline(s, c.readers)
				if err != nil {
					return nil, fmt.Errorf("harness: updates baseline %d readers: %w", c.readers, err)
				}
				baselines[c.readers] = b
			}
			base = b
		}

		single, _, _, err := runUpdatesCell(s, c, 1)
		if err != nil {
			return nil, fmt.Errorf("harness: updates %+v single: %w", c, err)
		}
		sharded, pps, qps, err := runUpdatesCell(s, c, 0)
		if err != nil {
			return nil, fmt.Errorf("harness: updates %+v sharded: %w", c, err)
		}

		drop := 0.0
		if base > 0 {
			drop = (1 - qps/base) * 100
		}
		t.AddRow(itoa(c.writers), itoa(c.readers), itoa(c.batch),
			f2(single), f2(sharded), f2(pps), f2(qps), f2(drop))
		s.logf("updates: writers=%d readers=%d batch=%d done", c.writers, c.readers, c.batch)
	}
	return t, nil
}

// updatesEngine builds the cell's column and engine: a sine column with
// a few narrow pre-created views, GOMAXPROCS scan/alignment parallelism,
// and the given pending-buffer shard count (0 = GOMAXPROCS).
func updatesEngine(s Scale, shards int) (*core.Engine, func(), error) {
	return mixedEngine(s, func(cfg *core.Config) { cfg.UpdateShards = shards })
}

// mixedEngine builds the mixed read/write panels' standard engine — sine
// column, narrow pre-created views, GOMAXPROCS parallelism — with a
// config mutator for the cell's knob of interest.
func mixedEngine(s Scale, mutate func(*core.Config)) (*core.Engine, func(), error) {
	col, err := newFig4Column(s, "sine")
	if err != nil {
		return nil, nil, err
	}
	cfg := core.DefaultConfig()
	cfg.Parallelism = -1
	if mutate != nil {
		mutate(&cfg)
	}
	eng, err := core.NewEngine(col, cfg)
	if err != nil {
		_ = col.Close() //asv:ignore-err unwinding failed engine construction; the construction error is returned
		return nil, nil, err
	}
	cleanup := func() {
		_ = eng.Close() //asv:ignore-err best-effort teardown shared by every exit path
		_ = col.Close() //asv:ignore-err best-effort teardown shared by every exit path
	}
	for _, r := range workload.RandomSubranges(s.Seed+5, updatesViewCount, fig4Domain, updatesViewFrac) {
		v, err := eng.CreateView(r.Lo, r.Hi)
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		v.SetRange(r.Lo, r.Hi)
	}
	return eng, cleanup, nil
}

// runUpdatesCell runs one (writers, readers, batch) cell against the
// given shard count over s.Runs repetitions on fresh engines, returning
// the best observed update throughput with its aligned-pages rate and
// concurrent reader throughput.
func runUpdatesCell(s Scale, c updatesCell, shards int) (upds, pps, qps float64, err error) {
	// Split the cell's stream volume across writers exactly (first rem
	// writers carry one extra update), so the union of one pass over all
	// writer streams is the same s.MixedUpdates writes at every writer
	// count.
	base := s.MixedUpdates / c.writers
	rem := s.MixedUpdates % c.writers
	for run := 0; run < s.Runs; run++ {
		eng, cleanup, err := updatesEngine(s, shards)
		if err != nil {
			return 0, 0, 0, err
		}
		streams := workload.ConcurrentUpdaters(s.Seed+9, c.writers, base+1, eng.Column().Rows(), 0, fig4Domain)
		for i := rem; i < c.writers; i++ {
			streams[i] = streams[i][:base]
		}
		readStreams := workload.ConcurrentClients(s.Seed+13, c.readers+1, updatesReaderStream, fig4Domain, concurrentSel)

		var (
			errMu    sync.Mutex
			firstErr error
			fail     = func(err error) {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
			writerWg, readerWg sync.WaitGroup
			stop               = make(chan struct{})
			queriesDone        int64
			queriesMu          sync.Mutex
		)
		start := time.Now()
		for r := 0; r < c.readers; r++ {
			readerWg.Add(1)
			go func(stream []workload.Query) {
				defer readerWg.Done()
				done := 0
				for {
					for _, q := range stream {
						select {
						case <-stop:
							queriesMu.Lock()
							queriesDone += int64(done)
							queriesMu.Unlock()
							return
						default:
						}
						if _, err := eng.Query(q.Lo, q.Hi); err != nil {
							fail(err)
							queriesMu.Lock()
							queriesDone += int64(done)
							queriesMu.Unlock()
							return
						}
						done++
					}
				}
			}(readStreams[r])
		}
		// Writers push group commits of updatesWriteGroup rows: one
		// update-room entry per group. Lone Update calls would win one
		// room turn each under concurrent readers, handing every query a
		// one-update batch to flush, parse and align in full — measuring
		// flush cost, not buffer contention. Each writer cycles its
		// stream until the minimum window elapses, flushing every
		// c.batch of its own updates.
		group := updatesWriteGroup
		if c.batch < group {
			group = c.batch
		}
		var (
			updatesApplied int64
			appliedMu      sync.Mutex
		)
		for w := 0; w < c.writers; w++ {
			writerWg.Add(1)
			go func(stream []workload.PointUpdate) {
				defer writerWg.Done()
				applied, sinceFlush := 0, 0
				defer func() {
					appliedMu.Lock()
					updatesApplied += int64(applied)
					appliedMu.Unlock()
				}()
				buf := make([]core.RowWrite, 0, group)
				for {
					for i := 0; i < len(stream); {
						end := i + group
						if end > len(stream) {
							end = len(stream)
						}
						buf = buf[:0]
						for _, u := range stream[i:end] {
							buf = append(buf, core.RowWrite{Row: u.Row, Value: u.Value})
						}
						if err := eng.UpdateBatch(buf); err != nil {
							fail(err)
							return
						}
						applied += len(buf)
						sinceFlush += len(buf)
						if sinceFlush >= c.batch {
							if _, err := eng.FlushUpdates(); err != nil {
								fail(err)
								return
							}
							sinceFlush = 0
						}
						i = end
					}
					if time.Since(start) >= updatesMinWindow {
						break
					}
				}
				// Final flush; a batch another writer already drained
				// flushes empty, which costs (and counts) nothing.
				if _, err := eng.FlushUpdates(); err != nil {
					fail(err)
				}
			}(streams[w])
		}
		writerWg.Wait()
		writeElapsed := time.Since(start)
		close(stop)
		readerWg.Wait()
		readElapsed := time.Since(start)
		st := eng.Stats()
		cleanup()
		if firstErr != nil {
			return 0, 0, 0, firstErr
		}

		if u := float64(updatesApplied) / writeElapsed.Seconds(); u > upds {
			upds = u
			pps = float64(st.PagesAdded+st.PagesRemoved) / writeElapsed.Seconds()
			qps = float64(queriesDone) / readElapsed.Seconds()
		}
	}
	return upds, pps, qps, nil
}

// runReaderBaseline measures reader throughput with no writers, under
// the same regime as the mixed cells — readers cycle their streams over
// the same minimum window on a fresh sharded-path engine — so the
// degradation column compares warm against warm, not against a cold
// single pass that pays all the adaptive view-creation cost up front.
// The best of s.Runs repetitions is the reference for cells with the
// same reader count.
func runReaderBaseline(s Scale, readers int) (float64, error) {
	var best float64
	for run := 0; run < s.Runs; run++ {
		eng, cleanup, err := updatesEngine(s, 0)
		if err != nil {
			return 0, err
		}
		streams := workload.ConcurrentClients(s.Seed+13, readers+1, updatesReaderStream, fig4Domain, concurrentSel)
		var (
			wg       sync.WaitGroup
			errMu    sync.Mutex
			firstErr error
			queries  int64
			countMu  sync.Mutex
		)
		start := time.Now()
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(stream []workload.Query) {
				defer wg.Done()
				done := 0
				defer func() {
					countMu.Lock()
					queries += int64(done)
					countMu.Unlock()
				}()
				for {
					for _, q := range stream {
						if _, err := eng.Query(q.Lo, q.Hi); err != nil {
							errMu.Lock()
							if firstErr == nil {
								firstErr = err
							}
							errMu.Unlock()
							return
						}
						done++
					}
					if time.Since(start) >= updatesMinWindow {
						return
					}
				}
			}(streams[r])
		}
		wg.Wait()
		elapsed := time.Since(start)
		cleanup()
		if firstErr != nil {
			return 0, firstErr
		}
		if qps := float64(queries) / elapsed.Seconds(); qps > best {
			best = qps
		}
	}
	return best, nil
}
