package harness

import (
	"fmt"
	"time"

	"github.com/asv-db/asv/internal/dist"
	"github.com/asv-db/asv/internal/explicit"
	"github.com/asv-db/asv/internal/storage"
	"github.com/asv-db/asv/internal/view"
	"github.com/asv-db/asv/internal/vmsim"
	"github.com/asv-db/asv/internal/workload"
)

// fig3Domain is the value domain of the §3.1 column ([0, 100M]).
const fig3Domain = 100_000_000

// fig3Ks are the paper's index-range upper bounds k: the partial view
// indexes all pages containing values in [0, k], yielding index
// selectivities from 0.65% (k=1,250) to 33.55% (k=80,000). These
// selectivities are scale-free (they depend only on k/domain and the page
// capacity), so they carry over to scaled-down columns unchanged.
var fig3Ks = []uint64{1250, 2500, 5000, 10000, 20000, 40000, 80000}

// RunFig3 reproduces Figure 3: query performance of explicit vs virtual
// partial views. For each k it builds all five variants over the same
// uniform column, applies the same 10,000-entry update stream to all of
// them, then measures each variant answering the query [0, k/2].
func RunFig3(sc Scale) (*Table, error) {
	t := &Table{
		ID:    "fig3",
		Title: "Query performance of explicit vs virtual views (runtime per query)",
		Header: []string{"k", "index_selectivity_pct",
			"zonemap_ms", "bitmap_ms", "pagevector_ms", "physical_ms", "virtual_ms"},
	}

	for _, k := range fig3Ks {
		sc.logf("fig3: k=%d", k)
		kern := vmsim.NewKernel(0)
		as := kern.NewAddressSpace()
		as.SetMaxMapCount(1<<32 - 1)
		col, err := storage.NewColumn(kern, as, "fig3", sc.Pages)
		if err != nil {
			return nil, err
		}
		if err := col.Fill(dist.NewUniform(sc.Seed, 0, fig3Domain)); err != nil {
			return nil, err
		}

		mapper := view.NewMapper(0)
		variants, err := buildFig3Variants(col, k, mapper)
		if err != nil {
			mapper.Stop()
			return nil, err
		}

		// One shared update stream, applied to the column once and
		// reflected into every index.
		ups := workload.UniformUpdates(sc.Seed+k, sc.Fig3Updates, col.Rows(), 0, fig3Domain)
		for _, u := range ups {
			old, err := col.SetValue(u.Row, u.Value)
			if err != nil {
				mapper.Stop()
				return nil, err
			}
			for _, idx := range variants {
				if err := idx.ApplyUpdate(u.Row, old, u.Value); err != nil {
					mapper.Stop()
					return nil, fmt.Errorf("%s: %w", idx.Name(), err)
				}
			}
		}

		// Index selectivity: fraction of pages the (exact) variants index.
		selPages := variants[1].Pages() // bitmap is exact
		row := []string{itoa(int(k)), pct(float64(selPages) / float64(sc.Pages))}

		// The measured query selects [0, k/2] "to select only 50% of the
		// data" indexed.
		qlo, qhi := uint64(0), k/2
		var reference *int
		for _, idx := range variants {
			var times []time.Duration
			var lastCount int
			for r := 0; r < sc.Runs; r++ {
				t0 := time.Now()
				count, _, err := idx.Lookup(qlo, qhi)
				if err != nil {
					mapper.Stop()
					return nil, fmt.Errorf("%s: %w", idx.Name(), err)
				}
				times = append(times, time.Since(t0))
				lastCount = count
			}
			if reference == nil {
				reference = &lastCount
			} else if *reference != lastCount {
				mapper.Stop()
				return nil, fmt.Errorf("fig3: %s disagrees: %d vs %d", idx.Name(), lastCount, *reference)
			}
			row = append(row, ms(avg(times)))
		}
		t.AddRow(row...)

		for _, idx := range variants {
			if err := idx.Release(); err != nil {
				mapper.Stop()
				return nil, fmt.Errorf("fig3: releasing %s: %w", idx.Name(), err)
			}
		}
		mapper.Stop()
		if err := col.Close(); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// buildFig3Variants constructs the five §3.1 variants in the fixed column
// order of the result table.
func buildFig3Variants(col *storage.Column, k uint64, mapper *view.Mapper) ([]explicit.Index, error) {
	zm := explicit.NewZoneMap(col, 0, k)
	bm, err := explicit.NewBitmap(col, 0, k)
	if err != nil {
		return nil, err
	}
	pv, err := explicit.NewPageVector(col, 0, k)
	if err != nil {
		return nil, err
	}
	ps, err := explicit.NewPhysicalScan(col, 0, k)
	if err != nil {
		return nil, err
	}
	vv, err := explicit.NewVirtualView(col, 0, k, view.AllOptimizations, mapper)
	if err != nil {
		return nil, err
	}
	return []explicit.Index{zm, bm, pv, ps, vv}, nil
}
