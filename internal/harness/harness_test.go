package harness

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"
)

// tinyScale keeps harness tests fast; shape checks at realistic scale live
// in EXPERIMENTS.md / the benchmarks.
func tinyScale() Scale {
	return Scale{
		Seed:         42,
		Pages:        1024,
		Queries:      60,
		Runs:         1,
		Fig3Updates:  500,
		Fig7Views:    3,
		Fig7Batches:  []int{100, 1000},
		MixedUpdates: 1000,
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "bb"},
	}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")

	var tsv bytes.Buffer
	if err := tbl.WriteTSV(&tsv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(tsv.String()), "\n")
	if len(lines) != 4 || lines[1] != "a\tbb" || lines[2] != "1\t2" {
		t.Fatalf("TSV:\n%s", tsv.String())
	}

	var txt bytes.Buffer
	if err := tbl.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "demo") || !strings.Contains(txt.String(), "333") {
		t.Fatalf("text:\n%s", txt.String())
	}
}

func TestFormattingHelpers(t *testing.T) {
	if got := ms(1500 * time.Microsecond); got != "1.500" {
		t.Fatalf("ms = %q", got)
	}
	if got := secs(2500 * time.Millisecond); got != "2.50" {
		t.Fatalf("secs = %q", got)
	}
	if got := pct(0.1234); got != "12.34" {
		t.Fatalf("pct = %q", got)
	}
	if avg(nil) != 0 {
		t.Fatal("avg(nil) != 0")
	}
	if got := avg([]time.Duration{time.Second, 3 * time.Second}); got != 2*time.Second {
		t.Fatalf("avg = %v", got)
	}
}

func TestRunFig2(t *testing.T) {
	tbl, err := RunFig2(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 300 {
		t.Fatalf("fig2 rows = %d, want 300", len(tbl.Rows))
	}
	if len(tbl.Header) != 10 {
		t.Fatalf("fig2 header = %v", tbl.Header)
	}
	// Linear means increase over pages.
	first, _ := strconv.ParseFloat(tbl.Rows[0][1], 64)
	last, _ := strconv.ParseFloat(tbl.Rows[299][1], 64)
	if first >= last {
		t.Fatalf("linear means not increasing: %v -> %v", first, last)
	}
}

func TestRunFig3(t *testing.T) {
	tbl, err := RunFig3(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(fig3Ks) {
		t.Fatalf("fig3 rows = %d, want %d", len(tbl.Rows), len(fig3Ks))
	}
	// Index selectivity must grow with k.
	prev := -1.0
	for _, r := range tbl.Rows {
		sel, err := strconv.ParseFloat(r[1], 64)
		if err != nil || sel <= prev {
			t.Fatalf("selectivity column broken: %v (prev %v, err %v)", r, prev, err)
		}
		prev = sel
	}
}

func TestRunFig4(t *testing.T) {
	for _, d := range []string{"sine", "linear", "sparse"} {
		res, err := RunFig4(tinyScale(), d)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if len(res.Table.Rows) != 60 {
			t.Fatalf("%s: rows = %d", d, len(res.Table.Rows))
		}
		if res.AdaptiveTotal <= 0 || res.BaselineTotal <= 0 {
			t.Fatalf("%s: totals %v/%v", d, res.AdaptiveTotal, res.BaselineTotal)
		}
		// Adaptivity shape: the minimum scanned-pages value over the
		// sequence must be well below a full scan.
		minPages := 1 << 30
		for _, r := range res.Table.Rows {
			p, _ := strconv.Atoi(r[3])
			if p < minPages {
				minPages = p
			}
		}
		if minPages >= 1024 {
			t.Fatalf("%s: no query ever used a partial view (min scanned = %d)", d, minPages)
		}
	}
}

// TestRunFig4ScenarioDistributions: the fig4 harness accepts every
// registered distribution, including the scenario generators beyond the
// paper (asvbench fig4d-f), and the adaptive results stay consistent with
// the baseline (runSequence cross-checks count and sum per query).
func TestRunFig4ScenarioDistributions(t *testing.T) {
	for _, d := range []string{"hotspot", "clustered", "shifted", "zipf"} {
		res, err := RunFig4(tinyScale(), d)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if len(res.Table.Rows) != 60 {
			t.Fatalf("%s: rows = %d", d, len(res.Table.Rows))
		}
		if res.AdaptiveTotal <= 0 || res.BaselineTotal <= 0 {
			t.Fatalf("%s: totals %v/%v", d, res.AdaptiveTotal, res.BaselineTotal)
		}
	}
	if _, err := RunFig4(tinyScale(), "no-such-dist"); err == nil {
		t.Fatal("unknown distribution accepted")
	}
}

func TestRunFig5(t *testing.T) {
	// Stitching needs enough queries for overlapping coverage to build up;
	// at 1024 pages that takes a couple hundred queries.
	sc := tinyScale()
	sc.Queries = 250
	res, err := RunFig5(sc, 0.01, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Header[3] != "views_used" {
		t.Fatalf("header: %v", res.Table.Header)
	}
	// At least one late query must use >= 1 partial view without a full
	// scan; and views-used must exceed 1 somewhere once coverage builds
	// (multi-view mode).
	maxViews := 0
	for _, r := range res.Table.Rows {
		v, _ := strconv.Atoi(r[3])
		if v > maxViews {
			maxViews = v
		}
	}
	if maxViews < 2 {
		t.Fatalf("multi-view mode never stitched views (max used = %d)", maxViews)
	}
}

func TestRunFig6(t *testing.T) {
	for _, d := range []string{"uniform", "sine"} {
		tbl, err := RunFig6(tinyScale(), d)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if len(tbl.Rows) != 4 {
			t.Fatalf("%s: rows = %d, want 4 variants", d, len(tbl.Rows))
		}
		// All variants index the same number of pages.
		for _, r := range tbl.Rows[1:] {
			if r[2] != tbl.Rows[0][2] {
				t.Fatalf("%s: page counts differ across variants: %v", d, tbl.Rows)
			}
		}
		// Consecutive mapping must issue fewer mmap calls than unoptimized.
		unopt, _ := strconv.Atoi(tbl.Rows[0][3])
		consec, _ := strconv.Atoi(tbl.Rows[1][3])
		if consec >= unopt {
			t.Fatalf("%s: consecutive used %d calls, unoptimized %d", d, consec, unopt)
		}
	}
	if _, err := RunFig6(tinyScale(), "zipf"); err == nil {
		t.Fatal("unknown distribution accepted")
	}
}

func TestRunFig7(t *testing.T) {
	for _, d := range []string{"uniform", "sine"} {
		tbl, err := RunFig7(tinyScale(), d)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if len(tbl.Rows) != 2 {
			t.Fatalf("%s: rows = %d", d, len(tbl.Rows))
		}
		for _, r := range tbl.Rows {
			lines, _ := strconv.Atoi(r[7])
			if lines == 0 {
				t.Fatalf("%s: maps file empty: %v", d, r)
			}
		}
	}
	if _, err := RunFig7(tinyScale(), "zipf"); err == nil {
		t.Fatal("unknown distribution accepted")
	}
}

func TestRunTable1(t *testing.T) {
	sc := tinyScale()
	sc.Queries = 30
	tbl, err := RunTable1(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("table1 rows = %d, want 5", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		if _, err := strconv.ParseFloat(r[3], 64); err != nil {
			t.Fatalf("speedup column broken: %v", r)
		}
	}
}

func TestRunUpdates(t *testing.T) {
	s := tinyScale()
	if raceEnabled {
		// The panel sweeps real-time measurement windows per cell; with
		// race-slowed flushes a full stream pass dominates. Shorter
		// streams keep the sweep minutes cheaper without changing what
		// is exercised.
		s.MixedUpdates = 200
	}
	tbl, err := RunUpdates(s)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ID != "updates" {
		t.Fatalf("id = %q", tbl.ID)
	}
	wantHeader := []string{"writers", "readers", "batch",
		"single_upds", "sharded_upds", "aligned_pps", "reader_qps", "reader_drop_pct"}
	if len(tbl.Header) != len(wantHeader) {
		t.Fatalf("header %v", tbl.Header)
	}
	for i, h := range wantHeader {
		if tbl.Header[i] != h {
			t.Fatalf("header[%d] = %q, want %q", i, tbl.Header[i], h)
		}
	}
	if len(tbl.Rows) != len(updatesCells()) {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), len(updatesCells()))
	}
	for _, row := range tbl.Rows {
		if len(row) != len(wantHeader) {
			t.Fatalf("row %v: %d cells", row, len(row))
		}
		readers, err := strconv.Atoi(row[1])
		if err != nil {
			t.Fatalf("row %v: bad readers cell", row)
		}
		// Both write-path columns and the aligned-pages rate must be
		// positive in every cell: writers always run, and the narrow
		// pre-created views guarantee page movement.
		for _, idx := range []int{3, 4, 5} {
			v, err := strconv.ParseFloat(row[idx], 64)
			if err != nil || v <= 0 {
				t.Fatalf("row %v: bad rate cell %q (col %d)", row, row[idx], idx)
			}
		}
		qps, err := strconv.ParseFloat(row[6], 64)
		if err != nil {
			t.Fatalf("row %v: bad qps cell", row)
		}
		if readers > 0 && qps <= 0 {
			t.Fatalf("row %v: readers present but no queries measured", row)
		}
		if readers == 0 && qps != 0 {
			t.Fatalf("row %v: phantom reader throughput", row)
		}
		if _, err := strconv.ParseFloat(row[7], 64); err != nil {
			t.Fatalf("row %v: bad drop cell", row)
		}
	}
}

func TestRunConcurrent(t *testing.T) {
	s := tinyScale()
	s.Queries = 24 // split across up to 8 clients
	tbl, err := RunConcurrent(s)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ID != "concurrent" {
		t.Fatalf("id = %q", tbl.ID)
	}
	wantCols := len(concurrentModes()) + 1
	if len(tbl.Header) != wantCols {
		t.Fatalf("header %v, want %d columns", tbl.Header, wantCols)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want one per client count", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row) != wantCols {
			t.Fatalf("row %v: %d cells", row, len(row))
		}
		for _, cell := range row[1:] {
			qps, err := strconv.ParseFloat(cell, 64)
			if err != nil || qps <= 0 {
				t.Fatalf("row %v: bad throughput cell %q", row, cell)
			}
		}
	}
}

func TestRunServe(t *testing.T) {
	s := tinyScale()
	s.Pages = 256
	s.Queries = 24 // split across the 8 closed-loop clients
	tbl, err := RunServe(s)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ID != "serve" {
		t.Fatalf("id = %q", tbl.ID)
	}
	want := []string{"tenants", "shards", "serve_qps", "p50_ms", "lat_ms_p99"}
	if strings.Join(tbl.Header, ",") != strings.Join(want, ",") {
		t.Fatalf("header %v, want %v", tbl.Header, want)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want one per tenants x shards cell", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row) != len(want) {
			t.Fatalf("row %v: %d cells", row, len(row))
		}
		qps, err := strconv.ParseFloat(row[2], 64)
		if err != nil || qps <= 0 {
			t.Fatalf("row %v: bad throughput cell %q", row, row[2])
		}
		p50, err1 := strconv.ParseFloat(row[3], 64)
		p99, err2 := strconv.ParseFloat(row[4], 64)
		if err1 != nil || err2 != nil || p50 < 0 || p99 < p50 {
			t.Fatalf("row %v: inconsistent latency cells", row)
		}
	}
	if tbl.Telemetry == nil {
		t.Fatal("serve panel carries no telemetry snapshot")
	}
}

func TestRunAutopilot(t *testing.T) {
	s := tinyScale()
	if raceEnabled {
		// Same reasoning as TestRunUpdates: the panel sweeps real-time
		// windows per cell; race-slowed alignment makes full streams
		// dominate.
		s.MixedUpdates = 200
	}
	tbl, err := RunAutopilot(s)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ID != "autopilot" {
		t.Fatalf("id = %q", tbl.ID)
	}
	wantHeader := []string{"lat_budget_us", "writers", "readers",
		"lone_upds", "auto_upds", "batch_upds",
		"coalesce_avg", "flush_p50_ms", "flush_p99_ms", "reader_qps"}
	if len(tbl.Header) != len(wantHeader) {
		t.Fatalf("header %v", tbl.Header)
	}
	for i, h := range wantHeader {
		if tbl.Header[i] != h {
			t.Fatalf("header[%d] = %q, want %q", i, tbl.Header[i], h)
		}
	}
	if len(tbl.Rows) != len(autopilotCells()) {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), len(autopilotCells()))
	}
	for _, row := range tbl.Rows {
		if len(row) != len(wantHeader) {
			t.Fatalf("row %v: %d cells", row, len(row))
		}
		readers, err := strconv.Atoi(row[2])
		if err != nil {
			t.Fatalf("row %v: bad readers cell", row)
		}
		// All three write paths and the coalesce average must be
		// positive: writers always run and the autopilot always flushes
		// at least once (the final Sync).
		for _, idx := range []int{3, 4, 5, 6} {
			v, err := strconv.ParseFloat(row[idx], 64)
			if err != nil || v <= 0 {
				t.Fatalf("row %v: bad cell %q (col %d)", row, row[idx], idx)
			}
		}
		p50, err1 := strconv.ParseFloat(row[7], 64)
		p99, err2 := strconv.ParseFloat(row[8], 64)
		if err1 != nil || err2 != nil || p50 < 0 || p99 < p50 {
			t.Fatalf("row %v: latency cells p50=%q p99=%q", row, row[7], row[8])
		}
		qps, err := strconv.ParseFloat(row[9], 64)
		if err != nil {
			t.Fatalf("row %v: bad qps cell", row)
		}
		if readers > 0 && qps <= 0 {
			t.Fatalf("row %v: readers present but no queries measured", row)
		}
		if readers == 0 && qps != 0 {
			t.Fatalf("row %v: phantom reader throughput", row)
		}
	}
}

func TestRunManyViews(t *testing.T) {
	s := tinyScale()
	s.Runs = 1
	tbl, err := RunManyViews(s)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ID != "manyviews" {
		t.Fatalf("id = %q", tbl.ID)
	}
	wantHeader := []string{"views", "create_ms", "state_pub_ms", "firsttouch_qps"}
	for i, h := range wantHeader {
		if tbl.Header[i] != h {
			t.Fatalf("header[%d] = %q, want %q", i, tbl.Header[i], h)
		}
	}
	// Counts above the tiny column's page count are skipped.
	want := 0
	for _, n := range manyViewsCounts {
		if n <= s.Pages {
			want++
		}
	}
	if len(tbl.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), want)
	}
	for _, row := range tbl.Rows {
		for _, idx := range []int{1, 2, 3} {
			v, err := strconv.ParseFloat(row[idx], 64)
			if err != nil || v <= 0 {
				t.Fatalf("row %v: bad cell %q (col %d)", row, row[idx], idx)
			}
		}
	}
}
