package harness

import "fmt"

// RunTable1 reproduces Table 1: the accumulated response time over the
// full query sequence for each of the five §3.2 experiments (Fig. 4a–c
// single-view, Fig. 5a–b multi-view), full scans vs adaptive view
// selection. The paper reports adaptive winning every sequence, by up to
// 1.88x (sparse).
func RunTable1(sc Scale) (*Table, error) {
	type seq struct {
		label string
		run   func() (*SequenceResult, error)
	}
	seqs := []seq{
		{"fig4a_sine", func() (*SequenceResult, error) { return RunFig4(sc, "sine") }},
		{"fig4b_linear", func() (*SequenceResult, error) { return RunFig4(sc, "linear") }},
		{"fig4c_sparse", func() (*SequenceResult, error) { return RunFig4(sc, "sparse") }},
		{"fig5a_sel1", func() (*SequenceResult, error) { return RunFig5(sc, 0.01, 200) }},
		{"fig5b_sel10", func() (*SequenceResult, error) { return RunFig5(sc, 0.10, 20) }},
	}

	t := &Table{
		ID:     "table1",
		Title:  fmt.Sprintf("Accumulated response time over all %d queries", sc.Queries),
		Header: []string{"sequence", "fullscan_s", "adaptive_s", "speedup_x"},
	}
	for _, s := range seqs {
		sc.logf("table1: running %s", s.label)
		res, err := s.run()
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", s.label, err)
		}
		speedup := 0.0
		if res.AdaptiveTotal > 0 {
			speedup = res.BaselineTotal.Seconds() / res.AdaptiveTotal.Seconds()
		}
		t.AddRow(s.label, secs(res.BaselineTotal), secs(res.AdaptiveTotal), f2(speedup))
	}
	return t, nil
}
