package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// The atomicfield analyzer enforces all-or-nothing atomicity on struct
// fields: a field whose address is passed to a sync/atomic function
// anywhere in the module must be accessed through sync/atomic
// everywhere. A single plain load of a field that is concurrently
// atomic.AddUint64'd is a data race the race detector only catches when
// a racing schedule happens to run; this check catches it on every CI
// run. (Fields of the atomic.Int64-style wrapper types are immune by
// construction — the type system already forbids plain access — so the
// analyzer only concerns itself with function-style sync/atomic use.)
//
// The analyzer also knows the obs telemetry instruments: a struct field
// holding a raw obs.Counter / obs.Gauge / obs.Histogram value (directly
// or inside an array/slice) is rejected. Instruments are shared atomics
// behind a handle stored once at construction; a value field forks the
// counts whenever the struct is copied, and the copy compiles fine — the
// instrument's pointer-receiver methods auto-address the field — so only
// a module-wide rule catches the drift.
func runAtomicField(m *Module) []Diagnostic {
	type access struct {
		pos       ast.Node
		pkg       *Package
		fieldName string
	}
	atomicFields := make(map[string]bool) // fieldKey -> seen atomic access
	inAtomicArg := make(map[*ast.SelectorExpr]bool)
	var plains []struct {
		key  string
		sel  *ast.SelectorExpr
		pkg  *Package
		name string
	}

	// Single pass per package: record the &field arguments of
	// sync/atomic calls, then every field selection not among them.
	for _, pkg := range m.pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				f := calleeFunc(pkg.Info, call)
				if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" || len(call.Args) == 0 {
					return true
				}
				addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(addr.X).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if key, ok := fieldKeyOf(pkg, sel); ok {
					atomicFields[key] = true
					inAtomicArg[sel] = true
				}
				return true
			})
		}
	}
	for _, pkg := range m.pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || inAtomicArg[sel] {
					return true
				}
				if key, ok := fieldKeyOf(pkg, sel); ok {
					plains = append(plains, struct {
						key  string
						sel  *ast.SelectorExpr
						pkg  *Package
						name string
					}{key, sel, pkg, sel.Sel.Name})
				}
				return true
			})
		}
	}

	var diags []Diagnostic
	for _, p := range plains {
		if !atomicFields[p.key] {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:      m.fset.Position(p.sel.Pos()),
			Analyzer: "atomicfield",
			Message: fmt.Sprintf("field %s is accessed with sync/atomic elsewhere; this plain access races with it",
				p.key),
		})
	}
	diags = append(diags, rawInstrumentFields(m)...)
	return diags
}

// rawInstrumentFields flags struct fields that hold an obs instrument by
// value. The obs package itself is exempt: it owns the instrument
// internals and its snapshot types are values by design.
func rawInstrumentFields(m *Module) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range m.pkgs {
		if isObsPkgPath(pkg.ImportPath) {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				for _, f := range st.Fields.List {
					inst, ok := rawInstrumentType(pkg.Info.TypeOf(f.Type))
					if !ok {
						continue
					}
					name := inst // embedded field: named after the type
					if len(f.Names) > 0 {
						parts := make([]string, len(f.Names))
						for i, id := range f.Names {
							parts[i] = id.Name
						}
						name = strings.Join(parts, ", ")
					}
					diags = append(diags, Diagnostic{
						Pos:      m.fset.Position(f.Type.Pos()),
						Analyzer: "atomicfield",
						Message: fmt.Sprintf("field %s holds a raw obs.%s value; instrument fields must be pointer handles (*obs.%s) so struct copies cannot fork the counts",
							name, inst, inst),
					})
				}
				return true
			})
		}
	}
	return diags
}

// rawInstrumentType unwraps arrays and slices and reports whether the
// element is a value-typed obs instrument; pointer elements are the
// sanctioned handle form and pass.
func rawInstrumentType(t types.Type) (string, bool) {
	for {
		switch u := t.(type) {
		case *types.Array:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		default:
			named, ok := t.(*types.Named)
			if !ok {
				return "", false
			}
			obj := named.Obj()
			if obj.Pkg() == nil || !isObsPkgPath(obj.Pkg().Path()) {
				return "", false
			}
			switch obj.Name() {
			case "Counter", "Gauge", "Histogram":
				return obj.Name(), true
			}
			return "", false
		}
	}
}

// fieldKeyOf identifies a struct-field selection module-wide as
// "pkg/path.Type.field"; ok is false for non-field selections and
// fields of anonymous struct types.
func fieldKeyOf(pkg *Package, sel *ast.SelectorExpr) (string, bool) {
	selection, ok := pkg.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return "", false
	}
	named := namedOf(selection.Recv())
	if named == nil {
		return "", false
	}
	return typeKey(named) + "." + sel.Sel.Name, true
}
