package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// isObsPkgPath reports whether path names the obs telemetry package
// (import path "obs" or any path ending in "/obs"). The match is by
// suffix so the lint fixture corpus's look-alike package
// (fixture.example/obs) trips the same obs-aware rules the real module
// does.
func isObsPkgPath(path string) bool {
	return path == "obs" || strings.HasSuffix(path, "/obs")
}

// Package is one type-checked module package: the parsed files plus the
// go/types results the analyzers consume.
type Package struct {
	ImportPath string
	Dir        string
	GoFiles    []string // absolute paths, in go list order
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *listError
}

type listError struct {
	Err string
}

// Load lists patterns in dir with the go tool and type-checks every
// matched (non-dependency) package from source. Imports — including
// intra-module ones — resolve through the compiler export data that
// `go list -export` wrote to the build cache, so no package is ever
// type-checked twice and the loader needs nothing outside the standard
// library.
func Load(fset *token.FileSet, dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list -export: %v\n%s", err, errBuf.String())
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(&out)
	for {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	lookup := func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(exp)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := checkPackage(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func checkPackage(fset *token.FileSet, imp types.Importer, t listPkg) (*Package, error) {
	p := &Package{ImportPath: t.ImportPath, Dir: t.Dir}
	for _, name := range t.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(t.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %v", path, err)
		}
		p.GoFiles = append(p.GoFiles, path)
		p.Files = append(p.Files, f)
	}
	p.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tp, err := conf.Check(t.ImportPath, fset, p.Files, p.Info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %v", t.ImportPath, err)
	}
	p.Types = tp
	return p, nil
}

// ModuleDir walks upward from dir to the enclosing go.mod, the root the
// driver should run from. It refuses to escape into a parent module by
// stopping at the first go.mod found.
func ModuleDir(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		d = parent
	}
}

// calleeFunc resolves the called function or method of a call
// expression, or nil for function values, builtins and type
// conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// funcKey is the module-wide identity of a function: types.Func.FullName
// ("pkg/path.Fn" or "(pkg/path.Recv).Fn" / "(*pkg/path.Recv).Fn").
func funcKey(f *types.Func) string { return f.FullName() }

// namedOf unwraps pointers and aliases down to the defined type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// typeKey is the module-wide identity of a defined type: "pkg/path.Name".
func typeKey(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// isErrorType reports whether t is exactly the predeclared error type or
// implements it. Dropped results are checked against the interface, so a
// concrete error-typed result is caught too.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if named := namedOf(t); named != nil && named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
		return true
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errType)
}

// shortPath trims dir prefixes down to a module-relative path for
// diagnostics, keeping output stable across machines.
func shortPath(path, root string) string {
	if root == "" {
		return path
	}
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
