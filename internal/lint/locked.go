package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The locked analyzer enforces the room-lock calling discipline: a
// function that requires a lock mode (annotated //asv:locked=<mode> or
// following the *Locked naming convention) may only be called where
// that mode is held. Modes are established lexically — an acquire call
// (//asv:acquires, or the built-in sync mutex methods) holds from its
// position to the matching release call or the end of the function
// (deferred releases simply extend to the end) — and flow through the
// call graph via the callee annotations: a function annotated
// //asv:locked=exclusive holds "exclusive" throughout its body, since
// every legal caller already held it.
//
// Two more checks ride on the same mode intervals: blocking operations
// while the exclusive room is held (channel sends/receives/selects,
// ranging over a channel, time.Sleep, sync.Cond.Wait,
// sync.WaitGroup.Wait, and calls to methods named Sync — everything
// that can stall every reader and writer behind the closed room), and
// nested room acquisition (entering any room while a room is held,
// which self-deadlocks a non-reentrant room lock).
//
// Function literals inherit the modes held at their lexical position:
// the engine's fan-out idiom launches workers and waits while the
// coordinator keeps the exclusive room, so the workers do run under the
// mode in effect where they appear. A literal that truly escapes the
// critical section needs an //asv:allow=locked line with the reason.
func runLocked(m *Module) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range m.pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				diags = append(diags, m.checkLockedFunc(pkg, fd)...)
			}
		}
	}
	return diags
}

type lockEvent struct {
	pos   token.Pos
	mode  string
	delta int
	// end caps the event's lexical effect: an event inside an if-branch
	// that terminates the function (early-return unlock, lock-fail-return)
	// is invisible to positions past the branch — that path never falls
	// through to them. NoPos means the effect runs to the function end.
	end token.Pos
}

func isRoomMode(mode string) bool {
	return mode == modeScan || mode == modeUpdate || mode == modeExclusive
}

// satisfies reports whether the held mode set meets a requirement.
// Exclusive satisfies the shared room modes (sole occupancy subsumes
// them); the generic modes are strict: "mu" needs a mutex, "any" needs
// something, and neither is implied by the other.
func satisfies(held map[string]bool, req string) bool {
	switch req {
	case modeAny:
		return len(held) > 0
	case modeMu:
		return held[modeMu]
	default:
		return held[req] || held[modeExclusive]
	}
}

func (m *Module) checkLockedFunc(pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	base := make(map[string]bool)
	if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
		switch req := m.requirementOf(obj); req {
		case "":
		case modeAny:
			base[modeAny] = true
		default:
			base[req] = true
		}
	}

	// Collect acquire/release events in source order. Deferred calls are
	// skipped: a deferred release runs at return, so the acquired mode
	// simply extends to the end of the function. Events inside an
	// if-branch that ends in return or panic are capped at the branch
	// end — the early-exit idiom (`if done { mu.Unlock(); return }`)
	// must not leak its unlock onto the fall-through path.
	var events []lockEvent
	var collect func(n ast.Node, end token.Pos)
	collect = func(n ast.Node, end token.Pos) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch nn := x.(type) {
			case *ast.DeferStmt:
				return false
			case *ast.IfStmt:
				if nn.Init != nil {
					collect(nn.Init, end)
				}
				collect(nn.Cond, end)
				bodyEnd := end
				if terminates(nn.Body) {
					bodyEnd = nn.Body.End()
				}
				collect(nn.Body, bodyEnd)
				if nn.Else != nil {
					elseEnd := end
					if b, ok := nn.Else.(*ast.BlockStmt); ok && terminates(b) {
						elseEnd = b.End()
					}
					collect(nn.Else, elseEnd)
				}
				return false
			case *ast.CallExpr:
				if f := calleeFunc(pkg.Info, nn); f != nil {
					facts := m.factsOf(f)
					if facts.acquires != "" {
						events = append(events, lockEvent{nn.Pos(), facts.acquires, +1, end})
					}
					if facts.releases != "" {
						events = append(events, lockEvent{nn.Pos(), facts.releases, -1, end})
					}
				}
			}
			return true
		})
	}
	collect(fd.Body, token.NoPos)
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	heldAt := func(p token.Pos) map[string]bool {
		held := make(map[string]bool, len(base)+2)
		for mode := range base {
			held[mode] = true
		}
		counts := make(map[string]int)
		for _, e := range events {
			if e.pos >= p {
				break
			}
			if e.end != token.NoPos && p >= e.end {
				continue
			}
			counts[e.mode] += e.delta
		}
		for mode, c := range counts {
			if c > 0 {
				held[mode] = true
			}
		}
		return held
	}
	exclusiveAt := func(p token.Pos) bool { return heldAt(p)[modeExclusive] }

	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:      m.fset.Position(pos),
			Analyzer: "locked",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	blockDiag := func(pos token.Pos, what string) {
		if exclusiveAt(pos) {
			report(pos, "%s while the exclusive room is held blocks every reader and writer", what)
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.CallExpr:
			f := calleeFunc(pkg.Info, nn)
			if f == nil {
				return true
			}
			if req := m.requirementOf(f); req != "" {
				if held := heldAt(nn.Pos()); !satisfies(held, req) {
					report(nn.Pos(), "call to %s requires lock mode %q, but %s holds %s",
						f.Name(), req, fd.Name.Name, heldSetString(held))
				}
			}
			facts := m.factsOf(f)
			if isRoomMode(facts.acquires) {
				held := heldAt(nn.Pos())
				if held[modeScan] || held[modeUpdate] || held[modeExclusive] {
					report(nn.Pos(), "acquiring the %s room while a room is already held self-deadlocks the room lock", facts.acquires)
				}
			}
			if isBlockingCall(f) {
				blockDiag(nn.Pos(), "calling "+f.Name())
			}
		case *ast.SendStmt:
			blockDiag(nn.Pos(), "channel send")
		case *ast.UnaryExpr:
			if nn.Op == token.ARROW {
				blockDiag(nn.Pos(), "channel receive")
			}
		case *ast.SelectStmt:
			blockDiag(nn.Pos(), "select")
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[nn.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					blockDiag(nn.Pos(), "ranging over a channel")
				}
			}
		}
		return true
	})
	return diags
}

// terminates reports whether a block's last statement exits the
// function: a return, or a call to panic. Branch statements (break,
// continue, goto) are deliberately not counted — a continue re-enters
// the loop, where a lexically later position is reachable again.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// isBlockingCall reports calls that can stall indefinitely and must not
// run while the exclusive room is held.
func isBlockingCall(f *types.Func) bool {
	switch f.FullName() {
	case "time.Sleep", "(*sync.Cond).Wait", "(*sync.WaitGroup).Wait":
		return true
	}
	return f.Name() == "Sync"
}

func heldSetString(held map[string]bool) string {
	if len(held) == 0 {
		return "no lock"
	}
	modes := make([]string, 0, len(held))
	for mode := range held {
		modes = append(modes, mode)
	}
	sort.Strings(modes)
	return strings.Join(modes, "+")
}
