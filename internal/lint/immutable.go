package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// The immutable analyzer enforces immutable-after-publish: a field of a
// type annotated //asv:immutable may only be assigned in the file that
// declares the type — the constructor file, where the value is built
// before it becomes visible to other goroutines. Everywhere else, a
// field assignment (or ++/--) is a write to state a concurrent reader
// may already be routing through, and is reported.
//
// The check is field-assignment granular: mutating methods called on a
// field's value, or writes through a pointer stored in a field, are out
// of scope (and out of idiom for the annotated types).
func runImmutable(m *Module) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range m.pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch nn := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range nn.Lhs {
						diags = m.checkImmutableWrite(pkg, lhs, diags)
					}
				case *ast.IncDecStmt:
					diags = m.checkImmutableWrite(pkg, nn.X, diags)
				}
				return true
			})
		}
	}
	return diags
}

func (m *Module) checkImmutableWrite(pkg *Package, lhs ast.Expr, diags []Diagnostic) []Diagnostic {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return diags
	}
	selection, ok := pkg.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return diags
	}
	named := namedOf(selection.Recv())
	if named == nil {
		return diags
	}
	declFile, annotated := m.immutable[typeKey(named)]
	if !annotated {
		return diags
	}
	pos := m.fset.Position(sel.Pos())
	if pos.Filename == declFile {
		return diags
	}
	return append(diags, Diagnostic{
		Pos:      pos,
		Analyzer: "immutable",
		Message: fmt.Sprintf("%s.%s is a field of immutable type %s and may only be assigned in %s",
			named.Obj().Name(), sel.Sel.Name, named.Obj().Name(), shortPath(declFile, m.root)),
	})
}
