package lint

import (
	"go/token"
)

// AnalyzerNames are the five analyzers in the suite, in the order they
// run. The self-test asserts every one of them fires on its seeded
// fixture, so a silently dead analyzer fails CI like a violation.
var AnalyzerNames = []string{"locked", "immutable", "paired", "atomicfield", "droppederr"}

type analyzerFunc func(*Module) []Diagnostic

var analyzerFuncs = map[string]analyzerFunc{
	"locked":      runLocked,
	"immutable":   runImmutable,
	"paired":      runPaired,
	"atomicfield": runAtomicField,
	"droppederr":  runDroppedErr,
}

// Run loads the packages matched by patterns (relative to dir), builds
// the module-wide directive index, runs all five analyzers, applies
// //asv:allow suppressions, and returns the surviving findings with
// module-relative positions, deterministically ordered.
func Run(dir string, patterns []string) ([]Diagnostic, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := ModuleDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	pkgs, err := Load(fset, dir, patterns...)
	if err != nil {
		return nil, err
	}
	m := buildModule(fset, pkgs, root)

	diags := append([]Diagnostic(nil), m.diags...)
	for _, name := range AnalyzerNames {
		diags = append(diags, analyzerFuncs[name](m)...)
	}

	kept := diags[:0]
	for _, d := range diags {
		if m.lines.allowed(d.Analyzer, d.Pos) {
			continue
		}
		kept = append(kept, d)
	}
	diags = kept

	for i := range diags {
		diags[i].Pos.Filename = shortPath(diags[i].Pos.Filename, root)
	}
	sortDiags(diags)
	return diags, nil
}
