// Package lint is asvlint's driver and analyzer suite: five
// project-specific static analyzers that machine-check the concurrency
// and resource invariants the engine's correctness depends on but no
// compiler enforces.
//
// The analyzers:
//
//   - locked: a function whose name ends in "Locked", or that carries an
//     //asv:locked=<mode> directive, may only be called while the caller
//     holds that lock mode. Room modes (scan, update, exclusive)
//     propagate from the roomLock acquire sites (annotated
//     //asv:acquires=<mode>); the generic mode "mu" is established by
//     sync.Mutex/sync.RWMutex Lock calls. The analyzer also flags
//     blocking operations — channel sends/receives/selects, time.Sleep,
//     sync.Cond.Wait, sync.WaitGroup.Wait, and calls to methods named
//     Sync — made while the exclusive room is held, and nested room
//     acquisition (taking a room while a room is already held).
//
//   - immutable: a type annotated //asv:immutable rejects field
//     assignments outside the file that declares it (the constructor
//     file). Published engineState, viewset capture entries and
//     ViewSpec stay immutable-after-publish by machine check instead of
//     by convention.
//
//   - paired: a flow-insensitive escape check that a function which
//     acquires a refcounted or allocated resource (view Retain,
//     CaptureSnapshot, frame allocation, Snapshot handles) also
//     releases it (Release, FreeFrame, Close, ReleaseViews) somewhere
//     in the same function, or explicitly transfers ownership with an
//     //asv:handoff line directive. Snapshot methods of the obs
//     telemetry package are exempt: they return plain value copies,
//     not handles.
//
//   - atomicfield: a struct field accessed through a sync/atomic
//     function anywhere in the module must be accessed atomically
//     everywhere — a single plain read of a field that is elsewhere
//     atomic.AddUint64'd is a data race the race detector only catches
//     probabilistically. The analyzer also rejects struct fields that
//     hold an obs telemetry instrument (Counter, Gauge, Histogram) by
//     value: instruments are shared atomics behind pointer handles
//     stored once at construction, and a value field silently forks
//     the counts whenever the struct is copied.
//
//   - droppederr: an error result discarded by assigning it to the
//     blank identifier requires an //asv:ignore-err <reason> directive;
//     the reason documents why dropping is safe.
//
// The driver is zero-dependency: it loads packages with stdlib
// go/parser + go/types, resolving imports through compiler export data
// produced by "go list -export -json -deps" (no golang.org/x/tools
// import, preserving the module's zero-dep guarantee). Test files are
// outside its scope — it analyzes exactly the GoFiles the compiler
// builds.
//
// Directive grammar (all are //-comments with no space after //, so
// gofmt treats them as directives):
//
//	//asv:locked=scan|update|exclusive|mu|any   (func doc) caller must hold the mode
//	//asv:acquires=scan|update|exclusive|mu     (func doc) calling this acquires the mode
//	//asv:releases=scan|update|exclusive|mu     (func doc) calling this releases the mode
//	//asv:immutable                             (type doc) fields writable only in declaring file
//	//asv:handoff <reason>                      (line) resource ownership transfers; paired check stops
//	//asv:ignore-err <reason>                   (line) discarded error is intentional
//	//asv:allow=<analyzer> <reason>             (line) suppress one analyzer's finding on this line
//
// Line directives attach to their own line and the line directly
// below, so both trailing comments and a comment line above the
// statement work. Malformed or unknown //asv: directives are
// themselves findings (analyzer "directive"), so a typo can't silently
// disable a check.
package lint
