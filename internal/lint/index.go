package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// funcFacts are the lock-discipline facts attached to one function:
// what its callers must hold, and what calling it acquires or releases.
type funcFacts struct {
	requires string
	acquires string
	releases string
}

// Module is the fully-loaded analysis unit: every type-checked package
// plus the module-wide directive index the analyzers consult. Building
// it is two passes — a comment scan that collects line directives and
// reports malformed ones, then a declaration walk that binds doc
// directives to their function/type objects.
type Module struct {
	fset *token.FileSet
	pkgs []*Package
	root string

	funcs     map[string]funcFacts // funcKey -> facts
	immutable map[string]string    // typeKey -> declaring filename
	lines     *lineDirectives
	pkgPaths  map[string]bool // import paths loaded from source

	diags []Diagnostic // directive findings (malformed, misplaced)
}

func buildModule(fset *token.FileSet, pkgs []*Package, root string) *Module {
	m := &Module{
		fset:      fset,
		pkgs:      pkgs,
		root:      root,
		funcs:     make(map[string]funcFacts),
		immutable: make(map[string]string),
		lines:     newLineDirectives(),
		pkgPaths:  make(map[string]bool),
	}
	// Lock facts the analyzers know without annotations: the standard
	// mutexes establish the generic "mu" mode.
	for _, recv := range []string{"(*sync.Mutex)", "(*sync.RWMutex)"} {
		m.funcs[recv+".Lock"] = funcFacts{acquires: modeMu}
		m.funcs[recv+".Unlock"] = funcFacts{releases: modeMu}
	}
	m.funcs["(*sync.RWMutex).RLock"] = funcFacts{acquires: modeMu}
	m.funcs["(*sync.RWMutex).RUnlock"] = funcFacts{releases: modeMu}

	// Pass 1: every comment in every file. Line directives register for
	// lookup; malformed //asv: comments become findings; well-formed
	// declaration-scoped directives are remembered so pass 2 can detect
	// ones that failed to attach to a declaration.
	declScoped := make(map[string]directive) // "file:line:col" -> directive
	for _, pkg := range pkgs {
		m.pkgPaths[pkg.ImportPath] = true
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					pos := fset.Position(c.Pos())
					d, ok, err := parseDirective(c, pos)
					if !ok {
						continue
					}
					if err != nil {
						m.diags = append(m.diags, Diagnostic{Pos: pos, Analyzer: "directive", Message: err.Error()})
						continue
					}
					switch d.name {
					case "handoff", "ignore-err", "allow":
						m.lines.add(d)
					default:
						declScoped[posKey(pos)] = d
					}
				}
			}
		}
	}

	// Pass 2: bind doc directives to declarations.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch dd := decl.(type) {
				case *ast.FuncDecl:
					m.bindFuncDirectives(pkg, dd, declScoped)
				case *ast.GenDecl:
					if dd.Tok == token.TYPE {
						m.bindTypeDirectives(pkg, dd, declScoped)
					}
				}
			}
		}
	}

	// Anything left in declScoped was a declaration-scoped directive
	// that no declaration's doc comment consumed — a blank line between
	// the comment and the decl, or a directive on a statement. That is
	// an invariant silently not being checked: report it.
	for _, d := range declScoped {
		m.diags = append(m.diags, Diagnostic{
			Pos:      d.pos,
			Analyzer: "directive",
			Message:  fmt.Sprintf("asv:%s is not attached to a declaration (it must be part of the doc comment)", d.name),
		})
	}
	return m
}

func posKey(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}

func (m *Module) bindFuncDirectives(pkg *Package, fd *ast.FuncDecl, declScoped map[string]directive) {
	obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	for _, d := range docDirectives(m.fset, fd.Doc, func(directive, error) {}) {
		switch d.name {
		case "locked", "acquires", "releases":
			delete(declScoped, posKey(d.pos))
			if obj == nil {
				continue
			}
			facts := m.funcs[funcKey(obj)]
			switch d.name {
			case "locked":
				facts.requires = d.arg
			case "acquires":
				facts.acquires = d.arg
			case "releases":
				facts.releases = d.arg
			}
			m.funcs[funcKey(obj)] = facts
		case "immutable":
			m.diags = append(m.diags, Diagnostic{
				Pos:      d.pos,
				Analyzer: "directive",
				Message:  "asv:immutable applies to type declarations, not functions",
			})
			delete(declScoped, posKey(d.pos))
		}
	}
}

func (m *Module) bindTypeDirectives(pkg *Package, gd *ast.GenDecl, declScoped map[string]directive) {
	for _, spec := range gd.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		doc := ts.Doc
		if doc == nil {
			doc = gd.Doc
		}
		for _, d := range docDirectives(m.fset, doc, func(directive, error) {}) {
			if d.name != "immutable" {
				if d.name == "locked" || d.name == "acquires" || d.name == "releases" {
					m.diags = append(m.diags, Diagnostic{
						Pos:      d.pos,
						Analyzer: "directive",
						Message:  fmt.Sprintf("asv:%s applies to function declarations, not types", d.name),
					})
					delete(declScoped, posKey(d.pos))
				}
				continue
			}
			delete(declScoped, posKey(d.pos))
			if obj, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
				key := pkg.Types.Path() + "." + obj.Name()
				m.immutable[key] = m.fset.Position(ts.Pos()).Filename
			}
		}
	}
}

// factsOf returns the lock facts for a resolved function, whether it
// was annotated in source or is one of the built-in mutex methods.
func (m *Module) factsOf(obj types.Object) funcFacts {
	f, ok := obj.(*types.Func)
	if !ok || f == nil {
		return funcFacts{}
	}
	return m.funcs[funcKey(f)]
}

// requirementOf returns the lock mode callers of f must hold: the
// explicit annotation when present, else modeAny for module functions
// following the *Locked naming convention.
func (m *Module) requirementOf(f *types.Func) string {
	if facts, ok := m.funcs[funcKey(f)]; ok && facts.requires != "" {
		return facts.requires
	}
	if strings.HasSuffix(f.Name(), "Locked") && f.Pkg() != nil && m.pkgPaths[f.Pkg().Path()] {
		return modeAny
	}
	return ""
}
