package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// acquireReleasePairs names the module's refcount/allocation protocols:
// a call to an acquire method obligates the calling function to either
// call one of the matching release methods somewhere in its body
// (deferred or not — the check is flow-insensitive by design, so any
// release on any path counts) or to carry an //asv:handoff line
// directive stating that ownership transfers (stored in a struct,
// returned to the caller, parked for a later reclaim walk).
//
// The names are method names, not full symbols, on purpose: every
// Retain in the module follows the same protocol, and the fixture
// corpus exercises the analyzer without importing engine internals.
var acquireReleasePairs = map[string][]string{
	"Retain":          {"Release"},
	"CaptureSnapshot": {"FreeFrame"},
	"allocFrame":      {"freeFrame", "FreeFrame"},
	"AllocFrame":      {"FreeFrame", "freeFrame"},
	"Snapshot":        {"Close", "ReleaseViews"},
}

func runPaired(m *Module) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range m.pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				diags = append(diags, m.checkPairedFunc(pkg, fd)...)
			}
		}
	}
	return diags
}

func (m *Module) checkPairedFunc(pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	// One flow-insensitive pass: every callee name present in the body,
	// plus the acquire call sites to check.
	present := make(map[string]bool)
	type acquireSite struct {
		call *ast.CallExpr
		name string
	}
	var acquires []acquireSite
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(pkg.Info, call)
		if f == nil {
			return true
		}
		present[f.Name()] = true
		if _, isAcquire := acquireReleasePairs[f.Name()]; isAcquire && !obsSnapshotFunc(f) {
			acquires = append(acquires, acquireSite{call, f.Name()})
		}
		return true
	})

	var diags []Diagnostic
	for _, a := range acquires {
		released := false
		for _, rel := range acquireReleasePairs[a.name] {
			if present[rel] {
				released = true
				break
			}
		}
		if released {
			continue
		}
		pos := m.fset.Position(a.call.Pos())
		if m.lines.handoffAt(pos) {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:      pos,
			Analyzer: "paired",
			Message: fmt.Sprintf("%s acquires via %s but never calls %s; release on every path or annotate the transfer with //asv:handoff",
				fd.Name.Name, a.name, orList(acquireReleasePairs[a.name])),
		})
	}
	return diags
}

// obsSnapshotFunc reports whether f is declared in the obs telemetry
// package. obs Snapshot methods return plain value copies of lock-free
// instruments — there is no handle to release — so the viewset Snapshot
// protocol does not apply to them.
func obsSnapshotFunc(f *types.Func) bool {
	pkg := f.Pkg()
	return pkg != nil && isObsPkgPath(pkg.Path())
}

func orList(names []string) string {
	switch len(names) {
	case 0:
		return ""
	case 1:
		return names[0]
	default:
		out := names[0]
		for _, n := range names[1 : len(names)-1] {
			out += ", " + n
		}
		return out + " or " + names[len(names)-1]
	}
}
