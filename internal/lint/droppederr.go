package lint

import (
	"go/ast"
	"go/types"
)

// The droppederr analyzer finds error results discarded by assigning
// them to the blank identifier — `_ = col.Close()`, `n, _ := w.Write(p)`
// — and requires each to carry an //asv:ignore-err <reason> directive.
// The reason is the point: "best-effort teardown, error surfaced via
// Stats.RetireErrors" is reviewable; a bare `_ =` is indistinguishable
// from a forgotten check.
func runDroppedErr(m *Module) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range m.pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				assign, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				diags = append(diags, m.checkDroppedErr(pkg, assign)...)
				return true
			})
		}
	}
	return diags
}

func (m *Module) checkDroppedErr(pkg *Package, assign *ast.AssignStmt) []Diagnostic {
	var diags []Diagnostic
	report := func(lhs ast.Expr) {
		pos := m.fset.Position(lhs.Pos())
		if m.lines.ignoreErrAt(pos) {
			return
		}
		diags = append(diags, Diagnostic{
			Pos:      pos,
			Analyzer: "droppederr",
			Message:  "error result discarded; handle it or annotate //asv:ignore-err <reason>",
		})
	}

	if len(assign.Rhs) == 1 && len(assign.Lhs) > 1 {
		// Multi-value call: a, _ := f().
		tv, ok := pkg.Info.Types[assign.Rhs[0]]
		if !ok {
			return nil
		}
		tuple, ok := tv.Type.(*types.Tuple)
		if !ok {
			return nil
		}
		for i, lhs := range assign.Lhs {
			if isBlank(lhs) && i < tuple.Len() && isErrorType(tuple.At(i).Type()) {
				report(lhs)
			}
		}
		return diags
	}
	for i, lhs := range assign.Lhs {
		if !isBlank(lhs) || i >= len(assign.Rhs) {
			continue
		}
		tv, ok := pkg.Info.Types[assign.Rhs[i]]
		if !ok || tv.Type == nil {
			continue
		}
		if isErrorType(tv.Type) {
			report(lhs)
		}
	}
	return diags
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
