package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one finding: a position, the analyzer that produced it,
// and a message. String renders the stable "file:line:col: [analyzer]
// message" form the self-test corpus matches against.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// sortDiags orders findings by file, line, column, then analyzer, so
// output (and the golden corpus) is deterministic.
func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
