package lint

import (
	"bufio"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// SelfTest runs the whole suite over the seeded-violation corpus in
// testdataSrc (a self-contained fixture module) and verifies two
// things: every diagnostic the suite emits is expected by a
// `// want "regexp"` comment on that exact line, and every one of the
// five analyzers fired at least once. A silently dead analyzer —
// refactored into not matching anything — therefore fails exactly the
// way a real violation does.
func SelfTest(testdataSrc string) error {
	if _, err := os.Stat(filepath.Join(testdataSrc, "go.mod")); err != nil {
		return fmt.Errorf("selftest: fixture module not found at %s: %v", testdataSrc, err)
	}
	diags, err := Run(testdataSrc, []string{"./..."})
	if err != nil {
		return fmt.Errorf("selftest: %v", err)
	}
	wants, err := collectWants(testdataSrc)
	if err != nil {
		return err
	}

	fired := make(map[string]bool)
	var problems []string
	for _, d := range diags {
		fired[d.Analyzer] = true
		key := lineKey(filepath.ToSlash(d.Pos.Filename), d.Pos.Line)
		matched := false
		got := fmt.Sprintf("[%s] %s", d.Analyzer, d.Message)
		for i, w := range wants[key] {
			if w != nil && w.MatchString(got) {
				wants[key][i] = nil
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if w != nil {
				problems = append(problems, fmt.Sprintf("%s: expected diagnostic matching %q never reported", k, w))
			}
		}
	}
	for _, name := range AnalyzerNames {
		if !fired[name] {
			problems = append(problems, fmt.Sprintf("analyzer %q never fired on its seeded fixture", name))
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("selftest failed:\n  %s", strings.Join(problems, "\n  "))
	}
	return nil
}

var (
	wantLineRe = regexp.MustCompile(`//\s*want\s+(.+)$`)
	// A want argument is one regexp, backtick- or double-quoted.
	wantArgRe = regexp.MustCompile("`([^`]+)`|\"((?:[^\"\\\\]|\\\\.)+)\"")
)

// collectWants scans every fixture .go file for `// want "re"` comments,
// keyed by module-relative "file:line".
func collectWants(root string) (map[string][]*regexp.Regexp, error) {
	wants := make(map[string][]*regexp.Regexp)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			mm := wantLineRe.FindStringSubmatch(sc.Text())
			if mm == nil {
				continue
			}
			for _, arg := range wantArgRe.FindAllStringSubmatch(mm[1], -1) {
				pat := arg[1]
				if pat == "" {
					pat = arg[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return fmt.Errorf("%s:%d: bad want pattern %q: %v", rel, line, pat, err)
				}
				key := lineKey(rel, line)
				wants[key] = append(wants[key], re)
			}
		}
		return sc.Err()
	})
	if err != nil {
		return nil, err
	}
	return wants, nil
}
