package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Lock modes, ordered by what they exclude. Room modes come from the
// engine's roomLock; "mu" is any sync.Mutex/RWMutex; "any" means "some
// recognized lock" without naming which.
const (
	modeScan      = "scan"
	modeUpdate    = "update"
	modeExclusive = "exclusive"
	modeMu        = "mu"
	modeAny       = "any"
)

func validRequireMode(m string) bool {
	switch m {
	case modeScan, modeUpdate, modeExclusive, modeMu, modeAny:
		return true
	}
	return false
}

func validAcquireMode(m string) bool {
	switch m {
	case modeScan, modeUpdate, modeExclusive, modeMu:
		return true
	}
	return false
}

// directive is one parsed //asv: comment.
type directive struct {
	name string // "locked", "acquires", "releases", "immutable", "handoff", "ignore-err", "allow"
	arg  string // the =value for locked/acquires/releases/allow
	text string // free-text tail (reason)
	pos  token.Position
}

// parseDirective splits a comment's text; ok is false for comments that
// are not //asv: directives at all. Malformed directives (unknown name,
// bad mode, missing reason) are reported by the caller as "directive"
// findings so a typo cannot silently disable a check.
func parseDirective(c *ast.Comment, pos token.Position) (d directive, ok bool, err error) {
	text := c.Text
	if !strings.HasPrefix(text, "//asv:") {
		return d, false, nil
	}
	body := strings.TrimPrefix(text, "//asv:")
	head, tail, _ := strings.Cut(body, " ")
	name, arg, hasArg := strings.Cut(head, "=")
	d = directive{name: name, arg: arg, text: strings.TrimSpace(tail), pos: pos}
	switch name {
	case "locked":
		if !hasArg || !validRequireMode(arg) {
			return d, true, fmt.Errorf("asv:locked needs =scan|update|exclusive|mu|any, got %q", body)
		}
	case "acquires", "releases":
		if !hasArg || !validAcquireMode(arg) {
			return d, true, fmt.Errorf("asv:%s needs =scan|update|exclusive|mu, got %q", name, body)
		}
	case "immutable":
		if hasArg {
			return d, true, fmt.Errorf("asv:immutable takes no =argument, got %q", body)
		}
	case "handoff", "ignore-err":
		if d.text == "" {
			return d, true, fmt.Errorf("asv:%s needs a reason, got %q", name, body)
		}
	case "allow":
		if !hasArg || arg == "" {
			return d, true, fmt.Errorf("asv:allow needs =<analyzer>, got %q", body)
		}
		if d.text == "" {
			return d, true, fmt.Errorf("asv:allow=%s needs a reason, got %q", arg, body)
		}
	default:
		return d, true, fmt.Errorf("unknown directive asv:%s", name)
	}
	return d, true, nil
}

// lineKey identifies a single source line for line-directive lookup.
func lineKey(file string, line int) string {
	return fmt.Sprintf("%s:%d", file, line)
}

// lineDirectives maps "file:line" to the directives attached to that
// line. A directive attaches to its own line (trailing comment) and to
// the line directly below (comment line above a statement).
type lineDirectives struct {
	handoff   map[string]bool
	ignoreErr map[string]bool
	allow     map[string]map[string]bool // line -> analyzer set
}

func newLineDirectives() *lineDirectives {
	return &lineDirectives{
		handoff:   make(map[string]bool),
		ignoreErr: make(map[string]bool),
		allow:     make(map[string]map[string]bool),
	}
}

func (ld *lineDirectives) add(d directive) {
	for _, line := range []int{d.pos.Line, d.pos.Line + 1} {
		key := lineKey(d.pos.Filename, line)
		switch d.name {
		case "handoff":
			ld.handoff[key] = true
		case "ignore-err":
			ld.ignoreErr[key] = true
		case "allow":
			if ld.allow[key] == nil {
				ld.allow[key] = make(map[string]bool)
			}
			ld.allow[key][d.arg] = true
		}
	}
}

func (ld *lineDirectives) handoffAt(pos token.Position) bool {
	return ld.handoff[lineKey(pos.Filename, pos.Line)]
}

func (ld *lineDirectives) ignoreErrAt(pos token.Position) bool {
	return ld.ignoreErr[lineKey(pos.Filename, pos.Line)]
}

func (ld *lineDirectives) allowed(analyzer string, pos token.Position) bool {
	return ld.allow[lineKey(pos.Filename, pos.Line)][analyzer]
}

// docDirectives extracts the //asv: directives from a declaration's doc
// comment group.
func docDirectives(fset *token.FileSet, doc *ast.CommentGroup, report func(directive, error)) []directive {
	if doc == nil {
		return nil
	}
	var out []directive
	for _, c := range doc.List {
		d, ok, err := parseDirective(c, fset.Position(c.Pos()))
		if !ok {
			continue
		}
		if err != nil {
			report(d, err)
			continue
		}
		out = append(out, d)
	}
	return out
}
