// Package pairedclean exercises the paired analyzer's legal idioms:
// deferred release, release on the error path, and explicit ownership
// handoff.
package pairedclean

import "errors"

type handle struct{ refs int }

func (h *handle) Retain() {
	h.refs++
}

func (h *handle) Release() error {
	h.refs--
	return nil
}

var errBoom = errors.New("boom")

var registry []*handle

func deferred(h *handle, fail bool) error {
	h.Retain()
	defer func() {
		_ = h.Release() //asv:ignore-err fixture teardown; refcount cannot fail
	}()
	if fail {
		return errBoom
	}
	return nil
}

func stash(h *handle) {
	h.Retain() //asv:handoff ownership moves to the package registry until shutdown
	registry = append(registry, h)
}
