// Package lockedclean exercises the locked analyzer's legal idioms:
// acquire-then-call, deferred release, mode propagation through an
// annotated caller, and blocking work done outside the room.
package lockedclean

import "time"

type room struct{ held bool }

// Lock enters the exclusive room.
//
//asv:acquires=exclusive
func (r *room) Lock() { r.held = true }

// Unlock leaves the exclusive room.
//
//asv:releases=exclusive
func (r *room) Unlock() { r.held = false }

// publishLocked must run under the exclusive room.
//
//asv:locked=exclusive
func (r *room) publishLocked() {}

// maintainLocked holds exclusive by contract, so it may call the other
// helper without acquiring anything itself.
//
//asv:locked=exclusive
func (r *room) maintainLocked() { r.publishLocked() }

func direct(r *room) {
	r.Lock()
	defer r.Unlock()
	r.publishLocked()
	r.maintainLocked()
}

func outside(r *room, ch chan int) {
	r.Lock()
	r.publishLocked()
	r.Unlock()
	<-ch
	time.Sleep(time.Millisecond)
}

// earlyReturn is the early-exit idiom: the unlock inside the
// terminating branch must not leak onto the fall-through path, where
// the room is still held.
func earlyReturn(r *room, done bool) {
	r.Lock()
	if done {
		r.Unlock()
		return
	}
	r.publishLocked()
	r.Unlock()
}
