// Package atomicclean exercises the atomicfield analyzer's legal
// idiom: every access to the shared field goes through sync/atomic.
package atomicclean

import "sync/atomic"

type counters struct {
	queries uint64
}

func (c *counters) bump() {
	atomic.AddUint64(&c.queries, 1)
}

func (c *counters) read() uint64 {
	return atomic.LoadUint64(&c.queries)
}
