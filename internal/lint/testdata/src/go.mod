module fixture.example

go 1.24
