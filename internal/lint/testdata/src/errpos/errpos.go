// Package errpos seeds violations for the droppederr analyzer: error
// results assigned to the blank identifier without a reason.
package errpos

import "errors"

func fails() error {
	return errors.New("nope")
}

func twoVals() (int, error) {
	return 0, errors.New("nope")
}

func drop() int {
	_ = fails()       // want `\[droppederr\] error result discarded`
	n, _ := twoVals() // want `\[droppederr\] error result discarded`
	return n
}
