package immutablepos

func mutate() *state {
	s := newState(1)
	s.gen = 7 // want `\[immutable\] state.gen is a field of immutable type state`
	s.gen++   // want `\[immutable\] state.gen is a field of immutable type state`
	return s
}
