// Package immutablepos seeds a violation for the immutable analyzer: a
// field write to an //asv:immutable type outside its declaring file.
package immutablepos

// state is published immutable-after-construction.
//
//asv:immutable
type state struct {
	gen  uint64
	tags []string
}

// newState is the constructor; field writes in this file are legal.
func newState(gen uint64) *state {
	s := &state{tags: nil}
	s.gen = gen
	return s
}
