// Package atomicpos seeds a violation for the atomicfield analyzer: a
// field updated through sync/atomic in one method and read plainly in
// another.
package atomicpos

import "sync/atomic"

type counters struct {
	queries uint64
}

func (c *counters) bump() {
	atomic.AddUint64(&c.queries, 1)
}

func (c *counters) read() uint64 {
	return c.queries // want `\[atomicfield\] field fixture.example/atomicpos.counters.queries is accessed with sync/atomic elsewhere`
}
