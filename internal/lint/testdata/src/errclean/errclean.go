// Package errclean exercises the droppederr analyzer's legal idioms:
// handled errors and annotated intentional drops.
package errclean

import "errors"

func fails() error {
	return errors.New("nope")
}

func handled() error {
	if err := fails(); err != nil {
		return err
	}
	_ = fails() //asv:ignore-err fixture: the second failure is expected and uninteresting
	return nil
}
