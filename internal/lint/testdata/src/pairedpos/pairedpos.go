// Package pairedpos seeds a violation for the paired analyzer: a
// refcount acquired on a path that can return early without a matching
// release and without a handoff annotation.
package pairedpos

import "errors"

type handle struct{ refs int }

func (h *handle) Retain() {
	h.refs++
}

func (h *handle) Release() error {
	h.refs--
	return nil
}

var errBoom = errors.New("boom")

func leaky(h *handle, fail bool) error {
	h.Retain() // want `\[paired\] leaky acquires via Retain but never calls Release`
	if fail {
		return errBoom
	}
	return nil
}
