// Package obs is a look-alike of the real telemetry package: the lint
// suite matches the obs package by import-path suffix, so this fixture
// (fixture.example/obs) trips the same obs-aware rules the real module
// does — the atomicfield instrument-handle rule and the paired
// analyzer's Snapshot exemption — without the corpus importing engine
// internals.
package obs

import "sync/atomic"

// Counter mirrors the real monotone instrument.
type Counter struct{ v atomic.Uint64 }

func (c *Counter) Add(d uint64) { c.v.Add(d) }

func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge mirrors the real instantaneous instrument.
type Gauge struct{ v atomic.Int64 }

func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Histogram mirrors the real log₂ instrument closely enough to have
// atomic innards and a value-copy Snapshot.
type Histogram struct {
	count atomic.Uint64
	sum   atomic.Uint64
}

func (h *Histogram) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
}

// Snapshot returns a plain value copy. There is no handle to release:
// the paired analyzer must not mistake this for the viewset Snapshot
// acquire protocol.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
}

// HistogramSnapshot is the copied form — values by design, never
// flagged by the instrument-handle rule.
type HistogramSnapshot struct {
	Count uint64
	Sum   uint64
}
