// Package immutableclean exercises the immutable analyzer's legal
// idioms: construction and mutation confined to the declaring file,
// reads anywhere.
package immutableclean

// state is published immutable-after-construction.
//
//asv:immutable
type state struct {
	gen uint64
}

// newState builds and may freely initialize the value.
func newState(gen uint64) *state {
	s := &state{}
	s.gen = gen
	return s
}
