package immutableclean

func read() uint64 {
	s := newState(1)
	return s.gen
}
