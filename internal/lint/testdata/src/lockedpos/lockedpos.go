// Package lockedpos seeds violations for the locked analyzer: calls to
// mode-requiring functions without the mode, blocking operations under
// the exclusive room, and nested room acquisition.
package lockedpos

import "time"

type room struct{ held bool }

// Lock enters the exclusive room.
//
//asv:acquires=exclusive
func (r *room) Lock() { r.held = true }

// Unlock leaves the exclusive room.
//
//asv:releases=exclusive
func (r *room) Unlock() { r.held = false }

// publishLocked must run under the exclusive room.
//
//asv:locked=exclusive
func (r *room) publishLocked() {}

// flushLocked relies on the naming convention alone: callers must hold
// some recognized lock.
func flushLocked() {}

func bad(r *room) {
	r.publishLocked() // want `\[locked\] call to publishLocked requires lock mode "exclusive", but bad holds no lock`
}

func good(r *room) {
	r.Lock()
	r.publishLocked()
	r.Unlock()
}

func callsNaked() {
	flushLocked() // want `\[locked\] call to flushLocked requires lock mode "any", but callsNaked holds no lock`
}

func blocky(r *room, ch chan int) {
	r.Lock()
	defer r.Unlock()
	<-ch                         // want `\[locked\] channel receive while the exclusive room is held`
	time.Sleep(time.Millisecond) // want `\[locked\] calling Sleep while the exclusive room is held`
}

func nested(r *room) {
	r.Lock()
	r.Lock() // want `\[locked\] acquiring the exclusive room while a room is already held`
	r.Unlock()
	r.Unlock()
}
