// Package obspos seeds violations for the atomicfield analyzer's obs
// instrument-handle rule: raw instrument values held as struct fields
// instead of pointer handles. The clean forms alongside them — pointer
// handles, arrays of pointers, snapshot values — must stay silent, as
// must the paired analyzer on the value-copy Snapshot call.
package obspos

import "fixture.example/obs"

type pilot struct {
	flushes *obs.Counter      // pointer handle: clean
	holds   [3]*obs.Histogram // array of handles: clean
	last    obs.HistogramSnapshot

	lat   obs.Histogram  // want `\[atomicfield\] field lat holds a raw obs\.Histogram value`
	depth obs.Gauge      // want `\[atomicfield\] field depth holds a raw obs\.Gauge value`
	waits [2]obs.Counter // want `\[atomicfield\] field waits holds a raw obs\.Counter value`
}

// observe compiles fine against the raw fields — pointer-receiver
// methods auto-address them — which is exactly why the rule exists: a
// copy of pilot forks lat/depth/waits without a diagnostic from the
// compiler.
func (p *pilot) observe(d uint64) {
	p.flushes.Add(1)
	p.lat.Observe(d)
	p.depth.Set(int64(d))
	p.waits[0].Add(1)
}

// read exercises the paired analyzer's obs exemption: Snapshot here is
// a value copy, not an acquire, so no Close/ReleaseViews is owed.
func (p *pilot) read() uint64 {
	p.last = p.lat.Snapshot()
	return p.last.Count
}
