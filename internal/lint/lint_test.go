package lint

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// TestSelfTest runs the full driver over the seeded-violation corpus:
// every analyzer must fire on its positive fixture, every diagnostic
// must be expected, and the clean fixtures must stay silent.
func TestSelfTest(t *testing.T) {
	src, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	if err := SelfTest(src); err != nil {
		t.Fatal(err)
	}
}

// TestAsvlintCleanOnRepo runs the suite over the repository itself: the
// codebase must stay free of findings, with every intentional deviation
// carrying its annotation. This is the check CI runs via cmd/asvlint;
// having it as a test too keeps `go test ./...` the single local gate.
func TestAsvlintCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := ModuleDir(".")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text    string
		ok      bool
		wantErr bool
		name    string
		arg     string
		reason  string
	}{
		{"// plain comment", false, false, "", "", ""},
		{"//go:noinline", false, false, "", "", ""},
		{"//asv:locked=exclusive", true, false, "locked", "exclusive", ""},
		{"//asv:locked=scan", true, false, "locked", "scan", ""},
		{"//asv:locked", true, true, "locked", "", ""},
		{"//asv:locked=bogus", true, true, "locked", "", ""},
		{"//asv:acquires=update", true, false, "acquires", "update", ""},
		{"//asv:acquires=any", true, true, "acquires", "", ""}, // "any" is not acquirable
		{"//asv:releases=mu", true, false, "releases", "mu", ""},
		{"//asv:immutable", true, false, "immutable", "", ""},
		{"//asv:immutable=yes", true, true, "immutable", "", ""},
		{"//asv:handoff stored in the engine state", true, false, "handoff", "", "stored in the engine state"},
		{"//asv:handoff", true, true, "handoff", "", ""},
		{"//asv:ignore-err best-effort teardown", true, false, "ignore-err", "", "best-effort teardown"},
		{"//asv:ignore-err", true, true, "ignore-err", "", ""},
		{"//asv:allow=locked workers finish before the room reopens", true, false, "allow", "locked", "workers finish before the room reopens"},
		{"//asv:allow=locked", true, true, "allow", "", ""},
		{"//asv:allow no analyzer named", true, true, "allow", "", ""},
		{"//asv:frobnicate", true, true, "frobnicate", "", ""},
	}
	for _, tc := range cases {
		c := &ast.Comment{Text: tc.text}
		d, ok, err := parseDirective(c, token.Position{Filename: "x.go", Line: 1})
		if ok != tc.ok {
			t.Errorf("%q: ok = %v, want %v", tc.text, ok, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		if (err != nil) != tc.wantErr {
			t.Errorf("%q: err = %v, wantErr %v", tc.text, err, tc.wantErr)
			continue
		}
		if err != nil {
			continue
		}
		if d.name != tc.name || d.arg != tc.arg || d.text != tc.reason {
			t.Errorf("%q: parsed (%q,%q,%q), want (%q,%q,%q)", tc.text, d.name, d.arg, d.text, tc.name, tc.arg, tc.reason)
		}
	}
}

func TestLineDirectiveAttachment(t *testing.T) {
	ld := newLineDirectives()
	ld.add(directive{name: "handoff", text: "r", pos: token.Position{Filename: "f.go", Line: 10}})
	for _, line := range []int{10, 11} {
		if !ld.handoffAt(token.Position{Filename: "f.go", Line: line}) {
			t.Errorf("handoff should attach to line %d", line)
		}
	}
	if ld.handoffAt(token.Position{Filename: "f.go", Line: 12}) {
		t.Error("handoff must not attach two lines down")
	}
	if ld.handoffAt(token.Position{Filename: "g.go", Line: 10}) {
		t.Error("handoff must not leak across files")
	}
}

func TestSatisfies(t *testing.T) {
	held := func(modes ...string) map[string]bool {
		h := make(map[string]bool)
		for _, m := range modes {
			h[m] = true
		}
		return h
	}
	cases := []struct {
		held map[string]bool
		req  string
		want bool
	}{
		{held(), modeAny, false},
		{held(modeMu), modeAny, true},
		{held(modeScan), modeScan, true},
		{held(modeUpdate), modeScan, false},
		{held(modeExclusive), modeScan, true},
		{held(modeExclusive), modeUpdate, true},
		{held(modeExclusive), modeExclusive, true},
		{held(modeScan), modeExclusive, false},
		{held(modeMu), modeMu, true},
		{held(modeExclusive), modeMu, false},
		{held(modeAny), modeExclusive, false},
	}
	for _, tc := range cases {
		if got := satisfies(tc.held, tc.req); got != tc.want {
			t.Errorf("satisfies(%v, %q) = %v, want %v", tc.held, tc.req, got, tc.want)
		}
	}
}

// TestDiagnosticFormat pins the output shape the CI log (and the
// self-test corpus) depend on.
func TestDiagnosticFormat(t *testing.T) {
	d := Diagnostic{
		Pos:      token.Position{Filename: "internal/core/state.go", Line: 4, Column: 2},
		Analyzer: "immutable",
		Message:  "boom",
	}
	if got, want := d.String(), "internal/core/state.go:4:2: [immutable] boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestModuleDirRefusesOutsideModule(t *testing.T) {
	if _, err := ModuleDir(t.TempDir()); err == nil || !strings.Contains(err.Error(), "go.mod") {
		t.Errorf("ModuleDir on a bare temp dir: err = %v, want go.mod complaint", err)
	}
}
