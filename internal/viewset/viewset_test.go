package viewset

import (
	"testing"

	"github.com/asv-db/asv/internal/dist"
	"github.com/asv-db/asv/internal/storage"
	"github.com/asv-db/asv/internal/view"
	"github.com/asv-db/asv/internal/vmsim"
)

// fixture creates a column plus helper to make partial views with chosen
// ranges (built over linear data so page counts track range widths).
type fixture struct {
	t   *testing.T
	col *storage.Column
}

func newFixture(t *testing.T) *fixture {
	k := vmsim.NewKernel(0)
	as := k.NewAddressSpace()
	as.SetMaxMapCount(1 << 30)
	c, err := storage.NewColumn(k, as, "col", 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Fill(dist.NewLinear(1, 0, 1_000_000, 128)); err != nil {
		t.Fatal(err)
	}
	return &fixture{t: t, col: c}
}

func (f *fixture) mkView(lo, hi uint64) *view.View {
	v, err := view.Create(f.col, lo, hi, view.CreateOptions{Consecutive: true}, nil)
	if err != nil {
		f.t.Fatal(err)
	}
	// Pin the range exactly (Create extends it; routing tests want precise
	// ranges).
	v.SetRange(lo, hi)
	return v
}

func (f *fixture) newSet(maxViews, d, r int) *Set {
	full, err := view.NewFull(f.col)
	if err != nil {
		f.t.Fatal(err)
	}
	return New(full, maxViews, d, r)
}

func TestRouteSinglePrefersSmallest(t *testing.T) {
	f := newFixture(t)
	s := f.newSet(10, 0, 0)
	wide := f.mkView(0, 800_000)
	narrow := f.mkView(100_000, 300_000)
	if err := s.Insert(wide); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(narrow); err != nil {
		t.Fatal(err)
	}

	got := s.RouteSingle(150_000, 250_000)
	if got != narrow {
		t.Fatalf("RouteSingle picked %v, want the narrow view", got)
	}
	// Query not covered by any partial -> full view.
	got = s.RouteSingle(900_000, 950_000)
	if !got.Full() {
		t.Fatalf("RouteSingle picked %v, want full view", got)
	}
	// Query covered only by the wide view.
	got = s.RouteSingle(500_000, 700_000)
	if got != wide {
		t.Fatalf("RouteSingle picked %v, want wide view", got)
	}
}

func TestRouteSingleEmptySet(t *testing.T) {
	f := newFixture(t)
	s := f.newSet(10, 0, 0)
	if got := s.RouteSingle(0, 10); !got.Full() {
		t.Fatal("empty set must route to full view")
	}
}

func TestRouteMultiGreedyCover(t *testing.T) {
	f := newFixture(t)
	s := f.newSet(10, 0, 0)
	a := f.mkView(0, 300_000)
	b := f.mkView(250_000, 600_000)
	c := f.mkView(550_000, 900_000)
	for _, v := range []*view.View{a, b, c} {
		if err := s.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	got := s.RouteMulti(100_000, 800_000)
	if len(got) != 3 {
		t.Fatalf("RouteMulti used %d views, want 3", len(got))
	}
	if got[0] != a || got[1] != b || got[2] != c {
		t.Fatalf("RouteMulti order wrong: %v", got)
	}
	// A query inside one view needs just that view.
	got = s.RouteMulti(260_000, 290_000)
	if len(got) != 1 {
		t.Fatalf("RouteMulti used %d views, want 1", len(got))
	}
	// Gap in coverage -> nil.
	if got := s.RouteMulti(100_000, 950_000); got != nil {
		t.Fatalf("RouteMulti covered a gap: %v", got)
	}
}

func TestRouteMultiPrefersCheapestViews(t *testing.T) {
	f := newFixture(t)
	s := f.newSet(10, 0, 0)
	short := f.mkView(0, 200_000) // fewer pages on linear data
	long := f.mkView(0, 500_000)
	if err := s.Insert(short); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(long); err != nil {
		t.Fatal(err)
	}
	// The paper's multi-view mode prefers multiple (smaller) views over a
	// single larger one: expect the short view first, then the long one to
	// finish the cover.
	got := s.RouteMulti(0, 400_000)
	if len(got) != 2 || got[0] != short || got[1] != long {
		t.Fatalf("RouteMulti = %v, want [short long]", got)
	}
	// With equal page counts, furthest reach wins the tie: a query fully
	// inside both still picks just one view.
	got = s.RouteMulti(250_000, 400_000)
	if len(got) != 1 || got[0] != long {
		t.Fatalf("RouteMulti tail = %v, want [long]", got)
	}
}

func TestConsiderNotSmallerThanFull(t *testing.T) {
	f := newFixture(t)
	s := f.newSet(10, 0, 0)
	// A view over everything indexes as many pages as the full view.
	cand := f.mkView(0, 1_000_000)
	dec, old := s.Consider(cand)
	if dec != DiscardedNotSmaller || old != nil {
		t.Fatalf("Consider = %v,%v", dec, old)
	}
	if s.Len() != 0 {
		t.Fatal("discarded view was inserted")
	}
}

func TestConsiderSubsetDiscard(t *testing.T) {
	f := newFixture(t)
	s := f.newSet(10, 0, 0)
	existing := f.mkView(100_000, 500_000)
	if err := s.Insert(existing); err != nil {
		t.Fatal(err)
	}
	// Candidate covers a sub-range and (linear data) indexes fewer pages,
	// but with d=0 "fewer" still discards only if >= existing - 0 ... a
	// strictly smaller page count passes. Build an equal-range candidate
	// to hit the discard.
	cand := f.mkView(100_000, 500_000)
	dec, _ := s.Consider(cand)
	if dec != DiscardedSubset {
		t.Fatalf("equal-range candidate: %v, want DiscardedSubset", dec)
	}
	_ = cand.Release()

	// A much narrower candidate (far fewer pages) is kept.
	cand2 := f.mkView(200_000, 250_000)
	dec, _ = s.Consider(cand2)
	if dec != Inserted {
		t.Fatalf("narrow candidate: %v, want Inserted", dec)
	}
}

func TestConsiderDiscardTolerance(t *testing.T) {
	f := newFixture(t)
	// Huge tolerance: every subset is discarded regardless of page count.
	s := f.newSet(10, 1<<30, 0)
	existing := f.mkView(100_000, 500_000)
	if err := s.Insert(existing); err != nil {
		t.Fatal(err)
	}
	cand := f.mkView(200_000, 250_000)
	dec, _ := s.Consider(cand)
	if dec != DiscardedSubset {
		t.Fatalf("with huge d: %v, want DiscardedSubset", dec)
	}
}

func TestConsiderSupersetReplace(t *testing.T) {
	f := newFixture(t)
	// r large enough that a wider view replaces despite more pages.
	s := f.newSet(10, 0, 1<<30)
	existing := f.mkView(200_000, 300_000)
	if err := s.Insert(existing); err != nil {
		t.Fatal(err)
	}
	cand := f.mkView(100_000, 400_000)
	dec, old := s.Consider(cand)
	if dec != Replaced {
		t.Fatalf("Consider = %v, want Replaced", dec)
	}
	if old != existing {
		t.Fatal("wrong view displaced")
	}
	if s.Len() != 1 || s.Partials()[0] != cand {
		t.Fatal("replacement not reflected in set")
	}
}

func TestConsiderSupersetNotReplacedWhenTooBig(t *testing.T) {
	f := newFixture(t)
	// r=0: a superset with more pages must NOT replace; with no other rule
	// firing it gets inserted alongside.
	s := f.newSet(10, 0, 0)
	existing := f.mkView(200_000, 300_000)
	if err := s.Insert(existing); err != nil {
		t.Fatal(err)
	}
	cand := f.mkView(100_000, 400_000) // more pages on linear data
	dec, _ := s.Consider(cand)
	if dec != Inserted {
		t.Fatalf("Consider = %v, want Inserted", dec)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

func TestConsiderLimitFreezes(t *testing.T) {
	f := newFixture(t)
	s := f.newSet(2, 0, 0)
	for i, rng := range [][2]uint64{{0, 100_000}, {200_000, 300_000}} {
		dec, _ := s.Consider(f.mkView(rng[0], rng[1]))
		if dec != Inserted {
			t.Fatalf("view %d: %v", i, dec)
		}
	}
	if s.Frozen() {
		t.Fatal("frozen before limit hit")
	}
	dec, _ := s.Consider(f.mkView(400_000, 500_000))
	if dec != DiscardedLimit {
		t.Fatalf("Consider = %v, want DiscardedLimit", dec)
	}
	if !s.Frozen() {
		t.Fatal("set not frozen after limit")
	}
}

func TestInsertLimit(t *testing.T) {
	f := newFixture(t)
	s := f.newSet(1, 0, 0)
	if err := s.Insert(f.mkView(0, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(f.mkView(0, 2000)); err == nil {
		t.Fatal("Insert beyond limit succeeded")
	}
}

func TestClear(t *testing.T) {
	f := newFixture(t)
	s := f.newSet(1, 0, 0)
	v := f.mkView(0, 100_000)
	if err := s.Insert(v); err != nil {
		t.Fatal(err)
	}
	_, _ = s.Consider(f.mkView(1, 2)) // freezes (limit 1)
	got := s.Clear()
	if len(got) != 1 || got[0] != v {
		t.Fatalf("Clear returned %v", got)
	}
	if s.Len() != 0 || s.Frozen() {
		t.Fatal("Clear did not reset state")
	}
}

func TestCoveredInterval(t *testing.T) {
	f := newFixture(t)
	s := f.newSet(10, 0, 0)
	a := f.mkView(100, 200)
	b := f.mkView(150, 400)
	c := f.mkView(401, 500) // adjacent to b
	d := f.mkView(900, 999) // disjoint

	lo, hi := s.CoveredInterval([]*view.View{a, b, c, d}, 180, 450)
	if lo != 100 || hi != 500 {
		t.Fatalf("CoveredInterval = [%d,%d], want [100,500]", lo, hi)
	}
	// Full view source covers the whole domain.
	full, err := view.NewFull(f.col)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi = s.CoveredInterval([]*view.View{full}, 5, 10)
	if lo != 0 || hi != ^uint64(0) {
		t.Fatalf("full-view interval = [%d,%d]", lo, hi)
	}
	// Sources not covering the query: falls back to the query itself.
	lo, hi = s.CoveredInterval([]*view.View{a}, 300, 350)
	if lo != 300 || hi != 350 {
		t.Fatalf("uncovered interval = [%d,%d], want [300,350]", lo, hi)
	}
}

func TestDecisionString(t *testing.T) {
	for _, d := range []Decision{DecisionNone, Inserted, Replaced, DiscardedNotSmaller,
		DiscardedSubset, DiscardedLimit, DiscardedStale, Evicted} {
		if d.String() == "" {
			t.Fatalf("empty string for %d", int(d))
		}
	}
	if Decision(99).String() != "Decision(99)" {
		t.Fatal("unknown decision string")
	}
}

// TestDecisionZeroValue pins the DecisionNone sentinel: the zero value
// of Decision must read as "none", never as a retention outcome — a
// QueryResult whose query built no candidate would otherwise report
// "inserted" to any caller that forgets to check CandidateBuilt.
func TestDecisionZeroValue(t *testing.T) {
	var d Decision
	if d != DecisionNone {
		t.Fatalf("zero Decision = %v, want DecisionNone", d)
	}
	if d.String() != "none" {
		t.Fatalf("zero Decision string = %q, want %q", d.String(), "none")
	}
	if DecisionNone == Inserted {
		t.Fatal("DecisionNone aliases Inserted")
	}
}

func TestTemperatures(t *testing.T) {
	f := newFixture(t)
	s := f.newSet(10, 0, 0)
	hot := f.mkView(0, 400_000)
	cold := f.mkView(600_000, 800_000)
	if err := s.Insert(hot); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(cold); err != nil {
		t.Fatal(err)
	}
	// Route inside hot's range repeatedly; cold is never hit.
	for i := 0; i < 5; i++ {
		if got := s.RouteSingle(100_000, 200_000); got != hot {
			t.Fatalf("routed to %v", got)
		}
	}
	temps := s.Temperatures()
	if len(temps) != 2 {
		t.Fatalf("%d temperatures, want 2", len(temps))
	}
	byView := map[*view.View]Temperature{}
	for _, tp := range temps {
		byView[tp.View] = tp
	}
	h, c := byView[hot], byView[cold]
	if h.Uses != 5 {
		t.Fatalf("hot uses = %d, want 5", h.Uses)
	}
	if c.Uses != 0 {
		t.Fatalf("cold uses = %d, want 0", c.Uses)
	}
	if h.LastUsed != s.Clock() {
		t.Fatalf("hot last used %d, clock %d", h.LastUsed, s.Clock())
	}
	// Insertion stamps recency: a never-routed view is not "never used".
	if c.LastUsed != 0 {
		// cold was inserted at clock 0, before any routing.
		t.Fatalf("cold last used %d, want insertion tick 0", c.LastUsed)
	}
}

func TestRemoveUnfreezes(t *testing.T) {
	f := newFixture(t)
	s := f.newSet(1, 0, 0)
	v := f.mkView(0, 100_000)
	if dec, _ := s.Consider(v); dec != Inserted {
		t.Fatalf("decision %v", dec)
	}
	big := f.mkView(200_000, 900_000)
	if dec, _ := s.Consider(big); dec != DiscardedLimit {
		t.Fatalf("decision %v", dec)
	}
	if !s.Frozen() {
		t.Fatal("set not frozen at limit")
	}
	if s.Remove(f.mkView(5, 6)) {
		t.Fatal("removed a non-member")
	}
	if !s.Remove(v) {
		t.Fatal("member not removed")
	}
	if s.Frozen() || s.Len() != 0 {
		t.Fatalf("after remove: frozen=%v len=%d", s.Frozen(), s.Len())
	}
	if s.Contains(v) {
		t.Fatal("removed view still contained")
	}
	// Capacity reopened: candidates are accepted again.
	if dec, _ := s.Consider(big); dec != Inserted {
		t.Fatalf("post-remove decision %v", dec)
	}
	_ = v.Release()
}

func TestReplaceExistingTransfersTemperature(t *testing.T) {
	f := newFixture(t)
	s := f.newSet(10, 0, 0)
	old := f.mkView(0, 400_000)
	if err := s.Insert(old); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		s.RouteSingle(100_000, 200_000)
	}
	repl := f.mkView(0, 400_000)
	if s.ReplaceExisting(f.mkView(1, 2), repl) {
		t.Fatal("replaced a non-member")
	}
	if !s.ReplaceExisting(old, repl) {
		t.Fatal("member not replaced")
	}
	temps := s.Temperatures()
	if len(temps) != 1 || temps[0].View != repl {
		t.Fatalf("temperatures %+v", temps)
	}
	if temps[0].Uses != 3 {
		t.Fatalf("replacement uses = %d, want inherited 3", temps[0].Uses)
	}
	_ = old.Release()
}
