package viewset

import (
	"sort"
	"sync/atomic"

	"github.com/asv-db/asv/internal/view"
)

// This file is the snapshot/retire surface of the view set: an immutable
// capture of the routed state that the engine publishes behind an atomic
// pointer. Routing over a Snapshot reads only captured ranges, page
// counts and resolved page slices — never live view fields — so any
// number of epoch readers may route and scan while the live set is
// mutated, rebuilt or cleared under the engine's exclusive room.
//
// Successive snapshots are structural deltas over their parent: the
// capture is a chunked copy-on-write table of SnapView entries, and a
// publication re-captures only the views touched (MarkDirty) or added
// since the previous capture — every untouched chunk of snapChunkSize
// entries is shared with the parent by bumping one reference. Capture
// cost therefore scales with the number of touched views plus the
// (pointer-sized) spine walk, not with the total view count, which is
// what keeps publication flat at thousands-of-views scale. Retirement
// follows the shared structure: a snapshot releases its chunk
// references; a chunk that drains releases its entries' references; a
// SnapView that drains releases the one view retain it owns. The set
// itself keeps one reference per chunk of the most recent capture (the
// delta cache), dropped when the next capture supersedes it or when
// ResetCaptureCache clears it.

// snapChunkSize is the arity of one capture-table chunk. Larger chunks
// shrink the per-publication spine walk; smaller chunks shrink the
// re-capture amplification when one view in a chunk is touched.
const snapChunkSize = 128

// SnapView is one view as captured by a Snapshot: the covered range, the
// resolved pages (or, for a demand-materialized view, the backing file
// page per slot resolved against the capture's frozen full-view pages),
// and the identity of the live view it was taken from. A SnapView may be
// shared by any number of chunks across consecutive snapshots; refs
// counts them, and the drain releases the single view retain the capture
// owns. Entries are immutable once captured: every field except refs is
// written only by the capture path in this file.
//
//asv:immutable
type SnapView struct {
	view   *view.View
	lo, hi uint64
	pages  [][]byte // eager capture; nil for a lazy capture
	file   []int32  // lazy capture: slot → backing file page
	fullPg [][]byte // lazy capture: the capture's frozen full-view pages
	full   bool
	refs   atomic.Int32 // chunks referencing this capture
}

// View returns the captured view's identity. Callers must not read live
// view fields through it on the read path — that is what the captured
// accessors are for.
func (sv *SnapView) View() *view.View { return sv.view }

// Lo returns the captured lower bound of the covered range (inclusive).
func (sv *SnapView) Lo() uint64 { return sv.lo }

// Hi returns the captured upper bound of the covered range (inclusive).
func (sv *SnapView) Hi() uint64 { return sv.hi }

// NumPages returns the captured number of indexed physical pages.
func (sv *SnapView) NumPages() int {
	if sv.pages != nil {
		return len(sv.pages)
	}
	return len(sv.file)
}

// Full reports whether this is the column's full view.
func (sv *SnapView) Full() bool { return sv.full }

// Lazy reports whether the capture resolves pages through the full-view
// indirection instead of an eager page array.
func (sv *SnapView) Lazy() bool { return sv.pages == nil }

// Covers reports whether the captured range fully contains [lo, hi].
func (sv *SnapView) Covers(lo, hi uint64) bool { return sv.lo <= lo && hi <= sv.hi }

// PageBytes returns the i-th captured page. The slice aliases the frozen
// physical frame the capture resolved — concurrent writers shadow pages
// onto fresh frames, so the bytes never change under the reader. A lazy
// capture resolves through the capture's full-view pages: the slot's
// backing file page was recorded at capture time, and the full-view
// capture froze every file page's frame at the same instant, so the
// indirection serves exactly the epoch's bytes without ever
// materializing the live view's mapping.
func (sv *SnapView) PageBytes(i int) []byte {
	if sv.pages != nil {
		return sv.pages[i]
	}
	return sv.fullPg[sv.file[i]]
}

// snapChunk is one fixed-arity block of the capture table, shared
// copy-on-write between consecutive snapshots. refs counts the
// snapshots (plus the set's delta cache) referencing the chunk. A
// chunk's entries are sealed by the capture path in this file before
// the chunk becomes visible to a second snapshot.
//
//asv:immutable
type snapChunk struct {
	entries []*SnapView
	refs    atomic.Int32
}

func (c *snapChunk) retain() { c.refs.Add(1) }

// release drops one chunk reference; the drop that drains the chunk
// releases every entry (and, transitively, the view retains of entries
// whose last chunk this was). The first error is returned, the walk
// continues — a failed unmap must not leak the remaining references.
func (c *snapChunk) release(s *Set) error {
	if c.refs.Add(-1) != 0 {
		return nil
	}
	var firstErr error
	for _, sv := range c.entries {
		if err := s.releaseSnapView(sv); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// releaseSnapView drops one chunk's reference on a captured view and, on
// drain, releases the single view retain the capture owns.
func (s *Set) releaseSnapView(sv *SnapView) error {
	if sv.refs.Add(-1) != 0 {
		return nil
	}
	if s.releaseHook != nil {
		return s.releaseHook(sv.view)
	}
	return sv.view.Release()
}

// Snapshot is an immutable capture of the set's routed state. The
// capture owns one reference per chunk; ReleaseViews drops them when the
// state the snapshot belongs to drains.
type Snapshot struct {
	set    *Set
	full   *SnapView
	chunks []*snapChunk
	n      int // total captured partial views
	// recaptured counts the views captured fresh by this snapshot (new
	// or dirty since the parent) — the per-publication work the delta
	// design keeps small; telemetry reports it as the publication size.
	recaptured int
	frozen     bool
}

// Snapshot captures the current routed state as a structural delta over
// the previous capture. fullPages is the column's captured full-view
// soft-TLB (storage.Column.CaptureSnapshot) — the set's own full view
// caches translations that go stale under the copy-on-write write path,
// so the column capture is authoritative; it also serves as the
// resolution target for lazily captured views. Snapshot is a write-side
// operation (the engine holds its exclusive room). Only views that are
// new or marked dirty since the previous capture are re-captured;
// untouched chunks are shared with the parent. On error every reference
// the half-built capture took is released and the delta cache is left
// untouched, so a retry (or the next publication) starts from the same
// consistent parent — capture and retain stay symmetric on all paths.
func (s *Set) Snapshot(fullPages [][]byte) (*Snapshot, error) {
	full := &SnapView{
		view: s.full, lo: 0, hi: ^uint64(0),
		pages: fullPages, full: true,
	}
	n := len(s.partials)
	nc := (n + snapChunkSize - 1) / snapChunkSize
	chunks := make([]*snapChunk, 0, nc)
	recaptured := 0
	var err error
outer:
	for ci := 0; ci < nc; ci++ {
		base := ci * snapChunkSize
		end := base + snapChunkSize
		if end > n {
			end = n
		}
		group := s.partials[base:end]
		if ch := s.reusableChunk(ci, base, group); ch != nil {
			ch.retain()
			chunks = append(chunks, ch)
			continue
		}
		ch := &snapChunk{entries: make([]*SnapView, 0, len(group))}
		ch.refs.Store(1)
		chunks = append(chunks, ch)
		for _, v := range group {
			sv := s.capBy[v]
			if sv == nil || s.isDirty(v) {
				sv, err = s.captureView(v, fullPages)
				if err != nil {
					break outer
				}
				recaptured++
			}
			sv.refs.Add(1)
			ch.entries = append(ch.entries, sv)
		}
	}
	if err != nil {
		// Symmetric unwind: every chunk appended so far — reused or
		// half-built — holds exactly the references taken above.
		for _, ch := range chunks {
			_ = ch.release(s) //asv:ignore-err unwinding a half-built capture; the capture error is returned and a retry starts clean
		}
		return nil, err
	}
	snap := &Snapshot{set: s, full: full, chunks: chunks, n: n, recaptured: recaptured, frozen: s.frozen}
	s.refreshCaptureCache(chunks)
	return snap, nil
}

// reusableChunk returns the delta cache's chunk ci when the ci-th group
// of the current partials is identical to what that chunk captured (same
// views, same order, none dirty), nil otherwise.
func (s *Set) reusableChunk(ci, base int, group []*view.View) *snapChunk {
	if ci >= len(s.capChunks) {
		return nil
	}
	ch := s.capChunks[ci]
	if len(ch.entries) != len(group) {
		return nil
	}
	for k, v := range group {
		if base+k >= len(s.capViews) || s.capViews[base+k] != v || s.isDirty(v) {
			return nil
		}
	}
	return ch
}

// captureView captures one view fresh, taking the view retain the
// returned SnapView owns. Demand-materialized views are captured through
// their slot directory — O(slots) pointer work, no mapping, no page
// resolution — and resolve against the capture's full-view pages.
func (s *Set) captureView(v *view.View, fullPages [][]byte) (*SnapView, error) {
	sv := &SnapView{view: v, lo: v.Lo(), hi: v.Hi()}
	if s.captureHook != nil {
		pages, err := s.captureHook(v)
		if err != nil {
			return nil, err
		}
		sv.pages = pages
	} else if f := v.LazyFilePages(); f != nil {
		sv.file = append([]int32(nil), f...)
		sv.fullPg = fullPages
	} else {
		pages, err := v.CapturePages()
		if err != nil {
			return nil, err
		}
		sv.pages = pages
	}
	v.Retain() //asv:handoff the retain is owned by the SnapView; the chunk drain releases it
	return sv, nil
}

// isDirty reports whether v was marked touched since its last capture.
func (s *Set) isDirty(v *view.View) bool {
	s.dirtyMu.Lock()
	_, ok := s.capDirty[v]
	s.dirtyMu.Unlock()
	return ok
}

// MarkDirty records that a live view's captured state (range, page set
// or resolved translations) changed since the last capture, so the next
// Snapshot re-captures it instead of sharing the parent's entry. Update
// alignment marks every view it rewires; the autopilot marks views it
// warms. Views not yet captured are implicitly dirty. Safe for
// concurrent callers (alignment fans out across workers).
func (s *Set) MarkDirty(v *view.View) {
	if v == nil || v.Full() {
		return
	}
	s.dirtyMu.Lock()
	s.capDirty[v] = struct{}{}
	s.dirtyMu.Unlock()
}

// refreshCaptureCache installs chunks as the delta cache for the next
// capture: the set takes one reference per new chunk, drops the previous
// cache's references, rebuilds the per-view index and clears the dirty
// marks (everything present is freshly consistent). A release error
// while dropping the previous cache cannot fail the capture that is
// already built, so it is parked for TakeReleaseErr instead of dropped.
func (s *Set) refreshCaptureCache(chunks []*snapChunk) {
	for _, ch := range chunks {
		ch.retain()
	}
	old := s.capChunks
	s.capChunks = append([]*snapChunk(nil), chunks...)
	s.capViews = append([]*view.View(nil), s.partials...)
	by := make(map[*view.View]*SnapView, len(s.partials))
	for _, ch := range chunks {
		for _, sv := range ch.entries {
			by[sv.view] = sv
		}
	}
	s.capBy = by
	s.dirtyMu.Lock()
	s.capDirty = make(map[*view.View]struct{})
	s.dirtyMu.Unlock()
	for _, ch := range old {
		if err := ch.release(s); err != nil && s.releaseErr == nil {
			s.releaseErr = err
		}
	}
}

// TakeReleaseErr returns and clears the first release error parked by a
// cache refresh. The engine drains it after every capture and folds it
// into the retire-error accounting — the drop that failed was retiring
// a superseded capture's view, the same class the reclaim walk counts.
func (s *Set) TakeReleaseErr() error {
	err := s.releaseErr
	s.releaseErr = nil
	return err
}

// ResetCaptureCache drops the delta cache: the set's chunk references
// are released and the next Snapshot captures every view fresh. The
// engine calls it on Close so a failed final publication cannot strand
// the cache's view retains; tests use it to force a full (non-delta)
// capture for equivalence checks. The first release error is returned.
func (s *Set) ResetCaptureCache() error {
	var firstErr error
	for _, ch := range s.capChunks {
		if err := ch.release(s); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.capChunks = nil
	s.capViews = nil
	s.capBy = make(map[*view.View]*SnapView)
	s.dirtyMu.Lock()
	s.capDirty = make(map[*view.View]struct{})
	s.dirtyMu.Unlock()
	return firstErr
}

// SetCaptureHook intercepts per-view page capture (test instrumentation:
// fault injection on the publication path). The hook replaces both the
// eager and the lazy capture for every fresh capture; nil restores the
// real operations.
func (s *Set) SetCaptureHook(fn func(*view.View) ([][]byte, error)) { s.captureHook = fn }

// SetReleaseViewHook intercepts the view release performed when a
// captured view's last reference drains (test instrumentation: fault
// injection on the retirement path). Nil restores the real release.
func (s *Set) SetReleaseViewHook(fn func(*view.View) error) { s.releaseHook = fn }

// ReleaseViews drops the snapshot's chunk references — the retire step
// once the owning engine state has drained. A view whose last capture
// reference this was is unmapped here, which is how a view evicted from
// the live set outlives every pinned reader that can still route to it,
// and no longer.
func (s *Snapshot) ReleaseViews() error {
	chunks := s.chunks
	s.chunks = nil
	var firstErr error
	for _, ch := range chunks {
		if err := ch.release(s.set); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Full returns the captured full view.
func (s *Snapshot) Full() *SnapView { return s.full }

// eachPartial walks the captured partial views in set order; fn
// returning false stops the walk.
func (s *Snapshot) eachPartial(fn func(*SnapView) bool) {
	for _, ch := range s.chunks {
		for _, sv := range ch.entries {
			if !fn(sv) {
				return
			}
		}
	}
}

// Partials returns the captured partial views in set order (a fresh
// slice the caller may keep).
func (s *Snapshot) Partials() []*SnapView {
	out := make([]*SnapView, 0, s.n)
	s.eachPartial(func(sv *SnapView) bool {
		out = append(out, sv)
		return true
	})
	return out
}

// Chunks returns the number of capture-table chunks (tests use it to
// observe structural sharing).
func (s *Snapshot) Chunks() int { return len(s.chunks) }

// Len returns the number of captured partial views.
func (s *Snapshot) Len() int { return s.n }

// Recaptured returns the number of views this capture re-captured fresh
// instead of sharing with its parent — the publication's real size.
func (s *Snapshot) Recaptured() int { return s.recaptured }

// Frozen reports whether the set had hit its view limit at capture time.
func (s *Snapshot) Frozen() bool { return s.frozen }

// RouteSingle routes [lo, hi] in single-view mode over the capture:
// among the captured views fully covering the range, the one indexing
// the fewest pages (§2.1). The full view always qualifies. Routing hits
// feed the live set's LRU/temperature accounting, so pinned readers keep
// views they use warm.
func (s *Snapshot) RouteSingle(lo, hi uint64) *SnapView {
	tick := s.set.clock.Add(1)
	best := s.full
	s.eachPartial(func(sv *SnapView) bool {
		if sv.Covers(lo, hi) && sv.NumPages() < best.NumPages() {
			best = sv
		}
		return true
	})
	s.set.touchLive(best.view, tick)
	return best
}

// RouteMulti routes [lo, hi] in multi-view mode over the capture,
// mirroring Set.RouteMulti: greedily pick, among captured views covering
// the first uncovered point, the one indexing the fewest pages (furthest
// reach breaks ties). It returns nil when the captured partials cannot
// cover the range; the caller falls back to RouteSingle.
func (s *Snapshot) RouteMulti(lo, hi uint64) []*SnapView {
	tick := s.set.clock.Add(1)
	var out []*SnapView
	c := lo
	for {
		var best *SnapView
		s.eachPartial(func(sv *SnapView) bool {
			if sv.lo <= c && c <= sv.hi {
				if best == nil || sv.NumPages() < best.NumPages() ||
					(sv.NumPages() == best.NumPages() && sv.hi > best.hi) {
					best = sv
				}
			}
			return true
		})
		if best == nil {
			return nil
		}
		out = append(out, best)
		s.set.touchLive(best.view, tick)
		if best.hi >= hi {
			return out
		}
		c = best.hi + 1 // best.hi < hi <= MaxUint64: no overflow
	}
}

// CoveredInterval returns the maximal contiguous value interval
// containing [lo, hi] that the given captured sources cover in
// conjunction — the capture-side counterpart of Set.CoveredInterval,
// clamping candidate-range extension (§2.2).
func (s *Snapshot) CoveredInterval(sources []*SnapView, lo, hi uint64) (uint64, uint64) {
	ivs := make([]valueInterval, 0, len(sources))
	for _, sv := range sources {
		ivs = append(ivs, valueInterval{sv.lo, sv.hi})
	}
	return coveredInterval(ivs, lo, hi)
}

// touchLive records a routing hit for a view that is still tracked by
// the live set's temperature accounting. Unlike touch it never
// resurrects an entry: a snapshot may route to a view that was evicted
// from the live set after the capture, and its usage record is gone for
// good.
func (s *Set) touchLive(v *view.View, tick uint64) {
	if v.Full() {
		return
	}
	s.lruMu.Lock()
	if u, ok := s.usage[v]; ok {
		u.uses++
		if tick > u.last {
			u.last = tick
		}
		s.usage[v] = u
	}
	s.lruMu.Unlock()
}

// valueInterval is one captured [lo, hi] range.
type valueInterval struct{ lo, hi uint64 }

// coveredInterval merges overlapping or adjacent intervals and returns
// the merged interval containing [lo, hi], or [lo, hi] itself when the
// sources do not contiguously cover the query.
func coveredInterval(ivs []valueInterval, lo, hi uint64) (uint64, uint64) {
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	var cur valueInterval
	have := false
	for _, x := range ivs {
		if !have {
			cur, have = x, true
			continue
		}
		adjacent := x.lo <= cur.hi || (cur.hi != ^uint64(0) && x.lo == cur.hi+1)
		if adjacent {
			if x.hi > cur.hi {
				cur.hi = x.hi
			}
			continue
		}
		if cur.lo <= lo && hi <= cur.hi {
			return cur.lo, cur.hi
		}
		cur = x
	}
	if have && cur.lo <= lo && hi <= cur.hi {
		return cur.lo, cur.hi
	}
	return lo, hi
}
