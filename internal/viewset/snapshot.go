package viewset

import (
	"sort"

	"github.com/asv-db/asv/internal/view"
)

// This file is the snapshot/retire surface of the view set: an immutable
// capture of the routed state that the engine publishes behind an atomic
// pointer. Routing over a Snapshot reads only captured ranges, page
// counts and resolved page slices — never live view fields — so any
// number of epoch readers may route and scan while the live set is
// mutated, rebuilt or cleared under the engine's exclusive room.

// SnapView is one view as captured by a Snapshot: the covered range, the
// resolved soft-TLB pages, and the identity of the live view it was
// taken from (retained for the capture's lifetime).
type SnapView struct {
	view   *view.View
	lo, hi uint64
	pages  [][]byte
	full   bool
}

// View returns the captured view's identity. Callers must not read live
// view fields through it on the read path — that is what the captured
// accessors are for.
func (sv *SnapView) View() *view.View { return sv.view }

// Lo returns the captured lower bound of the covered range (inclusive).
func (sv *SnapView) Lo() uint64 { return sv.lo }

// Hi returns the captured upper bound of the covered range (inclusive).
func (sv *SnapView) Hi() uint64 { return sv.hi }

// NumPages returns the captured number of indexed physical pages.
func (sv *SnapView) NumPages() int { return len(sv.pages) }

// Full reports whether this is the column's full view.
func (sv *SnapView) Full() bool { return sv.full }

// Covers reports whether the captured range fully contains [lo, hi].
func (sv *SnapView) Covers(lo, hi uint64) bool { return sv.lo <= lo && hi <= sv.hi }

// PageBytes returns the i-th captured page. The slice aliases the frozen
// physical frame the capture resolved — concurrent writers shadow pages
// onto fresh frames, so the bytes never change under the reader.
func (sv *SnapView) PageBytes(i int) []byte { return sv.pages[i] }

// Snapshot is an immutable capture of the set's routed state. The
// capturing engine retains every partial view; ReleaseViews drops those
// references when the state the snapshot belongs to drains.
type Snapshot struct {
	set      *Set
	full     *SnapView
	partials []*SnapView
	frozen   bool
}

// Snapshot captures the current routed state. fullPages is the column's
// captured full-view soft-TLB (storage.Column.CaptureSnapshot) — the
// set's own full view caches translations that go stale under the
// copy-on-write write path, so the column capture is authoritative.
// Snapshot is a write-side operation (the engine holds its exclusive
// room); every partial view is retained until ReleaseViews.
func (s *Set) Snapshot(fullPages [][]byte) (*Snapshot, error) {
	snap := &Snapshot{
		set: s,
		full: &SnapView{
			view: s.full, lo: 0, hi: ^uint64(0),
			pages: fullPages, full: true,
		},
		frozen: s.frozen,
	}
	snap.partials = make([]*SnapView, 0, len(s.partials))
	for _, v := range s.partials {
		pages, err := v.CapturePages()
		if err != nil {
			// Undo the retains of the views already captured: a
			// half-built snapshot is dropped, and leaked references
			// would keep those views mapped forever.
			_ = snap.ReleaseViews()
			return nil, err
		}
		v.Retain()
		snap.partials = append(snap.partials, &SnapView{
			view: v, lo: v.Lo(), hi: v.Hi(), pages: pages,
		})
	}
	return snap, nil
}

// ReleaseViews drops the snapshot's references on its partial views —
// the retire step once the owning engine state has drained. The view
// whose last reference this was is unmapped here, which is how a view
// evicted from the live set outlives every pinned reader that can still
// route to it, and no longer.
func (s *Snapshot) ReleaseViews() error {
	var firstErr error
	for _, sv := range s.partials {
		if err := sv.view.Release(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Full returns the captured full view.
func (s *Snapshot) Full() *SnapView { return s.full }

// Partials returns the captured partial views (the caller must not
// mutate the slice).
func (s *Snapshot) Partials() []*SnapView { return s.partials }

// Len returns the number of captured partial views.
func (s *Snapshot) Len() int { return len(s.partials) }

// Frozen reports whether the set had hit its view limit at capture time.
func (s *Snapshot) Frozen() bool { return s.frozen }

// RouteSingle routes [lo, hi] in single-view mode over the capture:
// among the captured views fully covering the range, the one indexing
// the fewest pages (§2.1). The full view always qualifies. Routing hits
// feed the live set's LRU/temperature accounting, so pinned readers keep
// views they use warm.
func (s *Snapshot) RouteSingle(lo, hi uint64) *SnapView {
	tick := s.set.clock.Add(1)
	best := s.full
	for _, sv := range s.partials {
		if sv.Covers(lo, hi) && sv.NumPages() < best.NumPages() {
			best = sv
		}
	}
	s.set.touchLive(best.view, tick)
	return best
}

// RouteMulti routes [lo, hi] in multi-view mode over the capture,
// mirroring Set.RouteMulti: greedily pick, among captured views covering
// the first uncovered point, the one indexing the fewest pages (furthest
// reach breaks ties). It returns nil when the captured partials cannot
// cover the range; the caller falls back to RouteSingle.
func (s *Snapshot) RouteMulti(lo, hi uint64) []*SnapView {
	tick := s.set.clock.Add(1)
	var out []*SnapView
	c := lo
	for {
		var best *SnapView
		for _, sv := range s.partials {
			if sv.lo <= c && c <= sv.hi {
				if best == nil || sv.NumPages() < best.NumPages() ||
					(sv.NumPages() == best.NumPages() && sv.hi > best.hi) {
					best = sv
				}
			}
		}
		if best == nil {
			return nil
		}
		out = append(out, best)
		s.set.touchLive(best.view, tick)
		if best.hi >= hi {
			return out
		}
		c = best.hi + 1 // best.hi < hi <= MaxUint64: no overflow
	}
}

// CoveredInterval returns the maximal contiguous value interval
// containing [lo, hi] that the given captured sources cover in
// conjunction — the capture-side counterpart of Set.CoveredInterval,
// clamping candidate-range extension (§2.2).
func (s *Snapshot) CoveredInterval(sources []*SnapView, lo, hi uint64) (uint64, uint64) {
	ivs := make([]valueInterval, 0, len(sources))
	for _, sv := range sources {
		ivs = append(ivs, valueInterval{sv.lo, sv.hi})
	}
	return coveredInterval(ivs, lo, hi)
}

// touchLive records a routing hit for a view that is still tracked by
// the live set's temperature accounting. Unlike touch it never
// resurrects an entry: a snapshot may route to a view that was evicted
// from the live set after the capture, and its usage record is gone for
// good.
func (s *Set) touchLive(v *view.View, tick uint64) {
	if v.Full() {
		return
	}
	s.lruMu.Lock()
	if u, ok := s.usage[v]; ok {
		u.uses++
		if tick > u.last {
			u.last = tick
		}
		s.usage[v] = u
	}
	s.lruMu.Unlock()
}

// valueInterval is one captured [lo, hi] range.
type valueInterval struct{ lo, hi uint64 }

// coveredInterval merges overlapping or adjacent intervals and returns
// the merged interval containing [lo, hi], or [lo, hi] itself when the
// sources do not contiguously cover the query.
func coveredInterval(ivs []valueInterval, lo, hi uint64) (uint64, uint64) {
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	var cur valueInterval
	have := false
	for _, x := range ivs {
		if !have {
			cur, have = x, true
			continue
		}
		adjacent := x.lo <= cur.hi || (cur.hi != ^uint64(0) && x.lo == cur.hi+1)
		if adjacent {
			if x.hi > cur.hi {
				cur.hi = x.hi
			}
			continue
		}
		if cur.lo <= lo && hi <= cur.hi {
			return cur.lo, cur.hi
		}
		cur = x
	}
	if have && cur.lo <= lo && hi <= cur.hi {
		return cur.lo, cur.hi
	}
	return lo, hi
}
