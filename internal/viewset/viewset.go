// Package viewset maintains the set of virtual views of a column and
// implements the paper's query routing (§2.1) and view retention policy
// (§2.2, Listing 1 lines 21–32).
//
// The set always contains the full view v[-inf,inf]; partial views are
// suggested by the adaptive engine after each query and are inserted,
// replace an existing view, or are discarded according to the subset /
// superset rules with the user-set discard tolerance d and replacement
// tolerance r.
//
// Concurrency contract: the read side — RouteSingle, RouteMulti, Full,
// Partials, Len, Frozen, CoveredInterval, Clock, Temperatures — is safe
// for any number of concurrent callers (the LRU clock is atomic, the
// usage map has its own lock, and the partial-view slice is
// copy-on-write, so routing only ever reads immutable snapshots). The
// write side — Consider, Insert, Remove, ReplaceExisting, Contains,
// Clear, SetLimitPolicy — must be externally serialized against both
// readers and other writers; the adaptive engine holds its write lock
// around every call.
package viewset

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/asv-db/asv/internal/view"
)

// Decision is the outcome of suggesting a candidate view to the set.
type Decision int

const (
	// DecisionNone is the zero value: no candidate was considered at all.
	// Queries that never build a candidate (non-adaptive engines, frozen
	// sets, closed engines) report DecisionNone, so telemetry that
	// forgets to check QueryResult.CandidateBuilt reads "none" instead of
	// a phantom "inserted".
	DecisionNone Decision = iota
	// Inserted: the candidate became a new partial view.
	Inserted
	// Replaced: the candidate replaced an existing partial view whose
	// range it covers at similar cost (Listing 1 lines 28–31).
	Replaced
	// DiscardedNotSmaller: the candidate indexes at least as many pages as
	// the full view, so it cannot beat a full scan (line 22).
	DiscardedNotSmaller
	// DiscardedSubset: the candidate covers a subset of an existing view
	// while indexing a similar number of pages (lines 24–27).
	DiscardedSubset
	// DiscardedLimit: the maximum number of views is reached; the set
	// freezes and no further candidates will be generated (§2.2).
	DiscardedLimit
	// Evicted: the view limit was reached under the EvictLRU policy; the
	// least-recently-routed partial view made room for the candidate.
	Evicted
	// DiscardedStale: the engine invalidated the candidate before it
	// could be published — an update alignment, view rebuild or engine
	// close ran between the read-locked scan that built it and the
	// write-locked retention decision, so its page set no longer reflects
	// the column.
	DiscardedStale
)

// String renders the decision for logs and reports.
func (d Decision) String() string {
	switch d {
	case DecisionNone:
		return "none"
	case Inserted:
		return "inserted"
	case Replaced:
		return "replaced"
	case DiscardedNotSmaller:
		return "discarded(not-smaller-than-full)"
	case DiscardedSubset:
		return "discarded(subset-of-existing)"
	case DiscardedLimit:
		return "discarded(view-limit)"
	case DiscardedStale:
		return "discarded(stale-candidate)"
	case Evicted:
		return "inserted(evicted-lru)"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// LimitPolicy selects the behaviour when the view limit is reached.
type LimitPolicy int

const (
	// Freeze stops candidate generation for good — the paper's behaviour:
	// "If the limit has been reached already, we stop the generation of
	// new partial views altogether" (§2.2).
	Freeze LimitPolicy = iota
	// EvictLRU evicts the least-recently-routed partial view to admit the
	// candidate, keeping the layer adaptive under drifting workloads.
	EvictLRU
)

// String renders the policy name.
func (p LimitPolicy) String() string {
	switch p {
	case Freeze:
		return "freeze"
	case EvictLRU:
		return "evict-lru"
	default:
		return fmt.Sprintf("LimitPolicy(%d)", int(p))
	}
}

// Set is the view index of one column.
type Set struct {
	full *view.View
	// partials is copy-on-write: every mutation installs a freshly built
	// slice, never writing an element a concurrent reader could hold. A
	// routing pass captures the header once and works on an immutable
	// snapshot.
	partials    []*view.View
	maxViews    int
	discardTol  int // d: pages of slack when discarding subsets
	replaceTol  int // r: pages of slack when replacing supersets
	frozen      bool
	limitPolicy LimitPolicy

	clock atomic.Uint64 // logical routing clock for LRU

	lruMu sync.Mutex           // guards usage (touched by concurrent routers)
	usage map[*view.View]usage // routing recency/frequency per partial view

	// Delta-capture cache (see snapshot.go): the most recent capture's
	// chunk table, the partial-view order it captured, and the per-view
	// entries it may share with the next capture. The set owns one chunk
	// reference per cached chunk. All four are written only under the
	// engine's exclusive room, except capDirty, which alignment workers
	// mark concurrently and therefore has its own lock.
	capViews  []*view.View
	capChunks []*snapChunk
	capBy     map[*view.View]*SnapView

	// releaseErr parks the first error hit while dropping a superseded
	// cache's references (written under the exclusive room, drained by
	// TakeReleaseErr after each capture).
	releaseErr error

	dirtyMu  sync.Mutex
	capDirty map[*view.View]struct{}

	captureHook func(*view.View) ([][]byte, error) // test seam: per-view capture
	releaseHook func(*view.View) error             // test seam: drained-capture release
}

// usage is one partial view's temperature record: the routing tick of its
// most recent hit and its total hit count, both advanced by touch. The
// autopilot's view lifecycle reads them through Temperatures.
type usage struct {
	last uint64 // routing tick of the most recent hit
	uses uint64 // total routing hits
}

// New creates a set holding the column's full view. maxViews bounds the
// number of partial views; discardTol and replaceTol are the paper's d and
// r (both 0 in all paper experiments, §3). The limit policy defaults to
// Freeze (the paper's behaviour); see SetLimitPolicy.
func New(full *view.View, maxViews, discardTol, replaceTol int) *Set {
	if maxViews < 0 {
		maxViews = 0
	}
	return &Set{
		full:       full,
		maxViews:   maxViews,
		discardTol: discardTol,
		replaceTol: replaceTol,
		usage:      make(map[*view.View]usage),
		capBy:      make(map[*view.View]*SnapView),
		capDirty:   make(map[*view.View]struct{}),
	}
}

// SetLimitPolicy selects the behaviour when the view limit is hit.
func (s *Set) SetLimitPolicy(p LimitPolicy) { s.limitPolicy = p }

// touch records a routing hit at the given clock tick for LRU and
// temperature accounting.
func (s *Set) touch(v *view.View, tick uint64) {
	if v.Full() {
		return
	}
	s.lruMu.Lock()
	u := s.usage[v]
	u.uses++
	if tick > u.last {
		u.last = tick
	}
	s.usage[v] = u
	s.lruMu.Unlock()
}

// Full returns the full view.
func (s *Set) Full() *view.View { return s.full }

// Partials returns a snapshot of the current partial views. The returned
// slice is the caller's to keep: mutations never write a published slice
// in place.
func (s *Set) Partials() []*view.View {
	ps := s.partials
	out := make([]*view.View, len(ps))
	copy(out, ps)
	return out
}

// Len returns the number of partial views.
func (s *Set) Len() int { return len(s.partials) }

// Frozen reports whether the view limit was hit, which stops all further
// candidate generation: "If the limit has been reached already, we stop
// the generation of new partial views altogether" (§2.2).
func (s *Set) Frozen() bool { return s.frozen }

// RouteSingle implements single-view mode (§2.1): among the views that
// fully cover [lo, hi], return the one indexing the fewest physical pages.
// The full view always qualifies, so the result is never nil.
func (s *Set) RouteSingle(lo, hi uint64) *view.View {
	tick := s.clock.Add(1)
	best := s.full
	for _, v := range s.partials {
		if v.Covers(lo, hi) && v.NumPages() < best.NumPages() {
			best = v
		}
	}
	s.touch(best, tick)
	return best
}

// RouteMulti implements multi-view mode (§2.1): find a set of partial
// views that fully cover [lo, hi] in conjunction. Following the paper —
// "the system tries to answer a query using multiple views if possible,
// instead of directing the query to a single (potentially larger) view" —
// the greedy pass repeatedly picks, among the views covering the first
// uncovered point, the one indexing the fewest physical pages (furthest
// reach breaks ties). Shared pages between the chosen views are
// deduplicated by the caller's processed-pages bitvector, so a chain of
// small overlapping views scans at most their page union. RouteMulti
// returns nil when the partial views cannot cover the range; the caller
// then falls back to RouteSingle.
func (s *Set) RouteMulti(lo, hi uint64) []*view.View {
	tick := s.clock.Add(1)
	ps := s.partials // immutable snapshot
	var out []*view.View
	c := lo
	for {
		var best *view.View
		for _, v := range ps {
			if v.Lo() <= c && c <= v.Hi() {
				if best == nil || v.NumPages() < best.NumPages() ||
					(v.NumPages() == best.NumPages() && v.Hi() > best.Hi()) {
					best = v
				}
			}
		}
		if best == nil {
			return nil
		}
		out = append(out, best)
		s.touch(best, tick)
		if best.Hi() >= hi {
			return out
		}
		c = best.Hi() + 1 // best.Hi() < hi <= MaxUint64: no overflow
	}
}

// replaceAt installs cand in place of the view at index i, copy-on-write.
func (s *Set) replaceAt(i int, cand *view.View) {
	next := make([]*view.View, len(s.partials))
	copy(next, s.partials)
	next[i] = cand
	s.partials = next
}

// Consider runs the retention decision of Listing 1 (lines 21–32) for a
// finished candidate view. It returns the decision and, for Replaced, the
// displaced view — the caller is responsible for releasing the candidate
// on any Discarded* decision and the displaced view on Replaced. Consider
// is a write operation (see the package concurrency contract).
func (s *Set) Consider(cand *view.View) (Decision, *view.View) {
	if cand.NumPages() >= s.full.NumPages() {
		return DiscardedNotSmaller, nil
	}
	for i, pv := range s.partials {
		if cand.CoversSubsetOf(pv) && cand.NumPages() >= pv.NumPages()-s.discardTol {
			// Smaller range at similar cost: less useful than what exists.
			return DiscardedSubset, nil
		}
		if cand.CoversSupersetOf(pv) && cand.NumPages() <= pv.NumPages()+s.replaceTol {
			// Wider range at similar cost: strictly more useful. The
			// candidate inherits the displaced view's temperature — it
			// serves the same (and more) queries.
			old := pv
			s.replaceAt(i, cand)
			s.lruMu.Lock()
			s.usage[cand] = s.usage[old]
			delete(s.usage, old)
			s.lruMu.Unlock()
			return Replaced, old
		}
	}
	if len(s.partials) >= s.maxViews {
		if s.limitPolicy == EvictLRU && len(s.partials) > 0 {
			s.lruMu.Lock()
			victimIdx := 0
			for i, pv := range s.partials {
				if s.usage[pv].last < s.usage[s.partials[victimIdx]].last {
					victimIdx = i
				}
			}
			victim := s.partials[victimIdx]
			delete(s.usage, victim)
			s.usage[cand] = usage{last: s.clock.Load()}
			s.lruMu.Unlock()
			s.replaceAt(victimIdx, cand)
			return Evicted, victim
		}
		s.frozen = true
		return DiscardedLimit, nil
	}
	next := make([]*view.View, len(s.partials), len(s.partials)+1)
	copy(next, s.partials)
	s.partials = append(next, cand)
	s.lruMu.Lock()
	s.usage[cand] = usage{last: s.clock.Load()}
	s.lruMu.Unlock()
	return Inserted, nil
}

// Insert adds a view unconditionally (used by rebuilds and by experiment
// setup that creates views directly, §3.1/§3.4). It fails once maxViews is
// reached. The view starts with the current clock as its recency, like an
// adaptively inserted candidate — a pre-created view must not look
// never-used (and therefore cold) to the temperature export. Insert is a
// write operation.
func (s *Set) Insert(v *view.View) error {
	if len(s.partials) >= s.maxViews {
		return fmt.Errorf("viewset: view limit %d reached", s.maxViews)
	}
	next := make([]*view.View, len(s.partials), len(s.partials)+1)
	copy(next, s.partials)
	s.partials = append(next, v)
	s.lruMu.Lock()
	s.usage[v] = usage{last: s.clock.Load()}
	s.lruMu.Unlock()
	return nil
}

// Remove deletes a partial view from the set (the caller releases it) and
// unfreezes the set: eviction reopens capacity, so candidate generation
// resumes — the point of the temperature-driven lifecycle. It returns
// false when v is not a member. Remove is a write operation.
func (s *Set) Remove(v *view.View) bool {
	for i, pv := range s.partials {
		if pv != v {
			continue
		}
		next := make([]*view.View, 0, len(s.partials)-1)
		next = append(next, s.partials[:i]...)
		next = append(next, s.partials[i+1:]...)
		s.partials = next
		s.frozen = false
		s.lruMu.Lock()
		delete(s.usage, v)
		s.lruMu.Unlock()
		return true
	}
	return false
}

// Contains reports whether v is currently a partial-view member. Contains
// is a write-side operation (callers hold the exclusive room).
func (s *Set) Contains(v *view.View) bool {
	for _, pv := range s.partials {
		if pv == v {
			return true
		}
	}
	return false
}

// ReplaceExisting installs repl in old's slot, transferring old's
// temperature (a rebuilt view serves the same range, so its history
// carries over). It returns false when old is not a member.
// ReplaceExisting is a write operation.
func (s *Set) ReplaceExisting(old, repl *view.View) bool {
	for i, pv := range s.partials {
		if pv != old {
			continue
		}
		s.replaceAt(i, repl)
		s.lruMu.Lock()
		s.usage[repl] = s.usage[old]
		delete(s.usage, old)
		s.lruMu.Unlock()
		return true
	}
	return false
}

// Clear removes and returns all partial views (the caller releases them)
// and unfreezes the set. Used when rebuilding views from scratch. Clear is
// a write operation.
func (s *Set) Clear() []*view.View {
	out := s.partials
	s.partials = nil
	s.frozen = false
	s.lruMu.Lock()
	s.usage = make(map[*view.View]usage)
	s.lruMu.Unlock()
	return out
}

// Clock returns the current routing tick of the LRU clock. Ages derived
// from it are in "queries routed" units, which makes temperature
// thresholds deterministic and load-independent.
func (s *Set) Clock() uint64 { return s.clock.Load() }

// Temperature is one partial view's access recency/frequency, exported
// for the autopilot's temperature-driven lifecycle.
type Temperature struct {
	View     *view.View
	LastUsed uint64 // routing tick of the most recent hit (insertion tick if never routed)
	Uses     uint64 // total routing hits
}

// Temperatures snapshots every partial view's temperature. Like the rest
// of the read side it is safe for concurrent callers: the partial slice
// is an immutable snapshot and the usage map has its own lock.
func (s *Set) Temperatures() []Temperature {
	ps := s.partials // immutable snapshot
	out := make([]Temperature, 0, len(ps))
	s.lruMu.Lock()
	for _, v := range ps {
		u := s.usage[v]
		out = append(out, Temperature{View: v, LastUsed: u.last, Uses: u.uses})
	}
	s.lruMu.Unlock()
	return out
}

// CoveredInterval returns the maximal contiguous value interval containing
// [lo, hi] that the given source views cover in conjunction. The adaptive
// engine clamps candidate-range extension to this interval: pages outside
// it were never scanned, so nothing may be claimed about them (§2.2).
func (s *Set) CoveredInterval(sources []*view.View, lo, hi uint64) (uint64, uint64) {
	ivs := make([]valueInterval, 0, len(sources))
	for _, v := range sources {
		ivs = append(ivs, valueInterval{v.Lo(), v.Hi()})
	}
	// Sources that do not contiguously cover the query (routing bug or
	// caller misuse) claim nothing beyond the query itself.
	return coveredInterval(ivs, lo, hi)
}
