package viewset

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"github.com/asv-db/asv/internal/view"
)

// capFull captures the full view's resolved pages — the viewset-level
// stand-in for the column capture the engine passes to Snapshot.
func (f *fixture) capFull(s *Set) [][]byte {
	pages, err := s.Full().CapturePages()
	if err != nil {
		f.t.Fatal(err)
	}
	return pages
}

// mkLazyView builds a demand-materialized partial view.
func (f *fixture) mkLazyView(lo, hi uint64) *view.View {
	v, err := view.Create(f.col, lo, hi, view.CreateOptions{Lazy: true}, nil)
	if err != nil {
		f.t.Fatal(err)
	}
	v.SetRange(lo, hi)
	return v
}

func TestSnapshotDeltaSharesUntouchedCaptures(t *testing.T) {
	f := newFixture(t)
	s := f.newSet(10, 0, 0)
	views := make([]*view.View, 4)
	for i := range views {
		lo := uint64(i) * 200_000
		views[i] = f.mkView(lo, lo+150_000)
		if err := s.Insert(views[i]); err != nil {
			t.Fatal(err)
		}
	}

	snap1, err := s.Snapshot(f.capFull(s))
	if err != nil {
		t.Fatal(err)
	}
	// An unchanged set shares the whole chunk: one retain, zero captures.
	snap2, err := s.Snapshot(f.capFull(s))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap1.chunks) != 1 || len(snap2.chunks) != 1 {
		t.Fatalf("chunks = %d/%d, want 1/1", len(snap1.chunks), len(snap2.chunks))
	}
	if snap1.chunks[0] != snap2.chunks[0] {
		t.Fatal("unchanged set did not share the capture chunk")
	}

	// A dirty view forces a chunk rebuild, but every other entry is
	// still pointer-shared with the previous capture.
	s.MarkDirty(views[2])
	snap3, err := s.Snapshot(f.capFull(s))
	if err != nil {
		t.Fatal(err)
	}
	if snap3.chunks[0] == snap1.chunks[0] {
		t.Fatal("dirty view did not invalidate its chunk")
	}
	p1, p3 := snap1.Partials(), snap3.Partials()
	for i := range p1 {
		if i == 2 {
			if p1[i] == p3[i] {
				t.Fatal("dirty view's capture was reused")
			}
			continue
		}
		if p1[i] != p3[i] {
			t.Fatalf("clean view %d was re-captured", i)
		}
	}

	// Membership change (remove) shifts positions: rebuild, share entries.
	if !s.Remove(views[0]) {
		t.Fatal("remove failed")
	}
	snap4, err := s.Snapshot(f.capFull(s))
	if err != nil {
		t.Fatal(err)
	}
	p4 := snap4.Partials()
	if len(p4) != 3 {
		t.Fatalf("len = %d, want 3", len(p4))
	}
	if p4[0] != p3[1] || p4[1] != p3[2] || p4[2] != p3[3] {
		t.Fatal("surviving views' captures were not shared across the removal")
	}

	// Full teardown: release every snapshot and the cache, then the
	// views' own references must be all that remains.
	for _, sn := range []*Snapshot{snap1, snap2, snap3, snap4} {
		if err := sn.ReleaseViews(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.ResetCaptureCache(); err != nil {
		t.Fatal(err)
	}
	for i, v := range views {
		want := 1
		if i == 0 {
			// views[0] was removed from the set but never released by
			// this test; only its owner reference should remain.
			want = 1
		}
		if got := v.Refs(); got != want {
			t.Fatalf("view %d refs = %d, want %d", i, got, want)
		}
	}
}

func TestSnapshotDeltaMultiChunk(t *testing.T) {
	f := newFixture(t)
	n := snapChunkSize + 4
	s := f.newSet(n, 0, 0)
	views := make([]*view.View, n)
	for i := range views {
		lo := uint64(i * 1000)
		views[i] = f.mkView(lo, lo+500)
		if err := s.Insert(views[i]); err != nil {
			t.Fatal(err)
		}
	}
	snap1, err := s.Snapshot(f.capFull(s))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap1.chunks) != 2 {
		t.Fatalf("chunks = %d, want 2", len(snap1.chunks))
	}
	// Touch one view in the second chunk: the first chunk is shared
	// whole, the second is rebuilt.
	s.MarkDirty(views[snapChunkSize+1])
	snap2, err := s.Snapshot(f.capFull(s))
	if err != nil {
		t.Fatal(err)
	}
	if snap2.chunks[0] != snap1.chunks[0] {
		t.Fatal("untouched chunk was rebuilt")
	}
	if snap2.chunks[1] == snap1.chunks[1] {
		t.Fatal("touched chunk was shared")
	}
	if err := snap1.ReleaseViews(); err != nil {
		t.Fatal(err)
	}
	if err := snap2.ReleaseViews(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotCaptureFailureRollsBack pins the rollback symmetry of the
// capture path: a CapturePages failure mid-set must release every
// reference the half-built capture took — including retains on chunks
// reused from the delta cache — leave the cache intact, and let a retry
// succeed.
func TestSnapshotCaptureFailureRollsBack(t *testing.T) {
	f := newFixture(t)
	n := snapChunkSize + 3
	s := f.newSet(n, 0, 0)
	views := make([]*view.View, n)
	for i := range views {
		lo := uint64(i * 1000)
		views[i] = f.mkView(lo, lo+500)
		if err := s.Insert(views[i]); err != nil {
			t.Fatal(err)
		}
	}
	snap1, err := s.Snapshot(f.capFull(s))
	if err != nil {
		t.Fatal(err)
	}

	refsBefore := make([]int, n)
	for i, v := range views {
		refsBefore[i] = v.Refs()
	}
	chunk0Refs := s.capChunks[0].refs.Load()

	// Dirty a second-chunk view and make its re-capture fail: the first
	// chunk has already been reused (retained) when the error hits.
	victim := views[snapChunkSize+1]
	s.MarkDirty(victim)
	boom := errors.New("injected capture failure")
	s.SetCaptureHook(func(v *view.View) ([][]byte, error) {
		if v == victim {
			return nil, boom
		}
		return v.CapturePages()
	})
	if _, err := s.Snapshot(f.capFull(s)); !errors.Is(err, boom) {
		t.Fatalf("Snapshot error = %v, want injected failure", err)
	}
	s.SetCaptureHook(nil)

	for i, v := range views {
		if got := v.Refs(); got != refsBefore[i] {
			t.Fatalf("view %d refs %d -> %d after failed capture", i, refsBefore[i], got)
		}
	}
	if got := s.capChunks[0].refs.Load(); got != chunk0Refs {
		t.Fatalf("reused chunk refs %d -> %d after failed capture", chunk0Refs, got)
	}

	// The cache survived the failure: a retry succeeds and still shares
	// the untouched chunk.
	snap2, err := s.Snapshot(f.capFull(s))
	if err != nil {
		t.Fatalf("retry after failed capture: %v", err)
	}
	if snap2.chunks[0] != snap1.chunks[0] {
		t.Fatal("retry did not share the untouched chunk")
	}
	if err := snap1.ReleaseViews(); err != nil {
		t.Fatal(err)
	}
	if err := snap2.ReleaseViews(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotLazyCaptureReadsEpochBytes: a demand-materialized view is
// captured through its slot directory and resolves byte-identically to
// an eager capture of the same range — without ever materializing the
// live view.
func TestSnapshotLazyCaptureReadsEpochBytes(t *testing.T) {
	f := newFixture(t)
	s := f.newSet(10, 0, 0)
	lazy := f.mkLazyView(100_000, 400_000)
	eager := f.mkView(100_000, 400_000)
	if err := s.Insert(lazy); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot(f.capFull(s))
	if err != nil {
		t.Fatal(err)
	}
	sv := snap.Partials()[0]
	if !sv.Lazy() {
		t.Fatal("lazy view captured eagerly")
	}
	if sv.NumPages() != eager.NumPages() {
		t.Fatalf("captured %d pages, eager view has %d", sv.NumPages(), eager.NumPages())
	}
	for i := 0; i < sv.NumPages(); i++ {
		want, err := eager.PageBytes(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sv.PageBytes(i), want) {
			t.Fatalf("page %d diverged between lazy capture and eager view", i)
		}
	}
	if lazy.Lazy() != true {
		t.Fatal("snapshot capture materialized the live view")
	}
	if err := snap.ReleaseViews(); err != nil {
		t.Fatal(err)
	}
	if err := eager.Release(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotReleaseHookSurfacesErrors: a failing view release during
// retirement is returned, and the walk still drops every reference.
func TestSnapshotReleaseHookSurfacesErrors(t *testing.T) {
	f := newFixture(t)
	s := f.newSet(10, 0, 0)
	for i := 0; i < 3; i++ {
		lo := uint64(i) * 200_000
		if err := s.Insert(f.mkView(lo, lo+150_000)); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := s.Snapshot(f.capFull(s))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ResetCaptureCache(); err != nil {
		t.Fatal(err)
	}
	released := 0
	s.SetReleaseViewHook(func(v *view.View) error {
		released++
		if err := v.Release(); err != nil {
			return err
		}
		return fmt.Errorf("injected release failure %d", released)
	})
	defer s.SetReleaseViewHook(nil)
	if err := snap.ReleaseViews(); err == nil {
		t.Fatal("injected release failure was swallowed")
	}
	if released != 3 {
		t.Fatalf("released %d captures, want 3 (walk must continue past errors)", released)
	}
}
