// Package obs is the repository's zero-dependency telemetry layer: a
// metrics registry of named lock-free instruments (counters, gauges,
// log₂-bucket histograms) with mergeable, stably-JSON-encoded snapshots;
// a per-query span tree (trace.go); and a fixed-size lock-free journal
// of typed engine events (journal.go).
//
// The design contract every consumer relies on:
//
//   - Recording is wait-free and allocation-free. Counter.Add,
//     Gauge.Set, Histogram.Observe and Journal.Record are a handful of
//     atomic operations — safe on scan kernels and lock handover paths.
//   - Handles are stored once, bumped everywhere: a *Counter /
//     *Gauge / *Histogram is created through a Registry (or directly)
//     during construction and then only ever dereferenced. Instrument
//     fields must be pointers — copying an instrument value forks its
//     counts, which internal/lint's atomicfield analyzer rejects.
//   - Reading is snapshot-based: Registry.Snapshot (and the engine
//     surfaces built on it) copy every instrument into a plain Snapshot
//     that merges and encodes deterministically (Go's encoding/json
//     sorts map keys), so two snapshots of identical activity are
//     byte-identical.
package obs

import (
	"encoding/json"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 instrument.
type Counter struct{ v atomic.Uint64 }

// Add bumps the counter by d.
func (c *Counter) Add(d uint64) { c.v.Add(d) }

// Inc bumps the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 instrument (occupancy, queue depth).
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is the fixed bucket count of a log₂ histogram: bucket i
// holds the observations whose value has bit length i — bucket 0 is
// exactly zero, bucket i (i ≥ 1) covers [2^(i-1), 2^i).
const histBuckets = 65

// Histogram is a fixed-bucket log₂ histogram. Observe is lock-free and
// allocation-free (three atomic adds); quantiles are estimated from the
// bucket boundaries at snapshot time, which is plenty for the factor-of-
// two questions telemetry answers (did p99 stall time double?).
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values (wrapping).
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Snapshot copies the histogram into a plain value. Under concurrent
// Observe the copy is advisory (each field exact at its own read), which
// is the usual contract of statistics counters.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	last := -1
	var raw [histBuckets]uint64
	for i := range h.buckets {
		raw[i] = h.buckets[i].Load()
		if raw[i] != 0 {
			last = i
		}
	}
	if last >= 0 {
		s.Buckets = append([]uint64(nil), raw[:last+1]...)
	}
	return s
}

// Quantile estimates the q-quantile (0..1) of the live histogram.
func (h *Histogram) Quantile(q float64) uint64 { return h.Snapshot().Quantile(q) }

// HistogramSnapshot is a copied histogram: total count and sum plus the
// log₂ buckets (trailing zero buckets trimmed; bucket i covers values of
// bit length i).
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Buckets []uint64 `json:"buckets,omitempty"`
}

// bucketUpper returns the largest value bucket i can hold.
func bucketUpper(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// Quantile estimates the q-quantile (0..1) by nearest rank over the
// buckets, reporting the matched bucket's upper bound (an estimate that
// is exact to within the bucket's factor of two). Zero when empty.
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q*float64(s.Count) + 0.5)
	if rank == 0 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(len(s.Buckets) - 1)
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// merge adds o's observations into s bucket-wise.
func (s HistogramSnapshot) merge(o HistogramSnapshot) HistogramSnapshot {
	s.Count += o.Count
	s.Sum += o.Sum
	if len(o.Buckets) > len(s.Buckets) {
		s.Buckets = append(s.Buckets, make([]uint64, len(o.Buckets)-len(s.Buckets))...)
	}
	for i, c := range o.Buckets {
		s.Buckets[i] += c
	}
	return s
}

// Registry is a named instrument index: get-or-create by name, snapshot
// all. Lookup takes a mutex, so callers resolve their handles once at
// construction and store the pointers — never per operation.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot copies every registered instrument into a Snapshot.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := NewSnapshot()
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Snapshot is a point-in-time copy of a set of instruments, keyed by
// name. It merges (for aggregating subsystems or engine shards) and
// JSON-encodes stably: encoding/json sorts map keys, so identical
// activity yields byte-identical encodings.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// NewSnapshot returns an empty snapshot with initialized maps.
func NewSnapshot() Snapshot {
	return Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
}

// AddCounter accumulates v into the named counter entry.
func (s Snapshot) AddCounter(name string, v uint64) { s.Counters[name] += v }

// SetGauge stores v as the named gauge entry.
func (s Snapshot) SetGauge(name string, v int64) { s.Gauges[name] = v }

// SetHistogram stores h as the named histogram entry, merging with any
// prior entry of the same name.
func (s Snapshot) SetHistogram(name string, h HistogramSnapshot) {
	s.Histograms[name] = s.Histograms[name].merge(h)
}

// Merge folds o into s: counters and histogram buckets add, gauges take
// o's value (last writer wins — gauges are instantaneous readings).
func (s Snapshot) Merge(o Snapshot) Snapshot {
	for name, v := range o.Counters {
		s.Counters[name] += v
	}
	for name, v := range o.Gauges {
		s.Gauges[name] = v
	}
	for name, h := range o.Histograms {
		s.Histograms[name] = s.Histograms[name].merge(h)
	}
	return s
}

// JSON returns the stable (sorted-key) JSON encoding of the snapshot.
func (s Snapshot) JSON() ([]byte, error) { return json.Marshal(s) }

// String renders the snapshot as an aligned human-readable listing:
// counters and gauges sorted by name, histograms with count, mean and
// the p50/p99 bucket-bound estimates.
func (s Snapshot) String() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		writeKV(&b, n, formatUint(s.Counters[n]))
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		writeKV(&b, n, formatInt(s.Gauges[n]))
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		writeKV(&b, n, "count="+formatUint(h.Count)+
			" mean="+formatUint(uint64(h.Mean()))+
			" p50<="+formatUint(h.Quantile(0.50))+
			" p99<="+formatUint(h.Quantile(0.99)))
	}
	return b.String()
}

func writeKV(b *strings.Builder, k, v string) {
	b.WriteString("  ")
	b.WriteString(k)
	if n := 34 - len(k); n > 0 {
		b.WriteString(strings.Repeat(" ", n))
	} else {
		b.WriteByte(' ')
	}
	b.WriteString(v)
	b.WriteByte('\n')
}

func formatUint(v uint64) string {
	return strings.TrimSpace(strings.ReplaceAll(string(appendUint(nil, v)), " ", ""))
}

func formatInt(v int64) string {
	if v < 0 {
		return "-" + formatUint(uint64(-v))
	}
	return formatUint(uint64(v))
}

func appendUint(dst []byte, v uint64) []byte {
	if v == 0 {
		return append(dst, '0')
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return append(dst, buf[i:]...)
}
