package obs

import (
	"bytes"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-10)
	if got := g.Load(); got != -3 {
		t.Fatalf("gauge = %d, want -3", got)
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	var h Histogram
	// 0 → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 4..7 → bucket 3.
	for _, v := range []uint64{0, 1, 2, 3, 4, 5, 6, 7} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 8 || s.Sum != 28 {
		t.Fatalf("count/sum = %d/%d, want 8/28", s.Count, s.Sum)
	}
	want := []uint64{1, 1, 2, 4}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %v, want %v", s.Buckets, want)
	}
	for i, c := range want {
		if s.Buckets[i] != c {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Buckets[i], c, s.Buckets)
		}
	}
	// Nearest-rank over buckets: the median of 8 observations lands in
	// bucket 2 (upper bound 3); p99 lands in bucket 3 (upper bound 7).
	if q := s.Quantile(0.5); q != 3 {
		t.Fatalf("p50 = %d, want 3", q)
	}
	if q := s.Quantile(0.99); q != 7 {
		t.Fatalf("p99 = %d, want 7", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %d, want 0", q)
	}
	if m := s.Mean(); m != 3.5 {
		t.Fatalf("mean = %v, want 3.5", m)
	}
}

func TestHistogramObserveNoAlloc(t *testing.T) {
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { h.Observe(123456) }); n != 0 {
		t.Fatalf("Observe allocates %v per run, want 0", n)
	}
}

func TestRegistryHandlesStoredOnce(t *testing.T) {
	r := NewRegistry()
	c1, c2 := r.Counter("x"), r.Counter("x")
	if c1 != c2 {
		t.Fatal("Counter(name) must return the same handle")
	}
	if r.Gauge("g") != r.Gauge("g") || r.Histogram("h") != r.Histogram("h") {
		t.Fatal("Gauge/Histogram must return stable handles")
	}
	c1.Add(5)
	r.Gauge("g").Set(-1)
	r.Histogram("h").Observe(9)
	s := r.Snapshot()
	if s.Counters["x"] != 5 || s.Gauges["g"] != -1 || s.Histograms["h"].Count != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestSnapshotMergeAndStableJSON(t *testing.T) {
	a := NewSnapshot()
	a.AddCounter("c", 1)
	a.SetGauge("g", 10)
	a.SetHistogram("h", HistogramSnapshot{Count: 1, Sum: 2, Buckets: []uint64{0, 0, 1}})
	b := NewSnapshot()
	b.AddCounter("c", 2)
	b.AddCounter("d", 3)
	b.SetGauge("g", 20)
	b.SetHistogram("h", HistogramSnapshot{Count: 2, Sum: 8, Buckets: []uint64{0, 0, 1, 1}})
	m := a.Merge(b)
	if m.Counters["c"] != 3 || m.Counters["d"] != 3 {
		t.Fatalf("merged counters = %v", m.Counters)
	}
	if m.Gauges["g"] != 20 {
		t.Fatalf("merged gauge = %d, want last-writer 20", m.Gauges["g"])
	}
	h := m.Histograms["h"]
	if h.Count != 3 || h.Sum != 10 || h.Buckets[2] != 2 || h.Buckets[3] != 1 {
		t.Fatalf("merged histogram = %+v", h)
	}

	j1, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("JSON not stable:\n%s\n%s", j1, j2)
	}
	if !bytes.Contains(j1, []byte(`"counters"`)) {
		t.Fatalf("JSON missing counters block: %s", j1)
	}
}

func TestJournalRecordDrain(t *testing.T) {
	var now int64
	j := NewJournal(100, func() int64 { now++; return now })
	if j.Cap() != 128 {
		t.Fatalf("cap = %d, want rounded-up 128", j.Cap())
	}
	j.Record(EvEpochPublished, 1, 2, 3)
	j.Record(EvEpochRetired, 4, 5, 6)
	evs := j.Events()
	if len(evs) != 2 {
		t.Fatalf("drained %d events, want 2", len(evs))
	}
	if evs[0].Seq != 1 || evs[0].Type != EvEpochPublished || evs[0].A != 1 || evs[0].Time != 1 {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	if evs[1].Seq != 2 || evs[1].Type != EvEpochRetired || evs[1].C != 6 {
		t.Fatalf("event 1 = %+v", evs[1])
	}
	if j.Recorded() != 2 {
		t.Fatalf("recorded = %d, want 2", j.Recorded())
	}
}

func TestJournalWrapKeepsNewest(t *testing.T) {
	j := NewJournal(64, func() int64 { return 0 })
	const total = 200
	for i := 0; i < total; i++ {
		j.Record(EvViewInserted, int64(i), 0, 0)
	}
	evs := j.Events()
	if len(evs) != 64 {
		t.Fatalf("drained %d, want ring cap 64", len(evs))
	}
	for i, ev := range evs {
		wantSeq := uint64(total - 64 + i + 1)
		if ev.Seq != wantSeq {
			t.Fatalf("event %d seq = %d, want %d", i, ev.Seq, wantSeq)
		}
		if ev.A != int64(ev.Seq-1) {
			t.Fatalf("event %d payload %d does not match seq %d", i, ev.A, ev.Seq)
		}
	}
}

func TestJournalNilInert(t *testing.T) {
	var j *Journal
	j.Record(EvEpochPublished, 0, 0, 0)
	if j.Events() != nil || j.Cap() != 0 || j.Recorded() != 0 {
		t.Fatal("nil journal must be inert")
	}
	if NewJournal(0, nil) != nil {
		t.Fatal("size<=0 must return the nil journal")
	}
}

func TestJournalRecordNoAlloc(t *testing.T) {
	j := NewJournal(256, func() int64 { return 0 })
	if n := testing.AllocsPerRun(1000, func() { j.Record(EvRoomHandover, 1, 2, 3) }); n != 0 {
		t.Fatalf("Record allocates %v per run, want 0", n)
	}
}

// TestJournalConcurrent hammers Record from many goroutines while a
// reader drains: drained sequence numbers must be unique and strictly
// increasing (monotone), and no drained event may mix payloads (payload
// word A always echoes seq-1 here, so a torn read is detectable).
func TestJournalConcurrent(t *testing.T) {
	j := NewJournal(512, func() int64 { return 0 })
	const writers, perWriter = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			evs := j.Events()
			var prev uint64
			for _, ev := range evs {
				if ev.Seq <= prev {
					t.Errorf("non-monotone drain: %d after %d", ev.Seq, prev)
					return
				}
				prev = ev.Seq
				if ev.A != int64(ev.Seq-1) {
					t.Errorf("torn event: seq %d carries payload %d", ev.Seq, ev.A)
					return
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				j.recordEcho()
			}
		}()
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()
	if got := j.Recorded(); got != writers*perWriter {
		t.Fatalf("recorded = %d, want %d", got, writers*perWriter)
	}
}

// recordEcho records an event whose payload word A echoes its own
// sequence number minus one, so readers can detect torn entries.
func (j *Journal) recordEcho() {
	seq := j.next.Add(1)
	s := &j.slots[(seq-1)&j.mask]
	s.seq.Store(0)
	s.t.Store(j.now())
	s.typ.Store(uint32(EvViewInserted))
	s.a.Store(int64(seq - 1))
	s.b.Store(0)
	s.c.Store(0)
	s.seq.Store(seq)
}

func TestTraceTree(t *testing.T) {
	tr := NewTrace("query")
	pin := tr.Root.Child("pin")
	pin.SetAttr("epoch", 3)
	pin.Finish()
	scan := tr.Root.Child("scan")
	v := scan.Child("view")
	v.SetAttr("pages", 12)
	v.Finish()
	scan.ChildAt("stall", scan.Start, scan.Start+100)
	scan.Finish()
	tr.Finish()

	root := tr.Root
	if root.End == 0 || root.End < root.Start {
		t.Fatalf("root not finished: %+v", root)
	}
	if len(root.Children) != 2 || root.Children[0].Name != "pin" || root.Children[1].Name != "scan" {
		t.Fatalf("children = %+v", root.Children)
	}
	if got := root.Children[1].Children[1].Dur(); got != 100 {
		t.Fatalf("synthetic stall span duration = %v, want 100ns", got)
	}
	out := tr.String()
	for _, want := range []string{"query", "pin", "epoch=3", "view", "pages=12", "stall"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("trace output missing %q:\n%s", want, out)
		}
	}
	// Double-finish keeps the first end time.
	end := root.End
	root.Finish()
	if root.End != end {
		t.Fatal("second Finish must not move End")
	}
}

func TestSpanNilSafe(t *testing.T) {
	var s *Span
	c := s.Child("x")
	if c != nil {
		t.Fatal("child of nil span must be nil")
	}
	s.SetAttr("k", 1)
	s.Finish()
	if s.Dur() != 0 {
		t.Fatal("nil span duration must be 0")
	}
	if s.ChildAt("y", 0, 1) != nil {
		t.Fatal("ChildAt on nil span must be nil")
	}
	var tr *Trace
	tr.Finish()
	if tr.String() != "" {
		t.Fatal("nil trace must stringify empty")
	}
}

func TestSnapshotString(t *testing.T) {
	s := NewSnapshot()
	s.AddCounter("engine_queries", 10)
	s.SetGauge("tier_hot_frames", 4)
	s.SetHistogram("scan_ns_per_page", HistogramSnapshot{Count: 2, Sum: 6, Buckets: []uint64{0, 0, 2}})
	out := s.String()
	for _, want := range []string{"engine_queries", "10", "tier_hot_frames", "scan_ns_per_page", "count=2"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("String() missing %q:\n%s", want, out)
		}
	}
}
