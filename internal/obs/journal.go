package obs

import (
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// EventType names one kind of engine event in the journal.
type EventType uint32

// The engine event vocabulary. The A/B/C payload words are typed per
// event; see the String method and the README event-type table for the
// per-event meaning.
const (
	// EvEpochPublished: a new engine state was published.
	// A=generation, B=views re-captured, C=frames queued for retirement.
	EvEpochPublished EventType = iota + 1
	// EvEpochRetired: a superseded state drained and was reclaimed.
	// A=generation, B=publish→drain lag ns, C=frames freed.
	EvEpochRetired
	// EvDutyBegin: an autopilot duty entered the engine.
	// A=duty code (see Duty* constants).
	EvDutyBegin
	// EvDutyEnd: the duty returned. A=duty code, B=work done
	// (views evicted / rebuilt / pages demoted / writes applied),
	// C=1 when the duty failed, 0 on success.
	EvDutyEnd
	// EvTierDemoteBatch: a demotion sweep moved pages to the cold
	// tier. A=pages demoted, B=pages requested.
	EvTierDemoteBatch
	// EvTierPromoteBatch: scans promoted pages back to the hot tier
	// since the previous observation. A=pages promoted.
	EvTierPromoteBatch
	// EvViewInserted: a candidate view entered the view set.
	// A=lo, B=hi of the view's interval.
	EvViewInserted
	// EvViewReplaced: a candidate replaced an existing view. A=lo, B=hi.
	EvViewReplaced
	// EvViewEvicted: the set evicted a view to admit a candidate. A=lo, B=hi.
	EvViewEvicted
	// EvViewDiscarded: a candidate was discarded unadmitted. A=lo, B=hi.
	EvViewDiscarded
	// EvViewExpired: maintenance expired a cold view. A=lo, B=hi.
	EvViewExpired
	// EvViewRebuilt: maintenance rebuilt a fragmented view. A=lo, B=hi.
	EvViewRebuilt
	// EvRoomHandover: the room lock handed over between modes.
	// A=from room, B=to room (0 none, 1 scan, 2 update, 3 exclusive),
	// C=grants issued.
	EvRoomHandover
)

// String returns the event type's stable name.
func (t EventType) String() string {
	switch t {
	case EvEpochPublished:
		return "epoch_published"
	case EvEpochRetired:
		return "epoch_retired"
	case EvDutyBegin:
		return "duty_begin"
	case EvDutyEnd:
		return "duty_end"
	case EvTierDemoteBatch:
		return "tier_demote_batch"
	case EvTierPromoteBatch:
		return "tier_promote_batch"
	case EvViewInserted:
		return "view_inserted"
	case EvViewReplaced:
		return "view_replaced"
	case EvViewEvicted:
		return "view_evicted"
	case EvViewDiscarded:
		return "view_discarded"
	case EvViewExpired:
		return "view_expired"
	case EvViewRebuilt:
		return "view_rebuilt"
	case EvRoomHandover:
		return "room_handover"
	default:
		return "unknown"
	}
}

// Autopilot duty codes carried in EvDutyBegin/EvDutyEnd payload word A.
const (
	DutyApply int64 = iota + 1
	DutyAlign
	DutyEvict
	DutyRebuild
	DutyWarm
	DutyDemote
)

// DutyName returns the stable name of an autopilot duty code.
func DutyName(code int64) string {
	switch code {
	case DutyApply:
		return "apply"
	case DutyAlign:
		return "align"
	case DutyEvict:
		return "evict"
	case DutyRebuild:
		return "rebuild"
	case DutyWarm:
		return "warm"
	case DutyDemote:
		return "demote"
	default:
		return "unknown"
	}
}

// Event is one drained journal entry. Seq is globally unique and
// monotone in claim order; Time comes from the journal's clock.
type Event struct {
	Seq  uint64    `json:"seq"`
	Time int64     `json:"time_ns"`
	Type EventType `json:"type"`
	A    int64     `json:"a"`
	B    int64     `json:"b"`
	C    int64     `json:"c"`
}

// String renders the event as one line.
func (e Event) String() string {
	var b strings.Builder
	b.WriteString("#")
	b.Write(appendUint(nil, e.Seq))
	b.WriteString(" t=")
	b.WriteString(formatInt(e.Time))
	b.WriteString(" ")
	b.WriteString(e.Type.String())
	b.WriteString(" a=")
	b.WriteString(formatInt(e.A))
	b.WriteString(" b=")
	b.WriteString(formatInt(e.B))
	b.WriteString(" c=")
	b.WriteString(formatInt(e.C))
	return b.String()
}

// journalSlot is one ring entry. Every field is atomic so concurrent
// Record/Events stay race-free; seq doubles as the seqlock word — zero
// means a write is in progress.
type journalSlot struct {
	seq atomic.Uint64
	t   atomic.Int64
	typ atomic.Uint32
	a   atomic.Int64
	b   atomic.Int64
	c   atomic.Int64
}

// Journal is a fixed-size lock-free ring of typed engine events. Writers
// claim a global sequence number and publish into slot seq mod size with
// a per-slot seqlock: store seq=0 (write in progress), store the
// payload, store the final sequence number last. Readers validate the
// sequence word around the payload read and drop entries that changed
// under them, so a drain never reports a torn event from any writer the
// ring hasn't lapped. (A writer lapped by the entire ring during its
// store window could in principle leave one mixed entry; with rings of
// thousands of slots that window is vanishingly small, and the journal
// is diagnostic data, not ground truth.)
//
// A nil *Journal is valid and inert: Record on nil is a no-op, Events on
// nil returns nil. The engine stores nil when journaling is disabled so
// hot paths pay a single pointer test.
type Journal struct {
	now   func() int64
	mask  uint64
	next  atomic.Uint64
	slots []journalSlot
}

// NewJournal returns a journal with capacity rounded up to a power of
// two (minimum 64). A nil or zero-argument clock defaults to wall time.
// size <= 0 returns nil — the inert, disabled journal.
func NewJournal(size int, now func() int64) *Journal {
	if size <= 0 {
		return nil
	}
	cap := 64
	for cap < size {
		cap <<= 1
	}
	if now == nil {
		now = func() int64 { return time.Now().UnixNano() }
	}
	return &Journal{now: now, mask: uint64(cap - 1), slots: make([]journalSlot, cap)}
}

// Cap returns the ring capacity (0 for a nil journal).
func (j *Journal) Cap() int {
	if j == nil {
		return 0
	}
	return len(j.slots)
}

// Recorded returns how many events have ever been recorded (the ring
// keeps the most recent Cap of them).
func (j *Journal) Recorded() uint64 {
	if j == nil {
		return 0
	}
	return j.next.Load()
}

// Record appends one event. Wait-free, allocation-free, and a no-op on a
// nil journal.
func (j *Journal) Record(typ EventType, a, b, c int64) {
	if j == nil {
		return
	}
	seq := j.next.Add(1)
	s := &j.slots[(seq-1)&j.mask]
	s.seq.Store(0)
	s.t.Store(j.now())
	s.typ.Store(uint32(typ))
	s.a.Store(a)
	s.b.Store(b)
	s.c.Store(c)
	s.seq.Store(seq)
}

// Events drains a consistent copy of the ring, sorted by sequence
// number. Entries mid-write (or overwritten during the read) are
// skipped. Nil journal drains nil.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	out := make([]Event, 0, len(j.slots))
	for i := range j.slots {
		s := &j.slots[i]
		s1 := s.seq.Load()
		if s1 == 0 {
			continue
		}
		ev := Event{
			Seq:  s1,
			Time: s.t.Load(),
			Type: EventType(s.typ.Load()),
			A:    s.a.Load(),
			B:    s.b.Load(),
			C:    s.c.Load(),
		}
		if s.seq.Load() != s1 {
			continue
		}
		out = append(out, ev)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}
