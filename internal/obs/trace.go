package obs

import (
	"strings"
	"time"
)

// traceBase anchors span timestamps: all Start/End values are
// nanoseconds since process start, read from Go's monotonic clock so
// span durations are immune to wall-clock steps.
var traceBase = time.Now()

func nowNanos() int64 { return int64(time.Since(traceBase)) }

// Trace is one query's span tree. A trace (and every span in it) is
// owned by the goroutine coordinating the query: the engine records
// spans only from the coordinating goroutine — sharded scan workers
// never touch the trace; their work is attributed through counter deltas
// on the enclosing span. This keeps tracing allocation-light and makes a
// finished trace safe to read without synchronization.
type Trace struct {
	Root *Span
}

// NewTrace starts a trace whose root span begins now.
func NewTrace(name string) *Trace {
	return &Trace{Root: &Span{Name: name, Start: nowNanos()}}
}

// Finish ends the root span (if not already ended).
func (t *Trace) Finish() {
	if t != nil {
		t.Root.Finish()
	}
}

// String pretty-prints the span tree.
func (t *Trace) String() string {
	if t == nil || t.Root == nil {
		return ""
	}
	var b strings.Builder
	t.Root.write(&b, 0)
	return b.String()
}

// Attr is one integer attribute on a span.
type Attr struct {
	Key string `json:"key"`
	Val int64  `json:"val"`
}

// Span is one timed region of a traced query. Start and End are
// nanoseconds since process start (monotonic).
type Span struct {
	Name     string  `json:"name"`
	Start    int64   `json:"start_ns"`
	End      int64   `json:"end_ns"`
	Attrs    []Attr  `json:"attrs,omitempty"`
	Children []*Span `json:"children,omitempty"`
}

// Child starts a sub-span. Nil-safe: a child of a nil span is nil, and
// every Span method is a no-op on nil — untraced code paths thread a nil
// span through at zero cost.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Start: nowNanos()}
	s.Children = append(s.Children, c)
	return c
}

// ChildAt attaches a sub-span with explicit bounds — used to represent
// time measured by counters (e.g. tier stall ns) as a span.
func (s *Span) ChildAt(name string, start, end int64) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Start: start, End: end}
	s.Children = append(s.Children, c)
	return c
}

// SetAttr records an integer attribute. No-op on nil.
func (s *Span) SetAttr(key string, v int64) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Val: v})
}

// Finish ends the span (first call wins). No-op on nil.
func (s *Span) Finish() {
	if s != nil && s.End == 0 {
		s.End = nowNanos()
	}
}

// Dur returns the span duration (0 while unfinished).
func (s *Span) Dur() time.Duration {
	if s == nil || s.End == 0 {
		return 0
	}
	return time.Duration(s.End - s.Start)
}

func (s *Span) write(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(s.Name)
	b.WriteString("  ")
	b.WriteString(s.Dur().String())
	for _, a := range s.Attrs {
		b.WriteString("  ")
		b.WriteString(a.Key)
		b.WriteString("=")
		b.WriteString(formatInt(a.Val))
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		c.write(b, depth+1)
	}
}
