package workload

import (
	"testing"
)

func TestSelectivitySweepShape(t *testing.T) {
	const n = 250
	qs := SelectivitySweep(1, n, 100_000_000, 50_000_000, 5_000)
	if len(qs) != n {
		t.Fatalf("len = %d", len(qs))
	}
	var minW, maxW uint64 = ^uint64(0), 0
	for _, q := range qs {
		if q.Hi > 100_000_000 || q.Lo > q.Hi {
			t.Fatalf("query out of domain: %+v", q)
		}
		w := q.Width()
		if w < minW {
			minW = w
		}
		if w > maxW {
			maxW = w
		}
	}
	if maxW != 50_000_000 {
		t.Fatalf("max width %d, want 50M", maxW)
	}
	if minW > 5_100 || minW < 4_900 {
		t.Fatalf("min width %d, want ~5000", minW)
	}
}

func TestSelectivitySweepShuffled(t *testing.T) {
	qs := SelectivitySweep(1, 250, 100_000_000, 50_000_000, 5_000)
	// If widths were still sorted descending the sweep was not shuffled.
	sortedDesc := true
	for i := 1; i < len(qs); i++ {
		if qs[i].Width() > qs[i-1].Width() {
			sortedDesc = false
			break
		}
	}
	if sortedDesc {
		t.Fatal("sweep not shuffled")
	}
}

func TestSelectivitySweepDeterministic(t *testing.T) {
	a := SelectivitySweep(7, 50, 1_000_000, 500_000, 100)
	b := SelectivitySweep(7, 50, 1_000_000, 500_000, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed sweeps differ")
		}
	}
}

func TestFixedSelectivity(t *testing.T) {
	qs := FixedSelectivity(3, 100, 100_000_000, 0.01)
	for _, q := range qs {
		if q.Width() != 1_000_000 {
			t.Fatalf("width %d, want 1M", q.Width())
		}
		if q.Hi > 100_000_000 {
			t.Fatalf("query exceeds domain: %+v", q)
		}
	}
}

func TestUniformUpdates(t *testing.T) {
	ups := UniformUpdates(5, 1000, 12345, 10, 20)
	if len(ups) != 1000 {
		t.Fatalf("len = %d", len(ups))
	}
	for _, u := range ups {
		if u.Row < 0 || u.Row >= 12345 {
			t.Fatalf("row %d out of range", u.Row)
		}
		if u.Value < 10 || u.Value > 20 {
			t.Fatalf("value %d out of range", u.Value)
		}
	}
}

func TestRandomSubranges(t *testing.T) {
	rs := RandomSubranges(9, 5, 1<<40, 1.0/1024)
	if len(rs) != 5 {
		t.Fatalf("len = %d", len(rs))
	}
	want := uint64(float64(uint64(1)<<40) / 1024)
	for _, r := range rs {
		if r.Width() != want {
			t.Fatalf("width %d, want %d", r.Width(), want)
		}
	}
}

func TestPanicsOnBadParameters(t *testing.T) {
	cases := []func(){
		func() { SelectivitySweep(1, 0, 100, 50, 5) },
		func() { SelectivitySweep(1, 10, 100, 5, 50) },
		func() { SelectivitySweep(1, 10, 100, 500, 5) },
		func() { FixedSelectivity(1, 10, 100, 0) },
		func() { FixedSelectivity(1, 10, 100, 1.5) },
		func() { UniformUpdates(1, 5, 0, 0, 10) },
		func() { UniformUpdates(1, 5, 10, 20, 10) },
		func() { RandomSubranges(1, 0, 100, 0.5) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestConcurrentClientsDeterministic(t *testing.T) {
	const (
		clients = 4
		n       = 25
		domain  = uint64(100_000_000)
		sel     = 0.01
	)
	a := ConcurrentClients(42, clients, n, domain, sel)
	b := ConcurrentClients(42, clients, n, domain, sel)
	if len(a) != clients {
		t.Fatalf("clients = %d", len(a))
	}
	for c := range a {
		if len(a[c]) != n {
			t.Fatalf("client %d: %d queries", c, len(a[c]))
		}
		for i := range a[c] {
			if a[c][i] != b[c][i] {
				t.Fatalf("client %d query %d: %+v != %+v — streams not deterministic",
					c, i, a[c][i], b[c][i])
			}
			if a[c][i].Hi > domain || a[c][i].Lo > a[c][i].Hi {
				t.Fatalf("client %d query %d out of domain: %+v", c, i, a[c][i])
			}
		}
	}
	// Distinct clients must fire distinct streams (decorrelated seeds).
	same := 0
	for i := range a[0] {
		if a[0][i] == a[1][i] {
			same++
		}
	}
	if same == n {
		t.Fatal("client 0 and client 1 streams are identical")
	}
	// A stream is a prefix-stable function of its parameters: asking for
	// fewer queries yields the same leading queries.
	short := ConcurrentClients(42, clients, n/2, domain, sel)
	for c := range short {
		for i := range short[c] {
			if short[c][i] != a[c][i] {
				t.Fatalf("client %d: stream not prefix-stable at %d", c, i)
			}
		}
	}
}

func TestConcurrentClientsPanicsOnBadParameters(t *testing.T) {
	for i, f := range []func(){
		func() { ConcurrentClients(1, 0, 10, 100, 0.5) },
		func() { ConcurrentClients(1, -1, 10, 100, 0.5) },
		func() { ConcurrentClients(1, 2, 10, 100, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestTenantAssignments(t *testing.T) {
	const (
		tenants = 4
		clients = 64
	)
	a, err := TenantAssignments(11, tenants, clients, "zipf")
	if err != nil {
		t.Fatal(err)
	}
	b, err := TenantAssignments(11, tenants, clients, "zipf")
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != clients {
		t.Fatalf("assignments = %d", len(a))
	}
	counts := make([]int, tenants)
	for i, v := range a {
		if v < 0 || v >= tenants {
			t.Fatalf("client %d assigned to tenant %d (of %d)", i, v, tenants)
		}
		if v != b[i] {
			t.Fatalf("client %d: assignment not deterministic (%d vs %d)", i, v, b[i])
		}
		counts[v]++
	}
	// A zipf skew concentrates load: some tenant must be clearly hotter
	// than a uniform split would make it.
	hottest := 0
	for _, n := range counts {
		if n > hottest {
			hottest = n
		}
	}
	if hottest <= clients/tenants {
		t.Fatalf("zipf skew produced no hot tenant: counts %v", counts)
	}
	if _, err := TenantAssignments(11, tenants, clients, "no-such-skew"); err == nil {
		t.Fatal("unknown skew name accepted")
	}
}

func TestMultiTenantClients(t *testing.T) {
	const (
		tenants = 4
		clients = 8
		n       = 20
		domain  = uint64(1_000_000)
	)
	streams, assignments, err := MultiTenantClients(42, tenants, clients, n, domain, 0.05, "hotspot")
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) != clients || len(assignments) != clients {
		t.Fatalf("%d streams, %d assignments, want %d of each", len(streams), len(assignments), clients)
	}
	// The query streams are exactly the ConcurrentClients streams: the
	// tenant dimension adds routing, never different queries.
	plain := ConcurrentClients(42, clients, n, domain, 0.05)
	for c := range streams {
		for i := range streams[c] {
			if streams[c][i] != plain[c][i] {
				t.Fatalf("client %d query %d diverged from ConcurrentClients", c, i)
			}
		}
	}
	for i, v := range assignments {
		if v < 0 || v >= tenants {
			t.Fatalf("client %d assigned to tenant %d (of %d)", i, v, tenants)
		}
	}
}

func TestConcurrentUpdatersDeterministic(t *testing.T) {
	const (
		writers = 4
		n       = 30
		rows    = 10_000
		valHi   = uint64(1_000_000)
	)
	a := ConcurrentUpdaters(7, writers, n, rows, 0, valHi)
	b := ConcurrentUpdaters(7, writers, n, rows, 0, valHi)
	if len(a) != writers {
		t.Fatalf("writers = %d", len(a))
	}
	for w := range a {
		if len(a[w]) != n {
			t.Fatalf("writer %d: %d updates", w, len(a[w]))
		}
		for i := range a[w] {
			if a[w][i] != b[w][i] {
				t.Fatalf("writer %d update %d: %+v != %+v — streams not deterministic",
					w, i, a[w][i], b[w][i])
			}
			if a[w][i].Row < 0 || a[w][i].Row >= rows || a[w][i].Value > valHi {
				t.Fatalf("writer %d update %d out of bounds: %+v", w, i, a[w][i])
			}
		}
	}
	// Distinct writers must fire distinct streams (decorrelated seeds).
	same := 0
	for i := range a[0] {
		if a[0][i] == a[1][i] {
			same++
		}
	}
	if same == n {
		t.Fatal("writer 0 and writer 1 streams are identical")
	}
	// Writer i's stream must not depend on how many writers exist.
	two := ConcurrentUpdaters(7, 2, n, rows, 0, valHi)
	for i := range two[1] {
		if two[1][i] != a[1][i] {
			t.Fatalf("writer 1 stream changed with writer count at %d", i)
		}
	}
}

func TestConcurrentUpdatersPanicsOnBadParameters(t *testing.T) {
	for i, f := range []func(){
		func() { ConcurrentUpdaters(1, 0, 10, 100, 0, 50) },
		func() { ConcurrentUpdaters(1, -2, 10, 100, 0, 50) },
		func() { ConcurrentUpdaters(1, 2, 10, 0, 0, 50) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}
