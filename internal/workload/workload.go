// Package workload generates the query sequences and update batches of the
// paper's evaluation (§3), deterministically from a seed.
package workload

import (
	"math"

	"github.com/asv-db/asv/internal/dist"
	"github.com/asv-db/asv/internal/xrand"
)

// Query is an inclusive range predicate.
type Query struct {
	Lo, Hi uint64
}

// Width returns the selected value-range width.
func (q Query) Width() uint64 { return q.Hi - q.Lo }

// SelectivitySweep generates the §3.2 single-view workload: n queries
// whose selected value range shrinks step-wise (geometrically) from
// maxWidth down to minWidth over the domain [0, domainHi], each placed at
// a uniform position, then shuffled — "we generate a sequence of 250
// queries which vary the selected value range step-wise from 50M (low
// selectivity) down to 5000 (high selectivity). Before firing, we shuffle
// the generated queries randomly."
func SelectivitySweep(seed uint64, n int, domainHi, maxWidth, minWidth uint64) []Query {
	if n <= 0 || minWidth == 0 || maxWidth < minWidth || maxWidth > domainHi {
		panic("workload: bad selectivity sweep parameters")
	}
	rng := xrand.New(seed)
	qs := make([]Query, n)
	ratio := 1.0
	if n > 1 {
		ratio = math.Pow(float64(minWidth)/float64(maxWidth), 1/float64(n-1))
	}
	w := float64(maxWidth)
	for i := range qs {
		width := uint64(w)
		if width < minWidth {
			width = minWidth
		}
		lo := rng.Uint64n(domainHi - width + 1)
		qs[i] = Query{Lo: lo, Hi: lo + width}
		w *= ratio
	}
	rng.Shuffle(n, func(i, j int) { qs[i], qs[j] = qs[j], qs[i] })
	return qs
}

// FixedSelectivity generates the §3.2 multi-view workload: n queries, each
// selecting a range of selectivity sel (fraction of the value domain
// [0, domainHi]) at a uniform position. "In this experiment, we fix the
// selectivity."
func FixedSelectivity(seed uint64, n int, domainHi uint64, sel float64) []Query {
	if n <= 0 || sel <= 0 || sel > 1 {
		panic("workload: bad fixed-selectivity parameters")
	}
	width := uint64(float64(domainHi) * sel)
	if width == 0 {
		width = 1
	}
	rng := xrand.New(seed)
	qs := make([]Query, n)
	for i := range qs {
		lo := rng.Uint64n(domainHi - width + 1)
		qs[i] = Query{Lo: lo, Hi: lo + width}
	}
	return qs
}

// ConcurrentClients generates the multi-client throughput workload: one
// deterministic query stream per client, all derived from a single seed.
// Client i's stream depends only on (seed, i, n, domainHi, sel) — never on
// how many goroutines consume the streams or in which order they run — so
// a concurrent benchmark fires exactly the same queries as its serial
// re-check. Each stream fixes the selected range width to sel × domainHi
// (the §3.2 fixed-selectivity shape) at per-client uniform positions, so
// every client exercises its own hot ranges and the adaptive layer sees a
// realistic mixed workload.
func ConcurrentClients(seed uint64, clients, n int, domainHi uint64, sel float64) [][]Query {
	if clients <= 0 {
		panic("workload: bad client count")
	}
	out := make([][]Query, clients)
	for i := range out {
		// Decorrelate the per-client seeds with one splitmix64 step; xrand
		// seeds that differ in one increment would otherwise start from
		// correlated streams.
		s := seed + uint64(i)*0x9e3779b97f4a7c15
		out[i] = FixedSelectivity(xrand.Splitmix64(&s), n, domainHi, sel)
	}
	return out
}

// TenantAssignments maps clients onto tenants with the named skew: the
// assignment of client i depends only on (seed, tenants, clients, skew),
// never on execution order, so a concurrent multi-tenant benchmark
// always drives the same tenant mix. The skew is any dist generator name
// — "uniform" spreads clients evenly, "zipf" or "hotspot" concentrates
// them on a few hot tenants, matching how real multi-tenant fleets load
// a shared front end.
func TenantAssignments(seed uint64, tenants, clients int, skew string) ([]int, error) {
	if tenants <= 0 || clients <= 0 {
		panic("workload: bad tenant assignment parameters")
	}
	g, err := dist.ByName(skew, seed, 0, uint64(tenants-1), 1)
	if err != nil {
		return nil, err
	}
	vals := make([]uint64, clients)
	g.FillPage(0, vals)
	out := make([]int, clients)
	for i, v := range vals {
		out[i] = int(v % uint64(tenants))
	}
	return out, nil
}

// MultiTenantClients extends ConcurrentClients into the closed-loop
// multi-tenant driver of the serve panel: per-client query streams (the
// same decorrelated fixed-selectivity shape) plus a skewed client→tenant
// assignment. Client i fires stream i at tenant assignments[i].
func MultiTenantClients(seed uint64, tenants, clients, n int, domainHi uint64, sel float64, skew string) (streams [][]Query, assignments []int, err error) {
	assignments, err = TenantAssignments(seed^0xa5a5a5a5a5a5a5a5, tenants, clients, skew)
	if err != nil {
		return nil, nil, err
	}
	return ConcurrentClients(seed, clients, n, domainHi, sel), assignments, nil
}

// PointUpdate describes one row overwrite to be applied.
type PointUpdate struct {
	Row   int
	Value uint64
}

// ConcurrentUpdaters generates the mixed read/write throughput workload:
// one deterministic update stream per writer, all derived from a single
// seed. Writer i's stream depends only on (seed, i, n, rows, valLo,
// valHi) — never on how many goroutines consume the streams or in which
// order they run — so a concurrent benchmark applies exactly the same
// writes as its serial re-check. Each stream draws n uniform row
// positions with uniform new values in [valLo, valHi] (the §3.1/§3.4
// update shape, per writer).
func ConcurrentUpdaters(seed uint64, writers, n, rows int, valLo, valHi uint64) [][]PointUpdate {
	if writers <= 0 {
		panic("workload: bad writer count")
	}
	out := make([][]PointUpdate, writers)
	for i := range out {
		// Decorrelate the per-writer seeds with one splitmix64 step, like
		// ConcurrentClients: incrementally related xrand seeds would start
		// from correlated streams.
		s := seed + uint64(i)*0x9e3779b97f4a7c15
		out[i] = UniformUpdates(xrand.Splitmix64(&s), n, rows, valLo, valHi)
	}
	return out
}

// UniformUpdates draws n updates at uniformly selected rows with uniform
// new values in [valLo, valHi] — the update streams of §3.1 ("we also
// update 10,000 uniformly selected entries") and §3.4.
func UniformUpdates(seed uint64, n, rows int, valLo, valHi uint64) []PointUpdate {
	if n < 0 || rows <= 0 || valLo > valHi {
		panic("workload: bad update parameters")
	}
	rng := xrand.New(seed)
	out := make([]PointUpdate, n)
	for i := range out {
		out[i] = PointUpdate{
			Row:   rng.Intn(rows),
			Value: rng.Uint64Range(valLo, valHi),
		}
	}
	return out
}

// RandomSubranges draws n value ranges of the given width fraction of
// [0, domainHi] at uniform positions — the five random 1/1024-wide view
// ranges of the §3.4 update experiment.
func RandomSubranges(seed uint64, n int, domainHi uint64, widthFrac float64) []Query {
	if n <= 0 || widthFrac <= 0 || widthFrac > 1 {
		panic("workload: bad subrange parameters")
	}
	width := uint64(float64(domainHi) * widthFrac)
	if width == 0 {
		width = 1
	}
	rng := xrand.New(seed)
	out := make([]Query, n)
	for i := range out {
		lo := rng.Uint64n(domainHi - width + 1)
		out[i] = Query{Lo: lo, Hi: lo + width}
	}
	return out
}
