// Package table assembles per-column adaptive engines into multi-column
// tables — the full picture of the paper's Figure 1, where every column of
// a table carries its own physical column, full view, and adaptively
// maintained partial views.
//
// Conjunctive range predicates over several columns are answered by
// routing each predicate to its column's best view(s), materializing the
// qualifying row sets (row identity comes from the embedded pageIDs, so
// scattered partial views produce correct row IDs), and intersecting them.
// Each per-column scan adapts that column's view set as a side product,
// exactly as single-column queries do.
package table

import (
	"fmt"
	"sort"

	"github.com/asv-db/asv/internal/core"
	"github.com/asv-db/asv/internal/storage"
	"github.com/asv-db/asv/internal/vmsim"
)

// Table is a set of equally-sized columns, each wrapped in an adaptive
// storage layer.
type Table struct {
	name     string
	numPages int
	colNames []string
	engines  map[string]*core.Engine
}

// New creates a table with the given columns, each numPages pages long.
// All columns share the kernel and address space (as in the paper: one
// process hosts the whole storage layer).
func New(k *vmsim.Kernel, as *vmsim.AddressSpace, name string, numPages int,
	colNames []string, cfg core.Config) (*Table, error) {
	if len(colNames) == 0 {
		return nil, fmt.Errorf("table: %q needs at least one column", name)
	}
	t := &Table{
		name:     name,
		numPages: numPages,
		colNames: append([]string(nil), colNames...),
		engines:  make(map[string]*core.Engine, len(colNames)),
	}
	for _, cn := range colNames {
		if _, dup := t.engines[cn]; dup {
			_ = t.Close() //asv:ignore-err unwinding partial table construction; the duplicate-column error is returned
			return nil, fmt.Errorf("table: duplicate column %q", cn)
		}
		col, err := storage.NewColumn(k, as, name+"."+cn, numPages)
		if err != nil {
			_ = t.Close() //asv:ignore-err unwinding partial table construction; the construction error is returned
			return nil, err
		}
		eng, err := core.NewEngine(col, cfg)
		if err != nil {
			_ = col.Close() //asv:ignore-err unwinding partial table construction; the construction error is returned
			_ = t.Close()   //asv:ignore-err unwinding partial table construction; the construction error is returned
			return nil, err
		}
		t.engines[cn] = eng
	}
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Columns returns the column names in declaration order.
func (t *Table) Columns() []string { return t.colNames }

// Rows returns the number of rows (identical across columns).
func (t *Table) Rows() int { return t.numPages * storage.ValuesPerPage }

// NumPages returns the per-column page count.
func (t *Table) NumPages() int { return t.numPages }

// Engine returns the adaptive engine of one column.
func (t *Table) Engine(column string) (*core.Engine, error) {
	e, ok := t.engines[column]
	if !ok {
		return nil, fmt.Errorf("table: %q has no column %q", t.name, column)
	}
	return e, nil
}

// Predicate is an inclusive range condition on one column.
type Predicate struct {
	Column string
	Lo, Hi uint64
}

// String renders the predicate.
func (p Predicate) String() string {
	return fmt.Sprintf("%s in [%d, %d]", p.Column, p.Lo, p.Hi)
}

// SelectResult reports a conjunctive selection along with per-column
// telemetry.
type SelectResult struct {
	Rows         *core.RowSet
	PagesScanned int // across all predicate scans
	ViewsUsed    int // across all predicate scans
}

// Select answers the conjunction of the given predicates (logical AND) and
// returns the qualifying row set. Duplicate predicates on the same column
// are intersected like any others.
//
// Every involved column is pinned to a snapshot at one catalog instant
// before the first scan: all predicate evaluations — including several
// predicates on the same column — observe a single consistent epoch per
// column, unmoved by concurrent writers or maintenance. Pinning flushes
// each column's pending updates first, so the snapshot reflects every
// write applied before the Select. Predicates are evaluated one column at
// a time with early exit once the intersection is empty; each evaluation
// still adapts that column's view set as a side product (candidates built
// from the pinned epoch are discarded if alignment ran since).
func (t *Table) Select(preds []Predicate) (*SelectResult, error) {
	if len(preds) == 0 {
		return nil, fmt.Errorf("table: empty predicate list")
	}
	// Validate all columns up front so errors do not depend on evaluation
	// order.
	for _, p := range preds {
		if _, err := t.Engine(p.Column); err != nil {
			return nil, err
		}
	}
	// Pin the involved columns at one instant, in declaration order for
	// determinism.
	snaps := make(map[string]*core.Snapshot)
	defer func() {
		for _, s := range snaps {
			_ = s.Close() //asv:ignore-err Snapshot.Close never returns an error
		}
	}()
	for _, cn := range t.colNames {
		if snaps[cn] != nil {
			continue
		}
		for _, p := range preds {
			if p.Column != cn {
				continue
			}
			s, err := t.engines[cn].Snapshot()
			if err != nil {
				return nil, fmt.Errorf("table: pinning %s: %w", cn, err)
			}
			snaps[cn] = s
			break
		}
	}
	// Evaluate narrower predicates first: their row sets are (heuristically)
	// smaller, making the early-exit more likely. Stable order keeps
	// results deterministic.
	ordered := append([]Predicate(nil), preds...)
	sort.SliceStable(ordered, func(i, j int) bool {
		return ordered[i].Hi-ordered[i].Lo < ordered[j].Hi-ordered[j].Lo
	})

	out := &SelectResult{}
	var acc *core.RowSet
	for _, p := range ordered {
		ans, err := snaps[p.Column].QueryOptAdapt(p.Lo, p.Hi, core.QueryOptions{CollectRows: true})
		if err != nil {
			return nil, fmt.Errorf("table: predicate %s: %w", p, err)
		}
		out.PagesScanned += ans.PagesScanned
		out.ViewsUsed += ans.ViewsUsed
		if acc == nil {
			acc = ans.Rows
		} else {
			acc.Intersect(ans.Rows)
		}
		if acc.Len() == 0 {
			break
		}
	}
	out.Rows = acc
	return out, nil
}

// Count returns the number of rows matching the conjunction.
func (t *Table) Count(preds []Predicate) (int, error) {
	res, err := t.Select(preds)
	if err != nil {
		return 0, err
	}
	return res.Rows.Len(), nil
}

// Get materializes the named column values of one row.
func (t *Table) Get(row int, columns []string) ([]uint64, error) {
	out := make([]uint64, len(columns))
	for i, cn := range columns {
		eng, err := t.Engine(cn)
		if err != nil {
			return nil, err
		}
		v, err := eng.Column().Value(row)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Update overwrites one value and buffers the change for the column's next
// flush (queries auto-flush).
func (t *Table) Update(column string, row int, value uint64) error {
	eng, err := t.Engine(column)
	if err != nil {
		return err
	}
	return eng.Update(row, value)
}

// FlushUpdates realigns the views of every column with its pending batch.
func (t *Table) FlushUpdates() error {
	for _, cn := range t.colNames {
		if _, err := t.engines[cn].FlushUpdates(); err != nil {
			return err
		}
	}
	return nil
}

// Close releases every column's engine and storage.
func (t *Table) Close() error {
	var firstErr error
	for _, cn := range t.colNames {
		eng, ok := t.engines[cn]
		if !ok {
			continue
		}
		if err := eng.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := eng.Column().Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		delete(t.engines, cn)
	}
	return firstErr
}
