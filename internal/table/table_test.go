package table

import (
	"testing"

	"github.com/asv-db/asv/internal/core"
	"github.com/asv-db/asv/internal/dist"
	"github.com/asv-db/asv/internal/storage"
	"github.com/asv-db/asv/internal/view"
	"github.com/asv-db/asv/internal/vmsim"
	"github.com/asv-db/asv/internal/xrand"
)

func syncConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Create = view.CreateOptions{Consecutive: true}
	return cfg
}

func newTestTable(t *testing.T, pages int, cols []string) *Table {
	t.Helper()
	k := vmsim.NewKernel(0)
	as := k.NewAddressSpace()
	as.SetMaxMapCount(1 << 30)
	tbl, err := New(k, as, "orders", pages, cols, syncConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = tbl.Close() })
	return tbl
}

func fillColumn(t *testing.T, tbl *Table, col string, g dist.Generator) {
	t.Helper()
	eng, err := tbl.Engine(col)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Column().Fill(g); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	k := vmsim.NewKernel(0)
	as := k.NewAddressSpace()
	if _, err := New(k, as, "t", 8, nil, syncConfig()); err == nil {
		t.Fatal("empty column list accepted")
	}
	if _, err := New(k, as, "t", 8, []string{"a", "a"}, syncConfig()); err == nil {
		t.Fatal("duplicate column accepted")
	}
}

func TestAccessors(t *testing.T) {
	tbl := newTestTable(t, 16, []string{"a", "b"})
	if tbl.Name() != "orders" || tbl.NumPages() != 16 {
		t.Fatalf("Name=%q NumPages=%d", tbl.Name(), tbl.NumPages())
	}
	if tbl.Rows() != 16*storage.ValuesPerPage {
		t.Fatalf("Rows = %d", tbl.Rows())
	}
	cols := tbl.Columns()
	if len(cols) != 2 || cols[0] != "a" || cols[1] != "b" {
		t.Fatalf("Columns = %v", cols)
	}
	if _, err := tbl.Engine("zzz"); err == nil {
		t.Fatal("phantom column accepted")
	}
}

// refRow mirrors column contents for ground-truth conjunctions.
type refTable struct {
	cols map[string][]uint64
}

func mirror(t *testing.T, tbl *Table) *refTable {
	t.Helper()
	ref := &refTable{cols: map[string][]uint64{}}
	for _, cn := range tbl.Columns() {
		eng, _ := tbl.Engine(cn)
		vals := make([]uint64, tbl.Rows())
		for r := range vals {
			v, err := eng.Column().Value(r)
			if err != nil {
				t.Fatal(err)
			}
			vals[r] = v
		}
		ref.cols[cn] = vals
	}
	return ref
}

func (ref *refTable) selectRows(preds []Predicate) map[int]bool {
	out := map[int]bool{}
	n := 0
	for _, vals := range ref.cols {
		n = len(vals)
		break
	}
	for r := 0; r < n; r++ {
		ok := true
		for _, p := range preds {
			v := ref.cols[p.Column][r]
			if v < p.Lo || v > p.Hi {
				ok = false
				break
			}
		}
		if ok {
			out[r] = true
		}
	}
	return out
}

func TestSelectConjunction(t *testing.T) {
	tbl := newTestTable(t, 48, []string{"price", "qty"})
	fillColumn(t, tbl, "price", dist.NewUniform(1, 0, 10_000))
	fillColumn(t, tbl, "qty", dist.NewSine(2, 0, 1_000, 6))
	ref := mirror(t, tbl)

	preds := []Predicate{
		{Column: "price", Lo: 1000, Hi: 4000},
		{Column: "qty", Lo: 0, Hi: 100}, // hits the sine trough band
	}
	res, err := tbl.Select(preds)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.selectRows(preds)
	if res.Rows.Len() != len(want) {
		t.Fatalf("Select = %d rows, want %d", res.Rows.Len(), len(want))
	}
	res.Rows.ForEach(func(r int) bool {
		if !want[r] {
			t.Fatalf("spurious row %d", r)
		}
		return true
	})
	if res.PagesScanned == 0 || res.ViewsUsed < 2 {
		t.Fatalf("telemetry: %+v", res)
	}
	// Count agrees with Select.
	n, err := tbl.Count(preds)
	if err != nil || n != len(want) {
		t.Fatalf("Count = %d, %v", n, err)
	}
}

func TestSelectAdaptsPerColumn(t *testing.T) {
	tbl := newTestTable(t, 64, []string{"a", "b"})
	fillColumn(t, tbl, "a", dist.NewSine(3, 0, 1_000_000, 8))
	fillColumn(t, tbl, "b", dist.NewLinear(4, 0, 1_000_000, 64))

	preds := []Predicate{
		{Column: "a", Lo: 100_000, Hi: 200_000},
		{Column: "b", Lo: 500_000, Hi: 700_000},
	}
	first, err := tbl.Select(preds)
	if err != nil {
		t.Fatal(err)
	}
	second, err := tbl.Select(preds)
	if err != nil {
		t.Fatal(err)
	}
	if second.PagesScanned >= first.PagesScanned {
		t.Fatalf("no adaptivity across Select calls: %d -> %d pages",
			first.PagesScanned, second.PagesScanned)
	}
	if second.Rows.Len() != first.Rows.Len() {
		t.Fatal("result changed between identical selects")
	}
	for _, cn := range []string{"a", "b"} {
		eng, _ := tbl.Engine(cn)
		if eng.ViewSet().Len() == 0 {
			t.Fatalf("column %s built no views", cn)
		}
	}
}

func TestSelectEmptyIntersectionEarlyExit(t *testing.T) {
	tbl := newTestTable(t, 32, []string{"a", "b"})
	fillColumn(t, tbl, "a", dist.NewUniform(5, 0, 1000))
	fillColumn(t, tbl, "b", dist.NewUniform(6, 5000, 9000))

	res, err := tbl.Select([]Predicate{
		{Column: "b", Lo: 0, Hi: 100}, // matches nothing
		{Column: "a", Lo: 0, Hi: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows.Len() != 0 {
		t.Fatalf("rows = %d, want 0", res.Rows.Len())
	}
}

func TestSelectValidation(t *testing.T) {
	tbl := newTestTable(t, 16, []string{"a"})
	if _, err := tbl.Select(nil); err == nil {
		t.Fatal("empty predicates accepted")
	}
	if _, err := tbl.Select([]Predicate{{Column: "nope", Lo: 0, Hi: 1}}); err == nil {
		t.Fatal("unknown column accepted")
	}
	if Predicate.String(Predicate{Column: "a", Lo: 1, Hi: 2}) == "" {
		t.Fatal("empty predicate string")
	}
}

func TestGetAndUpdate(t *testing.T) {
	tbl := newTestTable(t, 16, []string{"a", "b"})
	fillColumn(t, tbl, "a", dist.NewUniform(7, 0, 100))
	fillColumn(t, tbl, "b", dist.NewUniform(8, 0, 100))

	if err := tbl.Update("a", 10, 42); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Update("b", 10, 77); err != nil {
		t.Fatal(err)
	}
	if err := tbl.FlushUpdates(); err != nil {
		t.Fatal(err)
	}
	vals, err := tbl.Get(10, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 42 || vals[1] != 77 {
		t.Fatalf("Get = %v", vals)
	}
	if err := tbl.Update("zzz", 0, 1); err == nil {
		t.Fatal("update on phantom column accepted")
	}
	if _, err := tbl.Get(0, []string{"zzz"}); err == nil {
		t.Fatal("get on phantom column accepted")
	}
}

func TestSelectAfterUpdatesMatchesGroundTruth(t *testing.T) {
	tbl := newTestTable(t, 32, []string{"x", "y"})
	fillColumn(t, tbl, "x", dist.NewUniform(9, 0, 10_000))
	fillColumn(t, tbl, "y", dist.NewUniform(10, 0, 10_000))

	preds := []Predicate{
		{Column: "x", Lo: 1000, Hi: 3000},
		{Column: "y", Lo: 2000, Hi: 6000},
	}
	// Warm the views.
	if _, err := tbl.Select(preds); err != nil {
		t.Fatal(err)
	}
	// Mutate both columns.
	rng := xrand.New(11)
	for i := 0; i < 500; i++ {
		cn := []string{"x", "y"}[rng.Intn(2)]
		if err := tbl.Update(cn, rng.Intn(tbl.Rows()), rng.Uint64n(10_001)); err != nil {
			t.Fatal(err)
		}
	}
	// Select auto-flushes via the per-column engines.
	res, err := tbl.Select(preds)
	if err != nil {
		t.Fatal(err)
	}
	want := mirror(t, tbl).selectRows(preds)
	if res.Rows.Len() != len(want) {
		t.Fatalf("post-update select = %d rows, want %d", res.Rows.Len(), len(want))
	}
}

func TestCloseReleasesEverything(t *testing.T) {
	k := vmsim.NewKernel(0)
	as := k.NewAddressSpace()
	as.SetMaxMapCount(1 << 30)
	tbl, err := New(k, as, "t", 16, []string{"a", "b", "c"}, syncConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Select([]Predicate{{Column: "a", Lo: 0, Hi: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}
	if k.FramesInUse() != 0 {
		t.Fatalf("FramesInUse = %d after Close", k.FramesInUse())
	}
	if as.VMACount() != 0 {
		t.Fatalf("VMACount = %d after Close", as.VMACount())
	}
}
