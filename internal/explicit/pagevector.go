package explicit

import (
	"github.com/asv-db/asv/internal/storage"
)

// PageVector is the §3.1 "Vector of Page-IDs" variant: a vector holding
// only the IDs of qualifying pages; a lookup walks the vector and jumps to
// each page. Like the paper's implementation, which prefetches
// pages[i+1] with __builtin_prefetch while processing pages[i], the
// lookup resolves and touches the next page one step ahead.
//
// Updates append newly qualifying pages at the tail and swap-remove pages
// that stop qualifying — this is exactly how "the updates might scatter
// the order in which pages are indexed" (§3.1): after an update stream the
// vector no longer enumerates pages in physical order.
type PageVector struct {
	col    *storage.Column
	lo, hi uint64
	ids    []uint32
	pos    map[uint32]int // pageID -> index in ids (maintenance only)
}

// NewPageVector builds the vector by scanning the column once.
func NewPageVector(col *storage.Column, lo, hi uint64) (*PageVector, error) {
	v := &PageVector{col: col, lo: lo, hi: hi, pos: make(map[uint32]int)}
	for p := 0; p < col.NumPages(); p++ {
		ok, err := qualifies(col, p, lo, hi)
		if err != nil {
			return nil, err
		}
		if ok {
			v.pos[uint32(p)] = len(v.ids)
			v.ids = append(v.ids, uint32(p))
		}
	}
	return v, nil
}

// Name implements Index.
func (v *PageVector) Name() string { return "pagevector" }

// Lo implements Index.
func (v *PageVector) Lo() uint64 { return v.lo }

// Hi implements Index.
func (v *PageVector) Hi() uint64 { return v.hi }

// Pages implements Index.
func (v *PageVector) Pages() int { return len(v.ids) }

// Lookup implements Index.
func (v *PageVector) Lookup(qlo, qhi uint64) (int, uint64, error) {
	if err := checkRange(v.Name(), v.lo, v.hi, qlo, qhi); err != nil {
		return 0, 0, err
	}
	count, sum := 0, uint64(0)
	var cur []byte
	if len(v.ids) > 0 {
		var err error
		cur, err = v.col.PageBytes(int(v.ids[0]))
		if err != nil {
			return 0, 0, err
		}
	}
	for i := range v.ids {
		// Software prefetch: resolve the next page and touch its first
		// cache line before scanning the current one.
		var next []byte
		if i+1 < len(v.ids) {
			var err error
			next, err = v.col.PageBytes(int(v.ids[i+1]))
			if err != nil {
				return count, sum, err
			}
			_ = next[0]
		}
		s := storage.ScanFilter(cur, qlo, qhi)
		count += s.Count
		sum += s.Sum
		cur = next
	}
	return count, sum, nil
}

// ApplyUpdate implements Index.
func (v *PageVector) ApplyUpdate(row int, old, new uint64) error {
	page := uint32(row / storage.ValuesPerPage)
	_, present := v.pos[page]
	if new >= v.lo && new <= v.hi {
		if !present {
			v.pos[page] = len(v.ids)
			v.ids = append(v.ids, page)
		}
		return nil
	}
	if present && old >= v.lo && old <= v.hi {
		ok, err := qualifies(v.col, int(page), v.lo, v.hi)
		if err != nil {
			return err
		}
		if !ok {
			i := v.pos[page]
			last := v.ids[len(v.ids)-1]
			v.ids[i] = last
			v.pos[last] = i
			v.ids = v.ids[:len(v.ids)-1]
			delete(v.pos, page)
		}
	}
	return nil
}

// Release implements Index.
func (v *PageVector) Release() error { return nil }
