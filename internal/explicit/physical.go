package explicit

import (
	"github.com/asv-db/asv/internal/storage"
)

// PhysicalScan is the §3.1 "Physical Scan" variant: "a consecutive memory
// area, that has been allocated traditionally with new and already
// contains all qualifying pages. This resembles an artificial optimal
// baseline." The qualifying pages are copied into one contiguous Go-heap
// buffer; a lookup is a pure sequential scan with no indirection at all.
//
// To keep the copies truthful under the experiment's update stream, point
// updates are propagated into the buffer (and pages are appended or
// swap-removed as they start or stop qualifying).
type PhysicalScan struct {
	col    *storage.Column
	lo, hi uint64
	buf    []byte         // len = pages * PageSize, contiguous
	pos    map[uint32]int // pageID -> page index within buf
	ids    []uint32       // page index -> pageID (for swap-remove)
}

// NewPhysicalScan copies all qualifying pages into a contiguous buffer.
func NewPhysicalScan(col *storage.Column, lo, hi uint64) (*PhysicalScan, error) {
	ps := &PhysicalScan{col: col, lo: lo, hi: hi, pos: make(map[uint32]int)}
	for p := 0; p < col.NumPages(); p++ {
		pg, err := col.PageBytes(p)
		if err != nil {
			return nil, err
		}
		if s := storage.ScanFilter(pg, lo, hi); s.Count > 0 {
			ps.appendCopy(uint32(p), pg)
		}
	}
	return ps, nil
}

func (ps *PhysicalScan) appendCopy(pageID uint32, pg []byte) {
	ps.pos[pageID] = len(ps.ids)
	ps.ids = append(ps.ids, pageID)
	ps.buf = append(ps.buf, pg...)
}

// Name implements Index.
func (ps *PhysicalScan) Name() string { return "physical" }

// Lo implements Index.
func (ps *PhysicalScan) Lo() uint64 { return ps.lo }

// Hi implements Index.
func (ps *PhysicalScan) Hi() uint64 { return ps.hi }

// Pages implements Index.
func (ps *PhysicalScan) Pages() int { return len(ps.ids) }

// Lookup implements Index: one sequential pass over the contiguous copy.
func (ps *PhysicalScan) Lookup(qlo, qhi uint64) (int, uint64, error) {
	if err := checkRange(ps.Name(), ps.lo, ps.hi, qlo, qhi); err != nil {
		return 0, 0, err
	}
	count, sum := 0, uint64(0)
	for off := 0; off < len(ps.buf); off += storage.PageSize {
		s := storage.ScanFilter(ps.buf[off:off+storage.PageSize], qlo, qhi)
		count += s.Count
		sum += s.Sum
	}
	return count, sum, nil
}

// ApplyUpdate implements Index: the redundant copy must mirror the column.
func (ps *PhysicalScan) ApplyUpdate(row int, old, new uint64) error {
	page := uint32(row / storage.ValuesPerPage)
	slot := row % storage.ValuesPerPage
	idx, present := ps.pos[page]

	if present {
		// Mirror the write into the copy.
		cp := ps.buf[idx*storage.PageSize : (idx+1)*storage.PageSize]
		storage.SetValueAt(cp, slot, new)
		if new >= ps.lo && new <= ps.hi {
			return nil
		}
		if old < ps.lo || old > ps.hi {
			return nil
		}
		// A covered value vanished: does the copy still qualify?
		if s := storage.ScanFilter(cp, ps.lo, ps.hi); s.Count > 0 {
			return nil
		}
		ps.removeAt(idx)
		return nil
	}

	if new >= ps.lo && new <= ps.hi {
		pg, err := ps.col.PageBytes(int(page))
		if err != nil {
			return err
		}
		ps.appendCopy(page, pg)
	}
	return nil
}

func (ps *PhysicalScan) removeAt(idx int) {
	lastIdx := len(ps.ids) - 1
	lastID := ps.ids[lastIdx]
	removedID := ps.ids[idx]
	if idx != lastIdx {
		copy(ps.buf[idx*storage.PageSize:(idx+1)*storage.PageSize],
			ps.buf[lastIdx*storage.PageSize:(lastIdx+1)*storage.PageSize])
		ps.ids[idx] = lastID
		ps.pos[lastID] = idx
	}
	ps.ids = ps.ids[:lastIdx]
	ps.buf = ps.buf[:lastIdx*storage.PageSize]
	delete(ps.pos, removedID)
}

// Release implements Index.
func (ps *PhysicalScan) Release() error {
	ps.buf, ps.ids, ps.pos = nil, nil, nil
	return nil
}
