package explicit

import (
	"github.com/asv-db/asv/internal/bitvec"
	"github.com/asv-db/asv/internal/storage"
)

// Bitmap is the §3.1 "Bitmap" variant: a separate bitvector with one bit
// per column page, set when the page holds a value in the index range. "A
// lookup basically results in a scan of the bitvector with subsequent
// jumps into the column for each qualifying page."
type Bitmap struct {
	col    *storage.Column
	lo, hi uint64
	bits   *bitvec.Vector
}

// NewBitmap builds the bitvector by scanning the column once.
func NewBitmap(col *storage.Column, lo, hi uint64) (*Bitmap, error) {
	b := &Bitmap{col: col, lo: lo, hi: hi, bits: bitvec.New(col.NumPages())}
	for p := 0; p < col.NumPages(); p++ {
		ok, err := qualifies(col, p, lo, hi)
		if err != nil {
			return nil, err
		}
		if ok {
			b.bits.Set(p)
		}
	}
	return b, nil
}

// Name implements Index.
func (b *Bitmap) Name() string { return "bitmap" }

// Lo implements Index.
func (b *Bitmap) Lo() uint64 { return b.lo }

// Hi implements Index.
func (b *Bitmap) Hi() uint64 { return b.hi }

// Pages implements Index.
func (b *Bitmap) Pages() int { return b.bits.Count() }

// Lookup implements Index.
func (b *Bitmap) Lookup(qlo, qhi uint64) (int, uint64, error) {
	if err := checkRange(b.Name(), b.lo, b.hi, qlo, qhi); err != nil {
		return 0, 0, err
	}
	count, sum := 0, uint64(0)
	for p := b.bits.NextSet(0); p != -1; p = b.bits.NextSet(p + 1) {
		pg, err := b.col.PageBytes(p)
		if err != nil {
			return count, sum, err
		}
		s := storage.ScanFilter(pg, qlo, qhi)
		count += s.Count
		sum += s.Sum
	}
	return count, sum, nil
}

// ApplyUpdate implements Index: a new value inside the range marks the
// page; an old value inside the range with nothing new inside forces a
// rescan that may clear the bit.
func (b *Bitmap) ApplyUpdate(row int, old, new uint64) error {
	page := row / storage.ValuesPerPage
	if new >= b.lo && new <= b.hi {
		b.bits.Set(page)
		return nil
	}
	if old >= b.lo && old <= b.hi && b.bits.Get(page) {
		ok, err := qualifies(b.col, page, b.lo, b.hi)
		if err != nil {
			return err
		}
		if !ok {
			b.bits.Clear(page)
		}
	}
	return nil
}

// Release implements Index.
func (b *Bitmap) Release() error { return nil }
