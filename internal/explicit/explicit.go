// Package explicit implements the explicit-index baselines that §3.1
// compares against virtual partial views: "Zone Map", "Bitmap", "Vector of
// Page-IDs", and the artificial optimum "Physical Scan". All variants
// (including a wrapper around the virtual view) satisfy a common Index
// interface so the Figure 3 experiment can drive them uniformly: build an
// index over the pages qualifying for a range [lo, hi], apply a stream of
// point updates, then answer sub-range lookups.
package explicit

import (
	"fmt"

	"github.com/asv-db/asv/internal/storage"
)

// Index is an explicitly or virtually indexed partial view over the pages
// of a column that contain at least one value in the index range [Lo, Hi].
//
// Lookup answers a query [qlo, qhi] that must be contained in the index
// range (Figure 3 queries [0, k/2] against indexes over [0, k]).
// ApplyUpdate maintains the index after the column value at row changed
// from old to new — the experiment applies 10,000 such updates "to
// simulate a change of the partial view".
type Index interface {
	// Name identifies the variant in reports.
	Name() string
	// Lo returns the lower bound of the indexed value range.
	Lo() uint64
	// Hi returns the upper bound of the indexed value range.
	Hi() uint64
	// Pages returns how many physical pages the index currently covers.
	Pages() int
	// Lookup answers [qlo, qhi] ⊆ [Lo, Hi].
	Lookup(qlo, qhi uint64) (count int, sum uint64, err error)
	// ApplyUpdate maintains the index after an already-applied column
	// update (row overwritten: old -> new).
	ApplyUpdate(row int, old, new uint64) error
	// Release frees any resources the index holds.
	Release() error
}

// qualifies reports whether a page currently holds a value in [lo, hi].
func qualifies(col *storage.Column, pageID int, lo, hi uint64) (bool, error) {
	pg, err := col.PageBytes(pageID)
	if err != nil {
		return false, err
	}
	s := storage.ScanFilter(pg, lo, hi)
	return s.Count > 0, nil
}

// checkRange validates the Figure 3 contract qlo..qhi ⊆ lo..hi.
func checkRange(name string, lo, hi, qlo, qhi uint64) error {
	if qlo > qhi {
		return fmt.Errorf("explicit/%s: inverted query [%d,%d]", name, qlo, qhi)
	}
	if qlo < lo || qhi > hi {
		return fmt.Errorf("explicit/%s: query [%d,%d] outside index range [%d,%d]",
			name, qlo, qhi, lo, hi)
	}
	return nil
}
