package explicit

import (
	"github.com/asv-db/asv/internal/storage"
	"github.com/asv-db/asv/internal/view"
)

// VirtualView adapts a rewired virtual partial view (the paper's
// contribution) to the Index interface so Figure 3 can race it against the
// explicit variants. "In all cases, virtual partial views clearly win, as
// it has the least code complexity and naturally exploits hardware
// prefetching" — the lookup is a dense scan of the view's mapped prefix,
// with no per-page metadata checks at all.
//
// For the experiment's point-update stream the wrapper maintains a local
// pageID→slot table (the batch path of the real system derives this from
// /proc/PID/maps instead, §2.5).
type VirtualView struct {
	v    *view.View
	slot map[uint64]int // pageID -> view slot
}

// NewVirtualView creates the partial view over [lo, hi] with the given
// creation options.
func NewVirtualView(col *storage.Column, lo, hi uint64, opts view.CreateOptions, mapper *view.Mapper) (*VirtualView, error) {
	v, err := view.Create(col, lo, hi, opts, mapper)
	if err != nil {
		return nil, err
	}
	// Pin the exact experiment range (Create extends it).
	v.SetRange(lo, hi)
	ids, err := v.PageIDs()
	if err != nil {
		_ = v.Release() //asv:ignore-err unwinding failed index construction; the PageIDs error is returned
		return nil, err
	}
	slot := make(map[uint64]int, len(ids))
	for i, id := range ids {
		slot[id] = i
	}
	return &VirtualView{v: v, slot: slot}, nil
}

// Name implements Index.
func (w *VirtualView) Name() string { return "virtual" }

// Lo implements Index.
func (w *VirtualView) Lo() uint64 { return w.v.Lo() }

// Hi implements Index.
func (w *VirtualView) Hi() uint64 { return w.v.Hi() }

// Pages implements Index.
func (w *VirtualView) Pages() int { return w.v.NumPages() }

// View exposes the wrapped view.
func (w *VirtualView) View() *view.View { return w.v }

// Lookup implements Index: a dense scan of the view.
func (w *VirtualView) Lookup(qlo, qhi uint64) (int, uint64, error) {
	if err := checkRange(w.Name(), w.v.Lo(), w.v.Hi(), qlo, qhi); err != nil {
		return 0, 0, err
	}
	r, err := w.v.Scan(qlo, qhi)
	return r.Count, r.Sum, err
}

// ApplyUpdate implements Index: rewire the page in or out of the view.
func (w *VirtualView) ApplyUpdate(row int, old, new uint64) error {
	page := uint64(row / storage.ValuesPerPage)
	lo, hi := w.v.Lo(), w.v.Hi()
	slot, present := w.slot[page]

	if new >= lo && new <= hi {
		if !present {
			if _, err := w.v.AppendPage(int(page)); err != nil {
				return err
			}
			w.slot[page] = w.v.NumPages() - 1
		}
		return nil
	}
	if !present || old < lo || old > hi {
		return nil
	}
	ok, err := qualifies(w.v.Column(), int(page), lo, hi)
	if err != nil {
		return err
	}
	if ok {
		return nil
	}
	res, err := w.v.RemovePageAt(slot)
	if err != nil {
		return err
	}
	delete(w.slot, page)
	if res.MovedFilePage >= 0 {
		w.slot[uint64(res.MovedFilePage)] = slot
	}
	return nil
}

// Release implements Index.
func (w *VirtualView) Release() error { return w.v.Release() }
