package explicit

import (
	"testing"

	"github.com/asv-db/asv/internal/dist"
	"github.com/asv-db/asv/internal/storage"
	"github.com/asv-db/asv/internal/view"
	"github.com/asv-db/asv/internal/vmsim"
	"github.com/asv-db/asv/internal/xrand"
)

const (
	testPages = 128
	valueMax  = 1_000_000
)

func testColumn(t testing.TB) *storage.Column {
	t.Helper()
	k := vmsim.NewKernel(0)
	as := k.NewAddressSpace()
	as.SetMaxMapCount(1 << 30)
	c, err := storage.NewColumn(k, as, "col", testPages)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Fill(dist.NewUniform(7, 0, valueMax)); err != nil {
		t.Fatal(err)
	}
	return c
}

// allVariants builds every Index variant over the same column and range.
func allVariants(t testing.TB, col *storage.Column, lo, hi uint64) []Index {
	t.Helper()
	zm := NewZoneMap(col, lo, hi)
	bm, err := NewBitmap(col, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	pv, err := NewPageVector(col, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := NewPhysicalScan(col, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	vv, err := NewVirtualView(col, lo, hi, view.CreateOptions{Consecutive: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return []Index{zm, bm, pv, ps, vv}
}

func TestAllVariantsAgreeWithFullScan(t *testing.T) {
	col := testColumn(t)
	lo, hi := uint64(0), uint64(200_000)
	variants := allVariants(t, col, lo, hi)
	queries := [][2]uint64{{0, 100_000}, {50_000, 150_000}, {0, 200_000}, {199_999, 200_000}}
	for _, q := range queries {
		wantCount, wantSum, err := col.FullScan(q[0], q[1])
		if err != nil {
			t.Fatal(err)
		}
		for _, idx := range variants {
			count, sum, err := idx.Lookup(q[0], q[1])
			if err != nil {
				t.Fatalf("%s: %v", idx.Name(), err)
			}
			if count != wantCount || sum != wantSum {
				t.Fatalf("%s query [%d,%d]: (%d,%d), want (%d,%d)",
					idx.Name(), q[0], q[1], count, sum, wantCount, wantSum)
			}
		}
	}
}

func TestAllVariantsAgreeAfterUpdates(t *testing.T) {
	col := testColumn(t)
	lo, hi := uint64(0), uint64(200_000)
	variants := allVariants(t, col, lo, hi)

	// The Figure 3 update stream: uniformly selected rows overwritten with
	// uniform values (some enter the index range, some leave it).
	rng := xrand.New(42)
	for i := 0; i < 2_000; i++ {
		row := rng.Intn(col.Rows())
		newVal := rng.Uint64n(valueMax)
		old, err := col.SetValue(row, newVal)
		if err != nil {
			t.Fatal(err)
		}
		for _, idx := range variants {
			if err := idx.ApplyUpdate(row, old, newVal); err != nil {
				t.Fatalf("%s: ApplyUpdate: %v", idx.Name(), err)
			}
		}
	}

	for _, q := range [][2]uint64{{0, 100_000}, {10_000, 180_000}, {0, 200_000}} {
		wantCount, wantSum, err := col.FullScan(q[0], q[1])
		if err != nil {
			t.Fatal(err)
		}
		for _, idx := range variants {
			count, sum, err := idx.Lookup(q[0], q[1])
			if err != nil {
				t.Fatalf("%s: %v", idx.Name(), err)
			}
			if count != wantCount || sum != wantSum {
				t.Fatalf("%s after updates, query [%d,%d]: (%d,%d), want (%d,%d)",
					idx.Name(), q[0], q[1], count, sum, wantCount, wantSum)
			}
		}
	}
}

func TestPageCountsConsistent(t *testing.T) {
	col := testColumn(t)
	lo, hi := uint64(0), uint64(150_000)
	variants := allVariants(t, col, lo, hi)

	// Ground truth: pages holding at least one value in [lo, hi].
	want := 0
	for p := 0; p < col.NumPages(); p++ {
		pg, _ := col.PageBytes(p)
		if s := storage.ScanFilter(pg, lo, hi); s.Count > 0 {
			want++
		}
	}
	for _, idx := range variants {
		if idx.Name() == "zonemap" {
			// Zones may overapproximate; must be at least the truth.
			if got := idx.Pages(); got < want {
				t.Errorf("zonemap.Pages() = %d < ground truth %d", got, want)
			}
			continue
		}
		if got := idx.Pages(); got != want {
			t.Errorf("%s.Pages() = %d, want %d", idx.Name(), got, want)
		}
	}
}

func TestLookupRangeValidation(t *testing.T) {
	col := testColumn(t)
	variants := allVariants(t, col, 100, 1000)
	for _, idx := range variants {
		if _, _, err := idx.Lookup(0, 500); err == nil {
			t.Errorf("%s accepted query below index range", idx.Name())
		}
		if _, _, err := idx.Lookup(500, 2000); err == nil {
			t.Errorf("%s accepted query above index range", idx.Name())
		}
		if _, _, err := idx.Lookup(900, 200); err == nil {
			t.Errorf("%s accepted inverted query", idx.Name())
		}
	}
}

func TestMetadataAccessors(t *testing.T) {
	col := testColumn(t)
	for _, idx := range allVariants(t, col, 10, 99) {
		if idx.Lo() != 10 || idx.Hi() != 99 {
			t.Errorf("%s: range [%d,%d], want [10,99]", idx.Name(), idx.Lo(), idx.Hi())
		}
		if idx.Name() == "" {
			t.Error("empty variant name")
		}
	}
}

func TestPageVectorUpdateScattersOrder(t *testing.T) {
	col := testColumn(t)
	pv, err := NewPageVector(col, 0, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	// Force a page out and back in: it must re-enter at the tail, not in
	// physical order — the §3.1 "scattered order" effect.
	before := make([]uint32, len(pv.ids))
	copy(before, pv.ids)
	victim := int(before[0])

	// Drain the victim page of in-range values.
	pg, _ := col.PageBytes(victim)
	for s := 0; s < storage.ValuesPerPage; s++ {
		if v := storage.ValueAt(pg, s); v <= 100_000 {
			row := victim*storage.ValuesPerPage + s
			old, _ := col.SetValue(row, 900_000)
			if err := pv.ApplyUpdate(row, old, 900_000); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, present := pv.pos[uint32(victim)]; present {
		t.Fatal("drained page still present")
	}
	// Bring it back.
	row := victim * storage.ValuesPerPage
	old, _ := col.SetValue(row, 50)
	if err := pv.ApplyUpdate(row, old, 50); err != nil {
		t.Fatal(err)
	}
	if pv.ids[len(pv.ids)-1] != uint32(victim) {
		t.Fatal("re-added page not at tail: order not scattered as expected")
	}
}

func TestPhysicalScanMirrorsWrites(t *testing.T) {
	col := testColumn(t)
	ps, err := NewPhysicalScan(col, 0, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	// An in-range overwrite of an indexed page must be visible in lookups.
	row := 0
	for p := 0; p < col.NumPages(); p++ {
		if _, ok := ps.pos[uint32(p)]; ok {
			row = p * storage.ValuesPerPage
			break
		}
	}
	old, _ := col.SetValue(row, 123)
	if err := ps.ApplyUpdate(row, old, 123); err != nil {
		t.Fatal(err)
	}
	wantCount, wantSum, _ := col.FullScan(123, 123)
	count, sum, err := ps.Lookup(123, 123)
	if err != nil {
		t.Fatal(err)
	}
	if count != wantCount || sum != wantSum {
		t.Fatalf("copy out of sync: (%d,%d), want (%d,%d)", count, sum, wantCount, wantSum)
	}
}

func TestVirtualViewReleaseFreesArea(t *testing.T) {
	col := testColumn(t)
	before := col.Space().VMACount()
	vv, err := NewVirtualView(col, 0, 100_000, view.CreateOptions{Consecutive: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := vv.Release(); err != nil {
		t.Fatal(err)
	}
	if got := col.Space().VMACount(); got != before {
		t.Fatalf("VMACount %d after release, want %d", got, before)
	}
}

func TestZoneMapSkipsDisjointPages(t *testing.T) {
	// With linear data, a narrow query intersects few zones; the zone map
	// must scan far fewer pages than the column has. We assert indirectly
	// via Pages() on a narrow index range.
	k := vmsim.NewKernel(0)
	as := k.NewAddressSpace()
	c, err := storage.NewColumn(k, as, "lin", 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Fill(dist.NewLinear(3, 0, 1_000_000, 256)); err != nil {
		t.Fatal(err)
	}
	zm := NewZoneMap(c, 0, 10_000)
	if got := zm.Pages(); got > 10 {
		t.Fatalf("zone map reports %d qualifying pages for a ~1%% range", got)
	}
}
