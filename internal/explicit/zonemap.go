package explicit

import "github.com/asv-db/asv/internal/storage"

// ZoneMap is the §3.1 "Zone Map" variant: the observed minimum and maximum
// of each page are stored in-place at the beginning of the page (the zone
// fields of the common page header). A lookup must therefore inspect the
// metadata of every page — for the paper's 1M-page column that means one
// million address translations, which is why this variant loses everywhere
// in Figure 3 — and scans only the pages whose zone intersects the query.
//
// Zones are maintained by the storage layer on every write (enlarge-only),
// so ApplyUpdate is free; after overwrites the zones may overapproximate,
// causing harmless extra page scans, exactly like classical zone maps.
type ZoneMap struct {
	col    *storage.Column
	lo, hi uint64
}

// NewZoneMap returns a zone-map index over [lo, hi]. The zones themselves
// already live in the pages; no build pass is needed.
func NewZoneMap(col *storage.Column, lo, hi uint64) *ZoneMap {
	return &ZoneMap{col: col, lo: lo, hi: hi}
}

// Name implements Index.
func (z *ZoneMap) Name() string { return "zonemap" }

// Lo implements Index.
func (z *ZoneMap) Lo() uint64 { return z.lo }

// Hi implements Index.
func (z *ZoneMap) Hi() uint64 { return z.hi }

// Pages implements Index: the number of pages whose zone intersects the
// index range (what a lookup over the full range would scan).
func (z *ZoneMap) Pages() int {
	n := 0
	for p := 0; p < z.col.NumPages(); p++ {
		pg, err := z.col.PageBytes(p)
		if err != nil {
			return n
		}
		if zMin, zMax := storage.Zone(pg); zMax >= z.lo && zMin <= z.hi {
			n++
		}
	}
	return n
}

// Lookup implements Index.
func (z *ZoneMap) Lookup(qlo, qhi uint64) (int, uint64, error) {
	if err := checkRange(z.Name(), z.lo, z.hi, qlo, qhi); err != nil {
		return 0, 0, err
	}
	count, sum := 0, uint64(0)
	for p := 0; p < z.col.NumPages(); p++ {
		pg, err := z.col.PageBytes(p)
		if err != nil {
			return count, sum, err
		}
		zMin, zMax := storage.Zone(pg)
		if zMax < qlo || zMin > qhi {
			continue // zone disjoint from query: skip the page
		}
		s := storage.ScanFilter(pg, qlo, qhi)
		count += s.Count
		sum += s.Sum
	}
	return count, sum, nil
}

// ApplyUpdate implements Index. Zone enlargement already happened inside
// storage.Column.SetValue; nothing to do.
func (z *ZoneMap) ApplyUpdate(row int, old, new uint64) error { return nil }

// Release implements Index.
func (z *ZoneMap) Release() error { return nil }
