package cqueue

import (
	"sync"
	"testing"
	"time"
)

func TestFIFOOrder(t *testing.T) {
	q := New[int](4)
	for i := 0; i < 4; i++ {
		if err := q.Push(i); err != nil {
			t.Fatalf("Push(%d): %v", i, err)
		}
	}
	for i := 0; i < 4; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop() = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
}

func TestWrapAround(t *testing.T) {
	q := New[int](3)
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			if err := q.Push(round*3 + i); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := q.Pop()
			if !ok || v != round*3+i {
				t.Fatalf("round %d: Pop() = (%d,%v)", round, v, ok)
			}
		}
	}
}

func TestTryPushFull(t *testing.T) {
	q := New[int](1)
	if !q.TryPush(1) {
		t.Fatal("TryPush on empty queue failed")
	}
	if q.TryPush(2) {
		t.Fatal("TryPush on full queue succeeded")
	}
	if v, ok := q.TryPop(); !ok || v != 1 {
		t.Fatalf("TryPop = (%d,%v)", v, ok)
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty queue succeeded")
	}
}

func TestBlockingPop(t *testing.T) {
	q := New[string](2)
	done := make(chan string)
	go func() {
		v, _ := q.Pop()
		done <- v
	}()
	time.Sleep(10 * time.Millisecond) // give the consumer time to block
	if err := q.Push("hello"); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-done:
		if v != "hello" {
			t.Fatalf("got %q", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Pop never woke")
	}
}

func TestBlockingPushWakesOnPop(t *testing.T) {
	q := New[int](1)
	if err := q.Push(1); err != nil {
		t.Fatal(err)
	}
	done := make(chan error)
	go func() { done <- q.Push(2) }()
	time.Sleep(10 * time.Millisecond)
	if v, ok := q.Pop(); !ok || v != 1 {
		t.Fatalf("Pop = (%d,%v)", v, ok)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Push: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Push never woke")
	}
	if v, ok := q.Pop(); !ok || v != 2 {
		t.Fatalf("Pop = (%d,%v)", v, ok)
	}
}

func TestCloseDrains(t *testing.T) {
	q := New[int](8)
	for i := 0; i < 5; i++ {
		if err := q.Push(i); err != nil {
			t.Fatal(err)
		}
	}
	q.Close()
	if err := q.Push(99); err != ErrClosed {
		t.Fatalf("Push after Close: %v, want ErrClosed", err)
	}
	for i := 0; i < 5; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop after Close = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on closed+drained queue returned ok")
	}
}

func TestCloseWakesBlockedConsumer(t *testing.T) {
	q := New[int](1)
	done := make(chan bool)
	go func() {
		_, ok := q.Pop()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Pop on closed empty queue returned ok=true")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Pop never woke on Close")
	}
}

func TestCloseWakesBlockedProducer(t *testing.T) {
	q := New[int](1)
	if err := q.Push(1); err != nil {
		t.Fatal(err)
	}
	done := make(chan error)
	go func() { done <- q.Push(2) }()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Fatalf("blocked Push after Close: %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Push never woke on Close")
	}
}

func TestCloseIdempotent(t *testing.T) {
	q := New[int](1)
	q.Close()
	q.Close() // must not panic
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New[int](0)
}

// Every pushed element is popped exactly once across many producers and
// consumers — the property the mapping thread relies on.
func TestConcurrentExactlyOnce(t *testing.T) {
	const producers, perProducer, consumers = 8, 2000, 4
	q := New[int](64)

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := q.Push(p*perProducer + i); err != nil {
					t.Errorf("Push: %v", err)
					return
				}
			}
		}(p)
	}

	var mu sync.Mutex
	seen := make(map[int]int)
	var cg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				v, ok := q.Pop()
				if !ok {
					return
				}
				mu.Lock()
				seen[v]++
				mu.Unlock()
			}
		}()
	}

	wg.Wait()
	q.Close()
	cg.Wait()

	if len(seen) != producers*perProducer {
		t.Fatalf("saw %d distinct values, want %d", len(seen), producers*perProducer)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d popped %d times", v, n)
		}
	}
}

func TestLenAndCap(t *testing.T) {
	q := New[int](5)
	if q.Cap() != 5 || q.Len() != 0 {
		t.Fatalf("fresh queue: Len=%d Cap=%d", q.Len(), q.Cap())
	}
	_ = q.Push(1)
	_ = q.Push(2)
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	_, _ = q.Pop()
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
}

func TestStatsCountWaits(t *testing.T) {
	q := New[int](1)
	_ = q.Push(1)
	go func() {
		time.Sleep(20 * time.Millisecond)
		_, _ = q.Pop()
		_, _ = q.Pop()
	}()
	_ = q.Push(2) // blocks until consumer pops
	pushWaits, _ := q.Stats()
	if pushWaits == 0 {
		t.Error("expected at least one push wait")
	}
}

func BenchmarkPushPop(b *testing.B) {
	q := New[int](1024)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if !q.TryPush(1) {
				q.TryPop()
			}
		}
	})
}
