// Package cqueue provides a bounded, blocking, concurrent FIFO queue.
//
// The paper's optimized view creation (§2.3) offloads mmap() calls to a
// separate mapping thread: the scanning thread "only inserts a request to
// map the physical page into a concurrent queue from the Boost library",
// which the mapping thread drains. This package is the stdlib-only
// equivalent of that Boost queue: multiple producers, multiple consumers,
// blocking pop, and a close protocol so the mapping thread can terminate
// cleanly once a view has been fully mapped.
package cqueue

import (
	"errors"
	"sync"
)

// ErrClosed is returned by Push after Close has been called.
var ErrClosed = errors.New("cqueue: queue closed")

// Queue is a bounded concurrent FIFO of values of type T.
//
// A zero Queue is not usable; construct with New. All methods are safe for
// concurrent use.
type Queue[T any] struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	notFull  *sync.Cond
	buf      []T
	head     int // index of next element to pop
	count    int // number of elements currently queued
	closed   bool

	// pushWaits counts how often a producer had to block because the queue
	// was full; exposed for harness statistics.
	pushWaits uint64
	popWaits  uint64
}

// New returns a queue with the given capacity. Capacity must be positive.
func New[T any](capacity int) *Queue[T] {
	if capacity <= 0 {
		panic("cqueue: capacity must be positive")
	}
	q := &Queue[T]{buf: make([]T, capacity)}
	q.notEmpty = sync.NewCond(&q.mu)
	q.notFull = sync.NewCond(&q.mu)
	return q
}

// Push appends v, blocking while the queue is full. It returns ErrClosed if
// the queue has been closed (whether before or while blocked).
func (q *Queue[T]) Push(v T) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.count == len(q.buf) && !q.closed {
		q.pushWaits++
		q.notFull.Wait()
	}
	if q.closed {
		return ErrClosed
	}
	q.buf[(q.head+q.count)%len(q.buf)] = v
	q.count++
	q.notEmpty.Signal()
	return nil
}

// TryPush appends v without blocking. It reports whether the value was
// queued; it returns false both when the queue is full and when it is
// closed (use Push to distinguish).
func (q *Queue[T]) TryPush(v T) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.count == len(q.buf) {
		return false
	}
	q.buf[(q.head+q.count)%len(q.buf)] = v
	q.count++
	q.notEmpty.Signal()
	return true
}

// Pop removes and returns the oldest element, blocking while the queue is
// empty. ok is false if and only if the queue is closed and drained; the
// consumer loop `for v, ok := q.Pop(); ok; v, ok = q.Pop()` therefore
// processes every pushed element exactly once.
func (q *Queue[T]) Pop() (v T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.count == 0 && !q.closed {
		q.popWaits++
		q.notEmpty.Wait()
	}
	if q.count == 0 { // closed and drained
		var zero T
		return zero, false
	}
	v = q.buf[q.head]
	var zero T
	q.buf[q.head] = zero // drop reference for GC
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	q.notFull.Signal()
	return v, true
}

// TryPop removes and returns the oldest element without blocking. ok is
// false if the queue is currently empty.
func (q *Queue[T]) TryPop() (v T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.count == 0 {
		var zero T
		return zero, false
	}
	v = q.buf[q.head]
	var zero T
	q.buf[q.head] = zero
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	q.notFull.Signal()
	return v, true
}

// Close marks the queue closed. Subsequent Push calls fail with ErrClosed;
// queued elements remain poppable; blocked producers and consumers wake.
// Close is idempotent.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}

// Len returns the number of currently queued elements.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.count
}

// Cap returns the queue capacity.
func (q *Queue[T]) Cap() int { return len(q.buf) }

// Stats returns how many times producers and consumers had to block.
func (q *Queue[T]) Stats() (pushWaits, popWaits uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pushWaits, q.popWaits
}
