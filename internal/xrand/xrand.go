// Package xrand provides a small, fast, deterministic pseudo-random number
// generator used by every workload and data generator in this repository.
//
// The experiments in the paper (§3) are driven by random data distributions,
// shuffled query sequences, and uniformly drawn update positions. For the
// reproduction to be debuggable and for tests to be stable, all of that
// randomness must be reproducible from a single seed, independent of Go
// version and of math/rand's global state. We therefore implement
// splitmix64 (for seeding) and xoshiro256** (for bulk generation), two
// public-domain generators with well-studied statistical behaviour.
package xrand

// Splitmix64 advances the given state and returns the next value of the
// splitmix64 sequence. It is used to expand a single user seed into the
// four words of xoshiro state, and is handy as a cheap standalone hash.
func Splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a deterministic xoshiro256** generator. It is not safe for
// concurrent use; create one generator per goroutine (Fork derives
// independent streams).
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64, per the xoshiro
// authors' recommendation.
func New(seed uint64) *Rand {
	var r Rand
	sm := seed
	for i := range r.s {
		r.s[i] = Splitmix64(&sm)
	}
	// All-zero state would be absorbing; splitmix64 of any seed cannot
	// produce four zero words, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return &r
}

// Fork returns a new generator whose stream is independent of r's by
// construction (seeded from r's next output mixed with a constant).
func (r *Rand) Fork() *Rand {
	return New(r.Uint64() ^ 0xd3833e804f4c574b)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17

	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)

	return result
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n(0)")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling on the top bits.
	thresh := -n % n
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= thresh {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32

	t := aLo * bLo
	lo = t & mask
	carry := t >> 32

	t = aHi*bLo + carry
	mid := t & mask
	carry = t >> 32

	t = aLo*bHi + mid
	lo |= (t & mask) << 32
	carry2 := t >> 32

	hi = aHi*bHi + carry + carry2
	return hi, lo
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64Range returns a uniform value in [lo, hi]. It panics if lo > hi.
func (r *Rand) Uint64Range(lo, hi uint64) uint64 {
	if lo > hi {
		panic("xrand: Uint64Range with lo > hi")
	}
	span := hi - lo
	if span == ^uint64(0) {
		return r.Uint64()
	}
	return lo + r.Uint64n(span+1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Shuffle pseudo-randomly permutes n elements via the provided swap
// function, using the Fisher-Yates algorithm. The paper shuffles its
// generated query sequences before firing them (§3.2).
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := int(r.Uint64n(uint64(i + 1)))
		swap(i, j)
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
