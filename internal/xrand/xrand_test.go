package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestSplitmix64KnownValues(t *testing.T) {
	// Reference values for seed 0 from the splitmix64 reference
	// implementation by Sebastiano Vigna.
	state := uint64(0)
	want := []uint64{
		0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f,
	}
	for i, w := range want {
		if got := Splitmix64(&state); got != w {
			t.Fatalf("Splitmix64 step %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(7)
	for _, n := range []uint64{1, 2, 3, 7, 64, 1000, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nOne(t *testing.T) {
	r := New(3)
	for i := 0; i < 50; i++ {
		if v := r.Uint64n(1); v != 0 {
			t.Fatalf("Uint64n(1) = %d, want 0", v)
		}
	}
}

func TestUint64nZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnNonPositivePanics(t *testing.T) {
	for _, n := range []int{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for Intn(%d)", n)
				}
			}()
			New(1).Intn(n)
		}()
	}
}

func TestUint64RangeBounds(t *testing.T) {
	r := New(9)
	lo, hi := uint64(100), uint64(200)
	for i := 0; i < 1000; i++ {
		v := r.Uint64Range(lo, hi)
		if v < lo || v > hi {
			t.Fatalf("Uint64Range(%d,%d) = %d out of range", lo, hi, v)
		}
	}
	// Degenerate single-point range.
	if v := r.Uint64Range(55, 55); v != 55 {
		t.Fatalf("Uint64Range(55,55) = %d", v)
	}
	// Full-width range must not panic.
	_ = r.Uint64Range(0, ^uint64(0))
}

func TestUint64RangeInvertedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(1).Uint64Range(10, 9)
}

func TestFloat64Bounds(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestUniformity(t *testing.T) {
	// Chi-squared-ish sanity check: 16 buckets over 160k draws should all be
	// within 5% of the expected count for a healthy generator.
	r := New(123)
	const buckets, draws = 16, 160000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(buckets)]++
	}
	want := draws / buckets
	for i, c := range counts {
		if math.Abs(float64(c-want)) > 0.05*float64(want) {
			t.Errorf("bucket %d: %d draws, want %d +-5%%", i, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(77)
	for _, n := range []int{0, 1, 2, 10, 1000} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) not a permutation: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleDeterministic(t *testing.T) {
	mk := func() []int {
		s := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
		New(5).Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
		return s
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed shuffles differ")
		}
	}
}

func TestForkIndependence(t *testing.T) {
	r := New(1)
	f := r.Fork()
	// The fork must not replay the parent's stream.
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == f.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("fork mirrors parent: %d/100 identical", same)
	}
}

// Property: mul64 agrees with big-integer multiplication on the low 64 bits
// and on a few spot-checkable identities.
func TestQuickMul64(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		if lo != a*b { // low word must match wrapping multiply
			return false
		}
		if a == 0 || b == 0 {
			return hi == 0 && lo == 0
		}
		// (a*b) / b == a when hi==0 guarantees no overflow happened.
		if hi == 0 && lo/b != a {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMul64KnownValues(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{1 << 32, 1 << 32, 1, 0},
		{^uint64(0), ^uint64(0), ^uint64(0) - 1, 1},
		{^uint64(0), 2, 1, ^uint64(0) - 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%#x,%#x) = (%#x,%#x), want (%#x,%#x)",
				c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

// Property: Uint64n(n) < n for arbitrary n > 0.
func TestQuickUint64nInRange(t *testing.T) {
	r := New(99)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkUint64n(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64n(1000003)
	}
}
