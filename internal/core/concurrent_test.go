package core

import (
	"fmt"
	"sync"
	"testing"

	"github.com/asv-db/asv/internal/dist"
	"github.com/asv-db/asv/internal/storage"
	"github.com/asv-db/asv/internal/view"
	"github.com/asv-db/asv/internal/viewset"
	"github.com/asv-db/asv/internal/vmsim"
	"github.com/asv-db/asv/internal/workload"
	"github.com/asv-db/asv/internal/xrand"
)

const ccDomain = 1_000_000

// TestQueryParallelEquivalence is the engine-level equivalence table: for
// every registered generator and both routing modes, a full adaptive query
// sequence answered with parallel scan kernels must be result-identical —
// counts, sums, scanned pages, and the adapted view set — to the serial
// run on an identical column.
func TestQueryParallelEquivalence(t *testing.T) {
	const pages = 96
	queries := workload.SelectivitySweep(11, 30, ccDomain, ccDomain/2, ccDomain/100)
	for _, name := range dist.Names() {
		for _, mode := range []Mode{SingleView, MultiView} {
			t.Run(fmt.Sprintf("%s_%s", name, mode), func(t *testing.T) {
				g, err := dist.ByName(name, 5, 0, ccDomain, pages)
				if err != nil {
					t.Fatal(err)
				}
				mkEngine := func(parallelism int) *Engine {
					cfg := syncConfig()
					cfg.Mode = mode
					cfg.Parallelism = parallelism
					return newEngine(t, testColumn(t, pages, g), cfg)
				}
				serial := mkEngine(0)
				parallel := mkEngine(3)
				for i, q := range queries {
					rs, err := serial.Query(q.Lo, q.Hi)
					if err != nil {
						t.Fatal(err)
					}
					rp, err := parallel.Query(q.Lo, q.Hi)
					if err != nil {
						t.Fatal(err)
					}
					if rs != rp {
						t.Fatalf("query %d [%d,%d]: serial %+v != parallel %+v", i, q.Lo, q.Hi, rs, rp)
					}
				}
				// The adaptive side effects must match too: same views over
				// the same ranges with the same page counts.
				vs, vp := serial.Views(), parallel.Views()
				if len(vs) != len(vp) {
					t.Fatalf("view sets diverged: %d vs %d", len(vs), len(vp))
				}
				for i := range vs {
					if vs[i].Lo() != vp[i].Lo() || vs[i].Hi() != vp[i].Hi() || vs[i].NumPages() != vp[i].NumPages() {
						t.Fatalf("view %d diverged: %v vs %v", i, vs[i], vp[i])
					}
				}
			})
		}
	}
}

// TestConcurrentAdaptiveQueries hammers one adaptive engine from many
// goroutines and then validates every answer against a serial baseline
// engine over the same column: concurrent routing, scanning, and view
// publication must never change a result.
func TestConcurrentAdaptiveQueries(t *testing.T) {
	const (
		pages   = 128
		clients = 8
	)
	col := testColumn(t, pages, dist.NewSine(9, 0, ccDomain, 16))
	for _, mode := range []Mode{SingleView, MultiView} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := DefaultConfig() // background mapper on: the full §2.3 path
			cfg.Mode = mode
			eng := newEngine(t, col, cfg)
			streams := workload.ConcurrentClients(21, clients, 40, ccDomain, 0.02)

			type got struct {
				q     workload.Query
				count int
				sum   uint64
			}
			results := make([][]got, clients)
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for _, q := range streams[c] {
						res, err := eng.Query(q.Lo, q.Hi)
						if err != nil {
							t.Error(err)
							return
						}
						results[c] = append(results[c], got{q, res.Count, res.Sum})
					}
				}(c)
			}
			wg.Wait()
			if t.Failed() {
				return
			}

			baseline := newEngine(t, col, BaselineConfig())
			for c := range results {
				for _, r := range results[c] {
					want, err := baseline.Query(r.q.Lo, r.q.Hi)
					if err != nil {
						t.Fatal(err)
					}
					if r.count != want.Count || r.sum != want.Sum {
						t.Fatalf("client %d [%d,%d]: concurrent (%d,%d) != serial (%d,%d)",
							c, r.q.Lo, r.q.Hi, r.count, r.sum, want.Count, want.Sum)
					}
				}
			}
		})
	}
}

// TestConcurrentQueryVsUpdate races readers against a writer on one
// column: goroutines fire queries while another applies update bursts and
// flushes. Every individual answer must be internally consistent (the
// collecting and filtering passes agree — QueryAggregate checks this
// inline), and after the storm the engine must converge to the serial
// truth.
func TestConcurrentQueryVsUpdate(t *testing.T) {
	const (
		pages   = 96
		readers = 4
		bursts  = 20
	)
	col := testColumn(t, pages, dist.NewUniform(3, 0, ccDomain))
	eng := newEngine(t, col, syncConfig())

	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := xrand.New(uint64(100 + r))
			for i := 0; i < 50; i++ {
				lo := rng.Uint64n(ccDomain)
				hi := lo + rng.Uint64n(ccDomain/10)
				if _, _, err := eng.QueryAggregate(lo, hi); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := xrand.New(7)
		for b := 0; b < bursts; b++ {
			for i := 0; i < 25; i++ {
				if err := eng.Update(rng.Intn(col.Rows()), rng.Uint64n(ccDomain)); err != nil {
					t.Error(err)
					return
				}
			}
			if _, err := eng.FlushUpdates(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	// Convergence: with the writer quiet, adaptive answers equal a raw
	// column scan.
	if n := eng.PendingUpdates(); n != 0 {
		t.Fatalf("%d updates still pending after flush", n)
	}
	for _, q := range [][2]uint64{{0, ccDomain}, {ccDomain / 3, ccDomain / 2}, {0, 1000}} {
		wantCount, wantSum, err := col.FullScan(q[0], q[1])
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Query(q[0], q[1])
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != wantCount || res.Sum != wantSum {
			t.Fatalf("[%d,%d]: engine (%d,%d) != column (%d,%d)",
				q[0], q[1], res.Count, res.Sum, wantCount, wantSum)
		}
	}
}

// TestConcurrentColumnsSharedKernel drives adaptive engines on several
// columns that share one simulated kernel and address space — the DB
// topology — from concurrent goroutines: per-column locks must not be
// needed for cross-column parallelism, and the shared VM layer must hold
// up under concurrent mapping traffic.
func TestConcurrentColumnsSharedKernel(t *testing.T) {
	const (
		columns = 4
		pages   = 64
	)
	k := vmsim.NewKernel(0)
	as := k.NewAddressSpace()
	as.SetMaxMapCount(1 << 30)

	cols := make([]*storage.Column, columns)
	engines := make([]*Engine, columns)
	for i := range cols {
		c, err := storage.NewColumn(k, as, fmt.Sprintf("col%d", i), pages)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Fill(dist.NewClustered(uint64(i+1), 0, ccDomain, 0.05)); err != nil {
			t.Fatal(err)
		}
		cols[i] = c
		engines[i] = newEngine(t, c, DefaultConfig())
	}

	var wg sync.WaitGroup
	for i := range engines {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, q := range workload.ConcurrentClients(33, columns, 40, ccDomain, 0.05)[i] {
				if _, err := engines[i].Query(q.Lo, q.Hi); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for i, eng := range engines {
		wantCount, wantSum, err := cols[i].FullScan(0, ccDomain/2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Query(0, ccDomain/2)
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != wantCount || res.Sum != wantSum {
			t.Fatalf("column %d: engine (%d,%d) != scan (%d,%d)",
				i, res.Count, res.Sum, wantCount, wantSum)
		}
	}
}

// TestConcurrentStatsAndViewsReads polls the observability surface
// (Stats, Views, String, PendingUpdates) while queries and updates run —
// snapshots must be race-free and monotonic.
func TestConcurrentStatsAndViewsReads(t *testing.T) {
	col := testColumn(t, 64, dist.NewUniform(5, 0, ccDomain))
	eng := newEngine(t, col, syncConfig())

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var lastQueries uint64
		for {
			select {
			case <-done:
				return
			default:
			}
			st := eng.Stats()
			if st.Queries < lastQueries {
				t.Errorf("queries counter went backwards: %d -> %d", lastQueries, st.Queries)
				return
			}
			lastQueries = st.Queries
			_ = eng.Views()
			_ = eng.String()
			_ = eng.PendingUpdates()
		}
	}()
	rng := xrand.New(1)
	for i := 0; i < 200; i++ {
		lo := rng.Uint64n(ccDomain)
		if _, err := eng.Query(lo, lo+ccDomain/50); err != nil {
			t.Fatal(err)
		}
		if i%10 == 0 {
			if err := eng.Update(rng.Intn(col.Rows()), rng.Uint64n(ccDomain)); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(done)
	wg.Wait()

	st := eng.Stats()
	if st.Queries == 0 || st.PagesScanned == 0 {
		t.Fatalf("stats not accumulated: %+v", st)
	}
	eng.ResetStats()
	if got := eng.Stats(); got.Queries != 0 {
		t.Fatalf("reset left %+v", got)
	}
}

// TestStaleCandidateDiscarded pins the TOCTOU window between the
// read-locked scan that builds a candidate and the write-locked retention
// decision that publishes it: if an update alignment or a view rebuild
// runs in that window, the candidate's page set was built from pre-flush
// state and alignment (which only walks set members) can never repair it,
// so publishCandidate must discard it instead of publishing a view that
// would answer every future routed query incorrectly.
func TestStaleCandidateDiscarded(t *testing.T) {
	col := testColumn(t, 64, dist.NewClustered(7, 0, ccDomain, 0.05))
	eng := newEngine(t, col, syncConfig())

	scan := func(lo, hi uint64) (*view.View, uint64) {
		t.Helper()
		st := eng.acquireState()
		defer eng.releaseState(st)
		_, cand, err := eng.scanState(st, lo, hi, nil, 1, true, nil)
		if err != nil {
			t.Fatal(err)
		}
		if cand == nil {
			t.Fatal("no candidate built")
		}
		return cand, st.gen
	}

	// No intervening mutation: the candidate publishes normally.
	cand, gen := scan(100, ccDomain/10)
	dec, displaced := eng.publishCandidate(cand, gen)
	if dec != viewset.Inserted || displaced != nil {
		t.Fatalf("fresh candidate: %v (displaced %v), want inserted", dec, displaced)
	}
	if err := eng.applyDecision(dec, cand, displaced); err != nil {
		t.Fatal(err)
	}

	// An Update+FlushUpdates pair lands in the window: stale.
	cand, gen = scan(ccDomain/2, ccDomain/2+ccDomain/10)
	if err := eng.Update(0, ccDomain/2); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.FlushUpdates(); err != nil {
		t.Fatal(err)
	}
	dec, displaced = eng.publishCandidate(cand, gen)
	if dec != viewset.DiscardedStale {
		t.Fatalf("post-flush candidate: %v, want %v", dec, viewset.DiscardedStale)
	}
	if err := eng.applyDecision(dec, cand, displaced); err != nil {
		t.Fatal(err)
	}

	// A rebuild lands in the window: stale (the rebuild dropped the
	// pending list, so no later flush would carry the batch either).
	cand, gen = scan(ccDomain/4, ccDomain/4+ccDomain/10)
	if err := eng.RebuildViews(); err != nil {
		t.Fatal(err)
	}
	dec, displaced = eng.publishCandidate(cand, gen)
	if dec != viewset.DiscardedStale {
		t.Fatalf("post-rebuild candidate: %v, want %v", dec, viewset.DiscardedStale)
	}
	if err := eng.applyDecision(dec, cand, displaced); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.ViewsDiscarded != 2 {
		t.Fatalf("ViewsDiscarded = %d, want 2", st.ViewsDiscarded)
	}
}

// TestCloseDiscardsLateCandidates checks the companion hazard: a query
// whose candidate publication races with Close must not insert into the
// cleared set — that would leak the candidate's mapping and leave the
// closed engine with views, violating Close's "releases all partial
// views" contract.
func TestCloseDiscardsLateCandidates(t *testing.T) {
	col := testColumn(t, 64, dist.NewClustered(8, 0, ccDomain, 0.05))
	eng := newEngine(t, col, syncConfig())

	// Sanity: the engine adapts while open.
	res, err := eng.Query(0, ccDomain/20)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CandidateBuilt || res.Decision != viewset.Inserted {
		t.Fatalf("pre-close query did not adapt: %+v", res)
	}
	// A scan in flight when Close lands: its candidate must be discarded,
	// never inserted into the cleared set.
	st := eng.acquireState()
	_, cand, err := eng.scanState(st, ccDomain/3, ccDomain/3+ccDomain/20, nil, 1, true, nil)
	gen := st.gen
	eng.releaseState(st)
	if err != nil {
		t.Fatal(err)
	}
	if cand == nil {
		t.Fatal("no candidate built")
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	dec, displaced := eng.publishCandidate(cand, gen)
	if dec != viewset.DiscardedStale {
		t.Fatalf("candidate racing Close: %v, want %v", dec, viewset.DiscardedStale)
	}
	if err := eng.applyDecision(dec, cand, displaced); err != nil {
		t.Fatal(err)
	}

	// The full view outlives Close (the column owns it), so queries still
	// answer — but a closed engine skips candidate construction entirely.
	res, err = eng.Query(ccDomain/2, ccDomain/2+ccDomain/20)
	if err != nil {
		t.Fatal(err)
	}
	if res.CandidateBuilt {
		t.Fatalf("post-close query built a candidate: %+v", res)
	}
	if n := len(eng.Views()); n != 0 {
		t.Fatalf("closed engine holds %d partial views", n)
	}
}
