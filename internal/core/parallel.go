package core

import (
	"sync"
	"time"

	"github.com/asv-db/asv/internal/storage"
)

// minParallelScanPages aliases the storage layer's sharding threshold so
// both kernels agree on when a scan is too small to split.
const minParallelScanPages = storage.MinParallelScanPages

// scanPagesAdaptive wraps scanPages with the autopilot's adaptive
// parallelism: when a cost model runs, the worker count is chosen per
// operation from the routed page count (capped by the caller's static
// knob, respecting minParallelScanPages) and the observed wall time is
// fed back. Worker count never changes scan results — shards reduce in
// page order — so adaptivity is invisible to answers and candidates.
func (e *Engine) scanPagesAdaptive(n, workers int, lo, hi uint64,
	fetch func(int) ([]byte, error),
	emit func(pid uint64, pg []byte)) (qual, excl storage.PageScan, err error) {

	filter := e.pageFilter(lo, hi)
	w := workers
	if e.model != nil {
		w = e.model.ScanWorkers(n, workers, minParallelScanPages)
	}
	t0 := time.Now()
	qual, excl, err = scanPages(n, w, filter, fetch, emit)
	if err == nil {
		elapsed := time.Since(t0)
		if e.model != nil {
			e.model.ObserveScan(n, w, elapsed)
		}
		if n > 0 {
			e.ins.scanNsPerPage.Observe(uint64(elapsed) / uint64(n))
		}
	}
	return qual, excl, err
}

// scanPages is the engine-side parallel scan kernel: it filters n pages
// through the caller's filter closure (plain ScanFilter, or the
// tier-bracketed variant when a second tier runs) with `workers`
// page-sharded goroutines and reduces the shards in page order with
// storage.PageScan.Merge, so every aggregate is byte-identical to the
// serial loop.
//
// fetch(i) resolves the i-th page and must be safe for concurrent calls —
// view and column soft-TLBs are fully resolved before a scan can reach
// them, making page access a pure read. The returned `qual` merges the
// pages with at least one match (its Count/Sum are the query answer);
// `excl` merges the zero-match pages (its boundary fields feed
// candidate-range extension, §2.2).
//
// emit, when non-nil, is invoked for every qualifying page strictly in
// page order from the calling goroutine — the candidate builder and row
// collectors depend on that order — after the sharded scan joins (or
// inline on the serial path). With one worker, a small n, or emit-only
// runs the kernel degenerates to the plain serial loop.
func scanPages(n, workers int, filter func([]byte) storage.PageScan,
	fetch func(int) ([]byte, error),
	emit func(pid uint64, pg []byte)) (qual, excl storage.PageScan, err error) {

	if workers > n {
		workers = n
	}
	if workers <= 1 || n < minParallelScanPages {
		for i := 0; i < n; i++ {
			pg, ferr := fetch(i)
			if ferr != nil {
				return qual, excl, ferr
			}
			s := filter(pg)
			if s.Count == 0 {
				excl.Merge(s)
				continue
			}
			qual.Merge(s)
			if emit != nil {
				emit(storage.PageID(pg), pg)
			}
		}
		return qual, excl, nil
	}

	type shard struct {
		qual, excl storage.PageScan
		hits       [][]byte // qualifying pages of the block, in page order
		err        error
	}
	shards := make([]shard, workers)
	per := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		start, end := w*per, (w+1)*per
		if end > n {
			end = n
		}
		if start >= end {
			break
		}
		wg.Add(1)
		go func(w, start, end int) {
			defer wg.Done()
			sh := &shards[w]
			for i := start; i < end; i++ {
				pg, ferr := fetch(i)
				if ferr != nil {
					sh.err = ferr
					return
				}
				s := filter(pg)
				if s.Count == 0 {
					sh.excl.Merge(s)
					continue
				}
				sh.qual.Merge(s)
				if emit != nil {
					sh.hits = append(sh.hits, pg)
				}
			}
		}(w, start, end)
	}
	wg.Wait()

	for w := range shards {
		if shards[w].err != nil {
			return qual, excl, shards[w].err
		}
	}
	// Reduce in block order: blocks are contiguous page ranges, so this
	// replays the serial page order exactly.
	for w := range shards {
		qual.Merge(shards[w].qual)
		excl.Merge(shards[w].excl)
		if emit != nil {
			for _, pg := range shards[w].hits {
				emit(storage.PageID(pg), pg)
			}
		}
	}
	return qual, excl, nil
}
