package core

import (
	"github.com/asv-db/asv/internal/storage"
	"github.com/asv-db/asv/internal/vmsim"
)

// This file wires the vmsim second frame tier into the engine's scan
// kernels. Page access becomes versioned/optimistic in the vmcache
// style: the scan touch is bracketed by the page's tier+version word
// (Touch hands out the token, Stable validates it), and a concurrent
// demotion or promotion mid-filter retries the page. Correctness never
// depends on the retry — captured page bytes are frozen for the pinned
// state's lifetime — but the bracket keeps the *accounting* honest: a
// page demoted between touch and filter is re-charged at its new tier,
// which is exactly the protocol a real tiered buffer manager runs.

// tierScanRetries bounds the optimistic re-reads per page. Migrations of
// one page are rare (one autopilot slice or one write), so a page that
// keeps failing validation is under a migration storm; after the bound
// the scan keeps the latest charge and moves on — progress over
// precision, the answer is unaffected either way.
const tierScanRetries = 3

// tierScanFilter filters one page through the versioned/optimistic tier
// bracket: touch (charging cold latency and possibly promoting), filter,
// validate, retry on a concurrent migration.
func tierScanFilter(t *vmsim.FileTier, pg []byte, lo, hi uint64) storage.PageScan {
	pid := int(storage.PageID(pg))
	for r := 0; ; r++ {
		tok := t.Touch(pid)
		s := storage.ScanFilter(pg, lo, hi)
		if t.Stable(pid, tok) || r >= tierScanRetries {
			return s
		}
	}
}

// pageFilter returns the page-filter kernel for [lo, hi]: the plain
// storage.ScanFilter when the engine runs single-tier (nil e.tier — the
// zero-overhead default), or the tier-bracketed filter above. Every scan
// path (serial dedup loop, sharded kernel, full scans) resolves its
// filter through here, so tier accounting covers eager and lazy captures
// uniformly — both hand back pages whose embedded PageID keys the tier.
func (e *Engine) pageFilter(lo, hi uint64) func(pg []byte) storage.PageScan {
	if t := e.tier; t != nil {
		return func(pg []byte) storage.PageScan { return tierScanFilter(t, pg, lo, hi) }
	}
	return func(pg []byte) storage.PageScan { return storage.ScanFilter(pg, lo, hi) }
}

// TierStats snapshots the column tier's occupancy and migration
// counters; ok is false when the engine runs single-tier.
func (e *Engine) TierStats() (vmsim.TierStats, bool) {
	if e.tier == nil {
		return vmsim.TierStats{}, false
	}
	return e.tier.Stats(), true
}

// Tier exposes the engine's tier map (nil when tiering is off) — the
// autopilot's demotion duty and the harness drive migrations through it.
func (e *Engine) Tier() *vmsim.FileTier { return e.tier }
