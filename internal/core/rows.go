package core

import (
	"fmt"

	"github.com/asv-db/asv/internal/bitvec"
	"github.com/asv-db/asv/internal/storage"
	"github.com/asv-db/asv/internal/view"
)

// RowSet is the result of a row-materializing query: one bit per row of
// the column, set for qualifying rows. Row identity is recovered from the
// pageID embedded in each physical page (§2), which is what makes scans of
// arbitrarily-ordered partial views position-independent.
type RowSet struct {
	bits *bitvec.Vector
}

// NewRowSet returns an empty row set for a column with rows slots.
func NewRowSet(rows int) *RowSet { return &RowSet{bits: bitvec.New(rows)} }

// Contains reports whether row is in the set.
func (r *RowSet) Contains(row int) bool { return r.bits.Get(row) }

// Add inserts a row.
func (r *RowSet) Add(row int) { r.bits.Set(row) }

// Len returns the number of rows in the set.
func (r *RowSet) Len() int { return r.bits.Count() }

// Cap returns the number of row slots the set spans.
func (r *RowSet) Cap() int { return r.bits.Len() }

// Intersect keeps only rows present in both sets. The sets must span the
// same number of rows (i.e. come from equally-sized columns of one table).
func (r *RowSet) Intersect(o *RowSet) { r.bits.And(o.bits) }

// Union adds all rows of o.
func (r *RowSet) Union(o *RowSet) { r.bits.Or(o.bits) }

// Rows returns the qualifying row IDs in ascending order.
func (r *RowSet) Rows() []int {
	out := make([]int, 0, r.Len())
	for i := r.bits.NextSet(0); i != -1; i = r.bits.NextSet(i + 1) {
		out = append(out, i)
	}
	return out
}

// ForEach calls fn for every row in ascending order; fn returning false
// stops the iteration.
func (r *RowSet) ForEach(fn func(row int) bool) {
	for i := r.bits.NextSet(0); i != -1; i = r.bits.NextSet(i + 1) {
		if !fn(i) {
			return
		}
	}
}

// QueryRows answers [lo, hi] like Query but additionally materializes the
// qualifying row IDs. View adaptation happens exactly as for Query: the
// scan is the same, it just also emits matches.
func (e *Engine) QueryRows(lo, hi uint64) (*RowSet, QueryResult, error) {
	rs := NewRowSet(e.col.Rows())
	res, err := e.queryCollect(lo, hi, func(pageID uint64, pg []byte) {
		base := int(pageID) * storage.ValuesPerPage
		storage.CollectMatches(pg, lo, hi, func(slot int, _ uint64) {
			rs.Add(base + slot)
		})
	})
	return rs, res, err
}

// Aggregate summarizes the qualifying values of a range query.
type Aggregate struct {
	Count int
	Sum   uint64 // wrapping
	Min   uint64 // valid if Count > 0
	Max   uint64 // valid if Count > 0
}

// Mean returns the average qualifying value (0 when empty). Sums that
// overflow uint64 make the mean meaningless; callers working near the top
// of the domain should aggregate in chunks.
func (a Aggregate) Mean() float64 {
	if a.Count == 0 {
		return 0
	}
	return float64(a.Sum) / float64(a.Count)
}

// QueryAggregate answers [lo, hi] with count/sum/min/max over the
// qualifying values, with the same adaptive side effects as Query.
func (e *Engine) QueryAggregate(lo, hi uint64) (Aggregate, QueryResult, error) {
	agg := Aggregate{}
	res, err := e.queryCollect(lo, hi, func(_ uint64, pg []byte) {
		storage.CollectMatches(pg, lo, hi, func(_ int, v uint64) {
			if agg.Count == 0 || v < agg.Min {
				agg.Min = v
			}
			if agg.Count == 0 || v > agg.Max {
				agg.Max = v
			}
			agg.Count++
		})
	})
	agg.Sum = res.Sum
	if agg.Count != res.Count {
		// The collecting pass and the filtering pass disagree — impossible
		// unless a page mutated mid-query, which the engine forbids.
		return agg, res, fmt.Errorf("core: aggregate drift: %d != %d", agg.Count, res.Count)
	}
	return agg, res, err
}

// queryCollect runs the full Listing-1 query path and additionally invokes
// collect for every qualifying page (after dedup), letting callers
// materialize matches without duplicating the adaptive machinery.
func (e *Engine) queryCollect(lo, hi uint64, collect func(pageID uint64, pg []byte)) (QueryResult, error) {
	if lo > hi {
		lo, hi = hi, lo
	}
	e.stats.Queries++

	if !e.cfg.Adaptive {
		res, err := e.fullScanCollect(lo, hi, collect)
		return res, err
	}
	if len(e.pending) > 0 {
		if _, err := e.FlushUpdates(); err != nil {
			return QueryResult{}, err
		}
	}

	sources := e.route(lo, hi)
	res := QueryResult{ViewsUsed: len(sources)}
	for _, sv := range sources {
		if sv.Full() {
			res.UsedFullView = true
			e.stats.FullViewQueries++
		}
	}
	var processed = e.processed
	if len(sources) > 1 {
		processed = e.resetProcessed()
	} else {
		processed = nil
	}
	var builder *view.Builder
	if !e.set.Frozen() {
		var err error
		builder, err = view.NewBuilder(e.col, e.cfg.Create, e.mapper)
		if err != nil {
			return res, err
		}
	}
	ext := view.NewRangeExtender(lo, hi)
	for _, sv := range sources {
		n := sv.NumPages()
		for i := 0; i < n; i++ {
			pg, err := sv.PageBytes(i)
			if err != nil {
				if builder != nil {
					_ = builder.Abort()
				}
				return res, err
			}
			pid := storage.PageID(pg)
			if processed != nil && processed.TestAndSet(int(pid)) {
				continue
			}
			s := storage.ScanFilter(pg, lo, hi)
			res.PagesScanned++
			if s.Count == 0 {
				ext.ObserveExcluded(s)
				continue
			}
			res.Count += s.Count
			res.Sum += s.Sum
			if collect != nil {
				collect(pid, pg)
			}
			if builder != nil {
				builder.AddPage(int(pid))
			}
		}
	}
	e.stats.PagesScanned += uint64(res.PagesScanned)

	if builder == nil {
		return res, nil
	}
	cLo, cHi := ext.Range()
	srcLo, srcHi := e.set.CoveredInterval(sources, lo, hi)
	if cLo < srcLo {
		cLo = srcLo
	}
	if cHi > srcHi {
		cHi = srcHi
	}
	cand, err := builder.Finish(cLo, cHi)
	if err != nil {
		return res, err
	}
	res.CandidateBuilt = true
	dec, displaced := e.set.Consider(cand)
	res.Decision = dec
	if err := e.applyDecision(dec, cand, displaced); err != nil {
		return res, err
	}
	return res, nil
}

// fullScanCollect is the baseline path of queryCollect.
func (e *Engine) fullScanCollect(lo, hi uint64, collect func(uint64, []byte)) (QueryResult, error) {
	full := e.set.Full()
	res := QueryResult{ViewsUsed: 1, UsedFullView: true}
	for i := 0; i < full.NumPages(); i++ {
		pg, err := full.PageBytes(i)
		if err != nil {
			return res, err
		}
		s := storage.ScanFilter(pg, lo, hi)
		res.PagesScanned++
		if s.Count == 0 {
			continue
		}
		res.Count += s.Count
		res.Sum += s.Sum
		if collect != nil {
			collect(storage.PageID(pg), pg)
		}
	}
	e.stats.PagesScanned += uint64(res.PagesScanned)
	e.stats.FullViewQueries++
	return res, nil
}
