package core

import (
	"fmt"
	"time"

	"github.com/asv-db/asv/internal/bitvec"
	"github.com/asv-db/asv/internal/storage"
	"github.com/asv-db/asv/internal/view"
	"github.com/asv-db/asv/internal/viewset"
)

// RowSet is the result of a row-materializing query: one bit per row of
// the column, set for qualifying rows. Row identity is recovered from the
// pageID embedded in each physical page (§2), which is what makes scans of
// arbitrarily-ordered partial views position-independent.
type RowSet struct {
	bits *bitvec.Vector
}

// NewRowSet returns an empty row set for a column with rows slots.
func NewRowSet(rows int) *RowSet { return &RowSet{bits: bitvec.New(rows)} }

// Contains reports whether row is in the set.
func (r *RowSet) Contains(row int) bool { return r.bits.Get(row) }

// Add inserts a row.
func (r *RowSet) Add(row int) { r.bits.Set(row) }

// Len returns the number of rows in the set.
func (r *RowSet) Len() int { return r.bits.Count() }

// Cap returns the number of row slots the set spans.
func (r *RowSet) Cap() int { return r.bits.Len() }

// Intersect keeps only rows present in both sets. The sets must span the
// same number of rows (i.e. come from equally-sized columns of one table).
func (r *RowSet) Intersect(o *RowSet) { r.bits.And(o.bits) }

// Union adds all rows of o.
func (r *RowSet) Union(o *RowSet) { r.bits.Or(o.bits) }

// Rows returns the qualifying row IDs in ascending order.
func (r *RowSet) Rows() []int {
	out := make([]int, 0, r.Len())
	for i := r.bits.NextSet(0); i != -1; i = r.bits.NextSet(i + 1) {
		out = append(out, i)
	}
	return out
}

// ForEach calls fn for every row in ascending order; fn returning false
// stops the iteration.
func (r *RowSet) ForEach(fn func(row int) bool) {
	for i := r.bits.NextSet(0); i != -1; i = r.bits.NextSet(i + 1) {
		if !fn(i) {
			return
		}
	}
}

// QueryRows answers [lo, hi] like Query but additionally materializes the
// qualifying row IDs. View adaptation happens exactly as for Query: the
// scan is the same, it just also emits matches.
func (e *Engine) QueryRows(lo, hi uint64) (*RowSet, QueryResult, error) {
	rs := NewRowSet(e.col.Rows())
	res, err := e.queryCollect(lo, hi, func(pageID uint64, pg []byte) {
		base := int(pageID) * storage.ValuesPerPage
		storage.CollectMatches(pg, lo, hi, func(slot int, _ uint64) {
			rs.Add(base + slot)
		})
	})
	return rs, res, err
}

// Aggregate summarizes the qualifying values of a range query.
type Aggregate struct {
	Count int
	Sum   uint64 // wrapping
	Min   uint64 // valid if Count > 0
	Max   uint64 // valid if Count > 0
}

// Mean returns the average qualifying value (0 when empty). Sums that
// overflow uint64 make the mean meaningless; callers working near the top
// of the domain should aggregate in chunks.
func (a Aggregate) Mean() float64 {
	if a.Count == 0 {
		return 0
	}
	return float64(a.Sum) / float64(a.Count)
}

// QueryAggregate answers [lo, hi] with count/sum/min/max over the
// qualifying values, with the same adaptive side effects as Query.
func (e *Engine) QueryAggregate(lo, hi uint64) (Aggregate, QueryResult, error) {
	agg := Aggregate{}
	res, err := e.queryCollect(lo, hi, func(_ uint64, pg []byte) {
		storage.CollectMatches(pg, lo, hi, func(_ int, v uint64) {
			if agg.Count == 0 || v < agg.Min {
				agg.Min = v
			}
			if agg.Count == 0 || v > agg.Max {
				agg.Max = v
			}
			agg.Count++
		})
	})
	agg.Sum = res.Sum
	if agg.Count != res.Count {
		// The collecting pass and the filtering pass disagree — impossible
		// unless a page mutated mid-query, which the engine forbids.
		return agg, res, fmt.Errorf("core: aggregate drift: %d != %d", agg.Count, res.Count)
	}
	return agg, res, err
}

// queryCollect runs the full Listing-1 query path and additionally invokes
// collect for every qualifying page (after dedup), letting callers
// materialize matches without duplicating the adaptive machinery. The scan
// worker count comes from Config.Parallelism.
func (e *Engine) queryCollect(lo, hi uint64, collect func(pageID uint64, pg []byte)) (QueryResult, error) {
	return e.queryCollectWorkers(lo, hi, collect, e.cfg.Parallelism)
}

// queryCollectWorkers is queryCollect with an explicit parallelism knob
// (see resolveWorkers). Locking discipline: the routed scan — including
// candidate construction, which touches only query-private state — runs
// under the read lock; only flushing pending updates and the retention
// decision that publishes the candidate take the write lock.
func (e *Engine) queryCollectWorkers(lo, hi uint64, collect func(uint64, []byte), parallelism int) (QueryResult, error) {
	if lo > hi {
		lo, hi = hi, lo
	}
	e.stats.queries.Add(1)
	workers := resolveWorkers(parallelism)

	if !e.cfg.Adaptive {
		e.mu.RLock()
		defer e.mu.RUnlock()
		return e.fullScanCollect(lo, hi, collect, workers)
	}

	// Partial views must reflect all updates before they may answer
	// queries (§2.4), and returning stale answers is never acceptable.
	// Writers are locked out while the scan room is occupied, so once the
	// pending counter reads zero under the scan room it stays zero for
	// the whole scan; an update that slips in between the flush and the
	// scan-room reacquire simply re-runs the loop.
	e.mu.RLock()
	for e.pendingCount.Load() > 0 {
		e.mu.RUnlock()
		e.mu.Lock()
		// Re-check under the exclusive room: a racing query may have
		// flushed the same batch first.
		var err error
		if e.pendingCount.Load() > 0 {
			_, err = e.flushLocked()
		}
		e.mu.Unlock()
		if err != nil {
			return QueryResult{}, err
		}
		e.mu.RLock()
	}
	res, cand, err := e.scanLocked(lo, hi, collect, workers)
	gen := e.gen
	e.mu.RUnlock()
	if err != nil || cand == nil {
		return res, err
	}

	dec, displaced := e.publishCandidate(cand, gen)
	res.CandidateBuilt = true
	res.Decision = dec
	if err := e.applyDecision(dec, cand, displaced); err != nil {
		return res, err
	}
	return res, nil
}

// publishCandidate takes the write lock and runs the retention decision
// for a candidate built during a read-locked scan that observed
// generation gen. Reacquiring the lock opens a window: an update
// alignment, rebuild or close may have run since the scan, in which case
// the candidate's page set is stale — alignment only walks set members,
// so publishing it now would install a view no flush will ever repair —
// or the set is gone entirely (Close must not regrow, and must not leak,
// late candidates). Such candidates are reported DiscardedStale for the
// caller to release instead of being published.
func (e *Engine) publishCandidate(cand *view.View, gen uint64) (viewset.Decision, *view.View) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed || e.gen != gen {
		return viewset.DiscardedStale, nil
	}
	return e.set.Consider(cand)
}

// scanLocked is the read-locked body of a routed query: route, scan every
// source (through the parallel kernel when workers > 1), and build the
// candidate view. It returns the finished candidate (nil when the set is
// frozen) for the caller to publish under the write lock.
func (e *Engine) scanLocked(lo, hi uint64, collect func(uint64, []byte), workers int) (QueryResult, *view.View, error) {
	sources := e.route(lo, hi)
	res := QueryResult{ViewsUsed: len(sources)}
	for _, sv := range sources {
		if sv.Full() {
			res.UsedFullView = true
			e.stats.fullViewQueries.Add(1)
		}
	}
	var processed *bitvec.Vector
	if len(sources) > 1 {
		processed = e.getProcessed()
		defer e.putProcessed(processed)
	}
	var builder *view.Builder
	// closed is stable once set (readable under the read lock): a closed
	// engine's candidates would be discarded at publication anyway, so
	// skip building them rather than mmap-and-release on every query.
	if !e.set.Frozen() && !e.closed {
		var err error
		builder, err = view.NewBuilder(e.col, e.cfg.Create, e.mapper)
		if err != nil {
			return res, nil, err
		}
	}
	ext := view.NewRangeExtender(lo, hi)
	var emit func(pid uint64, pg []byte)
	if collect != nil || builder != nil {
		emit = func(pid uint64, pg []byte) {
			if collect != nil {
				collect(pid, pg)
			}
			if builder != nil {
				builder.AddPage(int(pid))
			}
		}
	}
	for _, sv := range sources {
		n := sv.NumPages()
		fetch := sv.PageBytes
		if processed != nil {
			if workers <= 1 {
				// Serial multi-view scan: keep dedup and filter fused in
				// one allocation-free pass (the paper's hot path).
				for i := 0; i < n; i++ {
					pg, err := sv.PageBytes(i)
					if err != nil {
						if builder != nil {
							_ = builder.Abort()
						}
						return res, nil, err
					}
					pid := storage.PageID(pg)
					if processed.TestAndSet(int(pid)) {
						continue
					}
					s := storage.ScanFilter(pg, lo, hi)
					res.PagesScanned++
					if s.Count == 0 {
						ext.ObserveExcluded(s)
						continue
					}
					res.Count += s.Count
					res.Sum += s.Sum
					if emit != nil {
						emit(pid, pg)
					}
				}
				continue
			}
			// Sharded multi-view scan: resolve this source's
			// not-yet-processed pages in scan order before splitting —
			// identity resolution is a soft-TLB read, so the prepass costs
			// a few ns per page and keeps TestAndSet single-threaded
			// (bitvec is not atomic).
			refs := make([][]byte, 0, n)
			for i := 0; i < n; i++ {
				pg, err := sv.PageBytes(i)
				if err != nil {
					if builder != nil {
						_ = builder.Abort()
					}
					return res, nil, err
				}
				if processed.TestAndSet(int(storage.PageID(pg))) {
					continue
				}
				refs = append(refs, pg)
			}
			n = len(refs)
			fetch = func(i int) ([]byte, error) { return refs[i], nil }
		}
		qual, excl, err := e.scanPagesAdaptive(n, workers, lo, hi, fetch, emit)
		if err != nil {
			if builder != nil {
				_ = builder.Abort()
			}
			return res, nil, err
		}
		res.PagesScanned += n
		res.Count += qual.Count
		res.Sum += qual.Sum
		ext.ObserveExcluded(excl)
	}
	e.stats.pagesScanned.Add(uint64(res.PagesScanned))

	if builder == nil {
		return res, nil, nil
	}
	cLo, cHi := ext.Range()
	srcLo, srcHi := e.set.CoveredInterval(sources, lo, hi)
	if cLo < srcLo {
		cLo = srcLo
	}
	if cHi > srcHi {
		cHi = srcHi
	}
	cand, err := builder.Finish(cLo, cHi)
	if err != nil {
		return res, nil, err
	}
	return res, cand, nil
}

// fullScanCollect is the baseline path of queryCollect; the caller holds
// the read lock. Pure aggregates go through the storage scan kernel
// (FullScanParallel); only collecting callers need the page-emitting
// engine kernel.
func (e *Engine) fullScanCollect(lo, hi uint64, collect func(uint64, []byte), workers int) (QueryResult, error) {
	res := QueryResult{ViewsUsed: 1, UsedFullView: true}
	if collect == nil {
		var t0 time.Time
		if e.model != nil {
			workers = e.model.ScanWorkers(e.col.NumPages(), workers, minParallelScanPages)
			t0 = time.Now()
		}
		count, sum, err := e.col.FullScanParallel(lo, hi, workers)
		if err != nil {
			return res, err
		}
		if e.model != nil {
			// Feed the observation back like scanPagesAdaptive: without
			// it this path's model stays cold forever and the worker
			// choice degenerates to the static knob.
			e.model.ObserveScan(e.col.NumPages(), workers, time.Since(t0))
		}
		res.Count = count
		res.Sum = sum
	} else {
		full := e.set.Full()
		qual, _, err := e.scanPagesAdaptive(full.NumPages(), workers, lo, hi, full.PageBytes, collect)
		if err != nil {
			return res, err
		}
		res.Count = qual.Count
		res.Sum = qual.Sum
	}
	res.PagesScanned = e.col.NumPages()
	e.stats.pagesScanned.Add(uint64(res.PagesScanned))
	e.stats.fullViewQueries.Add(1)
	return res, nil
}
