package core

import (
	"github.com/asv-db/asv/internal/bitvec"
)

// RowSet is the result of a row-materializing query: one bit per row of
// the column, set for qualifying rows. Row identity is recovered from the
// pageID embedded in each physical page (§2), which is what makes scans of
// arbitrarily-ordered partial views position-independent.
type RowSet struct {
	bits *bitvec.Vector
}

// NewRowSet returns an empty row set for a column with rows slots.
func NewRowSet(rows int) *RowSet { return &RowSet{bits: bitvec.New(rows)} }

// Contains reports whether row is in the set.
func (r *RowSet) Contains(row int) bool { return r.bits.Get(row) }

// Add inserts a row.
func (r *RowSet) Add(row int) { r.bits.Set(row) }

// Len returns the number of rows in the set.
func (r *RowSet) Len() int { return r.bits.Count() }

// Cap returns the number of row slots the set spans.
func (r *RowSet) Cap() int { return r.bits.Len() }

// Intersect keeps only rows present in both sets. The sets must span the
// same number of rows (i.e. come from equally-sized columns of one table).
func (r *RowSet) Intersect(o *RowSet) { r.bits.And(o.bits) }

// Union adds all rows of o.
func (r *RowSet) Union(o *RowSet) { r.bits.Or(o.bits) }

// Rows returns the qualifying row IDs in ascending order.
func (r *RowSet) Rows() []int {
	out := make([]int, 0, r.Len())
	for i := r.bits.NextSet(0); i != -1; i = r.bits.NextSet(i + 1) {
		out = append(out, i)
	}
	return out
}

// ForEach calls fn for every row in ascending order; fn returning false
// stops the iteration.
func (r *RowSet) ForEach(fn func(row int) bool) {
	for i := r.bits.NextSet(0); i != -1; i = r.bits.NextSet(i + 1) {
		if !fn(i) {
			return
		}
	}
}

// QueryRows answers [lo, hi] like Query but additionally materializes the
// qualifying row IDs. It is a thin wrapper over QueryOpt with the
// CollectRows option — answer, telemetry and every adaptive side effect
// are identical to that call.
func (e *Engine) QueryRows(lo, hi uint64) (*RowSet, QueryResult, error) {
	ans, err := e.QueryOpt(lo, hi, QueryOptions{CollectRows: true})
	return ans.Rows, ans.QueryResult, err
}

// Aggregate summarizes the qualifying values of a range query.
type Aggregate struct {
	Count int
	Sum   uint64 // wrapping
	Min   uint64 // valid if Count > 0
	Max   uint64 // valid if Count > 0
}

// Mean returns the average qualifying value (0 when empty). Sums that
// overflow uint64 make the mean meaningless; callers working near the top
// of the domain should aggregate in chunks.
func (a Aggregate) Mean() float64 {
	if a.Count == 0 {
		return 0
	}
	return float64(a.Sum) / float64(a.Count)
}

// QueryAggregate answers [lo, hi] with count/sum/min/max over the
// qualifying values, with the same adaptive side effects as Query. It is
// a thin wrapper over QueryOpt with the ComputeAggregate option.
func (e *Engine) QueryAggregate(lo, hi uint64) (Aggregate, QueryResult, error) {
	ans, err := e.QueryOpt(lo, hi, QueryOptions{ComputeAggregate: true})
	if ans.Agg == nil {
		return Aggregate{}, ans.QueryResult, err
	}
	return *ans.Agg, ans.QueryResult, err
}
