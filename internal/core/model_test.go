package core

import (
	"fmt"
	"testing"

	"github.com/asv-db/asv/internal/dist"
	"github.com/asv-db/asv/internal/storage"
	"github.com/asv-db/asv/internal/view"
	"github.com/asv-db/asv/internal/xrand"
)

// refModel mirrors the column contents in a flat slice and answers range
// queries by brute force — the ground truth for model-based testing.
type refModel struct {
	vals []uint64
}

func newRefModel(col *storage.Column) *refModel {
	m := &refModel{vals: make([]uint64, col.Rows())}
	for r := range m.vals {
		v, err := col.Value(r)
		if err != nil {
			panic(err)
		}
		m.vals[r] = v
	}
	return m
}

func (m *refModel) query(lo, hi uint64) (count int, sum uint64) {
	for _, v := range m.vals {
		if v >= lo && v <= hi {
			count++
			sum += v
		}
	}
	return count, sum
}

func (m *refModel) update(row int, v uint64) { m.vals[row] = v }

// TestModelInterleavedQueriesAndUpdates drives the engine with a random
// interleaving of range queries, point updates, batch flushes, and view
// rebuilds, and verifies every single query against the reference model.
// This is the system-level invariant everything else exists to uphold:
// the adaptive view layer is never allowed to change an answer.
func TestModelInterleavedQueriesAndUpdates(t *testing.T) {
	const (
		pages  = 80
		domain = 1_000_000
		steps  = 400
	)
	distributions := map[string]dist.Generator{
		"uniform": dist.NewUniform(1, 0, domain),
		"sine":    dist.NewSine(2, 0, domain, 10),
		"sparse":  dist.NewSparse(3, 0, domain, 0.9),
	}
	for _, mode := range []Mode{SingleView, MultiView} {
		for dname, g := range distributions {
			t.Run(fmt.Sprintf("%s/%s", mode, dname), func(t *testing.T) {
				col := testColumn(t, pages, g)
				cfg := syncConfig()
				cfg.Mode = mode
				cfg.MaxViews = 20
				e := newEngine(t, col, cfg)
				model := newRefModel(col)

				rng := xrand.New(99)
				for step := 0; step < steps; step++ {
					switch rng.Intn(10) {
					case 0, 1, 2: // point update (buffered)
						row := rng.Intn(col.Rows())
						val := rng.Uint64n(domain + 1)
						if err := e.Update(row, val); err != nil {
							t.Fatal(err)
						}
						model.update(row, val)
					case 3: // flush the pending batch
						if _, err := e.FlushUpdates(); err != nil {
							t.Fatal(err)
						}
					case 4: // occasional rebuild from scratch
						if step%7 == 0 {
							if err := e.RebuildViews(); err != nil {
								t.Fatal(err)
							}
						}
					default: // range query — the engine auto-flushes any
						// pending updates, so no explicit flush is needed.
						w := rng.Uint64n(domain/4) + 1
						lo := rng.Uint64n(domain - w)
						hi := lo + w
						got, err := e.Query(lo, hi)
						if err != nil {
							t.Fatal(err)
						}
						wantCount, wantSum := model.query(lo, hi)
						if got.Count != wantCount || got.Sum != wantSum {
							t.Fatalf("step %d: query [%d,%d] = (%d,%d), want (%d,%d); views=%d",
								step, lo, hi, got.Count, got.Sum, wantCount, wantSum, e.ViewSet().Len())
						}
					}
				}
			})
		}
	}
}

// TestModelConcurrentMapperEquivalence repeats a short model run with the
// background mapping thread enabled — results must be identical to the
// synchronous path.
func TestModelConcurrentMapperEquivalence(t *testing.T) {
	const domain = 1_000_000
	col := testColumn(t, 64, dist.NewSine(5, 0, domain, 8))
	model := newRefModel(col)

	cfg := DefaultConfig() // concurrent mapper on
	cfg.MaxViews = 15
	e := newEngine(t, col, cfg)
	_ = view.AllOptimizations // documents that cfg.Create uses both optimizations

	rng := xrand.New(7)
	for step := 0; step < 150; step++ {
		if rng.Intn(4) == 0 {
			row := rng.Intn(col.Rows())
			val := rng.Uint64n(domain + 1)
			if err := e.Update(row, val); err != nil {
				t.Fatal(err)
			}
			model.update(row, val)
			continue // next query auto-flushes
		}
		w := rng.Uint64n(domain/5) + 1
		lo := rng.Uint64n(domain - w)
		got, err := e.Query(lo, lo+w)
		if err != nil {
			t.Fatal(err)
		}
		wantCount, wantSum := model.query(lo, lo+w)
		if got.Count != wantCount || got.Sum != wantSum {
			t.Fatalf("step %d: (%d,%d) want (%d,%d)", step, got.Count, got.Sum, wantCount, wantSum)
		}
	}
}
