package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/asv-db/asv/internal/dist"
	"github.com/asv-db/asv/internal/view"
	"github.com/asv-db/asv/internal/workload"
)

// republishFresh drops the delta-capture cache and publishes a fully
// fresh (non-delta) state — the reference the delta path must match.
func republishFresh(t *testing.T, e *Engine) {
	t.Helper()
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.set.ResetCaptureCache(); err != nil {
		t.Fatal(err)
	}
	if err := e.publishStateLocked(); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaPublicationEquivalence drives every generator through an
// interleaved query/update workload — each flush publishes a structural
// delta over its predecessor — then forces a full from-scratch capture
// and replays the probes: the delta-built state must answer exactly like
// the rebuilt one.
func TestDeltaPublicationEquivalence(t *testing.T) {
	const pages = 96
	probes := workload.SelectivitySweep(13, 30, ccDomain, ccDomain/2, ccDomain/100)
	for _, name := range dist.Names() {
		t.Run(name, func(t *testing.T) {
			g, err := dist.ByName(name, 5, 0, ccDomain, pages)
			if err != nil {
				t.Fatal(err)
			}
			e := newEngine(t, testColumn(t, pages, g), syncConfig())
			ups := workload.UniformUpdates(77, 240, e.Column().Rows(), 0, ccDomain)

			// Interleave: queries grow the view set, update batches flush
			// between them so successive publications are deltas over a
			// mutating set.
			for i, q := range probes {
				if _, err := e.Query(q.Lo, q.Hi); err != nil {
					t.Fatal(err)
				}
				for _, u := range ups[i*8 : (i+1)*8] {
					if err := e.Update(u.Row, u.Value); err != nil {
						t.Fatal(err)
					}
				}
				if _, err := e.FlushUpdates(); err != nil {
					t.Fatal(err)
				}
			}

			before := make([]QueryResult, len(probes))
			for i, q := range probes {
				r, err := e.Query(q.Lo, q.Hi)
				if err != nil {
					t.Fatal(err)
				}
				before[i] = r
			}
			republishFresh(t, e)
			for i, q := range probes {
				r, err := e.Query(q.Lo, q.Hi)
				if err != nil {
					t.Fatal(err)
				}
				if r.Count != before[i].Count || r.Sum != before[i].Sum {
					t.Fatalf("probe %d [%d,%d]: delta state %d/%d != fresh state %d/%d",
						i, q.Lo, q.Hi, before[i].Count, before[i].Sum, r.Count, r.Sum)
				}
			}
		})
	}
}

// TestLazyEagerScanEquivalence runs the same workload on a lazy-views
// engine and an eager-views engine over identically generated columns:
// every answer and, at the end, every view's resolved page bytes must be
// identical — fault-driven materialization may defer mapping work but
// never change what a scan reads.
func TestLazyEagerScanEquivalence(t *testing.T) {
	const pages = 96
	probes := workload.SelectivitySweep(17, 25, ccDomain, ccDomain/2, ccDomain/100)
	for _, name := range dist.Names() {
		t.Run(name, func(t *testing.T) {
			g, err := dist.ByName(name, 5, 0, ccDomain, pages)
			if err != nil {
				t.Fatal(err)
			}
			mk := func(lazy bool) *Engine {
				cfg := syncConfig()
				cfg.LazyViews = lazy
				return newEngine(t, testColumn(t, pages, g), cfg)
			}
			lazyE, eagerE := mk(true), mk(false)
			ups := workload.UniformUpdates(33, 200, lazyE.Column().Rows(), 0, ccDomain)

			for i, q := range probes {
				rl, err := lazyE.Query(q.Lo, q.Hi)
				if err != nil {
					t.Fatal(err)
				}
				re, err := eagerE.Query(q.Lo, q.Hi)
				if err != nil {
					t.Fatal(err)
				}
				if rl.Count != re.Count || rl.Sum != re.Sum {
					t.Fatalf("probe %d [%d,%d]: lazy %d/%d != eager %d/%d",
						i, q.Lo, q.Hi, rl.Count, rl.Sum, re.Count, re.Sum)
				}
				for _, u := range ups[i*8 : (i+1)*8] {
					if err := lazyE.Update(u.Row, u.Value); err != nil {
						t.Fatal(err)
					}
					if err := eagerE.Update(u.Row, u.Value); err != nil {
						t.Fatal(err)
					}
				}
				if _, err := lazyE.FlushUpdates(); err != nil {
					t.Fatal(err)
				}
				if _, err := eagerE.FlushUpdates(); err != nil {
					t.Fatal(err)
				}
			}

			lv, ev := lazyE.Views(), eagerE.Views()
			if len(lv) != len(ev) {
				t.Fatalf("view counts diverged: lazy %d, eager %d", len(lv), len(ev))
			}
			for i := range lv {
				if lv[i].NumPages() != ev[i].NumPages() {
					t.Fatalf("view %d page counts diverged: %d vs %d",
						i, lv[i].NumPages(), ev[i].NumPages())
				}
				for p := 0; p < lv[i].NumPages(); p++ {
					lp, err := lv[i].PageBytes(p)
					if err != nil {
						t.Fatal(err)
					}
					ep, err := ev[i].PageBytes(p)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(lp, ep) {
						t.Fatalf("view %d page %d bytes diverged", i, p)
					}
				}
			}
		})
	}
}

// TestEpochManyViewsStorm races view creation, adaptive eviction,
// snapshot pins and delta publications against each other: the
// copy-on-write capture table's reference discipline must keep every
// pinned reader consistent while chunks are shared, rebuilt and retired
// underneath it. Run under -race in CI with fresh schedules.
func TestEpochManyViewsStorm(t *testing.T) {
	const pages = 64
	cfg := syncConfig()
	cfg.MaxViews = 8
	cfg.Limit = EvictLRU
	e := newEngine(t, testColumn(t, pages, dist.NewUniform(7, 0, ccDomain)), cfg)

	errs := make(chan error, 16)
	var wg sync.WaitGroup
	start := make(chan struct{})
	spawn := func(fn func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := fn(); err != nil {
				errs <- err
			}
		}()
	}

	// Writers: single-row batches, each flush a delta publication.
	ups := workload.UniformUpdates(21, 300, e.Column().Rows(), 0, ccDomain)
	spawn(func() error {
		for _, u := range ups {
			if err := e.Update(u.Row, u.Value); err != nil {
				return err
			}
			if _, err := e.FlushUpdates(); err != nil {
				return err
			}
		}
		return nil
	})
	// Adaptive readers: candidate creation and LRU eviction churn the
	// set's membership, so chunk reuse and rebuild keep alternating.
	for r := 0; r < 2; r++ {
		probes := workload.SelectivitySweep(uint64(40+r), 200, ccDomain, ccDomain/3, ccDomain/200)
		spawn(func() error {
			for _, q := range probes {
				if _, err := e.Query(q.Lo, q.Hi); err != nil {
					return err
				}
			}
			return nil
		})
	}
	// Explicit creators: direct inserts race the limit; a full set is an
	// expected outcome, not a failure.
	spawn(func() error {
		for i := 0; i < 60; i++ {
			lo := uint64(i%10) * (ccDomain / 12)
			if _, err := e.CreateView(lo, lo+ccDomain/15); err != nil &&
				!strings.Contains(err.Error(), "view limit") {
				return err
			}
		}
		return nil
	})
	// Snapshot readers: pin epochs mid-storm and hold them across a few
	// queries, so retirement always has a non-trivial drain to wait on.
	spawn(func() error {
		for i := 0; i < 80; i++ {
			snap, err := e.Snapshot()
			if err != nil {
				return err
			}
			first, err := snap.Query(0, ccDomain)
			if err == nil {
				var again QueryResult
				if again, err = snap.Query(0, ccDomain); err == nil &&
					(again.Count != first.Count || again.Sum != first.Sum) {
					err = fmt.Errorf("pinned reads diverged: %d/%d then %d/%d",
						first.Count, first.Sum, again.Count, again.Sum)
				}
			}
			if cerr := snap.Close(); cerr != nil && err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
		}
		return nil
	})

	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// After the storm the engine still answers exactly.
	wantCount, wantSum, err := e.Column().FullScan(0, ccDomain)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Query(0, ccDomain)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != wantCount || got.Sum != wantSum {
		t.Fatalf("post-storm answer %d/%d, want %d/%d", got.Count, got.Sum, wantCount, wantSum)
	}
}

// TestClosePendingRetiredFreed is the satellite-1 regression test: a
// failed publication parks the displaced frames in pendingRetired; Close
// — even with the publication path still failing — must free every one
// of them and drop the capture cache's view retains, leaving physical
// memory exactly where it started.
func TestClosePendingRetiredFreed(t *testing.T) {
	const pages = 64
	col := testColumn(t, pages, dist.NewLinear(5, 0, ccDomain, pages))
	e, err := NewEngine(col, syncConfig())
	if err != nil {
		t.Fatal(err)
	}
	// One view over the whole domain: every update dirties it, so any
	// publication after a write needs a fresh capture — which the hook
	// then fails.
	if _, err := e.CreateView(0, ccDomain); err != nil {
		t.Fatal(err)
	}
	base := col.Kernel().MemStats()

	boom := errors.New("injected capture failure")
	e.set.SetCaptureHook(func(*view.View) ([][]byte, error) { return nil, boom })
	ups := workload.UniformUpdates(9, 40, col.Rows(), 0, ccDomain)
	for _, u := range ups {
		if err := e.Update(u.Row, u.Value); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.FlushUpdates(); !errors.Is(err, boom) {
		t.Fatalf("flush error = %v, want injected capture failure", err)
	}
	e.mu.Lock()
	parked := len(e.pendingRetired)
	e.mu.Unlock()
	if parked == 0 {
		t.Fatal("failed publication parked no displaced frames")
	}
	if ms := col.Kernel().MemStats(); ms.FramesInUse <= base.FramesInUse {
		t.Fatalf("copy-on-write writes did not grow frame usage (%d -> %d)",
			base.FramesInUse, ms.FramesInUse)
	}

	// Close with the publication path still failing: the final-drain
	// sweep must free the parked frames anyway.
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	e.mu.Lock()
	left := len(e.pendingRetired)
	e.mu.Unlock()
	if left != 0 {
		t.Fatalf("%d pending-retired frames survived Close", left)
	}
	if ms := col.Kernel().MemStats(); ms.FramesInUse != base.FramesInUse {
		t.Fatalf("frame leak across Close: %d in use, want %d",
			ms.FramesInUse, base.FramesInUse)
	}
}

// TestRetireErrorsSurfaced is the satellite-2 regression test: a view
// release that fails during state retirement must be counted in Stats
// and reported by Engine.Close instead of vanishing into the reclaim
// walk.
func TestRetireErrorsSurfaced(t *testing.T) {
	const pages = 64
	col := testColumn(t, pages, dist.NewLinear(5, 0, ccDomain, pages))
	e, err := NewEngine(col, syncConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateView(0, ccDomain); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("injected release failure")
	e.set.SetReleaseViewHook(func(v *view.View) error {
		if err := v.Release(); err != nil {
			return err
		}
		return boom
	})

	// Pin the current state, dirty the view and publish a successor: the
	// pinned state's capture is now the last holder of the old SnapView,
	// so closing the pin drains it through the failing release.
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ups := workload.UniformUpdates(9, 20, col.Rows(), 0, ccDomain)
	for _, u := range ups {
		if err := e.Update(u.Row, u.Value); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.FlushUpdates(); err != nil {
		t.Fatal(err)
	}
	if err := snap.Close(); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().RetireErrors; got == 0 {
		t.Fatal("failed retirement release not counted in Stats.RetireErrors")
	}
	if err := e.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close = %v, want the swallowed retirement error", err)
	}
}
