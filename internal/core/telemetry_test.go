package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/asv-db/asv/internal/dist"
	"github.com/asv-db/asv/internal/obs"
	"github.com/asv-db/asv/internal/view"
	"github.com/asv-db/asv/internal/vmsim"
	"github.com/asv-db/asv/internal/workload"
)

// TestPublishNanosCountsOnlySuccesses is the satellite regression test
// for the Stats split: PublishNanos is successful-publication wall time
// only, while PublishAttemptNanos accumulates on the error path too. A
// capture failure therefore grows attempts and errors but leaves the
// success clock untouched.
func TestPublishNanosCountsOnlySuccesses(t *testing.T) {
	const pages = 64
	col := testColumn(t, pages, dist.NewLinear(5, 0, ccDomain, pages))
	e := newEngine(t, col, syncConfig())
	if _, err := e.CreateView(0, ccDomain); err != nil {
		t.Fatal(err)
	}
	before := e.Stats()

	boom := errors.New("injected capture failure")
	e.set.SetCaptureHook(func(*view.View) ([][]byte, error) { return nil, boom })
	for _, u := range workload.UniformUpdates(9, 40, col.Rows(), 0, ccDomain) {
		if err := e.Update(u.Row, u.Value); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.FlushUpdates(); !errors.Is(err, boom) {
		t.Fatalf("flush error = %v, want injected capture failure", err)
	}

	mid := e.Stats()
	if mid.PublishErrors == before.PublishErrors {
		t.Fatal("capture hook failure produced no publish error")
	}
	if mid.PublishNanos != before.PublishNanos {
		t.Fatalf("PublishNanos grew by %d on a failed publication",
			mid.PublishNanos-before.PublishNanos)
	}
	if mid.PublishAttemptNanos <= before.PublishAttemptNanos {
		t.Fatal("PublishAttemptNanos did not grow on a failed publication")
	}

	// Clearing the hook lets a fresh batch publish: now both clocks
	// advance, and attempts stay >= successes.
	e.set.SetCaptureHook(nil)
	for _, u := range workload.UniformUpdates(10, 40, col.Rows(), 0, ccDomain) {
		if err := e.Update(u.Row, u.Value); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.FlushUpdates(); err != nil {
		t.Fatal(err)
	}
	after := e.Stats()
	if after.PublishNanos <= mid.PublishNanos {
		t.Fatal("PublishNanos did not grow on a successful publication")
	}
	if after.PublishAttemptNanos < after.PublishNanos {
		t.Fatalf("PublishAttemptNanos %d < PublishNanos %d",
			after.PublishAttemptNanos, after.PublishNanos)
	}
}

// sumChildren returns the summed durations of a span's direct children.
func sumChildren(sp *obs.Span) time.Duration {
	var sum time.Duration
	for _, c := range sp.Children {
		sum += time.Duration(c.End - c.Start)
	}
	return sum
}

// findSpan returns the first span named name in the tree rooted at sp.
func findSpan(sp *obs.Span, name string) *obs.Span {
	if sp == nil {
		return nil
	}
	if sp.Name == name {
		return sp
	}
	for _, c := range sp.Children {
		if found := findSpan(c, name); found != nil {
			return found
		}
	}
	return nil
}

// attrVal returns the named attribute's value (ok false when absent).
func attrVal(sp *obs.Span, key string) (int64, bool) {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return 0, false
}

// TestTraceSpanAttributionTieredLazy is the acceptance-criteria trace
// test: on a tiered column with lazy view materialization, a traced
// query's root span must attribute its wall time — the summed direct
// children (pin, route, scan, materialize, merge) cover at least 95% of
// the root's duration, and the scan span carries the tier attribution.
// The demoted column makes the scan dominate (every cold touch pays the
// simulated stall), so the ratio is robust; scheduling noise still gets
// a few attempts before the test judges the best one.
func TestTraceSpanAttributionTieredLazy(t *testing.T) {
	const pages = 256
	col := testColumn(t, pages, dist.NewSine(3, 0, ccDomain, 16))
	cfg := DefaultConfig()
	cfg.Create = view.CreateOptions{Lazy: true}
	cfg.Tiering = &vmsim.TierConfig{HotFrames: pages / 4}
	e := newEngine(t, col, cfg)

	var bestRatio float64
	var bestTrace *obs.Trace
	for attempt := 0; attempt < 5; attempt++ {
		// Fully re-demote so every attempt's scan pays cold stalls.
		tier := e.Tier()
		for p := 0; p < pages; p++ {
			tier.Demote(p)
		}
		tr := obs.NewTrace("query")
		ans, err := e.QueryOpt(ccDomain/8, ccDomain/2, QueryOptions{Trace: tr})
		if err != nil {
			t.Fatal(err)
		}
		if ans.Trace != tr {
			t.Fatal("answer does not echo the trace")
		}
		root := tr.Root
		if root.End == 0 {
			t.Fatal("root span unfinished")
		}
		scan := findSpan(root, "scan")
		if scan == nil {
			t.Fatalf("no scan span in trace:\n%s", tr)
		}
		if v, ok := attrVal(scan, "pages_scanned"); !ok || v <= 0 {
			t.Fatalf("scan span pages_scanned = %d (ok=%v)", v, ok)
		}
		if v, ok := attrVal(scan, "cold_touches"); !ok || v <= 0 {
			t.Fatalf("scan span cold_touches = %d (ok=%v) on a fully demoted column", v, ok)
		}
		ratio := float64(sumChildren(root)) / float64(root.End-root.Start)
		if ratio > bestRatio {
			bestRatio, bestTrace = ratio, tr
		}
		if bestRatio >= 0.95 {
			break
		}
	}
	if bestRatio < 0.95 {
		t.Fatalf("children cover %.1f%% of the root span, want >= 95%%:\n%s",
			bestRatio*100, bestTrace)
	}
}

// checkSpanTree verifies a finished trace is well-formed: every span
// ended at or after it started, and every child lies inside its parent —
// except synthetic counter-derived spans ("stall"), whose end can exceed
// the parent's under concurrency (counter deltas bleed across queries;
// finishScanSpan documents this).
func checkSpanTree(t *testing.T, sp *obs.Span) {
	t.Helper()
	if sp.End < sp.Start {
		t.Fatalf("span %q ends %d before it starts %d", sp.Name, sp.End, sp.Start)
	}
	for _, c := range sp.Children {
		if c.Start < sp.Start {
			t.Fatalf("child %q starts %d before parent %q at %d", c.Name, c.Start, sp.Name, sp.Start)
		}
		if c.Name != "stall" {
			if c.End == 0 {
				t.Fatalf("child %q of %q unfinished", c.Name, sp.Name)
			}
			if c.End > sp.End {
				t.Fatalf("child %q ends %d after parent %q at %d", c.Name, c.End, sp.Name, sp.End)
			}
		}
		checkSpanTree(t, c)
	}
}

// TestTracedQueryJournalStress races traced queries against autopilot
// writes and tier demotion churn and then audits the telemetry: no
// torn span trees (tracing is per-query, owned by the coordinating
// goroutine) and strictly monotone journal sequence numbers (the
// seqlock ring never yields torn or reordered events). Run under -race
// this doubles as the data-race gate for the whole obs seam.
func TestTracedQueryJournalStress(t *testing.T) {
	const (
		pages   = 128
		readers = 4
		queries = 40
	)
	col := testColumn(t, pages, dist.NewSine(7, 0, ccDomain, 16))
	cfg := DefaultConfig()
	cfg.JournalEvents = 1024
	cfg.Tiering = &vmsim.TierConfig{HotFrames: pages / 2, NoStall: true}
	ap := quietAutopilot()
	ap.CoalesceCount = 64
	ap.MaxFlushLatency = time.Millisecond
	cfg.Autopilot = ap
	e := newEngine(t, col, cfg)

	var (
		wg, churnWg sync.WaitGroup
		mu          sync.Mutex
		traces      []*obs.Trace
		errs        []error
		fail        = func(err error) {
			mu.Lock()
			errs = append(errs, err)
			mu.Unlock()
		}
		stop = make(chan struct{})
	)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			qs := workload.SelectivitySweep(seed, queries, ccDomain, ccDomain/2, 500)
			local := make([]*obs.Trace, 0, len(qs))
			for _, q := range qs {
				tr := obs.NewTrace("query")
				if _, err := e.QueryOpt(q.Lo, q.Hi, QueryOptions{Trace: tr}); err != nil {
					fail(err)
					return
				}
				local = append(local, tr)
			}
			mu.Lock()
			traces = append(traces, local...)
			mu.Unlock()
		}(uint64(100 + r))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, u := range workload.UniformUpdates(11, 2000, col.Rows(), 0, ccDomain) {
			if err := e.Update(u.Row, u.Value); err != nil {
				fail(err)
				return
			}
		}
	}()
	churnWg.Add(1)
	go func() {
		defer churnWg.Done()
		tier := e.Tier()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for p := 0; p < pages; p += 3 {
				tier.Demote(p)
			}
		}
	}()
	// Readers and the writer drain their deterministic streams; the
	// churn goroutine demotes until they are done.
	wg.Wait()
	close(stop)
	churnWg.Wait()

	if _, err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	if len(errs) > 0 {
		t.Fatal(errs[0])
	}
	if len(traces) != readers*queries {
		t.Fatalf("collected %d traces, want %d", len(traces), readers*queries)
	}
	for _, tr := range traces {
		if tr.Root.End == 0 {
			t.Fatal("unfinished trace escaped the query")
		}
		checkSpanTree(t, tr.Root)
	}

	evs := e.Journal().Events()
	if len(evs) == 0 {
		t.Fatal("journal recorded no events under autopilot + tier churn")
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("journal seq not strictly monotone: #%d after #%d", evs[i].Seq, evs[i-1].Seq)
		}
	}
}

// TestQueryOptTelemetryOffNoExtraAllocs pins the zero-cost contract: an
// untraced query allocates exactly the same with the journal enabled as
// with all telemetry options off — every obs site on the off-path is a
// nil test or an always-on atomic, never an allocation.
func TestQueryOptTelemetryOffNoExtraAllocs(t *testing.T) {
	measure := func(cfg Config) float64 {
		col := testColumn(t, 64, dist.NewSine(3, 0, ccDomain, 8))
		e := newEngine(t, col, cfg)
		// Warm once so lazy one-time setup is outside the measurement.
		if _, err := e.QueryOpt(100, ccDomain/2, QueryOptions{}); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(200, func() {
			if _, err := e.QueryOpt(100, ccDomain/2, QueryOptions{}); err != nil {
				t.Fatal(err)
			}
		})
	}
	off := measure(BaselineConfig())
	on := func() Config {
		cfg := BaselineConfig()
		cfg.JournalEvents = 256
		return cfg
	}()
	if got := measure(on); got != off {
		t.Fatalf("journal-enabled untraced query allocates %.1f/run, telemetry-off %.1f/run", got, off)
	}
}
