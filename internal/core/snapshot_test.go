package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/asv-db/asv/internal/autopilot"
	"github.com/asv-db/asv/internal/dist"
	"github.com/asv-db/asv/internal/viewset"
	"github.com/asv-db/asv/internal/workload"
	"github.com/asv-db/asv/internal/xrand"
)

// TestSnapshotEquivalence is the epoch-path equivalence table: for every
// registered generator, a full adaptive query sequence must be
// byte-identical across (a) the Query wrapper on the lock-free epoch
// path, (b) QueryOpt with no options, and (c) Query on the legacy
// room-lock path (Config.RoomLockReads) — answers, telemetry, and the
// adapted view sets. A fourth engine answers every query from a freshly
// pinned snapshot, which must agree on Count and Sum (snapshots do not
// adapt, so scan telemetry legitimately differs).
func TestSnapshotEquivalence(t *testing.T) {
	const pages = 96
	queries := workload.SelectivitySweep(13, 30, ccDomain, ccDomain/2, ccDomain/100)
	for _, name := range dist.Names() {
		t.Run(name, func(t *testing.T) {
			g, err := dist.ByName(name, 5, 0, ccDomain, pages)
			if err != nil {
				t.Fatal(err)
			}
			mk := func(roomLock bool) *Engine {
				cfg := syncConfig()
				cfg.RoomLockReads = roomLock
				return newEngine(t, testColumn(t, pages, g), cfg)
			}
			epoch := mk(false)
			opts := mk(false)
			room := mk(true)
			pinned := mk(false)
			for i, q := range queries {
				re, err := epoch.Query(q.Lo, q.Hi)
				if err != nil {
					t.Fatal(err)
				}
				ao, err := opts.QueryOpt(q.Lo, q.Hi, QueryOptions{})
				if err != nil {
					t.Fatal(err)
				}
				rr, err := room.Query(q.Lo, q.Hi)
				if err != nil {
					t.Fatal(err)
				}
				if re != ao.QueryResult {
					t.Fatalf("query %d [%d,%d]: Query %+v != QueryOpt %+v", i, q.Lo, q.Hi, re, ao.QueryResult)
				}
				if re != rr {
					t.Fatalf("query %d [%d,%d]: epoch %+v != room-lock %+v", i, q.Lo, q.Hi, re, rr)
				}
				snap, err := pinned.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				rs, err := snap.Query(q.Lo, q.Hi)
				if cerr := snap.Close(); cerr != nil {
					t.Fatal(cerr)
				}
				if err != nil {
					t.Fatal(err)
				}
				if rs.Count != re.Count || rs.Sum != re.Sum {
					t.Fatalf("query %d [%d,%d]: snapshot count/sum %d/%d != %d/%d",
						i, q.Lo, q.Hi, rs.Count, rs.Sum, re.Count, re.Sum)
				}
			}
			ve, vo, vr := epoch.Views(), opts.Views(), room.Views()
			if len(ve) != len(vo) || len(ve) != len(vr) {
				t.Fatalf("view sets diverged: %d / %d / %d", len(ve), len(vo), len(vr))
			}
			for i := range ve {
				for _, other := range [][]int{{vo[i].NumPages()}, {vr[i].NumPages()}} {
					if ve[i].NumPages() != other[0] {
						t.Fatalf("view %d page counts diverged", i)
					}
				}
				if ve[i].Lo() != vo[i].Lo() || ve[i].Hi() != vo[i].Hi() ||
					ve[i].Lo() != vr[i].Lo() || ve[i].Hi() != vr[i].Hi() {
					t.Fatalf("view %d ranges diverged", i)
				}
			}
		})
	}
}

// TestQuartetWrapperEquivalence pins the satellite contract that the
// historical quartet stays a zero-behavior-change wrapper over QueryOpt:
// identical answers AND identical cumulative telemetry after the run.
func TestQuartetWrapperEquivalence(t *testing.T) {
	const pages = 64
	queries := workload.SelectivitySweep(17, 20, ccDomain, ccDomain/3, ccDomain/100)
	g := dist.NewSine(9, 0, ccDomain, 8)

	wrap := newEngine(t, testColumn(t, pages, g), syncConfig())
	opt := newEngine(t, testColumn(t, pages, g), syncConfig())

	for i, q := range queries {
		switch i % 4 {
		case 0:
			rw, err := wrap.Query(q.Lo, q.Hi)
			if err != nil {
				t.Fatal(err)
			}
			ao, err := opt.QueryOpt(q.Lo, q.Hi, QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if rw != ao.QueryResult {
				t.Fatalf("Query %d: %+v != %+v", i, rw, ao.QueryResult)
			}
		case 1:
			rw, err := wrap.QueryParallel(q.Lo, q.Hi, 3)
			if err != nil {
				t.Fatal(err)
			}
			ao, err := opt.QueryOpt(q.Lo, q.Hi, QueryOptions{Workers: 3, HasWorkers: true})
			if err != nil {
				t.Fatal(err)
			}
			if rw != ao.QueryResult {
				t.Fatalf("QueryParallel %d: %+v != %+v", i, rw, ao.QueryResult)
			}
		case 2:
			rows, rw, err := wrap.QueryRows(q.Lo, q.Hi)
			if err != nil {
				t.Fatal(err)
			}
			ao, err := opt.QueryOpt(q.Lo, q.Hi, QueryOptions{CollectRows: true})
			if err != nil {
				t.Fatal(err)
			}
			if rw != ao.QueryResult || rows.Len() != ao.Rows.Len() {
				t.Fatalf("QueryRows %d diverged", i)
			}
			for _, r := range rows.Rows() {
				if !ao.Rows.Contains(r) {
					t.Fatalf("QueryRows %d: row %d missing from options result", i, r)
				}
			}
		case 3:
			agg, rw, err := wrap.QueryAggregate(q.Lo, q.Hi)
			if err != nil {
				t.Fatal(err)
			}
			ao, err := opt.QueryOpt(q.Lo, q.Hi, QueryOptions{ComputeAggregate: true})
			if err != nil {
				t.Fatal(err)
			}
			if rw != ao.QueryResult || agg != *ao.Agg {
				t.Fatalf("QueryAggregate %d: %+v/%+v != %+v/%+v", i, rw, agg, ao.QueryResult, *ao.Agg)
			}
		}
	}
	sw, so := wrap.Stats(), opt.Stats()
	// Publication wall time is the one nondeterministic counter.
	sw.PublishNanos, so.PublishNanos = 0, 0
	sw.PublishAttemptNanos, so.PublishAttemptNanos = 0, 0
	if sw != so {
		t.Fatalf("telemetry diverged:\nwrappers %+v\noptions  %+v", sw, so)
	}
}

// TestEpochReadsBypassScanRoom is the pinned acceptance test for the
// redesign: routed reads no longer acquire the scan room, so a reader
// completes while a goroutine holds the exclusive room (as alignment,
// rebuilds and lifecycle work do) — and the same read on the legacy
// room-lock path demonstrably stalls until the room is released.
func TestEpochReadsBypassScanRoom(t *testing.T) {
	const pages = 64
	g := dist.NewSine(21, 0, ccDomain, 8)

	// Freeze the view set first so the probe query publishes nothing
	// (publication legitimately serializes behind the exclusive room;
	// the answer path must not).
	frozenCfg := syncConfig()
	frozenCfg.MaxViews = 1
	eng := newEngine(t, testColumn(t, pages, g), frozenCfg)
	if _, err := eng.Query(0, ccDomain/10); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query(ccDomain/2, ccDomain/2+ccDomain/10); err != nil {
		t.Fatal(err)
	}
	if !eng.ViewSet().Frozen() {
		t.Fatal("setup: view set not frozen")
	}
	snap, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()

	baseline := newEngine(t, testColumn(t, pages, g), BaselineConfig())

	roomCfg := frozenCfg
	roomCfg.RoomLockReads = true
	room := newEngine(t, testColumn(t, pages, g), roomCfg)
	if _, err := room.Query(0, ccDomain/10); err != nil {
		t.Fatal(err)
	}
	if _, err := room.Query(ccDomain/2, ccDomain/2+ccDomain/10); err != nil {
		t.Fatal(err)
	}

	// Occupy each engine's exclusive room, as a mid-alignment flush does.
	eng.mu.Lock()
	baseline.mu.Lock()
	room.mu.Lock()

	probe := func(name string, run func() error) {
		t.Helper()
		done := make(chan error, 1)
		go func() { done <- run() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s: reader stalled behind the exclusive room", name)
		}
	}
	probe("epoch query", func() error {
		_, err := eng.Query(100, ccDomain/20)
		return err
	})
	probe("snapshot query", func() error {
		_, err := snap.Query(100, ccDomain/20)
		return err
	})
	probe("baseline query", func() error {
		_, err := baseline.Query(100, ccDomain/20)
		return err
	})

	// The legacy path must block on the occupied room — that contrast is
	// exactly what the `snapshot` bench panel measures.
	blocked := make(chan QueryResult, 1)
	go func() {
		r, _ := room.Query(100, ccDomain/20)
		blocked <- r
	}()
	select {
	case <-blocked:
		t.Fatal("room-lock read completed while the exclusive room was held")
	case <-time.After(100 * time.Millisecond):
	}
	room.mu.Unlock()
	select {
	case <-blocked:
	case <-time.After(5 * time.Second):
		t.Fatal("room-lock read never completed after release")
	}

	eng.mu.Unlock()
	baseline.mu.Unlock()
}

// TestSnapshotRepeatableReads pins the snapshot contract: a pinned
// epoch returns identical answers before and after a writer updates and
// flushes, while live queries observe the new values.
func TestSnapshotRepeatableReads(t *testing.T) {
	const pages = 64
	eng := newEngine(t, testColumn(t, pages, dist.NewUniform(31, 0, ccDomain)), syncConfig())
	lo, hi := uint64(0), uint64(ccDomain/4)

	before, err := eng.Query(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	first, err := snap.Query(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if first.Count != before.Count || first.Sum != before.Sum {
		t.Fatalf("snapshot disagrees with pre-pin query: %+v vs %+v", first, before)
	}

	// Move every row in [lo, hi] out of the range, flushing mid-stream so
	// alignment storms the exclusive room while the snapshot stays pinned.
	rng := xrand.New(7)
	for i := 0; i < eng.Column().Rows(); i++ {
		v, err := eng.Column().Value(i)
		if err != nil {
			t.Fatal(err)
		}
		if v >= lo && v <= hi {
			if err := eng.Update(i, hi+1+rng.Uint64n(1000)); err != nil {
				t.Fatal(err)
			}
		}
		if i%997 == 0 {
			if _, err := eng.FlushUpdates(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := eng.FlushUpdates(); err != nil {
		t.Fatal(err)
	}

	live, err := eng.Query(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if live.Count != 0 {
		t.Fatalf("live query still sees %d rows in the drained range", live.Count)
	}
	again, err := snap.Query(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if again.Count != first.Count || again.Sum != first.Sum {
		t.Fatalf("pinned read not repeatable: %+v then %+v", first, again)
	}
	if err := snap.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestEpochRetirementReleasesEvictedViews checks the retire path: a view
// evicted from the live set stays mapped — and routable — for a pinned
// snapshot, and its mmap is released only when the pinning epoch drains,
// with the vmsim mapping count returning to the expected level.
func TestEpochRetirementReleasesEvictedViews(t *testing.T) {
	const pages = 64
	cfg := syncConfig()
	cfg.MaxViews = 1
	cfg.Limit = viewset.EvictLRU
	// Eager creation: the test observes the evicted view's file mappings
	// disappearing on drain, so its pages must be mapped up front (a lazy
	// view that is never touched maps nothing and unmapping is a no-op).
	cfg.LazyViews = false
	col := testColumn(t, pages, dist.NewSine(41, 0, ccDomain, 8))
	eng := newEngine(t, col, cfg)

	r1, err := eng.Query(0, ccDomain/8)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Decision != viewset.Inserted {
		t.Fatalf("setup: first query %v, want inserted", r1.Decision)
	}
	v1 := eng.Views()[0]
	v1Pages := v1.NumPages()
	want1, err := eng.Query(0, ccDomain/8)
	if err != nil {
		t.Fatal(err)
	}

	snap, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// A disjoint query evicts v1 (LRU, limit 1).
	r2, err := eng.Query(ccDomain/2, ccDomain/2+ccDomain/8)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Decision != viewset.Evicted {
		t.Fatalf("second query %v, want evicted", r2.Decision)
	}
	if eng.set.Contains(v1) {
		t.Fatal("v1 still a set member")
	}

	mappedPinned := col.File().MappedPages()
	// The pinned epoch still routes to — and scans — the evicted view.
	got, err := snap.Query(0, ccDomain/8)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != want1.Count || got.Sum != want1.Sum || got.PagesScanned != want1.PagesScanned {
		t.Fatalf("pinned scan of evicted view diverged: %+v vs %+v", got, want1)
	}
	if got.UsedFullView {
		t.Fatal("pinned query fell back to the full view")
	}

	if err := snap.Close(); err != nil {
		t.Fatal(err)
	}
	mappedAfter := col.File().MappedPages()
	if mappedAfter != mappedPinned-v1Pages {
		t.Fatalf("evicted view not unmapped on drain: %d -> %d (view had %d pages)",
			mappedPinned, mappedAfter, v1Pages)
	}
}

// TestSnapshotAfterCloseRefused pins the close-path hazard: a snapshot
// taken after Close would outlive the drain barrier and read column
// frames the owner is free to release, so the pin must be refused.
func TestSnapshotAfterCloseRefused(t *testing.T) {
	eng := newEngine(t, testColumn(t, 16, dist.NewUniform(61, 0, 1000)), syncConfig())
	snap, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Snapshot(); err == nil {
		t.Fatal("snapshot on closed engine succeeded")
	}
}

// TestCloseWaitsForFinalStatePins pins the drain barrier's coverage of
// the CURRENT state: a reader pinned to the state Close publishes (or
// the one preceding it) must hold Close open until it releases — the
// facade frees the column's frames right after Engine.Close returns.
func TestCloseWaitsForFinalStatePins(t *testing.T) {
	eng := newEngine(t, testColumn(t, 16, dist.NewUniform(71, 0, 1000)), syncConfig())
	st := eng.acquireState()

	closed := make(chan error, 1)
	go func() { closed <- eng.Close() }()
	select {
	case <-closed:
		t.Fatal("Close returned while a reader pin was outstanding")
	case <-time.After(100 * time.Millisecond):
	}
	eng.releaseState(st)
	select {
	case err := <-closed:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close never returned after the pin was released")
	}
}

// TestSnapshotRacesAutopilotLifecycle is the -race stress of the
// satellite checklist: snapshot readers race fire-and-forget writers and
// an aggressive autopilot lifecycle (eviction + rebuild + warming), and
// afterwards every retired view mmap and shadow frame must drain —
// mapping and frame counts return exactly to the column baseline.
func TestSnapshotRacesAutopilotLifecycle(t *testing.T) {
	const pages = 96
	col := testColumn(t, pages, dist.NewSine(51, 0, ccDomain, 8))
	kernel := col.Kernel()
	baseFrames := kernel.FramesInUse()

	cfg := syncConfig()
	cfg.Limit = viewset.EvictLRU
	cfg.MaxViews = 6
	cfg.Parallelism = 2
	cfg.Autopilot = &autopilot.Config{
		CoalesceCount:    32,
		MaxFlushLatency:  500 * time.Microsecond,
		MaintainInterval: time.Millisecond,
		ColdTicks:        64,
		RebuildFrag:      0.05,
		MinRebuildPages:  1,
		WarmHottest:      2,
	}
	eng, err := NewEngine(col, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 16)

	// Snapshot readers: pin, query a few times, re-pin.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := xrand.New(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap, err := eng.Snapshot()
				if err != nil {
					errs <- err
					return
				}
				for i := 0; i < 8; i++ {
					lo := rng.Uint64n(ccDomain)
					hi := lo + ccDomain/50
					if _, err := snap.Query(lo, hi); err != nil {
						errs <- fmt.Errorf("snapshot query: %w", err)
						_ = snap.Close()
						return
					}
				}
				if err := snap.Close(); err != nil {
					errs <- err
					return
				}
			}
		}(100 + uint64(r))
	}
	// Live epoch readers keep the temperature clock moving.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := xrand.New(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				lo := rng.Uint64n(ccDomain)
				if _, err := eng.Query(lo, lo+ccDomain/40); err != nil {
					errs <- fmt.Errorf("live query: %w", err)
					return
				}
			}
		}(200 + uint64(r))
	}
	// Fire-and-forget writers force coalesced flush + alignment storms.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := xrand.New(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := eng.Update(int(rng.Uint64n(uint64(col.Rows()))), rng.Uint64n(ccDomain)); err != nil {
					errs <- fmt.Errorf("update: %w", err)
					return
				}
			}
		}(300 + uint64(w))
	}

	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	// Every partial view released: only the full view's pages remain
	// mapped, and every copy-on-write shadow frame was returned.
	if got := col.File().MappedPages(); got != pages {
		t.Fatalf("mappings did not drain: %d, want %d (full view only)", got, pages)
	}
	if got := kernel.FramesInUse(); got != baseFrames {
		t.Fatalf("frames did not drain: %d, want %d", got, baseFrames)
	}
}
