package core

import (
	"fmt"

	"github.com/asv-db/asv/internal/bitvec"
	"github.com/asv-db/asv/internal/storage"
	"github.com/asv-db/asv/internal/view"
	"github.com/asv-db/asv/internal/viewset"
)

// Engine is the adaptive storage layer of one column: it owns the view
// set, answers range queries with automatic routing, grows the view set as
// a side product of query processing, and realigns views after update
// batches.
//
// An Engine is not safe for concurrent use: the paper's system processes
// one query at a time; only the view-creation mmap work is offloaded to
// the background mapping thread.
type Engine struct {
	col    *storage.Column
	cfg    Config
	set    *viewset.Set
	mapper *view.Mapper

	processed *bitvec.Vector // reused across multi-view queries

	pending []Update // buffered updates awaiting FlushUpdates

	stats Stats
}

// Stats accumulates engine activity since creation (or ResetStats).
type Stats struct {
	Queries         uint64 // total queries answered
	FullViewQueries uint64 // queries whose routing included the full view
	PagesScanned    uint64 // physical pages read by queries
	ViewsCreated    uint64 // candidates inserted as new views
	ViewsReplaced   uint64 // candidates that replaced an existing view
	ViewsDiscarded  uint64 // candidates discarded by the retention rules
	ViewsEvicted    uint64 // LRU evictions under the EvictLRU limit policy
	UpdatesBuffered uint64 // updates accepted via Update
	UpdateBatches   uint64 // FlushUpdates / AlignViews invocations
	PagesAdded      uint64 // view pages added by update alignment
	PagesRemoved    uint64 // view pages removed by update alignment
}

// NewEngine wraps a filled column in an adaptive storage layer.
func NewEngine(col *storage.Column, cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	set := viewset.New(view.NewFull(col), cfg.MaxViews, cfg.DiscardTolerance, cfg.ReplaceTolerance)
	set.SetLimitPolicy(cfg.Limit)
	e := &Engine{
		col:       col,
		cfg:       cfg,
		set:       set,
		processed: bitvec.New(col.NumPages()),
	}
	if cfg.Adaptive && cfg.Create.Concurrent {
		e.mapper = view.NewMapper(cfg.MapperQueueCap)
	}
	return e, nil
}

// Column returns the underlying physical column.
func (e *Engine) Column() *storage.Column { return e.col }

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// ViewSet returns the engine's view index.
func (e *Engine) ViewSet() *viewset.Set { return e.set }

// Views returns the current partial views.
func (e *Engine) Views() []*view.View { return e.set.Partials() }

// Stats returns a snapshot of the cumulative counters.
func (e *Engine) Stats() Stats { return e.stats }

// ResetStats zeroes the cumulative counters.
func (e *Engine) ResetStats() { e.stats = Stats{} }

// CreateView builds a partial view over [lo, hi] directly from the full
// view and inserts it, bypassing the adaptive retention rules. The §3.1
// micro-benchmark and the §3.4 update experiments set up their views this
// way.
func (e *Engine) CreateView(lo, hi uint64) (*view.View, error) {
	v, err := view.Create(e.col, lo, hi, e.cfg.Create, e.mapper)
	if err != nil {
		return nil, err
	}
	if err := e.set.Insert(v); err != nil {
		_ = v.Release()
		return nil, err
	}
	return v, nil
}

// RebuildViews drops every partial view and recreates each one from
// scratch over its covered range — the "New" (rebuild) alternative that
// Figure 7 compares against incremental alignment. Pending updates are
// dropped rather than flushed: the rebuild scans the column's current
// contents, which already include every applied write.
func (e *Engine) RebuildViews() error {
	e.pending = nil
	old := e.set.Clear()
	type rng struct{ lo, hi uint64 }
	ranges := make([]rng, 0, len(old))
	for _, v := range old {
		ranges = append(ranges, rng{v.Lo(), v.Hi()})
		if err := v.Release(); err != nil {
			return err
		}
	}
	for _, r := range ranges {
		v, err := view.Create(e.col, r.lo, r.hi, e.cfg.Create, e.mapper)
		if err != nil {
			return err
		}
		// Rebuilt views keep their original declared range: Create may
		// extend, but the view's contract is its pre-update range.
		v.SetRange(r.lo, r.hi)
		if err := e.set.Insert(v); err != nil {
			_ = v.Release()
			return err
		}
	}
	return nil
}

// Close releases all partial views and stops the mapping thread. The
// column itself stays usable (and must be closed by its owner).
func (e *Engine) Close() error {
	var firstErr error
	for _, v := range e.set.Clear() {
		if err := v.Release(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if e.mapper != nil {
		e.mapper.Stop()
		e.mapper = nil
	}
	return firstErr
}

// resetProcessed clears (or right-sizes) the processed-pages bitvector.
func (e *Engine) resetProcessed() *bitvec.Vector {
	if e.processed.Len() != e.col.NumPages() {
		e.processed = bitvec.New(e.col.NumPages())
	} else {
		e.processed.Reset()
	}
	return e.processed
}

// String summarizes the engine state.
func (e *Engine) String() string {
	return fmt.Sprintf("Engine(%s, %d partial views, frozen=%v)",
		e.cfg.Mode, e.set.Len(), e.set.Frozen())
}
