package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/asv-db/asv/internal/autopilot"
	"github.com/asv-db/asv/internal/bitvec"
	"github.com/asv-db/asv/internal/obs"
	"github.com/asv-db/asv/internal/storage"
	"github.com/asv-db/asv/internal/view"
	"github.com/asv-db/asv/internal/viewset"
	"github.com/asv-db/asv/internal/vmsim"
)

// Engine is the adaptive storage layer of one column: it owns the view
// set, answers range queries with automatic routing, grows the view set as
// a side product of query processing, and realigns views after update
// batches.
//
// An Engine is safe for concurrent use. Routed read-only queries are
// epoch-based and lock-free: the routed-read state — the copy-on-write
// view-set capture, the candidate-invalidation generation, and the
// resolved soft-TLBs — lives in an immutable engineState published via
// an atomic pointer (see state.go). Queries load the pointer, pin the
// state with one atomic increment, and route and scan entirely against
// the capture; they never enter the room lock. Writers use the
// remaining two room modes (see roomLock): concurrent Update callers
// share the update room, appending to per-shard pending buffers (the
// per-shard lock serializes writes to the same physical page, and the
// column's copy-on-write shadows first-writes per epoch so pinned
// readers keep frozen pages), and every operation that mutates view
// state (FlushUpdates/AlignViews, CreateView, RebuildViews, Close, the
// autopilot's lifecycle duties) takes the exclusive room, builds a
// successor state, and swaps it in. A query that grows the view set
// builds its candidate entirely from private state during the pinned
// scan and only takes the exclusive room for the retention decision
// that publishes it. The VM simulator below has its own locks, so
// background mapping keeps overlapping with scanning exactly as in
// §2.3.
type Engine struct {
	col    *storage.Column
	cfg    Config
	set    *viewset.Set
	mapper *view.Mapper

	// mu serializes view-set mutation and page rewiring (exclusive room)
	// against the update room and — for engines configured with
	// Config.RoomLockReads — against the legacy scan room. Epoch-routed
	// queries never take it: they read published immutable states, and
	// the copy-on-write write path keeps writers off every page a pinned
	// capture can reach (§2.4 consistency comes from flush-then-publish
	// instead of reader/writer exclusion).
	mu roomLock

	// state is the current published routed-read state; stateMu/stateCond
	// guard the retirement walk from oldest to newest (see state.go).
	// pendingRetired parks displaced frames across a failed publication;
	// retireErr records the first error surfaced while retiring states
	// (returned by Close).
	state          atomic.Pointer[engineState]
	stateMu        sync.Mutex
	stateCond      *sync.Cond
	oldest         *engineState
	pendingRetired []vmsim.FrameID
	retireErr      error
	// closing arms the drain barrier's wakeup in releaseState; set by
	// Close before it waits, so the hot read path pays one atomic load.
	closing atomic.Bool
	// shards are the pending update buffers, hashed by physical page
	// (Row / ValuesPerPage % len(shards)). Writers append under the
	// update room plus the per-shard lock; the exclusive room drains
	// them (takePendingLocked) into one deterministic batch.
	shards       []updateShard
	pendingCount atomic.Int64 // total buffered updates across all shards

	// releaseHook/createHook intercept view release/creation during
	// RebuildViews; tests inject faults through them. Nil selects the
	// real operations.
	releaseHook func(*view.View) error
	createHook  func(lo, hi uint64) (*view.View, error)

	// gen counts the mutations that invalidate an in-flight candidate
	// view: update alignment, view rebuild, and engine close (guarded by
	// mu). A query captures gen during its read-locked scan; if the value
	// changed by the time it reacquires the write lock to publish its
	// candidate, the candidate's page set was built from pre-mutation
	// state (alignment only walks set members, so a late-published view
	// would never be realigned) and is discarded instead of published.
	gen uint64
	// closed is set by Close (guarded by mu); a late publisher must not
	// insert its candidate into the cleared set, which would leak the
	// candidate's mapping past Close.
	closed bool

	// procPool recycles processed-page bitvectors for multi-view dedup;
	// each query takes a private one, so concurrent scans never share.
	procPool sync.Pool

	// pilot is the background maintenance subsystem (Config.Autopilot);
	// nil when disabled. model is its adaptive-parallelism cost model,
	// consulted on the scan and alignment paths (nil means static
	// fan-out). Both are set once in NewEngine and never mutated, so
	// nil-checks need no lock.
	pilot *autopilot.Pilot
	model *autopilot.CostModel

	// tier is the column's second-tier frame map (Config.Tiering); nil
	// keeps the single-tier scan path with zero overhead. Set once in
	// NewEngine, so nil-checks need no lock. See tier.go.
	tier *vmsim.FileTier

	// ins holds the engine's obs instrument handles (always non-nil,
	// set once in NewEngine — recording is a few atomic adds). journal
	// is the typed engine-event ring (Config.JournalEvents); nil keeps
	// every event site a single pointer test, like tier. See
	// telemetry.go.
	ins     *engineInstruments
	journal *obs.Journal
	// lastPromotions remembers the tier promotion counter at the last
	// journal observation, so promote-on-access activity journals as
	// batches rather than per page.
	lastPromotions atomic.Uint64

	stats engineStats
}

// Stats accumulates engine activity since creation (or ResetStats).
type Stats struct {
	Queries         uint64 // total queries answered
	FullViewQueries uint64 // queries whose routing included the full view
	PagesScanned    uint64 // physical pages read by queries
	ViewsCreated    uint64 // candidates inserted as new views
	ViewsReplaced   uint64 // candidates that replaced an existing view
	ViewsDiscarded  uint64 // candidates discarded (retention rules or stale publication)
	ViewsEvicted    uint64 // LRU evictions under the EvictLRU limit policy
	UpdatesBuffered uint64 // updates accepted via Update
	UpdateBatches   uint64 // FlushUpdates / AlignViews invocations
	PagesAdded      uint64 // view pages added by update alignment
	PagesRemoved    uint64 // view pages removed by update alignment
	ViewsExpired    uint64 // cold views evicted by the autopilot lifecycle
	ViewsRebuilt    uint64 // fragmented views rebuilt by the autopilot lifecycle
	StatePublishes  uint64 // routed-read states published (epoch swaps)
	PublishNanos    uint64 // cumulative wall time of successful state publications, ns
	// PublishAttemptNanos accumulates the wall time of every publication
	// attempt, successful or not — failed captures burn real exclusive-room
	// time that PublishNanos (successes only) would hide.
	PublishAttemptNanos uint64
	PublishErrors       uint64 // failed publication attempts (capture snapshot errors)
	RetireErrors        uint64 // errors surfaced while retiring drained states
}

// engineStats is the lock-free internal counterpart of Stats: counters
// are bumped from concurrent read-locked queries, so each is atomic.
type engineStats struct {
	queries             atomic.Uint64
	fullViewQueries     atomic.Uint64
	pagesScanned        atomic.Uint64
	viewsCreated        atomic.Uint64
	viewsReplaced       atomic.Uint64
	viewsDiscarded      atomic.Uint64
	viewsEvicted        atomic.Uint64
	updatesBuffered     atomic.Uint64
	updateBatches       atomic.Uint64
	pagesAdded          atomic.Uint64
	pagesRemoved        atomic.Uint64
	viewsExpired        atomic.Uint64
	viewsRebuilt        atomic.Uint64
	publishes           atomic.Uint64
	publishNanos        atomic.Uint64
	publishAttemptNanos atomic.Uint64
	publishErrors       atomic.Uint64
	retireErrors        atomic.Uint64
}

func (s *engineStats) snapshot() Stats {
	return Stats{
		Queries:             s.queries.Load(),
		FullViewQueries:     s.fullViewQueries.Load(),
		PagesScanned:        s.pagesScanned.Load(),
		ViewsCreated:        s.viewsCreated.Load(),
		ViewsReplaced:       s.viewsReplaced.Load(),
		ViewsDiscarded:      s.viewsDiscarded.Load(),
		ViewsEvicted:        s.viewsEvicted.Load(),
		UpdatesBuffered:     s.updatesBuffered.Load(),
		UpdateBatches:       s.updateBatches.Load(),
		PagesAdded:          s.pagesAdded.Load(),
		PagesRemoved:        s.pagesRemoved.Load(),
		ViewsExpired:        s.viewsExpired.Load(),
		ViewsRebuilt:        s.viewsRebuilt.Load(),
		StatePublishes:      s.publishes.Load(),
		PublishNanos:        s.publishNanos.Load(),
		PublishAttemptNanos: s.publishAttemptNanos.Load(),
		PublishErrors:       s.publishErrors.Load(),
		RetireErrors:        s.retireErrors.Load(),
	}
}

func (s *engineStats) reset() {
	s.queries.Store(0)
	s.fullViewQueries.Store(0)
	s.pagesScanned.Store(0)
	s.viewsCreated.Store(0)
	s.viewsReplaced.Store(0)
	s.viewsDiscarded.Store(0)
	s.viewsEvicted.Store(0)
	s.updatesBuffered.Store(0)
	s.updateBatches.Store(0)
	s.pagesAdded.Store(0)
	s.pagesRemoved.Store(0)
	s.viewsExpired.Store(0)
	s.viewsRebuilt.Store(0)
	s.publishes.Store(0)
	s.publishNanos.Store(0)
	s.publishAttemptNanos.Store(0)
	s.publishErrors.Store(0)
	s.retireErrors.Store(0)
}

// NewEngine wraps a filled column in an adaptive storage layer.
func NewEngine(col *storage.Column, cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.LazyViews {
		cfg.Create.Lazy = true
	}
	full, err := view.NewFull(col)
	if err != nil {
		return nil, err
	}
	set := viewset.New(full, cfg.MaxViews, cfg.DiscardTolerance, cfg.ReplaceTolerance)
	set.SetLimitPolicy(cfg.Limit)
	e := &Engine{
		col:    col,
		cfg:    cfg,
		set:    set,
		shards: make([]updateShard, resolveShards(cfg.UpdateShards)),
	}
	e.stateCond = sync.NewCond(&e.stateMu)
	// Telemetry handles are resolved once here and only dereferenced on
	// hot paths; the journal is nil (a single pointer test per event
	// site) unless Config.JournalEvents enables it.
	e.ins = newEngineInstruments()
	e.journal = obs.NewJournal(cfg.JournalEvents, cfg.JournalClock)
	e.mu.obs = &roomObs{wait: e.ins.roomWait, hold: e.ins.roomHold, journal: e.journal}
	// Epoch routing needs the column's copy-on-write write path: a
	// published capture must stay frozen while writers shadow pages.
	col.EnableSnapshots()
	if cfg.Tiering != nil && cfg.Tiering.Enabled() {
		t, err := col.EnableTiering(*cfg.Tiering)
		if err != nil {
			return nil, err
		}
		e.tier = t
	}
	if err := e.initState(); err != nil {
		return nil, err
	}
	if cfg.Adaptive && cfg.Create.Concurrent {
		e.mapper = view.NewMapper(cfg.MapperQueueCap)
	}
	if cfg.Autopilot != nil {
		p, err := autopilot.Start(pilotTarget{e}, *cfg.Autopilot, col.Rows())
		if err != nil {
			if e.mapper != nil {
				e.mapper.Stop()
			}
			return nil, err
		}
		e.pilot = p
		e.model = p.Model()
	}
	return e, nil
}

// resolveWorkers maps a Parallelism knob value to a scan worker count:
// 0 selects 1 (serial, the paper's behaviour), a positive value is taken
// literally, and a negative value selects GOMAXPROCS.
func resolveWorkers(n int) int {
	switch {
	case n == 0:
		return 1
	case n < 0:
		return runtime.GOMAXPROCS(0)
	default:
		return n
	}
}

// resolveShards maps the UpdateShards knob to a pending-buffer shard
// count. Sharding never changes semantics (FlushUpdates merges shards
// into one deterministic batch), so unlike Parallelism the default (0)
// scales with the machine: GOMAXPROCS shards. A positive value is taken
// literally — 1 reproduces the single-buffer write path.
func resolveShards(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Column returns the underlying physical column.
func (e *Engine) Column() *storage.Column { return e.col }

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// ViewSet returns the engine's view index.
func (e *Engine) ViewSet() *viewset.Set { return e.set }

// Views returns a snapshot of the current partial views.
func (e *Engine) Views() []*view.View {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.set.Partials()
}

// Stats returns a snapshot of the cumulative counters.
func (e *Engine) Stats() Stats { return e.stats.snapshot() }

// ResetStats zeroes the cumulative counters.
func (e *Engine) ResetStats() { e.stats.reset() }

// CreateView builds a partial view over [lo, hi] directly from the full
// view and inserts it, bypassing the adaptive retention rules. The §3.1
// micro-benchmark and the §3.4 update experiments set up their views this
// way. The view keeps the declared [lo, hi] rather than Create's
// extended range, like rebuilt views: the range must be pinned before
// the state capture publishes it, or epoch readers would route the
// extension while alignment maintains the narrower declared contract.
func (e *Engine) CreateView(lo, hi uint64) (*view.View, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, err := view.Create(e.col, lo, hi, e.cfg.Create, e.mapper)
	if err != nil {
		return nil, err
	}
	v.SetRange(lo, hi)
	// Legacy-surface views are pinned: enabling tiering must never slow
	// a pre-existing caller's explicitly requested hot range.
	v.SetPinned(true)
	if err := e.set.Insert(v); err != nil {
		_ = v.Release() //asv:ignore-err unwinding a failed insert; the insert error is returned
		return nil, err
	}
	if err := e.publishStateLocked(); err != nil {
		e.set.Remove(v)
		_ = v.Release() //asv:ignore-err unwinding a failed publication; the publish error is returned
		return nil, err
	}
	return v, nil
}

// ViewRange is one requested [Lo, Hi] of a CreateViewsBatch call.
type ViewRange struct{ Lo, Hi uint64 }

// ViewSpec is one view request of the options-based creation surface:
// the covered range plus the per-view overrides the facade's ViewOption
// constructors set. Specs are built as literals and never mutated after
// they are handed to the engine.
//
//asv:immutable
type ViewSpec struct {
	Lo, Hi uint64
	// Lazy overrides the engine default (Config.LazyViews / Create.Lazy)
	// for this view when HasLazy is set.
	Lazy    bool
	HasLazy bool
	// Pinned exempts the view's pages from tier demotion; the legacy
	// creation wrappers set it on every view.
	Pinned bool
}

// CreateViewsBatch builds one pinned partial view per requested range —
// the legacy batch surface, now a thin wrapper over CreateViewsOpt.
func (e *Engine) CreateViewsBatch(ranges []ViewRange) ([]*view.View, error) {
	specs := make([]ViewSpec, len(ranges))
	for i, r := range ranges {
		specs[i] = ViewSpec{Lo: r.Lo, Hi: r.Hi, Pinned: true}
	}
	return e.CreateViewsOpt(specs)
}

// CreateViewsOpt builds one partial view per spec in a single column
// pass and publishes them in one state swap — the options-based creation
// entry point every explicit-creation surface routes through.
// Semantically it matches calling CreateView for each range in order
// (ranges are pinned to the declared [Lo, Hi], so page sets are
// identical), but the cost is one qualification scan — with a per-page
// zone-map prefilter — plus one publication instead of len(specs) of
// each; the many-views experiments stand up thousands of views this way.
// On any error nothing is inserted and nothing is published.
func (e *Engine) CreateViewsOpt(specs []ViewSpec) ([]*view.View, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	builders := make([]*view.Builder, len(specs))
	abort := func(firstErr error) ([]*view.View, error) {
		for _, b := range builders {
			if b != nil {
				_ = b.Abort() //asv:ignore-err aborting half-built views after a prior error; that error is returned
			}
		}
		return nil, firstErr
	}
	for i, sp := range specs {
		opts := e.cfg.Create
		if sp.HasLazy {
			opts.Lazy = sp.Lazy
		}
		b, err := view.NewBuilder(e.col, opts, e.mapper)
		if err != nil {
			return abort(err)
		}
		builders[i] = b
	}
	for p := 0; p < e.col.NumPages(); p++ {
		pg, err := e.col.PageBytes(p)
		if err != nil {
			return abort(err)
		}
		// Zone-map prefilter: a page whose [min, max] zone misses a
		// requested range cannot qualify for it, and most pages miss most
		// ranges when thousands of narrow views are requested at once.
		zmin, zmax := storage.Zone(pg)
		for i, sp := range specs {
			if zmax < sp.Lo || zmin > sp.Hi {
				continue
			}
			if s := storage.ScanFilter(pg, sp.Lo, sp.Hi); s.Count > 0 {
				builders[i].AddPage(p)
			}
		}
	}
	views := make([]*view.View, len(specs))
	for i, sp := range specs {
		v, err := builders[i].Finish(sp.Lo, sp.Hi)
		builders[i] = nil
		if err != nil {
			for _, w := range views[:i] {
				e.set.Remove(w)
				_ = w.Release() //asv:ignore-err unwinding batch creation; the build error is returned
			}
			return abort(err)
		}
		v.SetPinned(sp.Pinned)
		if err := e.set.Insert(v); err != nil {
			_ = v.Release() //asv:ignore-err unwinding a failed insert; the insert error is returned
			for _, w := range views[:i] {
				e.set.Remove(w)
				_ = w.Release() //asv:ignore-err unwinding batch creation; the insert error is returned
			}
			return abort(err)
		}
		views[i] = v
	}
	if err := e.publishStateLocked(); err != nil {
		for _, v := range views {
			e.set.Remove(v)
			_ = v.Release() //asv:ignore-err unwinding a failed publication; the publish error is returned
		}
		return nil, err
	}
	return views, nil
}

// releaseView releases a view through the test-injectable hook.
func (e *Engine) releaseView(v *view.View) error {
	if e.releaseHook != nil {
		return e.releaseHook(v)
	}
	return v.Release()
}

// createView builds a partial view over [lo, hi] through the
// test-injectable hook.
func (e *Engine) createView(lo, hi uint64) (*view.View, error) {
	if e.createHook != nil {
		return e.createHook(lo, hi)
	}
	return view.Create(e.col, lo, hi, e.cfg.Create, e.mapper)
}

// RebuildViews drops every partial view and recreates each one from
// scratch over its covered range — the "New" (rebuild) alternative that
// Figure 7 compares against incremental alignment. Pending updates are
// dropped rather than flushed: the rebuild scans the column's current
// contents, which already include every applied write.
//
// Errors are collected, not short-circuited: all ranges are recorded
// before anything is released, releases proceed best-effort, and every
// range is still rebuilt even when an earlier release or creation
// failed — a mid-rebuild error must not leak the remaining old views or
// silently drop their ranges from the rebuilt set. The first error is
// returned.
func (e *Engine) RebuildViews() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.gen++ // in-flight candidates were routed over the pre-rebuild set
	e.resetPendingLocked()
	old := e.set.Clear()
	type rng struct {
		lo, hi uint64
		pinned bool
	}
	ranges := make([]rng, 0, len(old))
	for _, v := range old {
		ranges = append(ranges, rng{v.Lo(), v.Hi(), v.Pinned()})
	}
	var firstErr error
	for _, v := range old {
		if err := e.releaseView(v); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, r := range ranges {
		v, err := e.createView(r.lo, r.hi)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		// Rebuilt views keep their original declared range (Create may
		// extend, but the view's contract is its pre-update range) and
		// their demotion exemption.
		v.SetRange(r.lo, r.hi)
		v.SetPinned(r.pinned)
		if err := e.set.Insert(v); err != nil {
			_ = v.Release() //asv:ignore-err unwinding a failed insert; the insert error is recorded in firstErr
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if err := e.publishStateLocked(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Close releases all partial views and stops the mapping thread and the
// autopilot. It waits for in-flight queries to drain and blocks until
// every Snapshot taken from the engine has been closed — a pinned epoch
// keeps its views and frozen page frames alive, and Close's contract is
// that nothing survives it. Close is idempotent. The column itself
// stays usable (and must be closed by its owner).
func (e *Engine) Close() error {
	if e.pilot != nil {
		// Stop before taking the exclusive room: the pilot's final drain
		// applies any queued writes (through the update room), so no
		// accepted Update is lost; alignment is skipped, the views are
		// about to be released anyway.
		e.pilot.Stop()
	}
	e.closing.Store(true)
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.waitStatesDrained()
		return nil
	}
	e.gen++
	e.closed = true
	var firstErr error
	for _, v := range e.set.Clear() {
		// Drops the set's owner reference; the unmap happens here unless
		// a still-pinned state holds the view, in which case it follows
		// that state's drain.
		if err := v.Release(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := e.publishStateLocked(); err != nil && firstErr == nil {
		firstErr = err
	}
	e.mu.Unlock()

	// Wait for every superseded state to drain: in-flight queries finish
	// on their own, and open snapshots block here until closed. Only
	// then is it safe to stop the mapper — a reader pinned to an older
	// state may still be finishing a candidate build through it.
	e.waitStatesDrained()
	if e.mapper != nil {
		e.mapper.Stop()
	}

	// Final-drain sweep: when the close-time publication itself failed,
	// the displaced frames it collected are parked in pendingRetired with
	// no later publication to fold them into, and the set's delta-capture
	// cache still holds view references from the last successful capture.
	// Free the frames and drop the cache here or both leak for good.
	e.mu.Lock()
	for _, fr := range e.pendingRetired {
		e.col.Kernel().FreeFrame(fr)
	}
	e.pendingRetired = nil
	if err := e.set.ResetCaptureCache(); err != nil {
		e.stats.retireErrors.Add(1)
		if firstErr == nil {
			firstErr = err
		}
	}
	e.mu.Unlock()

	e.stateMu.Lock()
	if e.retireErr != nil && firstErr == nil {
		firstErr = e.retireErr
	}
	e.stateMu.Unlock()
	return firstErr
}

// getProcessed takes a cleared processed-pages bitvector sized to the
// column from the pool (or allocates one).
func (e *Engine) getProcessed() *bitvec.Vector {
	if v, ok := e.procPool.Get().(*bitvec.Vector); ok && v.Len() == e.col.NumPages() {
		v.Reset()
		return v
	}
	return bitvec.New(e.col.NumPages())
}

// putProcessed returns a bitvector to the pool.
func (e *Engine) putProcessed(v *bitvec.Vector) { e.procPool.Put(v) }

// String summarizes the engine state.
func (e *Engine) String() string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return fmt.Sprintf("Engine(%s, %d partial views, frozen=%v)",
		e.cfg.Mode, e.set.Len(), e.set.Frozen())
}
