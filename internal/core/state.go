package core

import (
	"errors"
	"sync/atomic"
	"time"

	"github.com/asv-db/asv/internal/obs"
	"github.com/asv-db/asv/internal/viewset"
	"github.com/asv-db/asv/internal/vmsim"
)

// errSnapshotClosed is returned by queries on a closed Snapshot handle.
var errSnapshotClosed = errors.New("core: snapshot is closed")

// refcount is a drain-once reference counter: tryAcquire succeeds only
// while the count is positive, so once a release drains it to zero it is
// terminally zero.
type refcount struct{ n atomic.Int64 }

func (r *refcount) init(n int64) { r.n.Store(n) }

func (r *refcount) tryAcquire() bool {
	for {
		c := r.n.Load()
		if c <= 0 {
			return false
		}
		if r.n.CompareAndSwap(c, c+1) {
			return true
		}
	}
}

// release drops one reference and returns the remaining count.
func (r *refcount) release() int64 { return r.n.Add(-1) }

// count returns the current reference count.
func (r *refcount) count() int64 { return r.n.Load() }

// drained reports a terminally-zero count.
func (r *refcount) drained() bool { return r.n.Load() == 0 }

// This file implements the engine's epoch-based read routing: the routed
// read state lives in an immutable engineState published behind an
// atomic pointer. Queries load the pointer, pin the state with one
// atomic increment, route and scan entirely against the capture, and
// never enter the room lock's scan room; FlushUpdates, CreateView,
// RebuildViews, candidate publication and the autopilot's lifecycle
// duties build a successor state under the exclusive room and swap it
// in. A superseded state is retired — its captured views released, the
// frames its capture froze returned to the allocator — only after its
// epoch drains, in publication order (per-state reference counting plus
// a prefix walk), so a pinned reader can never observe a recycled frame
// or an unmapped view.

// engineState is one published routed-read state. All fields except refs
// are immutable once the state is visible through Engine.state;
// retiredFrames and next are written exactly once, under the exclusive
// room, before the publication reference is dropped — every path that
// can observe them (the reclaim walk) happens-after that drop.
//
//asv:immutable
type engineState struct {
	snap   *viewset.Snapshot
	gen    uint64 // candidate-invalidation generation at publication
	closed bool   // engine was closed when this state was published

	// refs counts the publication reference (1, dropped when a successor
	// is swapped in) plus every pinned reader — in-flight queries and
	// open snapshots. The holder that drops it to zero triggers the
	// reclaim walk; once zero it never rises again (tryAcquire refuses),
	// so a drained state is terminally drained.
	refs refcount

	// retiredFrames are the physical frames displaced by copy-on-write
	// shadows while this state was current. This state's capture — and
	// possibly older captures — still translate to them, so they are
	// freed only when this state and every older one have drained.
	retiredFrames []vmsim.FrameID

	// next is the successor state, set at retirement. The reclaim walk
	// follows it to advance the oldest-state pointer.
	next *engineState

	// publishedAt stamps the publication instant (ns, monotonic-derived
	// wall clock); the reclaim walk reports publish→drain lag from it.
	// Written before the state is stored, like every immutable field.
	publishedAt int64
}

// initState publishes the engine's first state; called from NewEngine
// before the engine is visible to any other goroutine.
func (e *Engine) initState() error {
	fullPages, retired := e.col.CaptureSnapshot() //asv:handoff displaced frames park in e.pendingRetired until the reclaim walk frees them
	snap, err := e.set.Snapshot(fullPages)        //asv:handoff the capture is owned by the published engineState; reclaim releases it
	if err != nil {
		return err
	}
	st := &engineState{snap: snap, publishedAt: time.Now().UnixNano()}
	st.refs.init(1)
	e.state.Store(st)
	e.oldest = st
	// A fresh column has no shadowed frames; tolerate any anyway.
	e.pendingRetired = retired
	return nil
}

// acquireState pins and returns the current state. The retry loop closes
// the load-then-increment race: a state whose refcount already drained
// refuses the acquire, and the reload observes the successor (the
// publication reference is dropped only after the swap).
func (e *Engine) acquireState() *engineState {
	for {
		st := e.state.Load()
		if st.refs.tryAcquire() {
			return st
		}
	}
}

// releaseState drops one pin; the drop that drains the state runs the
// reclaim walk. During Close, the drop that leaves only the current
// state's publication reference wakes the drain barrier — readers
// pinned to the final state are invisible to the oldest-pointer walk.
func (e *Engine) releaseState(st *engineState) {
	n := st.refs.release()
	if n == 0 {
		e.reclaim()
		return
	}
	if n == 1 && e.closing.Load() && e.state.Load() == st {
		e.stateMu.Lock()
		e.stateCond.Broadcast()
		e.stateMu.Unlock()
	}
}

// publishStateLocked captures the current routed state (view set plus
// resolved soft-TLBs) and swaps it in as the new current state, retiring
// the predecessor. The caller holds the exclusive room — captures read
// live view and column state. Every exclusive-room mutation that changes
// what readers may observe (alignment, view-set mutation, close) ends
// with a publication; between publications the current state is
// immutable by construction.
//
//asv:locked=exclusive
func (e *Engine) publishStateLocked() error {
	t0 := time.Now()
	fullPages, retired := e.col.CaptureSnapshot() //asv:handoff displaced frames ride the retiring state's retiredFrames to the reclaim walk
	retired = append(retired, e.pendingRetired...)
	e.pendingRetired = nil
	snap, err := e.set.Snapshot(fullPages) //asv:handoff the capture is owned by the published engineState; reclaim releases it
	if err != nil {
		// The epoch already advanced and the displaced frames are out of
		// the column's hands; park them for the next successful
		// publication (freeing late is safe, dropping them would leak).
		e.pendingRetired = retired
		e.stats.publishErrors.Add(1)
		// Failed attempts burn exclusive-room wall time too; without
		// this line the error path would vanish from latency accounting
		// (PublishNanos counts successes only).
		e.stats.publishAttemptNanos.Add(uint64(time.Since(t0)))
		return err
	}
	// The capture may have dropped the previous delta cache's last
	// references; a release failure there retires a superseded capture's
	// view, so it joins the reclaim walk's error accounting.
	if rerr := e.set.TakeReleaseErr(); rerr != nil {
		e.stats.retireErrors.Add(1)
		e.stateMu.Lock()
		if e.retireErr == nil {
			e.retireErr = rerr
		}
		e.stateMu.Unlock()
	}
	st := &engineState{snap: snap, gen: e.gen, closed: e.closed, publishedAt: time.Now().UnixNano()}
	st.refs.init(1)
	old := e.state.Load()
	old.retiredFrames = retired
	old.next = st
	e.state.Store(st)
	// Journal the publication before dropping old's publication reference:
	// that drop may retire old inline, and the timeline should read
	// published(N+1) then retired(N).
	if e.journal != nil {
		e.journal.Record(obs.EvEpochPublished, int64(e.gen), int64(snap.Recaptured()), int64(len(retired)))
	}
	e.releaseState(old) // drop old's publication reference
	e.stats.publishes.Add(1)
	elapsed := uint64(time.Since(t0))
	e.stats.publishNanos.Add(elapsed)
	e.stats.publishAttemptNanos.Add(elapsed)
	e.ins.publishRecaptured.Observe(uint64(snap.Recaptured()))
	return nil
}

// reclaim advances the oldest-state pointer across drained states in
// publication order, releasing each retired state's captured views and
// freeing its displaced frames. The prefix rule is what makes frame
// reuse safe: a frame displaced while state S was current may be
// referenced by any capture up to S, so it is freed only once S and all
// its predecessors have drained. The walk stops at the current state,
// which always holds its publication reference.
func (e *Engine) reclaim() {
	e.stateMu.Lock()
	defer e.stateMu.Unlock()
	advanced := false
	now := time.Now().UnixNano()
	for {
		st := e.oldest
		// The drained check must precede any read of next/retiredFrames:
		// both are written just before the publication reference is
		// dropped, so observing the drained count (an atomic load)
		// happens-after those writes. A drained state always has a
		// successor — the publication reference is only dropped at swap.
		if st == nil || !st.refs.drained() || st.next == nil {
			break
		}
		if err := st.snap.ReleaseViews(); err != nil {
			// Surface, never swallow: the error is counted for Stats and
			// the first one is reported by Engine.Close.
			e.stats.retireErrors.Add(1)
			if e.retireErr == nil {
				e.retireErr = err
			}
		}
		for _, fr := range st.retiredFrames {
			e.col.Kernel().FreeFrame(fr)
		}
		lag := now - st.publishedAt
		if lag < 0 {
			lag = 0
		}
		e.ins.retireLag.Observe(uint64(lag))
		if e.journal != nil {
			e.journal.Record(obs.EvEpochRetired, int64(st.gen), lag, int64(len(st.retiredFrames)))
		}
		st.retiredFrames = nil
		e.oldest = st.next
		advanced = true
	}
	if advanced {
		e.stateCond.Broadcast()
	}
}

// waitStatesDrained blocks until every superseded state has drained and
// been reclaimed — Engine.Close's barrier. In-flight queries finish on
// their own; a still-open Snapshot blocks the wait until it is closed,
// which is the documented Close contract.
func (e *Engine) waitStatesDrained() {
	e.stateMu.Lock()
	for {
		// Re-load the current pointer each round: a query that was
		// already past the closed check may still flush-and-publish once
		// more, and the wait must chase the newest state, not a stale
		// notion of it. The current state must also be down to its
		// publication reference — a reader pinned to the FINAL state
		// never shows up in the oldest-pointer walk, but Close's
		// contract is that no scan is in flight when it returns.
		cur := e.state.Load()
		if e.oldest == cur && cur.refs.count() <= 1 {
			break
		}
		e.stateCond.Wait()
	}
	e.stateMu.Unlock()
}

// Snapshot pins the current routed-read state and returns a handle whose
// queries all observe exactly that epoch: repeatable, never-blocking
// reads that proceed while writers flush, alignment rewires views, or
// the autopilot retires them. Pending updates buffered at call time are
// flushed first, so the snapshot reflects every write applied before it
// was taken; writes after it are invisible through the handle. Close
// releases the pin — Engine.Close blocks until every snapshot is closed.
func (e *Engine) Snapshot() (*Snapshot, error) {
	if err := e.flushPendingForRead(); err != nil {
		return nil, err
	}
	st := e.acquireState()
	if st.closed {
		// A pin on a closed engine would outlive Close's drain barrier
		// and read column frames the owner is free to release — refuse
		// rather than hand out a handle that can silently serve
		// recycled memory.
		e.releaseState(st)
		return nil, errors.New("core: engine is closed")
	}
	s := &Snapshot{e: e}
	s.st.Store(st)
	return s, nil
}

// Snapshot is a pinned engine epoch. Its queries are pure reads: they
// route and scan the pinned capture without flushing later updates and
// without creating candidate views, and they cannot block on any writer
// or maintenance work. A Snapshot is safe for concurrent use; Close is
// idempotent (and safe concurrently with queries, which then report the
// handle closed).
type Snapshot struct {
	e  *Engine
	st atomic.Pointer[engineState] // nil after Close
}

// pinned returns the pinned state, or nil after Close.
func (s *Snapshot) pinned() *engineState { return s.st.Load() }

// Query answers [lo, hi] from the pinned epoch with the engine's
// configured scan parallelism.
func (s *Snapshot) Query(lo, hi uint64) (QueryResult, error) {
	a, err := s.QueryOpt(lo, hi, QueryOptions{})
	return a.QueryResult, err
}

// QueryOpt answers [lo, hi] from the pinned epoch with explicit options.
// Adaptive side effects never happen on a snapshot read; the answer's
// telemetry reflects the pinned routing.
func (s *Snapshot) QueryOpt(lo, hi uint64, opt QueryOptions) (Answer, error) {
	st := s.pinned()
	if st == nil {
		return Answer{}, errSnapshotClosed
	}
	return s.e.answerState(st, lo, hi, opt, true)
}

// QueryOptAdapt answers [lo, hi] from the pinned epoch like QueryOpt
// but with the usual adaptive side effects: the scan builds a candidate
// view from the pinned capture and offers it to the live set, where the
// generation check discards it if alignment, a rebuild or Close ran
// since the pin. Table.Select uses this — per-column reads pinned to one
// catalog instant that still grow the view sets as a side product. The
// publication step briefly takes the exclusive room, so unlike QueryOpt
// this call may wait on maintenance work (after the answer is computed).
func (s *Snapshot) QueryOptAdapt(lo, hi uint64, opt QueryOptions) (Answer, error) {
	st := s.pinned()
	if st == nil {
		return Answer{}, errSnapshotClosed
	}
	e := s.e
	if lo > hi {
		lo, hi = hi, lo
	}
	e.stats.queries.Add(1)
	if !e.cfg.Adaptive {
		return e.answerState(st, lo, hi, opt, false)
	}
	ans, cand, err := e.answerStateAdapt(st, lo, hi, opt)
	if err != nil {
		return ans, err
	}
	return ans, e.finishAdaptive(&ans, cand, st.gen)
}

// Gen reports the pinned state's candidate-invalidation generation;
// inspection tooling uses it to tell epochs apart. Zero after Close.
func (s *Snapshot) Gen() uint64 {
	if st := s.pinned(); st != nil {
		return st.gen
	}
	return 0
}

// Views returns the number of partial views captured by the pinned
// epoch (0 after Close).
func (s *Snapshot) Views() int {
	if st := s.pinned(); st != nil {
		return st.snap.Len()
	}
	return 0
}

// Close releases the pin. Double-close is a no-op.
func (s *Snapshot) Close() error {
	if st := s.st.Swap(nil); st != nil {
		s.e.releaseState(st)
	}
	return nil
}
