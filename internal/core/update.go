package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/asv-db/asv/internal/procmaps"
	"github.com/asv-db/asv/internal/storage"
	"github.com/asv-db/asv/internal/view"
	"github.com/asv-db/asv/internal/vmsim"
)

// Update is one element of an update batch (§2.4): row r was overwritten,
// Old being the value replaced and New the value written.
type Update struct {
	Row int
	Old uint64
	New uint64
}

// updateShard is one pending-buffer shard. Updates are routed to shards
// by physical page (Row / ValuesPerPage % shards), so concurrent writers
// of different pages append — and write the column — under different
// locks, while writes to the same page serialize on its shard. The
// trailing pad keeps neighbouring shard locks off one cache line.
type updateShard struct {
	mu  sync.Mutex
	ups []Update
	_   [32]byte
}

// UpdateStats reports the cost split of one alignment run — exactly the
// quantities Figure 7 plots: maps-parsing time vs view-update time, and
// the number of physical pages added to and removed from the views.
type UpdateStats struct {
	BatchSize  int // updates in the raw batch
	NetUpdates int // after last-write-per-row squashing
	DirtyPages int // distinct physical pages touched

	ParseDuration time.Duration // RenderMaps + Parse + BuildBimap (§2.5)
	AlignDuration time.Duration // per-view alignment (§2.4)
	MapsBytes     int           // size of the parsed maps file
	MapsLines     int           // mappings in it

	PagesAdded   int // view pages mapped by case (1)
	PagesRemoved int // view pages unmapped by case (2)
	PagesScanned int // full-page rescans required by case (2)
}

// RowWrite is one row overwrite of a (batched) Update call.
type RowWrite struct {
	Row   int
	Value uint64
}

// Update writes newVal to row through the full view and buffers the
// (row, old, new) triple for the next FlushUpdates. This is the paper's
// model: updates happen through the full view immediately; partial views
// are realigned in batches (§2.4). Update enters the engine's shared
// update room — concurrent writers proceed in parallel, serializing only
// per pending-buffer shard (i.e. per group of physical pages) — while
// the room lock keeps writes off pages a concurrent scan is reading.
//
// With an autopilot (Config.Autopilot), Update is fire-and-forget: the
// write is validated and queued in the intake buffers without touching
// the room lock, and the pilot applies and aligns it within
// MaxFlushLatency (sooner when the coalesce thresholds fill) as part of
// a group commit. Sync (or FlushUpdates) is the read-your-writes
// barrier; Close drains the intake, so no accepted write is ever lost.
func (e *Engine) Update(row int, newVal uint64) error {
	if e.pilot != nil {
		return e.pilot.Enqueue(row, newVal)
	}
	e.mu.UpdateLock()
	defer e.mu.UpdateUnlock()
	return e.applyWrite(row, newVal)
}

// UpdateBatch applies a group of writes in one update-room entry — group
// commit for the write path. It is semantically identical to calling
// Update for each element in order (on error the prefix before the
// failing write stays applied and buffered), but the single room
// admission amortizes the reader/writer room handover across the group:
// under concurrent readers, every room turn a lone Update wins admits a
// one-update batch that the next query must flush and align in full.
func (e *Engine) UpdateBatch(ws []RowWrite) error {
	if len(ws) == 0 {
		return nil
	}
	if e.pilot != nil {
		// Drain the fire-and-forget intake before the direct group
		// commit: a queued older Update to the same row must land before
		// this batch, or the pilot's later drain would silently undo the
		// newer write ("semantically identical to calling Update for
		// each element in order").
		if err := e.pilot.ApplyQueued(); err != nil {
			return err
		}
	}
	e.mu.UpdateLock()
	defer e.mu.UpdateUnlock()
	for _, w := range ws {
		if err := e.applyWrite(w.Row, w.Value); err != nil {
			return err
		}
	}
	return nil
}

// applyWrite performs one column write and buffers its triple in the
// row's page shard. The caller holds the update room.
func (e *Engine) applyWrite(row int, newVal uint64) error {
	page, _, err := e.col.RowLocation(row)
	if err != nil {
		return err
	}
	sh := &e.shards[page%len(e.shards)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	old, err := e.col.SetValue(row, newVal)
	if err != nil {
		return err
	}
	sh.ups = append(sh.ups, Update{Row: row, Old: old, New: newVal})
	e.pendingCount.Add(1)
	e.stats.updatesBuffered.Add(1)
	return nil
}

// PendingUpdates returns the number of buffered updates. It reads an
// atomic counter, so it never contends with writers or scans.
func (e *Engine) PendingUpdates() int {
	return int(e.pendingCount.Load())
}

// takePendingLocked drains every shard into one batch with the
// deterministic §2.4 merge order: ascending physical page, arrival order
// within a page. A page hashes to exactly one shard, so each page's
// updates are already in arrival order there and a stable sort restores
// the single-buffer batch exactly — squashing produces byte-identical
// results to the pre-sharding write path. The caller holds the exclusive
// room, which happens-after every writer's update-room exit, so shard
// slices are read without their locks.
//
//asv:locked=exclusive
func (e *Engine) takePendingLocked() []Update {
	n := int(e.pendingCount.Load())
	if n == 0 {
		return nil
	}
	batch := make([]Update, 0, n)
	for i := range e.shards {
		sh := &e.shards[i]
		batch = append(batch, sh.ups...)
		sh.ups = sh.ups[:0]
	}
	e.pendingCount.Store(0)
	sort.SliceStable(batch, func(i, j int) bool {
		return batch[i].Row/storage.ValuesPerPage < batch[j].Row/storage.ValuesPerPage
	})
	return batch
}

// resetPendingLocked drops all buffered updates (RebuildViews rescans
// the column, which already holds every applied write). The caller holds
// the exclusive room.
//
//asv:locked=exclusive
func (e *Engine) resetPendingLocked() {
	for i := range e.shards {
		e.shards[i].ups = nil
	}
	e.pendingCount.Store(0)
}

// FlushUpdates aligns all partial views with the buffered update batch and
// clears the buffers, holding the exclusive room for the whole alignment.
// With an autopilot, the intake is drained (applied) first, so the flush
// covers every write accepted before the call — the synchronous barrier
// the paper's inline model gives implicitly.
func (e *Engine) FlushUpdates() (UpdateStats, error) {
	if e.pilot != nil {
		// Apply without aligning: the alignment happens just below, and
		// the pilot must not take the exclusive room itself while this
		// caller is about to (drain mutex strictly precedes room lock).
		if err := e.pilot.ApplyQueued(); err != nil {
			return UpdateStats{}, err
		}
	}
	return e.flushApplied()
}

// flushApplied aligns the applied-but-unaligned updates, without touching
// the autopilot intake — the pilot's own alignment entry point (its drain
// already applied the writes).
func (e *Engine) flushApplied() (UpdateStats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.flushLocked()
}

// flushLocked is FlushUpdates for callers already holding the exclusive
// room.
//
//asv:locked=exclusive
func (e *Engine) flushLocked() (UpdateStats, error) {
	return e.alignLocked(e.takePendingLocked())
}

// AlignViews realigns every partial view with an update batch whose writes
// have already been applied to the column. It implements §2.4 end to end:
// last-write-per-row squashing, grouping by physical page, one maps-file
// parse into a bimap (§2.5), and the per-page add/keep/remove decision for
// each view. Alignment rewires view pages in place, so it holds the
// exclusive room for the whole batch.
func (e *Engine) AlignViews(batch []Update) (UpdateStats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.alignLocked(batch)
}

// alignLocked is the AlignViews body; the caller holds the exclusive
// room. Empty batches return immediately and are not counted as update
// batches — a no-op FlushUpdates must not skew per-batch averages.
//
//asv:locked=exclusive
func (e *Engine) alignLocked(batch []Update) (UpdateStats, error) {
	st := UpdateStats{BatchSize: len(batch)}
	if len(batch) == 0 {
		return st, nil
	}
	e.stats.updateBatches.Add(1)
	// Invalidate in-flight candidates even when the set is empty: a
	// candidate scanned before this batch is not a set member yet, so
	// this alignment cannot reach it, and no later flush will carry the
	// batch again.
	e.gen++
	if e.set.Len() == 0 {
		// No views to align, but the batch's writes shadowed pages: the
		// successor state must capture the shadows or readers would keep
		// answering from the pre-write frames.
		return st, e.publishStateLocked()
	}

	// Step 1 (§2.4): filter the sequence so only the last update per row
	// remains, paired with the first overwritten value: u0=(r,a,b),
	// u1=(r,c,d) collapse to (r,a,d).
	squashed := make(map[int]Update, len(batch))
	for _, u := range batch {
		if prev, ok := squashed[u.Row]; ok {
			prev.New = u.New
			squashed[u.Row] = prev
		} else {
			squashed[u.Row] = u
		}
	}
	st.NetUpdates = len(squashed)

	// Step 2: group by modified physical page.
	byPage := make(map[int][]Update)
	for _, u := range squashed {
		p := u.Row / storage.ValuesPerPage
		byPage[p] = append(byPage[p], u)
	}
	st.DirtyPages = len(byPage)
	pages := make([]int, 0, len(byPage))
	for p := range byPage {
		pages = append(pages, p)
	}
	sort.Ints(pages) // deterministic alignment order

	// Demand-materialized views must be fully mapped before the maps
	// render: the bimap's page-wise index is built from VMAs, so a cold
	// (not yet mapped) slot would read as "not indexed" and case (1)
	// would append a physical page the view already covers.
	for _, v := range e.set.Partials() {
		if err := v.EnsureMapped(); err != nil {
			return st, fmt.Errorf("core: materializing view for alignment: %w", err)
		}
	}

	// Step 3 (§2.5): parse the maps file once and materialize the
	// page-wise bidirectional map.
	t0 := time.Now()
	mapsTxt := e.col.Space().RenderMaps()
	st.MapsBytes = len(mapsTxt)
	ms, err := procmaps.Parse(mapsTxt)
	if err != nil {
		return st, fmt.Errorf("core: parsing maps: %w", err)
	}
	st.MapsLines = len(ms)
	bm := procmaps.BuildBimap(ms, e.col.File().Inode(), vmsim.PageSize)
	st.ParseDuration = time.Since(t0)

	// Step 4 (§2.4): align each partial view, maintaining the bimap from
	// user space as pages are rewired. Per-view alignment is independent
	// given the shared bimap (each worker rewires only its own view's
	// virtual pages; cross-view bimap state is kept consistent by the
	// bimap's sharded locks), so it fans out across Config.Parallelism
	// workers exactly like the scan kernels.
	t1 := time.Now()
	if err := e.alignPartials(pages, byPage, bm, &st); err != nil {
		return st, err
	}
	st.AlignDuration = time.Since(t1)
	e.stats.pagesAdded.Add(uint64(st.PagesAdded))
	e.stats.pagesRemoved.Add(uint64(st.PagesRemoved))
	// Publish the aligned state: from here on, readers route the
	// realigned views and the post-write page frames.
	return st, e.publishStateLocked()
}

// alignPartials walks every partial view with the §2.4 decision
// procedure, serially with one worker and view-sharded beyond that. Each
// worker accumulates a private UpdateStats partial; partials are reduced
// in view order, so the merged PagesAdded/PagesRemoved/PagesScanned are
// identical to the serial walk. Error semantics differ from serial by
// necessity: workers that already started cannot be unwound, so every
// partial is merged — the stats reflect all rewiring that actually
// happened — and the first error in view order is returned.
//
// With an autopilot, the fan-out is adaptive: the cost model picks the
// worker count from the view and dirty-page counts (capped by the static
// Parallelism knob) and is fed the observed wall time afterwards. Worker
// count never changes the merged stats, so adaptivity cannot change
// results.
func (e *Engine) alignPartials(pages []int, byPage map[int][]Update,
	bm *procmaps.Bimap, st *UpdateStats) error {

	parts := e.set.Partials()
	workers := resolveWorkers(e.cfg.Parallelism)
	if workers > len(parts) {
		workers = len(parts)
	}
	if e.model != nil {
		workers = e.model.AlignWorkers(len(parts), len(pages), workers)
		defer func(t0 time.Time, w int) {
			e.model.ObserveAlign(len(parts), len(pages), w, time.Since(t0))
		}(time.Now(), workers)
	}
	if workers <= 1 {
		for _, v := range parts {
			if err := e.alignView(v, pages, byPage, bm, st); err != nil {
				return err
			}
		}
		return nil
	}

	partStats := make([]UpdateStats, len(parts))
	errs := make([]error, len(parts))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(parts) {
					return
				}
				errs[i] = e.alignView(parts[i], pages, byPage, bm, &partStats[i])
			}
		}()
	}
	wg.Wait()

	var firstErr error
	for i := range parts {
		st.PagesAdded += partStats[i].PagesAdded
		st.PagesRemoved += partStats[i].PagesRemoved
		st.PagesScanned += partStats[i].PagesScanned
		if errs[i] != nil && firstErr == nil {
			firstErr = errs[i]
		}
	}
	return firstErr
}

// alignView applies the §2.4 decision procedure for one partial view
// covering [a, b]. It is safe to run concurrently for distinct views:
// it mutates only its own view's pages (and the bimap entries for that
// view's virtual area), reads the column through the resolved soft-TLB,
// and the VM simulator takes its own locks for the mmap/munmap calls.
func (e *Engine) alignView(v *view.View, pages []int, byPage map[int][]Update,
	bm *procmaps.Bimap, st *UpdateStats) error {
	a, b := v.Lo(), v.Hi()
	// The view's soft-TLB array may be shared with a published capture;
	// clone it before the session's first mutation (and only then — a
	// view untouched by this batch keeps sharing).
	cloned := false
	ensureTLB := func() {
		if !cloned {
			v.BeginTLBMutation()
			// The session will change this view's pages or translations:
			// the next publication must re-capture it instead of sharing
			// the previous capture's entry. (Safe concurrently — workers
			// align distinct views but mark through the same set.)
			e.set.MarkDirty(v)
			cloned = true
		}
	}
	for _, pageID := range pages {
		ups := byPage[pageID]
		anyNewIn, anyOldIn := false, false
		for _, u := range ups {
			if u.New >= a && u.New <= b {
				anyNewIn = true
			}
			if u.Old >= a && u.Old <= b {
				anyOldIn = true
			}
		}

		vpn, indexed := bm.MappedIn(int64(pageID), v.BaseVPN(), v.EndMappedVPN())
		if !indexed {
			// Case (1): not indexed. Index it iff some update brought a
			// value of this page into [a, b]; an "unused" virtual page is
			// available thanks to creation over-allocation.
			if anyNewIn {
				ensureTLB()
				newVPN, err := v.AppendPage(pageID)
				if err != nil {
					return err
				}
				bm.Add(newVPN, int64(pageID))
				st.PagesAdded++
			}
			continue
		}

		// Indexed dirty page: the batch's writes shadowed it onto a
		// fresh frame (copy-on-write), so the view's cached translation
		// — and the page-table entry behind its virtual page — still
		// reference the frozen pre-write frame. Refresh both before the
		// keep/remove decision; whatever the decision, a kept page must
		// serve the post-write bytes in the state published after this
		// alignment.
		pg, err := e.col.PageBytes(pageID)
		if err != nil {
			return err
		}
		ensureTLB()
		v.RefreshSlot(int(vpn-v.BaseVPN()), pg)
		if err := e.col.Space().RepointPage(vmsim.VPN(vpn)); err != nil {
			return err
		}

		// Case (2): currently indexed.
		if anyNewIn {
			// A new value falls into the range: the page must stay.
			continue
		}
		if !anyOldIn {
			// No update removed a covered value, so whatever justified
			// indexing the page is still there.
			continue
		}
		// Some covered value was overwritten and nothing covered was
		// written: only a full inspection of the page can tell whether it
		// still holds a value in [a, b].
		st.PagesScanned++
		if s := storage.ScanFilter(pg, a, b); s.Count > 0 {
			continue
		}
		slot := int(vpn - v.BaseVPN())
		res, err := v.RemovePageAt(slot)
		if err != nil {
			return err
		}
		bm.Remove(res.FreedVPN)
		if res.MovedFilePage >= 0 {
			bm.Add(res.MovedToVPN, res.MovedFilePage)
		}
		st.PagesRemoved++
	}
	return nil
}
