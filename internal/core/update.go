package core

import (
	"fmt"
	"sort"
	"time"

	"github.com/asv-db/asv/internal/procmaps"
	"github.com/asv-db/asv/internal/storage"
	"github.com/asv-db/asv/internal/view"
	"github.com/asv-db/asv/internal/vmsim"
)

// Update is one element of an update batch (§2.4): row r was overwritten,
// Old being the value replaced and New the value written.
type Update struct {
	Row int
	Old uint64
	New uint64
}

// UpdateStats reports the cost split of one alignment run — exactly the
// quantities Figure 7 plots: maps-parsing time vs view-update time, and
// the number of physical pages added to and removed from the views.
type UpdateStats struct {
	BatchSize  int // updates in the raw batch
	NetUpdates int // after last-write-per-row squashing
	DirtyPages int // distinct physical pages touched

	ParseDuration time.Duration // RenderMaps + Parse + BuildBimap (§2.5)
	AlignDuration time.Duration // per-view alignment (§2.4)
	MapsBytes     int           // size of the parsed maps file
	MapsLines     int           // mappings in it

	PagesAdded   int // view pages mapped by case (1)
	PagesRemoved int // view pages unmapped by case (2)
	PagesScanned int // full-page rescans required by case (2)
}

// Update writes newVal to row through the full view and buffers the
// (row, old, new) triple for the next FlushUpdates. This is the paper's
// model: updates happen through the full view immediately; partial views
// are realigned in batches (§2.4). Update takes the engine's write lock:
// a write must never land on a page a concurrent scan is reading.
func (e *Engine) Update(row int, newVal uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	old, err := e.col.SetValue(row, newVal)
	if err != nil {
		return err
	}
	e.pending = append(e.pending, Update{Row: row, Old: old, New: newVal})
	e.stats.updatesBuffered.Add(1)
	return nil
}

// PendingUpdates returns the number of buffered updates.
func (e *Engine) PendingUpdates() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.pending)
}

// FlushUpdates aligns all partial views with the buffered update batch and
// clears the buffer, holding the write lock for the whole alignment.
func (e *Engine) FlushUpdates() (UpdateStats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.flushLocked()
}

// flushLocked is FlushUpdates for callers already holding the write lock.
func (e *Engine) flushLocked() (UpdateStats, error) {
	batch := e.pending
	e.pending = nil
	return e.alignLocked(batch)
}

// AlignViews realigns every partial view with an update batch whose writes
// have already been applied to the column. It implements §2.4 end to end:
// last-write-per-row squashing, grouping by physical page, one maps-file
// parse into a bimap (§2.5), and the per-page add/keep/remove decision for
// each view. Alignment rewires view pages in place, so it holds the write
// lock for the whole batch.
func (e *Engine) AlignViews(batch []Update) (UpdateStats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.alignLocked(batch)
}

// alignLocked is the AlignViews body; the caller holds the write lock.
func (e *Engine) alignLocked(batch []Update) (UpdateStats, error) {
	st := UpdateStats{BatchSize: len(batch)}
	e.stats.updateBatches.Add(1)
	if len(batch) == 0 {
		return st, nil
	}
	// Invalidate in-flight candidates even when the set is empty: a
	// candidate scanned before this batch is not a set member yet, so
	// this alignment cannot reach it, and no later flush will carry the
	// batch again.
	e.gen++
	if e.set.Len() == 0 {
		return st, nil
	}

	// Step 1 (§2.4): filter the sequence so only the last update per row
	// remains, paired with the first overwritten value: u0=(r,a,b),
	// u1=(r,c,d) collapse to (r,a,d).
	squashed := make(map[int]Update, len(batch))
	for _, u := range batch {
		if prev, ok := squashed[u.Row]; ok {
			prev.New = u.New
			squashed[u.Row] = prev
		} else {
			squashed[u.Row] = u
		}
	}
	st.NetUpdates = len(squashed)

	// Step 2: group by modified physical page.
	byPage := make(map[int][]Update)
	for _, u := range squashed {
		p := u.Row / storage.ValuesPerPage
		byPage[p] = append(byPage[p], u)
	}
	st.DirtyPages = len(byPage)
	pages := make([]int, 0, len(byPage))
	for p := range byPage {
		pages = append(pages, p)
	}
	sort.Ints(pages) // deterministic alignment order

	// Step 3 (§2.5): parse the maps file once and materialize the
	// page-wise bidirectional map.
	t0 := time.Now()
	mapsTxt := e.col.Space().RenderMaps()
	st.MapsBytes = len(mapsTxt)
	ms, err := procmaps.Parse(mapsTxt)
	if err != nil {
		return st, fmt.Errorf("core: parsing maps: %w", err)
	}
	st.MapsLines = len(ms)
	bm := procmaps.BuildBimap(ms, e.col.File().Inode(), vmsim.PageSize)
	st.ParseDuration = time.Since(t0)

	// Step 4 (§2.4): align each partial view, maintaining the bimap from
	// user space as pages are rewired.
	t1 := time.Now()
	for _, v := range e.set.Partials() {
		if err := e.alignView(v, pages, byPage, bm, &st); err != nil {
			return st, err
		}
	}
	st.AlignDuration = time.Since(t1)
	e.stats.pagesAdded.Add(uint64(st.PagesAdded))
	e.stats.pagesRemoved.Add(uint64(st.PagesRemoved))
	return st, nil
}

// alignView applies the §2.4 decision procedure for one partial view
// covering [a, b].
func (e *Engine) alignView(v *view.View, pages []int, byPage map[int][]Update,
	bm *procmaps.Bimap, st *UpdateStats) error {
	a, b := v.Lo(), v.Hi()
	for _, pageID := range pages {
		ups := byPage[pageID]
		anyNewIn, anyOldIn := false, false
		for _, u := range ups {
			if u.New >= a && u.New <= b {
				anyNewIn = true
			}
			if u.Old >= a && u.Old <= b {
				anyOldIn = true
			}
		}

		vpn, indexed := bm.MappedIn(int64(pageID), v.BaseVPN(), v.EndMappedVPN())
		if !indexed {
			// Case (1): not indexed. Index it iff some update brought a
			// value of this page into [a, b]; an "unused" virtual page is
			// available thanks to creation over-allocation.
			if anyNewIn {
				newVPN, err := v.AppendPage(pageID)
				if err != nil {
					return err
				}
				bm.Add(newVPN, int64(pageID))
				st.PagesAdded++
			}
			continue
		}

		// Case (2): currently indexed.
		if anyNewIn {
			// A new value falls into the range: the page must stay.
			continue
		}
		if !anyOldIn {
			// No update removed a covered value, so whatever justified
			// indexing the page is still there.
			continue
		}
		// Some covered value was overwritten and nothing covered was
		// written: only a full inspection of the page can tell whether it
		// still holds a value in [a, b].
		pg, err := e.col.PageBytes(pageID)
		if err != nil {
			return err
		}
		st.PagesScanned++
		if s := storage.ScanFilter(pg, a, b); s.Count > 0 {
			continue
		}
		slot := int(vpn - v.BaseVPN())
		res, err := v.RemovePageAt(slot)
		if err != nil {
			return err
		}
		bm.Remove(res.FreedVPN)
		if res.MovedFilePage >= 0 {
			bm.Add(res.MovedToVPN, res.MovedFilePage)
		}
		st.PagesRemoved++
	}
	return nil
}
