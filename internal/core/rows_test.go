package core

import (
	"testing"

	"github.com/asv-db/asv/internal/dist"
	"github.com/asv-db/asv/internal/viewset"
	"github.com/asv-db/asv/internal/xrand"
)

func TestRowSetBasics(t *testing.T) {
	rs := NewRowSet(100)
	if rs.Len() != 0 || rs.Cap() != 100 {
		t.Fatalf("fresh set: Len=%d Cap=%d", rs.Len(), rs.Cap())
	}
	rs.Add(5)
	rs.Add(50)
	rs.Add(99)
	if !rs.Contains(50) || rs.Contains(51) {
		t.Fatal("Contains wrong")
	}
	if got := rs.Rows(); len(got) != 3 || got[0] != 5 || got[2] != 99 {
		t.Fatalf("Rows = %v", got)
	}
	visited := 0
	rs.ForEach(func(int) bool { visited++; return visited < 2 })
	if visited != 2 {
		t.Fatalf("ForEach early stop visited %d", visited)
	}

	other := NewRowSet(100)
	other.Add(50)
	other.Add(60)
	u := NewRowSet(100)
	u.Union(rs)
	u.Union(other)
	if u.Len() != 4 {
		t.Fatalf("union Len = %d", u.Len())
	}
	rs.Intersect(other)
	if rs.Len() != 1 || !rs.Contains(50) {
		t.Fatalf("intersect = %v", rs.Rows())
	}
}

func TestQueryRowsMatchesGroundTruth(t *testing.T) {
	col := testColumn(t, 96, dist.NewSine(17, 0, 1_000_000, 12))
	e := newEngine(t, col, syncConfig())
	rng := xrand.New(4)
	for i := 0; i < 25; i++ {
		w := rng.Uint64n(200_000) + 1
		lo := rng.Uint64n(1_000_000 - w)
		hi := lo + w

		rs, res, err := e.QueryRows(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		// Ground truth via direct column reads.
		want := map[int]bool{}
		for r := 0; r < col.Rows(); r++ {
			v, _ := col.Value(r)
			if v >= lo && v <= hi {
				want[r] = true
			}
		}
		if rs.Len() != len(want) || res.Count != len(want) {
			t.Fatalf("query %d: rows=%d count=%d, want %d", i, rs.Len(), res.Count, len(want))
		}
		rs.ForEach(func(row int) bool {
			if !want[row] {
				t.Fatalf("query %d: spurious row %d", i, row)
			}
			return true
		})
	}
	// Row queries adapt views too.
	if e.ViewSet().Len() == 0 {
		t.Fatal("QueryRows created no views")
	}
}

func TestQueryAggregate(t *testing.T) {
	col := testColumn(t, 64, dist.NewUniform(23, 10, 1_000_000))
	e := newEngine(t, col, syncConfig())
	lo, hi := uint64(100_000), uint64(500_000)

	agg, res, err := e.QueryAggregate(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	var wantMin, wantMax uint64
	wantCount, wantSum := 0, uint64(0)
	for r := 0; r < col.Rows(); r++ {
		v, _ := col.Value(r)
		if v < lo || v > hi {
			continue
		}
		if wantCount == 0 || v < wantMin {
			wantMin = v
		}
		if wantCount == 0 || v > wantMax {
			wantMax = v
		}
		wantCount++
		wantSum += v
	}
	if agg.Count != wantCount || agg.Sum != wantSum || agg.Min != wantMin || agg.Max != wantMax {
		t.Fatalf("aggregate %+v, want count=%d sum=%d min=%d max=%d",
			agg, wantCount, wantSum, wantMin, wantMax)
	}
	if res.Count != wantCount {
		t.Fatalf("res.Count = %d", res.Count)
	}
	mean := agg.Mean()
	if mean < float64(wantMin) || mean > float64(wantMax) {
		t.Fatalf("mean %v outside [min,max]", mean)
	}
	if (Aggregate{}).Mean() != 0 {
		t.Fatal("empty mean != 0")
	}
}

func TestQueryRowsBaselineMode(t *testing.T) {
	col := testColumn(t, 32, dist.NewUniform(3, 0, 1000))
	e := newEngine(t, col, BaselineConfig())
	rs, res, err := e.QueryRows(100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !res.UsedFullView || rs.Len() != res.Count {
		t.Fatalf("baseline rows: %+v len=%d", res, rs.Len())
	}
}

func TestCostBasedRoutingPrefersCheaperPlan(t *testing.T) {
	col := testColumn(t, 256, dist.NewLinear(9, 0, 1_000_000, 256))
	cfg := syncConfig()
	cfg.Mode = MultiView
	cfg.MultiViewPolicy = CostBased
	e := newEngine(t, col, cfg)

	// A cheap single view covering the whole query...
	single, err := e.CreateView(100_000, 400_000)
	if err != nil {
		t.Fatal(err)
	}
	single.SetRange(100_000, 400_000)
	// ...versus two wide, expensive views that also cover it.
	wide1, err := e.CreateView(0, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	wide1.SetRange(0, 300_000)
	wide2, err := e.CreateView(250_000, 900_000)
	if err != nil {
		t.Fatal(err)
	}
	wide2.SetRange(250_000, 900_000)

	res, err := e.Query(150_000, 350_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.ViewsUsed != 1 {
		t.Fatalf("cost-based used %d views, want the single cheap view", res.ViewsUsed)
	}

	// PreferMulti takes the stitched plan for the same query.
	cfg2 := syncConfig()
	cfg2.Mode = MultiView
	cfg2.MultiViewPolicy = PreferMulti
	e2 := newEngine(t, col, cfg2)
	for _, r := range [][2]uint64{{0, 300_000}, {250_000, 900_000}} {
		v, err := e2.CreateView(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		v.SetRange(r[0], r[1])
	}
	res2, err := e2.Query(150_000, 350_000)
	if err != nil {
		t.Fatal(err)
	}
	if res2.ViewsUsed != 2 {
		t.Fatalf("prefer-multi used %d views, want 2", res2.ViewsUsed)
	}
	// Both must be correct, of course.
	wantCount, wantSum, _ := col.FullScan(150_000, 350_000)
	if res.Count != wantCount || res.Sum != wantSum || res2.Count != wantCount || res2.Sum != wantSum {
		t.Fatal("policies disagree with ground truth")
	}
}

func TestEvictLRUKeepsAdapting(t *testing.T) {
	col := testColumn(t, 128, dist.NewLinear(13, 0, 1_000_000, 128))
	cfg := syncConfig()
	cfg.MaxViews = 3
	cfg.Limit = EvictLRU
	e := newEngine(t, col, cfg)

	rng := xrand.New(2)
	evictions := false
	for i := 0; i < 30; i++ {
		lo := rng.Uint64n(950_000)
		res, err := e.Query(lo, lo+20_000)
		if err != nil {
			t.Fatal(err)
		}
		if res.Decision == viewset.Evicted {
			evictions = true
		}
		wantCount, wantSum, _ := col.FullScan(lo, lo+20_000)
		if res.Count != wantCount || res.Sum != wantSum {
			t.Fatalf("query %d wrong under eviction", i)
		}
	}
	if !evictions {
		t.Fatal("no LRU evictions happened at MaxViews=3 over 30 queries")
	}
	if e.ViewSet().Frozen() {
		t.Fatal("EvictLRU must never freeze the set")
	}
	if e.ViewSet().Len() > 3 {
		t.Fatalf("view count %d exceeds limit", e.ViewSet().Len())
	}
	if e.Stats().ViewsEvicted == 0 {
		t.Fatal("eviction counter not incremented")
	}
}

func TestPolicyValidation(t *testing.T) {
	col := testColumn(t, 8, dist.NewUniform(1, 0, 10))
	cfg := DefaultConfig()
	cfg.MultiViewPolicy = MultiViewPolicy(42)
	if _, err := NewEngine(col, cfg); err == nil {
		t.Fatal("bad multi-view policy accepted")
	}
	cfg = DefaultConfig()
	cfg.Limit = LimitPolicy(42)
	if _, err := NewEngine(col, cfg); err == nil {
		t.Fatal("bad limit policy accepted")
	}
	if PreferMulti.String() == "" || CostBased.String() == "" || MultiViewPolicy(9).String() == "" {
		t.Fatal("policy String broken")
	}
}
