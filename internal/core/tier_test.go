package core

import (
	"testing"
	"time"

	"github.com/asv-db/asv/internal/autopilot"
	"github.com/asv-db/asv/internal/dist"
	"github.com/asv-db/asv/internal/storage"
	"github.com/asv-db/asv/internal/vmsim"
)

// tieredConfig returns syncConfig with a second frame tier attached
// (stall accounting only — deterministic tests don't busy-wait).
func tieredConfig(hotFrames int) Config {
	cfg := syncConfig()
	cfg.Tiering = &vmsim.TierConfig{HotFrames: hotFrames, NoStall: true}
	return cfg
}

// TestTieredConfigValidation: negative tier knobs are rejected, a nil or
// disabled config runs single-tier (Engine.TierStats reports ok=false).
func TestTieredConfigValidation(t *testing.T) {
	col := testColumn(t, 8, dist.NewUniform(1, 0, 10))
	bad := tieredConfig(-1)
	if _, err := NewEngine(col, bad); err == nil {
		t.Fatal("negative HotFrames accepted")
	}
	bad = tieredConfig(4)
	bad.Tiering.ColdMultiplier = -2
	if _, err := NewEngine(col, bad); err == nil {
		t.Fatal("negative ColdMultiplier accepted")
	}
	off := syncConfig()
	off.Tiering = &vmsim.TierConfig{} // zero value: tiering off
	e := newEngine(t, testColumn(t, 8, dist.NewUniform(1, 0, 10)), off)
	if _, ok := e.TierStats(); ok {
		t.Fatal("zero-value TierConfig enabled tiering")
	}
	if e.Tier() != nil {
		t.Fatal("zero-value TierConfig attached a tier map")
	}
}

// TestTieredQueryByteIdentical: a tiered engine answers every query
// byte-identically to an untiered twin over the same data — hot, after
// demoting every page, and after the touches promoted pages back. The
// tier only charges accounting; results never move.
func TestTieredQueryByteIdentical(t *testing.T) {
	const pages = 64
	g := func() dist.Generator { return dist.NewSine(9, 0, ccDomain, 8) }
	et := newEngine(t, testColumn(t, pages, g()), tieredConfig(pages/4))
	eu := newEngine(t, testColumn(t, pages, g()), syncConfig())

	check := func(stage string) {
		t.Helper()
		for i := 0; i < 16; i++ {
			lo := uint64(i) * ccDomain / 20
			hi := lo + ccDomain/10
			rt, err := et.Query(lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			ru, err := eu.Query(lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			if rt.Count != ru.Count || rt.Sum != ru.Sum {
				t.Fatalf("%s query %d: tiered (%d,%d) != untiered (%d,%d)",
					stage, i, rt.Count, rt.Sum, ru.Count, ru.Sum)
			}
		}
	}
	check("hot")
	tier := et.Tier()
	for p := 0; p < pages; p++ {
		tier.Demote(p)
	}
	check("cold")
	s, ok := et.TierStats()
	if !ok {
		t.Fatal("TierStats not ok on a tiered engine")
	}
	if s.Demotions == 0 || s.ColdTouches == 0 || s.StallNanos == 0 {
		t.Fatalf("cold scans left no tier trace: %+v", s)
	}
	if s.Promotions == 0 {
		t.Fatalf("touches under budget promoted nothing: %+v", s)
	}
	if s.HotFrames > s.HotBudget {
		t.Fatalf("promote-on-touch overshot the budget: %+v", s)
	}
}

// TestTieredWritePromotes: a write to a demoted page lands it hot
// unconditionally (the COW shadow is a fresh DRAM frame).
func TestTieredWritePromotes(t *testing.T) {
	const pages = 16
	e := newEngine(t, testColumn(t, pages, dist.NewLinear(3, 0, ccDomain, pages)), tieredConfig(2))
	tier := e.Tier()
	for p := 0; p < pages; p++ {
		tier.Demote(p)
	}
	if err := e.Update(5*storage.ValuesPerPage, 42); err != nil {
		t.Fatal(err)
	}
	if _, err := e.FlushUpdates(); err != nil {
		t.Fatal(err)
	}
	if tier.IsCold(5) {
		t.Fatal("written page still cold")
	}
	s, _ := e.TierStats()
	// Hot budget is 2 and 16 pages were cold: the write promoted past the
	// budget — writes are unconditional.
	if s.Promotions == 0 {
		t.Fatalf("write did not promote: %+v", s)
	}
}

// TestTieredAutopilotDemotion drives the pressure feedback end to end:
// hot occupancy over the high watermark makes the next maintenance tick
// demote the coldest unpinned view's pages, while a pinned view's pages
// stay hot.
func TestTieredAutopilotDemotion(t *testing.T) {
	clock := autopilot.NewManualClock(time.Unix(1000, 0))
	maints := make(chan autopilot.MaintainReport, 16)
	ap := quietAutopilot()
	ap.Clock = clock
	ap.MaintainInterval = 100 * time.Millisecond
	ap.OnMaintain = func(r autopilot.MaintainReport) { maints <- r }
	ap.TierHighWater = 0.5
	ap.TierLowWater = 0.25

	cfg := tieredConfig(16)
	cfg.Tiering.NoPromoteOnAccess = true
	cfg.Autopilot = ap
	cfg.MaxViews = 2
	e := newEngine(t, testColumn(t, 64, dist.NewLinear(5, 0, ccDomain, 64)), cfg)
	vs, err := e.CreateViewsOpt([]ViewSpec{
		{Lo: 0, Hi: ccDomain/4 - 1, Pinned: true},
		{Lo: ccDomain / 4, Hi: ccDomain/2 - 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	pinned, demotable := vs[0], vs[1]
	if !pinned.Pinned() || demotable.Pinned() {
		t.Fatalf("pin flags: %v %v", pinned.Pinned(), demotable.Pinned())
	}

	// All 64 pages hot against a budget of 16: occupancy 4.0, pressure
	// saturates at 1 and the duty must fire on the next tick.
	clock.Advance(100 * time.Millisecond)
	rep := <-maints
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if rep.TierPressure != 1 {
		t.Fatalf("TierPressure = %g, want 1", rep.TierPressure)
	}
	ids, err := demotable.PageIDs()
	if err != nil {
		t.Fatal(err)
	}
	if rep.PagesDemoted != len(ids) {
		t.Fatalf("PagesDemoted = %d, want the unpinned view's %d pages", rep.PagesDemoted, len(ids))
	}
	tier := e.Tier()
	for _, id := range ids {
		if !tier.IsCold(int(id)) {
			t.Fatalf("unpinned view's page %d not demoted", id)
		}
	}
	pids, err := pinned.PageIDs()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range pids {
		if tier.IsCold(int(id)) {
			t.Fatalf("pinned view's page %d was demoted", id)
		}
	}
	m := e.Autopilot().Metrics()
	if m.PagesDemoted != uint64(rep.PagesDemoted) {
		t.Fatalf("metrics PagesDemoted = %d, report %d", m.PagesDemoted, rep.PagesDemoted)
	}
}

// TestTieredPressureAcceleratesEviction: simulated memory pressure
// scales the effective ColdTicks down, so a view that a pressure-free
// engine would keep (age 6 < ColdTicks 8) is evicted when the hot tier
// is saturated (effective ColdTicks 4 at full pressure).
func TestTieredPressureAcceleratesEviction(t *testing.T) {
	clock := autopilot.NewManualClock(time.Unix(1000, 0))
	maints := make(chan autopilot.MaintainReport, 16)
	ap := quietAutopilot()
	ap.Clock = clock
	ap.MaintainInterval = 100 * time.Millisecond
	ap.ColdTicks = 8
	ap.OnMaintain = func(r autopilot.MaintainReport) { maints <- r }
	ap.TierHighWater = 0.5
	ap.TierLowWater = 0.25

	cfg := tieredConfig(4) // 64 pages vs budget 4: saturated, pressure 1
	cfg.Autopilot = ap
	cfg.MaxViews = 2
	e := newEngine(t, testColumn(t, 64, dist.NewLinear(5, 0, ccDomain, 64)), cfg)
	if _, err := e.CreateViewsOpt([]ViewSpec{
		{Lo: 0, Hi: ccDomain/4 - 1, Pinned: true},
		{Lo: ccDomain / 2, Hi: 3*ccDomain/4 - 1},
	}); err != nil {
		t.Fatal(err)
	}
	// 6 routed queries inside the pinned view's range: LRU clock reaches
	// 6, the idle view's age is 6 — under the configured ColdTicks of 8,
	// over the pressure-scaled effective 4.
	for i := 0; i < 6; i++ {
		if _, err := e.Query(1000, ccDomain/8); err != nil {
			t.Fatal(err)
		}
	}
	clock.Advance(100 * time.Millisecond)
	rep := <-maints
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if rep.Evicted != 1 {
		t.Fatalf("pressure did not accelerate eviction: %+v", rep)
	}
}
