package core

import (
	"github.com/asv-db/asv/internal/autopilot"
	"github.com/asv-db/asv/internal/obs"
	"github.com/asv-db/asv/internal/view"
)

// This file is the engine side of the autopilot subsystem: the Target
// adapter the pilot drives, the per-view temperature/fragmentation
// export, and the synchronous barriers (Sync) callers use to get
// read-your-writes semantics on top of fire-and-forget updates.

// Autopilot returns the engine's pilot (nil when Config.Autopilot is
// unset) — metrics, flush latencies and the cost model hang off it.
func (e *Engine) Autopilot() *autopilot.Pilot { return e.pilot }

// QueuedUpdates returns the number of writes accepted by Update but not
// yet applied to the column (always 0 without an autopilot; buffered
// applied-but-unaligned updates are PendingUpdates).
func (e *Engine) QueuedUpdates() int {
	if e.pilot == nil {
		return 0
	}
	return e.pilot.Queued()
}

// Sync is the engine's read-your-writes barrier: it applies every write
// accepted so far (draining the autopilot intake, when one runs) and
// aligns all partial views, returning the alignment stats. Without an
// autopilot it is exactly FlushUpdates.
func (e *Engine) Sync() (UpdateStats, error) {
	return e.FlushUpdates()
}

// pilotTarget adapts the Engine to the autopilot.Target interface. Every
// method takes the engine's room lock itself; the pilot never holds an
// engine lock when calling in, so the drain mutex strictly precedes the
// room lock in the lock order.
type pilotTarget struct{ e *Engine }

// ApplyWrites applies a coalesced group of writes in one update-room
// entry — the engine-side group commit that turns lone fire-and-forget
// Updates into a single room turn.
func (t pilotTarget) ApplyWrites(ws []autopilot.Write) (err error) {
	e := t.e
	e.journalDutyBegin(obs.DutyApply)
	defer func() { e.journalDutyEnd(obs.DutyApply, int64(len(ws)), err) }()
	e.mu.UpdateLock()
	defer e.mu.UpdateUnlock()
	for _, w := range ws {
		if err := e.applyWrite(w.Row, w.Value); err != nil {
			return err
		}
	}
	return nil
}

// AlignPending runs §2.4 alignment over the applied-but-unaligned
// updates in one exclusive-room slice.
func (t pilotTarget) AlignPending() error {
	t.e.journalDutyBegin(obs.DutyAlign)
	st, err := t.e.flushApplied()
	t.e.journalDutyEnd(obs.DutyAlign, int64(st.NetUpdates), err)
	return err
}

// ViewTemperatures snapshots the LRU clock and every partial view's
// recency, frequency, size and page-order fragmentation under the scan
// room (temperature reads are concurrent-reader safe; fragmentation
// walks the view's soft-TLB, a pure read).
func (t pilotTarget) ViewTemperatures() (uint64, []autopilot.ViewTemp) {
	e := t.e
	e.mu.RLock()
	defer e.mu.RUnlock()
	clock := e.set.Clock()
	temps := e.set.Temperatures()
	out := make([]autopilot.ViewTemp, 0, len(temps))
	for _, tp := range temps {
		vt := autopilot.ViewTemp{
			Handle:   tp.View,
			LastUsed: tp.LastUsed,
			Uses:     tp.Uses,
			Pages:    tp.View.NumPages(),
			Pinned:   tp.View.Pinned(),
		}
		if frag, err := viewFragmentation(tp.View); err == nil {
			vt.Frag = frag
		}
		out = append(out, vt)
	}
	return clock, out
}

// viewFragmentation measures how far a view's mapped pages have drifted
// from ascending physical order: the fraction of adjacent slot pairs that
// step backwards. Freshly created views map qualifying pages in scan
// order (ascending) and score 0; update alignment appends out-of-order
// pages at the end and compaction moves tail pages into holes, so the
// score grows with churn — and a rebuild resets it, restoring the long
// consecutive runs the §2.3 mapping optimization (and hardware
// prefetching) feeds on.
func viewFragmentation(v *view.View) (float64, error) {
	n := v.NumPages()
	if n < 2 {
		return 0, nil
	}
	ids, err := v.PageIDs()
	if err != nil {
		return 0, err
	}
	backward := 0
	for i := 1; i < len(ids); i++ {
		if ids[i] < ids[i-1] {
			backward++
		}
	}
	return float64(backward) / float64(n-1), nil
}

// EvictViews releases the given cold views in one exclusive-room slice.
// Handles whose view left the set since the temperature snapshot (evicted
// by LRU, replaced, rebuilt) are skipped — the pilot's view of the set is
// advisory, membership is re-validated here.
func (t pilotTarget) EvictViews(handles []any) (int, error) {
	e := t.e
	e.journalDutyBegin(obs.DutyEvict)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		e.journalDutyEnd(obs.DutyEvict, 0, nil)
		return 0, nil
	}
	evicted := 0
	var firstErr error
	for _, h := range handles {
		v, ok := h.(*view.View)
		if !ok || !e.set.Remove(v) {
			continue
		}
		e.journalViewEvent(obs.EvViewExpired, v.Lo(), v.Hi())
		// Drops the set's owner reference; a pinned epoch still routing
		// to the view keeps it mapped until that state drains.
		if err := v.Release(); err != nil && firstErr == nil {
			firstErr = err
		}
		e.stats.viewsExpired.Add(1)
		evicted++
	}
	if evicted > 0 {
		if err := e.publishStateLocked(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	e.journalDutyEnd(obs.DutyEvict, int64(evicted), firstErr)
	return evicted, firstErr
}

// RebuildView rebuilds one fragmented view from the column's current
// contents in its own exclusive-room slice (create first, swap, then
// release — a failed creation leaves the old view serving). The room
// handover between slices lets readers and writers interleave with a
// multi-view maintenance sweep.
func (t pilotTarget) RebuildView(h any) (rebuilt bool, err error) {
	e := t.e
	e.journalDutyBegin(obs.DutyRebuild)
	defer func() {
		work := int64(0)
		if rebuilt {
			work = 1
		}
		e.journalDutyEnd(obs.DutyRebuild, work, err)
	}()
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := h.(*view.View)
	if !ok || e.closed || !e.set.Contains(v) {
		return false, nil
	}
	lo, hi := v.Lo(), v.Hi()
	nv, err := e.createView(lo, hi)
	if err != nil {
		return false, err
	}
	// Rebuilt views keep their declared range (Create may extend it) and
	// their demotion exemption.
	nv.SetRange(lo, hi)
	nv.SetPinned(v.Pinned())
	// In-flight candidates were routed over the old view's pages;
	// invalidate them like RebuildViews does.
	e.gen++
	if !e.set.ReplaceExisting(v, nv) {
		_ = nv.Release() //asv:ignore-err discarding the loser of the replace race is the designed outcome
		return false, nil
	}
	e.stats.viewsRebuilt.Add(1)
	e.journalViewEvent(obs.EvViewRebuilt, lo, hi)
	err = e.releaseView(v)
	if perr := e.publishStateLocked(); perr != nil && err == nil {
		err = perr
	}
	return true, err
}

// TierInfo snapshots the column tier's hot occupancy for the pilot's
// pressure feedback; ok is false on a single-tier engine (the pilot then
// never runs the demotion duty).
func (t pilotTarget) TierInfo() (autopilot.TierInfo, bool) {
	tier := t.e.tier
	if tier == nil {
		return autopilot.TierInfo{}, false
	}
	s := tier.Stats()
	return autopilot.TierInfo{
		HotFrames:  s.HotFrames,
		ColdFrames: s.ColdFrames,
		HotBudget:  s.HotBudget,
	}, true
}

// DemotePages demotes pages of the given views (the pilot passes them
// coldest-first) until maxPages pages moved tier-down. Demotion is pure
// atomics on the tier words, so the scan room suffices: RLock keeps set
// membership and view lifetimes stable while epoch readers keep scanning
// — a reader racing a demotion revalidates through the versioned word
// and retries, it never blocks. Pinned views, the full view and handles
// that left the set are skipped.
func (t pilotTarget) DemotePages(handles []any, maxPages int) (int, error) {
	e := t.e
	if e.tier == nil || maxPages <= 0 {
		return 0, nil
	}
	e.journalDutyBegin(obs.DutyDemote)
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		e.journalDutyEnd(obs.DutyDemote, 0, nil)
		return 0, nil
	}
	demoted := 0
	var firstErr error
	for _, h := range handles {
		if demoted >= maxPages {
			break
		}
		v, ok := h.(*view.View)
		if !ok || v.Pinned() || v.Full() || !e.set.Contains(v) {
			continue
		}
		ids, err := v.PageIDs()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		for _, id := range ids {
			if demoted >= maxPages {
				break
			}
			if e.tier.Demote(int(id)) {
				demoted++
			}
		}
	}
	if demoted > 0 && e.journal != nil {
		e.journal.Record(obs.EvTierDemoteBatch, int64(demoted), int64(maxPages), 0)
	}
	e.journalDutyEnd(obs.DutyDemote, int64(demoted), firstErr)
	return demoted, firstErr
}

// WarmView re-resolves one hot view's soft-TLB in an exclusive-room
// slice (Warm writes view state), returning how many translations were
// cold.
func (t pilotTarget) WarmView(h any) (n int, err error) {
	e := t.e
	e.journalDutyBegin(obs.DutyWarm)
	defer func() { e.journalDutyEnd(obs.DutyWarm, int64(n), err) }()
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := h.(*view.View)
	if !ok || e.closed || !e.set.Contains(v) {
		return 0, nil
	}
	n, err = v.Warm()
	if n > 0 {
		// Warming re-resolved translations (and may have materialized a
		// lazy view): the cached capture no longer matches the view's
		// resolved state, so the next publication must re-capture it.
		e.set.MarkDirty(v)
	}
	return n, err
}
