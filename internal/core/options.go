package core

import (
	"fmt"

	"github.com/asv-db/asv/internal/bitvec"
	"github.com/asv-db/asv/internal/obs"
	"github.com/asv-db/asv/internal/storage"
	"github.com/asv-db/asv/internal/view"
	"github.com/asv-db/asv/internal/viewset"
)

// QueryOptions configures QueryOpt — the single options-based read entry
// point the former Query/QueryParallel/QueryRows/QueryAggregate quartet
// now wraps.
type QueryOptions struct {
	// CollectRows materializes the qualifying row IDs into Answer.Rows.
	CollectRows bool
	// ComputeAggregate computes count/sum/min/max into Answer.Agg.
	ComputeAggregate bool
	// Workers overrides the scan worker count when HasWorkers is set:
	// a positive value is taken literally, zero or negative selects
	// GOMAXPROCS. Unset defers to Config.Parallelism.
	Workers    int
	HasWorkers bool
	// Trace, when non-nil, records a span tree for this one query —
	// state pin, routing, per-view scanning with tier/fault attribution,
	// candidate materialization and the publication tail — into the
	// trace's root span and returns it on Answer.Trace. Nil (the
	// default) keeps the query path allocation-free: every trace site is
	// a nil span test, like Engine.tier. Spans are recorded only by the
	// coordinating goroutine; sharded scan workers never touch the
	// trace.
	Trace *obs.Trace
}

// Answer is the unified result of QueryOpt: the routing telemetry every
// query reports, plus the optional materializations the options asked
// for (nil when not requested).
type Answer struct {
	QueryResult
	Rows *RowSet
	Agg  *Aggregate
	// Trace echoes QueryOptions.Trace with the recorded span tree (nil
	// when tracing was off).
	Trace *obs.Trace
}

// QueryOpt answers the inclusive range query [lo, hi] according to the
// options, creating and maintaining partial views as a side product
// (Listing 1) exactly like Query.
//
// Reads are epoch-routed and lock-free: the query pins the current
// immutable engine state (published via atomic pointer), routes and
// scans against its capture, and never enters the room lock's scan room
// — alignment, rebuilds and autopilot lifecycle work holding the
// exclusive room no longer stall readers. Updates pending at entry are
// flushed first (§2.4: views must reflect every applied write before
// answering); a write that lands after the flush is serialized after
// this query and becomes visible with the next published state.
func (e *Engine) QueryOpt(lo, hi uint64, opt QueryOptions) (Answer, error) {
	if lo > hi {
		lo, hi = hi, lo
	}
	e.stats.queries.Add(1)
	if e.cfg.RoomLockReads {
		return e.queryOptRoomPath(lo, hi, opt)
	}
	if opt.Trace != nil {
		return e.queryOptTraced(lo, hi, opt)
	}
	if !e.cfg.Adaptive {
		if err := e.flushPendingForRead(); err != nil {
			return Answer{}, err
		}
		st := e.acquireState()
		defer e.releaseState(st)
		ans, err := e.answerState(st, lo, hi, opt, false)
		e.journalTierPromotions()
		return ans, err
	}
	if err := e.flushPendingForRead(); err != nil {
		return Answer{}, err
	}
	st := e.acquireState()
	ans, cand, err := e.answerStateAdapt(st, lo, hi, opt)
	gen := st.gen
	e.releaseState(st)
	if err != nil {
		return ans, err
	}
	err = e.finishAdaptive(&ans, cand, gen)
	e.journalTierPromotions()
	return ans, err
}

// finishAdaptive runs the shared tail of every adaptive read path:
// publish the candidate the pinned scan built (if any) under the
// exclusive room and apply the retention decision's side effects to the
// answer. Epoch, room-lock and snapshot-adaptive reads all end here, so
// the publication protocol cannot silently diverge between them.
func (e *Engine) finishAdaptive(ans *Answer, cand *view.View, gen uint64) error {
	if cand == nil {
		return nil
	}
	dec, displaced := e.publishCandidate(cand, gen)
	ans.CandidateBuilt = true
	ans.Decision = dec
	return e.applyDecision(dec, cand, displaced)
}

// queryOptRoomPath is the legacy read path behind Config.RoomLockReads:
// queries enter the scan-shared room like they did before epoch routing,
// stalling whenever alignment or lifecycle work holds the exclusive
// room. Answers and side effects are identical — the `snapshot` bench
// panel keeps this path around to measure what the redesign bought.
func (e *Engine) queryOptRoomPath(lo, hi uint64, opt QueryOptions) (Answer, error) {
	e.mu.RLock()
	for e.pendingCount.Load() > 0 {
		e.mu.RUnlock()
		e.mu.Lock()
		// Re-check under the exclusive room: a racing query may have
		// flushed the same batch first.
		var err error
		if e.pendingCount.Load() > 0 {
			_, err = e.flushLocked()
		}
		e.mu.Unlock()
		if err != nil {
			return Answer{}, err
		}
		e.mu.RLock()
	}
	if !e.cfg.Adaptive {
		defer e.mu.RUnlock()
		st := e.acquireState()
		defer e.releaseState(st)
		return e.answerState(st, lo, hi, opt, false)
	}
	st := e.acquireState()
	ans, cand, err := e.answerStateAdapt(st, lo, hi, opt)
	gen := st.gen
	e.releaseState(st)
	e.mu.RUnlock()
	if err != nil {
		return ans, err
	}
	return ans, e.finishAdaptive(&ans, cand, gen)
}

// flushPendingForRead flushes the buffered update batch, if any, so the
// next published state reflects every applied write. One pass suffices:
// whatever was buffered at entry is drained and published; a write
// racing in afterwards is serialized after this reader.
func (e *Engine) flushPendingForRead() error {
	if e.pendingCount.Load() == 0 {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.pendingCount.Load() == 0 {
		return nil
	}
	_, err := e.flushLocked()
	return err
}

// answerState answers [lo, hi] against a pinned state without adaptive
// side effects — the snapshot and baseline read path. countQuery is set
// by callers that did not already bump the query counter (the Snapshot
// handle); Engine.QueryOpt counts at its own entry.
func (e *Engine) answerState(st *engineState, lo, hi uint64, opt QueryOptions, countQuery bool) (Answer, error) {
	if lo > hi {
		lo, hi = hi, lo
	}
	if countQuery {
		e.stats.queries.Add(1)
	}
	var ans Answer
	ans.Trace = opt.Trace
	collect := e.buildCollect(lo, hi, opt, &ans)
	workers := e.resolveOptWorkers(opt)
	res, _, err := e.scanState(st, lo, hi, collect, workers, false, traceRoot(opt))
	ans.QueryResult = res
	if err != nil {
		return ans, err
	}
	return ans, sealAnswer(&ans)
}

// resolveOptWorkers maps the options' worker override (or its absence)
// to the effective parallelism knob value.
func (e *Engine) resolveOptWorkers(opt QueryOptions) int {
	if !opt.HasWorkers {
		return resolveWorkers(e.cfg.Parallelism)
	}
	if opt.Workers <= 0 {
		return resolveWorkers(-1)
	}
	return resolveWorkers(opt.Workers)
}

// buildCollect assembles the optional materializations into one
// page-collect callback (nil when nothing was requested) plus the
// finisher that seals the Answer after the scan.
func (e *Engine) buildCollect(lo, hi uint64, opt QueryOptions, ans *Answer) func(uint64, []byte) {
	if !opt.CollectRows && !opt.ComputeAggregate {
		return nil
	}
	if opt.CollectRows {
		ans.Rows = NewRowSet(e.col.Rows())
	}
	if opt.ComputeAggregate {
		ans.Agg = &Aggregate{}
	}
	rs, agg := ans.Rows, ans.Agg
	return func(pid uint64, pg []byte) {
		base := int(pid) * storage.ValuesPerPage
		storage.CollectMatches(pg, lo, hi, func(slot int, v uint64) {
			if rs != nil {
				rs.Add(base + slot)
			}
			if agg != nil {
				if agg.Count == 0 || v < agg.Min {
					agg.Min = v
				}
				if agg.Count == 0 || v > agg.Max {
					agg.Max = v
				}
				agg.Count++
			}
		})
	}
}

// sealAnswer finalizes the aggregate after the scan: the filtering pass
// and the collecting pass must agree — captured pages are frozen for the
// state's lifetime, so a drift can only mean a kernel bug.
func sealAnswer(ans *Answer) error {
	if ans.Agg == nil {
		return nil
	}
	ans.Agg.Sum = ans.Sum
	if ans.Agg.Count != ans.Count {
		return fmt.Errorf("core: aggregate drift: %d != %d", ans.Agg.Count, ans.Count)
	}
	return nil
}

// answerStateAdapt runs the full Listing-1 path against a pinned state:
// route, scan, materialize options, and build the candidate view for the
// caller to publish under the exclusive room.
func (e *Engine) answerStateAdapt(st *engineState, lo, hi uint64, opt QueryOptions) (Answer, *view.View, error) {
	var ans Answer
	ans.Trace = opt.Trace
	collect := e.buildCollect(lo, hi, opt, &ans)
	workers := e.resolveOptWorkers(opt)
	res, cand, err := e.scanState(st, lo, hi, collect, workers, true, traceRoot(opt))
	ans.QueryResult = res
	if err != nil {
		return ans, cand, err
	}
	if err := sealAnswer(&ans); err != nil {
		if cand != nil {
			_ = cand.Release() //asv:ignore-err discarding the candidate after a seal error; that error is returned
		}
		return ans, nil, err
	}
	return ans, cand, nil
}

// routeState returns the capture-side source views for [lo, hi]
// according to the configured mode and multi-view policy — the epoch
// counterpart of the live-set routing of §2.1.
func (e *Engine) routeState(snap *viewset.Snapshot, lo, hi uint64) []*viewset.SnapView {
	if e.cfg.Mode != MultiView {
		return []*viewset.SnapView{snap.RouteSingle(lo, hi)}
	}
	multi := snap.RouteMulti(lo, hi)
	if multi == nil {
		return []*viewset.SnapView{snap.RouteSingle(lo, hi)}
	}
	if e.cfg.MultiViewPolicy == PreferMulti {
		// The paper's current policy: use multiple views whenever they
		// cover the range, "instead of directing the query to a single
		// (potentially larger) view".
		return multi
	}
	// CostBased — compare the cover's total page count (an upper bound:
	// shared pages are deduplicated at scan time) against the cheapest
	// single covering view and take the cheaper plan.
	single := snap.RouteSingle(lo, hi)
	coverPages := 0
	for _, v := range multi {
		coverPages += v.NumPages()
	}
	if single.NumPages() <= coverPages {
		return []*viewset.SnapView{single}
	}
	return multi
}

// scanState is the pinned-state body of a routed query: route over the
// capture, scan every source (through the parallel kernel when workers >
// 1), and — when adapt is set and the capture permits — build the
// candidate view from query-private state for the caller to publish.
// Nothing here reads live view or set fields, which is what lets any
// number of scans overlap alignment, rebuilds and retirement.
func (e *Engine) scanState(st *engineState, lo, hi uint64, collect func(uint64, []byte), workers int, adapt bool, tsp *obs.Span) (QueryResult, *view.View, error) {
	if !e.cfg.Adaptive {
		res, err := e.fullScanState(st, lo, hi, collect, workers, tsp)
		return res, nil, err
	}
	snap := st.snap
	route := tsp.Child("route")
	sources := e.routeState(snap, lo, hi)
	res := QueryResult{ViewsUsed: len(sources)}
	for _, sv := range sources {
		if sv.Full() {
			res.UsedFullView = true
			e.stats.fullViewQueries.Add(1)
		}
	}
	if route != nil {
		route.SetAttr("views", int64(len(sources)))
		if res.UsedFullView {
			route.SetAttr("full_view", 1)
		}
		route.Finish()
	}
	scanSp := tsp.Child("scan")
	tierBase, mapBase := e.traceBaselines(scanSp)
	var processed *bitvec.Vector
	if len(sources) > 1 {
		processed = e.getProcessed()
		defer e.putProcessed(processed)
	}
	var builder *view.Builder
	// Candidate construction keys off the capture: a frozen capture or a
	// state published by Close skips building rather than mmap-and-
	// release on every query (stale decisions are re-checked at
	// publication anyway).
	if adapt && !snap.Frozen() && !st.closed {
		var err error
		builder, err = view.NewBuilder(e.col, e.cfg.Create, e.mapper)
		if err != nil {
			return res, nil, err
		}
	}
	ext := view.NewRangeExtender(lo, hi)
	filter := e.pageFilter(lo, hi)
	var emit func(pid uint64, pg []byte)
	if collect != nil || builder != nil {
		emit = func(pid uint64, pg []byte) {
			if collect != nil {
				collect(pid, pg)
			}
			if builder != nil {
				builder.AddPage(int(pid))
			}
		}
	}
	for _, sv := range sources {
		n := sv.NumPages()
		var vsp *obs.Span
		var vspBefore int
		if scanSp != nil {
			vspBefore = res.PagesScanned
			vsp = scanSp.Child("view")
			vsp.SetAttr("lo", int64(sv.Lo()))
			vsp.SetAttr("hi", int64(sv.Hi()))
			vsp.SetAttr("tlb_pages", int64(n))
			if sv.Lazy() {
				vsp.SetAttr("lazy", 1)
			}
		}
		fetch := func(i int) ([]byte, error) { return sv.PageBytes(i), nil }
		if processed != nil {
			if workers <= 1 {
				// Serial multi-view scan: keep dedup and filter fused in
				// one allocation-free pass (the paper's hot path).
				for i := 0; i < n; i++ {
					pg := sv.PageBytes(i)
					pid := storage.PageID(pg)
					if processed.TestAndSet(int(pid)) {
						continue
					}
					s := filter(pg)
					res.PagesScanned++
					if s.Count == 0 {
						ext.ObserveExcluded(s)
						continue
					}
					res.Count += s.Count
					res.Sum += s.Sum
					if emit != nil {
						emit(pid, pg)
					}
				}
				if vsp != nil {
					vsp.SetAttr("pages_scanned", int64(res.PagesScanned-vspBefore))
					vsp.Finish()
				}
				continue
			}
			// Sharded multi-view scan: resolve this source's
			// not-yet-processed pages in scan order before splitting —
			// TestAndSet stays single-threaded (bitvec is not atomic).
			refs := make([][]byte, 0, n)
			for i := 0; i < n; i++ {
				pg := sv.PageBytes(i)
				if processed.TestAndSet(int(storage.PageID(pg))) {
					continue
				}
				refs = append(refs, pg)
			}
			n = len(refs)
			fetch = func(i int) ([]byte, error) { return refs[i], nil }
		}
		qual, excl, err := e.scanPagesAdaptive(n, workers, lo, hi, fetch, emit)
		if err != nil {
			if builder != nil {
				_ = builder.Abort() //asv:ignore-err aborting the candidate after a scan error; that error is returned
			}
			return res, nil, err
		}
		res.PagesScanned += n
		res.Count += qual.Count
		res.Sum += qual.Sum
		ext.ObserveExcluded(excl)
		if vsp != nil {
			vsp.SetAttr("pages_scanned", int64(res.PagesScanned-vspBefore))
			vsp.Finish()
		}
	}
	e.stats.pagesScanned.Add(uint64(res.PagesScanned))
	if scanSp != nil {
		e.finishScanSpan(scanSp, &res, tierBase, mapBase)
	}

	if builder == nil {
		return res, nil, nil
	}
	cLo, cHi := ext.Range()
	srcLo, srcHi := snap.CoveredInterval(sources, lo, hi)
	if cLo < srcLo {
		cLo = srcLo
	}
	if cHi > srcHi {
		cHi = srcHi
	}
	mat := tsp.Child("materialize")
	cand, err := builder.Finish(cLo, cHi)
	mat.Finish()
	if err != nil {
		return res, nil, err
	}
	return res, cand, nil
}

// fullScanState answers [lo, hi] from the state's captured full view —
// the baseline path. The same page-sharded kernel serves aggregates and
// collecting callers; the autopilot's cost model picks the fan-out and
// is fed the observed wall time exactly like the routed path.
func (e *Engine) fullScanState(st *engineState, lo, hi uint64, collect func(uint64, []byte), workers int, tsp *obs.Span) (QueryResult, error) {
	res := QueryResult{ViewsUsed: 1, UsedFullView: true}
	full := st.snap.Full()
	n := full.NumPages()
	scanSp := tsp.Child("scan")
	tierBase, mapBase := e.traceBaselines(scanSp)
	if scanSp != nil {
		scanSp.SetAttr("tlb_pages", int64(n))
	}
	fetch := func(i int) ([]byte, error) { return full.PageBytes(i), nil }
	var emit func(pid uint64, pg []byte)
	if collect != nil {
		emit = collect
	}
	qual, _, err := e.scanPagesAdaptive(n, workers, lo, hi, fetch, emit)
	if err != nil {
		return res, err
	}
	res.Count = qual.Count
	res.Sum = qual.Sum
	res.PagesScanned = n
	e.stats.pagesScanned.Add(uint64(n))
	e.stats.fullViewQueries.Add(1)
	if scanSp != nil {
		e.finishScanSpan(scanSp, &res, tierBase, mapBase)
	}
	return res, nil
}
