package core

import (
	"github.com/asv-db/asv/internal/obs"
	"github.com/asv-db/asv/internal/view"
	"github.com/asv-db/asv/internal/viewset"
)

// QueryResult reports the answer to a range query together with the
// routing and adaptivity telemetry the paper's figures plot (scanned
// pages, Fig. 4; considered views, Fig. 5).
type QueryResult struct {
	Count int    // qualifying values
	Sum   uint64 // wrapping sum of qualifying values

	PagesScanned int  // physical pages read
	ViewsUsed    int  // views routed to
	UsedFullView bool // whether the full view was among them

	// CandidateBuilt reports whether a candidate view was constructed
	// alongside this query; Decision is what became of it.
	CandidateBuilt bool
	Decision       viewset.Decision
}

// Query answers the inclusive range query [lo, hi], creating and
// maintaining partial views as a side product (Listing 1). It is a thin
// wrapper over QueryOpt with no options: scan work uses
// Config.Parallelism page-sharded workers (default: serial), and answer,
// telemetry and adaptive side effects are identical to that call.
//
// If updates are pending (buffered via Update but not yet flushed), the
// query flushes them first: partial views must reflect all updates before
// they may answer queries (§2.4), and returning stale answers is never
// acceptable. Callers that want update batching simply issue updates in
// runs between queries — exactly the paper's model.
//
// Query is safe for any number of concurrent callers. Routed reads are
// epoch-based and lock-free: each query pins the current published
// engine state and scans its immutable capture, so exclusive alignment
// and maintenance work never stall readers (see QueryOpt).
func (e *Engine) Query(lo, hi uint64) (QueryResult, error) {
	ans, err := e.QueryOpt(lo, hi, QueryOptions{})
	return ans.QueryResult, err
}

// QueryParallel answers [lo, hi] like Query but scans with the given
// number of page-sharded workers (<= 0 selects GOMAXPROCS), overriding
// Config.Parallelism for this query. It is a thin wrapper over QueryOpt
// with the Workers option. The answer — and every adaptive side effect,
// including the candidate view's page set — is identical to the serial
// Query: shards reduce in page order with commutative aggregates.
func (e *Engine) QueryParallel(lo, hi uint64, workers int) (QueryResult, error) {
	ans, err := e.QueryOpt(lo, hi, QueryOptions{Workers: workers, HasWorkers: true})
	return ans.QueryResult, err
}

// applyDecision performs the side effects of a retention decision:
// releasing discarded candidates, displaced views, and evicted views, and
// updating counters. A displaced view left the live set with the state
// that published the decision: readers admitted later route the new
// capture, and every older state that can still route to it holds its own
// reference, so the release here only drops the set's owner reference —
// the unmap happens when the last pinned epoch drains.
func (e *Engine) applyDecision(dec viewset.Decision, cand, displaced *view.View) error {
	switch dec {
	case viewset.Inserted:
		e.stats.viewsCreated.Add(1)
		e.journalViewEvent(obs.EvViewInserted, cand.Lo(), cand.Hi())
	case viewset.Replaced:
		e.stats.viewsReplaced.Add(1)
		e.journalViewEvent(obs.EvViewReplaced, cand.Lo(), cand.Hi())
		return displaced.Release()
	case viewset.Evicted:
		e.stats.viewsCreated.Add(1)
		e.stats.viewsEvicted.Add(1)
		e.journalViewEvent(obs.EvViewEvicted, displaced.Lo(), displaced.Hi())
		return displaced.Release()
	default:
		e.stats.viewsDiscarded.Add(1)
		e.journalViewEvent(obs.EvViewDiscarded, cand.Lo(), cand.Hi())
		return cand.Release()
	}
	return nil
}

// publishCandidate takes the exclusive room and runs the retention
// decision for a candidate built during a pinned-state scan that observed
// generation gen. Between the scan and this call an update alignment,
// rebuild or close may have run, in which case the candidate's page set
// is stale — alignment only walks set members, so publishing it now would
// install a view no flush will ever repair — or the set is gone entirely
// (Close must not regrow, and must not leak, late candidates). Such
// candidates are reported DiscardedStale for the caller to release
// instead of being published. A decision that mutates the set publishes
// the successor state, making the new view routable by later readers.
func (e *Engine) publishCandidate(cand *view.View, gen uint64) (viewset.Decision, *view.View) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed || e.gen != gen {
		return viewset.DiscardedStale, nil
	}
	dec, displaced := e.set.Consider(cand)
	switch dec {
	case viewset.DiscardedLimit:
		// The set just froze — a set-state transition readers must
		// observe, or every later query would keep building (and
		// discarding) candidates. A failed capture is tolerable here:
		// the freeze itself stands, publication catches up with the
		// next successful mutation.
		_ = e.publishStateLocked() //asv:ignore-err a failed publication is counted in Stats.PublishErrors and the next successful mutation republishes
	case viewset.Inserted, viewset.Replaced, viewset.Evicted:
		if err := e.publishStateLocked(); err != nil {
			// The set mutated but the capture failed — undo by removing
			// the candidate again so readers never observe a state the
			// capture machinery could not publish.
			if displaced != nil {
				e.set.ReplaceExisting(cand, displaced)
			} else {
				e.set.Remove(cand)
			}
			return viewset.DiscardedStale, nil
		}
	}
	return dec, displaced
}
