package core

import (
	"github.com/asv-db/asv/internal/view"
	"github.com/asv-db/asv/internal/viewset"
)

// QueryResult reports the answer to a range query together with the
// routing and adaptivity telemetry the paper's figures plot (scanned
// pages, Fig. 4; considered views, Fig. 5).
type QueryResult struct {
	Count int    // qualifying values
	Sum   uint64 // wrapping sum of qualifying values

	PagesScanned int  // physical pages read
	ViewsUsed    int  // views routed to
	UsedFullView bool // whether the full view was among them

	// CandidateBuilt reports whether a candidate view was constructed
	// alongside this query; Decision is what became of it.
	CandidateBuilt bool
	Decision       viewset.Decision
}

// Query answers the inclusive range query [lo, hi], creating and
// maintaining partial views as a side product (Listing 1). Scan work uses
// Config.Parallelism page-sharded workers (default: serial).
//
// If updates are pending (buffered via Update but not yet flushed), Query
// flushes them first: partial views must reflect all updates before they
// may answer queries (§2.4), and returning stale answers is never
// acceptable. Callers that want update batching simply issue updates in
// runs between queries — exactly the paper's model.
//
// Query is safe for concurrent callers: read-only routed scans share the
// engine's read lock, while view publication and update alignment are
// serialized behind the write lock.
func (e *Engine) Query(lo, hi uint64) (QueryResult, error) {
	return e.queryCollect(lo, hi, nil)
}

// QueryParallel answers [lo, hi] like Query but scans with the given
// number of page-sharded workers (<= 0 selects GOMAXPROCS), overriding
// Config.Parallelism for this query. The answer — and every adaptive side
// effect, including the candidate view's page set — is identical to the
// serial Query: shards reduce in page order with commutative aggregates.
func (e *Engine) QueryParallel(lo, hi uint64, workers int) (QueryResult, error) {
	if workers <= 0 {
		workers = -1 // resolveWorkers: GOMAXPROCS
	}
	return e.queryCollectWorkers(lo, hi, nil, workers)
}

// route returns the source views for [lo, hi] according to the configured
// mode and multi-view policy.
func (e *Engine) route(lo, hi uint64) []*view.View {
	if e.cfg.Mode != MultiView {
		return []*view.View{e.set.RouteSingle(lo, hi)}
	}
	multi := e.set.RouteMulti(lo, hi)
	if multi == nil {
		return []*view.View{e.set.RouteSingle(lo, hi)}
	}
	if e.cfg.MultiViewPolicy == PreferMulti {
		// The paper's current policy: use multiple views whenever they
		// cover the range, "instead of directing the query to a single
		// (potentially larger) view".
		return multi
	}
	// CostBased — the paper's stated future work: "we plan to base this
	// decision on the covered value ranges and the number of indexed
	// pages". Compare the cover's total page count (an upper bound: shared
	// pages are deduplicated at scan time) against the cheapest single
	// covering view and take the cheaper plan.
	single := e.set.RouteSingle(lo, hi)
	coverPages := 0
	for _, v := range multi {
		coverPages += v.NumPages()
	}
	if single.NumPages() <= coverPages {
		return []*view.View{single}
	}
	return multi
}

// applyDecision performs the side effects of a retention decision:
// releasing discarded candidates, displaced views, and evicted views, and
// updating counters. A displaced view is released after it left the set —
// readers admitted later cannot route to it, and the reader that displaced
// it has finished scanning, so the unmap never races a scan.
func (e *Engine) applyDecision(dec viewset.Decision, cand, displaced *view.View) error {
	switch dec {
	case viewset.Inserted:
		e.stats.viewsCreated.Add(1)
	case viewset.Replaced:
		e.stats.viewsReplaced.Add(1)
		return displaced.Release()
	case viewset.Evicted:
		e.stats.viewsCreated.Add(1)
		e.stats.viewsEvicted.Add(1)
		return displaced.Release()
	default:
		e.stats.viewsDiscarded.Add(1)
		return cand.Release()
	}
	return nil
}

// fullScan answers [lo, hi] from the full view only (baseline mode); the
// caller holds the read lock.
func (e *Engine) fullScan(lo, hi uint64) (QueryResult, error) {
	return e.fullScanCollect(lo, hi, nil, 1)
}
