// Package core implements the adaptive storage layer of the paper: for
// each column it maintains the physical column, the full virtual view, and
// a set of partial virtual views that are created and maintained
// adaptively as a side product of query processing (§2, Listing 1), with
// query routing in single-view and multi-view mode (§2.1) and batched
// update alignment (§2.4, §2.5).
package core

import (
	"fmt"

	"github.com/asv-db/asv/internal/autopilot"
	"github.com/asv-db/asv/internal/view"
	"github.com/asv-db/asv/internal/viewset"
	"github.com/asv-db/asv/internal/vmsim"
)

// Mode selects the query-routing mode of §2.1.
type Mode int

const (
	// SingleView answers each query from exactly one view that fully
	// covers the predicate, preferring the view indexing the fewest pages.
	SingleView Mode = iota
	// MultiView answers a query from multiple partial views whenever they
	// fully cover the requested range in conjunction, deduplicating shared
	// physical pages via a bitvector.
	MultiView
)

// String renders the mode name.
func (m Mode) String() string {
	switch m {
	case SingleView:
		return "single-view"
	case MultiView:
		return "multi-view"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// MultiViewPolicy decides how multi-view covers compete with single views.
type MultiViewPolicy int

const (
	// PreferMulti is the paper's current policy: whenever multiple partial
	// views cover the query range in conjunction, use them "instead of
	// directing the query to a single (potentially larger) view" (§2.1).
	PreferMulti MultiViewPolicy = iota
	// CostBased implements the paper's stated future work: choose between
	// the multi-view cover and the cheapest single covering view "based on
	// the covered value ranges and the number of indexed pages" (§2.1).
	CostBased
)

// String renders the policy name.
func (p MultiViewPolicy) String() string {
	switch p {
	case PreferMulti:
		return "prefer-multi"
	case CostBased:
		return "cost-based"
	default:
		return fmt.Sprintf("MultiViewPolicy(%d)", int(p))
	}
}

// LimitPolicy re-exports the view-limit behaviour (freeze vs evict).
type LimitPolicy = viewset.LimitPolicy

// Limit policies.
const (
	// Freeze stops all candidate generation once MaxViews is reached —
	// the paper's behaviour (§2.2).
	Freeze = viewset.Freeze
	// EvictLRU keeps adapting at the limit by evicting the
	// least-recently-routed partial view to make room.
	EvictLRU = viewset.EvictLRU
)

// Config parameterizes an Engine. The zero value is not valid; start from
// DefaultConfig.
type Config struct {
	// Mode is the query-routing mode (§2.1).
	Mode Mode
	// MultiViewPolicy selects how multi-view covers compete with single
	// views (MultiView mode only).
	MultiViewPolicy MultiViewPolicy
	// Limit selects what happens when MaxViews is reached: Freeze (paper)
	// or EvictLRU (extension).
	Limit LimitPolicy
	// MaxViews caps the number of partial views; once reached, candidate
	// generation stops entirely (§2.2). The paper uses 100 for the
	// single-view experiments, 200/20 for the multi-view ones.
	MaxViews int
	// DiscardTolerance is the paper's d: a candidate covering a subset of
	// an existing view is discarded even if it indexes up to d fewer
	// pages. The paper evaluates with d = 0.
	DiscardTolerance int
	// ReplaceTolerance is the paper's r: a candidate covering a superset
	// of an existing view replaces it if it indexes at most r more pages.
	// The paper evaluates with r = 0.
	ReplaceTolerance int
	// Create selects the §2.3 view-creation optimizations.
	Create view.CreateOptions
	// LazyViews defers view materialization to first access: creation
	// records which physical page backs each slot and returns without
	// mapping anything; a slot's demand mmap and soft-TLB resolution
	// happen on the first query that touches it (fault-driven
	// materialization, see internal/view/lazy.go). Creation then costs
	// the qualification scan plus one virtual reservation regardless of
	// how many pages qualify, and views that are created but never
	// queried never map a page. Sets Create.Lazy on every engine-built
	// view; update alignment and explicit warming still materialize in
	// full. On by default — set Create explicitly and leave LazyViews
	// false to reproduce the eager creation path.
	LazyViews bool
	// MapperQueueCap sizes the concurrent queue feeding the mapping
	// thread (<= 0 selects 1024).
	MapperQueueCap int
	// Parallelism is the number of page-sharded workers a single query's
	// scan uses: 0 scans serially (the paper's single-threaded model), a
	// positive value selects that many workers, and a negative value
	// selects GOMAXPROCS. Parallel scans reduce shard results in page
	// order with commutative aggregates, so answers and adaptive side
	// effects are identical to serial. Update alignment fans out across
	// the same worker count, one view per worker, with per-view stat
	// partials reduced in view order — again identical to serial.
	// Inter-query concurrency (many clients calling Query at once) is
	// independent of this knob and always available.
	Parallelism int
	// UpdateShards is the number of pending-buffer shards the write path
	// hashes physical pages across: concurrent Update callers append
	// under per-shard locks instead of one engine-wide buffer lock.
	// FlushUpdates merges the shards into a single deterministic batch
	// (page-sorted, arrival order within a page), so the shard count
	// never changes query answers or alignment results. 0 (and any
	// negative value) selects GOMAXPROCS; 1 reproduces the single-buffer
	// write path.
	UpdateShards int
	// Adaptive enables partial-view creation and routing. When false the
	// engine answers every query with a full scan — the paper's baseline.
	Adaptive bool
	// RoomLockReads routes queries through the legacy scan-shared room
	// instead of the lock-free epoch path: readers then stall whenever
	// alignment, rebuilds or autopilot lifecycle work holds the
	// exclusive room, exactly as before the epoch redesign. Answers and
	// adaptive side effects are identical either way. The knob exists
	// for the `snapshot` bench panel, which measures what epoch routing
	// buys; production configurations leave it false.
	RoomLockReads bool
	// Autopilot, when non-nil, starts the engine's background maintenance
	// subsystem (internal/autopilot): bounded-latency write coalescing
	// (Update becomes fire-and-forget and is applied + aligned within
	// Autopilot.MaxFlushLatency), adaptive parallelism (scan and
	// alignment fan-out chosen per operation by an EWMA cost model,
	// bounded by Parallelism), and a temperature-driven view lifecycle
	// (cold partials evicted, fragmented ones rebuilt, hot soft-TLBs
	// pre-warmed in exclusive-room slices). Engine.Close stops it. Nil
	// keeps every maintenance action inline, the pre-autopilot behaviour.
	Autopilot *autopilot.Config
	// JournalEvents, when positive, enables the engine's event journal: a
	// fixed-size lock-free ring (rounded up to a power of two, minimum 64)
	// of typed engine events — epoch publications and retirements,
	// autopilot duty brackets, tier demotion/promotion batches, view
	// lifecycle transitions, room-mode handovers. Zero (the default)
	// disables the journal entirely; every recording site is then one nil
	// pointer test. Drain with Engine.Journal().Events().
	JournalEvents int
	// JournalClock, when non-nil, replaces the journal's wall clock
	// (time.Now().UnixNano()) with an injectable nanosecond source —
	// deterministic timestamps for tests and the harness. Ignored when
	// JournalEvents leaves the journal disabled.
	JournalClock func() int64
	// Tiering, when non-nil and enabled, attaches a second, slower frame
	// tier to the column (internal/vmsim tier map): pages demoted below
	// the hot-tier budget are charged a simulated capacity-tier latency
	// on access, scans validate pages through the vmcache-style
	// versioned/optimistic word, and the autopilot (when running) demotes
	// the coldest unpinned views' pages under hot-tier pressure. Nil or
	// a zero-value config keeps the single-tier behaviour byte-for-byte.
	Tiering *vmsim.TierConfig
}

// DefaultConfig returns the paper's configuration: single-view mode, up to
// 100 views, zero tolerances, both creation optimizations enabled.
func DefaultConfig() Config {
	return Config{
		Mode:           SingleView,
		MaxViews:       100,
		Create:         view.AllOptimizations,
		LazyViews:      true,
		MapperQueueCap: 1024,
		Adaptive:       true,
	}
}

// BaselineConfig returns a configuration that answers every query with a
// full column scan (the "Fullscan" baseline of §3.2).
func BaselineConfig() Config {
	c := DefaultConfig()
	c.Adaptive = false
	return c
}

func (c Config) validate() error {
	if c.MaxViews < 0 {
		return fmt.Errorf("core: negative MaxViews %d", c.MaxViews)
	}
	if c.DiscardTolerance < 0 || c.ReplaceTolerance < 0 {
		return fmt.Errorf("core: negative tolerance (d=%d, r=%d)", c.DiscardTolerance, c.ReplaceTolerance)
	}
	if c.Mode != SingleView && c.Mode != MultiView {
		return fmt.Errorf("core: unknown mode %d", int(c.Mode))
	}
	if c.MultiViewPolicy != PreferMulti && c.MultiViewPolicy != CostBased {
		return fmt.Errorf("core: unknown multi-view policy %d", int(c.MultiViewPolicy))
	}
	if c.Limit != Freeze && c.Limit != EvictLRU {
		return fmt.Errorf("core: unknown limit policy %d", int(c.Limit))
	}
	if c.Autopilot != nil {
		if err := c.Autopilot.Validate(); err != nil {
			return err
		}
	}
	if c.Tiering != nil {
		if c.Tiering.HotFrames < 0 {
			return fmt.Errorf("core: negative tier hot budget %d", c.Tiering.HotFrames)
		}
		if c.Tiering.ColdMultiplier < 0 {
			return fmt.Errorf("core: negative tier cold multiplier %g", c.Tiering.ColdMultiplier)
		}
	}
	return nil
}
