package core

import (
	"sync"
	"time"

	"github.com/asv-db/asv/internal/obs"
)

// The engine's locking discipline needs three access modes, one more than
// a sync.RWMutex offers:
//
//   - scan-shared: any number of routed read-only queries at once,
//   - update-shared: any number of Update callers at once (each also
//     holds a per-shard buffer lock, which serializes same-page writes),
//   - exclusive: flush/alignment, view-set mutation, close.
//
// The two shared modes must exclude each other: an Update writes column
// page bytes the scans read, and a scan may only run when the views
// reflect every applied write (§2.4). roomLock implements this as room
// synchronization: at most one "room" (scan, update, or exclusive) is
// open at a time; any number of holders of the open shared room proceed
// concurrently; the exclusive room admits exactly one.
//
// Handover is batched and round-robin. While a shared room is open with
// no strangers waiting, same-kind arrivals join immediately. As soon as
// another kind queues, new arrivals queue too (the room is no longer
// extended), the room drains, and the next room is chosen round-robin
// among the waiting kinds — every waiter of that kind is admitted in one
// batch. This keeps a saturating stream of readers from starving writers
// and vice versa, which is exactly the regime the mixed read/write
// benchmark panel measures.
const (
	roomNone = iota
	roomScan
	roomUpdate
	roomExcl
	roomKinds
)

// roomLock is the engine's three-mode lock. The zero value is ready to
// use. It must not be copied after first use.
type roomLock struct {
	mu      sync.Mutex
	cond    *sync.Cond
	room    int // currently open room (roomNone when idle)
	active  int // holders currently inside the open room
	grants  int // handover admissions not yet consumed by woken waiters
	phase   uint64
	waiting [roomKinds]int
	rr      int // round-robin offset for the next handover choice

	// obs, when set (once, before first use), observes per-mode wait and
	// hold time and journals handovers. openedAt stamps the current
	// room's opening (guarded by mu). Fast admissions into an already-
	// open room never touch the clock — only queued entries and room
	// transitions pay for telemetry.
	obs      *roomObs
	openedAt time.Time
}

// roomObs is the room lock's telemetry sink: per-mode wait/hold
// histograms (indexed by room kind) plus the engine's event journal for
// handover events (nil-safe).
type roomObs struct {
	wait    [roomKinds]*obs.Histogram
	hold    [roomKinds]*obs.Histogram
	journal *obs.Journal
}

// RLock enters the scan-shared room (read-locked query path).
//
//asv:acquires=scan
func (l *roomLock) RLock() { l.enter(roomScan) }

// RUnlock leaves the scan-shared room.
//
//asv:releases=scan
func (l *roomLock) RUnlock() { l.leave() }

// UpdateLock enters the update-shared room (concurrent Update callers).
//
//asv:acquires=update
func (l *roomLock) UpdateLock() { l.enter(roomUpdate) }

// UpdateUnlock leaves the update-shared room.
//
//asv:releases=update
func (l *roomLock) UpdateUnlock() { l.leave() }

// Lock enters the exclusive room (flush/alignment, view-set mutation).
//
//asv:acquires=exclusive
func (l *roomLock) Lock() { l.enter(roomExcl) }

// Unlock leaves the exclusive room.
//
//asv:releases=exclusive
func (l *roomLock) Unlock() { l.leave() }

func (l *roomLock) enter(kind int) {
	l.mu.Lock()
	if l.cond == nil {
		l.cond = sync.NewCond(&l.mu)
	}
	if l.fastAdmit(kind) {
		l.mu.Unlock()
		return
	}
	var t0 time.Time
	if l.obs != nil {
		t0 = time.Now()
	}
	l.waiting[kind]++
	// A woken waiter consumes one handover grant of its room — but only
	// a waiter that queued BEFORE the handover (phase check). Without it,
	// a goroutine that cycles the lock quickly on a busy machine re-queues
	// between the handover broadcast and an older waiter's wakeup and
	// steals its grant every time, starving the older waiter for as long
	// as the cycler stays hot. Each handover bumps the phase, so grants
	// of phase p are consumable exactly by the waiting[kind] goroutines
	// that queued in earlier phases — the count the snapshot took.
	myPhase := l.phase
	for l.room != kind || l.grants == 0 || l.phase == myPhase {
		l.cond.Wait()
	}
	l.grants--
	l.waiting[kind]--
	l.active++
	l.mu.Unlock()
	if l.obs != nil {
		l.obs.wait[kind].Observe(uint64(time.Since(t0)))
	}
}

// fastAdmit admits the caller without queueing when possible. Caller
// holds l.mu.
func (l *roomLock) fastAdmit(kind int) bool {
	if l.room == roomNone {
		// Idle. Handover always opens a room while waiters exist, so
		// roomNone implies nobody is queued; open the room directly.
		l.room = kind
		l.active = 1
		if l.obs != nil {
			l.openedAt = time.Now()
		}
		return true
	}
	if l.room != kind || kind == roomExcl {
		return false
	}
	// The caller's shared room is open: join it, unless another kind is
	// waiting — extending the room past queued strangers would starve
	// them.
	for k := roomNone + 1; k < roomKinds; k++ {
		if k != kind && l.waiting[k] > 0 {
			return false
		}
	}
	l.active++
	return true
}

func (l *roomLock) leave() {
	l.mu.Lock()
	l.active--
	// grants > 0 means woken waiters of the open room are still on their
	// way in; the room stays open for them even at active == 0.
	if l.active == 0 && l.grants == 0 {
		l.handover()
	}
	l.mu.Unlock()
}

// handover closes the drained room and opens the next one round-robin
// among the kinds with waiters, granting every current waiter of the
// chosen shared room (or exactly one exclusive waiter) admission. Caller
// holds l.mu.
func (l *roomLock) handover() {
	from := l.room
	if l.obs != nil && from != roomNone {
		l.obs.hold[from].Observe(uint64(time.Since(l.openedAt)))
	}
	const kinds = roomKinds - 1 // selectable rooms: scan, update, excl
	for i := 0; i < kinds; i++ {
		k := (l.rr+i)%kinds + 1
		if l.waiting[k] == 0 {
			continue
		}
		l.rr = k % kinds // next handover starts searching after k
		l.room = k
		l.phase++
		if k == roomExcl {
			l.grants = 1
		} else {
			l.grants = l.waiting[k]
		}
		if l.obs != nil {
			l.openedAt = time.Now()
			l.obs.journal.Record(obs.EvRoomHandover, int64(from), int64(k), int64(l.grants))
		}
		l.cond.Broadcast()
		return
	}
	l.room = roomNone
}
