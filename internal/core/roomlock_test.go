package core

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestRoomLockExclusionInvariants hammers all three rooms and asserts
// the mutual-exclusion matrix inside every critical section: scanners
// never overlap writers or exclusive holders, writers never overlap
// scanners or exclusive holders, and the exclusive room holds alone.
func TestRoomLockExclusionInvariants(t *testing.T) {
	var (
		l                    roomLock
		scans, writes, excls atomic.Int64
		violations           atomic.Int64
		wg                   sync.WaitGroup
		check                = func(cond bool) {
			if !cond {
				violations.Add(1)
			}
		}
	)
	const iters = 400
	for i := 0; i < 4; i++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			for n := 0; n < iters; n++ {
				l.RLock()
				scans.Add(1)
				check(writes.Load() == 0 && excls.Load() == 0)
				scans.Add(-1)
				l.RUnlock()
			}
		}()
		go func() {
			defer wg.Done()
			for n := 0; n < iters; n++ {
				l.UpdateLock()
				writes.Add(1)
				check(scans.Load() == 0 && excls.Load() == 0)
				writes.Add(-1)
				l.UpdateUnlock()
			}
		}()
		go func() {
			defer wg.Done()
			for n := 0; n < iters; n++ {
				l.Lock()
				check(excls.Add(1) == 1)
				check(scans.Load() == 0 && writes.Load() == 0)
				excls.Add(-1)
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d exclusion violations", v)
	}
}

// TestRoomLockSharedRoomsOverlap verifies that both shared rooms really
// admit concurrent holders: two scanners (and two writers) must be able
// to sit inside their room at the same time.
func TestRoomLockSharedRoomsOverlap(t *testing.T) {
	for _, mode := range []string{"scan", "update"} {
		var l roomLock
		lock, unlock := l.RLock, l.RUnlock
		if mode == "update" {
			lock, unlock = l.UpdateLock, l.UpdateUnlock
		}
		lock()
		entered := make(chan struct{})
		go func() {
			lock()
			close(entered)
			unlock()
		}()
		<-entered // deadlocks (test timeout) if the room is not shared
		unlock()
	}
}

// TestRoomLockHandoverProgress starves-tests the round-robin handover:
// saturating streams of scanners and writers plus a stream of exclusive
// holders must all finish their fixed iteration budgets — if any room
// could be starved by the others, the test would time out.
func TestRoomLockHandoverProgress(t *testing.T) {
	var l roomLock
	var wg sync.WaitGroup
	const iters = 300
	for i := 0; i < 3; i++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			for n := 0; n < iters; n++ {
				l.RLock()
				l.RUnlock()
			}
		}()
		go func() {
			defer wg.Done()
			for n := 0; n < iters; n++ {
				l.UpdateLock()
				l.UpdateUnlock()
			}
		}()
		go func() {
			defer wg.Done()
			for n := 0; n < iters; n++ {
				l.Lock()
				l.Unlock()
			}
		}()
	}
	wg.Wait()
}
