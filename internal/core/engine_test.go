package core

import (
	"testing"

	"github.com/asv-db/asv/internal/dist"
	"github.com/asv-db/asv/internal/storage"
	"github.com/asv-db/asv/internal/view"
	"github.com/asv-db/asv/internal/viewset"
	"github.com/asv-db/asv/internal/vmsim"
	"github.com/asv-db/asv/internal/xrand"
)

func testColumn(t testing.TB, pages int, g dist.Generator) *storage.Column {
	t.Helper()
	k := vmsim.NewKernel(0)
	as := k.NewAddressSpace()
	as.SetMaxMapCount(1 << 30)
	c, err := storage.NewColumn(k, as, "col", pages)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Fill(g); err != nil {
		t.Fatal(err)
	}
	return c
}

func newEngine(t testing.TB, col *storage.Column, cfg Config) *Engine {
	t.Helper()
	e, err := NewEngine(col, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = e.Close() })
	return e
}

// syncConfig disables the background mapper for deterministic tests.
func syncConfig() Config {
	cfg := DefaultConfig()
	cfg.Create = view.CreateOptions{Consecutive: true}
	return cfg
}

func TestConfigValidation(t *testing.T) {
	col := testColumn(t, 8, dist.NewUniform(1, 0, 10))
	bad := []Config{
		{Mode: Mode(9), Adaptive: true},
		func() Config { c := DefaultConfig(); c.MaxViews = -1; return c }(),
		func() Config { c := DefaultConfig(); c.DiscardTolerance = -1; return c }(),
		func() Config { c := DefaultConfig(); c.ReplaceTolerance = -1; return c }(),
	}
	for i, cfg := range bad {
		if _, err := NewEngine(col, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestQueryMatchesFullScanSingleView(t *testing.T) {
	col := testColumn(t, 200, dist.NewSine(3, 0, 100_000_000, 20))
	e := newEngine(t, col, syncConfig())
	rng := xrand.New(99)
	for i := 0; i < 60; i++ {
		width := uint64(1+rng.Intn(30)) * 1_000_000
		lo := rng.Uint64n(100_000_000 - width)
		hi := lo + width
		wantCount, wantSum, err := col.FullScan(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Query(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if got.Count != wantCount || got.Sum != wantSum {
			t.Fatalf("query %d [%d,%d]: got (%d,%d), want (%d,%d); %d views",
				i, lo, hi, got.Count, got.Sum, wantCount, wantSum, e.ViewSet().Len())
		}
	}
	if e.ViewSet().Len() == 0 {
		t.Fatal("no partial views were created over the sequence")
	}
}

func TestQueryMatchesFullScanMultiView(t *testing.T) {
	col := testColumn(t, 200, dist.NewSine(7, 0, 100_000_000, 20))
	cfg := syncConfig()
	cfg.Mode = MultiView
	cfg.MaxViews = 50
	e := newEngine(t, col, cfg)
	rng := xrand.New(5)
	for i := 0; i < 80; i++ {
		width := uint64(2_000_000)
		lo := rng.Uint64n(100_000_000 - width)
		hi := lo + width
		wantCount, wantSum, err := col.FullScan(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Query(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if got.Count != wantCount || got.Sum != wantSum {
			t.Fatalf("query %d [%d,%d]: got (%d,%d), want (%d,%d)",
				i, lo, hi, got.Count, got.Sum, wantCount, wantSum)
		}
	}
}

func TestMultiViewStitchesViews(t *testing.T) {
	col := testColumn(t, 256, dist.NewLinear(1, 0, 1_000_000, 256))
	cfg := syncConfig()
	cfg.Mode = MultiView
	e := newEngine(t, col, cfg)

	// Seed two adjacent views directly.
	if _, err := e.CreateView(100_000, 300_000); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateView(300_001, 500_000); err != nil {
		t.Fatal(err)
	}
	// Pin exact ranges (CreateView extends them).
	e.Views()[0].SetRange(100_000, 300_000)
	e.Views()[1].SetRange(300_001, 500_000)

	got, err := e.Query(150_000, 450_000)
	if err != nil {
		t.Fatal(err)
	}
	if got.ViewsUsed != 2 || got.UsedFullView {
		t.Fatalf("ViewsUsed=%d UsedFullView=%v, want 2/false", got.ViewsUsed, got.UsedFullView)
	}
	wantCount, wantSum, _ := col.FullScan(150_000, 450_000)
	if got.Count != wantCount || got.Sum != wantSum {
		t.Fatalf("stitched answer (%d,%d), want (%d,%d)", got.Count, got.Sum, wantCount, wantSum)
	}
}

func TestMultiViewDedupsSharedPages(t *testing.T) {
	col := testColumn(t, 256, dist.NewLinear(1, 0, 1_000_000, 256))
	cfg := syncConfig()
	cfg.Mode = MultiView
	e := newEngine(t, col, cfg)
	// Heavily overlapping views share most physical pages.
	if _, err := e.CreateView(100_000, 400_000); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateView(300_000, 600_000); err != nil {
		t.Fatal(err)
	}
	e.Views()[0].SetRange(100_000, 400_000)
	e.Views()[1].SetRange(300_000, 600_000)

	got, err := e.Query(150_000, 550_000)
	if err != nil {
		t.Fatal(err)
	}
	wantCount, wantSum, _ := col.FullScan(150_000, 550_000)
	if got.Count != wantCount || got.Sum != wantSum {
		t.Fatalf("dedup answer (%d,%d), want (%d,%d) — shared pages double-counted?",
			got.Count, got.Sum, wantCount, wantSum)
	}
	// Scanned pages must not exceed the union of both views.
	union := map[uint64]bool{}
	for _, v := range e.Views()[:2] {
		ids, _ := v.PageIDs()
		for _, id := range ids {
			union[id] = true
		}
	}
	if got.PagesScanned > len(union) {
		t.Fatalf("scanned %d pages, union is %d", got.PagesScanned, len(union))
	}
}

func TestAdaptivityReducesScannedPages(t *testing.T) {
	col := testColumn(t, 256, dist.NewSine(11, 0, 100_000_000, 20))
	e := newEngine(t, col, syncConfig())

	first, err := e.Query(10_000_000, 12_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if first.PagesScanned != col.NumPages() {
		t.Fatalf("first query scanned %d pages, want full scan %d", first.PagesScanned, col.NumPages())
	}
	second, err := e.Query(10_500_000, 11_500_000)
	if err != nil {
		t.Fatal(err)
	}
	if second.PagesScanned >= first.PagesScanned {
		t.Fatalf("second query scanned %d pages, first %d — no adaptivity", second.PagesScanned, first.PagesScanned)
	}
	if second.UsedFullView {
		t.Fatal("second query still used the full view")
	}
}

func TestViewLimitFreezesGeneration(t *testing.T) {
	col := testColumn(t, 128, dist.NewLinear(5, 0, 1_000_000, 128))
	cfg := syncConfig()
	cfg.MaxViews = 2
	e := newEngine(t, col, cfg)
	rng := xrand.New(1)
	for i := 0; i < 20; i++ {
		lo := rng.Uint64n(900_000)
		if _, err := e.Query(lo, lo+20_000); err != nil {
			t.Fatal(err)
		}
	}
	if e.ViewSet().Len() > 2 {
		t.Fatalf("view count %d exceeds limit", e.ViewSet().Len())
	}
	if !e.ViewSet().Frozen() {
		t.Fatal("set not frozen after exceeding limit")
	}
	// Frozen: queries no longer build candidates.
	res, err := e.Query(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.CandidateBuilt {
		t.Fatal("candidate built after freeze")
	}
}

func TestBaselineAlwaysFullScans(t *testing.T) {
	col := testColumn(t, 64, dist.NewUniform(3, 0, 1_000_000))
	e := newEngine(t, col, BaselineConfig())
	for i := 0; i < 5; i++ {
		res, err := e.Query(0, 500_000)
		if err != nil {
			t.Fatal(err)
		}
		if !res.UsedFullView || res.PagesScanned != col.NumPages() {
			t.Fatalf("baseline query %d: %+v", i, res)
		}
	}
	if e.ViewSet().Len() != 0 {
		t.Fatal("baseline created views")
	}
	wantCount, wantSum, _ := col.FullScan(0, 500_000)
	res, _ := e.Query(0, 500_000)
	if res.Count != wantCount || res.Sum != wantSum {
		t.Fatal("baseline answer wrong")
	}
}

func TestQuerySwapsInvertedRange(t *testing.T) {
	col := testColumn(t, 32, dist.NewUniform(3, 0, 1000))
	e := newEngine(t, col, syncConfig())
	a, err := e.Query(500, 100)
	if err != nil {
		t.Fatal(err)
	}
	wantCount, wantSum, _ := col.FullScan(100, 500)
	if a.Count != wantCount || a.Sum != wantSum {
		t.Fatal("inverted range not normalized")
	}
}

func TestStatsAccumulate(t *testing.T) {
	col := testColumn(t, 64, dist.NewLinear(3, 0, 1_000_000, 64))
	e := newEngine(t, col, syncConfig())
	if _, err := e.Query(0, 100_000); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(10_000, 20_000); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Queries != 2 || s.PagesScanned == 0 {
		t.Fatalf("stats: %+v", s)
	}
	if s.ViewsCreated == 0 {
		t.Fatalf("no views created: %+v", s)
	}
	e.ResetStats()
	if e.Stats().Queries != 0 {
		t.Fatal("ResetStats did not clear")
	}
}

func TestDecisionTelemetry(t *testing.T) {
	col := testColumn(t, 128, dist.NewLinear(5, 0, 1_000_000, 128))
	e := newEngine(t, col, syncConfig())
	res, err := e.Query(100_000, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CandidateBuilt || res.Decision != viewset.Inserted {
		t.Fatalf("first query: %+v", res)
	}
	// Same query again: candidate covers the identical range and pages ->
	// discarded as subset (d=0 keeps it out since pages are equal).
	res, err = e.Query(100_000, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != viewset.DiscardedSubset {
		t.Fatalf("repeat query decision = %v", res.Decision)
	}
}

func TestCreateViewAndClose(t *testing.T) {
	col := testColumn(t, 64, dist.NewUniform(9, 0, 1_000_000))
	e := newEngine(t, col, syncConfig())
	v, err := e.CreateView(0, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumPages() == 0 {
		t.Fatal("created view is empty")
	}
	vmasBefore := col.Space().VMACount()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if got := col.Space().VMACount(); got >= vmasBefore {
		t.Fatalf("Close did not release view areas: %d -> %d", vmasBefore, got)
	}
	if e.ViewSet().Len() != 0 {
		t.Fatal("views remain after Close")
	}
}

func TestRebuildViews(t *testing.T) {
	col := testColumn(t, 128, dist.NewUniform(13, 0, 1_000_000))
	e := newEngine(t, col, syncConfig())
	if _, err := e.CreateView(0, 50_000); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateView(600_000, 700_000); err != nil {
		t.Fatal(err)
	}
	ranges := [][2]uint64{}
	for _, v := range e.Views() {
		ranges = append(ranges, [2]uint64{v.Lo(), v.Hi()})
	}
	if err := e.RebuildViews(); err != nil {
		t.Fatal(err)
	}
	if e.ViewSet().Len() != 2 {
		t.Fatalf("rebuild produced %d views", e.ViewSet().Len())
	}
	for i, v := range e.Views() {
		if v.Lo() != ranges[i][0] || v.Hi() != ranges[i][1] {
			t.Fatalf("view %d range [%d,%d], want %v", i, v.Lo(), v.Hi(), ranges[i])
		}
		// Rebuilt views answer correctly.
		r, err := v.Scan(v.Lo(), v.Hi())
		if err != nil {
			t.Fatal(err)
		}
		wantCount, wantSum, _ := col.FullScan(v.Lo(), v.Hi())
		if r.Count != wantCount || r.Sum != wantSum {
			t.Fatalf("rebuilt view %d wrong: (%d,%d) want (%d,%d)", i, r.Count, r.Sum, wantCount, wantSum)
		}
	}
}

func TestConcurrentMapperEngine(t *testing.T) {
	col := testColumn(t, 128, dist.NewSine(21, 0, 100_000_000, 16))
	cfg := DefaultConfig() // both optimizations, incl. concurrent mapper
	e := newEngine(t, col, cfg)
	rng := xrand.New(3)
	for i := 0; i < 40; i++ {
		lo := rng.Uint64n(90_000_000)
		hi := lo + 5_000_000
		wantCount, wantSum, _ := col.FullScan(lo, hi)
		got, err := e.Query(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if got.Count != wantCount || got.Sum != wantSum {
			t.Fatalf("query %d wrong under concurrent mapper", i)
		}
	}
	if e.ViewSet().Len() == 0 {
		t.Fatal("no views created")
	}
}

func TestEngineString(t *testing.T) {
	col := testColumn(t, 16, dist.NewUniform(1, 0, 10))
	e := newEngine(t, col, syncConfig())
	if e.String() == "" || Mode(0).String() == "" || Mode(99).String() == "" {
		t.Fatal("empty String()")
	}
}
