package core

import (
	"github.com/asv-db/asv/internal/obs"
	"github.com/asv-db/asv/internal/vmsim"
)

// This file is the engine's telemetry seam: the obs instrument handles
// every hot path bumps, the traced variant of QueryOpt, and the
// Telemetry()/Journal() read surfaces. The discipline mirrors
// Engine.tier: instruments are always on (a handful of atomic adds,
// resolved once in NewEngine and only dereferenced afterwards), while
// tracing and the journal are nil-gated — with both off, a query pays
// one pointer test per gate and allocates nothing it did not allocate
// before telemetry existed.

// engineInstruments holds the engine's obs instrument handles, resolved
// once from the registry in NewEngine. Handles are stored once, bumped
// everywhere — the fields are pointers by the atomicfield lint rule.
type engineInstruments struct {
	reg *obs.Registry

	// roomWait/roomHold are indexed by room kind (roomScan/roomUpdate/
	// roomExcl); slot roomNone is unused. Wait is queued-entry time
	// only (fast admissions never touch the clock); hold is the
	// open-to-close duration of one room occupancy, shared holders and
	// all.
	roomWait [roomKinds]*obs.Histogram
	roomHold [roomKinds]*obs.Histogram

	// retireLag observes publish→drain ns per retired epoch;
	// publishRecaptured observes the views re-captured per publication;
	// scanNsPerPage observes per-scan average ns per page.
	retireLag         *obs.Histogram
	publishRecaptured *obs.Histogram
	scanNsPerPage     *obs.Histogram
}

func newEngineInstruments() *engineInstruments {
	reg := obs.NewRegistry()
	ins := &engineInstruments{
		reg:               reg,
		retireLag:         reg.Histogram("epoch_retire_lag_ns"),
		publishRecaptured: reg.Histogram("publish_views_recaptured"),
		scanNsPerPage:     reg.Histogram("scan_ns_per_page"),
	}
	for kind, name := range map[int]string{
		roomScan: "scan", roomUpdate: "update", roomExcl: "exclusive",
	} {
		ins.roomWait[kind] = reg.Histogram("room_wait_ns_" + name)
		ins.roomHold[kind] = reg.Histogram("room_hold_ns_" + name)
	}
	return ins
}

// Telemetry snapshots every engine instrument into one obs.Snapshot:
// the engine's own histograms and counters (engine_*), the autopilot's
// (autopilot_*), the tier's (tier_*) and the simulated address space's
// (map_*). The encoding is stable (sorted keys), so snapshots diff
// cleanly across runs.
func (e *Engine) Telemetry() obs.Snapshot {
	s := e.ins.reg.Snapshot()
	st := e.stats.snapshot()
	s.AddCounter("engine_queries", st.Queries)
	s.AddCounter("engine_full_view_queries", st.FullViewQueries)
	s.AddCounter("engine_pages_scanned", st.PagesScanned)
	s.AddCounter("engine_views_created", st.ViewsCreated)
	s.AddCounter("engine_views_replaced", st.ViewsReplaced)
	s.AddCounter("engine_views_discarded", st.ViewsDiscarded)
	s.AddCounter("engine_views_evicted", st.ViewsEvicted)
	s.AddCounter("engine_updates_buffered", st.UpdatesBuffered)
	s.AddCounter("engine_update_batches", st.UpdateBatches)
	s.AddCounter("engine_pages_added", st.PagesAdded)
	s.AddCounter("engine_pages_removed", st.PagesRemoved)
	s.AddCounter("engine_views_expired", st.ViewsExpired)
	s.AddCounter("engine_views_rebuilt", st.ViewsRebuilt)
	s.AddCounter("engine_state_publishes", st.StatePublishes)
	s.AddCounter("engine_publish_ns", st.PublishNanos)
	s.AddCounter("engine_publish_attempt_ns", st.PublishAttemptNanos)
	s.AddCounter("engine_publish_errors", st.PublishErrors)
	s.AddCounter("engine_retire_errors", st.RetireErrors)
	if e.pilot != nil {
		s = s.Merge(e.pilot.Telemetry())
	}
	if e.tier != nil {
		ts := e.tier.Stats()
		s.SetGauge("tier_pages", int64(ts.Pages))
		s.SetGauge("tier_hot_frames", int64(ts.HotFrames))
		s.SetGauge("tier_cold_frames", int64(ts.ColdFrames))
		s.SetGauge("tier_hot_budget", int64(ts.HotBudget))
		s.AddCounter("tier_demotions", ts.Demotions)
		s.AddCounter("tier_promotions", ts.Promotions)
		s.AddCounter("tier_cold_touches", ts.ColdTouches)
		s.AddCounter("tier_stall_ns", ts.StallNanos)
	}
	ms := e.col.Space().Stats()
	s.AddCounter("map_mmap_calls", ms.MmapCalls)
	s.AddCounter("map_munmap_calls", ms.MunmapCalls)
	s.AddCounter("map_pages_mapped", ms.PagesMapped)
	s.AddCounter("map_pages_unmapped", ms.PagesUnmapped)
	s.AddCounter("map_vma_splits", ms.VMASplits)
	s.AddCounter("map_vma_merges", ms.VMAMerges)
	s.AddCounter("map_minor_faults", ms.MinorFaults)
	s.AddCounter("map_demand_maps", ms.DemandMaps)
	s.SetGauge("map_vma_count", int64(ms.VMACount))
	return s
}

// Journal returns the engine's event journal (nil when
// Config.JournalEvents left it disabled); obs.Journal methods are
// nil-safe, so callers may drain unconditionally.
func (e *Engine) Journal() *obs.Journal { return e.journal }

// traceRoot extracts the root span of the options' trace (nil when
// tracing is off — the zero-cost sentinel every span site tests).
func traceRoot(opt QueryOptions) *obs.Span {
	if opt.Trace != nil {
		return opt.Trace.Root
	}
	return nil
}

// traceBaselines snapshots the tier and address-space counters at scan
// start so finishScanSpan can attribute the deltas. Only called with a
// live span (sp non-nil means tracing is on).
func (e *Engine) traceBaselines(sp *obs.Span) (vmsim.TierStats, vmsim.MapStats) {
	if sp == nil {
		return vmsim.TierStats{}, vmsim.MapStats{}
	}
	var ts vmsim.TierStats
	if e.tier != nil {
		ts = e.tier.Stats()
	}
	return ts, e.col.Space().Stats()
}

// finishScanSpan closes a scan span with the counter-delta attribution:
// pages scanned, lazy-slot demand-materialization faults, and — on a
// tiered column — cold touches and stall time, the latter also rendered
// as a synthetic child span so the stall shows up in the tree's time
// budget. Deltas are process-wide counters, so concurrent queries'
// activity can bleed into each other's attribution; the trace documents
// where the time class went, not a per-goroutine ledger.
func (e *Engine) finishScanSpan(sp *obs.Span, res *QueryResult, tierBase vmsim.TierStats, mapBase vmsim.MapStats) {
	sp.SetAttr("pages_scanned", int64(res.PagesScanned))
	ms := e.col.Space().Stats()
	sp.SetAttr("lazy_faults", int64(ms.DemandMaps-mapBase.DemandMaps))
	if e.tier != nil {
		ts := e.tier.Stats()
		cold := int64(ts.ColdTouches - tierBase.ColdTouches)
		stall := int64(ts.StallNanos - tierBase.StallNanos)
		sp.SetAttr("cold_touches", cold)
		sp.SetAttr("stall_ns", stall)
		if stall > 0 {
			stallSp := sp.ChildAt("stall", sp.Start, sp.Start+stall)
			stallSp.SetAttr("cold_touches", cold)
		}
	}
	sp.Finish()
}

// queryOptTraced is QueryOpt's traced twin: the same epoch-routed path,
// with pin/route/scan/materialize/merge spans recorded on the trace's
// root. It exists as a separate function so the untraced path keeps its
// exact pre-telemetry shape.
func (e *Engine) queryOptTraced(lo, hi uint64, opt QueryOptions) (Answer, error) {
	tr := opt.Trace
	root := tr.Root
	root.SetAttr("lo", int64(lo))
	root.SetAttr("hi", int64(hi))
	pin := root.Child("pin")
	if err := e.flushPendingForRead(); err != nil {
		pin.Finish()
		tr.Finish()
		return Answer{Trace: tr}, err
	}
	st := e.acquireState()
	pin.SetAttr("epoch_gen", int64(st.gen))
	pin.SetAttr("views", int64(st.snap.Len()))
	pin.Finish()
	if !e.cfg.Adaptive {
		ans, err := e.answerState(st, lo, hi, opt, false)
		e.releaseState(st)
		e.journalTierPromotions()
		tr.Finish()
		return ans, err
	}
	ans, cand, err := e.answerStateAdapt(st, lo, hi, opt)
	gen := st.gen
	e.releaseState(st)
	if err != nil {
		tr.Finish()
		return ans, err
	}
	merge := root.Child("merge")
	err = e.finishAdaptive(&ans, cand, gen)
	merge.Finish()
	e.journalTierPromotions()
	tr.Finish()
	return ans, err
}

// journalTierPromotions folds promote-on-access activity into the
// journal as batches: the delta of the tier's promotion counter since
// the last observation. Concurrent observers may slice one burst into
// two events or attribute a few pages across a boundary — the journal is
// a diagnostic timeline, and the counter itself stays exact.
func (e *Engine) journalTierPromotions() {
	if e.journal == nil || e.tier == nil {
		return
	}
	cur := e.tier.Stats().Promotions
	prev := e.lastPromotions.Swap(cur)
	if cur > prev {
		e.journal.Record(obs.EvTierPromoteBatch, int64(cur-prev), 0, 0)
	}
}

// journalViewEvent records one view-lifecycle transition (insert /
// replace / evict / discard / expire / rebuild) with the view's covered
// range. One pointer test when the journal is disabled.
func (e *Engine) journalViewEvent(typ obs.EventType, lo, hi uint64) {
	if e.journal == nil {
		return
	}
	e.journal.Record(typ, int64(lo), int64(hi), 0)
}

// journalDutyBegin/journalDutyEnd bracket one autopilot duty entering
// the engine; work is the duty's unit count and failed marks an error
// outcome.
func (e *Engine) journalDutyBegin(duty int64) {
	if e.journal == nil {
		return
	}
	e.journal.Record(obs.EvDutyBegin, duty, 0, 0)
}

func (e *Engine) journalDutyEnd(duty, work int64, err error) {
	if e.journal == nil {
		return
	}
	failed := int64(0)
	if err != nil {
		failed = 1
	}
	e.journal.Record(obs.EvDutyEnd, duty, work, failed)
}
