package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/asv-db/asv/internal/autopilot"
	"github.com/asv-db/asv/internal/dist"
	"github.com/asv-db/asv/internal/storage"
	"github.com/asv-db/asv/internal/workload"
)

// quietAutopilot is an autopilot configuration that never acts on its
// own: thresholds and deadlines are unreachable and the lifecycle ticker
// is off, so only synchronous barriers (Sync/FlushUpdates/Close) drain.
// Deterministic tests layer their one behaviour of interest on top.
func quietAutopilot() *autopilot.Config {
	return &autopilot.Config{
		CoalesceCount:    1 << 30,
		CoalesceBytes:    1 << 40,
		MaxFlushLatency:  time.Hour,
		MaintainInterval: -1,
		ColdTicks:        -1,
		RebuildFrag:      -1,
		WarmHottest:      -1,
	}
}

// autoEngine builds an autopilot engine over a fresh column with the
// pinned alignment-test views.
func autoEngine(t *testing.T, g dist.Generator, pages int, ap *autopilot.Config) *Engine {
	t.Helper()
	cfg := syncConfig()
	cfg.Autopilot = ap
	e := newEngine(t, testColumn(t, pages, g), cfg)
	for _, r := range alignTestRanges {
		v, err := e.CreateView(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		v.SetRange(r[0], r[1])
	}
	return e
}

// TestAutopilotEquivalence is the serial-vs-autopilot equivalence table
// of the acceptance criteria: for every registered generator, the same
// update stream pushed through fire-and-forget autopilot Updates plus one
// Sync must produce byte-identical query results, alignment stats and
// view page sets as synchronous Update calls plus one FlushUpdates on an
// identical engine.
func TestAutopilotEquivalence(t *testing.T) {
	const pages = 64
	for _, name := range dist.Names() {
		t.Run(name, func(t *testing.T) {
			g, err := dist.ByName(name, 5, 0, ccDomain, pages)
			if err != nil {
				t.Fatal(err)
			}
			serial := alignEngine(t, g, pages, 0)
			auto := autoEngine(t, g, pages, quietAutopilot())

			ups := workload.UniformUpdates(77, 800, serial.Column().Rows(), 0, ccDomain)
			for _, e := range []*Engine{serial, auto} {
				for _, u := range ups {
					if err := e.Update(u.Row, u.Value); err != nil {
						t.Fatal(err)
					}
				}
			}
			if got := auto.QueuedUpdates(); got != len(ups) {
				t.Fatalf("autopilot queued %d, want %d", got, len(ups))
			}
			ss, err := serial.FlushUpdates()
			if err != nil {
				t.Fatal(err)
			}
			as, err := auto.Sync()
			if err != nil {
				t.Fatal(err)
			}
			if auto.QueuedUpdates() != 0 || auto.PendingUpdates() != 0 {
				t.Fatalf("post-sync: %d queued, %d pending", auto.QueuedUpdates(), auto.PendingUpdates())
			}
			if ss.BatchSize != as.BatchSize || ss.NetUpdates != as.NetUpdates || ss.DirtyPages != as.DirtyPages ||
				ss.PagesAdded != as.PagesAdded || ss.PagesRemoved != as.PagesRemoved || ss.PagesScanned != as.PagesScanned {
				t.Fatalf("alignment stats diverged:\nserial %+v\nauto   %+v", ss, as)
			}
			sst, ast := serial.Stats(), auto.Stats()
			if sst.UpdatesBuffered != ast.UpdatesBuffered || sst.UpdateBatches != ast.UpdateBatches ||
				sst.PagesAdded != ast.PagesAdded || sst.PagesRemoved != ast.PagesRemoved {
				t.Fatalf("engine stats diverged:\nserial %+v\nauto   %+v", sst, ast)
			}
			for i := range serial.Views() {
				sIDs, err := serial.Views()[i].PageIDs()
				if err != nil {
					t.Fatal(err)
				}
				aIDs, err := auto.Views()[i].PageIDs()
				if err != nil {
					t.Fatal(err)
				}
				if fmt.Sprint(sIDs) != fmt.Sprint(aIDs) {
					t.Fatalf("view %d page sets diverged:\n%v\n%v", i, sIDs, aIDs)
				}
			}
			for _, r := range alignTestRanges {
				wantCount, wantSum, err := serial.Column().FullScan(r[0], r[1])
				if err != nil {
					t.Fatal(err)
				}
				rs, err := serial.Query(r[0], r[1])
				if err != nil {
					t.Fatal(err)
				}
				ra, err := auto.Query(r[0], r[1])
				if err != nil {
					t.Fatal(err)
				}
				if rs.Count != wantCount || rs.Sum != wantSum || ra.Count != wantCount || ra.Sum != wantSum {
					t.Fatalf("post-sync query [%d,%d]: serial (%d,%d), auto (%d,%d), want (%d,%d)",
						r[0], r[1], rs.Count, rs.Sum, ra.Count, ra.Sum, wantCount, wantSum)
				}
			}
		})
	}
}

// TestAutopilotDeadlineFlush pins the latency bound end to end with a
// manual clock: a lone fire-and-forget Update below every coalesce
// threshold is applied and aligned once MaxFlushLatency elapses — no
// reader, no Sync, no sleeps.
func TestAutopilotDeadlineFlush(t *testing.T) {
	clock := autopilot.NewManualClock(time.Unix(1000, 0))
	flushed := make(chan autopilot.FlushInfo, 4)
	ap := quietAutopilot()
	ap.Clock = clock
	ap.MaxFlushLatency = 5 * time.Millisecond
	ap.OnFlush = func(fi autopilot.FlushInfo) { flushed <- fi }
	e := autoEngine(t, dist.NewSine(3, 0, ccDomain, 8), 64, ap)

	if err := e.Update(11, 123); err != nil {
		t.Fatal(err)
	}
	clock.BlockUntilTimers(1)
	clock.Advance(5 * time.Millisecond)
	fi := <-flushed
	if fi.Err != nil || fi.Writes != 1 || fi.Reason != autopilot.FlushDeadline {
		t.Fatalf("flush info %+v", fi)
	}
	if fi.Latency != 5*time.Millisecond {
		t.Fatalf("flush latency %s, want the 5ms bound", fi.Latency)
	}
	// The write is applied AND aligned: visible to a plain read with
	// nothing left pending.
	if v, err := e.Column().Value(11); err != nil || v != 123 {
		t.Fatalf("value = %d, %v; want 123", v, err)
	}
	if e.QueuedUpdates() != 0 || e.PendingUpdates() != 0 {
		t.Fatalf("%d queued, %d pending after deadline flush", e.QueuedUpdates(), e.PendingUpdates())
	}
	m := e.Autopilot().Metrics()
	if m.DeadlineFlushes != 1 || m.Applied != 1 {
		t.Fatalf("metrics %+v", m)
	}
}

// TestAutopilotCountFlush: filling CoalesceCount coalesces the writes
// into one group commit without any synchronous barrier.
func TestAutopilotCountFlush(t *testing.T) {
	flushed := make(chan autopilot.FlushInfo, 4)
	ap := quietAutopilot()
	ap.CoalesceCount = 8
	ap.OnFlush = func(fi autopilot.FlushInfo) { flushed <- fi }
	e := autoEngine(t, dist.NewSine(3, 0, ccDomain, 8), 64, ap)
	for i := 0; i < 8; i++ {
		if err := e.Update(i*7, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	fi := <-flushed
	if fi.Err != nil || fi.Writes != 8 || fi.Reason != autopilot.FlushCount {
		t.Fatalf("flush info %+v", fi)
	}
	if st := e.Stats(); st.UpdatesBuffered != 8 || st.UpdateBatches != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestAutopilotColdEviction drives the temperature lifecycle end to end:
// a pre-created view that routing never touches goes cold after
// ColdTicks routing ticks and is evicted on the next maintenance tick,
// reopening capacity; the hot view survives.
func TestAutopilotColdEviction(t *testing.T) {
	clock := autopilot.NewManualClock(time.Unix(1000, 0))
	maints := make(chan autopilot.MaintainReport, 16)
	ap := quietAutopilot()
	ap.Clock = clock
	ap.MaintainInterval = 100 * time.Millisecond
	ap.ColdTicks = 8
	ap.OnMaintain = func(r autopilot.MaintainReport) { maints <- r }
	ap.WarmHottest = 1

	cfg := syncConfig()
	cfg.Autopilot = ap
	// Freeze the set at the two pinned views: adaptive candidates would
	// otherwise out-route the hot view and make it look cold too.
	cfg.MaxViews = 2
	e := newEngine(t, testColumn(t, 64, dist.NewLinear(5, 0, ccDomain, 64)), cfg)
	hot, err := e.CreateView(0, ccDomain/4)
	if err != nil {
		t.Fatal(err)
	}
	hot.SetRange(0, ccDomain/4)
	cold, err := e.CreateView(ccDomain/2, 3*ccDomain/4)
	if err != nil {
		t.Fatal(err)
	}
	cold.SetRange(ccDomain/2, 3*ccDomain/4)

	// 12 routed queries inside the hot view: the LRU clock passes
	// ColdTicks and the cold view's age exceeds it.
	for i := 0; i < 12; i++ {
		if _, err := e.Query(1000, ccDomain/8); err != nil {
			t.Fatal(err)
		}
	}
	clock.Advance(100 * time.Millisecond)
	rep := <-maints
	if rep.Err != nil || rep.Evicted != 1 {
		t.Fatalf("maintain report %+v", rep)
	}
	if st := e.Stats(); st.ViewsExpired != 1 {
		t.Fatalf("stats %+v", st)
	}
	for _, v := range e.Views() {
		if v == cold {
			t.Fatal("cold view still in the set")
		}
	}
	// The engine keeps answering over the evicted range (full view).
	wantCount, wantSum, _ := e.Column().FullScan(ccDomain/2, 3*ccDomain/4)
	res, err := e.Query(ccDomain/2, 3*ccDomain/4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != wantCount || res.Sum != wantSum {
		t.Fatalf("post-eviction query (%d,%d), want (%d,%d)", res.Count, res.Sum, wantCount, wantSum)
	}
}

// fragmentView shrinks-and-grows a pinned view through update alignment
// until its mapped page order has backward steps, returning the final
// fragmentation. Removal compacts by moving the last mapped page into
// the hole — exactly the churn the rebuild duty exists to undo.
func fragmentView(t *testing.T, e *Engine, lo, hi uint64) float64 {
	t.Helper()
	v := e.Views()[0]
	// Move every covered value of low pages out of range, then back in:
	// removals shuffle the tail into holes, re-adds append at the end.
	for round := 0; round < 3; round++ {
		ids, err := v.PageIDs()
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) < 4 {
			t.Fatal("premise: view too small to fragment")
		}
		for _, pid := range ids[:len(ids)/2] {
			base := int(pid) * valuesPerTestPage()
			for s := 0; s < valuesPerTestPage(); s++ {
				val, err := e.Column().Value(base + s)
				if err != nil {
					t.Fatal(err)
				}
				if val >= lo && val <= hi {
					if err := e.Update(base+s, hi+1000); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		if _, err := e.FlushUpdates(); err != nil {
			t.Fatal(err)
		}
		// Bring one value per removed page back into range, appending the
		// pages at the view's tail in a different order.
		for i := len(ids)/2 - 1; i >= 0; i-- {
			row := int(ids[i]) * valuesPerTestPage()
			if err := e.Update(row, lo+(hi-lo)/2); err != nil {
				t.Fatal(err)
			}
			if _, err := e.FlushUpdates(); err != nil {
				t.Fatal(err)
			}
		}
	}
	frag, err := viewFragmentation(v)
	if err != nil {
		t.Fatal(err)
	}
	return frag
}

func valuesPerTestPage() int { return storage.ValuesPerPage }

// TestAutopilotRebuildDefragments: a churned view with backward page
// steps is rebuilt by the lifecycle into ascending order with identical
// coverage, and the engine's answers are unchanged.
func TestAutopilotRebuildDefragments(t *testing.T) {
	const pages = 64
	lo, hi := uint64(0), uint64(ccDomain/4)
	cfg := syncConfig()
	e := newEngine(t, testColumn(t, pages, dist.NewUniform(7, 0, ccDomain)), cfg)
	v, err := e.CreateView(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	v.SetRange(lo, hi)

	frag := fragmentView(t, e, lo, hi)
	if frag == 0 {
		t.Fatal("premise: churn produced no fragmentation")
	}
	before, err := v.PageIDs()
	if err != nil {
		t.Fatal(err)
	}

	// Drive the rebuild through the pilot-target surface (what the
	// autopilot's maintenance tick calls).
	ok, err := pilotTarget{e}.RebuildView(v)
	if err != nil || !ok {
		t.Fatalf("rebuild: %v, %v", ok, err)
	}
	if st := e.Stats(); st.ViewsRebuilt != 1 {
		t.Fatalf("stats %+v", st)
	}
	nv := e.Views()[0]
	if nv == v {
		t.Fatal("view not replaced")
	}
	nfrag, err := viewFragmentation(nv)
	if err != nil {
		t.Fatal(err)
	}
	if nfrag != 0 {
		t.Fatalf("rebuilt fragmentation %g, want 0", nfrag)
	}
	after, err := nv.PageIDs()
	if err != nil {
		t.Fatal(err)
	}
	beforeSet := map[uint64]bool{}
	for _, id := range before {
		beforeSet[id] = true
	}
	if len(after) != len(before) {
		t.Fatalf("rebuilt view has %d pages, want %d", len(after), len(before))
	}
	for _, id := range after {
		if !beforeSet[id] {
			t.Fatalf("rebuilt view gained page %d", id)
		}
	}
	wantCount, wantSum, _ := e.Column().FullScan(lo, hi)
	res, err := e.Query(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != wantCount || res.Sum != wantSum {
		t.Fatalf("post-rebuild query (%d,%d), want (%d,%d)", res.Count, res.Sum, wantCount, wantSum)
	}
	// Rebuilding a vanished handle is a no-op.
	ok, err = pilotTarget{e}.RebuildView(v)
	if ok || err != nil {
		t.Fatalf("stale rebuild: %v, %v", ok, err)
	}
}

// TestAutopilotWarmView: the pre-warm duty re-resolves a dropped
// soft-TLB through the pilot-target surface.
func TestAutopilotWarmView(t *testing.T) {
	e := newEngine(t, testColumn(t, 64, dist.NewSine(5, 0, ccDomain, 8)), syncConfig())
	v, err := e.CreateView(0, ccDomain/4)
	if err != nil {
		t.Fatal(err)
	}
	// Lazy creation leaves every slot cold; the first warm materializes
	// the view in full, and a second warm finds nothing to do.
	n, err := pilotTarget{e}.WarmView(v)
	if err != nil || n != v.NumPages() {
		t.Fatalf("warm view warmed %d, %v; want %d", n, err, v.NumPages())
	}
	n, err = pilotTarget{e}.WarmView(v)
	if err != nil || n != 0 {
		t.Fatalf("warm view warmed %d, %v; want 0", n, err)
	}
	v.DropTLB()
	n, err = pilotTarget{e}.WarmView(v)
	if err != nil || n != v.NumPages() {
		t.Fatalf("warmed %d, %v; want %d", n, err, v.NumPages())
	}
	// Non-member handles are skipped.
	if n, err := (pilotTarget{e}).WarmView("bogus"); n != 0 || err != nil {
		t.Fatalf("bogus warm: %d, %v", n, err)
	}
}

// TestAutopilotQueryDoesNotWaitOnIntake: with an autopilot, queries are
// decoupled from the intake — a query between enqueue and flush runs
// against the last aligned state instead of paying the flush, and Sync
// is the read-your-writes barrier.
func TestAutopilotQueryDoesNotWaitOnIntake(t *testing.T) {
	e := autoEngine(t, dist.NewLinear(5, 0, ccDomain, 64), 64, quietAutopilot())
	r := alignTestRanges[0]
	before, err := e.Query(r[0], r[1])
	if err != nil {
		t.Fatal(err)
	}
	// Move one covered value out of the queried range, fire-and-forget.
	rows, _, err := e.QueryRows(r[0], r[1])
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() == 0 {
		t.Fatal("premise: no covered rows")
	}
	row := rows.Rows()[0]
	if err := e.Update(row, ccDomain-1); err != nil {
		t.Fatal(err)
	}
	mid, err := e.Query(r[0], r[1])
	if err != nil {
		t.Fatal(err)
	}
	if mid.Count != before.Count {
		t.Fatalf("query observed the queued write early: %d != %d", mid.Count, before.Count)
	}
	if _, err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	after, err := e.Query(r[0], r[1])
	if err != nil {
		t.Fatal(err)
	}
	if after.Count != before.Count-1 {
		t.Fatalf("post-sync count %d, want %d", after.Count, before.Count-1)
	}
}

// TestAutopilotConcurrentFairness is the room-lock fairness stress of
// the satellite task: reader scans, fire-and-forget writers and the
// autopilot's background flush/maintenance slices race on one engine
// under -race. All three groups must make progress — no starvation — and
// the final column must be byte-identical to synchronous flushing of the
// same streams.
func TestAutopilotConcurrentFairness(t *testing.T) {
	const (
		pages   = 96
		writers = 3
		readers = 3
		perW    = 600
	)
	g := dist.NewClustered(9, 0, ccDomain, 0.05)
	ap := &autopilot.Config{
		CoalesceCount:    32,
		MaxFlushLatency:  time.Millisecond,
		MaintainInterval: 2 * time.Millisecond,
		ColdTicks:        -1, // keep the pinned views: this test is about fairness
		RebuildFrag:      0.99,
		WarmHottest:      1,
	}
	auto := autoEngine(t, g, pages, ap)
	serial := alignEngine(t, g, pages, 0)

	// Disjoint rows per writer (row ≡ writer mod writers): the final
	// column state is then independent of scheduling.
	streams := workload.ConcurrentUpdaters(11, writers, perW, auto.Column().Rows(), 0, ccDomain)
	for w := range streams {
		for i := range streams[w] {
			r := streams[w][i].Row
			streams[w][i].Row = r - r%writers + w
		}
	}

	var (
		wg           sync.WaitGroup
		writersDone  atomic.Bool
		readerTotal  [readers]int64
		writerVolume atomic.Int64
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(stream []workload.PointUpdate) {
			defer wg.Done()
			for _, u := range stream {
				if err := auto.Update(u.Row, u.Value); err != nil {
					t.Error(err)
					return
				}
				writerVolume.Add(1)
			}
		}(streams[w])
	}
	var readerWg sync.WaitGroup
	for r := 0; r < readers; r++ {
		readerWg.Add(1)
		go func(r int) {
			defer readerWg.Done()
			qs := workload.ConcurrentClients(33, readers, 64, ccDomain, 0.02)[r]
			// Every reader always runs at least one query: on a single
			// hardware thread the writers can finish their whole streams
			// before a reader is first scheduled — that is scheduling,
			// not starvation, and the query still has to win the scan
			// room against the autopilot's background slices.
			for done := false; !done; {
				for _, q := range qs {
					if _, err := auto.Query(q.Lo, q.Hi); err != nil {
						t.Error(err)
						return
					}
					atomic.AddInt64(&readerTotal[r], 1)
					if writersDone.Load() {
						done = true
						break
					}
				}
			}
		}(r)
	}
	wg.Wait()
	writersDone.Store(true)
	readerWg.Wait()
	if t.Failed() {
		return
	}

	if _, err := auto.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := writerVolume.Load(); got != writers*perW {
		t.Fatalf("writers applied %d, want %d", got, writers*perW)
	}
	for r := range readerTotal {
		if readerTotal[r] == 0 {
			t.Fatalf("reader %d starved (0 queries)", r)
		}
	}
	m := auto.Autopilot().Metrics()
	if m.Flushes == 0 {
		t.Fatal("autopilot never flushed in the background")
	}
	if m.Enqueued != uint64(writers*perW) {
		t.Fatalf("autopilot enqueued %d, want %d", m.Enqueued, writers*perW)
	}

	// Byte-identical to synchronous flushing: replay the same disjoint
	// streams serially and compare the whole domain.
	for _, stream := range streams {
		for _, u := range stream {
			if err := serial.Update(u.Row, u.Value); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := serial.FlushUpdates(); err != nil {
		t.Fatal(err)
	}
	for _, q := range [][2]uint64{{0, ccDomain}, {0, ccDomain / 3}, {ccDomain / 2, ccDomain}} {
		sc, su, err := serial.Column().FullScan(q[0], q[1])
		if err != nil {
			t.Fatal(err)
		}
		ac, au, err := auto.Column().FullScan(q[0], q[1])
		if err != nil {
			t.Fatal(err)
		}
		if sc != ac || su != au {
			t.Fatalf("final column state diverged over [%d,%d]: (%d,%d) vs (%d,%d)",
				q[0], q[1], sc, su, ac, au)
		}
		ar, err := auto.Query(q[0], q[1])
		if err != nil {
			t.Fatal(err)
		}
		if ar.Count != ac || ar.Sum != au {
			t.Fatalf("autopilot engine answers diverge from its column over [%d,%d]", q[0], q[1])
		}
	}
}

// TestAutopilotAdaptiveParallelism: with an autopilot, the scan fan-out
// is chosen per operation — after the model learns that tiny scans do
// not amortize worker startup, QueryParallel on a small routed view runs
// serial while the answers stay byte-identical.
func TestAutopilotAdaptiveParallelism(t *testing.T) {
	ap := quietAutopilot()
	cfg := syncConfig()
	cfg.Parallelism = -1
	cfg.Autopilot = ap
	col := testColumn(t, 256, dist.NewLinear(5, 0, ccDomain, 256))
	e := newEngine(t, col, cfg)
	plain := newEngine(t, testColumn(t, 256, dist.NewLinear(5, 0, ccDomain, 256)), syncConfig())

	model := e.Autopilot().Model()
	if model == nil {
		t.Fatal("no cost model")
	}
	queries := workload.SelectivitySweep(3, 40, ccDomain, ccDomain/2, ccDomain/100)
	for _, q := range queries {
		ra, err := e.QueryParallel(q.Lo, q.Hi, -1)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := plain.Query(q.Lo, q.Hi)
		if err != nil {
			t.Fatal(err)
		}
		if ra.Count != rp.Count || ra.Sum != rp.Sum {
			t.Fatalf("adaptive answer (%d,%d) != serial (%d,%d) for [%d,%d]",
				ra.Count, ra.Sum, rp.Count, rp.Sum, q.Lo, q.Hi)
		}
	}
	if model.ScanNsPerPage() == 0 {
		t.Fatal("cost model observed no scans")
	}
	// The learned model must keep scans below the sharding threshold
	// serial and cap large ones at the knob.
	if w := model.ScanWorkers(16, 8, minParallelScanPages); w != 1 {
		t.Fatalf("tiny scan workers %d, want 1", w)
	}
	if w := model.ScanWorkers(1<<20, 8, minParallelScanPages); w != 8 {
		t.Fatalf("huge scan workers %d, want 8", w)
	}

	// Alignment also feeds and consults the model.
	ups := workload.UniformUpdates(9, 500, col.Rows(), 0, ccDomain)
	for _, u := range ups {
		if err := e.Update(u.Row, u.Value); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	if e.Views() == nil {
		t.Fatal("premise: no views")
	}
	if model.AlignNsPerUnit() == 0 {
		t.Fatal("cost model observed no alignments")
	}
}

// TestAutopilotUpdateBatchOrdering pins the mixed-path contract: on an
// autopilot engine, UpdateBatch drains the fire-and-forget intake before
// its direct group commit, so a queued older Update to the same row can
// never be replayed over the newer batched write.
func TestAutopilotUpdateBatchOrdering(t *testing.T) {
	e := autoEngine(t, dist.NewUniform(1, 0, ccDomain), 64, quietAutopilot())
	const row = 7
	if err := e.Update(row, 1); err != nil { // queued, not yet applied
		t.Fatal(err)
	}
	if err := e.UpdateBatch([]RowWrite{{Row: row, Value: 2}}); err != nil {
		t.Fatal(err)
	}
	if got := e.QueuedUpdates(); got != 0 {
		t.Fatalf("UpdateBatch left %d writes queued", got)
	}
	if _, err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	if v, err := e.Column().Value(row); err != nil || v != 2 {
		t.Fatalf("value = %d, %v; want the batched write (2) to win program order", v, err)
	}
	// And the reverse order: batch first, lone update later.
	if err := e.UpdateBatch([]RowWrite{{Row: row, Value: 3}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Update(row, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	if v, _ := e.Column().Value(row); v != 4 {
		t.Fatalf("value = %d, want 4", v)
	}
}

// TestAutopilotCloseDrains: accepted fire-and-forget writes survive
// Close — the final drain applies them to the column before the views
// are released.
func TestAutopilotCloseDrains(t *testing.T) {
	cfg := syncConfig()
	cfg.Autopilot = quietAutopilot()
	col := testColumn(t, 32, dist.NewUniform(1, 0, ccDomain))
	e, err := NewEngine(col, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Update(5, 42); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if v, err := col.Value(5); err != nil || v != 42 {
		t.Fatalf("value after close = %d, %v; want 42", v, err)
	}
	// Fire-and-forget after close is refused, not silently dropped.
	if err := e.Update(6, 7); err == nil {
		t.Fatal("update accepted after Close")
	}
}
