package core

import (
	"testing"

	"github.com/asv-db/asv/internal/dist"
	"github.com/asv-db/asv/internal/storage"
	"github.com/asv-db/asv/internal/xrand"
)

// checkViewInvariant asserts that view v indexes exactly the pages that
// hold at least one value in its covered range — the correctness invariant
// update alignment must preserve.
func checkViewInvariant(t *testing.T, e *Engine, vIdx int) {
	t.Helper()
	v := e.Views()[vIdx]
	col := e.Column()
	want := map[uint64]bool{}
	for p := 0; p < col.NumPages(); p++ {
		pg, err := col.PageBytes(p)
		if err != nil {
			t.Fatal(err)
		}
		if s := storage.ScanFilter(pg, v.Lo(), v.Hi()); s.Count > 0 {
			want[uint64(p)] = true
		}
	}
	ids, err := v.PageIDs()
	if err != nil {
		t.Fatal(err)
	}
	got := map[uint64]bool{}
	for _, id := range ids {
		if got[id] {
			t.Fatalf("view %d indexes page %d twice", vIdx, id)
		}
		got[id] = true
	}
	for p := range want {
		if !got[p] {
			t.Fatalf("view %d [%d,%d] misses qualifying page %d", vIdx, v.Lo(), v.Hi(), p)
		}
	}
	for p := range got {
		if !want[p] {
			t.Fatalf("view %d [%d,%d] still indexes non-qualifying page %d", vIdx, v.Lo(), v.Hi(), p)
		}
	}
}

func TestUpdateBuffersAndApplies(t *testing.T) {
	col := testColumn(t, 32, dist.NewUniform(1, 0, 1000))
	e := newEngine(t, col, syncConfig())
	before, _ := col.Value(100)
	if err := e.Update(100, 424242); err != nil {
		t.Fatal(err)
	}
	after, _ := col.Value(100)
	if after != 424242 {
		t.Fatalf("column value %d, want 424242", after)
	}
	if e.PendingUpdates() != 1 {
		t.Fatalf("PendingUpdates = %d", e.PendingUpdates())
	}
	if before == 424242 {
		t.Fatal("test premise broken")
	}
}

func TestFlushEmptyBatch(t *testing.T) {
	col := testColumn(t, 16, dist.NewUniform(1, 0, 1000))
	e := newEngine(t, col, syncConfig())
	st, err := e.FlushUpdates()
	if err != nil {
		t.Fatal(err)
	}
	if st.BatchSize != 0 || st.PagesAdded != 0 {
		t.Fatalf("empty flush: %+v", st)
	}
}

func TestAlignAddsPage(t *testing.T) {
	// Column values 1000..2000; view over [0, 500] is empty. An update
	// writing 100 must pull the page into the view (case 1).
	col := testColumn(t, 32, dist.NewUniform(1, 1000, 2000))
	e := newEngine(t, col, syncConfig())
	v, err := e.CreateView(0, 500)
	if err != nil {
		t.Fatal(err)
	}
	v.SetRange(0, 500)
	if v.NumPages() != 0 {
		t.Fatalf("premise: view should start empty, has %d pages", v.NumPages())
	}
	if err := e.Update(10*storage.ValuesPerPage+3, 100); err != nil {
		t.Fatal(err)
	}
	st, err := e.FlushUpdates()
	if err != nil {
		t.Fatal(err)
	}
	if st.PagesAdded != 1 || st.PagesRemoved != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if v.NumPages() != 1 {
		t.Fatalf("view has %d pages, want 1", v.NumPages())
	}
	checkViewInvariant(t, e, 0)
	// Query through the engine still matches the ground truth.
	got, err := e.Query(0, 500)
	if err != nil {
		t.Fatal(err)
	}
	wantCount, wantSum, _ := col.FullScan(0, 500)
	if got.Count != wantCount || got.Sum != wantSum {
		t.Fatalf("post-align query (%d,%d), want (%d,%d)", got.Count, got.Sum, wantCount, wantSum)
	}
}

func TestAlignRemovesPage(t *testing.T) {
	// Exactly one slot holds an in-range value; overwriting it must evict
	// the page from the view (case 2 with full-page rescan).
	col := testColumn(t, 32, dist.NewUniform(1, 1000, 2000))
	row := 7*storage.ValuesPerPage + 11
	if _, err := col.SetValue(row, 50); err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, col, syncConfig())
	v, err := e.CreateView(0, 500)
	if err != nil {
		t.Fatal(err)
	}
	v.SetRange(0, 500)
	if v.NumPages() != 1 {
		t.Fatalf("premise: view should hold 1 page, has %d", v.NumPages())
	}
	if err := e.Update(row, 1500); err != nil { // out of view range
		t.Fatal(err)
	}
	st, err := e.FlushUpdates()
	if err != nil {
		t.Fatal(err)
	}
	if st.PagesRemoved != 1 || st.PagesAdded != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.PagesScanned != 1 {
		t.Fatalf("expected exactly one rescan, got %d", st.PagesScanned)
	}
	if v.NumPages() != 0 {
		t.Fatalf("view still has %d pages", v.NumPages())
	}
	checkViewInvariant(t, e, 0)
}

func TestAlignKeepsPageWithOtherQualifyingValues(t *testing.T) {
	// Two in-range values on the page; overwriting one must keep the page
	// (the rescan finds the other).
	col := testColumn(t, 32, dist.NewUniform(1, 1000, 2000))
	rowA := 7*storage.ValuesPerPage + 11
	rowB := 7*storage.ValuesPerPage + 12
	_, _ = col.SetValue(rowA, 50)
	_, _ = col.SetValue(rowB, 60)
	e := newEngine(t, col, syncConfig())
	v, _ := e.CreateView(0, 500)
	v.SetRange(0, 500)
	if err := e.Update(rowA, 1500); err != nil {
		t.Fatal(err)
	}
	st, err := e.FlushUpdates()
	if err != nil {
		t.Fatal(err)
	}
	if st.PagesRemoved != 0 || st.PagesScanned != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if v.NumPages() != 1 {
		t.Fatal("page wrongly evicted")
	}
	checkViewInvariant(t, e, 0)
}

func TestAlignSkipsUnaffectedPages(t *testing.T) {
	// Updates entirely outside the view's range on un-indexed pages must
	// not touch the view, and must not trigger rescans.
	col := testColumn(t, 32, dist.NewUniform(1, 1000, 2000))
	e := newEngine(t, col, syncConfig())
	v, _ := e.CreateView(0, 500)
	v.SetRange(0, 500)
	if err := e.Update(3*storage.ValuesPerPage, 1800); err != nil {
		t.Fatal(err)
	}
	st, err := e.FlushUpdates()
	if err != nil {
		t.Fatal(err)
	}
	if st.PagesAdded+st.PagesRemoved+st.PagesScanned != 0 {
		t.Fatalf("unaffected update caused work: %+v", st)
	}
}

func TestSquashingLastWritePerRow(t *testing.T) {
	// Write in-range then out-of-range to the same row in one batch: the
	// squashed update must reflect only (firstOld, lastNew), so the page
	// is NOT added.
	col := testColumn(t, 32, dist.NewUniform(1, 1000, 2000))
	e := newEngine(t, col, syncConfig())
	v, _ := e.CreateView(0, 500)
	v.SetRange(0, 500)
	row := 9 * storage.ValuesPerPage
	if err := e.Update(row, 100); err != nil { // into range
		t.Fatal(err)
	}
	if err := e.Update(row, 1900); err != nil { // back out
		t.Fatal(err)
	}
	st, err := e.FlushUpdates()
	if err != nil {
		t.Fatal(err)
	}
	if st.NetUpdates != 1 {
		t.Fatalf("NetUpdates = %d, want 1", st.NetUpdates)
	}
	if st.PagesAdded != 0 {
		t.Fatalf("transient value caused page add: %+v", st)
	}
	checkViewInvariant(t, e, 0)
}

func TestAlignMultipleViews(t *testing.T) {
	col := testColumn(t, 64, dist.NewUniform(17, 0, 1_000_000))
	e := newEngine(t, col, syncConfig())
	for _, r := range [][2]uint64{{0, 100_000}, {50_000, 200_000}, {800_000, 900_000}} {
		v, err := e.CreateView(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		v.SetRange(r[0], r[1])
	}
	rng := xrand.New(7)
	for i := 0; i < 500; i++ {
		if err := e.Update(rng.Intn(col.Rows()), rng.Uint64n(1_000_000)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.FlushUpdates(); err != nil {
		t.Fatal(err)
	}
	for i := range e.Views() {
		checkViewInvariant(t, e, i)
	}
	// Ground truth after updates.
	for _, q := range [][2]uint64{{0, 100_000}, {60_000, 190_000}, {820_000, 880_000}} {
		wantCount, wantSum, _ := col.FullScan(q[0], q[1])
		got, err := e.Query(q[0], q[1])
		if err != nil {
			t.Fatal(err)
		}
		if got.Count != wantCount || got.Sum != wantSum {
			t.Fatalf("post-update query [%d,%d] wrong", q[0], q[1])
		}
	}
}

func TestRepeatedBatchesPreserveInvariant(t *testing.T) {
	col := testColumn(t, 64, dist.NewSine(23, 0, 1_000_000, 8))
	e := newEngine(t, col, syncConfig())
	v, err := e.CreateView(100_000, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	v.SetRange(100_000, 300_000)
	rng := xrand.New(31)
	for batch := 0; batch < 10; batch++ {
		for i := 0; i < 200; i++ {
			if err := e.Update(rng.Intn(col.Rows()), rng.Uint64n(1_000_000)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := e.FlushUpdates(); err != nil {
			t.Fatal(err)
		}
		checkViewInvariant(t, e, 0)
	}
	s := e.Stats()
	if s.UpdateBatches != 10 || s.UpdatesBuffered != 2000 {
		t.Fatalf("stats: %+v", s)
	}
	if s.PagesAdded == 0 || s.PagesRemoved == 0 {
		t.Fatalf("expected both adds and removals over 10 batches: %+v", s)
	}
}

func TestUpdateStatsDurationsPopulated(t *testing.T) {
	col := testColumn(t, 64, dist.NewUniform(3, 0, 1_000_000))
	e := newEngine(t, col, syncConfig())
	v, _ := e.CreateView(0, 200_000)
	v.SetRange(0, 200_000)
	rng := xrand.New(1)
	for i := 0; i < 100; i++ {
		_ = e.Update(rng.Intn(col.Rows()), rng.Uint64n(1_000_000))
	}
	st, err := e.FlushUpdates()
	if err != nil {
		t.Fatal(err)
	}
	if st.MapsBytes == 0 || st.MapsLines == 0 {
		t.Fatalf("maps metrics empty: %+v", st)
	}
	if st.ParseDuration <= 0 || st.AlignDuration < 0 {
		t.Fatalf("durations: %+v", st)
	}
	if st.DirtyPages == 0 || st.NetUpdates == 0 {
		t.Fatalf("batch metrics: %+v", st)
	}
}

func TestAlignViewsDirectBatch(t *testing.T) {
	// AlignViews can be driven with an externally-applied batch.
	col := testColumn(t, 32, dist.NewUniform(1, 1000, 2000))
	e := newEngine(t, col, syncConfig())
	v, _ := e.CreateView(0, 500)
	v.SetRange(0, 500)
	row := 4 * storage.ValuesPerPage
	old, err := col.SetValue(row, 42)
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.AlignViews([]Update{{Row: row, Old: old, New: 42}})
	if err != nil {
		t.Fatal(err)
	}
	if st.PagesAdded != 1 {
		t.Fatalf("stats: %+v", st)
	}
	checkViewInvariant(t, e, 0)
}

func TestAlignNoViewsCheap(t *testing.T) {
	col := testColumn(t, 32, dist.NewUniform(1, 0, 100))
	e := newEngine(t, col, syncConfig())
	if err := e.Update(5, 7); err != nil {
		t.Fatal(err)
	}
	st, err := e.FlushUpdates()
	if err != nil {
		t.Fatal(err)
	}
	// With no partial views there is nothing to parse or align.
	if st.MapsLines != 0 || st.ParseDuration != 0 {
		t.Fatalf("no-view flush did work: %+v", st)
	}
}
