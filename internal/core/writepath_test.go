package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/asv-db/asv/internal/dist"
	"github.com/asv-db/asv/internal/view"
	"github.com/asv-db/asv/internal/viewset"
	"github.com/asv-db/asv/internal/workload"
	"github.com/asv-db/asv/internal/xrand"
)

// alignTestRanges are the pinned view ranges of the alignment
// equivalence tests: overlapping, disjoint, and narrow slices of the
// ccDomain.
var alignTestRanges = [][2]uint64{
	{0, ccDomain / 8},
	{ccDomain / 10, ccDomain / 4},
	{ccDomain / 2, ccDomain/2 + ccDomain/16},
	{9 * ccDomain / 10, ccDomain - 1},
}

// alignEngine builds an engine over a fresh column of the generator with
// the pinned test views and the given scan/alignment parallelism.
func alignEngine(t *testing.T, g dist.Generator, pages, parallelism int) *Engine {
	t.Helper()
	cfg := syncConfig()
	cfg.Parallelism = parallelism
	e := newEngine(t, testColumn(t, pages, g), cfg)
	for _, r := range alignTestRanges {
		v, err := e.CreateView(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		v.SetRange(r[0], r[1])
	}
	return e
}

// TestAlignParallelEquivalence is the serial-vs-parallel alignment
// equivalence table: for every registered generator, one update batch
// aligned with fanned-out per-view workers must produce identical
// UpdateStats (PagesAdded, PagesRemoved, PagesScanned — plus the batch
// shape) and identical post-alignment query answers to the serial walk
// on an identical column.
func TestAlignParallelEquivalence(t *testing.T) {
	const pages = 64
	for _, name := range dist.Names() {
		t.Run(name, func(t *testing.T) {
			g, err := dist.ByName(name, 5, 0, ccDomain, pages)
			if err != nil {
				t.Fatal(err)
			}
			serial := alignEngine(t, g, pages, 0)
			parallel := alignEngine(t, g, pages, 3)

			ups := workload.UniformUpdates(77, 800, serial.Column().Rows(), 0, ccDomain)
			for _, e := range []*Engine{serial, parallel} {
				for _, u := range ups {
					if err := e.Update(u.Row, u.Value); err != nil {
						t.Fatal(err)
					}
				}
			}
			ss, err := serial.FlushUpdates()
			if err != nil {
				t.Fatal(err)
			}
			ps, err := parallel.FlushUpdates()
			if err != nil {
				t.Fatal(err)
			}
			if ss.PagesAdded != ps.PagesAdded || ss.PagesRemoved != ps.PagesRemoved ||
				ss.PagesScanned != ps.PagesScanned {
				t.Fatalf("alignment diverged: serial +%d/-%d/~%d, parallel +%d/-%d/~%d",
					ss.PagesAdded, ss.PagesRemoved, ss.PagesScanned,
					ps.PagesAdded, ps.PagesRemoved, ps.PagesScanned)
			}
			if ss.BatchSize != ps.BatchSize || ss.NetUpdates != ps.NetUpdates || ss.DirtyPages != ps.DirtyPages {
				t.Fatalf("batch shape diverged: %+v vs %+v", ss, ps)
			}
			for i := range serial.Views() {
				checkViewInvariant(t, serial, i)
				checkViewInvariant(t, parallel, i)
			}
			// Post-alignment answers match each other and the ground truth.
			for _, r := range alignTestRanges {
				wantCount, wantSum, err := serial.Column().FullScan(r[0], r[1])
				if err != nil {
					t.Fatal(err)
				}
				rs, err := serial.Query(r[0], r[1])
				if err != nil {
					t.Fatal(err)
				}
				rp, err := parallel.Query(r[0], r[1])
				if err != nil {
					t.Fatal(err)
				}
				if rs.Count != wantCount || rs.Sum != wantSum || rp.Count != wantCount || rp.Sum != wantSum {
					t.Fatalf("post-align query [%d,%d]: serial (%d,%d), parallel (%d,%d), want (%d,%d)",
						r[0], r[1], rs.Count, rs.Sum, rp.Count, rp.Sum, wantCount, wantSum)
				}
			}
		})
	}
}

// TestShardedUpdateDeterminism checks the sharded pending buffers
// against the single-buffer write path: disjoint-row writer streams
// applied concurrently must flush to exactly the batch a serial
// application produces — same squashed shape, same page movement, same
// final column state — regardless of shard count or scheduling.
func TestShardedUpdateDeterminism(t *testing.T) {
	const (
		pages   = 64
		writers = 4
	)
	g := dist.NewSine(3, 0, ccDomain, 8)
	mk := func(shards int) *Engine {
		cfg := syncConfig()
		cfg.UpdateShards = shards
		e := newEngine(t, testColumn(t, pages, g), cfg)
		for _, r := range alignTestRanges {
			v, err := e.CreateView(r[0], r[1])
			if err != nil {
				t.Fatal(err)
			}
			v.SetRange(r[0], r[1])
		}
		return e
	}
	serial := mk(1)
	sharded := mk(8)

	// Disjoint rows per writer (row ≡ writer mod writers): per-row update
	// order is then independent of goroutine interleaving.
	streams := workload.ConcurrentUpdaters(11, writers, 400, serial.Column().Rows(), 0, ccDomain)
	for w := range streams {
		for i := range streams[w] {
			r := streams[w][i].Row
			streams[w][i].Row = r - r%writers + w
		}
	}

	for _, stream := range streams {
		for _, u := range stream {
			if err := serial.Update(u.Row, u.Value); err != nil {
				t.Fatal(err)
			}
		}
	}
	var wg sync.WaitGroup
	for _, stream := range streams {
		wg.Add(1)
		go func(stream []workload.PointUpdate) {
			defer wg.Done()
			for _, u := range stream {
				if err := sharded.Update(u.Row, u.Value); err != nil {
					t.Error(err)
					return
				}
			}
		}(stream)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got, want := sharded.PendingUpdates(), serial.PendingUpdates(); got != want {
		t.Fatalf("pending: sharded %d, serial %d", got, want)
	}

	ss, err := serial.FlushUpdates()
	if err != nil {
		t.Fatal(err)
	}
	ps, err := sharded.FlushUpdates()
	if err != nil {
		t.Fatal(err)
	}
	if ss.BatchSize != ps.BatchSize || ss.NetUpdates != ps.NetUpdates || ss.DirtyPages != ps.DirtyPages ||
		ss.PagesAdded != ps.PagesAdded || ss.PagesRemoved != ps.PagesRemoved || ss.PagesScanned != ps.PagesScanned {
		t.Fatalf("flush diverged:\nserial  %+v\nsharded %+v", ss, ps)
	}
	for i := range serial.Views() {
		sIDs, err := serial.Views()[i].PageIDs()
		if err != nil {
			t.Fatal(err)
		}
		pIDs, err := sharded.Views()[i].PageIDs()
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(sIDs) != fmt.Sprint(pIDs) {
			t.Fatalf("view %d page sets diverged:\n%v\n%v", i, sIDs, pIDs)
		}
	}
	for _, r := range alignTestRanges {
		sc, su, err := serial.Column().FullScan(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		pc, pu, err := sharded.Column().FullScan(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		if sc != pc || su != pu {
			t.Fatalf("final column state diverged over [%d,%d]", r[0], r[1])
		}
	}
}

// TestConcurrentShardedUpdateStress races Update and UpdateBatch writers
// against queries, explicit flushes and observer polls on the sharded
// write path with parallel alignment — the -race exercise of the whole
// room-lock discipline. Afterwards the engine must converge to the
// column's ground truth.
func TestConcurrentShardedUpdateStress(t *testing.T) {
	const (
		pages   = 96
		writers = 4
		readers = 3
	)
	col := testColumn(t, pages, dist.NewClustered(9, 0, ccDomain, 0.05))
	cfg := syncConfig()
	cfg.UpdateShards = 8
	cfg.Parallelism = 2
	eng := newEngine(t, col, cfg)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(1000 + w))
			if w%2 == 0 {
				// Lone updates.
				for i := 0; i < 300; i++ {
					if err := eng.Update(rng.Intn(col.Rows()), rng.Uint64n(ccDomain)); err != nil {
						t.Error(err)
						return
					}
				}
				return
			}
			// Group commits.
			for b := 0; b < 20; b++ {
				ws := make([]RowWrite, 15)
				for i := range ws {
					ws[i] = RowWrite{Row: rng.Intn(col.Rows()), Value: rng.Uint64n(ccDomain)}
				}
				if err := eng.UpdateBatch(ws); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := xrand.New(uint64(2000 + r))
			for i := 0; i < 40; i++ {
				lo := rng.Uint64n(ccDomain)
				if _, _, err := eng.QueryAggregate(lo, lo+rng.Uint64n(ccDomain/10)); err != nil {
					t.Error(err)
					return
				}
				_ = eng.PendingUpdates()
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			if _, err := eng.FlushUpdates(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	if _, err := eng.FlushUpdates(); err != nil {
		t.Fatal(err)
	}
	if n := eng.PendingUpdates(); n != 0 {
		t.Fatalf("%d updates still pending", n)
	}
	for _, q := range [][2]uint64{{0, ccDomain}, {ccDomain / 4, ccDomain / 2}, {0, 5000}} {
		wantCount, wantSum, err := col.FullScan(q[0], q[1])
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Query(q[0], q[1])
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != wantCount || res.Sum != wantSum {
			t.Fatalf("[%d,%d]: engine (%d,%d) != column (%d,%d)",
				q[0], q[1], res.Count, res.Sum, wantCount, wantSum)
		}
	}
	if st := eng.Stats(); st.UpdatesBuffered != writers/2*300+writers/2*20*15 {
		t.Fatalf("UpdatesBuffered = %d", st.UpdatesBuffered)
	}
}

// TestUpdateBatchMatchesUpdates pins UpdateBatch's contract: a group
// commit is semantically identical to the same sequence of lone Update
// calls, and an invalid row mid-batch leaves the valid prefix applied
// and buffered.
func TestUpdateBatchMatchesUpdates(t *testing.T) {
	g := dist.NewUniform(1, 0, ccDomain)
	lone := newEngine(t, testColumn(t, 32, g), syncConfig())
	batched := newEngine(t, testColumn(t, 32, g), syncConfig())
	ups := workload.UniformUpdates(3, 120, lone.Column().Rows(), 0, ccDomain)

	for _, u := range ups {
		if err := lone.Update(u.Row, u.Value); err != nil {
			t.Fatal(err)
		}
	}
	ws := make([]RowWrite, len(ups))
	for i, u := range ups {
		ws[i] = RowWrite{Row: u.Row, Value: u.Value}
	}
	if err := batched.UpdateBatch(ws[:50]); err != nil {
		t.Fatal(err)
	}
	if err := batched.UpdateBatch(ws[50:]); err != nil {
		t.Fatal(err)
	}
	if lone.PendingUpdates() != batched.PendingUpdates() {
		t.Fatalf("pending: %d vs %d", lone.PendingUpdates(), batched.PendingUpdates())
	}
	ls, err := lone.FlushUpdates()
	if err != nil {
		t.Fatal(err)
	}
	bs, err := batched.FlushUpdates()
	if err != nil {
		t.Fatal(err)
	}
	if ls.BatchSize != bs.BatchSize || ls.NetUpdates != bs.NetUpdates || ls.DirtyPages != bs.DirtyPages {
		t.Fatalf("flush shapes differ: %+v vs %+v", ls, bs)
	}
	wantCount, wantSum, _ := lone.Column().FullScan(0, ccDomain)
	gotCount, gotSum, _ := batched.Column().FullScan(0, ccDomain)
	if wantCount != gotCount || wantSum != gotSum {
		t.Fatal("column states diverged")
	}

	// Error mid-batch: the prefix stays applied.
	bad := []RowWrite{{Row: 0, Value: 1}, {Row: 1, Value: 2}, {Row: -7, Value: 3}, {Row: 2, Value: 4}}
	if err := batched.UpdateBatch(bad); err == nil {
		t.Fatal("invalid row accepted")
	}
	if got := batched.PendingUpdates(); got != 2 {
		t.Fatalf("pending after failed batch = %d, want 2", got)
	}
	if v, _ := batched.Column().Value(2); v == 4 {
		t.Fatal("write after failing element was applied")
	}
	if err := batched.UpdateBatch(nil); err != nil {
		t.Fatal(err)
	}
}

// TestEmptyFlushNotCounted pins the UpdateBatches counter fix: no-op
// flushes (and empty AlignViews calls) must not count as update batches,
// or per-batch averages skew.
func TestEmptyFlushNotCounted(t *testing.T) {
	col := testColumn(t, 16, dist.NewUniform(1, 0, 1000))
	e := newEngine(t, col, syncConfig())
	if _, err := e.FlushUpdates(); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().UpdateBatches; got != 0 {
		t.Fatalf("empty flush counted: UpdateBatches = %d", got)
	}
	if _, err := e.AlignViews(nil); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().UpdateBatches; got != 0 {
		t.Fatalf("empty AlignViews counted: UpdateBatches = %d", got)
	}
	if err := e.Update(3, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := e.FlushUpdates(); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().UpdateBatches; got != 1 {
		t.Fatalf("non-empty flush: UpdateBatches = %d, want 1", got)
	}
	if _, err := e.FlushUpdates(); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().UpdateBatches; got != 1 {
		t.Fatalf("trailing empty flush counted: UpdateBatches = %d", got)
	}
}

// rebuildTestEngine builds an engine with three pinned views for the
// RebuildViews fault-injection tests.
func rebuildTestEngine(t *testing.T) *Engine {
	t.Helper()
	col := testColumn(t, 64, dist.NewSine(17, 0, ccDomain, 8))
	e := newEngine(t, col, syncConfig())
	for _, r := range [][2]uint64{{0, ccDomain / 8}, {ccDomain / 4, ccDomain / 3}, {ccDomain / 2, 3 * ccDomain / 4}} {
		v, err := e.CreateView(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		v.SetRange(r[0], r[1])
	}
	return e
}

// TestRebuildViewsReleaseError: a failing release mid-rebuild must not
// leak the remaining old views or drop any range from the rebuilt set —
// all ranges are rebuilt and the first release error is reported.
func TestRebuildViewsReleaseError(t *testing.T) {
	e := rebuildTestEngine(t)
	ranges := [][2]uint64{}
	for _, v := range e.Views() {
		ranges = append(ranges, [2]uint64{v.Lo(), v.Hi()})
	}
	boom := errors.New("injected release failure")
	calls, released := 0, 0
	e.releaseHook = func(v *view.View) error {
		calls++
		if calls == 2 {
			return boom // the view's area stays mapped; rebuild must go on
		}
		released++
		return v.Release()
	}
	err := e.RebuildViews()
	e.releaseHook = nil
	if !errors.Is(err, boom) {
		t.Fatalf("RebuildViews error = %v, want injected failure", err)
	}
	if calls != 3 || released != 2 {
		t.Fatalf("release loop stopped early: %d calls, %d released", calls, released)
	}
	vs := e.Views()
	if len(vs) != len(ranges) {
		t.Fatalf("rebuilt %d views, want %d — ranges were dropped", len(vs), len(ranges))
	}
	for i, v := range vs {
		if v.Lo() != ranges[i][0] || v.Hi() != ranges[i][1] {
			t.Fatalf("view %d range [%d,%d], want %v", i, v.Lo(), v.Hi(), ranges[i])
		}
		checkViewInvariant(t, e, i)
	}
}

// TestRebuildViewsCreateError: a failing view creation mid-rebuild must
// not abandon the later ranges — they are still rebuilt, and the first
// creation error is reported.
func TestRebuildViewsCreateError(t *testing.T) {
	e := rebuildTestEngine(t)
	ranges := [][2]uint64{}
	for _, v := range e.Views() {
		ranges = append(ranges, [2]uint64{v.Lo(), v.Hi()})
	}
	boom := errors.New("injected create failure")
	e.createHook = func(lo, hi uint64) (*view.View, error) {
		if lo == ranges[1][0] && hi == ranges[1][1] {
			return nil, boom
		}
		return view.Create(e.col, lo, hi, e.cfg.Create, e.mapper)
	}
	err := e.RebuildViews()
	e.createHook = nil
	if !errors.Is(err, boom) {
		t.Fatalf("RebuildViews error = %v, want injected failure", err)
	}
	vs := e.Views()
	if len(vs) != 2 {
		t.Fatalf("rebuilt %d views, want 2 (all ranges but the failing one)", len(vs))
	}
	want := [][2]uint64{ranges[0], ranges[2]}
	for i, v := range vs {
		if v.Lo() != want[i][0] || v.Hi() != want[i][1] {
			t.Fatalf("view %d range [%d,%d], want %v", i, v.Lo(), v.Hi(), want[i])
		}
		checkViewInvariant(t, e, i)
	}
	// The engine stays usable after the partial rebuild.
	wantCount, wantSum, _ := e.Column().FullScan(0, ccDomain/8)
	res, err := e.Query(0, ccDomain/8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != wantCount || res.Sum != wantSum {
		t.Fatal("post-rebuild query wrong")
	}
}

// TestQueryDecisionNone pins the DecisionNone sentinel at the engine
// level: queries that never build a candidate — non-adaptive engines and
// frozen sets — report DecisionNone, never a phantom "inserted".
func TestQueryDecisionNone(t *testing.T) {
	if (QueryResult{}).Decision != viewset.DecisionNone {
		t.Fatal("QueryResult zero value does not report DecisionNone")
	}
	col := testColumn(t, 64, dist.NewLinear(5, 0, ccDomain, 64))
	base := newEngine(t, col, BaselineConfig())
	res, err := base.Query(0, ccDomain/4)
	if err != nil {
		t.Fatal(err)
	}
	if res.CandidateBuilt || res.Decision != viewset.DecisionNone {
		t.Fatalf("baseline query: %+v, want DecisionNone", res)
	}

	cfg := syncConfig()
	cfg.MaxViews = 1
	froz := newEngine(t, col, cfg)
	rng := xrand.New(2)
	for i := 0; i < 10 && !froz.ViewSet().Frozen(); i++ {
		lo := rng.Uint64n(ccDomain / 2)
		if _, err := froz.Query(lo, lo+ccDomain/10); err != nil {
			t.Fatal(err)
		}
	}
	if !froz.ViewSet().Frozen() {
		t.Fatal("premise: set never froze")
	}
	res, err = froz.Query(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.CandidateBuilt || res.Decision != viewset.DecisionNone {
		t.Fatalf("frozen query: %+v, want DecisionNone", res)
	}
}
