package serve

import (
	"fmt"
	"reflect"
	"testing"

	asv "github.com/asv-db/asv"
	"github.com/asv-db/asv/internal/dist"
	"github.com/asv-db/asv/internal/workload"
	"github.com/asv-db/asv/internal/xrand"
)

const (
	eqPages  = 32
	eqDomain = 100_000_000
	eqSeed   = 42
)

// refAnswer is the comparable part of a query answer: the data a client
// observes. Routing telemetry (pages scanned, views used) legitimately
// differs between one engine and N — each shard adapts its own view set.
type refAnswer struct {
	Count int
	Sum   uint64
	Rows  []int
	Agg   asv.AggregateResult
}

func dataAnswer(ans asv.QueryAnswer) refAnswer {
	a := refAnswer{Count: ans.Count, Sum: ans.Sum}
	if ans.Rows != nil {
		a.Rows = ans.Rows.Rows()
	}
	if ans.Agg != nil {
		a.Agg = *ans.Agg
	}
	return a
}

// eqQueries is the deterministic probe set: a fixed-selectivity stream
// plus the edge ranges (full domain, empty range, single value).
func eqQueries() []workload.Query {
	qs := workload.FixedSelectivity(eqSeed, 12, eqDomain, 0.05)
	qs = append(qs,
		workload.Query{Lo: 0, Hi: eqDomain},
		workload.Query{Lo: eqDomain + 1, Hi: eqDomain + 2},
		workload.Query{Lo: eqDomain / 2, Hi: eqDomain / 2},
	)
	return qs
}

// TestShardScatterGatherEquivalence pins the shard layer's fidelity
// contract: for every generator, shard count and partitioning, the
// scatter-gathered answers — row sets and every aggregate — are
// byte-identical to a single engine over the same data, before and
// after an identical update batch.
func TestShardScatterGatherEquivalence(t *testing.T) {
	for _, name := range dist.Names() {
		for _, shards := range []int{1, 2, 4, 8} {
			for _, part := range []Partitioning{RangeParts, HashParts} {
				t.Run(fmt.Sprintf("%s/%d-%s", name, shards, part), func(t *testing.T) {
					testEquivalence(t, name, shards, part)
				})
			}
		}
	}
}

func testEquivalence(t *testing.T, distName string, shards int, part Partitioning) {
	g, err := dist.ByName(distName, eqSeed, 0, eqDomain, eqPages)
	if err != nil {
		t.Fatal(err)
	}

	refDB, err := asv.Open(asv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer refDB.Close()
	ref, err := refDB.CreateColumn("ref", eqPages, asv.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Fill(g); err != nil {
		t.Fatal(err)
	}

	shardDB, err := asv.Open(asv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer shardDB.Close()
	col, err := NewShardedColumn(shardDB, "sharded", eqPages, shards, part, asv.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Fill(g); err != nil {
		t.Fatal(err)
	}

	compare := func(stage string) {
		t.Helper()
		for qi, q := range eqQueries() {
			want, err := ref.QueryOpt(q.Lo, q.Hi, asv.Rows(), asv.Aggregate())
			if err != nil {
				t.Fatalf("%s q%d: reference: %v", stage, qi, err)
			}
			got, err := col.QueryOpt(q.Lo, q.Hi, asv.Rows(), asv.Aggregate())
			if err != nil {
				t.Fatalf("%s q%d: sharded: %v", stage, qi, err)
			}
			if !reflect.DeepEqual(dataAnswer(got), dataAnswer(want)) {
				t.Fatalf("%s q%d [%d, %d]: sharded answer diverged:\n got %+v\nwant %+v",
					stage, qi, q.Lo, q.Hi, dataAnswer(got), dataAnswer(want))
			}
		}
	}
	compare("fresh")

	// The same update stream through both surfaces, then re-compare.
	ups := workload.UniformUpdates(eqSeed+7, 500, col.Rows(), 0, eqDomain)
	for _, u := range ups {
		if err := ref.Update(u.Row, u.Value); err != nil {
			t.Fatal(err)
		}
		if err := col.Update(u.Row, u.Value); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := col.Sync(); err != nil {
		t.Fatal(err)
	}
	compare("updated")
}

// TestShardRowMappingRoundTrip pins the page/row bijection of both
// partitionings, including uneven splits.
func TestShardRowMappingRoundTrip(t *testing.T) {
	db, err := asv.Open(asv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, shards := range []int{1, 3, 5, 8} {
		for _, part := range []Partitioning{RangeParts, HashParts} {
			col, err := NewShardedColumn(db, fmt.Sprintf("m%d%s", shards, part), 13, shards, part, asv.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			seen := make(map[int]bool)
			for p := 0; p < col.NumPages(); p++ {
				s, local := col.locatePage(p)
				if s < 0 || s >= shards || local < 0 || local >= col.counts[s] {
					t.Fatalf("%d shards %s: page %d -> (%d, %d) out of bounds", shards, part, p, s, local)
				}
				if back := col.globalPage(s, local); back != p {
					t.Fatalf("%d shards %s: page %d -> (%d, %d) -> %d", shards, part, p, s, local, back)
				}
				seen[p] = true
			}
			if len(seen) != col.NumPages() {
				t.Fatalf("%d shards %s: %d of %d pages mapped", shards, part, len(seen), col.NumPages())
			}
			for _, row := range []int{0, 1, asv.ValuesPerPage - 1, asv.ValuesPerPage, col.Rows() - 1} {
				s, local := col.locateRow(row)
				if back := col.globalRow(s, local); back != row {
					t.Fatalf("%d shards %s: row %d -> (%d, %d) -> %d", shards, part, row, s, local, back)
				}
			}
			if err := col.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestShardSnapshotSingleInstant pins the snapshot contract: all
// per-shard pins observe exactly the writes admitted before the call,
// and the pinned answers stay repeatable while the live column moves.
func TestShardSnapshotSingleInstant(t *testing.T) {
	db, err := asv.Open(asv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	col, err := NewShardedColumn(db, "snap", 16, 4, RangeParts, asv.WithAutopilot(asv.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Fill(asv.Uniform(eqSeed, 0, eqDomain)); err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(eqSeed)
	for i := 0; i < 256; i++ {
		if err := col.Update(rng.Intn(col.Rows()), rng.Uint64n(eqDomain)); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := col.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	before, err := snap.QueryOpt(0, eqDomain, asv.Aggregate())
	if err != nil {
		t.Fatal(err)
	}
	if before.Count != col.Rows() {
		t.Fatalf("pinned full-domain count %d, want %d: a shard missed admitted writes", before.Count, col.Rows())
	}
	for i := 0; i < 1024; i++ {
		if err := col.Update(rng.Intn(col.Rows()), rng.Uint64n(eqDomain)); err != nil {
			t.Fatal(err)
		}
	}
	if err := col.Sync(); err != nil {
		t.Fatal(err)
	}
	after, err := snap.QueryOpt(0, eqDomain, asv.Aggregate())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dataAnswer(after), dataAnswer(before)) {
		t.Fatalf("pinned reads not repeatable across concurrent writes:\n got %+v\nwant %+v",
			dataAnswer(after), dataAnswer(before))
	}
}
