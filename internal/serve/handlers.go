package serve

import (
	"fmt"
	"net/http"
	"strconv"

	asv "github.com/asv-db/asv"
	"github.com/asv-db/asv/internal/core"
	"github.com/asv-db/asv/internal/obs"
)

// This file is the JSON surface of the server: one request/response
// pair per endpoint over the QueryOpt / Update / Snapshot /
// CreateViewOpt facade, with the request-scoped limits and the
// per-tenant backpressure applied at the boundary.

// columnInfo is one column of a list response.
type columnInfo struct {
	Name         string `json:"name"`
	Pages        int    `json:"pages"`
	Rows         int    `json:"rows"`
	Shards       int    `json:"shards"`
	Partitioning string `json:"partitioning"`
	Views        int    `json:"views"`
	Queued       int    `json:"queued_updates"`
}

func describe(col *ShardedColumn) columnInfo {
	return columnInfo{
		Name:         col.Name(),
		Pages:        col.NumPages(),
		Rows:         col.Rows(),
		Shards:       col.Shards(),
		Partitioning: col.Part().String(),
		Views:        col.Views(),
		Queued:       col.QueuedUpdates(),
	}
}

func (s *Server) handleColumnsList(w http.ResponseWriter, r *http.Request, t *Tenant) {
	cols := t.Columns()
	out := make([]columnInfo, 0, len(cols))
	for _, col := range cols {
		out = append(out, describe(col))
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"tenant": t.Name(), "columns": out})
}

// fillSpec names a deterministic generator for the created column.
type fillSpec struct {
	Dist string `json:"dist"`
	Seed uint64 `json:"seed"`
	Lo   uint64 `json:"lo"`
	Hi   uint64 `json:"hi"`
}

type createColumnRequest struct {
	Name         string    `json:"name"`
	Pages        int       `json:"pages"`
	Shards       int       `json:"shards"`
	Partitioning string    `json:"partitioning"`
	Autopilot    bool      `json:"autopilot"`
	Fill         *fillSpec `json:"fill"`
}

func (s *Server) handleColumnCreate(w http.ResponseWriter, r *http.Request, t *Tenant) {
	var req createColumnRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Pages <= 0 || req.Pages > s.lim.MaxPages {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("serve: pages %d out of range [1, %d]", req.Pages, s.lim.MaxPages))
		return
	}
	if req.Shards == 0 {
		req.Shards = 1
	}
	part, err := PartitioningByName(req.Partitioning)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	cfg := asv.DefaultConfig()
	if req.Autopilot {
		cfg = asv.WithAutopilot(cfg)
	}
	col, err := t.CreateColumn(req.Name, req.Pages, req.Shards, part, cfg)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Fill != nil {
		g, err := asv.GeneratorByName(req.Fill.Dist, req.Fill.Seed, req.Fill.Lo, req.Fill.Hi, req.Pages)
		if err == nil {
			err = col.Fill(g)
		}
		if err != nil {
			_ = t.CloseColumn(req.Name) //asv:ignore-err unwinding a failed fill; the fill error is returned
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	s.writeJSON(w, http.StatusCreated, describe(col))
}

func (s *Server) handleColumnClose(w http.ResponseWriter, r *http.Request, t *Tenant) {
	name := r.PathValue("name")
	if err := t.CloseColumn(name); err != nil {
		s.writeError(w, http.StatusNotFound, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"closed": name})
}

// column resolves the path column or writes 404.
func (s *Server) column(w http.ResponseWriter, r *http.Request, t *Tenant) (*ShardedColumn, bool) {
	name := r.PathValue("name")
	col, ok := t.Column(name)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown column %q", name))
	}
	return col, ok
}

type queryRequest struct {
	Lo        uint64 `json:"lo"`
	Hi        uint64 `json:"hi"`
	Rows      bool   `json:"rows"`
	Aggregate bool   `json:"aggregate"`
	Workers   int    `json:"workers"`
}

type aggregateResponse struct {
	Count int    `json:"count"`
	Sum   uint64 `json:"sum"`
	Min   uint64 `json:"min"`
	Max   uint64 `json:"max"`
}

type queryResponse struct {
	Count         int                `json:"count"`
	Sum           uint64             `json:"sum"`
	PagesScanned  int                `json:"pages_scanned"`
	ViewsUsed     int                `json:"views_used"`
	UsedFullView  bool               `json:"used_full_view"`
	Rows          []int              `json:"row_ids,omitempty"`
	RowsTruncated bool               `json:"rows_truncated,omitempty"`
	Agg           *aggregateResponse `json:"aggregate,omitempty"`
	Trace         string             `json:"trace,omitempty"`
}

// queryOptions assembles the per-shard query options from the request
// body plus the ?trace=1 query parameter, which attaches a span tree
// and returns its rendering in the response.
func queryOptions(r *http.Request, req queryRequest) core.QueryOptions {
	var o core.QueryOptions
	o.CollectRows = req.Rows
	o.ComputeAggregate = req.Aggregate
	if req.Workers != 0 {
		o.Workers, o.HasWorkers = req.Workers, true
	}
	if r.URL.Query().Get("trace") == "1" {
		o.Trace = obs.NewTrace("http query")
	}
	return o
}

// answerResponse renders a gathered answer, applying the MaxRows
// truncation limit.
func (s *Server) answerResponse(ans asv.QueryAnswer) queryResponse {
	resp := queryResponse{
		Count:        ans.Count,
		Sum:          ans.Sum,
		PagesScanned: ans.PagesScanned,
		ViewsUsed:    ans.ViewsUsed,
		UsedFullView: ans.UsedFullView,
	}
	if ans.Rows != nil {
		resp.Rows = make([]int, 0, min(ans.Rows.Len(), s.lim.MaxRows))
		ans.Rows.ForEach(func(row int) bool {
			if len(resp.Rows) >= s.lim.MaxRows {
				resp.RowsTruncated = true
				return false
			}
			resp.Rows = append(resp.Rows, row)
			return true
		})
	}
	if ans.Agg != nil {
		resp.Agg = &aggregateResponse{Count: ans.Agg.Count, Sum: ans.Agg.Sum, Min: ans.Agg.Min, Max: ans.Agg.Max}
	}
	if ans.Trace != nil {
		resp.Trace = ans.Trace.String()
	}
	return resp
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, t *Tenant) {
	col, ok := s.column(w, r, t)
	if !ok {
		return
	}
	var req queryRequest
	if !s.decode(w, r, &req) {
		return
	}
	o := queryOptions(r, req)
	ans, err := col.QueryOpt(req.Lo, req.Hi, rawOptions(o))
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, s.answerResponse(ans))
}

type rowWrite struct {
	Row   int    `json:"row"`
	Value uint64 `json:"value"`
}

type updateRequest struct {
	Row    int        `json:"row"`
	Value  uint64     `json:"value"`
	Writes []rowWrite `json:"writes"`
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request, t *Tenant) {
	col, ok := s.column(w, r, t)
	if !ok {
		return
	}
	var req updateRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Writes) > s.lim.MaxBatch {
		s.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("serve: batch of %d writes exceeds the %d-write limit", len(req.Writes), s.lim.MaxBatch))
		return
	}
	// Per-tenant backpressure: when the tenant's autopilot intakes are
	// already MaxQueued writes deep, refuse instead of queueing more —
	// a slow tenant sheds its own load rather than growing everyone's
	// flush latency.
	if queued := t.QueuedUpdates(); queued >= s.lim.MaxQueued {
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("serve: tenant %q has %d updates queued (limit %d)", t.Name(), queued, s.lim.MaxQueued))
		return
	}
	var err error
	applied := 0
	if len(req.Writes) > 0 {
		writes := make([]asv.RowWrite, len(req.Writes))
		for i, wr := range req.Writes {
			writes[i] = asv.RowWrite{Row: wr.Row, Value: wr.Value}
		}
		err = col.UpdateBatch(writes)
		applied = len(writes)
	} else {
		err = col.Update(req.Row, req.Value)
		applied = 1
	}
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"accepted": applied, "queued_updates": col.QueuedUpdates()})
}

func (s *Server) handleSync(w http.ResponseWriter, r *http.Request, t *Tenant) {
	col, ok := s.column(w, r, t)
	if !ok {
		return
	}
	if err := col.Sync(); err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"queued_updates": col.QueuedUpdates()})
}

type viewRange struct {
	Lo uint64 `json:"lo"`
	Hi uint64 `json:"hi"`
}

type createViewRequest struct {
	Lo     uint64      `json:"lo"`
	Hi     uint64      `json:"hi"`
	Lazy   *bool       `json:"lazy"`
	Pinned bool        `json:"pinned"`
	Batch  []viewRange `json:"batch"`
}

func (s *Server) handleViewCreate(w http.ResponseWriter, r *http.Request, t *Tenant) {
	col, ok := s.column(w, r, t)
	if !ok {
		return
	}
	var req createViewRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Batch) > s.lim.MaxBatch {
		s.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("serve: batch of %d views exceeds the %d-range limit", len(req.Batch), s.lim.MaxBatch))
		return
	}
	var opts []asv.ViewOption
	if req.Lazy != nil {
		if *req.Lazy {
			opts = append(opts, asv.Lazy())
		} else {
			opts = append(opts, asv.Eager())
		}
	}
	if req.Pinned {
		opts = append(opts, asv.Pinned())
	}
	if len(req.Batch) > 0 {
		extra := make([]asv.ViewRange, len(req.Batch))
		for i, vr := range req.Batch {
			extra[i] = asv.ViewRange{Lo: vr.Lo, Hi: vr.Hi}
		}
		opts = append(opts, asv.Batch(extra...))
	}
	if err := col.CreateViewOpt(req.Lo, req.Hi, opts...); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.writeJSON(w, http.StatusCreated, map[string]any{"views": col.Views()})
}

func (s *Server) handleSnapshotCreate(w http.ResponseWriter, r *http.Request, t *Tenant) {
	col, ok := s.column(w, r, t)
	if !ok {
		return
	}
	snap, err := col.Snapshot() //asv:handoff the pins are owned by the tenant's snapshot table until DELETE or tenant close
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	id, err := t.AddSnapshot(col.Name(), snap)
	if err != nil {
		_ = snap.Close() //asv:ignore-err unwinding a refused registration; the registration error is returned
		s.writeError(w, http.StatusConflict, err)
		return
	}
	s.writeJSON(w, http.StatusCreated, map[string]any{"id": strconv.FormatUint(id, 10)})
}

func (s *Server) handleSnapshotQuery(w http.ResponseWriter, r *http.Request, t *Tenant) {
	col, ok := s.column(w, r, t)
	if !ok {
		return
	}
	id, err := pathUint(r, "id")
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	snap, ok := t.SnapshotHandle(col.Name(), id)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown snapshot %d on column %q", id, col.Name()))
		return
	}
	var req queryRequest
	if !s.decode(w, r, &req) {
		return
	}
	o := queryOptions(r, req)
	ans, err := snap.QueryOpt(req.Lo, req.Hi, rawOptions(o))
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, s.answerResponse(ans))
}

func (s *Server) handleSnapshotClose(w http.ResponseWriter, r *http.Request, t *Tenant) {
	col, ok := s.column(w, r, t)
	if !ok {
		return
	}
	id, err := pathUint(r, "id")
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := t.CloseSnapshot(col.Name(), id); err != nil {
		s.writeError(w, http.StatusNotFound, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"closed": strconv.FormatUint(id, 10)})
}

func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request, t *Tenant) {
	col, ok := s.column(w, r, t)
	if !ok {
		return
	}
	s.writeJSON(w, http.StatusOK, col.Telemetry())
}
