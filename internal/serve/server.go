package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"github.com/asv-db/asv/internal/obs"
)

// TenantHeader carries the tenant name when it is not in the path:
// every /t/{tenant}/... route is also registered without the /t/{tenant}
// prefix, resolving the tenant from this header instead.
const TenantHeader = "X-Asv-Tenant"

// ServerConfig configures a Server; the zero value serves with the
// documented defaults.
type ServerConfig struct {
	// Limits are the request-scoped guard rails (zero fields default).
	Limits Limits
	// Registry receives the server's request counters and latency
	// histograms; nil creates a private one.
	Registry *obs.Registry
}

// Server is the asvd HTTP front end: a stdlib-only JSON API over a
// tenant catalog of sharded adaptive columns. Create one with
// NewServer, run it with Serve or ListenAndServe, stop it with
// Shutdown — which drains in-flight requests first and closes the
// tenant catalog after, so no request ever observes a half-closed
// engine.
type Server struct {
	cat *Catalog
	lim Limits
	reg *obs.Registry
	mux *http.ServeMux
	srv *http.Server
}

// NewServer builds a server over a fresh tenant catalog.
func NewServer(cfg ServerConfig) *Server {
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		cat: NewCatalog(),
		lim: cfg.Limits.withDefaults(),
		reg: reg,
		mux: http.NewServeMux(),
	}
	s.routes()
	s.srv = &http.Server{Handler: s.mux}
	return s
}

// Catalog exposes the tenant catalog (the smoke demo and tests reach
// through it; HTTP clients use the API).
func (s *Server) Catalog() *Catalog { return s.cat }

// Registry exposes the server's instrument registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Handler returns the HTTP handler (for tests driving the mux without a
// listener).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until Shutdown. It returns
// http.ErrServerClosed after a clean shutdown, like http.Server.Serve.
func (s *Server) Serve(l net.Listener) error { return s.srv.Serve(l) }

// ListenAndServe binds addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Shutdown stops the server gracefully: stop accepting, drain every
// in-flight request (bounded by ctx), then close the tenant catalog —
// in that order, so requests never race tenant teardown. The catalog is
// closed even when the drain deadline expires; the first error wins.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	if cerr := s.cat.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// tenantHandler is one endpoint's logic, invoked with the resolved
// tenant.
type tenantHandler func(w http.ResponseWriter, r *http.Request, t *Tenant)

// routes registers every endpoint, each under both its path-tenant form
// (/t/{tenant}/...) and its header-tenant form (tenant from
// X-Asv-Tenant).
func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, http.StatusOK, map[string]any{"ok": true, "tenants": len(s.cat.Names())})
	})
	s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, http.StatusOK, s.reg.Snapshot())
	})
	s.mux.HandleFunc("DELETE /t/{tenant}", s.instrumented("tenant_close", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("tenant")
		if err := s.cat.CloseTenant(name); err != nil {
			s.writeError(w, http.StatusNotFound, err)
			return
		}
		s.writeJSON(w, http.StatusOK, map[string]any{"closed": name})
	}))

	s.route("GET", "/columns", "columns_list", s.handleColumnsList)
	s.route("POST", "/columns", "column_create", s.handleColumnCreate)
	s.route("DELETE", "/columns/{name}", "column_close", s.handleColumnClose)
	s.route("POST", "/columns/{name}/query", "query", s.handleQuery)
	s.route("POST", "/columns/{name}/update", "update", s.handleUpdate)
	s.route("POST", "/columns/{name}/sync", "sync", s.handleSync)
	s.route("POST", "/columns/{name}/views", "view_create", s.handleViewCreate)
	s.route("POST", "/columns/{name}/snapshots", "snapshot_create", s.handleSnapshotCreate)
	s.route("POST", "/columns/{name}/snapshots/{id}/query", "snapshot_query", s.handleSnapshotQuery)
	s.route("DELETE", "/columns/{name}/snapshots/{id}", "snapshot_close", s.handleSnapshotClose)
	s.route("GET", "/columns/{name}/telemetry", "telemetry", s.handleTelemetry)
}

// route registers one endpoint under both tenant-resolution forms.
func (s *Server) route(method, path, endpoint string, h tenantHandler) {
	s.mux.HandleFunc(method+" /t/{tenant}"+path, s.withTenant(endpoint, h, false))
	s.mux.HandleFunc(method+" "+path, s.withTenant(endpoint, h, true))
}

// statusWriter remembers the status code for the request metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// instrumented wraps a handler with the per-endpoint request counter,
// latency histogram and status counters. The registry lookup happens
// per request on purpose: tenants appear dynamically, so the handles
// cannot all be resolved at construction like the engine's instruments
// — one short mutexed map lookup per HTTP request is noise next to the
// network round-trip.
func (s *Server) instrumented(key string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		s.reg.Counter("serve_req_" + key).Inc()
		s.reg.Counter(fmt.Sprintf("serve_status_%dxx", status/100)).Inc()
		s.reg.Histogram("serve_latency_ns_" + key).Observe(uint64(time.Since(start).Nanoseconds()))
	}
}

// withTenant resolves the tenant (path segment or header), instruments
// the request per tenant+endpoint, and enforces the body limit.
func (s *Server) withTenant(endpoint string, h tenantHandler, fromHeader bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("tenant")
		if fromHeader {
			name = r.Header.Get(TenantHeader)
			if name == "" {
				s.writeError(w, http.StatusBadRequest,
					fmt.Errorf("serve: no tenant: use /t/{tenant}%s or set %s", r.URL.Path, TenantHeader))
				return
			}
		}
		t, err := s.cat.Tenant(name)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.lim.MaxBodyBytes)
		}
		s.instrumented(endpoint+"_"+name, func(w http.ResponseWriter, r *http.Request) {
			h(w, r, t)
		})(w, r)
	}
}

// decode reads one JSON request body into v, mapping oversized bodies
// to 413 and malformed JSON to 400. The boolean reports success; on
// failure the response has been written.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("serve: request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return false
	}
	return true
}

// writeJSON writes one JSON response.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) //asv:ignore-err the status line is already on the wire; an encode error here is the client hanging up
}

// writeError writes the uniform error shape.
func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, map[string]string{"error": err.Error()})
}

// pathUint parses a numeric path value.
func pathUint(r *http.Request, key string) (uint64, error) {
	v, err := strconv.ParseUint(r.PathValue(key), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("serve: bad %s %q", key, r.PathValue(key))
	}
	return v, nil
}
