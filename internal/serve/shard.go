// Package serve is the network front end of the library: a
// zero-dependency HTTP/JSON server (server.go, handlers.go) over
// per-tenant DB catalogs (tenant.go) and a sharding layer (this file)
// that splits one logical column across N independent engine instances
// and scatter-gathers queries back into single-engine answers.
//
// The shard layer is the first multi-process-shaped seam of the system:
// every shard is a complete adaptive column (its own view set, epoch
// chain, autopilot), so a sharded tenant behaves like N cooperating
// engines behind one logical surface. The correctness contract is
// strict — a scatter-gathered answer must be byte-identical to the
// answer a single engine over the same data would give (pinned by
// TestShardScatterGatherEquivalence over every generator), exactly the
// fidelity argument the related Virtuoso work makes for simulated
// layers: measured, not assumed.
package serve

import (
	"fmt"
	"sync"

	asv "github.com/asv-db/asv"
	"github.com/asv-db/asv/internal/core"
	"github.com/asv-db/asv/internal/obs"
)

// Partitioning selects how a logical column's pages spread across the
// shards.
type Partitioning int

const (
	// RangeParts assigns each shard one contiguous page range — shard i
	// owns pages [start_i, start_i+count_i). Neighbouring rows stay
	// colocated, so range scans concentrate on few shards' views.
	RangeParts Partitioning = iota
	// HashParts stripes pages round-robin — shard = page mod N. Load
	// spreads evenly regardless of where the workload's hot rows live.
	HashParts
)

// String names the partitioning for telemetry and error messages.
func (p Partitioning) String() string {
	if p == HashParts {
		return "hash"
	}
	return "range"
}

// PartitioningByName resolves "range" or "hash".
func PartitioningByName(name string) (Partitioning, error) {
	switch name {
	case "", "range":
		return RangeParts, nil
	case "hash":
		return HashParts, nil
	}
	return 0, fmt.Errorf("serve: unknown partitioning %q (known: range, hash)", name)
}

// ShardedColumn is one logical column of `pages` pages split across N
// engine instances. Reads scatter to every shard and gather into the
// single-engine answer shape; writes route to the owning shard; a
// snapshot pins one epoch per shard at a single logical instant.
//
// A ShardedColumn is safe for concurrent use with the same rules as
// asv.Column: queries, updates and snapshots may race freely. Close
// blocks until every ShardSnapshot taken from it has been closed (the
// per-shard columns drain their pins).
type ShardedColumn struct {
	name   string
	part   Partitioning
	pages  int
	rows   int
	shards []*asv.Column
	counts []int // pages per shard

	// snapmu orders snapshots against write admission: Update/UpdateBatch
	// hold it shared, Snapshot holds it exclusively while draining and
	// pinning every shard — so no write lands between the first and last
	// per-shard pin and the N pins form one logical instant.
	snapmu sync.RWMutex
}

// NewShardedColumn materializes a logical column of `pages` pages as
// `shards` columns in db (named "<name>/shard<i>", each with its own
// engine built from cfg) and returns the scatter-gather wrapper. The
// pages split as evenly as the partitioning allows (sizes differ by at
// most one page); shards must not exceed pages. On error nothing is left
// registered in db.
func NewShardedColumn(db *asv.DB, name string, pages, shards int, part Partitioning, cfg asv.Config) (*ShardedColumn, error) {
	if pages <= 0 {
		return nil, fmt.Errorf("serve: column %q needs at least one page", name)
	}
	if shards <= 0 || shards > pages {
		return nil, fmt.Errorf("serve: column %q: shard count %d out of range [1, %d pages]", name, shards, pages)
	}
	c := &ShardedColumn{
		name:   name,
		part:   part,
		pages:  pages,
		rows:   pages * asv.ValuesPerPage,
		shards: make([]*asv.Column, 0, shards),
		counts: make([]int, shards),
	}
	base, rem := pages/shards, pages%shards
	for i := 0; i < shards; i++ {
		c.counts[i] = base
		if i < rem {
			c.counts[i]++
		}
	}
	for i := 0; i < shards; i++ {
		col, err := db.CreateColumn(fmt.Sprintf("%s/shard%d", name, i), c.counts[i], cfg)
		if err != nil {
			for _, prev := range c.shards {
				_ = prev.Close() //asv:ignore-err unwinding a failed sharded creation; the creation error is returned
			}
			return nil, err
		}
		c.shards = append(c.shards, col)
	}
	return c, nil
}

// Name returns the logical column name.
func (c *ShardedColumn) Name() string { return c.name }

// NumPages returns the logical column length in pages (summed over the
// shards).
func (c *ShardedColumn) NumPages() int { return c.pages }

// Rows returns the logical number of value slots.
func (c *ShardedColumn) Rows() int { return c.rows }

// Shards returns the shard count.
func (c *ShardedColumn) Shards() int { return len(c.shards) }

// Part returns the page partitioning.
func (c *ShardedColumn) Part() Partitioning { return c.part }

// locatePage maps a global page to (shard, local page) under the
// configured partitioning.
func (c *ShardedColumn) locatePage(p int) (shard, local int) {
	n := len(c.shards)
	if c.part == HashParts {
		return p % n, p / n
	}
	base, rem := c.pages/n, c.pages%n
	head := rem * (base + 1)
	if p < head {
		return p / (base + 1), p % (base + 1)
	}
	p -= head
	return rem + p/base, p % base
}

// globalPage is the inverse of locatePage.
func (c *ShardedColumn) globalPage(shard, local int) int {
	n := len(c.shards)
	if c.part == HashParts {
		return local*n + shard
	}
	base, rem := c.pages/n, c.pages%n
	if shard < rem {
		return shard*(base+1) + local
	}
	return rem*(base+1) + (shard-rem)*base + local
}

// locateRow maps a global row to (shard, local row).
func (c *ShardedColumn) locateRow(row int) (shard, local int) {
	s, lp := c.locatePage(row / asv.ValuesPerPage)
	return s, lp*asv.ValuesPerPage + row%asv.ValuesPerPage
}

// globalRow is the inverse of locateRow.
func (c *ShardedColumn) globalRow(shard, local int) int {
	return c.globalPage(shard, local/asv.ValuesPerPage)*asv.ValuesPerPage + local%asv.ValuesPerPage
}

// remapGen presents a shard's local page sequence as a window into the
// logical column's generator: local page p of shard s reads global page
// mapPage(p). Generators are pure functions of (seed, page), so a
// sharded fill is byte-identical to filling one big column and routing
// each page to its owner.
type remapGen struct {
	g       asv.Generator
	mapPage func(local int) int
}

func (r remapGen) FillPage(page int, out []uint64) { r.g.FillPage(r.mapPage(page), out) }

// Fill populates every shard from the logical generator, page-sharded
// within each shard (FillParallel).
func (c *ShardedColumn) Fill(g asv.Generator) error {
	for i, sc := range c.shards {
		shard := i
		if err := sc.FillParallel(remapGen{g: g, mapPage: func(local int) int {
			return c.globalPage(shard, local)
		}}); err != nil {
			return err
		}
	}
	return nil
}

// Value reads one logical row.
func (c *ShardedColumn) Value(row int) (uint64, error) {
	if row < 0 || row >= c.rows {
		return 0, fmt.Errorf("serve: row %d out of range [0, %d)", row, c.rows)
	}
	s, local := c.locateRow(row)
	return c.shards[s].Value(local)
}

// Update overwrites one logical row, routing to the owning shard. With
// an autopilot configured the write is fire-and-forget exactly like
// asv.Column.Update; Sync is the read-your-writes barrier.
func (c *ShardedColumn) Update(row int, value uint64) error {
	if row < 0 || row >= c.rows {
		return fmt.Errorf("serve: row %d out of range [0, %d)", row, c.rows)
	}
	c.snapmu.RLock()
	defer c.snapmu.RUnlock()
	s, local := c.locateRow(row)
	return c.shards[s].Update(local, value)
}

// UpdateBatch applies a group of logical-row writes, grouped per owning
// shard with each shard's group preserving the caller's order —
// semantically identical to calling Update per element in order (rows of
// different shards are disjoint).
func (c *ShardedColumn) UpdateBatch(writes []asv.RowWrite) error {
	groups := make([][]asv.RowWrite, len(c.shards))
	for _, w := range writes {
		if w.Row < 0 || w.Row >= c.rows {
			return fmt.Errorf("serve: row %d out of range [0, %d)", w.Row, c.rows)
		}
		s, local := c.locateRow(w.Row)
		groups[s] = append(groups[s], asv.RowWrite{Row: local, Value: w.Value})
	}
	c.snapmu.RLock()
	defer c.snapmu.RUnlock()
	for s, g := range groups {
		if len(g) == 0 {
			continue
		}
		if err := c.shards[s].UpdateBatch(g); err != nil {
			return err
		}
	}
	return nil
}

// Sync is the logical column's read-your-writes barrier: every shard
// applies its accepted writes and realigns its views.
func (c *ShardedColumn) Sync() error {
	for _, sc := range c.shards {
		if err := sc.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// QueuedUpdates sums the fire-and-forget writes accepted but not yet
// applied across the shards — the backpressure signal the server maps to
// 429s.
func (c *ShardedColumn) QueuedUpdates() int {
	total := 0
	for _, sc := range c.shards {
		total += sc.QueuedUpdates()
	}
	return total
}

// CreateViewOpt forwards the view creation to every shard: each builds
// its own partial view(s) over the value range within its page subset,
// with the same option semantics as asv.Column.CreateViewOpt.
func (c *ShardedColumn) CreateViewOpt(lo, hi uint64, opts ...asv.ViewOption) error {
	for _, sc := range c.shards {
		if err := sc.CreateViewOpt(lo, hi, opts...); err != nil {
			return err
		}
	}
	return nil
}

// Views returns the total partial-view count across the shards.
func (c *ShardedColumn) Views() int {
	total := 0
	for _, sc := range c.shards {
		total += len(sc.Views())
	}
	return total
}

// Telemetry merges every shard's instrument snapshot (counters and
// histogram buckets add; gauges take the last shard's reading).
func (c *ShardedColumn) Telemetry() obs.Snapshot {
	out := obs.NewSnapshot()
	for _, sc := range c.shards {
		out = out.Merge(sc.Telemetry())
	}
	return out
}

// Close releases every shard. Like asv.DB.Close it returns the first
// error but keeps closing the remaining shards — a failed shard must
// never leak the others' views and frames. Close blocks until every
// ShardSnapshot taken from the column has been closed.
func (c *ShardedColumn) Close() error {
	var firstErr error
	for _, sc := range c.shards {
		if err := sc.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// QueryOpt scatter-gathers the inclusive range query [lo, hi]: every
// shard answers over its page subset (concurrently, each adapting its
// own view set as a side product) and the partial answers gather into
// the single-engine answer shape — counts and wrapping sums add, row
// sets re-base to logical row IDs and merge in domain order, aggregates
// reduce with the storage.PageScan.Merge reducer shape (add the
// distributive parts, keep the tightest boundary on each side), and scan
// telemetry sums. When a trace rides on the options each shard records
// its own span tree, grafted under the logical query's root in shard
// order.
func (c *ShardedColumn) QueryOpt(lo, hi uint64, opts ...asv.QueryOption) (asv.QueryAnswer, error) {
	var o core.QueryOptions
	for _, opt := range opts {
		opt(&o)
	}
	return c.scatter(lo, hi, o, func(i int, so core.QueryOptions) (asv.QueryAnswer, error) {
		return c.shards[i].QueryOpt(lo, hi, rawOptions(so))
	})
}

// Query answers [lo, hi] without materializations — the scatter-gathered
// counterpart of asv.Column.Query.
func (c *ShardedColumn) Query(lo, hi uint64) (asv.Result, error) {
	ans, err := c.QueryOpt(lo, hi)
	return ans.QueryResult, err
}

// rawOptions adapts a resolved core.QueryOptions into the facade's
// option shape, so the per-shard calls go through the same public
// QueryOpt surface the server exposes.
func rawOptions(o core.QueryOptions) asv.QueryOption {
	return func(q *core.QueryOptions) { *q = o }
}

// scatter fans one query out to every shard through `ask` and gathers
// the answers. It is shared by live and snapshot reads, so the two paths
// cannot diverge in merge semantics.
func (c *ShardedColumn) scatter(lo, hi uint64, o core.QueryOptions, ask func(i int, o core.QueryOptions) (asv.QueryAnswer, error)) (asv.QueryAnswer, error) {
	n := len(c.shards)
	answers := make([]asv.QueryAnswer, n)
	errs := make([]error, n)
	traces := make([]*obs.Trace, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			so := o
			if o.Trace != nil {
				// Traces are owned by the coordinating goroutine of one
				// query; give each shard its own tree and graft below.
				so.Trace = obs.NewTrace(fmt.Sprintf("shard%d", i))
				traces[i] = so.Trace
			}
			answers[i], errs[i] = ask(i, so)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return asv.QueryAnswer{}, err
		}
	}
	return c.gather(o, answers, traces), nil
}

// gather folds per-shard answers into the logical answer. Count and Sum
// add (wrapping addition is commutative and associative, so any shard
// order reduces to the single-engine result); rows re-base to logical
// row IDs; aggregates reduce in the storage.PageScan.Merge shape.
func (c *ShardedColumn) gather(o core.QueryOptions, answers []asv.QueryAnswer, traces []*obs.Trace) asv.QueryAnswer {
	var out asv.QueryAnswer
	if o.CollectRows {
		out.Rows = core.NewRowSet(c.rows)
	}
	var agg core.Aggregate
	for i, a := range answers {
		out.Count += a.Count
		out.Sum += a.Sum
		out.PagesScanned += a.PagesScanned
		out.ViewsUsed += a.ViewsUsed
		out.UsedFullView = out.UsedFullView || a.UsedFullView
		out.CandidateBuilt = out.CandidateBuilt || a.CandidateBuilt
		if o.CollectRows && a.Rows != nil {
			shard := i
			a.Rows.ForEach(func(local int) bool {
				out.Rows.Add(c.globalRow(shard, local))
				return true
			})
		}
		if o.ComputeAggregate && a.Agg != nil && a.Agg.Count > 0 {
			// The PageScan.Merge reducer shape: distributive parts add,
			// extrema keep the tightest observed value on each side.
			if agg.Count == 0 || a.Agg.Min < agg.Min {
				agg.Min = a.Agg.Min
			}
			if agg.Count == 0 || a.Agg.Max > agg.Max {
				agg.Max = a.Agg.Max
			}
			agg.Count += a.Agg.Count
			agg.Sum += a.Agg.Sum
		}
	}
	if o.ComputeAggregate {
		out.Agg = &agg
	}
	if o.Trace != nil {
		for _, t := range traces {
			if t != nil {
				t.Finish()
				o.Trace.Root.Children = append(o.Trace.Root.Children, t.Root)
			}
		}
		o.Trace.Root.SetAttr("shards", int64(len(answers)))
		o.Trace.Finish()
		out.Trace = o.Trace
	}
	return out
}

// ShardSnapshot is a pinned-epoch read handle over every shard of a
// ShardedColumn, all pinned at one logical instant: Snapshot drains the
// accepted writes, excludes new write admission, and pins shard by shard
// — so the N per-shard epochs observe exactly the same write prefix.
// Close the handle when done; the shards' Close blocks until every pin
// is released.
type ShardSnapshot struct {
	col   *ShardedColumn
	snaps []*asv.Snapshot
}

// Snapshot pins one epoch per shard at a single logical instant (see
// ShardSnapshot). Writes admitted before the call are visible on every
// shard; writes after it are invisible through the handle.
func (c *ShardedColumn) Snapshot() (*ShardSnapshot, error) {
	c.snapmu.Lock()
	defer c.snapmu.Unlock()
	// Drain first: with an autopilot, accepted-but-unapplied writes would
	// otherwise flush between the per-shard pins and tear the instant.
	for _, sc := range c.shards {
		if err := sc.Sync(); err != nil {
			return nil, err
		}
	}
	snaps := make([]*asv.Snapshot, 0, len(c.shards))
	for _, sc := range c.shards {
		s, err := sc.Snapshot()
		if err != nil {
			for _, prev := range snaps {
				_ = prev.Close() //asv:ignore-err unwinding a failed multi-shard pin; the pin error is returned
			}
			return nil, err
		}
		snaps = append(snaps, s)
	}
	return &ShardSnapshot{col: c, snaps: snaps}, nil
}

// QueryOpt answers [lo, hi] from the pinned instant with the same
// scatter-gather semantics as ShardedColumn.QueryOpt. Snapshot reads are
// pure: no shard adapts its view set.
func (s *ShardSnapshot) QueryOpt(lo, hi uint64, opts ...asv.QueryOption) (asv.QueryAnswer, error) {
	var o core.QueryOptions
	for _, opt := range opts {
		opt(&o)
	}
	return s.col.scatter(lo, hi, o, func(i int, so core.QueryOptions) (asv.QueryAnswer, error) {
		return s.snaps[i].QueryOpt(lo, hi, rawOptions(so))
	})
}

// Query answers [lo, hi] from the pinned instant.
func (s *ShardSnapshot) Query(lo, hi uint64) (asv.Result, error) {
	ans, err := s.QueryOpt(lo, hi)
	return ans.QueryResult, err
}

// Close releases every per-shard pin; idempotent. The first error is
// returned but every pin is released regardless.
func (s *ShardSnapshot) Close() error {
	var firstErr error
	for _, snap := range s.snaps {
		if err := snap.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
