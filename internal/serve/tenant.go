package serve

import (
	"fmt"
	"sort"
	"sync"

	asv "github.com/asv-db/asv"
	"github.com/asv-db/asv/internal/obs"
)

// Limits are the request-scoped guard rails of one server: a tenant can
// never make one request arbitrarily expensive for everyone else. The
// zero value of any field selects its default.
type Limits struct {
	// MaxBodyBytes caps a request body (http.MaxBytesReader; overflow is
	// 413). Default 1 MiB.
	MaxBodyBytes int64
	// MaxRows caps the row IDs materialized into one query response;
	// larger row sets are truncated and flagged. Default 4096.
	MaxRows int
	// MaxBatch caps the writes of one update request. Default 4096.
	MaxBatch int
	// MaxQueued is the per-tenant update backpressure threshold: an
	// update arriving while the tenant already has this many accepted
	// but unapplied writes is refused with 429. Default 4096.
	MaxQueued int
	// MaxPages caps the pages of one created column. Default 1 Mi pages
	// (the paper's full column size).
	MaxPages int
}

// DefaultLimits returns the documented defaults.
func DefaultLimits() Limits {
	return Limits{
		MaxBodyBytes: 1 << 20,
		MaxRows:      4096,
		MaxBatch:     4096,
		MaxQueued:    4096,
		MaxPages:     1 << 20,
	}
}

// withDefaults fills zero fields.
func (l Limits) withDefaults() Limits {
	d := DefaultLimits()
	if l.MaxBodyBytes <= 0 {
		l.MaxBodyBytes = d.MaxBodyBytes
	}
	if l.MaxRows <= 0 {
		l.MaxRows = d.MaxRows
	}
	if l.MaxBatch <= 0 {
		l.MaxBatch = d.MaxBatch
	}
	if l.MaxQueued <= 0 {
		l.MaxQueued = d.MaxQueued
	}
	if l.MaxPages <= 0 {
		l.MaxPages = d.MaxPages
	}
	return l
}

// Catalog is the server's tenant index: named tenants, each owning an
// independent asv.DB (its own simulated kernel and address space, so
// tenants never share frames or map counts), created lazily on first
// reference and independently closable. Safe for concurrent use.
type Catalog struct {
	mu      sync.Mutex
	tenants map[string]*Tenant
	closed  bool

	// closeTenantHook, when set (tests only), is called instead of
	// t.Close by Close/CloseTenant — the fault-injection seam behind
	// TestCatalogCloseAllTenantsOnError.
	closeTenantHook func(t *Tenant) error
}

// NewCatalog returns an empty tenant catalog.
func NewCatalog() *Catalog {
	return &Catalog{tenants: make(map[string]*Tenant)}
}

// validName accepts the identifier shape tenant and column names share:
// 1-64 characters of [a-zA-Z0-9_-]. Names feed metric keys and shard
// column names, so the grammar stays deliberately narrow.
func validName(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// Tenant returns the named tenant, creating it (with a fresh DB) on
// first reference.
func (c *Catalog) Tenant(name string) (*Tenant, error) {
	if !validName(name) {
		return nil, fmt.Errorf("serve: invalid tenant name %q (want 1-64 chars of [a-zA-Z0-9_-])", name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("serve: catalog is closed")
	}
	if t, ok := c.tenants[name]; ok {
		return t, nil
	}
	db, err := asv.Open(asv.Options{})
	if err != nil {
		return nil, err
	}
	t := &Tenant{name: name, db: db, cols: make(map[string]*ShardedColumn), snaps: make(map[uint64]*snapEntry)}
	c.tenants[name] = t
	return t, nil
}

// Lookup returns the named tenant without creating it.
func (c *Catalog) Lookup(name string) (*Tenant, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tenants[name]
	return t, ok
}

// Names lists the current tenants, sorted.
func (c *Catalog) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.tenants))
	for n := range c.tenants {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CloseTenant closes and removes one tenant; closing an unknown tenant
// is an error (the caller asked for something that is not there).
func (c *Catalog) CloseTenant(name string) error {
	c.mu.Lock()
	t, ok := c.tenants[name]
	delete(c.tenants, name)
	hook := c.closeTenantHook
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("serve: unknown tenant %q", name)
	}
	if hook != nil {
		return hook(t)
	}
	return t.Close()
}

// Close closes every tenant. Like asv.DB.Close it returns the first
// error but keeps closing the rest — one failing tenant must never leak
// the other tenants' kernels. The catalog refuses new tenants afterwards.
func (c *Catalog) Close() error {
	c.mu.Lock()
	c.closed = true
	tenants := make([]*Tenant, 0, len(c.tenants))
	for name, t := range c.tenants {
		tenants = append(tenants, t)
		delete(c.tenants, name)
	}
	hook := c.closeTenantHook
	c.mu.Unlock()

	// Deterministic close order keeps error attribution stable.
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].name < tenants[j].name })
	var firstErr error
	for _, t := range tenants {
		var err error
		if hook != nil {
			err = hook(t)
		} else {
			err = t.Close()
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// snapEntry is one HTTP-created snapshot handle, remembered until the
// client deletes it or the owning column/tenant closes.
type snapEntry struct {
	col  string
	snap *ShardSnapshot
}

// Tenant is one tenant's namespace: a private DB plus its sharded
// columns and open snapshot handles. Safe for concurrent use.
type Tenant struct {
	name string
	db   *asv.DB

	mu     sync.Mutex
	cols   map[string]*ShardedColumn
	snaps  map[uint64]*snapEntry
	nextID uint64
	closed bool
}

// Name returns the tenant name.
func (t *Tenant) Name() string { return t.name }

// CreateColumn materializes a sharded logical column in the tenant's DB.
func (t *Tenant) CreateColumn(name string, pages, shards int, part Partitioning, cfg asv.Config) (*ShardedColumn, error) {
	if !validName(name) {
		return nil, fmt.Errorf("serve: invalid column name %q (want 1-64 chars of [a-zA-Z0-9_-])", name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, fmt.Errorf("serve: tenant %q is closed", t.name)
	}
	if _, dup := t.cols[name]; dup {
		return nil, fmt.Errorf("serve: column %q already exists", name)
	}
	col, err := NewShardedColumn(t.db, name, pages, shards, part, cfg)
	if err != nil {
		return nil, err
	}
	t.cols[name] = col
	return col, nil
}

// Column returns a previously created column.
func (t *Tenant) Column(name string) (*ShardedColumn, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	col, ok := t.cols[name]
	return col, ok
}

// Columns lists the tenant's columns, sorted.
func (t *Tenant) Columns() []*ShardedColumn {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*ShardedColumn, 0, len(t.cols))
	for _, col := range t.cols {
		out = append(out, col)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// QueuedUpdates sums the accepted-but-unapplied writes across the
// tenant's columns — the per-tenant backpressure signal.
func (t *Tenant) QueuedUpdates() int {
	total := 0
	for _, col := range t.Columns() {
		total += col.QueuedUpdates()
	}
	return total
}

// AddSnapshot registers an open snapshot handle and returns its ID.
func (t *Tenant) AddSnapshot(col string, s *ShardSnapshot) (uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return 0, fmt.Errorf("serve: tenant %q is closed", t.name)
	}
	t.nextID++
	t.snaps[t.nextID] = &snapEntry{col: col, snap: s}
	return t.nextID, nil
}

// SnapshotHandle returns the open snapshot with the given ID, scoped to
// the named column.
func (t *Tenant) SnapshotHandle(col string, id uint64) (*ShardSnapshot, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.snaps[id]
	if !ok || e.col != col {
		return nil, false
	}
	return e.snap, true
}

// CloseSnapshot releases one snapshot handle.
func (t *Tenant) CloseSnapshot(col string, id uint64) error {
	t.mu.Lock()
	e, ok := t.snaps[id]
	if ok && e.col == col {
		delete(t.snaps, id)
	}
	t.mu.Unlock()
	if !ok || e.col != col {
		return fmt.Errorf("serve: unknown snapshot %d on column %q", id, col)
	}
	return e.snap.Close()
}

// CloseColumn closes and removes one column, releasing its open
// snapshots first — a column's Close blocks until every pin is released,
// so the snapshots must go before the shards.
func (t *Tenant) CloseColumn(name string) error {
	t.mu.Lock()
	col, ok := t.cols[name]
	delete(t.cols, name)
	var snaps []*ShardSnapshot
	for id, e := range t.snaps {
		if e.col == name {
			snaps = append(snaps, e.snap)
			delete(t.snaps, id)
		}
	}
	t.mu.Unlock()
	if !ok {
		return fmt.Errorf("serve: unknown column %q", name)
	}
	var firstErr error
	for _, s := range snaps {
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := col.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Telemetry merges the instrument snapshots of every column of the
// tenant.
func (t *Tenant) Telemetry() obs.Snapshot {
	out := obs.NewSnapshot()
	for _, col := range t.Columns() {
		out = out.Merge(col.Telemetry())
	}
	return out
}

// Close releases the tenant: open snapshots first (column Close blocks
// on live pins), then every column, then the DB — returning the first
// error but always closing everything, the same
// first-error-keep-closing contract as asv.DB.Close.
func (t *Tenant) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	snaps := make([]*snapEntry, 0, len(t.snaps))
	for id, e := range t.snaps {
		snaps = append(snaps, e)
		delete(t.snaps, id)
	}
	cols := make([]*ShardedColumn, 0, len(t.cols))
	for name, col := range t.cols {
		cols = append(cols, col)
		delete(t.cols, name)
	}
	t.mu.Unlock()

	sort.Slice(cols, func(i, j int) bool { return cols[i].name < cols[j].name })
	var firstErr error
	for _, e := range snaps {
		if err := e.snap.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, col := range cols {
		if err := col.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := t.db.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
