package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	asv "github.com/asv-db/asv"
)

// httpClient drives a server handler (or live base URL) with the JSON
// conventions of the API.
type httpClient struct {
	t      *testing.T
	base   string
	client *http.Client
	header map[string]string
}

func newTestServer(t *testing.T, cfg ServerConfig) (*Server, *httpClient) {
	t.Helper()
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		if err := s.Catalog().Close(); err != nil {
			t.Errorf("catalog close: %v", err)
		}
	})
	return s, &httpClient{t: t, base: ts.URL, client: ts.Client()}
}

// do issues one JSON request and decodes the response into out (ignored
// when nil). It returns the status code.
func (c *httpClient) do(method, path string, body, out any) int {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	for k, v := range c.header {
		req.Header.Set(k, v)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			c.t.Fatalf("%s %s: bad response %q: %v", method, path, raw, err)
		}
	}
	return resp.StatusCode
}

// must asserts the expected status.
func (c *httpClient) must(status int, method, path string, body, out any) {
	c.t.Helper()
	if got := c.do(method, path, body, out); got != status {
		c.t.Fatalf("%s %s = %d, want %d", method, path, got, status)
	}
}

// TestServeRoundTrip walks the full JSON surface on one tenant: create
// a filled sharded column, query it (rows, aggregate, trace), update,
// sync, create a view, pin and query a snapshot, read telemetry, close.
func TestServeRoundTrip(t *testing.T) {
	_, c := newTestServer(t, ServerConfig{})

	var info columnInfo
	c.must(http.StatusCreated, "POST", "/t/acme/columns", map[string]any{
		"name": "m", "pages": 16, "shards": 4, "partitioning": "range",
		"fill": map[string]any{"dist": "uniform", "seed": 1, "lo": 0, "hi": 1 << 20},
	}, &info)
	if info.Shards != 4 || info.Pages != 16 || info.Rows != 16*asv.ValuesPerPage {
		t.Fatalf("created column = %+v", info)
	}

	var q queryResponse
	c.must(http.StatusOK, "POST", "/t/acme/columns/m/query?trace=1",
		map[string]any{"lo": 0, "hi": 1 << 20, "rows": true, "aggregate": true}, &q)
	if q.Count != info.Rows || q.Agg == nil || q.Agg.Count != info.Rows {
		t.Fatalf("full-domain query = %+v", q)
	}
	if q.Trace == "" {
		t.Fatal("?trace=1 returned no trace rendering")
	}
	if !q.RowsTruncated || len(q.Rows) != DefaultLimits().MaxRows {
		t.Fatalf("expected MaxRows truncation, got %d rows (truncated=%v)", len(q.Rows), q.RowsTruncated)
	}

	// Point the row 7 at a sentinel outside the fill domain and find it.
	var upd map[string]any
	c.must(http.StatusOK, "POST", "/t/acme/columns/m/update",
		map[string]any{"row": 7, "value": uint64(3 << 20)}, &upd)
	if upd["accepted"] != float64(1) {
		t.Fatalf("update response = %+v", upd)
	}
	c.must(http.StatusOK, "POST", "/t/acme/columns/m/sync", nil, nil)
	c.must(http.StatusOK, "POST", "/t/acme/columns/m/query",
		map[string]any{"lo": 3 << 20, "hi": 3 << 20, "rows": true}, &q)
	if len(q.Rows) != 1 || q.Rows[0] != 7 {
		t.Fatalf("sentinel query rows = %v, want [7]", q.Rows)
	}

	// Batch form.
	c.must(http.StatusOK, "POST", "/t/acme/columns/m/update", map[string]any{
		"writes": []map[string]any{{"row": 8, "value": 3 << 20}, {"row": 9, "value": 3 << 20}},
	}, &upd)
	if upd["accepted"] != float64(2) {
		t.Fatalf("batch update response = %+v", upd)
	}
	c.must(http.StatusOK, "POST", "/t/acme/columns/m/sync", nil, nil)

	var vw map[string]any
	c.must(http.StatusCreated, "POST", "/t/acme/columns/m/views",
		map[string]any{"lo": 0, "hi": 1 << 19, "lazy": false}, &vw)
	if vw["views"] == float64(0) {
		t.Fatalf("view create response = %+v", vw)
	}

	var snap map[string]string
	c.must(http.StatusCreated, "POST", "/t/acme/columns/m/snapshots", nil, &snap)
	id := snap["id"]
	var pinned, pinned2 queryResponse
	c.must(http.StatusOK, "POST", "/t/acme/columns/m/snapshots/"+id+"/query",
		map[string]any{"lo": 0, "hi": 4 << 20, "aggregate": true}, &pinned)
	c.must(http.StatusOK, "POST", "/t/acme/columns/m/update",
		map[string]any{"row": 100, "value": uint64(3 << 20)}, nil)
	c.must(http.StatusOK, "POST", "/t/acme/columns/m/sync", nil, nil)
	c.must(http.StatusOK, "POST", "/t/acme/columns/m/snapshots/"+id+"/query",
		map[string]any{"lo": 0, "hi": 4 << 20, "aggregate": true}, &pinned2)
	if !reflect.DeepEqual(pinned, pinned2) {
		t.Fatalf("pinned reads diverged:\n got %+v\nwant %+v", pinned2, pinned)
	}
	c.must(http.StatusOK, "DELETE", "/t/acme/columns/m/snapshots/"+id, nil, nil)
	c.must(http.StatusNotFound, "POST", "/t/acme/columns/m/snapshots/"+id+"/query",
		map[string]any{"lo": 0, "hi": 1}, nil)

	var tel map[string]any
	c.must(http.StatusOK, "GET", "/t/acme/columns/m/telemetry", nil, &tel)
	if len(tel) == 0 {
		t.Fatal("telemetry snapshot is empty")
	}
	c.must(http.StatusOK, "DELETE", "/t/acme/columns/m", nil, nil)
	c.must(http.StatusNotFound, "POST", "/t/acme/columns/m/query", map[string]any{"lo": 0, "hi": 1}, nil)
}

// TestServeTenantIsolation pins that tenants are separate namespaces
// (same column name, different data) and that the header form resolves
// the same tenants as the path form.
func TestServeTenantIsolation(t *testing.T) {
	_, c := newTestServer(t, ServerConfig{})
	for i, tenant := range []string{"red", "blue"} {
		c.must(http.StatusCreated, "POST", "/t/"+tenant+"/columns", map[string]any{
			"name": "col", "pages": 4, "shards": 2,
			"fill": map[string]any{"dist": "uniform", "seed": i + 1, "lo": 0, "hi": 1000},
		}, nil)
	}
	var red, blue queryResponse
	c.must(http.StatusOK, "POST", "/t/red/columns/col/query",
		map[string]any{"lo": 0, "hi": 1000, "aggregate": true}, &red)
	c.must(http.StatusOK, "POST", "/t/blue/columns/col/query",
		map[string]any{"lo": 0, "hi": 1000, "aggregate": true}, &blue)
	if red.Agg == nil || blue.Agg == nil || red.Agg.Sum == blue.Agg.Sum {
		t.Fatalf("tenants share data: red=%+v blue=%+v", red.Agg, blue.Agg)
	}

	// Header-resolved requests land on the same tenant as the path form.
	hc := &httpClient{t: t, base: c.base, client: c.client, header: map[string]string{TenantHeader: "red"}}
	var viaHeader queryResponse
	hc.must(http.StatusOK, "POST", "/columns/col/query",
		map[string]any{"lo": 0, "hi": 1000, "aggregate": true}, &viaHeader)
	if !reflect.DeepEqual(viaHeader, red) {
		t.Fatalf("header-form answer diverged from path form:\n got %+v\nwant %+v", viaHeader, red)
	}
	// No tenant at all is a 400, not a panic or a default namespace.
	c.must(http.StatusBadRequest, "POST", "/columns/col/query", map[string]any{"lo": 0, "hi": 1}, nil)
	c.must(http.StatusBadRequest, "POST", "/t/bad%20name/columns", map[string]any{"name": "x", "pages": 1}, nil)
}

// TestServeUpdateBackpressure pins the 429 path: with a one-write
// queue allowance and an autopilot column, hammering updates must
// surface Retry-After'd refusals rather than unbounded queue growth.
func TestServeUpdateBackpressure(t *testing.T) {
	_, c := newTestServer(t, ServerConfig{Limits: Limits{MaxQueued: 1}})
	c.must(http.StatusCreated, "POST", "/t/busy/columns", map[string]any{
		"name": "q", "pages": 8, "autopilot": true,
		"fill": map[string]any{"dist": "uniform", "seed": 9, "lo": 0, "hi": 1000},
	}, nil)
	saw429 := false
	for i := 0; i < 500 && !saw429; i++ {
		status := c.do("POST", "/t/busy/columns/q/update", map[string]any{"row": i % 100, "value": i}, nil)
		switch status {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			saw429 = true
		default:
			t.Fatalf("update %d = status %d", i, status)
		}
	}
	if !saw429 {
		t.Fatal("500 updates against a 1-write queue allowance never hit 429")
	}
	// After a sync drains the queue, writes are accepted again.
	c.must(http.StatusOK, "POST", "/t/busy/columns/q/sync", nil, nil)
	c.must(http.StatusOK, "POST", "/t/busy/columns/q/update", map[string]any{"row": 0, "value": 1}, nil)
}

// TestServeGracefulShutdown pins the drain contract on a live listener:
// every request in flight when Shutdown is called completes with a full
// 200 response; only requests issued after the drain begins may fail at
// the transport level.
func TestServeGracefulShutdown(t *testing.T) {
	s := NewServer(ServerConfig{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()
	c := &httpClient{t: t, base: "http://" + l.Addr().String(), client: &http.Client{}}
	c.must(http.StatusCreated, "POST", "/t/drain/columns", map[string]any{
		"name": "d", "pages": 16, "shards": 4,
		"fill": map[string]any{"dist": "uniform", "seed": 3, "lo": 0, "hi": 1 << 20},
	}, nil)

	const clients = 8
	var (
		completed    atomic.Int64
		draining     atomic.Bool
		hardFailures atomic.Int64
		wg           sync.WaitGroup
	)
	body, _ := json.Marshal(map[string]any{"lo": 0, "hi": 1 << 20, "rows": true, "aggregate": true})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{}
			for {
				resp, err := client.Post(c.base+"/t/drain/columns/d/query", "application/json", bytes.NewReader(body))
				if err != nil {
					if !draining.Load() {
						hardFailures.Add(1)
						t.Errorf("request failed before shutdown began: %v", err)
					}
					return
				}
				raw, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					// An in-flight request must never be cut off mid-drain.
					hardFailures.Add(1)
					t.Errorf("dropped in-flight request: status=%d err=%v", resp.StatusCode, err)
					return
				}
				var q queryResponse
				if jerr := json.Unmarshal(raw, &q); jerr != nil || q.Count == 0 {
					hardFailures.Add(1)
					t.Errorf("truncated response body: %q", raw)
					return
				}
				completed.Add(1)
			}
		}()
	}

	// Let the clients build up steady in-flight traffic, then drain.
	for completed.Load() < 64 {
		time.Sleep(time.Millisecond)
	}
	draining.Store(true)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	wg.Wait()
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want http.ErrServerClosed", err)
	}
	if hardFailures.Load() != 0 {
		t.Fatalf("%d requests dropped across shutdown (%d completed)", hardFailures.Load(), completed.Load())
	}
	// The catalog is gone: the next lifecycle starts from a fresh server.
	if names := s.Catalog().Names(); len(names) != 0 {
		t.Fatalf("tenants survived shutdown: %v", names)
	}
}

// TestServeConcurrentQueryUpdateChurn races HTTP queries against
// updates, sync, and snapshot lifecycle on a sharded autopilot tenant —
// the -race stress for the whole serve stack (the CI stress job re-runs
// Concurrent-named tests with -count=3).
func TestServeConcurrentQueryUpdateChurn(t *testing.T) {
	_, c := newTestServer(t, ServerConfig{})
	c.must(http.StatusCreated, "POST", "/t/stress/columns", map[string]any{
		"name": "s", "pages": 16, "shards": 4, "partitioning": "hash", "autopilot": true,
		"fill": map[string]any{"dist": "zipf", "seed": 5, "lo": 0, "hi": 1 << 20},
	}, nil)

	iters := 60
	if testing.Short() {
		iters = 15
	}
	var wg sync.WaitGroup
	fail := func(format string, args ...any) {
		t.Errorf(format, args...)
	}
	// Query clients: rows+aggregate over shifting ranges, some traced.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := &http.Client{}
			for i := 0; i < iters; i++ {
				lo := uint64(i*g) % (1 << 20)
				path := "/t/stress/columns/s/query"
				if i%4 == 0 {
					path += "?trace=1"
				}
				body, _ := json.Marshal(map[string]any{"lo": lo, "hi": lo + 1<<16, "rows": true, "aggregate": true})
				resp, err := client.Post(c.base+path, "application/json", bytes.NewReader(body))
				if err != nil {
					fail("query: %v", err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body) //asv:ignore-err draining a response body we only need the status of
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					fail("query status %d", resp.StatusCode)
					return
				}
			}
		}(g)
	}
	// Update clients: single writes and batches; 429 is a legal answer.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := &http.Client{}
			for i := 0; i < iters; i++ {
				var req map[string]any
				if i%3 == 0 {
					req = map[string]any{"writes": []map[string]any{
						{"row": (i + g) % 1000, "value": i}, {"row": (i + g + 1) % 1000, "value": i},
					}}
				} else {
					req = map[string]any{"row": (i * 7) % 1000, "value": i}
				}
				body, _ := json.Marshal(req)
				resp, err := client.Post(c.base+"/t/stress/columns/s/update", "application/json", bytes.NewReader(body))
				if err != nil {
					fail("update: %v", err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body) //asv:ignore-err draining a response body we only need the status of
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
					fail("update status %d", resp.StatusCode)
					return
				}
			}
		}(g)
	}
	// Churn client: snapshot create → repeatable pinned read → delete,
	// with periodic syncs and view creations in between.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/2; i++ {
			var snap map[string]string
			if st := c.do("POST", "/t/stress/columns/s/snapshots", nil, &snap); st != http.StatusCreated {
				fail("snapshot create status %d", st)
				return
			}
			var a, b queryResponse
			q := map[string]any{"lo": 0, "hi": 1 << 20, "aggregate": true}
			if st := c.do("POST", "/t/stress/columns/s/snapshots/"+snap["id"]+"/query", q, &a); st != http.StatusOK {
				fail("snapshot query status %d", st)
				return
			}
			if st := c.do("POST", "/t/stress/columns/s/snapshots/"+snap["id"]+"/query", q, &b); st != http.StatusOK {
				fail("snapshot requery status %d", st)
				return
			}
			if !reflect.DeepEqual(a, b) {
				fail("pinned read not repeatable under churn: %+v vs %+v", a, b)
				return
			}
			if st := c.do("DELETE", "/t/stress/columns/s/snapshots/"+snap["id"], nil, nil); st != http.StatusOK {
				fail("snapshot delete status %d", st)
				return
			}
			if i%3 == 0 {
				if st := c.do("POST", "/t/stress/columns/s/sync", nil, nil); st != http.StatusOK {
					fail("sync status %d", st)
					return
				}
			}
			if i%5 == 0 {
				lo := uint64(i) << 14
				if st := c.do("POST", "/t/stress/columns/s/views", map[string]any{"lo": lo, "hi": lo + 1<<15}, nil); st != http.StatusCreated {
					fail("view create status %d", st)
					return
				}
			}
		}
	}()
	wg.Wait()

	var metrics map[string]any
	c.must(http.StatusOK, "GET", "/metrics", nil, &metrics)
	if len(metrics) == 0 {
		t.Fatal("server registry recorded nothing under load")
	}
}
