package serve

import (
	"errors"
	"testing"

	asv "github.com/asv-db/asv"
)

// TestCatalogCloseAllTenantsOnError pins the catalog's close contract —
// the same one asv.DB.Close honors for columns: the first tenant close
// error is returned, but every tenant is still closed and removed, so a
// failing tenant never leaks its neighbors' kernels.
func TestCatalogCloseAllTenantsOnError(t *testing.T) {
	cat := NewCatalog()
	names := []string{"a", "b", "c"}
	for _, n := range names {
		if _, err := cat.Tenant(n); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("injected tenant close failure")
	var closed []string
	cat.closeTenantHook = func(tn *Tenant) error {
		closed = append(closed, tn.Name())
		if err := tn.Close(); err != nil {
			return err
		}
		return boom
	}
	if err := cat.Close(); !errors.Is(err, boom) {
		t.Fatalf("Catalog.Close = %v, want the injected error", err)
	}
	if len(closed) != len(names) {
		t.Fatalf("only %d of %d tenants closed past the first failure: %v", len(closed), len(names), closed)
	}
	// Deterministic close order keeps error attribution stable.
	for i, n := range names {
		if closed[i] != n {
			t.Fatalf("close order %v, want %v", closed, names)
		}
	}
	if got := cat.Names(); len(got) != 0 {
		t.Fatalf("tenants still registered after Close: %v", got)
	}
	if _, err := cat.Tenant("late"); err == nil {
		t.Fatal("closed catalog still creates tenants")
	}
}

// TestTenantLifecycle covers the per-tenant surface the handlers lean
// on: lazy creation, name validation, duplicate columns, snapshot
// registry scoping, and idempotent close.
func TestTenantLifecycle(t *testing.T) {
	cat := NewCatalog()
	defer func() {
		if err := cat.Close(); err != nil {
			t.Errorf("catalog close: %v", err)
		}
	}()
	if _, err := cat.Tenant("no spaces"); err == nil {
		t.Fatal("invalid tenant name accepted")
	}
	tn, err := cat.Tenant("t1")
	if err != nil {
		t.Fatal(err)
	}
	again, err := cat.Tenant("t1")
	if err != nil || again != tn {
		t.Fatalf("second reference created a new tenant (%v)", err)
	}

	col, err := tn.CreateColumn("c", 8, 2, RangeParts, asv.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.CreateColumn("c", 8, 2, RangeParts, asv.DefaultConfig()); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if err := col.Fill(asv.Uniform(1, 0, 1000)); err != nil {
		t.Fatal(err)
	}
	snap, err := col.Snapshot() //asv:handoff registered in the tenant snapshot table and released by CloseColumn below
	if err != nil {
		t.Fatal(err)
	}
	id, err := tn.AddSnapshot("c", snap)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tn.SnapshotHandle("c", id); !ok {
		t.Fatal("registered snapshot not found")
	}
	if _, ok := tn.SnapshotHandle("other", id); ok {
		t.Fatal("snapshot handle leaked across column scopes")
	}
	// CloseColumn must release the snapshot first; otherwise the shard
	// Close below would block forever on the live pin.
	if err := tn.CloseColumn("c"); err != nil {
		t.Fatal(err)
	}
	if _, ok := tn.SnapshotHandle("c", id); ok {
		t.Fatal("snapshot survived its column")
	}
	if err := tn.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tn.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil (idempotent)", err)
	}
	if _, err := tn.CreateColumn("late", 1, 1, RangeParts, asv.DefaultConfig()); err == nil {
		t.Fatal("closed tenant still creates columns")
	}
}
