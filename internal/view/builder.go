package view

import (
	"errors"
	"fmt"
	"sync"

	"github.com/asv-db/asv/internal/storage"
	"github.com/asv-db/asv/internal/vmsim"
)

// CreateOptions selects the §2.3 view-creation optimizations. The paper's
// system runs with both enabled; the Figure 6 experiment ablates them.
type CreateOptions struct {
	// Consecutive maps runs of consecutive qualifying physical pages in a
	// single mmap call instead of one call per page (§2.3 optimization 1).
	Consecutive bool
	// Concurrent performs the mmap calls on a background Mapper instead of
	// the scanning thread (§2.3 optimization 2). Requires a Mapper.
	Concurrent bool
	// Lazy defers all file-page mapping and soft-TLB resolution to first
	// access: the builder only records which physical page backs each
	// slot, and the finished view materializes slots on demand through
	// the cold → resolving → warm state machine (see lazy.go). Creation
	// then costs the qualification scan plus one virtual reservation.
	// Lazy takes precedence over Consecutive and Concurrent (there is
	// nothing to map at build time); both still apply to the demand path
	// (consecutive runs) and to later alignment work.
	Lazy bool
}

// AllOptimizations is the paper's default configuration.
var AllOptimizations = CreateOptions{Consecutive: true, Concurrent: true}

// Builder incrementally constructs a partial view while the engine scans
// the source views: the scan thread calls AddPage for each qualifying
// physical page (in scan order), and Finish waits for the mapping to
// complete and returns the usable view. This mirrors Listing 1, where the
// candidate view is populated as "a side-product of query answering".
type Builder struct {
	col  *storage.Column
	v    *View
	opts CreateOptions

	mapper *Mapper
	wg     sync.WaitGroup
	ferr   firstErr

	runStart int     // first file page of the pending consecutive run
	runLen   int     // pending run length (0 = none)
	nextSlot int     // next virtual page slot to fill
	lazyFile []int32 // Lazy mode: backing file page per slot, in add order
	finished bool
}

// NewBuilder reserves the over-allocated virtual area for a new partial
// view: "we over-allocate the memory area to the size of the entire
// column, as we are unaware of how many physical pages will qualify" (§2).
// The reservation is anonymous and lazy, so it costs no physical memory.
// A Mapper must be supplied when opts.Concurrent is set.
func NewBuilder(col *storage.Column, opts CreateOptions, mapper *Mapper) (*Builder, error) {
	if opts.Concurrent && mapper == nil {
		return nil, errors.New("view: concurrent creation requires a Mapper")
	}
	addr, err := col.Space().MmapAnon(col.NumPages())
	if err != nil {
		return nil, fmt.Errorf("view: reserving virtual area: %w", err)
	}
	return &Builder{
		col: col,
		v: &View{
			col:      col,
			addr:     addr,
			capacity: col.NumPages(),
		},
		opts:   opts,
		mapper: mapper,
	}, nil
}

// AddPage appends qualifying physical page filePage to the view under
// construction. Pages must be added in scan order; with the Consecutive
// optimization, runs of adjacent file pages are accumulated and mapped in
// one call once the run breaks.
func (b *Builder) AddPage(filePage int) {
	if b.finished {
		panic("view: AddPage after Finish/Abort")
	}
	if b.opts.Lazy {
		b.lazyFile = append(b.lazyFile, int32(filePage))
		b.nextSlot++
		return
	}
	if !b.opts.Consecutive {
		b.emit(filePage, 1)
		return
	}
	if b.runLen > 0 && filePage == b.runStart+b.runLen {
		b.runLen++
		return
	}
	b.flushRun()
	b.runStart, b.runLen = filePage, 1
}

// PendingPages returns how many pages have been added so far (mapped or
// queued). The engine compares this against the full view's page count for
// the retention decision (Listing 1, line 22).
func (b *Builder) PendingPages() int { return b.nextSlot + b.runLen }

func (b *Builder) flushRun() {
	if b.runLen == 0 {
		return
	}
	b.emit(b.runStart, b.runLen)
	b.runLen = 0
}

func (b *Builder) emit(filePage, n int) {
	addr := b.v.addr + vmsim.Addr(b.nextSlot)*vmsim.PageSize
	b.nextSlot += n
	if b.opts.Concurrent {
		b.wg.Add(1)
		err := b.mapper.Enqueue(Request{
			AS:       b.col.Space(),
			Addr:     addr,
			File:     b.col.File(),
			FilePage: filePage,
			Pages:    n,
			Done: func(err error) {
				b.ferr.set(err)
				b.wg.Done()
			},
		})
		if err != nil {
			b.wg.Done()
			b.ferr.set(err)
		}
		return
	}
	b.ferr.set(b.col.Space().MmapFileFixed(addr, b.col.File(), filePage, n))
}

// Finish flushes pending work, waits for the mapping thread to complete
// this builder's requests, and returns the view covering [lo, hi]. On
// error the reservation is released.
func (b *Builder) Finish(lo, hi uint64) (*View, error) {
	if b.finished {
		return nil, errors.New("view: Finish called twice")
	}
	b.flushRun()
	b.wg.Wait()
	b.finished = true
	if err := b.ferr.get(); err != nil {
		_ = b.v.Release() //asv:ignore-err unwinding a failed build; the builder error is returned
		return nil, err
	}
	b.v.numPages = b.nextSlot
	b.v.lo, b.v.hi = lo, hi
	if b.opts.Lazy {
		// No mapping happened; hand the recorded slot directory to the
		// view's demand path. First access materializes each slot.
		b.v.lazy = newPageDir(b.lazyFile)
		return b.v, nil
	}
	// Warm the soft-TLB before the view becomes visible: concurrent
	// readers then never write view state (see View.tlb).
	if err := b.v.warmTLB(); err != nil {
		_ = b.v.Release() //asv:ignore-err unwinding a failed build; the warm error is returned
		return nil, err
	}
	return b.v, nil
}

// Abort discards the view under construction, waiting for any queued
// mapping requests before unmapping the area. Safe to call after Finish
// has failed; not after it succeeded.
func (b *Builder) Abort() error {
	if b.finished {
		return nil
	}
	b.runLen = 0
	b.wg.Wait()
	b.finished = true
	return b.v.Release()
}
