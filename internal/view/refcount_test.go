package view

import (
	"testing"

	"github.com/asv-db/asv/internal/storage"
	"github.com/asv-db/asv/internal/vmsim"
)

// TestRetainDefersRelease pins the refcounted release: the creation
// reference plus one Retain require two Releases before the area is
// unmapped, and further Releases stay no-ops.
func TestRetainDefersRelease(t *testing.T) {
	k := vmsim.NewKernel(0)
	as := k.NewAddressSpace()
	as.SetMaxMapCount(1 << 20)
	col, err := storage.NewColumn(k, as, "rc", 8)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Create(col, 0, ^uint64(0), CreateOptions{Consecutive: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumPages() == 0 {
		t.Fatal("setup: empty view")
	}
	mapped := col.File().MappedPages()

	v.Retain()
	if err := v.Release(); err != nil {
		t.Fatal(err)
	}
	if got := col.File().MappedPages(); got != mapped {
		t.Fatalf("first release unmapped despite outstanding reference: %d -> %d", mapped, got)
	}
	if _, err := v.PageBytes(0); err != nil {
		t.Fatalf("retained view unreadable: %v", err)
	}
	if err := v.Release(); err != nil {
		t.Fatal(err)
	}
	if got := col.File().MappedPages(); got != col.NumPages() {
		t.Fatalf("last release did not unmap: %d, want %d (full view only)", got, col.NumPages())
	}
	// Double-release stays idempotent.
	if err := v.Release(); err != nil {
		t.Fatal(err)
	}
}

// TestCapturePagesDetachesFromMutation pins the capture discipline: a
// captured soft-TLB keeps resolving the slots it was taken with after
// BeginTLBMutation + RemovePageAt restructure the live view.
func TestCapturePagesDetachesFromMutation(t *testing.T) {
	k := vmsim.NewKernel(0)
	as := k.NewAddressSpace()
	as.SetMaxMapCount(1 << 20)
	col, err := storage.NewColumn(k, as, "cap", 8)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Create(col, 0, ^uint64(0), CreateOptions{Consecutive: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Release()

	pages, err := v.CapturePages()
	if err != nil {
		t.Fatal(err)
	}
	n := len(pages)
	ids := make([]uint64, n)
	for i, pg := range pages {
		ids[i] = storage.PageID(pg)
	}

	v.BeginTLBMutation()
	if _, err := v.RemovePageAt(0); err != nil {
		t.Fatal(err)
	}

	if len(pages) != n {
		t.Fatal("capture length changed")
	}
	for i, pg := range pages {
		if storage.PageID(pg) != ids[i] {
			t.Fatalf("captured slot %d moved: %d != %d", i, storage.PageID(pg), ids[i])
		}
	}
}
