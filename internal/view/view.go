// Package view implements virtual storage views: virtual-memory areas that
// map page-wise onto subsets of a physical column (§1.1, §2).
//
// A full view v[-inf,inf] spans the whole column in order. A partial view
// v[l,u] over-allocates a virtual area of the column's size and maps only
// the physical pages that contain at least one value in [l, u], densely
// packed from the start of the area. The covered value range and the page
// count are the only materialized metadata (§2); everything else — which
// tuple a value belongs to — is recovered from the 8-byte pageID embedded
// in each physical page.
//
// The package also implements the two creation optimizations of §2.3:
// mapping runs of consecutive qualifying physical pages in a single mmap
// call, and performing the mmap calls on a separate mapping thread fed
// through a concurrent queue.
package view

import (
	"errors"
	"fmt"
	"sync/atomic"

	"github.com/asv-db/asv/internal/bitvec"
	"github.com/asv-db/asv/internal/storage"
	"github.com/asv-db/asv/internal/vmsim"
)

// ErrFullView is returned by operations that only apply to partial views.
var ErrFullView = errors.New("view: operation not valid on the full view")

// View is a virtual view over a column: either the full view or a partial
// view covering the inclusive value range [Lo, Hi].
//
// Views are not safe for concurrent mutation; the adaptive engine takes
// its write lock around update alignment, page rewiring and release.
// Concurrent reads — through the same view or different views — are safe:
// the soft-TLB is fully resolved when a view becomes visible (NewFull,
// Builder.Finish, AppendPage), so PageBytes never writes shared state on
// the read path.
type View struct {
	col      *storage.Column
	addr     vmsim.Addr
	capacity int // over-allocated virtual pages (== column pages)
	numPages int // mapped prefix [0, numPages)
	lo, hi   uint64
	full     bool

	// tlb caches the resolved physical page slice per view slot. On real
	// hardware this translation is performed by the MMU and cached in the
	// TLB at zero software cost — which is exactly why the paper's virtual
	// views beat explicit indexes ("least code complexity, naturally
	// exploits hardware prefetching", §3.1). In the simulator the walk is
	// software, so without this cache every view read would pay an
	// artificial page-table cost that the paper's system does not. The
	// cache is exact: a slot's mapping only ever changes through
	// AppendPage and RemovePageAt, which maintain it. Every constructor
	// resolves all mapped slots up front (warmTLB), keeping PageBytes
	// write-free so concurrent readers share the view without locking.
	//
	// Capture discipline: CapturePages may hand the array itself to a
	// published engine state. From that moment the array is immutable —
	// every mutation session (update alignment, Warm) must start with
	// BeginTLBMutation, which installs a private clone. Constructors
	// produce fresh arrays, so new views need no clone.
	tlb [][]byte

	// lazy is the demand-materialization directory of a lazily created
	// view (CreateOptions.Lazy): the backing file page per slot plus the
	// cold → resolving → warm slot-state machine that materializes a
	// slot's mapping and translation on first access (see lazy.go). Nil
	// for eager views and after EnsureMapped/Warm convert the view to
	// the soft-TLB representation above.
	lazy *pageDir

	// extraRefs counts references beyond the creation (owner) reference:
	// the logical refcount is extraRefs+1, so the zero value is a view
	// owned by exactly its creator. Published engine states Retain every
	// partial view they capture; Release decrements and the caller that
	// drops the count to zero performs the unmap. Releasing more often
	// than retaining+1 is a no-op, which makes double-release idempotent.
	extraRefs atomic.Int32

	// pinned exempts the view's pages from tier demotion (not from
	// whole-view eviction — the pre-tiering lifecycle is unchanged for
	// pinned views). Views created through the legacy creation surface
	// are pinned, so enabling tiering never slows a pre-existing caller.
	// Atomic: the engine sets it under the exclusive room, the autopilot
	// reads it under the scan room.
	pinned atomic.Bool
}

// NewFull wraps a column's always-present full view. Releasing it is a
// no-op: the column owns its mapping. The soft-TLB is seeded from the
// column's (fully resolved at NewColumn), so reads through the full view
// never write view state. A resolution failure is propagated rather than
// left as a nil slot: a nil entry would silently re-enable the lazy
// PageBytes fallback, which writes the TLB under concurrent read-locked
// scanners.
func NewFull(col *storage.Column) (*View, error) {
	v := &View{
		col:      col,
		addr:     col.FullViewAddr(),
		capacity: col.NumPages(),
		numPages: col.NumPages(),
		lo:       0,
		hi:       ^uint64(0),
		full:     true,
		tlb:      make([][]byte, col.NumPages()),
	}
	for i := range v.tlb {
		pg, err := col.PageBytes(i)
		if err != nil {
			return nil, fmt.Errorf("view: warming full-view TLB: %w", err)
		}
		v.tlb[i] = pg
	}
	return v, nil
}

// warmTLB resolves every mapped slot's translation. Constructors call it
// before a view becomes visible to readers, so the scan path stays free
// of writes (and of the simulated page-table lock).
func (v *View) warmTLB() error {
	tlb := make([][]byte, v.numPages)
	for i := range tlb {
		pg, err := v.col.Space().PageData(vmsim.VPN(v.BaseVPN() + uint64(i)))
		if err != nil {
			return err
		}
		tlb[i] = pg
	}
	v.tlb = tlb
	return nil
}

// Column returns the underlying column.
func (v *View) Column() *storage.Column { return v.col }

// Lo returns the lower bound of the covered value range (inclusive).
func (v *View) Lo() uint64 { return v.lo }

// Hi returns the upper bound of the covered value range (inclusive).
func (v *View) Hi() uint64 { return v.hi }

// NumPages returns the number of physical pages the view indexes.
func (v *View) NumPages() int { return v.numPages }

// Full reports whether this is the column's full view.
func (v *View) Full() bool { return v.full }

// Addr returns the base address of the view's virtual area.
func (v *View) Addr() vmsim.Addr { return v.addr }

// BaseVPN returns the first virtual page number of the view's area.
func (v *View) BaseVPN() uint64 { return uint64(v.addr) >> vmsim.PageShift }

// EndMappedVPN returns the virtual page number just past the mapped prefix.
func (v *View) EndMappedVPN() uint64 { return v.BaseVPN() + uint64(v.numPages) }

// SetRange overwrites the covered value range. The adaptive engine uses
// this after candidate-range extension (§2.2).
func (v *View) SetRange(lo, hi uint64) {
	if v.full {
		return
	}
	v.lo, v.hi = lo, hi
}

// SetPinned marks or unmarks the view as exempt from tier demotion.
func (v *View) SetPinned(p bool) { v.pinned.Store(p) }

// Pinned reports whether the view's pages are exempt from tier demotion.
func (v *View) Pinned() bool { return v.pinned.Load() }

// Covers reports whether the view's range fully contains [lo, hi].
func (v *View) Covers(lo, hi uint64) bool { return v.lo <= lo && hi <= v.hi }

// CoversSubsetOf reports whether v's range is contained in o's (Listing 1,
// line 24).
func (v *View) CoversSubsetOf(o *View) bool { return o.lo <= v.lo && v.hi <= o.hi }

// CoversSupersetOf reports whether v's range contains o's (Listing 1,
// line 28).
func (v *View) CoversSupersetOf(o *View) bool { return v.lo <= o.lo && o.hi <= v.hi }

// Overlaps reports whether the view's range intersects [lo, hi].
func (v *View) Overlaps(lo, hi uint64) bool { return v.lo <= hi && lo <= v.hi }

// PageBytes returns the i-th mapped page of the view: a virtual-memory
// access through the view's area, with the translation served from the
// view's soft-TLB after the first touch.
func (v *View) PageBytes(i int) ([]byte, error) {
	if i < 0 || i >= v.numPages {
		return nil, fmt.Errorf("view: page %d out of mapped range [0,%d)", i, v.numPages)
	}
	if v.lazy != nil {
		return v.resolveLazy(i)
	}
	if i < len(v.tlb) {
		if pg := v.tlb[i]; pg != nil {
			return pg, nil
		}
	}
	pg, err := v.col.Space().PageData(vmsim.VPN(v.BaseVPN() + uint64(i)))
	if err != nil {
		return nil, err
	}
	if v.tlb == nil {
		v.tlb = make([][]byte, v.numPages)
	}
	for len(v.tlb) < v.numPages {
		v.tlb = append(v.tlb, nil)
	}
	v.tlb[i] = pg
	return pg, nil
}

// ScanResult aggregates a range scan over a view.
type ScanResult struct {
	Count        int    // qualifying values
	Sum          uint64 // wrapping sum of qualifying values
	PagesScanned int    // physical pages actually read
}

// Scan answers the range query [lo, hi] from this view alone.
func (v *View) Scan(lo, hi uint64) (ScanResult, error) {
	return v.ScanDedup(lo, hi, nil)
}

// ScanDedup answers [lo, hi], skipping pages whose pageID bit is already
// set in processed and marking the ones it reads. This implements the
// multi-view shared-page handling of §2.1: "we additionally have to keep
// track of processed physical pages to avoid scanning a page twice".
// A nil processed vector disables deduplication.
func (v *View) ScanDedup(lo, hi uint64, processed *bitvec.Vector) (ScanResult, error) {
	var r ScanResult
	for i := 0; i < v.numPages; i++ {
		pg, err := v.PageBytes(i)
		if err != nil {
			return r, err
		}
		if processed != nil {
			if processed.TestAndSet(int(storage.PageID(pg))) {
				continue
			}
		}
		s := storage.ScanFilter(pg, lo, hi)
		r.Count += s.Count
		r.Sum += s.Sum
		r.PagesScanned++
	}
	return r, nil
}

// PageIDs returns the physical page IDs the view currently indexes, in
// virtual order. Intended for tests and inspection tools.
func (v *View) PageIDs() ([]uint64, error) {
	if v.lazy != nil {
		// The demand directory already records the backing file page per
		// slot; answering from it keeps inspection (and the autopilot's
		// fragmentation scoring) from materializing cold slots.
		ids := make([]uint64, v.numPages)
		for i, f := range v.lazy.file {
			ids[i] = uint64(f)
		}
		return ids, nil
	}
	ids := make([]uint64, v.numPages)
	for i := 0; i < v.numPages; i++ {
		pg, err := v.PageBytes(i)
		if err != nil {
			return nil, err
		}
		ids[i] = storage.PageID(pg)
	}
	return ids, nil
}

// AppendPage maps physical page filePage at the next unused virtual page
// of the view — the §2.4 case (1) action, possible because of the creation
// over-allocation. It returns the virtual page number used.
func (v *View) AppendPage(filePage int) (uint64, error) {
	if v.full {
		return 0, ErrFullView
	}
	if err := v.EnsureMapped(); err != nil {
		return 0, err
	}
	if v.numPages >= v.capacity {
		return 0, fmt.Errorf("view: no unused virtual pages left (capacity %d)", v.capacity)
	}
	slot := v.numPages
	addr := v.addr + vmsim.Addr(slot)*vmsim.PageSize
	if err := v.col.Space().MmapFileFixed(addr, v.col.File(), filePage, 1); err != nil {
		return 0, err
	}
	v.numPages++
	if v.tlb != nil {
		// Resolve the new slot now: readers admitted after this mutation
		// must find a fully-warmed TLB (PageBytes never writes it).
		pg, err := v.col.Space().PageData(vmsim.VPN(v.BaseVPN() + uint64(slot)))
		if err != nil {
			return 0, err
		}
		v.tlb = append(v.tlb, pg)
	}
	return v.BaseVPN() + uint64(slot), nil
}

// RemovedPage describes the page movement performed by RemovePageAt so
// callers (update alignment) can keep their bimap consistent.
type RemovedPage struct {
	// MovedFilePage is the physical page that was relocated into the hole,
	// or -1 when the removed page was the last one (nothing moved).
	MovedFilePage int64
	// MovedToVPN is the virtual page MovedFilePage now occupies.
	MovedToVPN uint64
	// FreedVPN is the virtual page that is no longer mapped.
	FreedVPN uint64
}

// RemovePageAt unmaps the view page at the given slot — the §2.4 case (2)
// action. To keep the mapped prefix dense (scans iterate [0, numPages)),
// the last mapped page is rewired into the hole first: one mmap plus one
// munmap, both at page granularity. This compaction is a documented
// divergence from the paper, which leaves the policy open (DESIGN.md §4).
func (v *View) RemovePageAt(slot int) (RemovedPage, error) {
	if v.full {
		return RemovedPage{}, ErrFullView
	}
	if err := v.EnsureMapped(); err != nil {
		return RemovedPage{}, err
	}
	if slot < 0 || slot >= v.numPages {
		return RemovedPage{}, fmt.Errorf("view: remove slot %d out of range [0,%d)", slot, v.numPages)
	}
	last := v.numPages - 1
	res := RemovedPage{MovedFilePage: -1}
	if slot != last {
		lastPg, err := v.PageBytes(last)
		if err != nil {
			return res, err
		}
		movedFile := int64(storage.PageID(lastPg))
		addr := v.addr + vmsim.Addr(slot)*vmsim.PageSize
		if err := v.col.Space().MmapFileFixed(addr, v.col.File(), int(movedFile), 1); err != nil {
			return res, err
		}
		res.MovedFilePage = movedFile
		res.MovedToVPN = v.BaseVPN() + uint64(slot)
	}
	lastAddr := v.addr + vmsim.Addr(last)*vmsim.PageSize
	if err := v.col.Space().MunmapPages(lastAddr, 1); err != nil {
		return res, err
	}
	res.FreedVPN = v.BaseVPN() + uint64(last)
	v.numPages--
	// Soft-TLB: the hole's slot is re-resolved from the fresh mapping
	// rather than copied from the old last slot — under the snapshot
	// write path the moved file page may have been shadowed onto a new
	// frame since the last slot's translation was cached, and the mmap
	// above resolved the current frame.
	if last < len(v.tlb) {
		if slot < len(v.tlb) && res.MovedFilePage >= 0 {
			pg, err := v.col.Space().PageData(vmsim.VPN(v.BaseVPN() + uint64(slot)))
			if err != nil {
				return res, err
			}
			v.tlb[slot] = pg
		}
		v.tlb = v.tlb[:last]
	}
	return res, nil
}

// Warm resolves every cold slot of the soft-TLB, returning how many
// translations were actually re-resolved. Constructors warm the TLB up
// front, so in steady state Warm finds nothing — it exists for the
// autopilot's pre-warm duty, which repairs views whose lazy PageBytes
// fallback left nil slots (e.g. after an out-of-band TLB drop) before a
// hot view is scanned again. The caller must hold the engine's exclusive
// room: Warm writes view state.
func (v *View) Warm() (int, error) {
	if v.lazy != nil {
		// Materializing every slot is exactly the pre-warm duty; the
		// conversion also moves the view onto the eager soft-TLB
		// representation the rest of this function maintains.
		cold := 0
		for i := range v.lazy.slots {
			if v.lazy.slots[i].state.Load() != slotWarm {
				cold++
			}
		}
		if err := v.EnsureMapped(); err != nil {
			return 0, err
		}
		return cold, nil
	}
	// Warm mutates TLB slots, and the current array may have been handed
	// to a published engine state: start a private clone like every
	// other mutation session.
	v.BeginTLBMutation()
	for len(v.tlb) < v.numPages {
		v.tlb = append(v.tlb, nil)
	}
	warmed := 0
	for i := 0; i < v.numPages; i++ {
		if v.tlb[i] != nil {
			continue
		}
		pg, err := v.col.Space().PageData(vmsim.VPN(v.BaseVPN() + uint64(i)))
		if err != nil {
			return warmed, err
		}
		v.tlb[i] = pg
		warmed++
	}
	return warmed, nil
}

// DropTLB discards the soft-TLB, forcing the lazy PageBytes fallback (or
// a Warm call) to re-resolve translations. On a demand-materialized view
// it resets every slot to cold instead (established mappings persist;
// only the cached translations are dropped). Intended for tests and for
// tools that measure the simulator's software page-walk cost.
func (v *View) DropTLB() {
	if v.lazy != nil {
		v.lazy = newPageDir(v.lazy.file)
		return
	}
	v.tlb = nil
}

// BeginTLBMutation installs a private clone of the soft-TLB array,
// detaching it from any capture a published engine state may share
// (CapturePages). Update alignment calls it once per view before the
// first AppendPage/RemovePageAt/RefreshSlot of a session; Warm calls it
// itself. The clone is sized exactly, so a later AppendPage reallocates
// instead of writing one past the captured length.
func (v *View) BeginTLBMutation() {
	clone := make([][]byte, len(v.tlb))
	copy(clone, v.tlb)
	v.tlb = clone
}

// RefreshSlot re-resolves the soft-TLB entry of one mapped slot to the
// given page bytes. Update alignment uses it for dirty pages a view
// keeps: under the snapshot write path the page's backing frame may have
// been shadowed since the slot's translation was cached, and the caller
// (holding the engine's exclusive room) passes the live bytes resolved
// through the column. BeginTLBMutation must have started the session.
func (v *View) RefreshSlot(slot int, pg []byte) {
	if slot >= 0 && slot < len(v.tlb) {
		v.tlb[slot] = pg
	}
}

// Retain adds one reference to the view. Published engine states retain
// every partial view they capture so a pinned snapshot can keep scanning
// a view that has since left the live set; the unmap happens when the
// last reference is released. Retaining the full view is harmless (its
// Release is a no-op regardless).
func (v *View) Retain() { v.extraRefs.Add(1) }

// Refs returns the view's logical reference count: the creation (owner)
// reference plus every outstanding Retain. Intended for tests and
// inspection tooling; the value is advisory under concurrency.
func (v *View) Refs() int { return int(v.extraRefs.Load()) + 1 }

// CapturePages returns the view's resolved soft-TLB — one page slice per
// mapped slot, in virtual order — as an immutable capture for a
// published engine state. When the cache is fully resolved the array
// itself is shared (mutation sessions clone before writing, see
// BeginTLBMutation); cold slots are resolved into a private copy.
func (v *View) CapturePages() ([][]byte, error) {
	if v.lazy != nil {
		// An eager page capture of a demand-materialized view forces full
		// materialization. The engine's snapshot path never takes it —
		// lazy views are captured through LazyFilePages and resolved
		// against the column's frozen full-view capture — but direct
		// callers still get correct pages.
		out := make([][]byte, v.numPages)
		for i := range out {
			pg, err := v.resolveLazy(i)
			if err != nil {
				return nil, err
			}
			out[i] = pg
		}
		return out, nil
	}
	n := v.numPages
	if len(v.tlb) == n {
		warm := true
		for i := 0; i < n; i++ {
			if v.tlb[i] == nil {
				warm = false
				break
			}
		}
		if warm {
			return v.tlb, nil
		}
	}
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		if i < len(v.tlb) && v.tlb[i] != nil {
			out[i] = v.tlb[i]
			continue
		}
		pg, err := v.col.Space().PageData(vmsim.VPN(v.BaseVPN() + uint64(i)))
		if err != nil {
			return nil, err
		}
		out[i] = pg
	}
	return out, nil
}

// Release drops one reference; the call that drops the last one unmaps
// the partial view's entire virtual area. A view starts with exactly its
// creation reference, so the historical single-owner call sites release
// as before; engine states add references via Retain. Releasing the full
// view is a no-op (the column owns it), as is releasing more often than
// retained — double-release stays idempotent.
func (v *View) Release() error {
	if v.full {
		return nil
	}
	if n := v.extraRefs.Add(-1); n != -1 {
		return nil
	}
	if v.capacity == 0 {
		return nil
	}
	err := v.col.Space().MunmapPages(v.addr, v.capacity)
	v.capacity = 0
	v.numPages = 0
	v.tlb = nil
	v.lazy = nil
	return err
}

// String renders the view for logs: v[lo,hi] #pages.
func (v *View) String() string {
	if v.full {
		return fmt.Sprintf("v[-inf,inf] (%d pages)", v.numPages)
	}
	return fmt.Sprintf("v[%d,%d] (%d pages)", v.lo, v.hi, v.numPages)
}
