package view

import (
	"testing"

	"github.com/asv-db/asv/internal/dist"
	"github.com/asv-db/asv/internal/storage"
	"github.com/asv-db/asv/internal/vmsim"
)

// Failure injection: the paths a production system hits when the kernel
// runs out of resources mid-operation must fail cleanly — error reported,
// reservation released, no leaked VMAs or frames.

func TestCreateFailsCleanlyOnMapCountExhaustion(t *testing.T) {
	k := vmsim.NewKernel(0)
	as := k.NewAddressSpace()
	as.SetMaxMapCount(1 << 30)
	col, err := storage.NewColumn(k, as, "col", 256)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform data over a huge domain: a view over a narrow slice maps
	// scattered single pages, each becoming its own VMA.
	if err := col.Fill(dist.NewUniform(3, 0, 1<<40)); err != nil {
		t.Fatal(err)
	}
	// Choke the map count: enough for the reservation, not for the pages.
	as.SetMaxMapCount(as.VMACount() + 4)

	before := as.VMACount()
	v, err := Create(col, 0, 1<<33, CreateOptions{}, nil)
	if err == nil {
		t.Fatalf("Create succeeded with %d pages despite map-count choke", v.NumPages())
	}
	// The failed builder must have released its reservation; partially
	// mapped pages may bump the count transiently but must be gone.
	if got := as.VMACount(); got != before {
		t.Fatalf("VMACount = %d after failed create, want %d", got, before)
	}
}

func TestConcurrentCreateFailsCleanly(t *testing.T) {
	k := vmsim.NewKernel(0)
	as := k.NewAddressSpace()
	as.SetMaxMapCount(1 << 30)
	col, err := storage.NewColumn(k, as, "col", 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Fill(dist.NewUniform(3, 0, 1<<40)); err != nil {
		t.Fatal(err)
	}
	as.SetMaxMapCount(as.VMACount() + 4)

	m := NewMapper(8)
	defer m.Stop()
	before := as.VMACount()
	if _, err := Create(col, 0, 1<<33, CreateOptions{Concurrent: true}, m); err == nil {
		t.Fatal("concurrent Create succeeded despite map-count choke")
	}
	if got := as.VMACount(); got != before {
		t.Fatalf("VMACount = %d after failed concurrent create, want %d", got, before)
	}
	// The mapper must still be usable for the next view.
	as.SetMaxMapCount(1 << 30)
	v, err := Create(col, 0, 1<<33, CreateOptions{Concurrent: true}, m)
	if err != nil {
		t.Fatalf("mapper unusable after earlier failure: %v", err)
	}
	if v.NumPages() == 0 {
		t.Fatal("recovered create produced empty view")
	}
}

func TestBuilderEnqueueAfterMapperStop(t *testing.T) {
	k := vmsim.NewKernel(0)
	as := k.NewAddressSpace()
	as.SetMaxMapCount(1 << 30)
	col, err := storage.NewColumn(k, as, "col", 16)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMapper(4)
	b, err := NewBuilder(col, CreateOptions{Concurrent: true}, m)
	if err != nil {
		t.Fatal(err)
	}
	m.Stop() // mapping thread gone before any request
	b.AddPage(3)
	if _, err := b.Finish(0, 10); err == nil {
		t.Fatal("Finish succeeded although the mapper was stopped")
	}
}

func TestMapperStopIdempotent(t *testing.T) {
	m := NewMapper(2)
	m.Stop()
	m.Stop() // must not panic or deadlock
}

func TestBuilderDoubleFinish(t *testing.T) {
	k := vmsim.NewKernel(0)
	as := k.NewAddressSpace()
	col, err := storage.NewColumn(k, as, "col", 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBuilder(col, CreateOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b.AddPage(1)
	if _, err := b.Finish(0, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Finish(0, 10); err == nil {
		t.Fatal("double Finish succeeded")
	}
	// Abort after successful Finish is a no-op, not a release.
	if err := b.Abort(); err != nil {
		t.Fatal(err)
	}
}

func TestAddPageAfterFinishPanics(t *testing.T) {
	k := vmsim.NewKernel(0)
	as := k.NewAddressSpace()
	col, err := storage.NewColumn(k, as, "col", 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBuilder(col, CreateOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Finish(0, 10); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AddPage after Finish did not panic")
		}
	}()
	b.AddPage(0)
}

func TestCreateFailsCleanlyOnFrameExhaustion(t *testing.T) {
	// A kernel so small the column itself barely fits: anonymous touches
	// during creation cannot allocate (views don't touch anon pages, so
	// creation itself succeeds — but the column fill must have consumed
	// everything, proving views really are frame-free).
	k := vmsim.NewKernel(64)
	as := k.NewAddressSpace()
	col, err := storage.NewColumn(k, as, "col", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Fill(dist.NewUniform(1, 0, 1000)); err != nil {
		t.Fatal(err)
	}
	if k.FramesInUse() != 64 {
		t.Fatalf("FramesInUse = %d", k.FramesInUse())
	}
	// Creating a view must not need a single new frame.
	v, err := Create(col, 0, 500, CreateOptions{Consecutive: true}, nil)
	if err != nil {
		t.Fatalf("view creation allocated frames: %v", err)
	}
	if v.NumPages() == 0 {
		t.Fatal("empty view")
	}
	// But touching an unmapped anonymous page now fails with ENOMEM.
	addr, err := as.MmapAnon(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := as.PageData(vmsim.VPN(addr >> vmsim.PageShift)); err == nil {
		t.Fatal("demand-zero fault succeeded with exhausted kernel")
	}
}
