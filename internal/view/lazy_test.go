package view

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"github.com/asv-db/asv/internal/dist"
)

// lazyEagerPair creates a lazy and an eager view over the same range of
// the same column. The caller owns both views.
func lazyEagerPair(t *testing.T, lo, hi uint64) (lazy, eager *View) {
	t.Helper()
	c := testColumn(t, 128, dist.NewLinear(3, 0, 100_000, 128))
	lazy, err := Create(c, lo, hi, CreateOptions{Lazy: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	eager, err = Create(c, lo, hi, CreateOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return lazy, eager
}

func TestLazyCreateMapsNothing(t *testing.T) {
	c := testColumn(t, 128, dist.NewLinear(3, 0, 100_000, 128))
	c.Space().ResetStats()
	v, err := Create(c, 20_000, 60_000, CreateOptions{Lazy: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Lazy() {
		t.Fatal("view built with Lazy option is not lazy")
	}
	if v.NumPages() == 0 {
		t.Fatal("test range qualifies no pages")
	}
	if got := c.Space().Stats().DemandMaps; got != 0 {
		t.Fatalf("creation issued %d demand maps, want 0", got)
	}

	// The first access of a slot materializes exactly that slot.
	if _, err := v.PageBytes(0); err != nil {
		t.Fatal(err)
	}
	if got := c.Space().Stats().DemandMaps; got != 1 {
		t.Fatalf("first slot access issued %d demand maps, want 1", got)
	}
	// A second access of the same slot is already warm.
	if _, err := v.PageBytes(0); err != nil {
		t.Fatal(err)
	}
	if got := c.Space().Stats().DemandMaps; got != 1 {
		t.Fatalf("warm slot re-access issued demand maps (%d total)", got)
	}
	if err := v.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestLazyResolvesSameBytesAsEager(t *testing.T) {
	lazy, eager := lazyEagerPair(t, 20_000, 60_000)
	if lazy.NumPages() != eager.NumPages() {
		t.Fatalf("lazy indexes %d pages, eager %d", lazy.NumPages(), eager.NumPages())
	}
	for i := 0; i < lazy.NumPages(); i++ {
		lp, err := lazy.PageBytes(i)
		if err != nil {
			t.Fatal(err)
		}
		ep, err := eager.PageBytes(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(lp, ep) {
			t.Fatalf("page %d diverged between lazy and eager view", i)
		}
	}
	if err := lazy.Release(); err != nil {
		t.Fatal(err)
	}
	if err := eager.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestEnsureMappedConvertsToEager(t *testing.T) {
	lazy, eager := lazyEagerPair(t, 20_000, 60_000)
	// Touch one slot first so conversion mixes warm and cold slots.
	if _, err := lazy.PageBytes(2); err != nil {
		t.Fatal(err)
	}
	if err := lazy.EnsureMapped(); err != nil {
		t.Fatal(err)
	}
	if lazy.Lazy() {
		t.Fatal("EnsureMapped left the view lazy")
	}
	for i := 0; i < lazy.NumPages(); i++ {
		lp, err := lazy.PageBytes(i)
		if err != nil {
			t.Fatal(err)
		}
		ep, err := eager.PageBytes(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(lp, ep) {
			t.Fatalf("page %d diverged after conversion", i)
		}
	}
	// Idempotent on an eager view.
	if err := lazy.EnsureMapped(); err != nil {
		t.Fatal(err)
	}
	if err := lazy.Release(); err != nil {
		t.Fatal(err)
	}
	if err := eager.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestLazyWarmCountsColdSlots(t *testing.T) {
	lazy, eager := lazyEagerPair(t, 20_000, 60_000)
	n := lazy.NumPages()
	// Pre-touch two slots; Warm materializes the remaining cold ones.
	for _, i := range []int{0, n - 1} {
		if _, err := lazy.PageBytes(i); err != nil {
			t.Fatal(err)
		}
	}
	warmed, err := lazy.Warm()
	if err != nil {
		t.Fatal(err)
	}
	if warmed != n-2 {
		t.Fatalf("Warm warmed %d slots, want %d", warmed, n-2)
	}
	if lazy.Lazy() {
		t.Fatal("Warm left the view lazy")
	}
	warmed, err = lazy.Warm()
	if err != nil {
		t.Fatal(err)
	}
	if warmed != 0 {
		t.Fatalf("second Warm warmed %d slots, want 0", warmed)
	}
	if err := lazy.Release(); err != nil {
		t.Fatal(err)
	}
	if err := eager.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestLazyConcurrentReaders(t *testing.T) {
	lazy, eager := lazyEagerPair(t, 0, 100_000)
	n := lazy.NumPages()
	want := make([][]byte, n)
	for i := range want {
		p, err := eager.PageBytes(i)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = p
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				// Each goroutine walks from a different offset so the
				// same slots race between cold, resolving and warm.
				j := (i + g*7) % n
				p, err := lazy.PageBytes(j)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(p, want[j]) {
					errs <- fmt.Errorf("page %d diverged from eager view", j)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent lazy read: %v", err)
	}
	if err := lazy.Release(); err != nil {
		t.Fatal(err)
	}
	if err := eager.Release(); err != nil {
		t.Fatal(err)
	}
}
