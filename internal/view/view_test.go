package view

import (
	"testing"
	"testing/quick"

	"github.com/asv-db/asv/internal/bitvec"
	"github.com/asv-db/asv/internal/dist"
	"github.com/asv-db/asv/internal/storage"
	"github.com/asv-db/asv/internal/vmsim"
)

// testColumn builds a filled column for view tests.
func testColumn(t testing.TB, pages int, g dist.Generator) *storage.Column {
	t.Helper()
	k := vmsim.NewKernel(0)
	as := k.NewAddressSpace()
	as.SetMaxMapCount(1 << 30)
	c, err := storage.NewColumn(k, as, "col", pages)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Fill(g); err != nil {
		t.Fatal(err)
	}
	return c
}

// qualifyingPages returns the page IDs holding at least one value in [lo,hi].
func qualifyingPages(t testing.TB, c *storage.Column, lo, hi uint64) map[uint64]bool {
	t.Helper()
	out := map[uint64]bool{}
	for p := 0; p < c.NumPages(); p++ {
		pg, err := c.PageBytes(p)
		if err != nil {
			t.Fatal(err)
		}
		if s := storage.ScanFilter(pg, lo, hi); s.Count > 0 {
			out[uint64(p)] = true
		}
	}
	return out
}

func TestFullViewProperties(t *testing.T) {
	c := testColumn(t, 32, dist.NewUniform(1, 0, 1000))
	fv, err := NewFull(c)
	if err != nil {
		t.Fatal(err)
	}
	if !fv.Full() || fv.NumPages() != 32 {
		t.Fatalf("full view: full=%v pages=%d", fv.Full(), fv.NumPages())
	}
	if fv.Lo() != 0 || fv.Hi() != ^uint64(0) {
		t.Fatal("full view range not [-inf, inf]")
	}
	if !fv.Covers(0, ^uint64(0)) {
		t.Fatal("full view does not cover everything")
	}
	// Release must be a no-op.
	if err := fv.Release(); err != nil {
		t.Fatal(err)
	}
	if _, err := fv.PageBytes(0); err != nil {
		t.Fatal("full view unusable after no-op Release")
	}
	if _, err := fv.AppendPage(0); err != ErrFullView {
		t.Fatalf("AppendPage on full view: %v", err)
	}
	if _, err := fv.RemovePageAt(0); err != ErrFullView {
		t.Fatalf("RemovePageAt on full view: %v", err)
	}
}

func TestCreateIndexesExactlyQualifyingPages(t *testing.T) {
	c := testColumn(t, 128, dist.NewLinear(3, 0, 100_000, 128))
	lo, hi := uint64(20_000), uint64(40_000)
	want := qualifyingPages(t, c, lo, hi)

	v, err := Create(c, lo, hi, CreateOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := v.PageIDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(want) {
		t.Fatalf("view indexes %d pages, want %d", len(ids), len(want))
	}
	for _, id := range ids {
		if !want[id] {
			t.Fatalf("view indexes non-qualifying page %d", id)
		}
	}
	// Covered range must include the query range (possibly extended).
	if !v.Covers(lo, hi) {
		t.Fatalf("view range [%d,%d] does not cover query", v.Lo(), v.Hi())
	}
}

func TestCreateRangeExtension(t *testing.T) {
	// Linear data clusters values, so the extension should widen the range
	// beyond the query on both sides (neighbouring excluded pages carry
	// values strictly below lo / above hi).
	c := testColumn(t, 128, dist.NewLinear(3, 0, 100_000, 128))
	lo, hi := uint64(20_000), uint64(40_000)
	v, err := Create(c, lo, hi, CreateOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Lo() >= lo && v.Hi() <= hi {
		t.Fatalf("no extension happened: view [%d,%d], query [%d,%d]", v.Lo(), v.Hi(), lo, hi)
	}
	// Extension correctness: every page with a value in the extended range
	// must be indexed.
	want := qualifyingPages(t, c, v.Lo(), v.Hi())
	ids, _ := v.PageIDs()
	got := map[uint64]bool{}
	for _, id := range ids {
		got[id] = true
	}
	for p := range want {
		if !got[p] {
			t.Fatalf("extended range [%d,%d] misses page %d", v.Lo(), v.Hi(), p)
		}
	}
}

func TestViewScanMatchesFullScan(t *testing.T) {
	c := testColumn(t, 96, dist.NewSine(5, 0, 100_000_000, 10))
	lo, hi := uint64(10_000_000), uint64(30_000_000)
	v, err := Create(c, lo, hi, CreateOptions{Consecutive: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantCount, wantSum, err := c.FullScan(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.Scan(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != wantCount || got.Sum != wantSum {
		t.Fatalf("view scan (%d,%d) != full scan (%d,%d)", got.Count, got.Sum, wantCount, wantSum)
	}
	if got.PagesScanned >= c.NumPages() {
		t.Fatalf("view scanned %d pages, full column is %d", got.PagesScanned, c.NumPages())
	}
}

func TestSubqueryThroughView(t *testing.T) {
	// Any query within the view's covered range must be answerable.
	c := testColumn(t, 64, dist.NewUniform(11, 0, 1_000_000))
	v, err := Create(c, 100_000, 500_000, CreateOptions{Consecutive: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range [][2]uint64{{100_000, 500_000}, {200_000, 300_000}, {499_000, 500_000}} {
		wantCount, wantSum, _ := c.FullScan(q[0], q[1])
		got, err := v.Scan(q[0], q[1])
		if err != nil {
			t.Fatal(err)
		}
		if got.Count != wantCount || got.Sum != wantSum {
			t.Fatalf("query [%d,%d]: view (%d,%d), full (%d,%d)",
				q[0], q[1], got.Count, got.Sum, wantCount, wantSum)
		}
	}
}

func TestScanDedupSkipsProcessedPages(t *testing.T) {
	c := testColumn(t, 32, dist.NewUniform(2, 0, 1000))
	v1, err := Create(c, 0, 500, CreateOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := Create(c, 200, 800, CreateOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Both views share pages (uniform data qualifies almost everywhere).
	processed := bitvec.New(c.NumPages())
	r1, err := v1.ScanDedup(300, 400, processed)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := v2.ScanDedup(300, 400, processed)
	if err != nil {
		t.Fatal(err)
	}
	wantCount, wantSum, _ := c.FullScan(300, 400)
	if r1.Count+r2.Count != wantCount || r1.Sum+r2.Sum != wantSum {
		t.Fatalf("dedup scan total (%d,%d), want (%d,%d)",
			r1.Count+r2.Count, r1.Sum+r2.Sum, wantCount, wantSum)
	}
	if r2.PagesScanned != 0 && r1.PagesScanned+r2.PagesScanned > c.NumPages() {
		t.Fatalf("scanned %d+%d pages from a %d-page column",
			r1.PagesScanned, r2.PagesScanned, c.NumPages())
	}
}

func TestConsecutiveOptimizationReducesMmapCalls(t *testing.T) {
	// Linear data: qualifying pages are one contiguous run.
	c := testColumn(t, 256, dist.NewLinear(7, 0, 1_000_000, 256))
	statsBefore := c.Space().Stats()
	v1, err := Create(c, 0, 250_000, CreateOptions{Consecutive: false}, nil)
	if err != nil {
		t.Fatal(err)
	}
	unopt := c.Space().Stats().MmapCalls - statsBefore.MmapCalls

	statsBefore = c.Space().Stats()
	v2, err := Create(c, 0, 250_000, CreateOptions{Consecutive: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt := c.Space().Stats().MmapCalls - statsBefore.MmapCalls

	if v1.NumPages() != v2.NumPages() {
		t.Fatalf("page counts differ: %d vs %d", v1.NumPages(), v2.NumPages())
	}
	// Unoptimized: one call per page (+1 reservation). Optimized: one call
	// per run (+1 reservation); on linear data that is a single run.
	if opt >= unopt {
		t.Fatalf("consecutive mapping used %d calls, unoptimized %d", opt, unopt)
	}
	if opt > 3 {
		t.Fatalf("expected ~2 calls on contiguous data, got %d", opt)
	}
}

func TestConcurrentCreationMatchesSynchronous(t *testing.T) {
	c := testColumn(t, 128, dist.NewSine(9, 0, 1_000_000, 16))
	m := NewMapper(64)
	defer m.Stop()

	sync1, err := Create(c, 100_000, 300_000, CreateOptions{Consecutive: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	conc, err := Create(c, 100_000, 300_000, CreateOptions{Consecutive: true, Concurrent: true}, m)
	if err != nil {
		t.Fatal(err)
	}
	if sync1.NumPages() != conc.NumPages() {
		t.Fatalf("page counts differ: sync %d, concurrent %d", sync1.NumPages(), conc.NumPages())
	}
	a, err := sync1.Scan(150_000, 250_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := conc.Scan(150_000, 250_000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Count != b.Count || a.Sum != b.Sum {
		t.Fatalf("scans differ: %+v vs %+v", a, b)
	}
}

func TestConcurrentRequiresMapper(t *testing.T) {
	c := testColumn(t, 8, dist.NewUniform(1, 0, 10))
	if _, err := NewBuilder(c, CreateOptions{Concurrent: true}, nil); err == nil {
		t.Fatal("builder accepted Concurrent without a Mapper")
	}
}

func TestAppendPage(t *testing.T) {
	c := testColumn(t, 64, dist.NewUniform(4, 100, 1000))
	v, err := Create(c, 0, 50, CreateOptions{}, nil) // matches nothing -> 0 pages
	if err != nil {
		t.Fatal(err)
	}
	if v.NumPages() != 0 {
		t.Fatalf("empty view has %d pages", v.NumPages())
	}
	vpn, err := v.AppendPage(7)
	if err != nil {
		t.Fatal(err)
	}
	if vpn != v.BaseVPN() {
		t.Fatalf("first append landed at vpn %#x, want base %#x", vpn, v.BaseVPN())
	}
	if v.NumPages() != 1 {
		t.Fatalf("NumPages = %d after append", v.NumPages())
	}
	pg, err := v.PageBytes(0)
	if err != nil {
		t.Fatal(err)
	}
	if storage.PageID(pg) != 7 {
		t.Fatalf("appended page has ID %d, want 7", storage.PageID(pg))
	}
}

func TestAppendPageCapacity(t *testing.T) {
	c := testColumn(t, 4, dist.NewUniform(4, 0, 10))
	v, err := Create(c, 0, ^uint64(0), CreateOptions{Consecutive: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumPages() != 4 {
		t.Fatalf("NumPages = %d", v.NumPages())
	}
	if _, err := v.AppendPage(0); err == nil {
		t.Fatal("append beyond capacity succeeded")
	}
}

func TestRemovePageAtCompacts(t *testing.T) {
	c := testColumn(t, 16, dist.NewUniform(4, 0, 10))
	v, err := Create(c, 0, ^uint64(0), CreateOptions{Consecutive: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Remove slot 3: last page (15) must move into the hole.
	res, err := v.RemovePageAt(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.MovedFilePage != 15 {
		t.Fatalf("MovedFilePage = %d, want 15", res.MovedFilePage)
	}
	if res.MovedToVPN != v.BaseVPN()+3 {
		t.Fatalf("MovedToVPN = %#x", res.MovedToVPN)
	}
	if v.NumPages() != 15 {
		t.Fatalf("NumPages = %d", v.NumPages())
	}
	pg, _ := v.PageBytes(3)
	if storage.PageID(pg) != 15 {
		t.Fatalf("slot 3 now holds page %d, want 15", storage.PageID(pg))
	}
	// Removing the (new) last page moves nothing.
	res, err = v.RemovePageAt(v.NumPages() - 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.MovedFilePage != -1 {
		t.Fatalf("MovedFilePage = %d, want -1", res.MovedFilePage)
	}
	if v.NumPages() != 14 {
		t.Fatalf("NumPages = %d", v.NumPages())
	}
	// Out-of-range slot rejected.
	if _, err := v.RemovePageAt(99); err == nil {
		t.Fatal("bad slot accepted")
	}
}

func TestReleaseFreesVirtualArea(t *testing.T) {
	c := testColumn(t, 32, dist.NewUniform(4, 0, 1000))
	before := c.Space().VMACount()
	v, err := Create(c, 0, 500, CreateOptions{Consecutive: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Release(); err != nil {
		t.Fatal(err)
	}
	if got := c.Space().VMACount(); got != before {
		t.Fatalf("VMACount = %d after release, want %d", got, before)
	}
	// Double release is harmless.
	if err := v.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderAbort(t *testing.T) {
	c := testColumn(t, 32, dist.NewUniform(4, 0, 1000))
	before := c.Space().VMACount()
	b, err := NewBuilder(c, CreateOptions{Consecutive: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b.AddPage(1)
	b.AddPage(2)
	b.AddPage(10)
	if err := b.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := c.Space().VMACount(); got != before {
		t.Fatalf("VMACount = %d after abort, want %d", got, before)
	}
}

func TestBuilderPendingPages(t *testing.T) {
	c := testColumn(t, 32, dist.NewUniform(4, 0, 1000))
	b, err := NewBuilder(c, CreateOptions{Consecutive: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Abort() }()
	for _, p := range []int{3, 4, 5, 9} {
		b.AddPage(p)
	}
	if got := b.PendingPages(); got != 4 {
		t.Fatalf("PendingPages = %d, want 4", got)
	}
}

func TestCoverPredicates(t *testing.T) {
	a := &View{lo: 10, hi: 20}
	b := &View{lo: 5, hi: 25}
	if !a.CoversSubsetOf(b) || a.CoversSupersetOf(b) {
		t.Fatal("subset relation wrong")
	}
	if !b.CoversSupersetOf(a) || b.CoversSubsetOf(a) {
		t.Fatal("superset relation wrong")
	}
	if !a.CoversSubsetOf(a) || !a.CoversSupersetOf(a) {
		t.Fatal("equal ranges must be both subset and superset")
	}
	if !a.Overlaps(20, 30) || a.Overlaps(21, 30) {
		t.Fatal("overlap predicate wrong")
	}
	if !a.Covers(10, 20) || a.Covers(9, 20) {
		t.Fatal("covers predicate wrong")
	}
}

func TestRangeExtender(t *testing.T) {
	e := NewRangeExtender(100, 200)
	// No observations: extends to the full domain.
	lo, hi := e.Range()
	if lo != 0 || hi != ^uint64(0) {
		t.Fatalf("empty extender range [%d,%d]", lo, hi)
	}
	e.ObserveExcluded(storage.PageScan{HasBelow: true, MaxBelow: 80})
	e.ObserveExcluded(storage.PageScan{HasBelow: true, MaxBelow: 95, HasAbove: true, MinAbove: 250})
	e.ObserveExcluded(storage.PageScan{HasAbove: true, MinAbove: 240})
	lo, hi = e.Range()
	if lo != 96 || hi != 239 {
		t.Fatalf("extended range [%d,%d], want [96,239]", lo, hi)
	}
}

// Property: for random query ranges on random distributions, a created
// view answers any subquery of its covered range exactly like a full scan.
func TestQuickViewEquivalence(t *testing.T) {
	c := testColumn(t, 64, dist.NewUniform(21, 0, 1<<20))
	f := func(aRaw, bRaw, cRaw, dRaw uint32) bool {
		a, b := uint64(aRaw)%(1<<20), uint64(bRaw)%(1<<20)
		if a > b {
			a, b = b, a
		}
		v, err := Create(c, a, b, CreateOptions{Consecutive: true}, nil)
		if err != nil {
			return false
		}
		defer func() { _ = v.Release() }()
		// Subquery inside [a, b].
		qa := a + uint64(cRaw)%(b-a+1)
		qb := a + uint64(dRaw)%(b-a+1)
		if qa > qb {
			qa, qb = qb, qa
		}
		wantCount, wantSum, err := c.FullScan(qa, qb)
		if err != nil {
			return false
		}
		got, err := v.Scan(qa, qb)
		if err != nil {
			return false
		}
		return got.Count == wantCount && got.Sum == wantSum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCreateUnoptimized(b *testing.B) {
	c := testColumn(b, 1024, dist.NewUniform(1, 0, 100_000_000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := Create(c, 0, 40_000_000, CreateOptions{}, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		_ = v.Release()
		b.StartTimer()
	}
}

func BenchmarkCreateBothOptimizations(b *testing.B) {
	c := testColumn(b, 1024, dist.NewUniform(1, 0, 100_000_000))
	m := NewMapper(1024)
	defer m.Stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := Create(c, 0, 40_000_000, AllOptimizations, m)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		_ = v.Release()
		b.StartTimer()
	}
}

func TestWarmResolvesDroppedTLB(t *testing.T) {
	col := testColumn(t, 16, dist.NewLinear(1, 0, 10_000, 16))
	v, err := Create(col, 100, 5000, CreateOptions{Consecutive: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Release()
	if v.NumPages() == 0 {
		t.Fatal("premise: view maps no pages")
	}
	// A fully-warmed view has nothing to do.
	n, err := v.Warm()
	if err != nil || n != 0 {
		t.Fatalf("warm view: warmed %d, err %v; want 0, nil", n, err)
	}
	want, err := v.PageIDs()
	if err != nil {
		t.Fatal(err)
	}
	v.DropTLB()
	n, err = v.Warm()
	if err != nil {
		t.Fatal(err)
	}
	if n != v.NumPages() {
		t.Fatalf("warmed %d slots, want %d", n, v.NumPages())
	}
	got, err := v.PageIDs()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("page %d: %d != %d after re-warm", i, got[i], want[i])
		}
	}
}
