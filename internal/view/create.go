package view

import (
	"github.com/asv-db/asv/internal/storage"
)

// Create builds a partial view covering [lo, hi] by scanning the column's
// full view — the standalone creation path used by the micro-benchmarks
// (§3.1, §3.3) and by view rebuilds. The adaptive engine instead drives a
// Builder directly, fusing creation into query answering (Listing 1).
//
// The returned view's range is extended to [l'+1, u'-1] per §2.2: l' is
// the largest value below lo and u' the smallest value above hi observed
// on non-qualifying pages, so every value strictly between them lives on
// an indexed page.
func Create(col *storage.Column, lo, hi uint64, opts CreateOptions, mapper *Mapper) (*View, error) {
	b, err := NewBuilder(col, opts, mapper)
	if err != nil {
		return nil, err
	}
	ext := NewRangeExtender(lo, hi)
	for p := 0; p < col.NumPages(); p++ {
		pg, err := col.PageBytes(p)
		if err != nil {
			_ = b.Abort() //asv:ignore-err aborting the builder after a page read error; that error is returned
			return nil, err
		}
		s := storage.ScanFilter(pg, lo, hi)
		if s.Count > 0 {
			b.AddPage(p)
		} else {
			ext.ObserveExcluded(s)
		}
	}
	cLo, cHi := ext.Range()
	return b.Finish(cLo, cHi)
}

// RangeExtender accumulates the candidate-range extension of §2.2 across
// the non-qualifying pages of a scan: it tracks the largest observed value
// l' < lo and the smallest u' > hi on excluded pages; all values strictly
// between l' and u' must then live on qualifying pages, so the new view
// may claim [l'+1, u'-1].
type RangeExtender struct {
	lo, hi             uint64
	maxBelow, minAbove uint64
	hasBelow, hasAbove bool
}

// NewRangeExtender starts an extension for a query range [lo, hi].
func NewRangeExtender(lo, hi uint64) *RangeExtender {
	return &RangeExtender{lo: lo, hi: hi}
}

// ObserveExcluded folds in the scan result of a non-qualifying page.
func (e *RangeExtender) ObserveExcluded(s storage.PageScan) {
	if s.HasBelow && (!e.hasBelow || s.MaxBelow > e.maxBelow) {
		e.maxBelow = s.MaxBelow
		e.hasBelow = true
	}
	if s.HasAbove && (!e.hasAbove || s.MinAbove < e.minAbove) {
		e.minAbove = s.MinAbove
		e.hasAbove = true
	}
}

// Range returns the extended range [l'+1, u'-1]. With no excluded pages
// observed on a side, that side extends to the domain boundary; callers
// that scanned only part of the column must clamp the result to the range
// their sources cover (the engine clamps to the source views' interval).
func (e *RangeExtender) Range() (uint64, uint64) {
	lo, hi := uint64(0), ^uint64(0)
	if e.hasBelow {
		lo = e.maxBelow + 1 // maxBelow < e.lo <= MaxUint64, no overflow
	}
	if e.hasAbove {
		hi = e.minAbove - 1 // minAbove > e.hi >= 0, no underflow
	}
	return lo, hi
}
