package view

import (
	"sync"

	"github.com/asv-db/asv/internal/cqueue"
	"github.com/asv-db/asv/internal/vmsim"
)

// Request asks the mapping thread to rewire Pages virtual pages starting
// at Addr to file pages [FilePage, FilePage+Pages). Done is invoked with
// the mmap result after the call completes.
type Request struct {
	AS       *vmsim.AddressSpace
	Addr     vmsim.Addr
	File     *vmsim.File
	FilePage int
	Pages    int
	Done     func(error)
}

// Mapper is the separate mapping thread of §2.3: "Instead of letting the
// scanning thread map each qualifying page, it only inserts a request to
// map the physical page into a concurrent queue ... A separate mapping
// thread constantly polls this queue and performs the actual mmap() calls."
//
// One Mapper serves arbitrarily many view builders; requests carry their
// own completion callbacks, and each builder waits only for its own.
type Mapper struct {
	q    *cqueue.Queue[Request]
	done chan struct{}
}

// NewMapper starts a mapping thread with the given queue capacity
// (capacity <= 0 selects 1024).
func NewMapper(capacity int) *Mapper {
	if capacity <= 0 {
		capacity = 1024
	}
	m := &Mapper{
		q:    cqueue.New[Request](capacity),
		done: make(chan struct{}),
	}
	go m.loop()
	return m
}

func (m *Mapper) loop() {
	defer close(m.done)
	for {
		r, ok := m.q.Pop()
		if !ok {
			return
		}
		err := r.AS.MmapFileFixed(r.Addr, r.File, r.FilePage, r.Pages)
		if r.Done != nil {
			r.Done(err)
		}
	}
}

// Enqueue submits a request, blocking while the queue is full. It returns
// cqueue.ErrClosed after Stop.
func (m *Mapper) Enqueue(r Request) error {
	return m.q.Push(r)
}

// Stop drains outstanding requests and terminates the mapping thread.
// Safe to call more than once.
func (m *Mapper) Stop() {
	m.q.Close()
	<-m.done
}

// firstErr retains the first error reported to it; safe for concurrent use.
type firstErr struct {
	mu  sync.Mutex
	err error
}

func (f *firstErr) set(err error) {
	if err == nil {
		return
	}
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
}

func (f *firstErr) get() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}
