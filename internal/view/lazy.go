package view

import (
	"runtime"
	"sync/atomic"

	"github.com/asv-db/asv/internal/vmsim"
)

// This file implements fault-driven view materialization: a view built
// with CreateOptions.Lazy records which physical page backs each of its
// slots but defers both the mmap call and the soft-TLB resolution until a
// slot is first accessed. Creation then costs one virtual reservation
// plus the qualification scan — "create a view per query pattern" stops
// paying O(qualifying pages) mapping work up front — and slots that are
// never read are never mapped at all.
//
// Each slot runs a small atomic state machine:
//
//	cold ──CAS──▶ resolving ──▶ warm
//
// The first reader to claim a cold slot (the CAS winner) maps the slot's
// backing file page into the view's reserved area and resolves the
// translation; concurrent readers of the same slot spin until the winner
// publishes the page behind the warm store. On error the winner resets
// the slot to cold, so a later access retries. The pg field is written
// strictly before the warm store and read strictly after the warm load,
// which is what makes the lock-free handoff safe.
//
// Mutation sessions (update alignment, Warm, AppendPage/RemovePageAt)
// never operate on a partially materialized directory: they start with
// EnsureMapped, which materializes every slot and converts the view to
// the eager soft-TLB representation — from then on every existing
// invalidation path (BeginTLBMutation, RefreshSlot, compaction) applies
// unchanged.

// Slot states of the demand-materialization directory.
const (
	slotCold int32 = iota
	slotResolving
	slotWarm
)

// pageDir is the demand-materialization directory of a lazy view: the
// backing file page per slot plus the per-slot resolution state machine.
// file is immutable after construction; slots are mutated only through
// the atomic claim protocol above.
type pageDir struct {
	file  []int32
	slots []dirSlot
}

// dirSlot is one slot's resolution state. pg is published by the atomic
// warm store: written before state becomes slotWarm, read only after
// observing slotWarm.
type dirSlot struct {
	state atomic.Int32
	pg    []byte
}

func newPageDir(file []int32) *pageDir {
	return &pageDir{file: file, slots: make([]dirSlot, len(file))}
}

// Lazy reports whether the view still defers slot materialization to
// first access (EnsureMapped and Warm convert a lazy view to the eager
// representation).
func (v *View) Lazy() bool { return v.lazy != nil }

// LazyFilePages returns the backing file page per slot of a lazy view,
// or nil for an eagerly materialized view. The slice is live view state:
// callers that outlive the caller's serialization scope (snapshot
// captures) must copy it.
func (v *View) LazyFilePages() []int32 {
	if v.lazy == nil {
		return nil
	}
	return v.lazy.file
}

// resolveLazy returns the i-th page of a lazy view, materializing the
// slot (demand mmap plus translation) on first access. Safe for any
// number of concurrent readers.
func (v *View) resolveLazy(i int) ([]byte, error) {
	s := &v.lazy.slots[i]
	for {
		switch s.state.Load() {
		case slotWarm:
			return s.pg, nil
		case slotCold:
			if !s.state.CompareAndSwap(slotCold, slotResolving) {
				continue
			}
			pg, err := v.materializeSlot(i, 1)
			if err != nil {
				s.state.Store(slotCold)
				return nil, err
			}
			// Promote-on-resolve: a first touch that materializes a slot is
			// a read access of its backing file page — charge the tier and
			// pull a demoted page back hot before the slot goes warm, so
			// every later read through the warm slot runs at hot speed.
			if t := v.col.Tier(); t != nil {
				t.Touch(int(v.lazy.file[i]))
			}
			s.pg = pg
			s.state.Store(slotWarm)
			return pg, nil
		default:
			// Another reader is materializing this slot; yield until it
			// publishes (or fails and resets to cold).
			runtime.Gosched()
		}
	}
}

// materializeSlot maps n consecutive backing file pages starting at slot
// i into the view's reserved area and returns the first slot's resolved
// page. The caller has claimed the slots (resolving state).
func (v *View) materializeSlot(i, n int) ([]byte, error) {
	addr := v.addr + vmsim.Addr(i)*vmsim.PageSize
	if err := v.col.Space().MmapFileFixedDemand(addr, v.col.File(), int(v.lazy.file[i]), n); err != nil {
		return nil, err
	}
	return v.col.Space().PageData(vmsim.VPN(v.BaseVPN() + uint64(i)))
}

// EnsureMapped materializes every slot of a lazy view and converts it to
// the eager soft-TLB representation; it is a no-op on eager views.
// Update alignment calls it for every partial view before rendering the
// maps file: the bimap's page-wise index is built from VMAs, so a cold
// (not yet mapped) slot would read as "not indexed" and alignment would
// append a physical page the view already covers. Like every other
// mutation session the caller must hold the engine's exclusive room;
// concurrent lock-free readers of individual slots remain safe (the
// conversion claims slots through the same CAS protocol they use).
func (v *View) EnsureMapped() error {
	d := v.lazy
	if d == nil {
		return nil
	}
	n := v.numPages
	for i := 0; i < n; {
		switch d.slots[i].state.Load() {
		case slotWarm:
			i++
		case slotResolving:
			runtime.Gosched()
		default:
			// Claim the longest run of cold slots with consecutive
			// backing pages and map it in one call — the §2.3
			// consecutive-run optimization applied to demand mapping.
			j := i
			for j < n && int(d.file[j]) == int(d.file[i])+(j-i) &&
				d.slots[j].state.CompareAndSwap(slotCold, slotResolving) {
				j++
			}
			if j == i {
				continue // lost the claim race; re-inspect the slot
			}
			if _, err := v.materializeSlot(i, j-i); err != nil {
				for k := i; k < j; k++ {
					d.slots[k].state.Store(slotCold)
				}
				return err
			}
			for k := i; k < j; k++ {
				pg, err := v.col.Space().PageData(vmsim.VPN(v.BaseVPN() + uint64(k)))
				if err != nil {
					for u := k; u < j; u++ {
						d.slots[u].state.Store(slotCold)
					}
					return err
				}
				d.slots[k].pg = pg
				d.slots[k].state.Store(slotWarm)
			}
			i = j
		}
	}
	// Every slot is warm: convert to the eager representation so the
	// existing mutation machinery (clone-on-mutate soft-TLB discipline,
	// RefreshSlot, compaction) applies unchanged.
	tlb := make([][]byte, n)
	for i := 0; i < n; i++ {
		tlb[i] = d.slots[i].pg
	}
	v.tlb = tlb
	v.lazy = nil
	return nil
}
